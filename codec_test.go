package mcf0

import (
	"bytes"
	"errors"
	"testing"

	"mcf0/internal/streaming"
	"mcf0/internal/wire"
)

// Round-trip determinism at the public layer: for every F0 algorithm,
// decode(encode(f)) estimates identically, re-encodes canonically, keeps
// ingesting bit-identically, and a decoded snapshot merges with a live
// same-seed sketch exactly as an in-process clone would.
func TestF0CodecRoundTrip(t *testing.T) {
	cfg := Config{Thresh: 24, Iterations: 7, Seed: 21, Parallelism: 1}
	xs := make([]uint64, 2000)
	for i := range xs {
		xs[i] = uint64(i*13) % 900
	}
	for _, alg := range []Algorithm{AlgorithmBucketing, AlgorithmMinimum, AlgorithmEstimation} {
		whole, _ := NewF0(20, alg, cfg)
		left, _ := NewF0(20, alg, cfg)
		right, _ := NewF0(20, alg, cfg)
		whole.AddBatch(xs)
		left.AddBatch(xs[:1000])
		right.AddBatch(xs[1000:])

		blob, err := right.MarshalBinary()
		if err != nil {
			t.Fatalf("alg=%s: marshal: %v", alg, err)
		}
		for _, par := range []int{1, 4} {
			dec, err := DecodeF0(blob, par)
			if err != nil {
				t.Fatalf("alg=%s par=%d: decode: %v", alg, par, err)
			}
			if dec.Estimate() != right.Estimate() {
				t.Fatalf("alg=%s par=%d: decoded estimate %v != %v", alg, par, dec.Estimate(), right.Estimate())
			}
			reblob, err := dec.MarshalBinary()
			if err != nil {
				t.Fatalf("alg=%s: re-marshal: %v", alg, err)
			}
			if !bytes.Equal(blob, reblob) {
				t.Fatalf("alg=%s par=%d: encode(decode(encode)) is not canonical", alg, par)
			}
			// The wire-merged sketch must be bit-identical to single-stream
			// ingestion of the concatenated stream.
			merged := left.Clone()
			if err := merged.Merge(dec); err != nil {
				t.Fatalf("alg=%s par=%d: merge of decoded snapshot: %v", alg, par, err)
			}
			if merged.Estimate() != whole.Estimate() {
				t.Fatalf("alg=%s par=%d: wire-merged estimate %v != whole %v",
					alg, par, merged.Estimate(), whole.Estimate())
			}
			// Decoded sketches keep ingesting bit-identically.
			cont := right.Clone()
			cont.AddBatch(xs[:200])
			dec.AddBatch(xs[:200])
			if dec.Estimate() != cont.Estimate() {
				t.Fatalf("alg=%s par=%d: post-ingest estimate diverges", alg, par)
			}
		}

		// UnmarshalBinary replaces the receiver's state in place.
		var f F0
		if err := f.UnmarshalBinary(blob); err != nil {
			t.Fatalf("alg=%s: unmarshal: %v", alg, err)
		}
		if f.Estimate() != right.Estimate() {
			t.Fatalf("alg=%s: UnmarshalBinary estimate %v != %v", alg, f.Estimate(), right.Estimate())
		}
	}
}

// ConcurrentF0 snapshots ride the F0 wire format: Snapshot is a
// point-in-time merged view, MarshalBinary/DecodeConcurrentF0 is crash
// recovery, and a restored front resumes bit-identically.
func TestConcurrentF0SnapshotRestore(t *testing.T) {
	cfg := Config{Thresh: 24, Iterations: 5, Seed: 23, Parallelism: 1}
	xs := make([]uint64, 3000)
	for i := range xs {
		xs[i] = uint64(i*7) % 1100
	}
	serial, _ := NewF0(20, AlgorithmMinimum, cfg)
	serial.AddBatch(xs)

	c, err := NewConcurrentF0(20, AlgorithmMinimum, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < 1500; lo += 250 {
		c.AddBatch(xs[lo : lo+250])
	}
	snap := c.Snapshot()
	if snap.Estimate() != c.Estimate() {
		t.Fatalf("snapshot estimate %v != front %v", snap.Estimate(), c.Estimate())
	}
	// The snapshot is detached: feeding the front does not move it.
	before := snap.Estimate()
	c.AddBatch(xs[1500:1750])
	if snap.Estimate() != before {
		t.Fatal("snapshot shares mutable state with the live front")
	}

	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	restored, err := DecodeConcurrentF0(blob, 3)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if restored.Replicas() != 3 {
		t.Fatalf("restored with %d replicas, want 3", restored.Replicas())
	}
	// Resume ingestion on the restored front; with the marshal taken at
	// element 1750, finishing the stream must land on the serial estimate.
	restored.AddBatch(xs[1500:])
	c.AddBatch(xs[1750:])
	if restored.Estimate() != serial.Estimate() {
		t.Fatalf("restored estimate %v != serial %v", restored.Estimate(), serial.Estimate())
	}
	if c.Estimate() != serial.Estimate() {
		t.Fatalf("live estimate %v != serial %v", c.Estimate(), serial.Estimate())
	}
}

// Set-stream wrappers round-trip and the decoded snapshot is
// Merge-compatible with a live same-seed sketch.
func TestSetStreamCodecRoundTrip(t *testing.T) {
	cfg := Config{Thresh: 24, Iterations: 5, Seed: 25, Parallelism: 1}

	t.Run("dnf", func(t *testing.T) {
		whole := NewDNFSetF0(12, cfg)
		left := NewDNFSetF0(12, cfg)
		right := NewDNFSetF0(12, cfg)
		sets := [][][]int{
			{{1, 2}, {-3}}, {{4, -5}}, {{6, 7, 8}}, {{-1, -2}}, {{9}, {10, -11}}, {{12, 1}},
		}
		for _, s := range sets {
			mustAdd(t, whole.AddDNF(s))
		}
		for _, s := range sets[:3] {
			mustAdd(t, left.AddDNF(s))
		}
		for _, s := range sets[3:] {
			mustAdd(t, right.AddDNF(s))
		}
		blob := mustMarshal(t, right)
		dec, err := DecodeDNFSetF0(blob, 1)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if dec.Estimate() != right.Estimate() {
			t.Fatalf("decoded estimate %v != %v", dec.Estimate(), right.Estimate())
		}
		if !bytes.Equal(blob, mustMarshal(t, dec)) {
			t.Fatal("encode(decode(encode)) is not canonical")
		}
		if err := left.Merge(dec); err != nil {
			t.Fatalf("merge of decoded snapshot: %v", err)
		}
		if left.Estimate() != whole.Estimate() {
			t.Fatalf("wire-merged estimate %v != whole %v", left.Estimate(), whole.Estimate())
		}
	})

	t.Run("range", func(t *testing.T) {
		r, err := NewRangeF0([]int{8, 8}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mustAdd(t, r.AddRange([]uint64{0, 0}, []uint64{9, 9}))
		mustAdd(t, r.AddRange([]uint64{100, 100}, []uint64{140, 160}))
		blob := mustMarshal(t, r)
		dec, err := DecodeRangeF0(blob, 1)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if dec.Estimate() != r.Estimate() {
			t.Fatalf("decoded estimate %v != %v", dec.Estimate(), r.Estimate())
		}
		if !bytes.Equal(blob, mustMarshal(t, dec)) {
			t.Fatal("encode(decode(encode)) is not canonical")
		}
		// Decoded snapshots keep validating dimensions on ingestion.
		if err := dec.AddRange([]uint64{0}, []uint64{1}); err == nil {
			t.Fatal("decoded sketch accepted a dimension mismatch")
		}
		if err := r.Merge(dec); err != nil {
			t.Fatalf("merge of decoded snapshot: %v", err)
		}
	})

	t.Run("progression", func(t *testing.T) {
		p, err := NewProgressionF0([]int{8}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mustAdd(t, p.AddProgression([]uint64{0}, []uint64{20}, []int{2}))
		blob := mustMarshal(t, p)
		dec, err := DecodeProgressionF0(blob, 1)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if dec.Estimate() != p.Estimate() {
			t.Fatalf("decoded estimate %v != %v", dec.Estimate(), p.Estimate())
		}
		if !bytes.Equal(blob, mustMarshal(t, dec)) {
			t.Fatal("encode(decode(encode)) is not canonical")
		}
		if err := p.Merge(dec); err != nil {
			t.Fatalf("merge of decoded snapshot: %v", err)
		}
	})

	t.Run("affine", func(t *testing.T) {
		a, err := NewAffineF0(10, cfg)
		if err != nil {
			t.Fatal(err)
		}
		a.AddAffine([]uint64{0b01, 0b10}, 0b01)
		blob := mustMarshal(t, a)
		dec, err := DecodeAffineF0(blob, 1)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if dec.Estimate() != a.Estimate() {
			t.Fatalf("decoded estimate %v != %v", dec.Estimate(), a.Estimate())
		}
		if !bytes.Equal(blob, mustMarshal(t, dec)) {
			t.Fatal("encode(decode(encode)) is not canonical")
		}
		if err := a.Merge(dec); err != nil {
			t.Fatalf("merge of decoded snapshot: %v", err)
		}
	})
}

func mustAdd(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func mustMarshal(t *testing.T, m interface{ MarshalBinary() ([]byte, error) }) []byte {
	t.Helper()
	b, err := m.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// Every public Merge must refuse incompatible sketches with a descriptive
// error — mismatched universes and dimensions as well as foreign hash
// draws — and leave the receiver untouched.
func TestMergeErrorPaths(t *testing.T) {
	cfg := Config{Thresh: 24, Iterations: 5, Seed: 27, Parallelism: 1}
	foreign := cfg
	foreign.Seed = 28

	t.Run("f0", func(t *testing.T) {
		a, _ := NewF0(20, AlgorithmBucketing, cfg)
		b, _ := NewF0(24, AlgorithmBucketing, cfg)
		if err := a.Merge(b); err == nil {
			t.Fatal("width mismatch merged")
		}
		c, _ := NewF0(20, AlgorithmBucketing, foreign)
		if err := a.Merge(c); !errors.Is(err, streaming.ErrIncompatibleSketch) {
			t.Fatalf("foreign draws: %v", err)
		}
		d, _ := NewF0(20, AlgorithmMinimum, cfg)
		if err := a.Merge(d); !errors.Is(err, streaming.ErrIncompatibleSketch) {
			t.Fatalf("cross-algorithm merge: %v", err)
		}
	})

	t.Run("dnf", func(t *testing.T) {
		a := NewDNFSetF0(12, cfg)
		if err := a.Merge(NewDNFSetF0(10, cfg)); err == nil {
			t.Fatal("variable-count mismatch merged")
		}
		if err := a.Merge(NewDNFSetF0(12, foreign)); err == nil {
			t.Fatal("foreign draws merged")
		}
	})

	t.Run("range", func(t *testing.T) {
		a, _ := NewRangeF0([]int{8, 8}, cfg)
		b, _ := NewRangeF0([]int{8}, cfg)
		if err := a.Merge(b); err == nil {
			t.Fatal("dimension-count mismatch merged")
		}
		c, _ := NewRangeF0([]int{8, 9}, cfg)
		if err := a.Merge(c); err == nil {
			t.Fatal("dimension-width mismatch merged")
		}
		d, _ := NewRangeF0([]int{8, 8}, foreign)
		if err := a.Merge(d); err == nil {
			t.Fatal("foreign draws merged")
		}
	})

	t.Run("progression", func(t *testing.T) {
		a, _ := NewProgressionF0([]int{8, 8}, cfg)
		b, _ := NewProgressionF0([]int{8}, cfg)
		if err := a.Merge(b); err == nil {
			t.Fatal("dimension-count mismatch merged")
		}
		c, _ := NewProgressionF0([]int{8, 9}, cfg)
		if err := a.Merge(c); err == nil {
			t.Fatal("dimension-width mismatch merged")
		}
		d, _ := NewProgressionF0([]int{8, 8}, foreign)
		if err := a.Merge(d); err == nil {
			t.Fatal("foreign draws merged")
		}
	})

	t.Run("affine", func(t *testing.T) {
		a, _ := NewAffineF0(10, cfg)
		b, _ := NewAffineF0(12, cfg)
		if err := a.Merge(b); err == nil {
			t.Fatal("width mismatch merged")
		}
		c, _ := NewAffineF0(10, foreign)
		if err := a.Merge(c); err == nil {
			t.Fatal("foreign draws merged")
		}
	})
}

// Snapshots carry their kind: SnapshotKind names it without decoding, and
// feeding a snapshot to the wrong decoder fails with a typed kind error,
// never a panic or a silently wrong sketch.
func TestSnapshotKindAndConfusion(t *testing.T) {
	cfg := Config{Thresh: 24, Iterations: 5, Seed: 29, Parallelism: 1}
	f, _ := NewF0(20, AlgorithmBucketing, cfg)
	f.Add(3)
	r, _ := NewRangeF0([]int{8, 8}, cfg)
	d := NewDNFSetF0(12, cfg)
	p, _ := NewProgressionF0([]int{8}, cfg)
	a, _ := NewAffineF0(10, cfg)

	for _, tc := range []struct {
		want string
		blob []byte
	}{
		{"mcf0.F0", mustMarshal(t, f)},
		{"mcf0.RangeF0", mustMarshal(t, r)},
		{"mcf0.DNFSetF0", mustMarshal(t, d)},
		{"mcf0.ProgressionF0", mustMarshal(t, p)},
		{"mcf0.AffineF0", mustMarshal(t, a)},
	} {
		got, err := SnapshotKind(tc.blob)
		if err != nil {
			t.Fatalf("%s: %v", tc.want, err)
		}
		if got != tc.want {
			t.Fatalf("SnapshotKind = %q, want %q", got, tc.want)
		}
	}
	if _, err := SnapshotKind([]byte("not a snapshot")); err == nil {
		t.Fatal("garbage blob got a kind")
	}

	fBlob := mustMarshal(t, f)
	var kerr *wire.UnknownKindError
	if _, err := DecodeRangeF0(fBlob, 1); !errors.As(err, &kerr) {
		t.Fatalf("F0 blob decoded as RangeF0: %v", err)
	}
	if _, err := DecodeDNFSetF0(fBlob, 1); !errors.As(err, &kerr) {
		t.Fatalf("F0 blob decoded as DNFSetF0: %v", err)
	}
	if _, err := DecodeF0(mustMarshal(t, r), 1); !errors.As(err, &kerr) {
		t.Fatalf("RangeF0 blob decoded as F0: %v", err)
	}

	// Truncation at the public layer is an error, never a panic.
	for cut := 0; cut < len(fBlob); cut += 7 {
		if _, err := DecodeF0(fBlob[:cut], 1); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
}
