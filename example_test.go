package mcf0_test

import (
	"fmt"

	"mcf0"
)

// Counting the models of a small DNF with the Minimum-based FPRAS
// (Algorithm 6 of the paper). Everything is deterministic per seed.
func ExampleCountDNFTerms() {
	terms := [][]int{{1, 2}, {-3, 4}} // (x1∧x2) ∨ (¬x3∧x4)
	cfg := mcf0.Config{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 9, Seed: 1}
	res, err := mcf0.CountDNFTerms(10, terms, mcf0.AlgorithmMinimum, cfg)
	if err != nil {
		panic(err)
	}
	exact, _ := mcf0.ExactCountDNFTerms(10, terms)
	fmt.Printf("exact %d, in-band %v\n", exact, mcf0.WithinFactor(res.Estimate, float64(exact), 0.8))
	// Output: exact 448, in-band true
}

// Streaming distinct-count estimation with the Bucketing sketch
// (Gibbons–Tirthapura / Algorithm 1 of the paper).
func ExampleNewF0() {
	cfg := mcf0.Config{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 9, Seed: 2}
	f0, err := mcf0.NewF0(24, mcf0.AlgorithmBucketing, cfg)
	if err != nil {
		panic(err)
	}
	for i := uint64(0); i < 3000; i++ {
		f0.Add(i % 300) // 300 distinct values
	}
	fmt.Printf("in-band %v\n", mcf0.WithinFactor(f0.Estimate(), 300, 0.8))
	// Output: in-band true
}

// F0 over succinct range items (Theorem 6): unions much too large to
// expand are absorbed one rectangle at a time.
func ExampleNewRangeF0() {
	cfg := mcf0.Config{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 9, Seed: 3}
	rf, err := mcf0.NewRangeF0([]int{16}, cfg)
	if err != nil {
		panic(err)
	}
	rf.AddRange([]uint64{0}, []uint64{9999})
	rf.AddRange([]uint64{5000}, []uint64{20000}) // overlap is deduplicated
	fmt.Printf("in-band %v\n", mcf0.WithinFactor(rf.Estimate(), 20001, 0.8))
	// Output: in-band true
}

// Near-uniform witness sampling (§6 of the paper).
func ExampleSampleDNFTerms() {
	cfg := mcf0.Config{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 9, Seed: 4}
	samples, err := mcf0.SampleDNFTerms(6, [][]int{{1, 2, 3}}, 3, cfg)
	if err != nil {
		panic(err)
	}
	for _, s := range samples {
		fmt.Println(s[:3]) // the first three bits are pinned by the term
	}
	// Output:
	// 111
	// 111
	// 111
}
