package mcf0_test

import (
	"fmt"

	"mcf0"
)

// Counting the models of a small DNF with the Minimum-based FPRAS
// (Algorithm 6 of the paper). Everything is deterministic per seed.
func ExampleCountDNFTerms() {
	terms := [][]int{{1, 2}, {-3, 4}} // (x1∧x2) ∨ (¬x3∧x4)
	cfg := mcf0.Config{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 9, Seed: 1}
	res, err := mcf0.CountDNFTerms(10, terms, mcf0.AlgorithmMinimum, cfg)
	if err != nil {
		panic(err)
	}
	exact, _ := mcf0.ExactCountDNFTerms(10, terms)
	fmt.Printf("exact %d, in-band %v\n", exact, mcf0.WithinFactor(res.Estimate, float64(exact), 0.8))
	// Output: exact 448, in-band true
}

// Streaming distinct-count estimation with the Bucketing sketch
// (Gibbons–Tirthapura / Algorithm 1 of the paper).
func ExampleNewF0() {
	cfg := mcf0.Config{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 9, Seed: 2}
	f0, err := mcf0.NewF0(24, mcf0.AlgorithmBucketing, cfg)
	if err != nil {
		panic(err)
	}
	for i := uint64(0); i < 3000; i++ {
		f0.Add(i % 300) // 300 distinct values
	}
	fmt.Printf("in-band %v\n", mcf0.WithinFactor(f0.Estimate(), 300, 0.8))
	// Output: in-band true
}

// F0 over succinct range items (Theorem 6): unions much too large to
// expand are absorbed one rectangle at a time.
func ExampleNewRangeF0() {
	cfg := mcf0.Config{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 9, Seed: 3}
	rf, err := mcf0.NewRangeF0([]int{16}, cfg)
	if err != nil {
		panic(err)
	}
	rf.AddRange([]uint64{0}, []uint64{9999})
	rf.AddRange([]uint64{5000}, []uint64{20000}) // overlap is deduplicated
	fmt.Printf("in-band %v\n", mcf0.WithinFactor(rf.Estimate(), 20001, 0.8))
	// Output: in-band true
}

// Chunked stream ingestion: AddBatch absorbs a whole chunk with one
// worker-pool dispatch (Config.Parallelism bounds the pool) and is
// equivalent to calling Add on each element in order — estimates are
// bit-identical at any parallelism level and under any batching.
func ExampleF0_AddBatch() {
	cfg := mcf0.Config{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 9, Seed: 2, Parallelism: 2}
	batched, err := mcf0.NewF0(24, mcf0.AlgorithmBucketing, cfg)
	if err != nil {
		panic(err)
	}
	oneAtATime, _ := mcf0.NewF0(24, mcf0.AlgorithmBucketing, cfg)
	chunk := make([]uint64, 0, 256)
	for i := uint64(0); i < 3000; i++ {
		x := i % 300 // 300 distinct values
		oneAtATime.Add(x)
		if chunk = append(chunk, x); len(chunk) == cap(chunk) {
			batched.AddBatch(chunk)
			chunk = chunk[:0]
		}
	}
	batched.AddBatch(chunk) // flush the tail
	fmt.Printf("identical %v, in-band %v\n",
		batched.Estimate() == oneAtATime.Estimate(),
		mcf0.WithinFactor(batched.Estimate(), 300, 0.8))
	// Output: identical true, in-band true
}

// A stream of sets, each a DNF formula over n variables: the sketch
// absorbs each set in poly(n) time however large its solution set is
// (Theorem 5). AddDNFBatch validates the whole chunk first (it is
// rejected atomically on any bad term list), then walks it per copy with
// a single pool dispatch.
func ExampleDNFSetF0_AddDNFBatch() {
	cfg := mcf0.Config{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 9, Seed: 5}
	ds := mcf0.NewDNFSetF0(20, cfg)
	err := ds.AddDNFBatch([][][]int{
		{{1, 2}},       // x1 ∧ x2: 2^18 assignments
		{{1, 2}, {3}},  // overlaps the first set
		{{-1, -2, -3}}, // disjoint cube
	})
	if err != nil {
		panic(err)
	}
	// |Sol| = 2^18 + 2^19 - 2^17 + 2^17 = 786432 exactly (inclusion–exclusion).
	fmt.Printf("in-band %v\n", mcf0.WithinFactor(ds.Estimate(), 786432, 0.8))
	// Output: in-band true
}

// A stream of d-dimensional boxes (Theorem 6): each box is absorbed in
// poly(d·bits) time. AddRangeBatch takes parallel lo/hi slices per box
// and rejects the whole chunk atomically on any invalid bound.
func ExampleRangeF0_AddRangeBatch() {
	cfg := mcf0.Config{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 9, Seed: 3}
	rf, err := mcf0.NewRangeF0([]int{16}, cfg)
	if err != nil {
		panic(err)
	}
	err = rf.AddRangeBatch(
		[][]uint64{{0}, {5000}},     // lower bounds, one slice per box
		[][]uint64{{9999}, {20000}}, // upper bounds
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("in-band %v\n", mcf0.WithinFactor(rf.Estimate(), 20001, 0.8))
	// Output: in-band true
}

// Near-uniform witness sampling (§6 of the paper).
func ExampleSampleDNFTerms() {
	cfg := mcf0.Config{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 9, Seed: 4}
	samples, err := mcf0.SampleDNFTerms(6, [][]int{{1, 2, 3}}, 3, cfg)
	if err != nil {
		panic(err)
	}
	for _, s := range samples {
		fmt.Println(s[:3]) // the first three bits are pinned by the term
	}
	// Output:
	// 111
	// 111
	// 111
}
