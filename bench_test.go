// Benchmarks regenerating the performance dimension of every experiment in
// EXPERIMENTS.md (E1–E11, A1–A3). Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark exercises the kernel whose cost the corresponding paper
// claim governs; cmd/experiments produces the accuracy/communication tables
// that complement these timings.
package mcf0

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/counting"
	"mcf0/internal/delphic"
	"mcf0/internal/distributed"
	"mcf0/internal/exact"
	"mcf0/internal/formula"
	"mcf0/internal/gf2"
	"mcf0/internal/hash"
	"mcf0/internal/oracle"
	"mcf0/internal/setstream"
	"mcf0/internal/stats"
	"mcf0/internal/streaming"
)

func benchOpts(seed uint64) counting.Options {
	return counting.Options{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 7, RNG: stats.NewRNG(seed)}
}

// BenchmarkE1ApproxMC times Algorithm 5 (Bucketing → ApproxMC) on DNF and
// CNF backends (Theorem 2).
func BenchmarkE1ApproxMC(b *testing.B) {
	rng := stats.NewRNG(1)
	d := formula.RandomDNF(16, 8, 5, rng)
	cnf, _ := formula.PlantedKCNF(14, 21, 3, rng)
	b.Run("DNF/n=16/k=8", func(b *testing.B) {
		src := oracle.NewDNFSource(d)
		for i := 0; i < b.N; i++ {
			counting.ApproxMC(src, benchOpts(uint64(i)))
		}
	})
	b.Run("CNF/n=14", func(b *testing.B) {
		src := oracle.NewCNFSource(cnf)
		for i := 0; i < b.N; i++ {
			counting.ApproxMC(src, benchOpts(uint64(i)))
		}
	})
}

// BenchmarkE2MinDNF times Algorithm 6 (Minimum), the DNF FPRAS, across the
// term-count scaling of Theorem 3.
func BenchmarkE2MinDNF(b *testing.B) {
	rng := stats.NewRNG(2)
	for _, k := range []int{4, 16, 64} {
		d := formula.RandomDNF(32, k, 8, rng)
		b.Run(fmt.Sprintf("n=32/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				counting.ApproxModelCountMinDNF(d, benchOpts(uint64(i)))
			}
		})
	}
}

// BenchmarkE2FindMin isolates the Proposition 2 kernel.
func BenchmarkE2FindMin(b *testing.B) {
	rng := stats.NewRNG(3)
	for _, n := range []int{16, 32, 64} {
		d := formula.RandomDNF(n, 16, n/4, rng)
		h := hash.NewToeplitz(n, 3*n).Draw(rng.Uint64).(*hash.Linear)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				counting.FindMinDNF(d, h, 24)
			}
		})
	}
}

// BenchmarkE3FindMaxRange times the Proposition 3 binary search through the
// SAT oracle (linear hash specialisation).
func BenchmarkE3FindMaxRange(b *testing.B) {
	rng := stats.NewRNG(4)
	for _, n := range []int{16, 32, 64} {
		cnf, _ := formula.PlantedKCNF(n, n, 3, rng)
		fam := hash.NewXor(n, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			src := oracle.NewCNFSource(cnf)
			for i := 0; i < b.N; i++ {
				h := fam.Draw(rng.Uint64).(*hash.Linear)
				counting.FindMaxRangeLinear(src, h)
			}
		})
	}
}

// BenchmarkE4F0Sketches times per-item processing of the three sketches
// (Lemmas 1–3).
func BenchmarkE4F0Sketches(b *testing.B) {
	n := 32
	rng := stats.NewRNG(5)
	elems := make([]bitvec.BitVec, 4096)
	for i := range elems {
		elems[i] = bitvec.Random(n, rng.Uint64)
	}
	sOpts := streaming.Options{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 7, RNG: stats.NewRNG(9)}
	b.Run("bucketing", func(b *testing.B) {
		e := streaming.NewBucketing(n, sOpts)
		for i := 0; i < b.N; i++ {
			e.Process(elems[i%len(elems)])
		}
	})
	b.Run("minimum", func(b *testing.B) {
		e := streaming.NewMinimum(n, sOpts)
		for i := 0; i < b.N; i++ {
			e.Process(elems[i%len(elems)])
		}
	})
	b.Run("estimation", func(b *testing.B) {
		eOpts := sOpts
		eOpts.Iterations = 3
		eOpts.Thresh = 8
		e := streaming.NewEstimation(n, eOpts)
		for i := 0; i < b.N; i++ {
			e.Process(elems[i%len(elems)])
		}
	})
	b.Run("exact-baseline", func(b *testing.B) {
		e := streaming.NewExactDistinct(n)
		for i := 0; i < b.N; i++ {
			e.Process(elems[i%len(elems)])
		}
	})
}

// BenchmarkE4SketchBatch times the sharded batch-ingestion path: one
// 256-element ProcessBatch per op, with the per-copy work fanned across
// the worker pool (par=max) vs forced serial (par=1). The copy counts are
// paper-scale (t = 32) so there is enough independent work to shard; on a
// single-core machine the two variants collapse to the same figure.
func BenchmarkE4SketchBatch(b *testing.B) {
	n := 32
	rng := stats.NewRNG(25)
	elems := make([]bitvec.BitVec, 4096)
	for i := range elems {
		elems[i] = bitvec.Random(n, rng.Uint64)
	}
	const chunk = 256
	for _, tc := range []struct {
		name string
		par  int
	}{{"par=1", 1}, {"par=max", 0}} {
		mkOpts := func(thresh, iters int) streaming.Options {
			return streaming.Options{Epsilon: 0.8, Delta: 0.2, Thresh: thresh, Iterations: iters,
				RNG: stats.NewRNG(9), Parallelism: tc.par}
		}
		b.Run("minimum/"+tc.name, func(b *testing.B) {
			e := streaming.NewMinimum(n, mkOpts(64, 32))
			for i := 0; i < b.N; i++ {
				lo := (i * chunk) % len(elems)
				e.ProcessBatch(elems[lo : lo+chunk])
			}
		})
		b.Run("bucketing/"+tc.name, func(b *testing.B) {
			e := streaming.NewBucketing(n, mkOpts(64, 32))
			for i := 0; i < b.N; i++ {
				lo := (i * chunk) % len(elems)
				e.ProcessBatch(elems[lo : lo+chunk])
			}
		})
		b.Run("estimation/"+tc.name, func(b *testing.B) {
			e := streaming.NewEstimation(n, mkOpts(24, 16))
			for i := 0; i < b.N; i++ {
				lo := (i * chunk) % len(elems)
				e.ProcessBatch(elems[lo : lo+chunk])
			}
		})
	}
}

// BenchmarkE6DNFStreamBatch times batched set-stream ingestion: one
// 8-item ProcessDNFBatch per op, per-copy FindMin fanned across the pool.
func BenchmarkE6DNFStreamBatch(b *testing.B) {
	n := 16
	rng := stats.NewRNG(26)
	items := make([]*formula.DNF, 4)
	for i := range items {
		items[i] = formula.RandomDNF(n, 1, 8, rng)
	}
	for _, tc := range []struct {
		name string
		par  int
	}{{"par=1", 1}, {"par=max", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			ds := setstream.NewDNFStream(n, setstream.Options{Epsilon: 0.8, Delta: 0.2,
				Thresh: 24, Iterations: 16, RNG: stats.NewRNG(13), Parallelism: tc.par})
			for i := 0; i < b.N; i++ {
				ds.ProcessDNFBatch(items)
			}
		})
	}
}

// BenchmarkE5Distributed times the three Section 4 protocols and reports
// communication bits per operation.
func BenchmarkE5Distributed(b *testing.B) {
	rng := stats.NewRNG(6)
	d := formula.RandomDNF(16, 16, 6, rng)
	dOpts := distributed.Options{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 7, RNG: stats.NewRNG(11)}
	for _, k := range []int{2, 8} {
		parts := distributed.Split(d, k)
		b.Run(fmt.Sprintf("bucketing/k=%d", k), func(b *testing.B) {
			var bits int64
			for i := 0; i < b.N; i++ {
				bits = distributed.Bucketing(parts, dOpts).Comm.Total()
			}
			b.ReportMetric(float64(bits), "comm-bits")
		})
		b.Run(fmt.Sprintf("minimum/k=%d", k), func(b *testing.B) {
			var bits int64
			for i := 0; i < b.N; i++ {
				bits = distributed.Minimum(parts, dOpts).Comm.Total()
			}
			b.ReportMetric(float64(bits), "comm-bits")
		})
	}
}

// BenchmarkE6DNFStream compares per-item cost of the Theorem 5 sketch with
// naive element expansion across set sizes — the crossover experiment.
func BenchmarkE6DNFStream(b *testing.B) {
	n := 24
	rng := stats.NewRNG(7)
	ssOpts := setstream.Options{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 7, RNG: stats.NewRNG(13)}
	for _, w := range []int{16, 12, 8} { // set size 2^(n-w)
		d := formula.RandomDNF(n, 1, w, rng)
		b.Run(fmt.Sprintf("sketch/setsize=2^%d", n-w), func(b *testing.B) {
			ds := setstream.NewDNFStream(n, ssOpts)
			for i := 0; i < b.N; i++ {
				ds.ProcessDNF(d)
			}
		})
		b.Run(fmt.Sprintf("naive/setsize=2^%d", n-w), func(b *testing.B) {
			mOpts := streaming.Options{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 7, RNG: stats.NewRNG(13)}
			m := streaming.NewMinimum(n, mOpts)
			for i := 0; i < b.N; i++ {
				src := oracle.NewDNFSource(d)
				src.Enumerate(nil, -1, func(x bitvec.BitVec) bool {
					m.Process(x)
					return true
				})
			}
		})
	}
}

// BenchmarkE7Ranges times per-item processing of d-dimensional range items
// (Theorem 6).
func BenchmarkE7Ranges(b *testing.B) {
	rng := stats.NewRNG(8)
	ssOpts := setstream.Options{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 7, RNG: stats.NewRNG(15)}
	for _, tc := range []struct{ d, bits int }{{1, 16}, {2, 12}, {3, 8}} {
		widths := make([]int, tc.d)
		dims := make([]formula.Range, tc.d)
		for i := range widths {
			widths[i] = tc.bits
			maxV := uint64(1)<<uint(tc.bits) - 1
			lo := rng.Uint64n(maxV / 2)
			dims[i] = formula.Range{Lo: lo, Hi: lo + maxV/4, Bits: tc.bits}
		}
		mr := formula.MultiRange{Dims: dims}
		b.Run(fmt.Sprintf("d=%d/bits=%d", tc.d, tc.bits), func(b *testing.B) {
			rs := setstream.NewRangeStream(widths, ssOpts)
			for i := 0; i < b.N; i++ {
				if err := rs.ProcessRange(mr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8Affine times AffineFindMin and per-item affine processing
// (Theorem 7: O(n⁴·t) per item).
func BenchmarkE8Affine(b *testing.B) {
	rng := stats.NewRNG(9)
	for _, n := range []int{16, 32, 64} {
		a := gf2.RandomMatrix(n/2, n, rng.Uint64)
		bb := bitvec.Random(n/2, rng.Uint64)
		h := hash.NewToeplitz(n, 3*n).Draw(rng.Uint64).(*hash.Linear)
		b.Run(fmt.Sprintf("findmin/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				setstream.AffineFindMin(a, bb, h, 24)
			}
		})
	}
}

// BenchmarkE9Blowup times the Lemma 4 constructions themselves: DNF
// materialisation cost grows as (2n)^d while CNF stays linear.
func BenchmarkE9Blowup(b *testing.B) {
	for _, tc := range []struct{ n, d int }{{8, 1}, {8, 2}, {8, 3}} {
		dims := make([]formula.Range, tc.d)
		for i := range dims {
			dims[i] = formula.Range{Lo: 1, Hi: uint64(1)<<uint(tc.n) - 1, Bits: tc.n}
		}
		mr := formula.MultiRange{Dims: dims}
		b.Run(fmt.Sprintf("DNF/n=%d/d=%d", tc.n, tc.d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := formula.MultiRangeDNF(mr); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("CNF/n=%d/d=%d", tc.n, tc.d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := formula.MultiRangeCNF(mr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10Weighted times the weighted-#DNF-to-range-stream reduction.
func BenchmarkE10Weighted(b *testing.B) {
	rng := stats.NewRNG(10)
	n := 6
	d := formula.RandomDNF(n, 4, 3, rng)
	w := exact.WeightFunc{Num: make([]uint64, n), Bits: make([]int, n)}
	for i := 0; i < n; i++ {
		w.Bits[i] = 3
		w.Num[i] = 1 + rng.Uint64n(6)
	}
	ssOpts := setstream.Options{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 7, RNG: stats.NewRNG(17)}
	b.Run("rangestream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			setstream.WeightedCount(setstream.WeightedDNF{D: d, W: w}, ssOpts)
		}
	})
	b.Run("exact-IE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exact.WeightedCountDNF(d, w)
		}
	})
}

// BenchmarkE11Progressions times arithmetic-progression items
// (Corollary 1).
func BenchmarkE11Progressions(b *testing.B) {
	ssOpts := setstream.Options{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 7, RNG: stats.NewRNG(19)}
	ps := setstream.NewProgressionStream([]int{20}, ssOpts)
	item := []formula.Progression{{A: 5, B: 1 << 19, LogStep: 3, Bits: 20}}
	for i := 0; i < b.N; i++ {
		if err := ps.ProcessProgression(item); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14Delphic compares per-item cost of the hashing route vs the
// APS/Delphic sampling route on range items (Remark 2).
func BenchmarkE14Delphic(b *testing.B) {
	rng := stats.NewRNG(21)
	for _, tc := range []struct{ d, bits int }{{1, 12}, {2, 8}, {3, 6}} {
		dims := make([]formula.Range, tc.d)
		widths := make([]int, tc.d)
		for i := range dims {
			maxV := uint64(1)<<uint(tc.bits) - 1
			lo := rng.Uint64n(maxV / 2)
			dims[i] = formula.Range{Lo: lo, Hi: lo + maxV/4, Bits: tc.bits}
			widths[i] = tc.bits
		}
		mr := formula.MultiRange{Dims: dims}
		b.Run(fmt.Sprintf("hash/d=%d", tc.d), func(b *testing.B) {
			ssOpts := setstream.Options{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 7, RNG: stats.NewRNG(23)}
			rs := setstream.NewRangeStream(widths, ssOpts)
			for i := 0; i < b.N; i++ {
				if err := rs.ProcessRange(mr); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("aps/d=%d", tc.d), func(b *testing.B) {
			est := delphic.NewEstimator(tc.d*tc.bits, 0.8, 0.2, 64, stats.NewRNG(23))
			s, ok := delphic.NewMultiRangeSet(mr)
			if !ok {
				b.Fatal("bad range")
			}
			for i := 0; i < b.N; i++ {
				est.Process(s)
			}
		})
	}
}

// BenchmarkA1HashFamily compares drawing and evaluating H_Toeplitz vs
// H_xor vs the s-wise polynomial family.
func BenchmarkA1HashFamily(b *testing.B) {
	n := 64
	rng := stats.NewRNG(11)
	x := bitvec.Random(n, rng.Uint64)
	fams := []hash.Family{hash.NewToeplitz(n, n), hash.NewXor(n, n), hash.NewPoly(n, 8)}
	for _, fam := range fams {
		b.Run("draw/"+fam.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fam.Draw(rng.Uint64)
			}
		})
		h := fam.Draw(rng.Uint64)
		// eval measures the destination-passing path the enumeration loops
		// use (hash.InPlace); every family in the package implements it.
		scratch := bitvec.New(h.OutBits())
		ip := h.(hash.InPlace)
		b.Run("eval/"+fam.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ip.EvalInto(x, scratch)
			}
		})
	}
}

var sinkUint64 uint64

// BenchmarkToeplitzEvalInto isolates the PR-4 tentpole kernel: Toeplitz
// evaluation as a carry-less multiply of the packed diagonal (clmul)
// against the per-row dot-product sweep (dotrow) over the same drawn
// function. Shapes cover the sketch workloads (n→n bucketing, n→3n
// minimum) and widths straddling the word boundary; the uint64 variant is
// the integer fast path the trailing-zero estimators consume via
// hash.AsUint64Hash.
func BenchmarkToeplitzEvalInto(b *testing.B) {
	rng := stats.NewRNG(31)
	for _, tc := range []struct{ n, m int }{{32, 32}, {32, 96}, {64, 64}, {64, 192}, {127, 127}} {
		h := hash.NewToeplitz(tc.n, tc.m).Draw(rng.Uint64).(*hash.Linear)
		// Rewrapping A and b drops the packed-diagonal kernel, leaving the
		// pre-PR-4 row sweep over the identical function.
		slow := hash.NewLinear(h.A, h.B)
		x := bitvec.Random(tc.n, rng.Uint64)
		dst := bitvec.New(tc.m)
		b.Run(fmt.Sprintf("clmul/n=%d/m=%d", tc.n, tc.m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h.EvalInto(x, dst)
			}
		})
		b.Run(fmt.Sprintf("dotrow/n=%d/m=%d", tc.n, tc.m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				slow.EvalInto(x, dst)
			}
		})
	}
	u, ok := hash.AsUint64Hash(hash.NewToeplitz(48, 48).Draw(rng.Uint64))
	if !ok {
		b.Fatal("expected integer fast path for 48→48")
	}
	b.Run("clmul-uint64/n=48/m=48", func(b *testing.B) {
		var acc uint64
		for i := 0; i < b.N; i++ {
			acc ^= u.EvalUint64(uint64(i) & 0xFFFFFFFFFFFF)
		}
		sinkUint64 = acc
	})
}

// BenchmarkA2Search compares linear vs binary prefix search in oracle
// calls and time (ApproxMC vs ApproxMC2).
func BenchmarkA2Search(b *testing.B) {
	rng := stats.NewRNG(12)
	cnf := formula.RandomKCNF(20, 10, 3, rng)
	for _, binary := range []bool{false, true} {
		name := "linear"
		if binary {
			name = "binary"
		}
		b.Run(name, func(b *testing.B) {
			src := oracle.NewCNFSource(cnf)
			var queries int64
			for i := 0; i < b.N; i++ {
				o := benchOpts(uint64(i))
				o.BinarySearch = binary
				queries = counting.ApproxMC(src, o).OracleQueries
			}
			b.ReportMetric(float64(queries), "oracle-calls")
		})
	}
}

// BenchmarkA3Shootout is the §3.5 DNF FPRAS comparison.
func BenchmarkA3Shootout(b *testing.B) {
	rng := stats.NewRNG(13)
	d := formula.RandomDNF(24, 16, 8, rng)
	b.Run("bucketing", func(b *testing.B) {
		src := oracle.NewDNFSource(d)
		for i := 0; i < b.N; i++ {
			counting.ApproxMC(src, benchOpts(uint64(i)))
		}
	})
	b.Run("minimum", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			counting.ApproxModelCountMinDNF(d, benchOpts(uint64(i)))
		}
	})
	b.Run("karpluby", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			counting.KarpLuby(d, benchOpts(uint64(i)))
		}
	})
}

// BenchmarkSATSolver times the CDCL substrate on planted CNF and CNF-XOR
// instances — the cost model behind every oracle call.
func BenchmarkSATSolver(b *testing.B) {
	rng := stats.NewRNG(14)
	for _, n := range []int{50, 100} {
		cnf, _ := formula.PlantedKCNF(n, 4*n, 3, rng)
		b.Run(fmt.Sprintf("planted3sat/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				src := oracle.NewCNFSource(cnf)
				src.Enumerate(nil, 1, func(bitvec.BitVec) bool { return true })
			}
		})
		b.Run(fmt.Sprintf("cnfxor/n=%d", n), func(b *testing.B) {
			cons := gf2.NewSystem(n)
			consRng := stats.NewRNG(15)
			for j := 0; j < n/4; j++ {
				cons.Add(bitvec.Random(n, consRng.Uint64), consRng.Bool())
			}
			for i := 0; i < b.N; i++ {
				src := oracle.NewCNFSource(cnf)
				src.Enumerate(cons, 1, func(bitvec.BitVec) bool { return true })
			}
		})
	}
}

// BenchmarkSystemRewind isolates the PR-5 tentpole primitive: one
// mark/extend/rewind cycle (16 rows) on a persistent half-rank system,
// against the clone-and-replay it replaces. The rewind path recycles rows
// through the system's pool, so steady state is allocation-free.
func BenchmarkSystemRewind(b *testing.B) {
	rng := stats.NewRNG(27)
	for _, n := range []int{64, 256} {
		base := gf2.NewSystem(n)
		rows := make([]bitvec.BitVec, n)
		for i := range rows {
			rows[i] = bitvec.Random(n, rng.Uint64)
		}
		for i := 0; i < n/2; i++ {
			base.Add(rows[i], i%2 == 0)
		}
		const extend = 16
		b.Run(fmt.Sprintf("rewind/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cp := base.Mark()
				for k := 0; k < extend; k++ {
					base.Add(rows[n/2+k], k%2 == 0)
				}
				base.Rewind(cp)
			}
		})
		b.Run(fmt.Sprintf("clone/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := base.Clone()
				for k := 0; k < extend; k++ {
					sys.Add(rows[n/2+k], k%2 == 0)
				}
			}
		})
	}
}

// BenchmarkGF2 times the linear-algebra kernels underlying everything.
func BenchmarkGF2(b *testing.B) {
	rng := stats.NewRNG(16)
	for _, n := range []int{64, 256} {
		m := gf2.RandomMatrix(n, n, rng.Uint64)
		x := bitvec.Random(n, rng.Uint64)
		// mulvec measures MulVecInto, the kernel behind Linear.EvalInto.
		y := bitvec.New(n)
		b.Run(fmt.Sprintf("mulvec/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.MulVecInto(x, y)
			}
		})
		b.Run(fmt.Sprintf("solve/n=%d", n), func(b *testing.B) {
			rhs := bitvec.Random(n, rng.Uint64)
			for i := 0; i < b.N; i++ {
				sys := gf2.NewSystem(n)
				for r := 0; r < n; r++ {
					sys.Add(m.Row(r), rhs.Get(r))
				}
				sys.Solve()
			}
		})
	}
}

// BenchmarkGF2PolyMul times GF(2^64) multiplication (the s-wise family's
// inner loop).
func BenchmarkGF2PolyMul(b *testing.B) {
	fam := hash.NewPoly(64, 4)
	rng := stats.NewRNG(17)
	h := fam.Draw(rng.Uint64)
	x := bitvec.Random(64, rng.Uint64)
	for i := 0; i < b.N; i++ {
		h.Eval(x)
	}
}

var sinkFloat float64

// BenchmarkConcurrentIngest times the PR-6 tentpole: lock-free concurrent
// ingestion through ConcurrentF0 (one 256-element AddBatch per op, issued
// from GOMAXPROCS producer goroutines) at replica counts 1 and
// GOMAXPROCS, against the pre-PR baseline of a single F0 guarded by one
// mutex under the same producers. On a single-core machine the variants
// collapse towards the same figure (no parallel producers actually run);
// the replicas=1 row then also bounds the front's acquisition overhead.
func BenchmarkConcurrentIngest(b *testing.B) {
	cfg := Config{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 7, Seed: 33, Parallelism: 1}
	const chunk = 256
	chunks := make([][]uint64, 16)
	for k := range chunks {
		chunks[k] = make([]uint64, chunk)
		for i := range chunks[k] {
			chunks[k][i] = uint64(k*chunk+i) * 2654435761 % (1 << 20)
		}
	}
	variants := []struct {
		name string
		reps int
	}{{"replicas=1", 1}, {"replicas=gomaxprocs", runtime.GOMAXPROCS(0)}}
	for _, v := range variants {
		reps := v.reps
		b.Run(v.name, func(b *testing.B) {
			c, err := NewConcurrentF0(32, AlgorithmMinimum, cfg, reps)
			if err != nil {
				b.Fatal(err)
			}
			b.RunParallel(func(pb *testing.PB) {
				k := 0
				for pb.Next() {
					c.AddBatch(chunks[k%len(chunks)])
					k++
				}
			})
			sinkFloat = c.Estimate()
		})
	}
	b.Run("locked-f0", func(b *testing.B) {
		f, err := NewF0(32, AlgorithmMinimum, cfg)
		if err != nil {
			b.Fatal(err)
		}
		var mu sync.Mutex
		b.RunParallel(func(pb *testing.PB) {
			k := 0
			for pb.Next() {
				mu.Lock()
				f.AddBatch(chunks[k%len(chunks)])
				mu.Unlock()
				k++
			}
		})
		sinkFloat = f.Estimate()
	})
}

// BenchmarkSketchMarshalRoundTrip times the PR-7 tentpole: one complete
// marshal → unmarshal cycle of a loaded F0 sketch per op — the snapshot
// cost of the versioned wire codec, covering hash-draw serialization,
// canonical state packing, and validated decode. snapshot-bytes reports
// the encoded size per algorithm.
func BenchmarkSketchMarshalRoundTrip(b *testing.B) {
	cfg := Config{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 7, Seed: 35, Parallelism: 1}
	xs := make([]uint64, 4096)
	for i := range xs {
		xs[i] = uint64(i) * 2654435761 % (1 << 20)
	}
	for _, alg := range []Algorithm{AlgorithmBucketing, AlgorithmMinimum, AlgorithmEstimation} {
		f, err := NewF0(32, alg, cfg)
		if err != nil {
			b.Fatal(err)
		}
		f.AddBatch(xs)
		blob, err := f.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(string(alg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				enc, err := f.MarshalBinary()
				if err != nil {
					b.Fatal(err)
				}
				dec, err := DecodeF0(enc, 1)
				if err != nil {
					b.Fatal(err)
				}
				sinkFloat = dec.Estimate()
			}
			b.ReportMetric(float64(len(blob)), "snapshot-bytes")
		})
	}
}

// BenchmarkEndToEnd runs the full public-API paths once per iteration.
func BenchmarkEndToEnd(b *testing.B) {
	terms := [][]int{{1, 2}, {-3, 4, 5}, {6, -7}}
	cfg := Config{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 7, Seed: 21}
	b.Run("CountDNFTerms/minimum", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := CountDNFTerms(20, terms, AlgorithmMinimum, cfg)
			if err != nil {
				b.Fatal(err)
			}
			sinkFloat = res.Estimate
		}
	})
	b.Run("F0/minimum", func(b *testing.B) {
		f, err := NewF0(32, AlgorithmMinimum, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			f.Add(uint64(i) % 1000)
		}
		sinkFloat = f.Estimate()
	})
	if math.IsNaN(sinkFloat) {
		b.Fatal("impossible")
	}
}
