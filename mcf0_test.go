package mcf0

import (
	"strings"
	"testing"
)

func fastCfg(seed uint64) Config {
	return Config{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 9, Seed: seed}
}

const smallDNF = `p dnf 10 3
1 2 0
-3 4 5 0
6 -7 8 0
`

const smallCNF = `p cnf 8 4
1 2 3 0
-1 4 0
-2 -5 6 0
7 8 0
`

func TestCountDNFAllAlgorithms(t *testing.T) {
	truth, err := ExactCountDNFTerms(10, [][]int{{1, 2}, {-3, 4, 5}, {6, -7, 8}})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{AlgorithmBucketing, AlgorithmMinimum, AlgorithmEstimation, AlgorithmKarpLuby} {
		ok := 0
		const trials = 8
		for s := 0; s < trials; s++ {
			res, err := CountDNF(strings.NewReader(smallDNF), alg, fastCfg(uint64(10+s)))
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			if WithinFactor(res.Estimate, float64(truth), 0.8) {
				ok++
			}
		}
		if ok < trials/2 {
			t.Errorf("%s: within band only %d/%d (truth %d)", alg, ok, trials, truth)
		}
	}
}

func TestCountCNFBucketingAndMinimum(t *testing.T) {
	for _, alg := range []Algorithm{AlgorithmBucketing, AlgorithmMinimum} {
		res, err := CountCNF(strings.NewReader(smallCNF), alg, fastCfg(3))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Estimate <= 0 {
			t.Errorf("%s: non-positive estimate %g", alg, res.Estimate)
		}
		if res.OracleQueries == 0 {
			t.Errorf("%s: oracle queries not metered", alg)
		}
	}
	if _, err := CountCNF(strings.NewReader(smallCNF), AlgorithmKarpLuby, fastCfg(1)); err == nil {
		t.Error("KarpLuby accepted a CNF")
	}
}

func TestCountClausesValidation(t *testing.T) {
	if _, err := CountCNFClauses(3, [][]int{{4}}, AlgorithmBucketing, fastCfg(1)); err == nil {
		t.Error("out-of-range literal accepted")
	}
	if _, err := CountDNFTerms(3, [][]int{{0}}, AlgorithmMinimum, fastCfg(1)); err == nil {
		t.Error("zero literal accepted")
	}
}

func TestF0Sketches(t *testing.T) {
	for _, alg := range []Algorithm{AlgorithmBucketing, AlgorithmMinimum} {
		f, err := NewF0(20, alg, fastCfg(5))
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 500; i++ {
			f.Add(i % 100) // 100 distinct
		}
		if !WithinFactor(f.Estimate(), 100, 0.8) {
			t.Errorf("%s: estimate %g for F0=100", alg, f.Estimate())
		}
		if f.SketchWords() == 0 {
			t.Errorf("%s: sketch reports zero size", alg)
		}
	}
	if _, err := NewF0(70, AlgorithmBucketing, fastCfg(1)); err == nil {
		t.Error("70-bit universe accepted")
	}
}

func TestRangeF0(t *testing.T) {
	r, err := NewRangeF0([]int{8, 8}, fastCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	// Two disjoint 2×2 boxes: 8 tuples, below Thresh, so the count is
	// exact.
	if err := r.AddRange([]uint64{0, 0}, []uint64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddRange([]uint64{100, 100}, []uint64{101, 101}); err != nil {
		t.Fatal(err)
	}
	if got := r.Estimate(); got != 8 {
		t.Errorf("range union = %g, want exactly 8 (below Thresh)", got)
	}
	if err := r.AddRange([]uint64{0}, []uint64{1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestProgressionF0(t *testing.T) {
	p, err := NewProgressionF0([]int{8}, fastCfg(9))
	if err != nil {
		t.Fatal(err)
	}
	// 0,4,8,...,20: 6 elements.
	if err := p.AddProgression([]uint64{0}, []uint64{20}, []int{2}); err != nil {
		t.Fatal(err)
	}
	if got := p.Estimate(); got != 6 {
		t.Errorf("progression count = %g, want 6", got)
	}
}

func TestDNFSetF0(t *testing.T) {
	d := NewDNFSetF0(10, fastCfg(11))
	if err := d.AddDNF([][]int{{1, 2, 3, 4, 5, 6, 7}}); err != nil { // 8 solutions
		t.Fatal(err)
	}
	d.AddElement(0) // all-false assignment, not in the term above
	if got := d.Estimate(); got != 9 {
		t.Errorf("DNF set union = %g, want 9", got)
	}
}

func TestAffineF0(t *testing.T) {
	a, err := NewAffineF0(10, fastCfg(13))
	if err != nil {
		t.Fatal(err)
	}
	// x0 = 1 and x1 = 0: 2^8 = 256 solutions.
	a.AddAffine([]uint64{0b01, 0b10}, 0b01)
	est := a.Estimate()
	if !WithinFactor(est, 256, 0.8) {
		t.Errorf("affine estimate %g for 256 solutions", est)
	}
}

func TestCountWeightedDNF(t *testing.T) {
	// φ = x1 with ρ(x1) = 1/2, ρ(x2) = 1/2: W = 0.5.
	got, err := CountWeightedDNF(2, [][]int{{1}}, []uint64{2, 2}, []int{2, 2}, fastCfg(15))
	if err != nil {
		t.Fatal(err)
	}
	if !WithinFactor(got, 0.5, 0.8) {
		t.Errorf("weighted count %g, want ≈0.5", got)
	}
	if _, err := CountWeightedDNF(2, [][]int{{1}}, []uint64{0, 1}, []int{2, 2}, fastCfg(1)); err == nil {
		t.Error("invalid weights accepted")
	}
}

func TestDistributedCountDNF(t *testing.T) {
	terms := [][]int{{1, 2}, {-3, 4}, {5, 6}, {-1, -2, 7}}
	truth, err := ExactCountDNFTerms(12, terms)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{AlgorithmBucketing, AlgorithmMinimum, AlgorithmEstimation} {
		res, err := DistributedCountDNF(12, terms, 3, alg, fastCfg(17))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.CommBits == 0 || res.CommBits != res.CoordToSites+res.SitesToCoord {
			t.Errorf("%s: inconsistent communication accounting", alg)
		}
		if !WithinFactor(res.Estimate, float64(truth), 1.5) {
			t.Errorf("%s: distributed estimate %g far from %d", alg, res.Estimate, truth)
		}
	}
	if _, err := DistributedCountDNF(12, terms, 0, AlgorithmMinimum, fastCfg(1)); err == nil {
		t.Error("zero sites accepted")
	}
}

func TestSampling(t *testing.T) {
	terms := [][]int{{1, 2}, {-3, 4}}
	samples, err := SampleDNFTerms(10, terms, 15, fastCfg(19))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 15 {
		t.Fatalf("got %d samples", len(samples))
	}
	for _, s := range samples {
		if len(s) != 10 {
			t.Fatalf("sample %q has wrong width", s)
		}
		// Satisfies (x1∧x2) ∨ (¬x3∧x4)?
		sat := (s[0] == '1' && s[1] == '1') || (s[2] == '0' && s[3] == '1')
		if !sat {
			t.Fatalf("sample %q violates the formula", s)
		}
	}
	// CNF path + unsat path.
	cs, err := SampleCNFClauses(6, [][]int{{1}, {-1}}, 5, fastCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if cs != nil {
		t.Fatal("unsat CNF produced samples")
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := CountDNF(strings.NewReader(smallDNF), AlgorithmMinimum, fastCfg(42))
	b, _ := CountDNF(strings.NewReader(smallDNF), AlgorithmMinimum, fastCfg(42))
	if a.Estimate != b.Estimate {
		t.Error("equal seeds produced different estimates")
	}
}
