// Command f0load is the profiling-driven load harness: it replays a
// seeded, deterministic mixed workload (ingest/estimate/snapshot, with
// optional hot-key Zipf skew and burst/ramp arrival patterns) against
// either the in-process concurrent sketch front or a live f0d HTTP
// endpoint, and emits a JSON report with sustained ops/sec and
// p50/p99/p999 latency per op kind. See docs/OPERATIONS.md for the
// runbook.
//
//	f0load -target inproc -ops 50000 -clients 8 -zipf 1.2 -out load.json
//	f0load -target http -url http://127.0.0.1:8080 -token s3cret \
//	       -ops 20000 -clients 16 -slo p99=5ms,errors=0
//
// Workload flags (every one participates in generation, so equal flag
// sets replay byte-identical workloads):
//
//	-seed N          workload seed (default 1)
//	-ops N           total operations (default 10000)
//	-clients N       concurrent clients (default 4)
//	-bits N          element-universe width in bits (default 24)
//	-batch N         elements per ingest op (default 128)
//	-mix SPEC        op mix, e.g. ingest=90,estimate=9,snapshot=1
//	-keys N          hot-key space size (default: full universe)
//	-zipf S          Zipf skew over the key space (0 = uniform; else > 1)
//	-arrival KIND    open (default), constant, burst, or ramp
//	-rate R          target ops/sec for constant/burst/ramp
//	-ramp-to R       final ops/sec for ramp
//	-burst-on S      burst phase seconds (default 1)
//	-burst-off S     silence phase seconds (default 1)
//
// Target flags:
//
//	-target KIND     inproc (default) or http
//	-algorithm A     sketch family (bucketing, minimum, estimation)
//	-sketch-seed N   sketch hash seed (default 42)
//	-replicas N      ConcurrentF0 replicas (0 = GOMAXPROCS)
//	-url URL         f0d base URL (http target)
//	-token T         bearer token (http target)
//	-sketch NAME     sketch name (http target; default f0load)
//	-create          create the sketch before the run (default true)
//	-delete          delete the sketch after the run (default false)
//
// Chaos and retries (http target; see internal/faultinject):
//
//	-chaos SPEC      seeded fault injection on the HTTP transport, e.g.
//	                 seed=7,latency=0.05,max-latency=2ms,reset=0.05,
//	                 truncate=0.03,corrupt=0.03 — rates are per round
//	                 trip; the report gains a faults_injected tally
//	-retries N       per-op retry budget with seeded exponential
//	                 backoff-with-jitter (default 0 = single-shot)
//	-retry-base D    first backoff ceiling, doubling per attempt
//	                 (default 5ms)
//
// Output and assertions:
//
//	-out PATH        report path (default "-" = stdout)
//	-note TEXT       environment caveat appended to the report
//	-slo SPEC        assertions, e.g. p99=5ms,ingest.p999=20ms,errors=0,
//	                 min_ops_per_sec=1000 — violations exit 2
//	-check           replay the ingest stream serially and require the
//	                 target's final estimate to match bit-identically
//	-dump            print the op sequence instead of running (replay
//	                 transcript; byte-identical for equal flags)
//	-cpuprofile P    write a pprof CPU profile of the run
//	-memprofile P    write a pprof allocation profile after the run
//
// Exit status: 0 on success, 1 on errors, 2 on SLO violation.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"mcf0"
	"mcf0/internal/faultinject"
	"mcf0/internal/loadgen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit, so tests drive the full CLI
// in-process. Returns the exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("f0load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed     = fs.Uint64("seed", 1, "workload seed")
		ops      = fs.Int("ops", 10000, "total operations")
		clients  = fs.Int("clients", 4, "concurrent clients")
		bits     = fs.Int("bits", 24, "element-universe width in bits")
		batch    = fs.Int("batch", 128, "elements per ingest op")
		mix      = fs.String("mix", "ingest=90,estimate=10", "op mix, e.g. ingest=90,estimate=9,snapshot=1")
		keys     = fs.Uint64("keys", 0, "hot-key space size (0 = full universe)")
		zipf     = fs.Float64("zipf", 0, "Zipf skew over the key space (0 = uniform; else > 1)")
		arrival  = fs.String("arrival", "open", "arrival pattern: open, constant, burst, ramp")
		rate     = fs.Float64("rate", 0, "target ops/sec (constant/burst/ramp)")
		rampTo   = fs.Float64("ramp-to", 0, "final ops/sec (ramp)")
		burstOn  = fs.Float64("burst-on", 1, "burst phase seconds")
		burstOff = fs.Float64("burst-off", 1, "silence phase seconds")

		target     = fs.String("target", "inproc", "target kind: inproc or http")
		algorithm  = fs.String("algorithm", "bucketing", "sketch family: bucketing, minimum, estimation")
		sketchSeed = fs.Uint64("sketch-seed", 42, "sketch hash seed")
		replicas   = fs.Int("replicas", 0, "ConcurrentF0 replicas (0 = GOMAXPROCS)")
		url        = fs.String("url", "", "f0d base URL (http target)")
		token      = fs.String("token", "", "bearer token (http target)")
		sketch     = fs.String("sketch", "f0load", "sketch name (http target)")
		create     = fs.Bool("create", true, "create the sketch before the run (http target)")
		del        = fs.Bool("delete", false, "delete the sketch after the run (http target)")

		chaosSpec = fs.String("chaos", "", `fault-injection spec wrapping the HTTP transport, e.g. "seed=7,latency=0.05,reset=0.05,truncate=0.03,corrupt=0.03"`)
		retries   = fs.Int("retries", 0, "retry budget per op with seeded backoff-with-jitter (http target)")
		retryBase = fs.Duration("retry-base", 0, "first backoff ceiling, doubling per attempt (0 = 5ms)")

		out     = fs.String("out", "-", `report path ("-" = stdout)`)
		note    = fs.String("note", "", "environment caveat recorded in the report")
		slo     = fs.String("slo", "", "SLO assertions, e.g. p99=5ms,errors=0")
		check   = fs.Bool("check", false, "verify the final estimate against a serial replay")
		dump    = fs.Bool("dump", false, "print the op sequence instead of running")
		cpuProf = fs.String("cpuprofile", "", "write a pprof CPU profile here")
		memProf = fs.String("memprofile", "", "write a pprof allocation profile here")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "f0load:", err)
		return 1
	}

	spec := loadgen.Spec{
		Seed: *seed, Ops: *ops, Clients: *clients, Bits: *bits, Batch: *batch,
		Keys: *keys, ZipfS: *zipf,
		Arrival: *arrival, Rate: *rate, RampTo: *rampTo, BurstOn: *burstOn, BurstOff: *burstOff,
	}
	if err := parseMix(*mix, &spec); err != nil {
		return fail(err)
	}
	if err := spec.Validate(); err != nil {
		return fail(err)
	}
	asserts, err := loadgen.ParseSLO(*slo)
	if err != nil {
		return fail(err)
	}

	if *dump {
		if err := spec.DumpOps(stdout); err != nil {
			return fail(err)
		}
		return 0
	}

	// Assemble the target.
	var (
		tgt        loadgen.Target
		targetName string
		httpTgt    *loadgen.HTTPTarget
		chaos      *faultinject.Chaos
	)
	switch *target {
	case "inproc":
		front, err := mcf0.NewConcurrentF0(spec.Bits, mcf0.Algorithm(*algorithm),
			mcf0.Config{Seed: *sketchSeed}, *replicas)
		if err != nil {
			return fail(err)
		}
		tgt = loadgen.NewInProc(front)
		targetName = "inproc"
	case "http":
		if *url == "" {
			return fail(fmt.Errorf("http target needs -url"))
		}
		cfg := loadgen.HTTPConfig{
			BaseURL: *url, Token: *token, Sketch: *sketch, Clients: spec.Clients,
			Retry: loadgen.RetryPolicy{Max: *retries, Base: *retryBase, Seed: *seed},
		}
		if *chaosSpec != "" {
			chaosCfg, err := faultinject.ParseSpec(*chaosSpec)
			if err != nil {
				return fail(err)
			}
			chaos, err = faultinject.New(chaosCfg)
			if err != nil {
				return fail(err)
			}
			// The chaos transport wraps the same pooled transport the
			// default client would use, so only the faults change.
			conns := spec.Clients
			if conns < 2 {
				conns = 2
			}
			cfg.Client = &http.Client{
				Timeout: 30 * time.Second,
				Transport: chaos.RoundTripper(&http.Transport{
					MaxIdleConns:        conns,
					MaxIdleConnsPerHost: conns,
				}),
			}
		}
		httpTgt, err = loadgen.NewHTTPTarget(cfg)
		if err != nil {
			return fail(err)
		}
		if *create {
			if err := httpTgt.CreateSketch(spec.Bits, *algorithm, *sketchSeed, *replicas); err != nil {
				return fail(fmt.Errorf("creating sketch %q: %w", *sketch, err))
			}
		}
		tgt = httpTgt
		targetName = *url
	default:
		return fail(fmt.Errorf("unknown target %q (want inproc or http)", *target))
	}

	// Profile capture brackets the run only — setup and reporting stay
	// out of the profiles.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
	}
	rep, runErr := loadgen.Run(spec, tgt)
	if *cpuProf != "" {
		pprof.StopCPUProfile()
	}
	if runErr != nil {
		return fail(runErr)
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return fail(err)
		}
		runtime.GC() // settle allocations so the heap profile reflects steady state
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		f.Close()
		rep.MemProfile = *memProf
	}
	rep.Target = targetName
	rep.Note = *note
	rep.CPUProfile = *cpuProf
	if chaos != nil {
		rep.FaultsInjected = chaos.Injected()
	}
	if httpTgt != nil {
		rep.Retries = httpTgt.Retries()
	}

	if *check {
		ref, err := mcf0.NewF0(spec.Bits, mcf0.Algorithm(*algorithm), mcf0.Config{Seed: *sketchSeed})
		if err != nil {
			return fail(err)
		}
		ref.AddBatch(spec.IngestedElements())
		if want := ref.Estimate(); rep.FinalEstimate != want {
			return fail(fmt.Errorf("final estimate %v != serial replay estimate %v (determinism violation)",
				rep.FinalEstimate, want))
		}
	}

	if *del && httpTgt != nil {
		if err := httpTgt.DeleteSketch(); err != nil {
			fmt.Fprintln(stderr, "f0load: deleting sketch:", err)
		}
	}

	buf, err := rep.MarshalIndented()
	if err != nil {
		return fail(err)
	}
	if *out == "-" {
		stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return fail(err)
	}

	if violations := asserts.Check(rep); len(violations) > 0 {
		fmt.Fprintln(stderr, "f0load: SLO violations:")
		for _, v := range violations {
			fmt.Fprintln(stderr, "  -", v)
		}
		return 2
	}
	return 0
}

// parseMix fills the spec's op-mix weights from "kind=weight" terms.
func parseMix(s string, spec *loadgen.Spec) error {
	if strings.TrimSpace(s) == "" {
		return fmt.Errorf("empty -mix")
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return fmt.Errorf("-mix term %q is not kind=weight", part)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || w < 0 {
			return fmt.Errorf("-mix weight %q is not a non-negative number", val)
		}
		switch strings.TrimSpace(key) {
		case "ingest":
			spec.IngestWeight = w
		case "estimate":
			spec.EstimateWeight = w
		case "snapshot":
			spec.SnapshotWeight = w
		default:
			return fmt.Errorf("-mix kind %q unknown (want ingest, estimate, snapshot)", key)
		}
	}
	return nil
}
