package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcf0/internal/loadgen"
	"mcf0/internal/server"
	"mcf0/internal/server/middleware"
)

// runCLI drives the full CLI in-process.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestInProcReportAndSLO: a tiny in-process run writes a parseable
// report, passes an errors=0 SLO, and the -check replay holds.
func TestInProcReportAndSLO(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	code, _, stderr := runCLI(t,
		"-target", "inproc", "-ops", "400", "-clients", "3", "-bits", "18",
		"-batch", "32", "-mix", "ingest=85,estimate=14,snapshot=1",
		"-zipf", "1.4", "-keys", "2000", "-seed", "9",
		"-check", "-slo", "errors=0", "-out", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep.Target != "inproc" || rep.TotalOps != 400 || rep.TotalErrors != 0 {
		t.Fatalf("report wrong: %+v", rep)
	}
	ing := rep.Kinds["ingest"]
	if ing == nil || ing.Count == 0 || ing.P99Ns < ing.P50Ns || ing.MaxNs < ing.P999Ns {
		t.Fatalf("ingest stats inconsistent: %+v", ing)
	}
}

// TestSLOViolationExitsNonzero: an injected violation — a 1ns p50 no
// real operation can meet — must exit 2 and name the violated bound.
func TestSLOViolationExitsNonzero(t *testing.T) {
	code, _, stderr := runCLI(t,
		"-target", "inproc", "-ops", "50", "-clients", "2", "-bits", "16",
		"-batch", "8", "-slo", "p50=1ns", "-out", filepath.Join(t.TempDir(), "r.json"))
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "SLO violations") || !strings.Contains(stderr, "p50") {
		t.Fatalf("violation not reported: %s", stderr)
	}
}

// TestDumpReplayable: -dump renders the transcript without running, and
// equal flag sets dump byte-identical sequences.
func TestDumpReplayable(t *testing.T) {
	args := []string{"-ops", "40", "-batch", "4", "-bits", "12", "-seed", "77",
		"-mix", "ingest=60,estimate=40", "-dump"}
	_, a, _ := runCLI(t, args...)
	_, b, _ := runCLI(t, args...)
	if a == "" || a != b {
		t.Fatal("dump not replayable")
	}
	if !strings.Contains(a, "ingest") || !strings.Contains(a, "estimate") {
		t.Fatalf("dump missing op kinds: %.120s", a)
	}
	code, _, _ := runCLI(t, append(args, "-seed", "78")...)
	if code != 0 {
		t.Fatal("dump with different seed failed")
	}
}

// TestHTTPTargetEndToEnd: the CLI drives a live f0d over HTTP — create,
// mixed load, -check against the serial replay, delete — and the
// report names the daemon URL.
func TestHTTPTargetEndToEnd(t *testing.T) {
	srv, err := server.New(server.Config{
		Tenants: []middleware.TenantConfig{{Name: "cli", Token: "cli-token"}},
		DataDir: t.TempDir(),
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	path := filepath.Join(t.TempDir(), "http.json")
	code, _, stderr := runCLI(t,
		"-target", "http", "-url", ts.URL, "-token", "cli-token", "-sketch", "clirun",
		"-ops", "200", "-clients", "4", "-bits", "18", "-batch", "24",
		"-mix", "ingest=80,estimate=18,snapshot=2", "-seed", "13",
		"-algorithm", "minimum", "-sketch-seed", "4242", "-replicas", "2",
		"-check", "-delete", "-slo", "errors=0", "-out", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Target != ts.URL || rep.TotalErrors != 0 {
		t.Fatalf("report wrong: target %q errors %d", rep.Target, rep.TotalErrors)
	}
}

// TestChaosEndToEnd: the CLI's -chaos/-retries flags drive a seeded
// fault-injected run whose -check differential still holds (invariant
// 9) and whose report tallies the injected faults and retries.
func TestChaosEndToEnd(t *testing.T) {
	srv, err := server.New(server.Config{
		Tenants: []middleware.TenantConfig{{Name: "cli", Token: "cli-token"}},
		DataDir: t.TempDir(),
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	path := filepath.Join(t.TempDir(), "chaos.json")
	code, _, stderr := runCLI(t,
		"-target", "http", "-url", ts.URL, "-token", "cli-token", "-sketch", "chaosrun",
		"-ops", "200", "-clients", "4", "-bits", "18", "-batch", "24",
		"-mix", "ingest=85,estimate=13,snapshot=2", "-seed", "13",
		"-algorithm", "minimum", "-sketch-seed", "4242", "-replicas", "2",
		"-chaos", "seed=7,latency=0.04,max-latency=500us,reset=0.06,truncate=0.04,corrupt=0.04",
		"-retries", "16", "-retry-base", "200us",
		"-check", "-slo", "errors=0", "-out", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.TotalErrors != 0 {
		t.Fatalf("%d errors surfaced despite retries", rep.TotalErrors)
	}
	total := uint64(0)
	for _, n := range rep.FaultsInjected {
		total += n
	}
	if total == 0 {
		t.Fatal("report tallies no injected faults under ~18% chaos")
	}
	if rep.Retries == 0 {
		t.Fatal("report tallies no retries despite injected faults")
	}
}

// TestChaosSpecRejected: a malformed -chaos spec is a usage error, not a
// silent fault-free run.
func TestChaosSpecRejected(t *testing.T) {
	code, _, stderr := runCLI(t,
		"-target", "http", "-url", "http://127.0.0.1:1", "-token", "x",
		"-chaos", "reset=1.5", "-create=false", "-ops", "1")
	if code != 1 {
		t.Fatalf("exit %d for out-of-range chaos rate, want 1 (stderr %q)", code, stderr)
	}
	if !strings.Contains(stderr, "reset") {
		t.Fatalf("error does not name the bad key: %q", stderr)
	}
}

// TestProfileCapture: -cpuprofile/-memprofile write non-empty pprof
// files and the report records their paths.
func TestProfileCapture(t *testing.T) {
	dir := t.TempDir()
	cpu, mem, out := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof"), filepath.Join(dir, "r.json")
	code, _, stderr := runCLI(t,
		"-target", "inproc", "-ops", "300", "-clients", "2", "-bits", "16", "-batch", "64",
		"-cpuprofile", cpu, "-memprofile", mem, "-out", out)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil || st.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err=%v)", p, err)
		}
	}
	raw, _ := os.ReadFile(out)
	var rep loadgen.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.CPUProfile != cpu || rep.MemProfile != mem {
		t.Fatalf("profile paths not recorded: %+v", rep)
	}
}

// TestUsageErrors: bad flags and specs exit 1 with a diagnostic.
func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-target", "carrier-pigeon"},
		{"-target", "http"}, // no -url
		{"-ops", "0"},
		{"-mix", "teleport=1"},
		{"-mix", ""},
		{"-slo", "p98=1ms"},
		{"-zipf", "0.3"},
		{"-arrival", "constant"}, // no rate
		{"-algorithm", "bogus"},
	}
	for _, args := range cases {
		code, _, stderr := runCLI(t, args...)
		if code != 1 {
			t.Errorf("args %v: exit %d (stderr %q), want 1", args, code, stderr)
		}
	}
}
