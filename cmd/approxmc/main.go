// Command approxmc is an approximate model counter in the spirit of the
// ApproxMC tool family, implementing the three counters of "Model Counting
// meets F0 Estimation" (PODS 2021).
//
// Usage:
//
//	approxmc [flags] [file]
//
// The input is a DIMACS CNF ("p cnf") or DNF ("p dnf") formula, read from
// the file argument or standard input.
//
//	-format cnf|dnf      input representation (default cnf)
//	-alg bucketing|minimum|estimation|karpluby
//	                     counting algorithm (default bucketing = ApproxMC)
//	-eps float           tolerance ε (default 0.8)
//	-delta float         failure probability δ (default 0.2)
//	-thresh int          override sketch width 96/ε²
//	-iters int           override median trials 35·log₂(1/δ)
//	-seed int            random seed (runs are deterministic per seed)
//	-binary              use the ApproxMC2 binary search (bucketing only)
//	-v                   also report oracle-query counts and, for
//	                     SAT-backed runs, the CDCL solver's work counters
//	                     (decisions, propagations, conflicts, learned and
//	                     deleted clauses, restarts)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mcf0"
)

func main() {
	var (
		format  = flag.String("format", "cnf", "input format: cnf or dnf")
		alg     = flag.String("alg", "bucketing", "algorithm: bucketing, minimum, estimation, karpluby")
		eps     = flag.Float64("eps", 0.8, "tolerance ε")
		delta   = flag.Float64("delta", 0.2, "failure probability δ")
		thresh  = flag.Int("thresh", 0, "override Thresh (0 = paper constant 96/ε²)")
		iters   = flag.Int("iters", 0, "override iterations (0 = paper constant 35·log₂(1/δ))")
		seed    = flag.Uint64("seed", 1, "random seed")
		binary  = flag.Bool("binary", false, "ApproxMC2 binary prefix search (bucketing)")
		verbose = flag.Bool("v", false, "report oracle queries")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	cfg := mcf0.Config{
		Epsilon:      *eps,
		Delta:        *delta,
		Thresh:       *thresh,
		Iterations:   *iters,
		Seed:         *seed,
		BinarySearch: *binary,
	}

	var (
		res mcf0.CountResult
		err error
	)
	switch *format {
	case "cnf":
		res, err = mcf0.CountCNF(in, mcf0.Algorithm(*alg), cfg)
	case "dnf":
		res, err = mcf0.CountDNF(in, mcf0.Algorithm(*alg), cfg)
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("s mc %.6g\n", res.Estimate)
	fmt.Printf("c log2(count) = %.3f\n", mcf0.Log2(res.Estimate))
	if *verbose {
		fmt.Printf("c oracle queries = %d\n", res.OracleQueries)
		if st := res.Solver; st != (mcf0.SolverStats{}) {
			fmt.Printf("c solver: decisions=%d propagations=%d conflicts=%d learned=%d deleted=%d restarts=%d\n",
				st.Decisions, st.Propagations, st.Conflicts, st.Learned, st.Deleted, st.Restarts)
			shrink := 0.0
			if st.LearnedLits > 0 {
				shrink = 100 * float64(st.MinimizedLits) / float64(st.LearnedLits)
			}
			fmt.Printf("c solver: learned-lits=%d minimized-lits=%d shrink=%.1f%%\n",
				st.LearnedLits, st.MinimizedLits, shrink)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "approxmc:", err)
	os.Exit(1)
}
