// Command f0 estimates the number of distinct elements covered by a stream
// of items read from standard input (or a file), one item per line:
//
//	e <value>                      a single element
//	r <lo1> <hi1> [<lo2> <hi2>…]   a d-dimensional range (box)
//	p <a> <b> <logstep>            a 1-d arithmetic progression, step 2^logstep
//	d <lit…> 0 [<lit…> 0 …]        a DNF set in DIMACS literal convention
//
// Lines starting with '#' are comments. Item kinds may not be mixed except
// that 'e' lines are accepted alongside 'd' lines (a singleton is a DNF).
//
//	-bits int       universe bits per dimension (default 32)
//	-dims int       dimensions for range streams (default 1)
//	-nvars int      variables for DNF streams (default = -bits)
//	-alg string     element-stream sketch: bucketing|minimum|estimation
//	-par int        sketch-copy worker pool (0 = GOMAXPROCS, 1 = serial)
//	-replicas int   element streams only: ingest through a lock-free
//	                ConcurrentF0 with this many replicas fed by as many
//	                goroutines (0 = off, -1 = GOMAXPROCS)
//	-snapshot path  after ingesting, write the sketch's complete state
//	                (versioned wire codec) to path
//	-restore path   before ingesting, seed the sketch from a snapshot —
//	                crash recovery: restore + remainder of the stream is
//	                bit-identical to one uninterrupted run
//	-eps, -delta, -thresh, -iters, -seed   as in approxmc
//
// Items are ingested in chunks of 256 so the sketch copies fan out across
// the worker pool once per chunk rather than once per item; estimates are
// identical to item-at-a-time processing at any -par level, and — for
// element streams under -replicas — at any replica count.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"

	"mcf0"
)

func main() {
	var (
		bits  = flag.Int("bits", 32, "universe bits per dimension")
		dims  = flag.Int("dims", 1, "dimensions for range streams")
		nvars = flag.Int("nvars", 0, "variables for DNF streams (default -bits)")
		alg   = flag.String("alg", "minimum", "element sketch: bucketing, minimum, estimation")
		eps   = flag.Float64("eps", 0.8, "tolerance ε")
		delta = flag.Float64("delta", 0.2, "failure probability δ")
		th    = flag.Int("thresh", 0, "override Thresh")
		it    = flag.Int("iters", 0, "override iterations")
		seed  = flag.Uint64("seed", 1, "random seed")
		par   = flag.Int("par", 0, "sketch-copy worker pool (0 = GOMAXPROCS, 1 = serial)")
		reps  = flag.Int("replicas", 0, "element streams: lock-free ConcurrentF0 replicas (0 = off, -1 = GOMAXPROCS)")
		snap  = flag.String("snapshot", "", "write the sketch snapshot to this file after ingesting")
		rest  = flag.String("restore", "", "seed the sketch from this snapshot file before ingesting")
	)
	flag.Parse()
	if *nvars == 0 {
		*nvars = *bits
	}
	cfg := mcf0.Config{Epsilon: *eps, Delta: *delta, Thresh: *th, Iterations: *it, Seed: *seed,
		Parallelism: *par}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	var (
		elemSketch  *mcf0.F0
		concSketch  *mcf0.ConcurrentF0
		rangeSketch *mcf0.RangeF0
		progSketch  *mcf0.ProgressionF0
		dnfSketch   *mcf0.DNFSetF0
		items       int
	)

	// Under -replicas, element chunks are handed to a pool of feeder
	// goroutines that ingest concurrently through the lock-free front;
	// estimates are unchanged (the replicas merge to the same state no
	// matter which feeder absorbed which chunk).
	var (
		concChunks chan []uint64
		concWG     sync.WaitGroup
	)
	startFeeders := func() {
		concChunks = make(chan []uint64, 4*concSketch.Replicas())
		for w := 0; w < concSketch.Replicas(); w++ {
			concWG.Add(1)
			go func() {
				defer concWG.Done()
				for chunk := range concChunks {
					concSketch.AddBatch(chunk)
				}
			}()
		}
	}
	startConc := func() {
		var err error
		concSketch, err = mcf0.NewConcurrentF0(*bits, mcf0.Algorithm(*alg), cfg, *reps)
		if err != nil {
			fatal(err)
		}
		startFeeders()
	}

	// Crash recovery: a snapshot written by -snapshot (or any
	// MarshalBinary blob) seeds the matching sketch, and the rest of the
	// stream continues it — restore + remainder is bit-identical to one
	// uninterrupted run, because snapshots round-trip complete state.
	var restoredKind string
	if *rest != "" {
		blob, err := os.ReadFile(*rest)
		if err != nil {
			fatal(err)
		}
		elemSketch, concSketch, rangeSketch, progSketch, dnfSketch, err =
			decodeSnapshot(blob, *par, *reps)
		if err != nil {
			fatal(err)
		}
		restoredKind, _ = mcf0.SnapshotKind(blob)
		if concSketch != nil {
			startFeeders()
		}
	}
	// A restored snapshot fixes the stream kind: items that would build a
	// *different* sketch are a wrong-mode restore, not a fresh stream.
	guardRestore := func(want string) {
		if restoredKind != "" {
			fatal(fmt.Errorf("%s items do not match the restored %s snapshot", want, restoredKind))
		}
	}

	// Chunked ingestion: items accumulate per destination and flush to the
	// batch APIs every batchSize items (and at EOF), so the per-copy worker
	// pool dispatches once per chunk instead of once per item. The sketches
	// are order-insensitive, so estimates match item-at-a-time processing.
	const batchSize = 256
	var (
		elemBuf    []uint64   // 'e' lines bound for elemSketch
		dnfElemBuf []uint64   // 'e' lines bound for dnfSketch
		rangeLos   [][]uint64 // 'r' lines
		rangeHis   [][]uint64
		dnfBuf     [][][]int // 'd' lines
	)
	flush := func() {
		if len(elemBuf) > 0 {
			if concSketch != nil {
				concChunks <- append([]uint64(nil), elemBuf...)
			} else {
				elemSketch.AddBatch(elemBuf)
			}
			elemBuf = elemBuf[:0]
		}
		if len(dnfElemBuf) > 0 {
			dnfSketch.AddElementBatch(dnfElemBuf)
			dnfElemBuf = dnfElemBuf[:0]
		}
		if len(rangeLos) > 0 {
			if err := rangeSketch.AddRangeBatch(rangeLos, rangeHis); err != nil {
				fatal(err)
			}
			rangeLos, rangeHis = rangeLos[:0], rangeHis[:0]
		}
		if len(dnfBuf) > 0 {
			if err := dnfSketch.AddDNFBatch(dnfBuf); err != nil {
				fatal(err)
			}
			dnfBuf = dnfBuf[:0]
		}
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		kind, args := fields[0], fields[1:]
		items++
		switch kind {
		case "e":
			if dnfSketch != nil {
				dnfElemBuf = append(dnfElemBuf, parseU(args[0]))
				if len(dnfElemBuf) >= batchSize {
					flush()
				}
				continue
			}
			if elemSketch == nil && concSketch == nil {
				guardRestore("element")
				if *reps != 0 {
					startConc()
				} else {
					var err error
					elemSketch, err = mcf0.NewF0(*bits, mcf0.Algorithm(*alg), cfg)
					if err != nil {
						fatal(err)
					}
				}
			}
			elemBuf = append(elemBuf, parseU(args[0]))
			if len(elemBuf) >= batchSize {
				flush()
			}
		case "r":
			if rangeSketch == nil {
				guardRestore("range")
				widths := make([]int, *dims)
				for i := range widths {
					widths[i] = *bits
				}
				var err error
				rangeSketch, err = mcf0.NewRangeF0(widths, cfg)
				if err != nil {
					fatal(err)
				}
			}
			if len(args) != 2**dims {
				fatal(fmt.Errorf("range line needs %d bounds, got %d", 2**dims, len(args)))
			}
			lo := make([]uint64, *dims)
			hi := make([]uint64, *dims)
			for i := 0; i < *dims; i++ {
				lo[i], hi[i] = parseU(args[2*i]), parseU(args[2*i+1])
			}
			rangeLos, rangeHis = append(rangeLos, lo), append(rangeHis, hi)
			if len(rangeLos) >= batchSize {
				flush()
			}
		case "p":
			if progSketch == nil {
				guardRestore("progression")
				var err error
				progSketch, err = mcf0.NewProgressionF0([]int{*bits}, cfg)
				if err != nil {
					fatal(err)
				}
			}
			if len(args) != 3 {
				fatal(fmt.Errorf("progression line needs a b logstep"))
			}
			ls, err := strconv.Atoi(args[2])
			if err != nil {
				fatal(err)
			}
			if err := progSketch.AddProgression(
				[]uint64{parseU(args[0])}, []uint64{parseU(args[1])}, []int{ls}); err != nil {
				fatal(err)
			}
		case "d":
			if dnfSketch == nil {
				guardRestore("DNF")
				dnfSketch = mcf0.NewDNFSetF0(*nvars, cfg)
			}
			terms, err := parseTerms(args)
			if err != nil {
				fatal(err)
			}
			dnfBuf = append(dnfBuf, terms)
			if len(dnfBuf) >= batchSize {
				flush()
			}
		default:
			fatal(fmt.Errorf("unknown item kind %q", kind))
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	flush()
	if concSketch != nil {
		close(concChunks)
		concWG.Wait()
	}

	var est float64
	switch {
	case concSketch != nil:
		est = concSketch.Estimate()
	case elemSketch != nil:
		est = elemSketch.Estimate()
	case rangeSketch != nil:
		est = rangeSketch.Estimate()
	case progSketch != nil:
		est = progSketch.Estimate()
	case dnfSketch != nil:
		est = dnfSketch.Estimate()
	default:
		fatal(fmt.Errorf("empty stream"))
	}
	if *snap != "" {
		blob, err := encodeSnapshot(elemSketch, concSketch, rangeSketch, progSketch, dnfSketch)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*snap, blob, 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("items %d\n", items)
	fmt.Printf("f0 %.6g\n", est)
}

// decodeSnapshot restores a snapshot blob into the sketch slot matching
// its wire kind (exactly one of the returned sketches is non-nil). An F0
// snapshot lands on the concurrent front when reps requests one, so a
// serial run can be resumed concurrently and vice versa; kinds with no
// input mode here (e.g. affine streams) are refused by name.
func decodeSnapshot(blob []byte, par, reps int) (*mcf0.F0, *mcf0.ConcurrentF0, *mcf0.RangeF0, *mcf0.ProgressionF0, *mcf0.DNFSetF0, error) {
	kind, err := mcf0.SnapshotKind(blob)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	switch kind {
	case "mcf0.F0":
		if reps != 0 {
			c, err := mcf0.DecodeConcurrentF0(blob, reps)
			return nil, c, nil, nil, nil, err
		}
		f, err := mcf0.DecodeF0(blob, par)
		return f, nil, nil, nil, nil, err
	case "mcf0.RangeF0":
		r, err := mcf0.DecodeRangeF0(blob, par)
		return nil, nil, r, nil, nil, err
	case "mcf0.ProgressionF0":
		p, err := mcf0.DecodeProgressionF0(blob, par)
		return nil, nil, nil, p, nil, err
	case "mcf0.DNFSetF0":
		d, err := mcf0.DecodeDNFSetF0(blob, par)
		return nil, nil, nil, nil, d, err
	default:
		return nil, nil, nil, nil, nil, fmt.Errorf("snapshot kind %s has no f0 input mode", kind)
	}
}

// encodeSnapshot marshals whichever sketch the run built (the concurrent
// front snapshots as a plain F0 message).
func encodeSnapshot(elem *mcf0.F0, conc *mcf0.ConcurrentF0, rng *mcf0.RangeF0, prog *mcf0.ProgressionF0, dnf *mcf0.DNFSetF0) ([]byte, error) {
	switch {
	case conc != nil:
		return conc.MarshalBinary()
	case elem != nil:
		return elem.MarshalBinary()
	case rng != nil:
		return rng.MarshalBinary()
	case prog != nil:
		return prog.MarshalBinary()
	case dnf != nil:
		return dnf.MarshalBinary()
	default:
		return nil, fmt.Errorf("nothing to snapshot")
	}
}

func parseTerms(args []string) ([][]int, error) {
	var terms [][]int
	var cur []int
	for _, a := range args {
		v, err := strconv.Atoi(a)
		if err != nil {
			return nil, err
		}
		if v == 0 {
			terms = append(terms, cur)
			cur = nil
			continue
		}
		cur = append(cur, v)
	}
	if len(cur) > 0 {
		terms = append(terms, cur)
	}
	return terms, nil
}

func parseU(s string) uint64 {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		fatal(err)
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "f0:", err)
	os.Exit(1)
}
