package main

import "testing"

func TestParseTerms(t *testing.T) {
	terms, err := parseTerms([]string{"1", "-2", "0", "3", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 2 || len(terms[0]) != 2 || terms[0][1] != -2 || terms[1][0] != 3 {
		t.Fatalf("parsed %v", terms)
	}
	// Trailing unterminated term is kept.
	terms, err = parseTerms([]string{"4", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 1 || len(terms[0]) != 2 {
		t.Fatalf("parsed %v", terms)
	}
	if _, err := parseTerms([]string{"x"}); err == nil {
		t.Fatal("bad literal accepted")
	}
}
