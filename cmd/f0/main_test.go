package main

import (
	"testing"

	"mcf0"
)

func TestParseTerms(t *testing.T) {
	terms, err := parseTerms([]string{"1", "-2", "0", "3", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 2 || len(terms[0]) != 2 || terms[0][1] != -2 || terms[1][0] != 3 {
		t.Fatalf("parsed %v", terms)
	}
	// Trailing unterminated term is kept.
	terms, err = parseTerms([]string{"4", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 1 || len(terms[0]) != 2 {
		t.Fatalf("parsed %v", terms)
	}
	if _, err := parseTerms([]string{"x"}); err == nil {
		t.Fatal("bad literal accepted")
	}
}

// Snapshot round-trip through the command's helpers: every input mode
// encodes, decodes into the matching slot, and resumes bit-identically —
// the crash-recovery contract of -snapshot/-restore.
func TestSnapshotHelpers(t *testing.T) {
	cfg := mcf0.Config{Thresh: 24, Iterations: 5, Seed: 31, Parallelism: 1}

	f, err := mcf0.NewF0(16, mcf0.AlgorithmMinimum, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 800; i++ {
		f.Add(i * i % 500)
	}
	blob, err := encodeSnapshot(f, nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	elem, conc, rng, prog, dnf, err := decodeSnapshot(blob, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if elem == nil || conc != nil || rng != nil || prog != nil || dnf != nil {
		t.Fatal("F0 snapshot restored into the wrong slot")
	}
	if elem.Estimate() != f.Estimate() {
		t.Fatalf("restored estimate %v != %v", elem.Estimate(), f.Estimate())
	}
	// Crash recovery: restore + remainder equals one uninterrupted run.
	whole, _ := mcf0.NewF0(16, mcf0.AlgorithmMinimum, cfg)
	for i := uint64(0); i < 1200; i++ {
		whole.Add(i * i % 500)
	}
	for i := uint64(800); i < 1200; i++ {
		elem.Add(i * i % 500)
	}
	if elem.Estimate() != whole.Estimate() {
		t.Fatalf("resumed estimate %v != uninterrupted %v", elem.Estimate(), whole.Estimate())
	}

	// With -replicas, the same F0 blob restores onto a concurrent front.
	_, conc, _, _, _, err = decodeSnapshot(blob, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if conc == nil || conc.Replicas() != 2 {
		t.Fatal("F0 snapshot did not restore onto the concurrent front")
	}
	if conc.Estimate() != f.Estimate() {
		t.Fatalf("concurrent restore estimate %v != %v", conc.Estimate(), f.Estimate())
	}

	d := mcf0.NewDNFSetF0(10, cfg)
	if err := d.AddDNF([][]int{{1, 2}, {-3, 4}}); err != nil {
		t.Fatal(err)
	}
	blob, err = encodeSnapshot(nil, nil, nil, nil, d)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, _, dnf, err = decodeSnapshot(blob, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dnf == nil || dnf.Estimate() != d.Estimate() {
		t.Fatal("DNF snapshot did not restore")
	}

	// Kinds without an input mode and corrupt blobs are refused.
	a, err := mcf0.NewAffineF0(8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ablob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, _, err := decodeSnapshot(ablob, 1, 0); err == nil {
		t.Fatal("affine snapshot accepted by a command with no affine input")
	}
	if _, _, _, _, _, err := decodeSnapshot([]byte("garbage"), 1, 0); err == nil {
		t.Fatal("garbage blob accepted")
	}
	if _, err := encodeSnapshot(nil, nil, nil, nil, nil); err == nil {
		t.Fatal("empty run snapshotted")
	}
}
