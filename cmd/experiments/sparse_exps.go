package main

import (
	"fmt"

	"mcf0/internal/counting"
	"mcf0/internal/exact"
	"mcf0/internal/formula"
	"mcf0/internal/hash"
	"mcf0/internal/oracle"
	"mcf0/internal/stats"
)

func init() {
	register("A04-sparsexor", "§6 'Sparse XORs': sparse vs dense hash rows in ApproxMC", runA4)
	register("A05-sampling", "§6 'Sampling': near-uniform solution sampling via the bucketing sketch", runA5)
}

func runA4(c runConfig) {
	trials := c.trials
	if trials == 0 {
		trials = pick(c.quick, 5, 12)
	}
	rng := stats.NewRNG(c.seed)
	n := 16
	cnf, _ := formula.PlantedKCNF(n, 3*n/2, 3, rng)
	truth := float64(exact.CountCNF(cnf))
	tab := newTable("family", "avg row weight", "rel.err(med)", "in-band", "oracle calls")
	configs := []struct {
		name string
		fam  hash.Family
	}{
		{"dense (toeplitz)", hash.NewToeplitz(n, n)},
		{"sparse d=0.25", hash.NewSparse(n, n, 0.25)},
		{"sparse d=0.125", hash.NewSparse(n, n, 0.125)},
	}
	for _, cfgFam := range configs {
		// Measure average row weight over a few draws.
		weight := 0
		const probes = 10
		probeRng := stats.NewRNG(c.seed + 7)
		for i := 0; i < probes; i++ {
			h := cfgFam.fam.Draw(probeRng.Uint64).(*hash.Linear)
			for r := 0; r < h.A.Rows(); r++ {
				weight += h.A.Row(r).PopCount()
			}
		}
		avgW := float64(weight) / float64(probes*n)
		var queries int64
		re, rate := accuracy(truth, 0.8, trials, func(seed uint64) float64 {
			src := oracle.NewCNFSource(cnf)
			o := withSeed(fastOpts(seed, c.quick), seed)
			o.Family = cfgFam.fam
			res := counting.ApproxMC(src, o)
			queries = res.OracleQueries
			return res.Estimate
		})
		tab.add(cfgFam.name, avgW, re, rate, queries)
	}
	tab.print()
	fmt.Println("  §6 direction: moderately sparse rows keep estimates in-band while each XOR")
	fmt.Println("  touches far fewer variables than dense (≈ n/2 per row); push density too low")
	fmt.Println("  and accuracy collapses — exactly the trade-off the sparse-hashing literature")
	fmt.Println("  (Meel–Akshay: density Θ(log m/m) with corrected analysis) formalises")
}

func runA5(c runConfig) {
	rng := stats.NewRNG(c.seed)
	// A formula with a known 32-element solution set.
	n := 11
	cnf := formula.NewCNF(n)
	for v := 0; v < n-5; v++ {
		cnf.AddClause(formula.Clause{formula.Pos(v)})
	}
	src := oracle.NewCNFSource(cnf)
	samples := pick(c.quick, 320, 960)
	opts := fastOpts(c.seed, c.quick)
	opts.RNG = rng
	counts := map[string]int{}
	for _, x := range counting.Sample(src, samples, opts) {
		counts[x.Key()]++
	}
	expected := float64(samples) / 32
	minC, maxC := samples, 0
	for _, cc := range counts {
		if cc < minC {
			minC = cc
		}
		if cc > maxC {
			maxC = cc
		}
	}
	tab := newTable("solutions", "samples", "hit", "expected/solution", "min", "max", "max/min")
	tab.add(32, samples, len(counts), expected, minC, maxC, float64(maxC)/float64(maxC0(minC)))
	tab.print()
	fmt.Println("  §6 direction (JVV counting↔sampling): every solution is hit, frequencies")
	fmt.Println("  concentrate around uniform — the bucketing sketch doubles as a sampler")
}

func maxC0(v int) int {
	if v == 0 {
		return 1
	}
	return v
}
