// Command experiments regenerates every experiment table in EXPERIMENTS.md
// (E1–E11, A1–A3). The paper is a theory paper with no empirical tables of
// its own; each experiment here operationalises one of its theorems or
// claims — see DESIGN.md §4 for the mapping.
//
// Usage:
//
//	experiments [-run regexp] [-quick] [-seed n] [-trials n]
//
// -quick shrinks workloads for a fast smoke pass; default sizes complete
// in a few minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// experiment is one reproducible table.
type experiment struct {
	id    string
	title string
	run   func(c runConfig)
}

type runConfig struct {
	quick  bool
	seed   uint64
	trials int
	// par bounds the sketch-copy / median-trial worker pools
	// (0 = GOMAXPROCS); estimates are identical at every level.
	par int
}

var registry []experiment

func register(id, title string, run func(runConfig)) {
	registry = append(registry, experiment{id: id, title: title, run: run})
}

func main() {
	var (
		pattern = flag.String("run", "", "regexp selecting experiment ids (default: all)")
		quick   = flag.Bool("quick", false, "smaller workloads for a fast pass")
		seed    = flag.Uint64("seed", 1, "base random seed")
		trials  = flag.Int("trials", 0, "override accuracy-trial count (0 = default)")
		par     = flag.Int("par", 0, "worker-pool bound for sketch copies and trials (0 = GOMAXPROCS)")
	)
	flag.Parse()

	var re *regexp.Regexp
	if *pattern != "" {
		var err error
		re, err = regexp.Compile(*pattern)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	sort.Slice(registry, func(i, j int) bool { return registry[i].id < registry[j].id })
	cfg := runConfig{quick: *quick, seed: *seed, trials: *trials, par: *par}
	ran := 0
	for _, e := range registry {
		if re != nil && !re.MatchString(e.id) {
			continue
		}
		fmt.Printf("==== %s — %s ====\n", e.id, e.title)
		e.run(cfg)
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "experiments: no experiment matches", *pattern)
		os.Exit(1)
	}
}
