package main

import (
	"fmt"
	"strings"
	"time"

	"mcf0/internal/counting"
	"mcf0/internal/stats"
)

// table is a minimal fixed-width text table writer.
type table struct {
	headers []string
	rows    [][]string
}

func newTable(headers ...string) *table { return &table{headers: headers} }

func (t *table) add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func (t *table) print() {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Println("  " + strings.Join(parts, "  "))
	}
	line(t.headers)
	seps := make([]string, len(t.headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
}

// fastOpts builds counting options sized for the experiment harness.
func fastOpts(seed uint64, quick bool) counting.Options {
	o := counting.Options{Epsilon: 0.8, Delta: 0.2, Thresh: 32, Iterations: 11, RNG: stats.NewRNG(seed)}
	if quick {
		o.Thresh = 16
		o.Iterations = 5
	}
	return o
}

// accuracy runs an estimator over several seeds against a known truth and
// returns (median relative error, fraction within the (1+eps) band).
func accuracy(truth float64, eps float64, trials int, run func(seed uint64) float64) (relErr, rate float64) {
	if trials < 1 {
		trials = 1
	}
	var errs []float64
	ok := 0
	for s := 0; s < trials; s++ {
		est := run(uint64(10_000 + s))
		if stats.WithinFactor(est, truth, eps) {
			ok++
		}
		re := est/truth - 1
		if re < 0 {
			re = -re
		}
		errs = append(errs, re)
	}
	return stats.Median(errs), float64(ok) / float64(trials)
}

// timeIt measures wall-clock for f.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func pick(quick bool, q, full int) int {
	if quick {
		return q
	}
	return full
}
