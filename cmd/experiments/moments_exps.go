package main

import (
	"fmt"

	"mcf0/internal/bitvec"
	"mcf0/internal/formula"
	"mcf0/internal/moments"
	"mcf0/internal/stats"
)

func init() {
	register("E13-moments", "§6 'Higher Moments': F1/F2 over structured set streams", runE13)
}

func runE13(c runConfig) {
	rng := stats.NewRNG(c.seed)
	n := 10
	items := pick(c.quick, 10, 16)
	var terms []formula.Term
	for i := 0; i < items; i++ {
		w := 5 + rng.Intn(3)
		var tm formula.Term
		seen := map[int]bool{}
		for len(tm) < w {
			v := rng.Intn(n)
			if seen[v] {
				continue
			}
			seen[v] = true
			tm = append(tm, formula.Lit{Var: v, Neg: rng.Bool()})
		}
		terms = append(terms, tm)
	}
	// Ground truth.
	freq := map[uint64]int{}
	for _, tm := range terms {
		for v := uint64(0); v < 1<<uint(n); v++ {
			if tm.Eval(bitvec.FromUint64(v, n)) {
				freq[v]++
			}
		}
	}
	var f1, f2 float64
	for _, f := range freq {
		f1 += float64(f)
		f2 += float64(f) * float64(f)
	}
	trials := c.trials
	if trials == 0 {
		trials = pick(c.quick, 4, 8)
	}
	reF2, rateF2 := accuracy(f2, 1.0, trials, func(seed uint64) float64 {
		sk := moments.NewF2(n, 5, pick(c.quick, 64, 128), stats.NewRNG(seed))
		for _, tm := range terms {
			sk.ProcessTerm(tm)
		}
		return sk.F2()
	})
	sk := moments.NewF2(n, 1, 1, stats.NewRNG(1))
	for _, tm := range terms {
		sk.ProcessTerm(tm)
	}
	tab := newTable("moment", "truth", "estimate / rel.err(med)", "in factor-2 band")
	tab.add("F1 (exact closed form)", f1, fmt.Sprintf("%.0f (exact)", sk.F1()), "-")
	tab.add("F2 (AMS over cubes)", f2, fmt.Sprintf("rel.err %.3f", reF2), rateF2)
	tab.print()
	fmt.Println("  §6 direction: per-item closed-form sign sums make frequency moments of")
	fmt.Println("  structured streams computable without expanding sets; F2 variance control")
	fmt.Println("  under closed-form-compatible hashes is the open problem (see package doc)")
}
