package main

import (
	"fmt"
	"time"

	"mcf0/internal/bitvec"
	"mcf0/internal/distributed"
	"mcf0/internal/exact"
	"mcf0/internal/formula"
	"mcf0/internal/stats"
	"mcf0/internal/streaming"
)

func init() {
	register("E04-f0sketches", "Lemmas 1-3: the three F0 sketches — accuracy, space, time/item", runE4)
	register("E05-distributed", "§4: distributed DNF counting — accuracy and communication bits", runE5)
}

func streamOpts(seed uint64, c runConfig) streaming.Options {
	o := streaming.Options{Epsilon: 0.8, Delta: 0.2, Thresh: 32, Iterations: 11,
		RNG: stats.NewRNG(seed), Parallelism: c.par}
	if c.quick {
		o.Thresh = 16
		o.Iterations = 5
	}
	return o
}

func uniformStream(n, distinct, length int, rng *stats.RNG) []bitvec.BitVec {
	vals := make([]uint64, distinct)
	seen := map[uint64]bool{}
	for i := range vals {
		for {
			v := rng.Uint64n(uint64(1) << uint(n))
			if !seen[v] {
				seen[v] = true
				vals[i] = v
				break
			}
		}
	}
	out := make([]bitvec.BitVec, 0, length)
	for _, v := range vals {
		out = append(out, bitvec.FromUint64(v, n))
	}
	for len(out) < length {
		out = append(out, bitvec.FromUint64(vals[rng.Intn(distinct)], n))
	}
	return out
}

// zipfStream draws elements with a heavy-tailed repeat distribution while
// still guaranteeing every distinct value appears.
func zipfStream(n, distinct, length int, rng *stats.RNG) []bitvec.BitVec {
	base := uniformStream(n, distinct, distinct, rng)
	out := append([]bitvec.BitVec(nil), base...)
	for len(out) < length {
		// Index ∝ 1/(i+1): inverse-CDF-ish via rejection.
		i := rng.Intn(distinct)
		j := rng.Intn(distinct)
		if j < i {
			i = j
		}
		out = append(out, base[i])
	}
	return out
}

func runE4(c runConfig) {
	trials := c.trials
	if trials == 0 {
		trials = pick(c.quick, 4, 8)
	}
	n := 32
	tab := newTable("sketch", "workload", "F0", "rel.err(med)", "in-band", "words", "ns/item")
	f0s := []int{100, 10_000}
	if !c.quick {
		f0s = append(f0s, 100_000)
	}
	type mk struct {
		name  string
		build func(seed uint64) streaming.Estimator
	}
	mks := []mk{
		{"bucketing", func(s uint64) streaming.Estimator { return streaming.NewBucketing(n, streamOpts(s, c)) }},
		{"minimum", func(s uint64) streaming.Estimator { return streaming.NewMinimum(n, streamOpts(s, c)) }},
	}
	for _, workload := range []string{"uniform", "zipf"} {
		for _, f0 := range f0s {
			for _, m := range mks {
				var words int
				var perItem time.Duration
				re, rate := accuracy(float64(f0), 0.8, trials, func(seed uint64) float64 {
					rng := stats.NewRNG(seed)
					var stream []bitvec.BitVec
					if workload == "uniform" {
						stream = uniformStream(n, f0, 2*f0, rng)
					} else {
						stream = zipfStream(n, f0, 2*f0, rng)
					}
					e := m.build(seed)
					// Chunked ingestion: one pool dispatch per 256 elements.
					dur := timeIt(func() {
						for lo := 0; lo < len(stream); lo += 256 {
							e.ProcessBatch(stream[lo:min(lo+256, len(stream))])
						}
					})
					perItem = dur / time.Duration(len(stream))
					words = e.SketchWords()
					return e.Estimate()
				})
				tab.add(m.name, workload, f0, re, rate, words, perItem.Nanoseconds())
			}
		}
	}
	// Estimation sketch: heavier per-item cost, smaller workload.
	estF0 := pick(c.quick, 100, 500)
	var words int
	re, rate := accuracy(float64(estF0), 0.8, trials, func(seed uint64) float64 {
		rng := stats.NewRNG(seed)
		stream := uniformStream(24, estF0, estF0, rng)
		o := streamOpts(seed, c)
		o.Iterations = 7
		e := streaming.NewEstimation(24, o)
		for _, x := range stream {
			e.Process(x)
		}
		words = e.SketchWords()
		return e.Estimate()
	})
	tab.add("estimation", "uniform", estF0, re, rate, words, "-")
	tab.print()
	fmt.Println("  paper claim: all three sketches are (ε,δ)-correct; sketch space O(Thresh·t) ≪ F0")
}

func runE5(c runConfig) {
	trials := c.trials
	if trials == 0 {
		trials = pick(c.quick, 3, 6)
	}
	rng := stats.NewRNG(c.seed)
	n := 16
	d := formula.RandomDNF(n, 16, 6, rng)
	truth := float64(exact.CountDNF(d))
	ks := []int{2, 4, 8}
	if !c.quick {
		ks = append(ks, 16)
	}
	tab := newTable("protocol", "sites k", "rel.err(med)", "in-band", "bits coord→sites", "bits sites→coord", "bits total")
	for _, k := range ks {
		parts := distributed.Split(d, k)
		for _, proto := range []string{"bucketing", "minimum"} {
			var comm distributed.Comm
			re, rate := accuracy(truth, 0.8, trials, func(seed uint64) float64 {
				o := distOpts(seed, c)
				var res distributed.Result
				if proto == "bucketing" {
					res = distributed.Bucketing(parts, o)
				} else {
					res = distributed.Minimum(parts, o)
				}
				comm = res.Comm
				return res.Estimate
			})
			tab.add(proto, k, re, rate, comm.CoordToSites, comm.SitesToCoord, comm.Total())
		}
		// Estimation protocol (exhaustive tester; n = 16 is fine).
		var comm distributed.Comm
		re, rate := accuracy(truth, 0.8, trials, func(seed uint64) float64 {
			o := distOpts(seed, c)
			o.Iterations = 5
			r, extra := distributed.RoughR(parts, 5, o)
			res := distributed.Estimation(parts, r, o)
			comm = res.Comm
			comm.CoordToSites += extra.CoordToSites
			comm.SitesToCoord += extra.SitesToCoord
			return res.Estimate
		})
		tab.add("estimation", k, re, rate, comm.CoordToSites, comm.SitesToCoord, comm.Total())
	}
	tab.print()
	fmt.Println("  paper claims: Bucketing/Estimation Õ(k(n+1/ε²)log 1/δ) bits; Minimum O(kn/ε²·log 1/δ) bits;")
	fmt.Println("  lower bound Ω(k/ε²) — all protocols must grow linearly in k (visible above)")
}

func distOpts(seed uint64, c runConfig) distributed.Options {
	o := distributed.Options{Epsilon: 0.8, Delta: 0.2, Thresh: 32, Iterations: 11,
		RNG: stats.NewRNG(seed), Parallelism: c.par}
	if c.quick {
		o.Thresh = 16
		o.Iterations = 5
	}
	return o
}
