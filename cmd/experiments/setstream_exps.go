package main

import (
	"fmt"
	"time"

	"mcf0/internal/bitvec"
	"mcf0/internal/exact"
	"mcf0/internal/formula"
	"mcf0/internal/gf2"
	"mcf0/internal/oracle"
	"mcf0/internal/setstream"
	"mcf0/internal/stats"
	"mcf0/internal/streaming"
)

func init() {
	register("E06-dnfstream", "Theorem 5: F0 over DNF sets — per-item time vs naive expansion", runE6)
	register("E07-ranges", "Lemma 4 + Theorem 6: F0 over d-dimensional ranges", runE7)
	register("E08-affine", "Theorem 7: F0 over affine-space streams", runE8)
	register("E09-blowup", "Observations 1 & 2: DNF blowup vs CNF for [1,2^n-1]^d", runE9)
	register("E10-weighted", "§5: weighted #DNF via the range-stream reduction", runE10)
	register("E11-progressions", "Corollary 1: F0 over arithmetic progressions", runE11)
}

func setOpts(seed uint64, c runConfig) setstream.Options {
	o := setstream.Options{Epsilon: 0.8, Delta: 0.2, Thresh: 32, Iterations: 11,
		RNG: stats.NewRNG(seed), Parallelism: c.par}
	if c.quick {
		o.Thresh = 16
		o.Iterations = 5
	}
	return o
}

func runE6(c runConfig) {
	rng := stats.NewRNG(c.seed)
	// Items: single-term DNFs over n vars with w literals → set size
	// 2^(n−w). As sets grow, the naive estimator (expand elements into a
	// Minimum sketch) loses to per-item FindMin; this is the crossover.
	tab := newTable("set size", "sketch time/item", "naive time/item", "speedup")
	n := 24
	widths := []int{20, 16, 12}
	if !c.quick {
		widths = append(widths, 8)
	}
	for _, w := range widths {
		items := 8
		var ds []*formula.DNF
		for i := 0; i < items; i++ {
			ds = append(ds, formula.RandomDNF(n, 1, w, rng))
		}
		sk := setstream.NewDNFStream(n, setOpts(c.seed, c))
		// Batch ingestion: the per-copy FindMin work for all items fans out
		// with a single pool dispatch.
		skTime := timeIt(func() {
			sk.ProcessDNFBatch(ds)
		}) / time.Duration(items)

		naive := streaming.NewMinimum(n, streamOpts(c.seed, c))
		naiveTime := timeIt(func() {
			for _, d := range ds {
				src := oracle.NewDNFSource(d)
				src.Enumerate(nil, -1, func(x bitvec.BitVec) bool {
					naive.Process(x)
					return true
				})
			}
		}) / time.Duration(items)
		size := uint64(1) << uint(n-w)
		tab.add(size, skTime.String(), naiveTime.String(),
			float64(naiveTime)/float64(skTime))
	}
	tab.print()
	fmt.Println("  paper claim: per-item time poly(n,k,1/ε) independent of |set|; naive pays Ω(|set|)")
}

func runE7(c runConfig) {
	trials := c.trials
	if trials == 0 {
		trials = pick(c.quick, 3, 6)
	}
	rng := stats.NewRNG(c.seed)
	tab := newTable("d", "bits/dim", "items", "truth", "rel.err(med)", "in-band", "time/item", "max DNF terms")
	for _, tc := range []struct{ d, bits, items int }{{1, 10, 12}, {2, 7, 10}, {3, 4, 8}} {
		var boxes []formula.MultiRange
		var evals []func(bitvec.BitVec) bool
		maxTerms := 0
		for i := 0; i < tc.items; i++ {
			var dims []formula.Range
			for j := 0; j < tc.d; j++ {
				maxV := uint64(1)<<uint(tc.bits) - 1
				lo := rng.Uint64n(maxV + 1)
				hi := lo + rng.Uint64n(maxV-lo+1)
				dims = append(dims, formula.Range{Lo: lo, Hi: hi, Bits: tc.bits})
			}
			mr := formula.MultiRange{Dims: dims}
			boxes = append(boxes, mr)
			dd, err := formula.MultiRangeDNF(mr)
			if err != nil {
				panic(err)
			}
			if dd.Size() > maxTerms {
				maxTerms = dd.Size()
			}
			evals = append(evals, dd.Eval)
		}
		total := tc.d * tc.bits
		truth := 0.0
		for v := uint64(0); v < 1<<uint(total); v++ {
			x := bitvec.FromUint64(v, total)
			for _, e := range evals {
				if e(x) {
					truth++
					break
				}
			}
		}
		var perItem time.Duration
		re, rate := accuracy(truth, 0.8, trials, func(seed uint64) float64 {
			widths := make([]int, tc.d)
			for i := range widths {
				widths[i] = tc.bits
			}
			rs := setstream.NewRangeStream(widths, setOpts(seed, c))
			dur := timeIt(func() {
				for _, b := range boxes {
					if err := rs.ProcessRange(b); err != nil {
						panic(err)
					}
				}
			})
			perItem = dur / time.Duration(len(boxes))
			return rs.Estimate()
		})
		tab.add(tc.d, tc.bits, tc.items, truth, re, rate, perItem.String(), maxTerms)
	}
	tab.print()
	fmt.Println("  paper claim: per-item time poly((nd)⁴·…); DNF size ≤ (2n)^d (visible in last column)")
}

func runE8(c runConfig) {
	trials := c.trials
	if trials == 0 {
		trials = pick(c.quick, 3, 6)
	}
	rng := stats.NewRNG(c.seed)
	// Accuracy at small n against brute force.
	n := 12
	type item struct {
		a *gf2.Matrix
		b bitvec.BitVec
	}
	var items []item
	var evals []func(bitvec.BitVec) bool
	for i := 0; i < 8; i++ {
		rows := 4 + rng.Intn(4)
		a := gf2.RandomMatrix(rows, n, rng.Uint64)
		b := bitvec.Random(rows, rng.Uint64)
		items = append(items, item{a, b})
		aa, bb := a, b
		evals = append(evals, func(x bitvec.BitVec) bool { return aa.MulVec(x).Equal(bb) })
	}
	truth := 0.0
	for v := uint64(0); v < 1<<uint(n); v++ {
		x := bitvec.FromUint64(v, n)
		for _, e := range evals {
			if e(x) {
				truth++
				break
			}
		}
	}
	re, rate := accuracy(truth, 0.8, trials, func(seed uint64) float64 {
		as := setstream.NewAffineStream(n, setOpts(seed, c))
		for _, it := range items {
			as.ProcessAffine(it.a, it.b)
		}
		return as.Estimate()
	})
	tab := newTable("n", "truth", "rel.err(med)", "in-band")
	tab.add(n, truth, re, rate)
	tab.print()
	// Per-item time scaling in n (Theorem 7: O(n⁴/ε²·log 1/δ) per item).
	scale := newTable("n", "time/item")
	ns := []int{16, 32}
	if !c.quick {
		ns = append(ns, 48, 64)
	}
	for _, nn := range ns {
		a := gf2.RandomMatrix(nn/2, nn, rng.Uint64)
		b := bitvec.Random(nn/2, rng.Uint64)
		as := setstream.NewAffineStream(nn, setOpts(c.seed, c))
		dur := timeIt(func() { as.ProcessAffine(a, b) })
		scale.add(nn, dur.String())
	}
	scale.print()
}

func runE9(c runConfig) {
	tab := newTable("n", "d", "DNF terms", "n^d (lower bd)", "CNF clauses", "2nd (upper bd)")
	for _, tc := range []struct{ n, d int }{{4, 1}, {8, 1}, {4, 2}, {8, 2}, {4, 3}, {6, 3}} {
		var dims []formula.Range
		for i := 0; i < tc.d; i++ {
			dims = append(dims, formula.Range{Lo: 1, Hi: uint64(1)<<uint(tc.n) - 1, Bits: tc.n})
		}
		dnf, err := formula.MultiRangeDNF(formula.MultiRange{Dims: dims})
		if err != nil {
			panic(err)
		}
		cnf, err := formula.MultiRangeCNF(formula.MultiRange{Dims: dims})
		if err != nil {
			panic(err)
		}
		nd := 1
		for i := 0; i < tc.d; i++ {
			nd *= tc.n
		}
		tab.add(tc.n, tc.d, dnf.Size(), nd, cnf.Size(), 2*tc.n*tc.d)
	}
	tab.print()
	fmt.Println("  Observation 1: the DNF for [1,2^n−1]^d needs ≥ n^d terms; Observation 2: CNF stays O(nd)")
}

func runE10(c runConfig) {
	trials := c.trials
	if trials == 0 {
		trials = pick(c.quick, 3, 6)
	}
	rng := stats.NewRNG(c.seed)
	tab := newTable("weighted DNF", "truth W(φ)", "rel.err(med)", "in-band")
	for trial := 0; trial < 3; trial++ {
		n := 4
		d := formula.RandomDNF(n, 3, 2, rng)
		w := exact.WeightFunc{Num: make([]uint64, n), Bits: make([]int, n)}
		for i := 0; i < n; i++ {
			w.Bits[i] = 2 + rng.Intn(3)
			w.Num[i] = 1 + rng.Uint64n(uint64(1)<<uint(w.Bits[i])-1)
		}
		truth := exact.WeightedCountDNF(d, w)
		re, rate := accuracy(truth, 0.8, trials, func(seed uint64) float64 {
			return setstream.WeightedCount(setstream.WeightedDNF{D: d, W: w}, setOpts(seed, c))
		})
		tab.add(fmt.Sprintf("n=%d k=3 (#%d)", n, trial), truth, re, rate)
	}
	tab.print()
	fmt.Println("  §5 reduction: W(φ) = F0(term boxes)/2^Σmᵢ — an FPRAS route to weighted #DNF")
}

func runE11(c runConfig) {
	trials := c.trials
	if trials == 0 {
		trials = pick(c.quick, 3, 6)
	}
	rng := stats.NewRNG(c.seed)
	bits := 10
	var items [][]formula.Progression
	var evals []func(bitvec.BitVec) bool
	for i := 0; i < 10; i++ {
		maxV := uint64(1)<<uint(bits) - 1
		a := rng.Uint64n(maxV + 1)
		b := a + rng.Uint64n(maxV-a+1)
		ls := rng.Intn(4)
		p := formula.Progression{A: a, B: b, LogStep: ls, Bits: bits}
		items = append(items, []formula.Progression{p})
		d, err := formula.ProgressionDNF(p)
		if err != nil {
			panic(err)
		}
		evals = append(evals, d.Eval)
	}
	truth := 0.0
	for v := uint64(0); v < 1<<uint(bits); v++ {
		x := bitvec.FromUint64(v, bits)
		for _, e := range evals {
			if e(x) {
				truth++
				break
			}
		}
	}
	re, rate := accuracy(truth, 0.8, trials, func(seed uint64) float64 {
		ps := setstream.NewProgressionStream([]int{bits}, setOpts(seed, c))
		for _, it := range items {
			if err := ps.ProcessProgression(it); err != nil {
				panic(err)
			}
		}
		return ps.Estimate()
	})
	tab := newTable("bits", "items", "truth", "rel.err(med)", "in-band")
	tab.add(bits, len(items), truth, re, rate)
	tab.print()
}
