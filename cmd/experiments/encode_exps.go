package main

import (
	"fmt"
	"math"

	"mcf0/internal/counting"
	"mcf0/internal/encode"
	"mcf0/internal/exact"
	"mcf0/internal/formula"
	"mcf0/internal/oracle"
	"mcf0/internal/stats"
)

func init() {
	register("E12-satoracle", "Proposition 3 made executable: Tseitin-encoded trailing-zero oracle", runE12)
}

func runE12(c runConfig) {
	trials := c.trials
	if trials == 0 {
		trials = pick(c.quick, 3, 6)
	}
	rng := stats.NewRNG(c.seed)
	// Part 1: Algorithm 7 on CNF through the SAT-encoded oracle, compared
	// with the exhaustive ground-truth oracle on the same formula.
	tab := newTable("oracle backend", "n", "truth", "rel.err(med)", "in-band", "SAT calls")
	for _, n := range []int{9, 11} {
		cnf, _ := formula.PlantedKCNF(n, n+2, 3, rng)
		truth := float64(exact.CountCNF(cnf))
		r := int(math.Ceil(math.Log2(2 * truth)))
		if r > n {
			r = n
		}
		encTester := encode.NewPolyTester(cnf)
		exTester := oracle.NewExhaustive(n, cnf.Eval)
		for _, backend := range []struct {
			name string
			tz   oracle.TrailingZeroTester
		}{
			{"tseitin+CDCL", encTester},
			{"exhaustive", exTester},
		} {
			re, rate := accuracy(truth, 0.8, trials, func(seed uint64) float64 {
				o := withSeed(fastOpts(seed, c.quick), seed)
				o.Thresh = pick(c.quick, 16, 32)
				o.Iterations = pick(c.quick, 3, 5)
				return counting.ApproxModelCountEst(backend.tz, n, r, o).Estimate
			})
			calls := "-"
			if backend.name == "tseitin+CDCL" {
				calls = fmt.Sprint(encTester.Queries())
			}
			tab.add(backend.name, n, truth, re, rate, calls)
		}
	}
	tab.print()
	fmt.Println("  the paper's Proposition 3 oracle is abstract; here the GF(2^n) polynomial hash is")
	fmt.Println("  Tseitin-encoded (m² AND gates per field multiplication + native XOR rows) and")
	fmt.Println("  dispatched to the CDCL solver — both backends must and do agree (see encode tests)")
}
