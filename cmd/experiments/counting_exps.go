package main

import (
	"fmt"
	"math"
	"time"

	"mcf0/internal/counting"
	"mcf0/internal/exact"
	"mcf0/internal/formula"
	"mcf0/internal/hash"
	"mcf0/internal/oracle"
	"mcf0/internal/stats"
)

func init() {
	register("E01-approxmc", "Theorem 2: ApproxMC accuracy and oracle calls (Bucketing)", runE1)
	register("E02-minimum", "Theorem 3: Minimum-based counter; FPRAS scaling for DNF", runE2)
	register("E03-estimation", "Theorem 4: Estimation-based counter; O(log n) oracle calls", runE3)
	register("A01-hashfamily", "Ablation: H_Toeplitz vs H_xor (§3.2 remark)", runA1)
	register("A02-search", "Ablation: linear vs binary prefix search (ApproxMC vs ApproxMC2)", runA2)
	register("A03-shootout", "§3.5: DNF FPRAS shootout — Bucketing vs Minimum vs Karp-Luby", runA3)
}

func runE1(c runConfig) {
	trials := c.trials
	if trials == 0 {
		trials = pick(c.quick, 5, 12)
	}
	rng := stats.NewRNG(c.seed)
	tab := newTable("formula", "truth", "rel.err(med)", "in-band", "oracle calls", "per-trial est range")
	// DNF instances (polynomial-time oracle).
	for _, k := range []int{4, 8} {
		d := formula.RandomDNF(14, k, 5, rng)
		truth := float64(exact.CountDNF(d))
		src := oracle.NewDNFSource(d)
		var last counting.Result
		re, rate := accuracy(truth, 0.8, trials, func(seed uint64) float64 {
			last = counting.ApproxMC(src, withSeed(fastOpts(seed, c.quick), seed))
			return last.Estimate
		})
		lo, hi := minMax(last.PerIteration)
		tab.add(fmt.Sprintf("DNF n=14 k=%d", k), truth, re, rate, "poly-time", fmt.Sprintf("[%.3g, %.3g]", lo, hi))
	}
	// CNF instances (SAT-backed NP oracle).
	for _, n := range []int{10, 12} {
		cnf, _ := formula.PlantedKCNF(n, 3*n/2, 3, rng)
		truth := float64(exact.CountCNF(cnf))
		var queries int64
		re, rate := accuracy(truth, 0.8, trials, func(seed uint64) float64 {
			src := oracle.NewCNFSource(cnf)
			res := counting.ApproxMC(src, withSeed(fastOpts(seed, c.quick), seed))
			queries = res.OracleQueries
			return res.Estimate
		})
		tab.add(fmt.Sprintf("CNF n=%d planted", n), truth, re, rate, queries, "")
	}
	tab.print()
	fmt.Println("  paper claim: estimates within (1+ε) w.p. ≥ 1−δ; O(n/ε²·log(1/δ)) NP calls (linear search)")
}

func runE2(c runConfig) {
	trials := c.trials
	if trials == 0 {
		trials = pick(c.quick, 4, 10)
	}
	rng := stats.NewRNG(c.seed)
	tab := newTable("DNF", "truth", "rel.err(med)", "in-band", "time/count")
	for _, tc := range []struct{ n, k, w int }{{16, 8, 5}, {24, 16, 8}, {40, 16, 10}} {
		d := formula.RandomDNF(tc.n, tc.k, tc.w, rng)
		truth := float64(exact.CountDNF(d))
		var dur time.Duration
		re, rate := accuracy(truth, 0.8, trials, func(seed uint64) float64 {
			var res counting.Result
			dur = timeIt(func() {
				res = counting.ApproxModelCountMinDNF(d, withSeed(fastOpts(seed, c.quick), seed))
			})
			return res.Estimate
		})
		tab.add(fmt.Sprintf("n=%d k=%d w=%d", tc.n, tc.k, tc.w), truth, re, rate, dur.String())
	}
	// Scaling in k beyond exact ground truth: report time only.
	scale := newTable("k (terms, n=48 w=12)", "time/count")
	for _, k := range []int{32, 64, 128} {
		if c.quick && k > 32 {
			break
		}
		d := formula.RandomDNF(48, k, 12, rng)
		dur := timeIt(func() {
			counting.ApproxModelCountMinDNF(d, withSeed(fastOpts(1, c.quick), 1))
		})
		scale.add(k, dur.String())
	}
	tab.print()
	fmt.Println("  FPRAS time scaling in k (Theorem 3: O(n⁴·k·1/ε²·log 1/δ)):")
	scale.print()
}

func runE3(c runConfig) {
	trials := c.trials
	if trials == 0 {
		trials = pick(c.quick, 4, 10)
	}
	rng := stats.NewRNG(c.seed)
	tab := newTable("formula", "truth", "r", "rel.err(med)", "in-band")
	for _, n := range []int{10, 12} {
		d := formula.RandomDNF(n, 5, 3, rng)
		truth := float64(exact.CountDNF(d))
		r := int(math.Ceil(math.Log2(2 * truth)))
		if r > n {
			r = n
		}
		ex := oracle.NewExhaustive(n, d.Eval)
		re, rate := accuracy(truth, 0.8, trials, func(seed uint64) float64 {
			o := withSeed(fastOpts(seed, c.quick), seed)
			o.Thresh = 48
			return counting.ApproxModelCountEst(ex, n, r, o).Estimate
		})
		tab.add(fmt.Sprintf("DNF n=%d", n), truth, r, re, rate)
	}
	tab.print()
	// Oracle-call scaling: FindMaxRangeLinear uses O(log n) SAT calls.
	scale := newTable("n", "SAT calls per FindMaxRange", "log2(n)")
	for _, n := range []int{8, 16, 32, 64} {
		cnf, _ := formula.PlantedKCNF(n, n, 3, rng)
		src := oracle.NewCNFSource(cnf)
		h := hash.NewXor(n, n).Draw(stats.NewRNG(c.seed).Uint64).(*hash.Linear)
		before := src.Queries()
		counting.FindMaxRangeLinear(src, h)
		scale.add(n, src.Queries()-before, math.Log2(float64(n)))
	}
	fmt.Println("  oracle-call scaling (Proposition 3: O(log n) per hash):")
	scale.print()
}

func runA1(c runConfig) {
	trials := c.trials
	if trials == 0 {
		trials = pick(c.quick, 5, 12)
	}
	rng := stats.NewRNG(c.seed)
	n := 14
	d := formula.RandomDNF(n, 6, 5, rng)
	truth := float64(exact.CountDNF(d))
	src := oracle.NewDNFSource(d)
	tab := newTable("family", "repr bits", "rel.err(med)", "in-band", "time")
	for _, fam := range []hash.Family{hash.NewToeplitz(n, n), hash.NewXor(n, n)} {
		var bits int
		if fam.Name() == "toeplitz" {
			bits = 2*n - 1 + n
		} else {
			bits = n*n + n
		}
		var dur time.Duration
		re, rate := accuracy(truth, 0.8, trials, func(seed uint64) float64 {
			o := withSeed(fastOpts(seed, c.quick), seed)
			o.Family = fam
			var res counting.Result
			dur = timeIt(func() { res = counting.ApproxMC(src, o) })
			return res.Estimate
		})
		tab.add(fam.Name(), bits, re, rate, dur.String())
	}
	tab.print()
	fmt.Println("  paper claim: both 2-wise independent; Θ(n) vs Θ(n²) bits; no accuracy difference")
}

func runA2(c runConfig) {
	rng := stats.NewRNG(c.seed)
	tab := newTable("n", "linear-scan calls", "binary-search calls", "ratio")
	for _, n := range []int{12, 16, 20, 24} {
		if c.quick && n > 16 {
			break
		}
		cnf := formula.RandomKCNF(n, n/2, 3, rng) // loose: many solutions, deep m*
		linSrc := oracle.NewCNFSource(cnf)
		binSrc := oracle.NewCNFSource(cnf)
		optsL := withSeed(fastOpts(1, c.quick), c.seed)
		optsB := withSeed(fastOpts(1, c.quick), c.seed)
		optsB.BinarySearch = true
		lin := counting.ApproxMC(linSrc, optsL)
		bin := counting.ApproxMC(binSrc, optsB)
		ratio := float64(lin.OracleQueries) / float64(bin.OracleQueries)
		tab.add(n, lin.OracleQueries, bin.OracleQueries, ratio)
	}
	tab.print()
	fmt.Println("  paper claim: ApproxMC2 reduces calls O(n·…) → O(log n·…); ratio grows ~n/log n")
}

func runA3(c runConfig) {
	trials := c.trials
	if trials == 0 {
		trials = pick(c.quick, 4, 10)
	}
	rng := stats.NewRNG(c.seed)
	tab := newTable("DNF", "algorithm", "rel.err(med)", "in-band", "time/count")
	for _, tc := range []struct{ n, k, w int }{{16, 8, 5}, {24, 16, 8}} {
		d := formula.RandomDNF(tc.n, tc.k, tc.w, rng)
		truth := float64(exact.CountDNF(d))
		label := fmt.Sprintf("n=%d k=%d", tc.n, tc.k)
		type algo struct {
			name string
			run  func(seed uint64) float64
		}
		src := oracle.NewDNFSource(d)
		algos := []algo{
			{"bucketing (ApproxMC)", func(seed uint64) float64 {
				return counting.ApproxMC(src, withSeed(fastOpts(seed, c.quick), seed)).Estimate
			}},
			{"minimum", func(seed uint64) float64 {
				return counting.ApproxModelCountMinDNF(d, withSeed(fastOpts(seed, c.quick), seed)).Estimate
			}},
			{"karp-luby", func(seed uint64) float64 {
				o := withSeed(fastOpts(seed, c.quick), seed)
				o.Epsilon = 0.4
				return counting.KarpLuby(d, o).Estimate
			}},
		}
		for _, a := range algos {
			var dur time.Duration
			re, rate := accuracy(truth, 0.8, trials, func(seed uint64) float64 {
				var est float64
				dur = timeIt(func() { est = a.run(seed) })
				return est
			})
			tab.add(label, a.name, re, rate, dur.String())
		}
	}
	tab.print()
	fmt.Println("  §3.5 empirical-study direction: hashing-based FPRAS vs Monte-Carlo")
}

func withSeed(o counting.Options, seed uint64) counting.Options {
	o.RNG = stats.NewRNG(seed*2654435761 + 1)
	return o
}

func minMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
