package main

import (
	"fmt"
	"time"

	"mcf0/internal/bitvec"
	"mcf0/internal/delphic"
	"mcf0/internal/formula"
	"mcf0/internal/setstream"
	"mcf0/internal/stats"
)

func init() {
	register("E14-delphic", "Remark 2: hashing (Lemma 4 DNF) vs sampling (APS/Delphic) on d-dim ranges", runE14)
}

func runE14(c runConfig) {
	trials := c.trials
	if trials == 0 {
		trials = pick(c.quick, 3, 6)
	}
	rng := stats.NewRNG(c.seed)
	tab := newTable("d", "bits/dim", "truth", "hash rel.err", "hash time/item", "APS rel.err", "APS time/item")
	for _, tc := range []struct{ d, bits, items int }{{1, 10, 10}, {2, 7, 8}, {3, 4, 8}} {
		var boxes []formula.MultiRange
		var evals []func(bitvec.BitVec) bool
		for i := 0; i < tc.items; i++ {
			var dims []formula.Range
			for j := 0; j < tc.d; j++ {
				maxV := uint64(1)<<uint(tc.bits) - 1
				lo := rng.Uint64n(maxV + 1)
				hi := lo + rng.Uint64n(maxV-lo+1)
				dims = append(dims, formula.Range{Lo: lo, Hi: hi, Bits: tc.bits})
			}
			mr := formula.MultiRange{Dims: dims}
			boxes = append(boxes, mr)
			dd, err := formula.MultiRangeDNF(mr)
			if err != nil {
				panic(err)
			}
			evals = append(evals, dd.Eval)
		}
		total := tc.d * tc.bits
		truth := 0.0
		for v := uint64(0); v < 1<<uint(total); v++ {
			x := bitvec.FromUint64(v, total)
			for _, e := range evals {
				if e(x) {
					truth++
					break
				}
			}
		}
		var hashItem, apsItem time.Duration
		hashErr, _ := accuracy(truth, 0.8, trials, func(seed uint64) float64 {
			widths := make([]int, tc.d)
			for i := range widths {
				widths[i] = tc.bits
			}
			rs := setstream.NewRangeStream(widths, setOpts(seed, c))
			dur := timeIt(func() {
				for _, b := range boxes {
					if err := rs.ProcessRange(b); err != nil {
						panic(err)
					}
				}
			})
			hashItem = dur / time.Duration(len(boxes))
			return rs.Estimate()
		})
		apsErr, _ := accuracy(truth, 0.8, trials, func(seed uint64) float64 {
			est := delphic.NewEstimator(total, 0.5, 0.2, len(boxes), stats.NewRNG(seed))
			dur := timeIt(func() {
				for _, b := range boxes {
					s, ok := delphic.NewMultiRangeSet(b)
					if !ok {
						continue
					}
					est.Process(s)
				}
			})
			apsItem = dur / time.Duration(len(boxes))
			return est.Estimate()
		})
		tab.add(tc.d, tc.bits, truth, hashErr, hashItem.String(), apsErr, apsItem.String())
	}
	tab.print()
	fmt.Println("  Remark 2: the hashing route pays the (2n)^d DNF materialisation per item, the")
	fmt.Println("  Delphic/APS route runs poly(n, d) per item but must know the stream length M in")
	fmt.Println("  advance — both in-band, with the per-item gap widening as d grows")
}
