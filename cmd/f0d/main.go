// Command f0d is the multi-tenant sketch daemon: named F0 sketches
// served over HTTP/JSON with bearer-token auth, per-tenant quotas and
// rate limits, snapshot/restore crash recovery through the versioned
// wire codec, and a Prometheus-style /metrics endpoint. See docs/API.md
// for the endpoint reference and docs/OPERATIONS.md for the runbook.
//
//	-addr string       listen address (default ":8080")
//	-token string      single-tenant shortcut: "tenant:token"
//	-auth path         auth file, one tenant per line:
//	                     <tenant> <token> [max_sketches] [rate_per_sec] [burst]
//	                   '#' starts a comment; -token and -auth may be combined
//	-data path         snapshot directory; enables POST .../snapshot, the
//	                   shutdown snapshot of dirty sketches, and
//	                   restore-on-boot crash recovery ("" disables all three)
//	-max-batch int     max elements per ingest request (default 65536)
//	-max-body bytes    max request body size (default 8 MiB)
//
// Resilience knobs (all durations accept Go syntax like "30s"; 0 keeps
// the default, negative disables where noted):
//
//	-read-header-timeout   http.Server.ReadHeaderTimeout (default 5s)
//	-read-timeout          http.Server.ReadTimeout (default 60s)
//	-write-timeout         http.Server.WriteTimeout (default 60s)
//	-idle-timeout          http.Server.IdleTimeout (default 120s)
//	-max-header-bytes      request header cap (default 1 MiB)
//	-request-timeout       per-request context deadline (default off)
//	-max-inflight          in-flight request cap; excess sheds 503
//	                       (default 0 = unlimited)
//	-drain-timeout         graceful-shutdown drain bound (default 10s)
//	-breaker-failures      consecutive snapshot disk failures that open
//	                       the circuit breaker (default 3)
//	-breaker-cooldown      open → half-open probe delay (default 10s)
//
// The daemon refuses to start without at least one tenant — there is no
// unauthenticated mode. On SIGINT/SIGTERM it drains in-flight requests,
// snapshots every dirty sketch to -data, and exits 0; a subsequent start
// with the same -data restores every sketch bit-identically (determinism
// invariant 6), so estimates after a restart equal those of an
// uninterrupted run (invariant 7).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"mcf0/internal/server"
	"mcf0/internal/server/middleware"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		token    = flag.String("token", "", `single-tenant shortcut: "tenant:token"`)
		authFile = flag.String("auth", "", "auth file: <tenant> <token> [max_sketches] [rate_per_sec] [burst] per line")
		dataDir  = flag.String("data", "", "snapshot directory (enables snapshot/restore; empty disables)")
		maxBatch = flag.Int("max-batch", 0, "max elements per ingest request (0 = 65536)")
		maxBody  = flag.Int64("max-body", 0, "max request body bytes (0 = 8 MiB)")

		readHeaderTimeout = flag.Duration("read-header-timeout", 0, "HTTP header read timeout (0 = 5s, negative disables)")
		readTimeout       = flag.Duration("read-timeout", 0, "full-request read timeout (0 = 60s, negative disables)")
		writeTimeout      = flag.Duration("write-timeout", 0, "response write timeout (0 = 60s, negative disables)")
		idleTimeout       = flag.Duration("idle-timeout", 0, "keep-alive idle timeout (0 = 120s, negative disables)")
		maxHeaderBytes    = flag.Int("max-header-bytes", 0, "max request header bytes (0 = 1 MiB)")
		requestTimeout    = flag.Duration("request-timeout", 0, "per-request context deadline (0 = off)")
		maxInFlight       = flag.Int("max-inflight", 0, "in-flight request cap, excess sheds 503 (0 = unlimited)")
		drainTimeout      = flag.Duration("drain-timeout", 0, "graceful-shutdown drain bound (0 = 10s)")
		breakerFailures   = flag.Int("breaker-failures", 0, "consecutive snapshot disk failures opening the breaker (0 = 3)")
		breakerCooldown   = flag.Duration("breaker-cooldown", 0, "breaker open-to-probe cooldown (0 = 10s)")
	)
	flag.Parse()

	var tenants []middleware.TenantConfig
	if *token != "" {
		name, tok, ok := strings.Cut(*token, ":")
		if !ok || name == "" || tok == "" {
			fatal(fmt.Errorf(`-token wants "tenant:token", got %q`, *token))
		}
		tenants = append(tenants, middleware.TenantConfig{Name: name, Token: tok})
	}
	if *authFile != "" {
		fileTenants, err := loadAuthFile(*authFile)
		if err != nil {
			fatal(err)
		}
		tenants = append(tenants, fileTenants...)
	}
	if len(tenants) == 0 {
		fatal(fmt.Errorf("no tenants configured: pass -token tenant:token or -auth <file> (f0d has no unauthenticated mode)"))
	}

	s, err := server.New(server.Config{
		Tenants:      tenants,
		DataDir:      *dataDir,
		MaxBatch:     *maxBatch,
		MaxBodyBytes: *maxBody,

		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
		RequestTimeout:    *requestTimeout,
		MaxInFlight:       *maxInFlight,
		DrainTimeout:      *drainTimeout,
		BreakerFailures:   *breakerFailures,
		BreakerCooldown:   *breakerCooldown,
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := s.ListenAndServe(ctx, *addr); err != nil {
		fatal(err)
	}
}

// loadAuthFile parses the tenant file: whitespace-separated fields
// <tenant> <token> [max_sketches] [rate_per_sec] [burst], '#' comments.
func loadAuthFile(path string) ([]middleware.TenantConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var tenants []middleware.TenantConfig
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 5 {
			return nil, fmt.Errorf("%s:%d: want <tenant> <token> [max_sketches] [rate_per_sec] [burst]", path, lineNo)
		}
		tc := middleware.TenantConfig{Name: fields[0], Token: fields[1]}
		if len(fields) > 2 {
			if tc.MaxSketches, err = strconv.Atoi(fields[2]); err != nil {
				return nil, fmt.Errorf("%s:%d: max_sketches: %v", path, lineNo, err)
			}
		}
		if len(fields) > 3 {
			if tc.RatePerSec, err = strconv.ParseFloat(fields[3], 64); err != nil {
				return nil, fmt.Errorf("%s:%d: rate_per_sec: %v", path, lineNo, err)
			}
		}
		if len(fields) > 4 {
			if tc.Burst, err = strconv.Atoi(fields[4]); err != nil {
				return nil, fmt.Errorf("%s:%d: burst: %v", path, lineNo, err)
			}
		}
		tenants = append(tenants, tc)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tenants, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "f0d:", err)
	os.Exit(1)
}
