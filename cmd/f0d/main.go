// Command f0d is the multi-tenant sketch daemon: named F0 sketches
// served over HTTP/JSON with bearer-token auth, per-tenant quotas and
// rate limits, snapshot/restore crash recovery through the versioned
// wire codec, and a Prometheus-style /metrics endpoint. See docs/API.md
// for the endpoint reference and docs/OPERATIONS.md for the runbook.
//
//	-addr string       listen address (default ":8080")
//	-token string      single-tenant shortcut: "tenant:token"
//	-auth path         auth file, one tenant per line:
//	                     <tenant> <token> [max_sketches] [rate_per_sec] [burst]
//	                   '#' starts a comment; -token and -auth may be combined
//	-data path         snapshot directory; enables POST .../snapshot, the
//	                   shutdown snapshot of dirty sketches, and
//	                   restore-on-boot crash recovery ("" disables all three)
//	-max-batch int     max elements per ingest request (default 65536)
//	-max-body bytes    max request body size (default 8 MiB)
//
// The daemon refuses to start without at least one tenant — there is no
// unauthenticated mode. On SIGINT/SIGTERM it drains in-flight requests,
// snapshots every dirty sketch to -data, and exits 0; a subsequent start
// with the same -data restores every sketch bit-identically (determinism
// invariant 6), so estimates after a restart equal those of an
// uninterrupted run (invariant 7).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"mcf0/internal/server"
	"mcf0/internal/server/middleware"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		token    = flag.String("token", "", `single-tenant shortcut: "tenant:token"`)
		authFile = flag.String("auth", "", "auth file: <tenant> <token> [max_sketches] [rate_per_sec] [burst] per line")
		dataDir  = flag.String("data", "", "snapshot directory (enables snapshot/restore; empty disables)")
		maxBatch = flag.Int("max-batch", 0, "max elements per ingest request (0 = 65536)")
		maxBody  = flag.Int64("max-body", 0, "max request body bytes (0 = 8 MiB)")
	)
	flag.Parse()

	var tenants []middleware.TenantConfig
	if *token != "" {
		name, tok, ok := strings.Cut(*token, ":")
		if !ok || name == "" || tok == "" {
			fatal(fmt.Errorf(`-token wants "tenant:token", got %q`, *token))
		}
		tenants = append(tenants, middleware.TenantConfig{Name: name, Token: tok})
	}
	if *authFile != "" {
		fileTenants, err := loadAuthFile(*authFile)
		if err != nil {
			fatal(err)
		}
		tenants = append(tenants, fileTenants...)
	}
	if len(tenants) == 0 {
		fatal(fmt.Errorf("no tenants configured: pass -token tenant:token or -auth <file> (f0d has no unauthenticated mode)"))
	}

	s, err := server.New(server.Config{
		Tenants:      tenants,
		DataDir:      *dataDir,
		MaxBatch:     *maxBatch,
		MaxBodyBytes: *maxBody,
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := s.ListenAndServe(ctx, *addr); err != nil {
		fatal(err)
	}
}

// loadAuthFile parses the tenant file: whitespace-separated fields
// <tenant> <token> [max_sketches] [rate_per_sec] [burst], '#' comments.
func loadAuthFile(path string) ([]middleware.TenantConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var tenants []middleware.TenantConfig
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 5 {
			return nil, fmt.Errorf("%s:%d: want <tenant> <token> [max_sketches] [rate_per_sec] [burst]", path, lineNo)
		}
		tc := middleware.TenantConfig{Name: fields[0], Token: fields[1]}
		if len(fields) > 2 {
			if tc.MaxSketches, err = strconv.Atoi(fields[2]); err != nil {
				return nil, fmt.Errorf("%s:%d: max_sketches: %v", path, lineNo, err)
			}
		}
		if len(fields) > 3 {
			if tc.RatePerSec, err = strconv.ParseFloat(fields[3], 64); err != nil {
				return nil, fmt.Errorf("%s:%d: rate_per_sec: %v", path, lineNo, err)
			}
		}
		if len(fields) > 4 {
			if tc.Burst, err = strconv.Atoi(fields[4]); err != nil {
				return nil, fmt.Errorf("%s:%d: burst: %v", path, lineNo, err)
			}
		}
		tenants = append(tenants, tc)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tenants, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "f0d:", err)
	os.Exit(1)
}
