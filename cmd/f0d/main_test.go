package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadAuthFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "auth")
	content := `# production tenants
acme s3cret 10 100 200

beta  hunter2
gamma g-tok 5
`
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	tenants, err := loadAuthFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 3 {
		t.Fatalf("parsed %d tenants, want 3", len(tenants))
	}
	a := tenants[0]
	if a.Name != "acme" || a.Token != "s3cret" || a.MaxSketches != 10 || a.RatePerSec != 100 || a.Burst != 200 {
		t.Fatalf("acme parsed as %+v", a)
	}
	if b := tenants[1]; b.Name != "beta" || b.Token != "hunter2" || b.MaxSketches != 0 {
		t.Fatalf("beta parsed as %+v", b)
	}
	if g := tenants[2]; g.Name != "gamma" || g.MaxSketches != 5 {
		t.Fatalf("gamma parsed as %+v", g)
	}
}

func TestLoadAuthFileErrors(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"token-missing": "lonely\n",
		"too-many":      "a t 1 2 3 4\n",
		"bad-number":    "a t ten\n",
		"bad-rate":      "a t 1 fast\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := loadAuthFile(path); err == nil {
			t.Errorf("%s: loadAuthFile accepted %q", name, content)
		}
	}
	if _, err := loadAuthFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("loadAuthFile accepted a missing file")
	}
}
