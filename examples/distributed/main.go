// Distributed: DNF counting across sites with metered communication —
// Section 4's protocols end to end. A provenance-style DNF is partitioned
// over k sites (think: shards of a distributed probabilistic database,
// each holding part of a query's lineage); the coordinator estimates the
// global model count while we watch exactly how many bits each protocol
// moves.
package main

import (
	"fmt"
	"log"

	"mcf0"
)

func main() {
	// A 16-variable lineage DNF with 18 derivations. (The Estimation
	// protocol's per-site trailing-zero oracle is the exhaustive backend —
	// no polynomial DNF implementation is known, per §3.4 — so the
	// universe is kept at 2^16.)
	n := 16
	var terms [][]int
	rng := uint64(0x9e3779b9)
	next := func(k int) int { rng = rng*6364136223846793005 + 1; return int(rng>>33) % k }
	for i := 0; i < 18; i++ {
		var t []int
		seen := map[int]bool{}
		for len(t) < 6 {
			v := 1 + next(n)
			if seen[v] {
				continue
			}
			seen[v] = true
			if next(2) == 0 {
				v = -v
			}
			t = append(t, v)
		}
		terms = append(terms, t)
	}

	truth, err := mcf0.ExactCountDNFTerms(n, terms)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lineage: %d terms over %d variables; exact count %d\n\n", len(terms), n, truth)

	cfg := mcf0.Config{Epsilon: 0.8, Delta: 0.2, Thresh: 32, Iterations: 9, Seed: 11}
	fmt.Printf("%-11s %6s %14s %16s %16s %10s\n",
		"protocol", "sites", "estimate", "bits coord→site", "bits site→coord", "in-band?")
	for _, sites := range []int{2, 4, 8} {
		for _, alg := range []mcf0.Algorithm{mcf0.AlgorithmBucketing, mcf0.AlgorithmMinimum, mcf0.AlgorithmEstimation} {
			res, err := mcf0.DistributedCountDNF(n, terms, sites, alg, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-11s %6d %14.0f %16d %16d %10v\n",
				alg, sites, res.Estimate, res.CoordToSites, res.SitesToCoord,
				mcf0.WithinFactor(res.Estimate, float64(truth), 0.8))
		}
		fmt.Println()
	}
	fmt.Println("shape to observe (paper §4): Minimum's site→coord bits ≈ k·t·Thresh·3n dominate;")
	fmt.Println("Bucketing/Estimation send small fingerprints/levels — Õ(k(n+1/ε²)log(1/δ)) total;")
	fmt.Println("every protocol's cost grows linearly in k (lower bound Ω(k/ε²)).")

	// Snapshot shipping over the versioned wire codec: every site ingests
	// its shard into a same-seed sketch, marshals the *complete* sketch
	// state, and ships the blob; the coordinator unmarshals and merges.
	// Because snapshots round-trip complete state (hash draws included),
	// the shared-draw Merge precondition holds across the wire and the
	// coordinator's estimate is bit-identical to a single sketch that
	// ingested the whole formula.
	fmt.Println("\nsnapshot shipping (wire codec, 4 sites):")
	const sites = 4
	parts := make([][][][]int, sites)
	for i, t := range terms {
		parts[i%sites] = append(parts[i%sites], [][]int{t})
	}
	blobs := make([][]byte, sites)
	shipped := 0
	for j := range parts {
		site := mcf0.NewDNFSetF0(n, cfg)
		for _, set := range parts[j] {
			if err := site.AddDNF(set); err != nil {
				log.Fatal(err)
			}
		}
		if blobs[j], err = site.MarshalBinary(); err != nil {
			log.Fatal(err)
		}
		shipped += len(blobs[j])
	}
	merged, err := mcf0.DecodeDNFSetF0(blobs[0], 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, blob := range blobs[1:] {
		dec, err := mcf0.DecodeDNFSetF0(blob, 0)
		if err != nil {
			log.Fatal(err)
		}
		if err := merged.Merge(dec); err != nil {
			log.Fatal(err)
		}
	}
	single := mcf0.NewDNFSetF0(n, cfg)
	for _, t := range terms {
		if err := single.AddDNF([][]int{t}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("coordinator estimate %.0f from %d snapshot bytes; bit-identical to single-node: %v\n",
		merged.Estimate(), shipped, merged.Estimate() == single.Estimate())
}
