// Distributed: DNF counting across sites with metered communication —
// Section 4's protocols end to end. A provenance-style DNF is partitioned
// over k sites (think: shards of a distributed probabilistic database,
// each holding part of a query's lineage); the coordinator estimates the
// global model count while we watch exactly how many bits each protocol
// moves.
package main

import (
	"fmt"
	"log"

	"mcf0"
)

func main() {
	// A 16-variable lineage DNF with 18 derivations. (The Estimation
	// protocol's per-site trailing-zero oracle is the exhaustive backend —
	// no polynomial DNF implementation is known, per §3.4 — so the
	// universe is kept at 2^16.)
	n := 16
	var terms [][]int
	rng := uint64(0x9e3779b9)
	next := func(k int) int { rng = rng*6364136223846793005 + 1; return int(rng>>33) % k }
	for i := 0; i < 18; i++ {
		var t []int
		seen := map[int]bool{}
		for len(t) < 6 {
			v := 1 + next(n)
			if seen[v] {
				continue
			}
			seen[v] = true
			if next(2) == 0 {
				v = -v
			}
			t = append(t, v)
		}
		terms = append(terms, t)
	}

	truth, err := mcf0.ExactCountDNFTerms(n, terms)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lineage: %d terms over %d variables; exact count %d\n\n", len(terms), n, truth)

	cfg := mcf0.Config{Epsilon: 0.8, Delta: 0.2, Thresh: 32, Iterations: 9, Seed: 11}
	fmt.Printf("%-11s %6s %14s %16s %16s %10s\n",
		"protocol", "sites", "estimate", "bits coord→site", "bits site→coord", "in-band?")
	for _, sites := range []int{2, 4, 8} {
		for _, alg := range []mcf0.Algorithm{mcf0.AlgorithmBucketing, mcf0.AlgorithmMinimum, mcf0.AlgorithmEstimation} {
			res, err := mcf0.DistributedCountDNF(n, terms, sites, alg, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-11s %6d %14.0f %16d %16d %10v\n",
				alg, sites, res.Estimate, res.CoordToSites, res.SitesToCoord,
				mcf0.WithinFactor(res.Estimate, float64(truth), 0.8))
		}
		fmt.Println()
	}
	fmt.Println("shape to observe (paper §4): Minimum's site→coord bits ≈ k·t·Thresh·3n dominate;")
	fmt.Println("Bucketing/Estimation send small fingerprints/levels — Õ(k(n+1/ε²)log(1/δ)) total;")
	fmt.Println("every protocol's cost grows linearly in k (lower bound Ω(k/ε²)).")
}
