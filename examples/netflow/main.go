// Netflow: range-efficient F0 over network telemetry — the classic
// motivation for multidimensional-range streams (Section 5; the paper's
// Theorem 6 workload). Firewall/flow logs often arrive as *rectangles*
// (source-IP block × destination-port range); the question "how many
// distinct (address, port) pairs were touched?" is F0 of a union of
// 2-dimensional ranges, which a per-element sketch cannot afford to expand.
package main

import (
	"fmt"
	"log"

	"mcf0"
)

// A flow-aggregate record: a /k IPv4 block crossed with a port range.
type record struct {
	cidrBase uint64 // first address of the block
	cidrSize uint64 // number of addresses
	portLo   uint64
	portHi   uint64
}

func main() {
	// Synthetic telemetry: scanning activity across blocks and port bands.
	var records []record
	// A /16 swept over the low ports.
	records = append(records, record{cidrBase: ip(10, 0, 0, 0), cidrSize: 1 << 16, portLo: 0, portHi: 1023})
	// The same /16 swept again over a overlapping band (dedup matters).
	records = append(records, record{cidrBase: ip(10, 0, 0, 0), cidrSize: 1 << 16, portLo: 512, portHi: 2047})
	// A /24 hammered across all ports.
	records = append(records, record{cidrBase: ip(192, 168, 1, 0), cidrSize: 1 << 8, portLo: 0, portHi: 65535})
	// Scattered /30 probes on a single port.
	for i := uint64(0); i < 20; i++ {
		records = append(records, record{cidrBase: ip(172, 16, 0, 0) + i*4096, cidrSize: 4, portLo: 443, portHi: 443})
	}

	// Sketch over (32-bit address) × (16-bit port). Thresh/Iterations are
	// dialled down from the paper constants to keep the demo snappy; the
	// guarantees degrade gracefully (fewer medians, wider band).
	sk, err := mcf0.NewRangeF0([]int{32, 16}, mcf0.Config{Epsilon: 0.5, Delta: 0.2, Thresh: 48, Iterations: 9, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range records {
		err := sk.AddRange(
			[]uint64{r.cidrBase, r.portLo},
			[]uint64{r.cidrBase + r.cidrSize - 1, r.portHi})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Ground truth by interval arithmetic (the blocks are disjoint across
	// the three groups, and the two /16 records overlap only in ports).
	truth := uint64(1<<16)*2048 + // 10.0.0.0/16 × ports [0,2047] (union of the two bands)
		uint64(1<<8)*65536 + // 192.168.1.0/24 × all ports
		20*4*1 // twenty /30s × one port

	est := sk.Estimate()
	fmt.Printf("records processed:        %d\n", len(records))
	fmt.Printf("true distinct (ip,port):  %d\n", truth)
	fmt.Printf("sketch estimate:          %.0f\n", est)
	fmt.Printf("relative error:           %+.2f%%\n", 100*(est/float64(truth)-1))
	fmt.Printf("within (1+0.5)?           %v\n", mcf0.WithinFactor(est, float64(truth), 0.5))
	fmt.Println("\nnote: expanding these rectangles would mean ~269M per-element updates;")
	fmt.Println("the range sketch did one FindMin per record instead (Theorem 6).")
}

func ip(a, b, c, d uint64) uint64 { return a<<24 | b<<16 | c<<8 | d }
