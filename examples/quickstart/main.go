// Quickstart: a 60-second tour of the mcf0 public API — approximate model
// counting of a DNF with all three transformed streaming algorithms, a
// plain F0 sketch, and an F0 sketch over range items.
package main

import (
	"fmt"
	"log"

	"mcf0"
)

func main() {
	// A small DNF over 14 variables in the DIMACS literal convention:
	// (x1 ∧ x2) ∨ (¬x3 ∧ x4 ∧ x5) ∨ (x6 ∧ ¬x7).
	const nVars = 14
	terms := [][]int{{1, 2}, {-3, 4, 5}, {6, -7}}
	truth, err := mcf0.ExactCountDNFTerms(nVars, terms)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact model count: %d\n\n", truth)

	// Thresh/Iterations default to the paper constants (96/ε², 35·log₂(1/δ));
	// we dial them down so the demo finishes in seconds.
	cfg := mcf0.Config{Epsilon: 0.8, Delta: 0.2, Thresh: 48, Iterations: 11, Seed: 42}
	for _, alg := range []mcf0.Algorithm{
		mcf0.AlgorithmBucketing,  // ApproxMC (Algorithm 5)
		mcf0.AlgorithmMinimum,    // ApproxModelCountMin (Algorithm 6)
		mcf0.AlgorithmEstimation, // ApproxModelCountEst (Algorithm 7)
		mcf0.AlgorithmKarpLuby,   // classical Monte-Carlo baseline
	} {
		res, err := mcf0.CountDNFTerms(nVars, terms, alg, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s estimate = %10.1f  (within (1+ε)? %v)\n",
			alg, res.Estimate, mcf0.WithinFactor(res.Estimate, float64(truth), 0.8))
	}

	// The reverse direction: a streaming F0 sketch over 32-bit elements.
	f0, err := mcf0.NewF0(32, mcf0.AlgorithmMinimum, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for i := uint64(0); i < 50_000; i++ {
		f0.Add(i % 5_000) // 5 000 distinct values, each seen 10 times
	}
	fmt.Printf("\nF0 sketch: estimate = %.0f (true 5000), sketch = %d words\n",
		f0.Estimate(), f0.SketchWords())

	// Structured set stream: each item covers a whole range of values.
	rf, err := mcf0.NewRangeF0([]int{32}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range [][2]uint64{{100, 200_000}, {150_000, 400_000}, {1 << 30, 1<<30 + 10}} {
		if err := rf.AddRange([]uint64{r[0]}, []uint64{r[1]}); err != nil {
			log.Fatal(err)
		}
	}
	// True union: [100, 400000] ∪ [2^30, 2^30+10] = 399901 + 11.
	fmt.Printf("range-stream F0: estimate = %.0f (true %d)\n", rf.Estimate(), 399901+11)
}
