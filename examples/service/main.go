// Service: the f0d multi-tenant sketch daemon driven end to end over
// HTTP — the same wiring cmd/f0d serves, mounted on an in-process test
// server so the example runs hermetically. A client creates a named
// sketch, ingests two batches, queries the estimate (verifying
// determinism invariant 7: the HTTP-served estimate is bit-identical to
// an in-process F0 over the same seed and stream), persists a snapshot,
// and exercises list/inspect/delete; the shutdown path snapshots
// whatever is still dirty. See docs/API.md for the endpoint reference.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"

	"mcf0"
	"mcf0/internal/server"
	"mcf0/internal/server/middleware"
)

const (
	tenant = "acme"
	token  = "s3cret-demo-token"
)

func main() {
	dataDir, err := os.MkdirTemp("", "f0d-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)

	// The daemon: one tenant, quota of 4 sketches, snapshots under dataDir.
	s, err := server.New(server.Config{
		Tenants: []middleware.TenantConfig{{Name: tenant, Token: token, MaxSketches: 4}},
		DataDir: dataDir,
		Logf:    func(string, ...any) {}, // keep the example's output clean
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Create a 32-bit minimum sketch, seed 7, two lock-free replicas.
	var created struct {
		Sketch struct {
			Name       string `json:"name"`
			Thresh     int    `json:"thresh"`
			Iterations int    `json:"iterations"`
		} `json:"sketch"`
	}
	call("POST", ts.URL+"/v1/sketches", map[string]any{
		"name": "flows", "bits": 32, "algorithm": "minimum", "seed": 7, "replicas": 2,
	}, &created)
	fmt.Printf("created %q: thresh=%d iterations=%d\n",
		created.Sketch.Name, created.Sketch.Thresh, created.Sketch.Iterations)

	// Ingest two batches (with overlap: 512 distinct elements total).
	batch := func(lo, hi uint64) []uint64 {
		xs := make([]uint64, 0, hi-lo)
		for x := lo; x < hi; x++ {
			xs = append(xs, x)
		}
		return xs
	}
	var added struct {
		Items   uint64 `json:"items"`
		Version uint64 `json:"version"`
	}
	call("POST", ts.URL+"/v1/sketches/flows/add", map[string]any{"elements": batch(0, 300)}, &added)
	call("POST", ts.URL+"/v1/sketches/flows/add", map[string]any{"elements": batch(200, 512)}, &added)
	fmt.Printf("ingested %d items over %d writes\n", added.Items, added.Version)

	// Query the estimate, twice: the second hit rides the version-counter
	// cache (no writes in between).
	var est struct {
		Estimate float64 `json:"estimate"`
		Cached   bool    `json:"cached"`
	}
	call("GET", ts.URL+"/v1/sketches/flows/estimate", nil, &est)
	first := est.Estimate
	call("GET", ts.URL+"/v1/sketches/flows/estimate", nil, &est)
	fmt.Printf("estimate %.6g (cached on repeat: %v)\n", est.Estimate, est.Cached)

	// Determinism invariant 7: the served estimate is bit-identical to an
	// in-process F0 with the same seed over the same stream.
	ref, err := mcf0.NewF0(32, mcf0.AlgorithmMinimum, mcf0.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	ref.AddBatch(batch(0, 300))
	ref.AddBatch(batch(200, 512))
	if ref.Estimate() != first {
		log.Fatalf("HTTP estimate %v != in-process estimate %v", first, ref.Estimate())
	}
	fmt.Println("HTTP estimate is bit-identical to in-process F0.Estimate")

	// Persist a crash-recovery snapshot and list what we have.
	var snap struct {
		File  string `json:"file"`
		Bytes int    `json:"bytes"`
	}
	call("POST", ts.URL+"/v1/sketches/flows/snapshot", nil, &snap)
	fmt.Printf("snapshot %s (%d bytes)\n", snap.File, snap.Bytes)

	var list struct {
		Sketches []struct {
			Name  string `json:"name"`
			Items uint64 `json:"items"`
			Dirty bool   `json:"dirty"`
		} `json:"sketches"`
	}
	call("GET", ts.URL+"/v1/sketches", nil, &list)
	for _, sk := range list.Sketches {
		fmt.Printf("sketch %q: items=%d dirty=%v\n", sk.Name, sk.Items, sk.Dirty)
	}

	// Delete, then shut down (Shutdown snapshots any remaining dirty
	// sketches — none here).
	call("DELETE", ts.URL+"/v1/sketches/flows", nil, nil)
	if err := s.Shutdown(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("clean shutdown")
}

// call sends one authenticated JSON request and decodes the response.
func call(method, url string, body, out any) {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			log.Fatal(err)
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		log.Fatalf("%s %s: %s: %s", method, url, resp.Status, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			log.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
}
