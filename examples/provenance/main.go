// Provenance: weighted DNF counting for probabilistic databases — the
// paper's own motivating application for #DNF (Section 1 cites provenance
// in probabilistic databases; Section 5 gives the weighted reduction).
//
// Scenario: a tuple-independent probabilistic database of suppliers and
// shipments. Each base tuple tᵢ is present independently with probability
// ρᵢ. The lineage (provenance) of the query
//
//	"is some part available in region R?"
//
// is a DNF over the tuple variables: each term is one derivation
// (supplier present ∧ shipment present). The query's probability is the
// weighted model count of the lineage, which this example computes three
// ways: exactly (inclusion–exclusion), via the paper's reduction of
// weighted #DNF to F0 over multidimensional ranges, and with Karp–Luby on
// the unweighted embedding for contrast.
package main

import (
	"fmt"
	"log"

	"mcf0"
)

// The database: 5 suppliers, 7 shipments. Variables are numbered 1..12 in
// DIMACS convention: suppliers 1..5, shipments 6..12.
var (
	supplierProb = []float64{0.875, 0.75, 0.5, 0.25, 0.8125}
	shipmentProb = []float64{0.5, 0.25, 0.75, 0.5, 0.9375, 0.25, 0.5}

	// Lineage of the query: derivations (supplier, shipment) that witness
	// availability. E.g. {1, 6}: supplier 1 present AND shipment 1 present.
	lineage = [][]int{
		{1, 6}, {1, 7}, // supplier 1 ships twice
		{2, 8},
		{3, 9}, {3, 10},
		{4, 11},
		{5, 12},
	}
)

func main() {
	n := len(supplierProb) + len(shipmentProb)

	// Dyadic weights: every probability above is a multiple of 1/16, so
	// ρᵢ = numᵢ/2^4 exactly (the paper's weight model).
	num := make([]uint64, n)
	bits := make([]int, n)
	probs := append(append([]float64(nil), supplierProb...), shipmentProb...)
	for i, p := range probs {
		bits[i] = 4
		num[i] = uint64(p * 16)
		if float64(num[i])/16 != p {
			log.Fatalf("probability %g is not dyadic/16", p)
		}
	}

	cfg := mcf0.Config{Epsilon: 0.5, Delta: 0.2, Thresh: 96, Iterations: 11, Seed: 7}

	// 1. The paper's reduction: weighted #DNF → F0 over 12-dimensional
	// range items (one box per derivation).
	est, err := mcf0.CountWeightedDNF(n, lineage, num, bits, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Exact, by brute-force inclusion–exclusion over the 7 derivations.
	truth := exactQueryProbability()

	fmt.Println("probabilistic-database query: P(some part available)")
	fmt.Printf("  exact (inclusion-exclusion):   %.6f\n", truth)
	fmt.Printf("  weighted #DNF via range-F0:    %.6f  (within (1+ε)? %v)\n",
		est, mcf0.WithinFactor(est, truth, 0.5))

	// 3. Unweighted count of the lineage for contrast: how many worlds
	// (ignoring probabilities) satisfy the query?
	worlds, err := mcf0.ExactCountDNFTerms(n, lineage)
	if err != nil {
		log.Fatal(err)
	}
	res, err := mcf0.CountDNFTerms(n, lineage, mcf0.AlgorithmMinimum, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsatisfying worlds (unweighted): exact %d, minimum-counter %.0f\n",
		worlds, res.Estimate)
}

// exactQueryProbability computes P(∨ derivations) by inclusion–exclusion
// over the 2^7−1 nonempty derivation subsets, with independent tuples.
func exactQueryProbability() float64 {
	probs := append(append([]float64(nil), supplierProb...), shipmentProb...)
	total := 0.0
	k := len(lineage)
	for mask := 1; mask < 1<<uint(k); mask++ {
		vars := map[int]bool{}
		for i := 0; i < k; i++ {
			if mask&(1<<uint(i)) != 0 {
				for _, v := range lineage[i] {
					vars[v] = true
				}
			}
		}
		p := 1.0
		for v := range vars {
			p *= probs[v-1]
		}
		if popcount(uint(mask))%2 == 1 {
			total += p
		} else {
			total -= p
		}
	}
	return total
}

func popcount(x uint) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}
