// Sampling: near-uniform witness generation from the counting machinery —
// the paper's §6 "Sampling" direction (the Jerrum–Valiant–Vazirani
// counting↔sampling connection). A configuration-space CNF is sampled
// UniGen-style via the bucketing sketch, and the empirical distribution is
// compared against uniform.
//
// Scenario: a tiny product-configuration problem. Five features with
// dependency constraints; "give me 200 random valid configurations" is
// exactly near-uniform SAT witness sampling.
package main

import (
	"fmt"
	"log"
	"sort"

	"mcf0"
)

func main() {
	// Features: 1=gui, 2=cli, 3=remote, 4=auth, 5=audit, 6..8 free flags.
	n := 8
	clauses := [][]int{
		{1, 2},   // at least one frontend
		{-3, 4},  // remote requires auth
		{-4, 5},  // auth requires audit
		{-1, -2}, // not both frontends
	}

	cfg := mcf0.Config{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 9, Seed: 5}

	// How many valid configurations are there?
	count, err := mcf0.CountCNFClauses(n, clauses, mcf0.AlgorithmBucketing, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("approximate #valid configurations: %.0f\n", count.Estimate)

	// Draw samples.
	const samples = 400
	got, err := mcf0.SampleCNFClauses(n, clauses, samples, cfg)
	if err != nil {
		log.Fatal(err)
	}

	freq := map[string]int{}
	for _, s := range got {
		freq[s]++
	}
	fmt.Printf("drew %d samples covering %d distinct configurations\n\n", samples, len(freq))

	// Show the most and least frequent configurations.
	type kv struct {
		k string
		v int
	}
	var all []kv
	for k, v := range freq {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v > all[j].v })
	fmt.Println("config    count   (gui cli remote auth audit f6 f7 f8)")
	show := func(e kv) { fmt.Printf("%s  %5d\n", e.k, e.v) }
	for i := 0; i < 3 && i < len(all); i++ {
		show(all[i])
	}
	fmt.Println("...")
	for i := len(all) - 3; i < len(all); i++ {
		if i >= 3 {
			show(all[i])
		}
	}
	fmt.Printf("\nmax/min frequency ratio: %.1f (uniform would concentrate around %d per config)\n",
		float64(all[0].v)/float64(all[len(all)-1].v), samples/len(freq))
}
