package mcf0

import (
	"fmt"
	"sync"

	"mcf0/internal/bitvec"
	"mcf0/internal/streaming"
)

// Clone returns a deep copy of the sketch sharing the (immutable) hash
// draws — exactly the precondition Merge requires. Feeding the clone
// never disturbs the original.
func (f *F0) Clone() *F0 {
	return &F0{nBits: f.nBits, est: f.est.(streaming.Sketch).Clone()}
}

// Merge folds other's sketch state into f, so that f afterwards estimates
// F0 of the union of both element streams — bit-identical to one sketch
// having ingested both streams interleaved in any order. The two sketches
// must share hash draws: built with the same algorithm, width, and seed
// (or related via Clone). other is not mutated.
func (f *F0) Merge(other *F0) error {
	if other.nBits != f.nBits {
		return fmt.Errorf("mcf0: cannot merge %d-bit and %d-bit sketches", f.nBits, other.nBits)
	}
	a, ok := f.est.(streaming.Sketch)
	b, ok2 := other.est.(streaming.Sketch)
	if !ok || !ok2 {
		return streaming.ErrIncompatibleSketch
	}
	return a.Merge(b)
}

// ConcurrentF0 is a lock-free concurrent-ingestion front over an F0
// sketch: P per-core replicas cloned from one seed sketch (same hash
// draws), each padded onto its own cache lines, so Add and AddBatch may
// be called from any number of goroutines without ever serialising on a
// shared lock — a writer claims whichever replica it can lock without
// blocking. Estimate merges the replicas on demand and caches the answer
// until the next write.
//
// Because the underlying sketches are idempotent, order-insensitive
// functions of the element set and all replicas share draws, the merged
// estimate does not depend on which goroutine's elements landed on which
// replica: fixed-seed ConcurrentF0 estimates are bit-identical to a
// serial F0 over the same element set, at every replica count.
type ConcurrentF0 struct {
	nBits int
	front *streaming.Concurrent
	// batches recycles AddBatch's conversion scratch (slab-backed element
	// vectors) across calls and goroutines; sketches copy what they keep,
	// so a batch can be reused the moment ProcessBatch returns.
	batches sync.Pool
}

// NewConcurrentF0 builds a concurrent F0 sketch over an nBits-bit
// universe with the given replica count (replicas ≤ 0 selects
// GOMAXPROCS). Each replica ingests serially on the claiming goroutine —
// cfg.Parallelism is forced to 1, since concurrency comes from the
// callers' goroutines rather than a per-batch worker pool.
func NewConcurrentF0(nBits int, alg Algorithm, cfg Config, replicas int) (*ConcurrentF0, error) {
	cfg.Parallelism = 1
	seed, err := NewF0(nBits, alg, cfg)
	if err != nil {
		return nil, err
	}
	return &ConcurrentF0{
		nBits: nBits,
		front: streaming.NewConcurrent(seed.est.(streaming.Sketch), replicas),
	}, nil
}

// Replicas returns the replica count.
func (c *ConcurrentF0) Replicas() int { return c.front.Replicas() }

// Bits returns the universe width in bits.
func (c *ConcurrentF0) Bits() int { return c.nBits }

// Version returns the number of completed writes (Add or AddBatch calls)
// absorbed so far. Estimate caches against this counter, so callers can
// key their own caches (or staleness checks) the same way: an unchanged
// Version between two reads means no write completed in between.
func (c *ConcurrentF0) Version() uint64 { return c.front.Version() }

// Add absorbs one stream element; safe to call from any goroutine.
func (c *ConcurrentF0) Add(x uint64) {
	if c.nBits < 64 && x >= 1<<uint(c.nBits) {
		panic(fmt.Sprintf("mcf0: element %d exceeds %d-bit universe", x, c.nBits))
	}
	c.front.Process(bitvec.FromUint64(x, c.nBits))
}

// concBatch is one pooled conversion buffer: element vectors carved from
// a single slab allocation.
type concBatch struct {
	vecs []bitvec.BitVec
}

// AddBatch absorbs a chunk of stream elements on one replica, amortising
// acquisition over the chunk; safe to call from any goroutine. The whole
// slice is validated before any conversion — an out-of-range element
// panics with the batch rejected atomically (no elements ingested,
// nothing allocated) — and conversion reuses pooled scratch instead of
// allocating a fresh []bitvec.BitVec per call.
func (c *ConcurrentF0) AddBatch(xs []uint64) {
	if len(xs) == 0 {
		return
	}
	if c.nBits < 64 {
		for _, x := range xs {
			if x >= 1<<uint(c.nBits) {
				panic(fmt.Sprintf("mcf0: element %d exceeds %d-bit universe", x, c.nBits))
			}
		}
	}
	b, _ := c.batches.Get().(*concBatch)
	if b == nil || cap(b.vecs) < len(xs) {
		n := len(xs)
		if n < 256 {
			n = 256 // pool floor: small batches share one steady-state buffer
		}
		vecs := bitvec.NewSlab(c.nBits, n)
		b = &concBatch{vecs: vecs}
	}
	batch := b.vecs[:len(xs)]
	for i, x := range xs {
		batch[i].SetUint64(x)
	}
	c.front.ProcessBatch(batch)
	c.batches.Put(b)
}

// Estimate merges the replicas and returns the combined distinct-count
// approximation; safe to interleave with concurrent Adds (their elements
// land in a later estimate).
func (c *ConcurrentF0) Estimate() float64 { return c.front.Estimate() }

// SketchWords returns the summed replica footprint in 64-bit words.
func (c *ConcurrentF0) SketchWords() int { return c.front.SketchWords() }

// Merge folds other's sketch state into d (same n, same seed and
// parameters required); d afterwards estimates the union of both DNF-set
// streams.
func (d *DNFSetF0) Merge(other *DNFSetF0) error {
	if other.n != d.n {
		return fmt.Errorf("mcf0: cannot merge %d-var and %d-var DNF streams", d.n, other.n)
	}
	return d.inner.Merge(other.inner)
}

// Merge folds other's sketch state into r (same dimensions, same seed and
// parameters required).
func (r *RangeF0) Merge(other *RangeF0) error {
	if len(other.bits) != len(r.bits) {
		return fmt.Errorf("mcf0: cannot merge %d-dim and %d-dim range streams", len(r.bits), len(other.bits))
	}
	for i := range r.bits {
		if other.bits[i] != r.bits[i] {
			return fmt.Errorf("mcf0: cannot merge range streams: dimension %d is %d bits vs %d bits",
				i, r.bits[i], other.bits[i])
		}
	}
	return r.inner.Merge(other.inner)
}

// Merge folds other's sketch state into p (same dimensions, same seed and
// parameters required).
func (p *ProgressionF0) Merge(other *ProgressionF0) error {
	if len(other.bits) != len(p.bits) {
		return fmt.Errorf("mcf0: cannot merge %d-dim and %d-dim progression streams", len(p.bits), len(other.bits))
	}
	for i := range p.bits {
		if other.bits[i] != p.bits[i] {
			return fmt.Errorf("mcf0: cannot merge progression streams: dimension %d is %d bits vs %d bits",
				i, p.bits[i], other.bits[i])
		}
	}
	return p.inner.Merge(other.inner)
}

// Merge folds other's sketch state into a (same width, same seed and
// parameters required).
func (a *AffineF0) Merge(other *AffineF0) error {
	if other.n != a.n {
		return fmt.Errorf("mcf0: cannot merge %d-bit and %d-bit affine streams", a.n, other.n)
	}
	return a.inner.Merge(other.inner)
}
