// Package mcf0 is a Go library unifying approximate model counting and F0
// (distinct elements) estimation, implementing "Model Counting meets F0
// Estimation" (Pavan, Vinodchandran, Bhattacharyya, Meel; PODS 2021).
//
// The package offers three hashing-based (ε, δ)-approximate model counters
// obtained by transforming classic streaming sketches —
//
//   - AlgorithmBucketing:  ApproxMC (Algorithm 5), from the
//     Gibbons–Tirthapura bucket sketch;
//   - AlgorithmMinimum:    ApproxModelCountMin (Algorithm 6), from the
//     k-minimum-values sketch; an FPRAS for DNF;
//   - AlgorithmEstimation: ApproxModelCountEst (Algorithm 7), from the
//     trailing-zero sketch;
//   - AlgorithmKarpLuby:   the classical Monte-Carlo #DNF baseline;
//
// the corresponding F0 sketches themselves (F0 type), F0 estimation over
// structured set streams — DNF sets, multidimensional ranges, arithmetic
// progressions, affine spaces (Section 5) — weighted DNF counting via the
// range-stream reduction, and distributed DNF counting protocols with
// exact communication metering (Section 4).
//
// Formulas enter either as DIMACS text (CountCNF / CountDNF) or as literal
// lists in the DIMACS convention: literal +v / −v is variable v (1-based)
// positive / negated.
//
// Every estimator is internally t ≈ 35·log₂(1/δ) independent trials or
// sketch copies; Config.Parallelism bounds the worker pool they fan out
// across, and the batch entry points (F0.AddBatch, DNFSetF0.AddDNFBatch,
// RangeF0.AddRangeBatch, …) amortise one pool dispatch over a whole chunk
// of stream items. Fixed-seed results are bit-identical at every
// parallelism level and under any batching of the same stream.
package mcf0

import (
	"fmt"
	"io"
	"math"

	"mcf0/internal/bitvec"
	"mcf0/internal/counting"
	"mcf0/internal/distributed"
	"mcf0/internal/exact"
	"mcf0/internal/formula"
	"mcf0/internal/gf2"
	"mcf0/internal/oracle"
	"mcf0/internal/setstream"
	"mcf0/internal/stats"
	"mcf0/internal/streaming"
)

// Algorithm selects a counting or sketching strategy.
type Algorithm string

// The available algorithms.
const (
	AlgorithmBucketing  Algorithm = "bucketing"
	AlgorithmMinimum    Algorithm = "minimum"
	AlgorithmEstimation Algorithm = "estimation"
	AlgorithmKarpLuby   Algorithm = "karpluby"
)

// Config carries the (ε, δ) parameters shared by every algorithm. The zero
// value uses the paper's constants: ε = 0.8, δ = 0.2, Thresh = 96/ε²,
// Iterations = 35·log₂(1/δ).
type Config struct {
	// Epsilon is the multiplicative error tolerance.
	Epsilon float64
	// Delta is the failure probability.
	Delta float64
	// Thresh overrides the sketch width 96/ε² (mainly for tests).
	Thresh int
	// Iterations overrides the median-trial count 35·log₂(1/δ).
	Iterations int
	// Seed fixes the random source; runs with equal seeds are identical.
	// The zero seed selects a library default (still deterministic).
	Seed uint64
	// BinarySearch enables the ApproxMC2 prefix search for
	// AlgorithmBucketing.
	BinarySearch bool
	// Parallelism bounds the worker pools of every layer: the independent
	// median trials of the counting and distributed algorithms, and the
	// t independent sketch copies of the F0 and set-stream estimators
	// (fanned out per batch — see F0.AddBatch and the set-stream batch
	// methods). 0 selects GOMAXPROCS, 1 forces serial execution. All
	// randomness is drawn serially and keyed by trial/copy index, never by
	// worker, so results for a fixed Seed are bit-identical at every
	// parallelism level.
	Parallelism int
}

func (c Config) countingOptions() counting.Options {
	return counting.Options{
		Epsilon:      c.Epsilon,
		Delta:        c.Delta,
		Thresh:       c.Thresh,
		Iterations:   c.Iterations,
		BinarySearch: c.BinarySearch,
		RNG:          c.rng(),
		Parallelism:  c.Parallelism,
	}
}

// ResolvedThresh returns the sketch width actually used: Thresh when set,
// otherwise the paper constant ⌊96/ε²⌋+1 (with ε defaulting to 0.8).
func (c Config) ResolvedThresh() int {
	if c.Thresh > 0 {
		return c.Thresh
	}
	eps := c.Epsilon
	if eps <= 0 {
		eps = 0.8
	}
	return int(96/(eps*eps)) + 1
}

// ResolvedIterations returns the trial/copy count actually used:
// Iterations when set, otherwise the paper constant max(1, ⌊35·log₂(1/δ)⌋)
// (with δ defaulting to 0.2).
func (c Config) ResolvedIterations() int {
	if c.Iterations > 0 {
		return c.Iterations
	}
	delta := c.Delta
	if delta <= 0 || delta >= 1 {
		delta = 0.2
	}
	t := int(35 * math.Log2(1/delta))
	if t < 1 {
		t = 1
	}
	return t
}

func (c Config) rng() *stats.RNG {
	seed := c.Seed
	if seed == 0 {
		seed = 0x6d6366302e676f
	}
	return stats.NewRNG(seed)
}

// CountResult reports an approximate model count.
type CountResult struct {
	// Estimate approximates |Sol(φ)| within factor (1+ε) with probability
	// ≥ 1−δ.
	Estimate float64
	// OracleQueries counts NP-oracle (SAT) calls, the paper's complexity
	// currency; zero for the polynomial-time DNF paths.
	OracleQueries int64
	// Solver aggregates the CDCL solver's work across every SAT-oracle
	// call (all trial forks and internal rebuilds included); zero for
	// pure-DNF paths. For AlgorithmEstimation over CNF it covers the
	// RoughCount preamble, the only stage that consults the SAT solver.
	// It explains where SAT-backed runs spend their time: cmd/approxmc -v
	// prints it.
	Solver SolverStats
}

// SolverStats mirrors the CDCL solver's work counters.
type SolverStats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Learned      int64
	// Deleted counts learned clauses removed by database reduction.
	Deleted  int64
	Restarts int64
	// LearnedLits counts literals in first-UIP clauses before minimization;
	// MinimizedLits counts how many recursive self-subsumption pruned
	// (MinimizedLits/LearnedLits is the learned-clause shrink rate).
	LearnedLits   int64
	MinimizedLits int64
}

// solverStats snapshots a CNF source's aggregated solver counters.
func solverStats(src *oracle.CNFSource) SolverStats {
	st := src.SolverStats()
	return SolverStats{
		Decisions:     st.Decisions,
		Propagations:  st.Propagations,
		Conflicts:     st.Conflicts,
		Learned:       st.Learned,
		Deleted:       st.Deleted,
		Restarts:      st.Restarts,
		LearnedLits:   st.LearnedLits,
		MinimizedLits: st.MinimizedLits,
	}
}

// CountCNF approximately counts the models of a DIMACS CNF formula.
// AlgorithmEstimation requires n ≤ 24 (its trailing-zero oracle falls back
// to enumeration); AlgorithmKarpLuby applies only to DNF.
func CountCNF(r io.Reader, alg Algorithm, cfg Config) (CountResult, error) {
	c, err := formula.ParseDIMACS(r)
	if err != nil {
		return CountResult{}, err
	}
	return countCNF(c, alg, cfg)
}

// CountCNFClauses counts models of the CNF given as DIMACS-style literal
// lists over n variables.
func CountCNFClauses(n int, clauses [][]int, alg Algorithm, cfg Config) (CountResult, error) {
	c := formula.NewCNF(n)
	for _, cl := range clauses {
		lits, err := dimacsLits(n, cl)
		if err != nil {
			return CountResult{}, err
		}
		c.AddClause(formula.Clause(lits))
	}
	return countCNF(c, alg, cfg)
}

func countCNF(c *formula.CNF, alg Algorithm, cfg Config) (CountResult, error) {
	src := oracle.NewCNFSource(c)
	opts := cfg.countingOptions()
	switch alg {
	case AlgorithmBucketing, "":
		res := counting.ApproxMC(src, opts)
		return CountResult{Estimate: res.Estimate, OracleQueries: res.OracleQueries, Solver: solverStats(src)}, nil
	case AlgorithmMinimum:
		res := counting.ApproxModelCountMinOracle(src, opts)
		return CountResult{Estimate: res.Estimate, OracleQueries: res.OracleQueries, Solver: solverStats(src)}, nil
	case AlgorithmEstimation:
		if c.N > 24 {
			return CountResult{}, fmt.Errorf("mcf0: estimation algorithm limited to 24 variables (enumeration oracle)")
		}
		tz := oracle.NewExhaustive(c.N, c.Eval)
		rParam, _ := counting.RoughCount(src, roughTrials(cfg), cfg.rng())
		if rParam < 0 {
			return CountResult{Estimate: 0}, nil
		}
		res := counting.ApproxModelCountEst(tz, c.N, rParam, opts)
		return CountResult{Estimate: res.Estimate, OracleQueries: res.OracleQueries, Solver: solverStats(src)}, nil
	default:
		return CountResult{}, fmt.Errorf("mcf0: algorithm %q not applicable to CNF", alg)
	}
}

// CountDNF approximately counts the models of a "p dnf" formula.
func CountDNF(r io.Reader, alg Algorithm, cfg Config) (CountResult, error) {
	d, err := formula.ParseDNF(r)
	if err != nil {
		return CountResult{}, err
	}
	return countDNF(d, alg, cfg)
}

// CountDNFTerms counts models of the DNF given as DIMACS-style literal
// lists over n variables.
func CountDNFTerms(n int, terms [][]int, alg Algorithm, cfg Config) (CountResult, error) {
	d, err := dnfFromTerms(n, terms)
	if err != nil {
		return CountResult{}, err
	}
	return countDNF(d, alg, cfg)
}

func countDNF(d *formula.DNF, alg Algorithm, cfg Config) (CountResult, error) {
	opts := cfg.countingOptions()
	switch alg {
	case AlgorithmBucketing, "":
		src := oracle.NewDNFSource(d)
		res := counting.ApproxMC(src, opts)
		return CountResult{Estimate: res.Estimate}, nil
	case AlgorithmMinimum:
		res := counting.ApproxModelCountMinDNF(d, opts)
		return CountResult{Estimate: res.Estimate}, nil
	case AlgorithmEstimation:
		if d.N > 24 {
			return CountResult{}, fmt.Errorf("mcf0: estimation algorithm limited to 24 variables (enumeration oracle)")
		}
		tz := oracle.NewExhaustive(d.N, d.Eval)
		rParam, _ := counting.RoughCount(oracle.NewDNFSource(d), roughTrials(cfg), cfg.rng())
		if rParam < 0 {
			return CountResult{Estimate: 0}, nil
		}
		res := counting.ApproxModelCountEst(tz, d.N, rParam, opts)
		return CountResult{Estimate: res.Estimate, OracleQueries: res.OracleQueries}, nil
	case AlgorithmKarpLuby:
		res := counting.KarpLuby(d, opts)
		return CountResult{Estimate: res.Estimate}, nil
	default:
		return CountResult{}, fmt.Errorf("mcf0: unknown algorithm %q", alg)
	}
}

// ExactCountDNFTerms returns the exact model count by inclusion–exclusion;
// practical only for ≤ 24 terms. Ground truth for small experiments.
func ExactCountDNFTerms(n int, terms [][]int) (uint64, error) {
	d, err := dnfFromTerms(n, terms)
	if err != nil {
		return 0, err
	}
	return exact.CountDNF(d), nil
}

func dnfFromTerms(n int, terms [][]int) (*formula.DNF, error) {
	d := formula.NewDNF(n)
	for _, t := range terms {
		lits, err := dimacsLits(n, t)
		if err != nil {
			return nil, err
		}
		d.AddTerm(formula.Term(lits))
	}
	return d, nil
}

// roughTrials sizes the Flajolet–Martin median used to pick the Estimation
// algorithm's range parameter.
func roughTrials(cfg Config) int {
	if cfg.Iterations > 0 {
		return cfg.Iterations
	}
	return 9
}

func dimacsLits(n int, raw []int) ([]formula.Lit, error) {
	lits := make([]formula.Lit, len(raw))
	for i, v := range raw {
		neg := v < 0
		if neg {
			v = -v
		}
		if v < 1 || v > n {
			return nil, fmt.Errorf("mcf0: literal %d out of range [1,%d]", v, n)
		}
		lits[i] = formula.Lit{Var: v - 1, Neg: neg}
	}
	return lits, nil
}

// F0 is a streaming distinct-elements sketch over a universe of nBits-bit
// integers (nBits ≤ 64).
type F0 struct {
	nBits int
	est   streaming.Estimator
}

// NewF0 builds an F0 sketch using the selected algorithm
// (AlgorithmBucketing, AlgorithmMinimum, or AlgorithmEstimation).
func NewF0(nBits int, alg Algorithm, cfg Config) (*F0, error) {
	if nBits < 1 || nBits > 64 {
		return nil, fmt.Errorf("mcf0: universe width %d out of [1,64]", nBits)
	}
	opts := streaming.Options{
		Epsilon:     cfg.Epsilon,
		Delta:       cfg.Delta,
		Thresh:      cfg.Thresh,
		Iterations:  cfg.Iterations,
		RNG:         cfg.rng(),
		Parallelism: cfg.Parallelism,
	}
	var est streaming.Estimator
	switch alg {
	case AlgorithmBucketing, "":
		est = streaming.NewBucketing(nBits, opts)
	case AlgorithmMinimum:
		est = streaming.NewMinimum(nBits, opts)
	case AlgorithmEstimation:
		est = streaming.NewEstimation(nBits, opts)
	default:
		return nil, fmt.Errorf("mcf0: unknown F0 algorithm %q", alg)
	}
	return &F0{nBits: nBits, est: est}, nil
}

// Add absorbs one stream element.
func (f *F0) Add(x uint64) {
	if f.nBits < 64 && x >= 1<<uint(f.nBits) {
		panic(fmt.Sprintf("mcf0: element %d exceeds %d-bit universe", x, f.nBits))
	}
	f.est.Process(bitvec.FromUint64(x, f.nBits))
}

// AddBatch absorbs a chunk of stream elements, fanning the sketch's
// independent copies across Config.Parallelism workers with one dispatch
// for the whole chunk. Equivalent to calling Add on each element in order;
// chunks of a few hundred elements amortise the dispatch best.
func (f *F0) AddBatch(xs []uint64) {
	if len(xs) == 0 {
		return
	}
	batch := make([]bitvec.BitVec, len(xs))
	for i, x := range xs {
		if f.nBits < 64 && x >= 1<<uint(f.nBits) {
			panic(fmt.Sprintf("mcf0: element %d exceeds %d-bit universe", x, f.nBits))
		}
		batch[i] = bitvec.FromUint64(x, f.nBits)
	}
	f.est.ProcessBatch(batch)
}

// Estimate returns the current distinct-count approximation.
func (f *F0) Estimate() float64 { return f.est.Estimate() }

// Bits returns the universe width in bits.
func (f *F0) Bits() int { return f.nBits }

// SketchWords returns the sketch footprint in 64-bit words.
func (f *F0) SketchWords() int { return f.est.SketchWords() }

// RangeF0 estimates the number of distinct tuples covered by a stream of
// d-dimensional ranges (Theorem 6), in poly(n·d) time per range.
type RangeF0 struct {
	inner *setstream.RangeStream
	bits  []int
}

// NewRangeF0 builds a range-stream sketch; bitsPerDim fixes each
// dimension's width (each ≤ 63).
func NewRangeF0(bitsPerDim []int, cfg Config) (*RangeF0, error) {
	for _, b := range bitsPerDim {
		if b < 1 || b > 63 {
			return nil, fmt.Errorf("mcf0: dimension width %d out of [1,63]", b)
		}
	}
	return &RangeF0{
		inner: setstream.NewRangeStream(bitsPerDim, cfg.setstreamOptions()),
		bits:  append([]int(nil), bitsPerDim...),
	}, nil
}

func (c Config) setstreamOptions() setstream.Options {
	return setstream.Options{
		Epsilon:     c.Epsilon,
		Delta:       c.Delta,
		Thresh:      c.Thresh,
		Iterations:  c.Iterations,
		RNG:         c.rng(),
		Parallelism: c.Parallelism,
	}
}

// AddRange absorbs the box ∏ᵢ [lo[i], hi[i]].
func (r *RangeF0) AddRange(lo, hi []uint64) error {
	if len(lo) != len(r.bits) || len(hi) != len(r.bits) {
		return fmt.Errorf("mcf0: range has %d dims, sketch has %d", len(lo), len(r.bits))
	}
	dims := make([]formula.Range, len(lo))
	for i := range lo {
		dims[i] = formula.Range{Lo: lo[i], Hi: hi[i], Bits: r.bits[i]}
	}
	return r.inner.ProcessRange(formula.MultiRange{Dims: dims})
}

// AddRangeBatch absorbs a chunk of boxes (los[k], his[k] bound box k) with
// a single worker-pool dispatch. On any invalid box the whole batch is
// rejected and the sketch is unchanged.
func (r *RangeF0) AddRangeBatch(los, his [][]uint64) error {
	if len(los) != len(his) {
		return fmt.Errorf("mcf0: batch has %d lower and %d upper bounds", len(los), len(his))
	}
	mrs := make([]formula.MultiRange, len(los))
	for k := range los {
		if len(los[k]) != len(r.bits) || len(his[k]) != len(r.bits) {
			return fmt.Errorf("mcf0: range %d has %d dims, sketch has %d", k, len(los[k]), len(r.bits))
		}
		dims := make([]formula.Range, len(los[k]))
		for i := range los[k] {
			dims[i] = formula.Range{Lo: los[k][i], Hi: his[k][i], Bits: r.bits[i]}
		}
		mrs[k] = formula.MultiRange{Dims: dims}
	}
	return r.inner.ProcessRangeBatch(mrs)
}

// Estimate returns the approximate union size.
func (r *RangeF0) Estimate() float64 { return r.inner.Estimate() }

// ProgressionF0 estimates distinct tuples covered by d-dimensional
// arithmetic progressions with power-of-two steps (Corollary 1).
type ProgressionF0 struct {
	inner *setstream.ProgressionStream
	bits  []int
}

// NewProgressionF0 builds a progression-stream sketch.
func NewProgressionF0(bitsPerDim []int, cfg Config) (*ProgressionF0, error) {
	for _, b := range bitsPerDim {
		if b < 1 || b > 63 {
			return nil, fmt.Errorf("mcf0: dimension width %d out of [1,63]", b)
		}
	}
	return &ProgressionF0{
		inner: setstream.NewProgressionStream(bitsPerDim, cfg.setstreamOptions()),
		bits:  append([]int(nil), bitsPerDim...),
	}, nil
}

// AddProgression absorbs ∏ᵢ {a[i], a[i]+2^logStep[i], …} ∩ [a[i], b[i]].
func (p *ProgressionF0) AddProgression(a, b []uint64, logStep []int) error {
	if len(a) != len(p.bits) || len(b) != len(p.bits) || len(logStep) != len(p.bits) {
		return fmt.Errorf("mcf0: progression arity mismatch")
	}
	ps := make([]formula.Progression, len(a))
	for i := range a {
		ps[i] = formula.Progression{A: a[i], B: b[i], LogStep: logStep[i], Bits: p.bits[i]}
	}
	return p.inner.ProcessProgression(ps)
}

// Estimate returns the approximate union size.
func (p *ProgressionF0) Estimate() float64 { return p.inner.Estimate() }

// DNFSetF0 estimates F0 over a stream of DNF sets (Theorem 5), each given
// as DIMACS-style term lists over a fixed n.
type DNFSetF0 struct {
	n     int
	inner *setstream.DNFStream
}

// NewDNFSetF0 builds a DNF-set-stream sketch over n variables.
func NewDNFSetF0(n int, cfg Config) *DNFSetF0 {
	return &DNFSetF0{n: n, inner: setstream.NewDNFStream(n, cfg.setstreamOptions())}
}

// AddDNF absorbs one DNF set.
func (d *DNFSetF0) AddDNF(terms [][]int) error {
	f, err := dnfFromTerms(d.n, terms)
	if err != nil {
		return err
	}
	d.inner.ProcessDNF(f)
	return nil
}

// AddDNFBatch absorbs a chunk of DNF sets with a single worker-pool
// dispatch. On any invalid term list the whole batch is rejected and the
// sketch is unchanged.
func (d *DNFSetF0) AddDNFBatch(termss [][][]int) error {
	fs := make([]*formula.DNF, len(termss))
	for k, terms := range termss {
		f, err := dnfFromTerms(d.n, terms)
		if err != nil {
			return err
		}
		fs[k] = f
	}
	d.inner.ProcessDNFBatch(fs)
	return nil
}

// AddElement absorbs one plain element (a singleton set).
func (d *DNFSetF0) AddElement(x uint64) {
	d.inner.ProcessElement(bitvec.FromUint64(x, d.n))
}

// AddElementBatch absorbs a chunk of plain elements (singleton sets) with
// a single worker-pool dispatch.
func (d *DNFSetF0) AddElementBatch(xs []uint64) {
	batch := make([]bitvec.BitVec, len(xs))
	for i, x := range xs {
		batch[i] = bitvec.FromUint64(x, d.n)
	}
	d.inner.ProcessElementBatch(batch)
}

// Estimate returns the approximate union size.
func (d *DNFSetF0) Estimate() float64 { return d.inner.Estimate() }

// AffineF0 estimates F0 over a stream of affine spaces {x : Ax = b}
// (Theorem 7), with n ≤ 64 and rows given as coefficient bitmasks (bit i of
// rows[j] is the coefficient of variable i in row j).
type AffineF0 struct {
	n     int
	inner *setstream.AffineStream
}

// NewAffineF0 builds an affine-stream sketch over an n-bit universe.
func NewAffineF0(n int, cfg Config) (*AffineF0, error) {
	if n < 1 || n > 64 {
		return nil, fmt.Errorf("mcf0: universe width %d out of [1,64]", n)
	}
	return &AffineF0{n: n, inner: setstream.NewAffineStream(n, cfg.setstreamOptions())}, nil
}

// AddAffine absorbs {x : Ax = b}: row j's coefficients are the bits of
// rows[j] (bit i ↔ variable i) and b's bit j is (rhs>>j)&1.
func (a *AffineF0) AddAffine(rows []uint64, rhs uint64) {
	m := gf2.NewMatrix(a.n)
	for _, mask := range rows {
		row := bitvec.New(a.n)
		for i := 0; i < a.n; i++ {
			if mask&(1<<uint(i)) != 0 {
				row.Set(i, true)
			}
		}
		m.AddRow(row)
	}
	b := bitvec.New(len(rows))
	for j := range rows {
		if rhs&(1<<uint(j)) != 0 {
			b.Set(j, true)
		}
	}
	a.inner.ProcessAffine(m, b)
}

// Estimate returns the approximate union size.
func (a *AffineF0) Estimate() float64 { return a.inner.Estimate() }

// CountWeightedDNF computes the weighted model count W(φ) of a DNF with
// dyadic weights ρ(xᵢ) = num[i]/2^bits[i], via the paper's reduction to F0
// over d-dimensional ranges.
func CountWeightedDNF(n int, terms [][]int, num []uint64, bits []int, cfg Config) (float64, error) {
	d, err := dnfFromTerms(n, terms)
	if err != nil {
		return 0, err
	}
	w := exact.WeightFunc{Num: num, Bits: bits}
	if !w.Validate(n) {
		return 0, fmt.Errorf("mcf0: invalid weight function (need 0 < num < 2^bits per variable)")
	}
	return setstream.WeightedCount(setstream.WeightedDNF{D: d, W: w}, cfg.setstreamOptions()), nil
}

// DistResult reports a distributed protocol's estimate and exact
// communication cost in bits.
type DistResult struct {
	Estimate     float64
	CommBits     int64
	CoordToSites int64
	SitesToCoord int64
}

// DistributedCountDNF partitions the DNF's terms round-robin over `sites`
// sites and runs the selected distributed protocol (Section 4), returning
// the coordinator's estimate and metered communication.
// AlgorithmEstimation requires n ≤ 24.
func DistributedCountDNF(n int, terms [][]int, sites int, alg Algorithm, cfg Config) (DistResult, error) {
	d, err := dnfFromTerms(n, terms)
	if err != nil {
		return DistResult{}, err
	}
	if sites < 1 {
		return DistResult{}, fmt.Errorf("mcf0: need at least one site")
	}
	parts := distributed.Split(d, sites)
	opts := distributed.Options{
		Epsilon:     cfg.Epsilon,
		Delta:       cfg.Delta,
		Thresh:      cfg.Thresh,
		Iterations:  cfg.Iterations,
		RNG:         cfg.rng(),
		Parallelism: cfg.Parallelism,
	}
	var res distributed.Result
	switch alg {
	case AlgorithmBucketing, "":
		res = distributed.Bucketing(parts, opts)
	case AlgorithmMinimum:
		res = distributed.Minimum(parts, opts)
	case AlgorithmEstimation:
		if n > 24 {
			return DistResult{}, fmt.Errorf("mcf0: estimation protocol limited to 24 variables")
		}
		r, comm := distributed.RoughR(parts, opts.Iterations, opts)
		if r < 0 {
			return DistResult{Estimate: 0, CommBits: comm.Total()}, nil
		}
		res = distributed.Estimation(parts, r, opts)
		res.Comm.CoordToSites += comm.CoordToSites
		res.Comm.SitesToCoord += comm.SitesToCoord
	default:
		return DistResult{}, fmt.Errorf("mcf0: unknown distributed protocol %q", alg)
	}
	return DistResult{
		Estimate:     res.Estimate,
		CommBits:     res.Comm.Total(),
		CoordToSites: res.Comm.CoordToSites,
		SitesToCoord: res.Comm.SitesToCoord,
	}, nil
}

// SampleDNFTerms draws count near-uniform satisfying assignments of a DNF
// (given as DIMACS-style term lists), returned as bit strings ("0"/"1",
// variable 1 first). Implements the paper's §6 sampling direction via the
// bucketing sketch. Returns nil if the formula is unsatisfiable.
func SampleDNFTerms(n int, terms [][]int, count int, cfg Config) ([]string, error) {
	d, err := dnfFromTerms(n, terms)
	if err != nil {
		return nil, err
	}
	return renderSamples(counting.Sample(oracle.NewDNFSource(d), count, cfg.countingOptions())), nil
}

// SampleCNFClauses draws count near-uniform satisfying assignments of a
// CNF via the SAT-backed oracle. Returns nil if unsatisfiable.
func SampleCNFClauses(n int, clauses [][]int, count int, cfg Config) ([]string, error) {
	c := formula.NewCNF(n)
	for _, cl := range clauses {
		lits, err := dimacsLits(n, cl)
		if err != nil {
			return nil, err
		}
		c.AddClause(formula.Clause(lits))
	}
	return renderSamples(counting.Sample(oracle.NewCNFSource(c), count, cfg.countingOptions())), nil
}

func renderSamples(xs []bitvec.BitVec) []string {
	if xs == nil {
		return nil
	}
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = x.String()
	}
	return out
}

// WithinFactor reports whether est is within the (1+eps) band around truth
// — the acceptance predicate of every experiment in EXPERIMENTS.md.
func WithinFactor(est, truth, eps float64) bool {
	return stats.WithinFactor(est, truth, eps)
}

// Log2 is a convenience for reporting counts on a log scale.
func Log2(x float64) float64 { return math.Log2(x) }
