package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// parsedDoc mirrors the output document for assertions.
type parsedDoc struct {
	Note       string            `json:"note"`
	Benchmarks map[string]*Entry `json:"benchmarks"`
}

func build(t *testing.T, baselines, currents []string, note string) parsedDoc {
	t.Helper()
	buf, err := buildReport(baselines, currents, note)
	if err != nil {
		t.Fatal(err)
	}
	var doc parsedDoc
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, buf)
	}
	return doc
}

// TestParseFile: transcript lines become pkg-prefixed metrics; the -N
// GOMAXPROCS suffix is stripped; non-benchmark lines are skipped; runs
// without -benchmem leave the alloc pointers nil.
func TestParseFile(t *testing.T) {
	into := map[string]*Metrics{}
	if err := parseFile("testdata/baseline.txt", into); err != nil {
		t.Fatal(err)
	}
	if len(into) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5: %v", len(into), into)
	}
	xor := into["mcf0/internal/bitvec/BenchmarkXor"]
	if xor == nil {
		t.Fatalf("BenchmarkXor missing (suffix not stripped or pkg prefix wrong): %v", into)
	}
	if xor.NsPerOp != 96.0 || xor.BytesPerOp == nil || *xor.BytesPerOp != 64 ||
		xor.AllocsPerOp == nil || *xor.AllocsPerOp != 2 {
		t.Fatalf("BenchmarkXor metrics wrong: %+v", xor)
	}
	// A line without -benchmem columns (and no -N suffix).
	dot := into["mcf0/internal/bitvec/BenchmarkDot"]
	if dot == nil || dot.NsPerOp != 240 || dot.BytesPerOp != nil || dot.AllocsPerOp != nil {
		t.Fatalf("BenchmarkDot metrics wrong: %+v", dot)
	}
	// The second pkg: header reassigns the prefix.
	if into["mcf0/internal/streaming/BenchmarkMinimumAdd"] == nil {
		t.Fatal("second-package benchmark missing")
	}
	// Zero-alloc baselines record an explicit 0, not nil.
	pop := into["mcf0/internal/bitvec/BenchmarkPopCount"]
	if pop.AllocsPerOp == nil || *pop.AllocsPerOp != 0 {
		t.Fatalf("zero allocs not recorded: %+v", pop)
	}

	if err := parseFile("testdata/nonexistent.txt", into); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestBuildReportRatios: paired runs get SpeedupNs = baseline/current and
// AllocReduction in all three renderings (number, 1, "inf").
func TestBuildReportRatios(t *testing.T) {
	doc := build(t, []string{"testdata/baseline.txt"}, []string{"testdata/current.txt"}, "")

	// 96.0 / 48.0 = 2.00, and 2 allocs → 0 allocs renders "inf".
	xor := doc.Benchmarks["mcf0/internal/bitvec/BenchmarkXor"]
	if xor == nil || xor.SpeedupNs != 2 {
		t.Fatalf("BenchmarkXor speedup: %+v", xor)
	}
	if string(xor.AllocReduction) != `"inf"` {
		t.Fatalf("inf alloc reduction rendered %s", xor.AllocReduction)
	}

	// 0 allocs → 0 allocs renders the number 1.
	pop := doc.Benchmarks["mcf0/internal/bitvec/BenchmarkPopCount"]
	if string(pop.AllocReduction) != `1` {
		t.Fatalf("zero-to-zero alloc reduction rendered %s", pop.AllocReduction)
	}
	if pop.SpeedupNs != 1.11 { // 55.5/50.0 rounded to 2 places
		t.Fatalf("BenchmarkPopCount speedup %v, want 1.11", pop.SpeedupNs)
	}

	// 3 allocs → 1 alloc renders the ratio as a number.
	min := doc.Benchmarks["mcf0/internal/streaming/BenchmarkMinimumAdd"]
	if min.SpeedupNs != 2 || string(min.AllocReduction) != `3` {
		t.Fatalf("BenchmarkMinimumAdd ratios: speedup %v alloc %s", min.SpeedupNs, min.AllocReduction)
	}

	// No -benchmem on either side: no alloc ratio at all.
	dot := doc.Benchmarks["mcf0/internal/bitvec/BenchmarkDot"]
	if dot.SpeedupNs != 2 || dot.AllocReduction != nil {
		t.Fatalf("BenchmarkDot ratios: %+v", dot)
	}

	// Unpaired benchmarks keep their single side and derive nothing.
	bo := doc.Benchmarks["mcf0/internal/streaming/BenchmarkBaselineOnly"]
	if bo == nil || bo.Baseline == nil || bo.Current != nil || bo.SpeedupNs != 0 {
		t.Fatalf("baseline-only entry wrong: %+v", bo)
	}
	co := doc.Benchmarks["mcf0/internal/streaming/BenchmarkCurrentOnly"]
	if co == nil || co.Current == nil || co.Baseline != nil || co.SpeedupNs != 0 {
		t.Fatalf("current-only entry wrong: %+v", co)
	}

	if len(doc.Benchmarks) != 6 {
		t.Fatalf("%d entries, want 6", len(doc.Benchmarks))
	}
}

// TestNoteAppend: -note appends the environment caveat to the standard
// document note (the nproc=1 path bench.sh and load.sh use).
func TestNoteAppend(t *testing.T) {
	plain := build(t, []string{"testdata/baseline.txt"}, []string{"testdata/current.txt"}, "")
	if !strings.Contains(plain.Note, "go test -bench") || strings.Contains(plain.Note, "nproc") {
		t.Fatalf("default note wrong: %q", plain.Note)
	}
	caveat := "NOTE: single-core container (nproc=1); parallel speedups understate multi-core hardware."
	noted := build(t, []string{"testdata/baseline.txt"}, []string{"testdata/current.txt"}, caveat)
	if !strings.HasSuffix(noted.Note, caveat) || !strings.HasPrefix(noted.Note, plain.Note) {
		t.Fatalf("caveat not appended: %q", noted.Note)
	}
}

// TestBuildReportErrors: unreadable inputs fail instead of emitting a
// silently incomplete report.
func TestBuildReportErrors(t *testing.T) {
	if _, err := buildReport([]string{"testdata/nope.txt"}, nil, ""); err == nil {
		t.Fatal("missing baseline accepted")
	}
	if _, err := buildReport(nil, []string{"testdata/nope.txt"}, ""); err == nil {
		t.Fatal("missing current accepted")
	}
	// No inputs at all still renders a valid (empty) document.
	doc := build(t, nil, nil, "")
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("empty inputs produced entries: %v", doc.Benchmarks)
	}
}

// TestRound2 pins the ratio rounding used in the published JSON.
func TestRound2(t *testing.T) {
	cases := map[float64]float64{1.006: 1.01, 2.0: 2, 1.114: 1.11, 0.999: 1}
	for in, want := range cases {
		if got := round2(in); got != want {
			t.Errorf("round2(%v) = %v, want %v", in, got, want)
		}
	}
}
