// Command benchjson converts `go test -bench -benchmem` output into the
// BENCH_<k>.json format used to track the repository's performance
// trajectory across PRs. It pairs a set of baseline files (benchmarks run
// before a change) with current files and emits one JSON object per
// benchmark with ns/op, B/op, allocs/op for both runs plus derived ratios.
//
// Usage:
//
//	benchjson -out BENCH_1.json \
//	    -baseline bench/baseline_hot.txt -baseline bench/baseline_bitvec.txt \
//	    -current bench/current_hot.txt -current bench/current_bitvec.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics holds one benchmark run's figures; pointers distinguish "not
// reported" from zero.
type Metrics struct {
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Entry pairs the baseline and current runs of one benchmark.
type Entry struct {
	Baseline *Metrics `json:"baseline,omitempty"`
	Current  *Metrics `json:"current,omitempty"`
	// SpeedupNs is baseline/current ns per op (>1 means faster now).
	SpeedupNs float64 `json:"speedup_ns,omitempty"`
	// AllocReduction is baseline/current allocs per op; +Inf (rendered as
	// the string "inf") when the current run performs zero allocations.
	AllocReduction json.RawMessage `json:"alloc_reduction,omitempty"`
}

type fileList []string

func (f *fileList) String() string     { return strings.Join(*f, ",") }
func (f *fileList) Set(v string) error { *f = append(*f, v); return nil }

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

func parseFile(path string, into map[string]*Metrics) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	pkg := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := pkg + "/" + m[1]
		met := &Metrics{}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				met.NsPerOp = val
			case "B/op":
				v := val
				met.BytesPerOp = &v
			case "allocs/op":
				v := val
				met.AllocsPerOp = &v
			}
		}
		into[name] = met
	}
	return sc.Err()
}

func main() {
	var baselines, currents fileList
	out := flag.String("out", "BENCH.json", "output JSON path")
	flag.Var(&baselines, "baseline", "baseline benchmark output file (repeatable)")
	flag.Var(&currents, "current", "current benchmark output file (repeatable)")
	note := flag.String("note", "", "environment caveat appended to the output note")
	flag.Parse()

	buf, err := buildReport(baselines, currents, *note)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// buildReport parses the transcript files and renders the BENCH_<k>.json
// document: one entry per benchmark, sorted by name, with derived ratios
// where both runs are present.
func buildReport(baselines, currents []string, note string) ([]byte, error) {
	base := map[string]*Metrics{}
	cur := map[string]*Metrics{}
	for _, p := range baselines {
		if err := parseFile(p, base); err != nil {
			return nil, err
		}
	}
	for _, p := range currents {
		if err := parseFile(p, cur); err != nil {
			return nil, err
		}
	}

	entries := map[string]*Entry{}
	for name, m := range base {
		entries[name] = &Entry{Baseline: m}
	}
	for name, m := range cur {
		e := entries[name]
		if e == nil {
			e = &Entry{}
			entries[name] = e
		}
		e.Current = m
	}
	for _, e := range entries {
		if e.Baseline == nil || e.Current == nil {
			continue
		}
		if e.Current.NsPerOp > 0 {
			e.SpeedupNs = round2(e.Baseline.NsPerOp / e.Current.NsPerOp)
		}
		if e.Baseline.AllocsPerOp != nil && e.Current.AllocsPerOp != nil {
			if *e.Current.AllocsPerOp == 0 {
				if *e.Baseline.AllocsPerOp == 0 {
					e.AllocReduction = json.RawMessage(`1`)
				} else {
					e.AllocReduction = json.RawMessage(`"inf"`)
				}
			} else {
				e.AllocReduction = json.RawMessage(
					strconv.FormatFloat(round2(*e.Baseline.AllocsPerOp / *e.Current.AllocsPerOp), 'f', -1, 64))
			}
		}
	}

	names := make([]string, 0, len(entries))
	for n := range entries {
		names = append(names, n)
	}
	sort.Strings(names)
	ordered := make(map[string]*Entry, len(entries))
	for _, n := range names {
		ordered[n] = entries[n]
	}

	doc := struct {
		Note       string            `json:"note"`
		Benchmarks map[string]*Entry `json:"benchmarks"`
	}{
		Note:       "ns/op, B/op, allocs/op from `go test -bench -benchmem`; baseline = pre-change tree, current = this PR. Regenerate with scripts/bench.sh.",
		Benchmarks: ordered,
	}
	if note != "" {
		doc.Note += " " + note
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}
