#!/usr/bin/env bash
# Runs the hot-path benchmarks with -benchmem and regenerates BENCH_5.json,
# pairing the results with the checked-in pre-change baseline
# (bench/baseline5_*.txt, captured at the PR-4 tree before the rewindable
# elimination engine). Two benchmarks carry in-run baselines as well:
# BenchmarkToeplitzEvalInto's dotrow/* variants force the per-row
# dot-product path, and BenchmarkSystemRewind's clone/* variants run the
# clone-and-replay the rewind engine replaces, both over identical inputs.
# The par=1 vs par=max variants of the sharded benches
# (BenchmarkE4SketchBatch, BenchmarkE6DNFStreamBatch) quantify the per-copy
# fan-out; they collapse to the same figure on a single-core machine.
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_5.json}
HOT='BenchmarkA1HashFamily|BenchmarkToeplitzEvalInto|BenchmarkE4F0Sketches|BenchmarkE4SketchBatch|BenchmarkGF2$|BenchmarkSystemRewind|BenchmarkE1ApproxMC|BenchmarkE2FindMin|BenchmarkE6DNFStream'

mkdir -p bench
go test . -run '^$' -bench "$HOT" -benchmem -benchtime 300ms | tee bench/current_hot.txt
go test ./internal/sat -run '^$' -bench . -benchmem -benchtime 300ms | tee bench/current_sat.txt

go run ./scripts/benchjson -out "$OUT" \
  -baseline bench/baseline5_hot.txt -baseline bench/baseline5_sat.txt \
  -current bench/current_hot.txt -current bench/current_sat.txt

echo "wrote $OUT"
