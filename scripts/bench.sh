#!/usr/bin/env bash
# Runs the hot-path benchmarks with -benchmem and regenerates BENCH_2.json,
# pairing the results with the checked-in pre-change baseline
# (bench/baseline2_*.txt, captured at the PR-1 tree before the CDCL solver
# overhaul). Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_2.json}
HOT='BenchmarkA1HashFamily|BenchmarkE4F0Sketches|BenchmarkGF2$|BenchmarkE1ApproxMC|BenchmarkE2FindMin'

mkdir -p bench
go test . -run '^$' -bench "$HOT" -benchmem -benchtime 300ms | tee bench/current_hot.txt
go test ./internal/sat -run '^$' -bench . -benchmem -benchtime 300ms | tee bench/current_sat.txt

go run ./scripts/benchjson -out "$OUT" \
  -baseline bench/baseline2_hot.txt -baseline bench/baseline2_sat.txt \
  -current bench/current_hot.txt -current bench/current_sat.txt

echo "wrote $OUT"
