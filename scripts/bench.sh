#!/usr/bin/env bash
# Runs the hot-path benchmarks with -benchmem and regenerates BENCH_1.json,
# pairing the results with the checked-in pre-change baseline
# (bench/baseline_*.txt, captured at the seed before the word-parallel
# rewrite). Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_1.json}
HOT='BenchmarkA1HashFamily|BenchmarkE4F0Sketches|BenchmarkGF2$|BenchmarkE1ApproxMC|BenchmarkE2FindMin'

mkdir -p bench
go test . -run '^$' -bench "$HOT" -benchmem -benchtime 300ms | tee bench/current_hot.txt
go test ./internal/bitvec -run '^$' -bench . -benchmem -benchtime 200ms | tee bench/current_bitvec.txt

go run ./scripts/benchjson -out "$OUT" \
  -baseline bench/baseline_hot.txt -baseline bench/baseline_bitvec.txt \
  -current bench/current_hot.txt -current bench/current_bitvec.txt

echo "wrote $OUT"
