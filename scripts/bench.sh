#!/usr/bin/env bash
# Runs the hot-path benchmarks with -benchmem and regenerates BENCH_7.json,
# pairing the results with the checked-in pre-change baseline
# (bench/baseline7_*.txt, captured at the PR-6 tree before the versioned
# wire codec). BenchmarkSketchMarshalRoundTrip is new in PR 7 (the codec's
# snapshot cost) and therefore has no baseline row. Raw `go test -bench`
# transcripts go to
# $BENCH_DIR (a fresh temp directory by default) instead of bench/, so a
# benchmark run no longer dirties the working tree; export BENCH_DIR to
# keep them somewhere inspectable (CI does, to upload them as artifacts).
#
# In-run baselines (both sides measured in the same process, over identical
# inputs): BenchmarkToeplitzEvalInto's dotrow/* variants force the per-row
# dot-product path; BenchmarkSystemRewind's clone/* variants run the
# clone-and-replay the rewind engine replaces; BenchmarkConcurrentIngest's
# locked-f0 variant drives one mutex-guarded F0 with the same producers the
# replicated front absorbs lock-free; BenchmarkAbsorbLayout's */scattered
# variants re-scatter the slab rows into per-row heap allocations. The
# par=1 vs par=max sharding variants and the replicas=1 vs
# replicas=gomaxprocs front variants collapse to the same figure on a
# single-core machine.
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_7.json}
BENCH_DIR=${BENCH_DIR:-$(mktemp -d)}
HOT='BenchmarkA1HashFamily|BenchmarkToeplitzEvalInto|BenchmarkE4F0Sketches|BenchmarkE4SketchBatch|BenchmarkGF2$|BenchmarkSystemRewind|BenchmarkE1ApproxMC|BenchmarkE2FindMin|BenchmarkE6DNFStream|BenchmarkConcurrentIngest|BenchmarkSketchMarshalRoundTrip'

mkdir -p "$BENCH_DIR"
go test . -run '^$' -bench "$HOT" -benchmem -benchtime 300ms | tee "$BENCH_DIR/current_hot.txt"
go test ./internal/sat -run '^$' -bench . -benchmem -benchtime 300ms | tee "$BENCH_DIR/current_sat.txt"
go test ./internal/streaming -run '^$' -bench 'BenchmarkAbsorbLayout' -benchmem -benchtime 300ms | tee "$BENCH_DIR/current_streaming.txt"
go test ./internal/gf2poly -run '^$' -bench 'BenchmarkClmulKernel' -benchmem -benchtime 300ms | tee "$BENCH_DIR/current_gf2poly.txt"

NOTE=""
if [ "$(nproc 2>/dev/null || echo 1)" = 1 ]; then
  NOTE="CAVEAT: captured on a single-core machine (nproc=1) — the replicas=gomaxprocs / par=max variants collapse to the serial figure and multi-core scaling of the concurrent front is unmeasured here; rerun on multi-core hardware to see it."
fi
go run ./scripts/benchjson -out "$OUT" -note "$NOTE" \
  -baseline bench/baseline7_hot.txt -baseline bench/baseline7_sat.txt \
  -baseline bench/baseline7_streaming.txt -baseline bench/baseline7_gf2poly.txt \
  -current "$BENCH_DIR/current_hot.txt" -current "$BENCH_DIR/current_sat.txt" \
  -current "$BENCH_DIR/current_streaming.txt" -current "$BENCH_DIR/current_gf2poly.txt"

echo "wrote $OUT (raw transcripts in $BENCH_DIR)"
