#!/usr/bin/env bash
# Runs the hot-path benchmarks with -benchmem and regenerates BENCH_4.json,
# pairing the results with the checked-in pre-change baseline
# (bench/baseline4_*.txt, captured at the PR-3 tree before the carry-less
# Toeplitz kernel). BenchmarkToeplitzEvalInto also carries an in-run
# baseline: its dotrow/* variants force the per-row dot-product path on the
# same drawn functions the clmul/* variants evaluate. The par=1 vs par=max
# variants of the sharded benches (BenchmarkE4SketchBatch,
# BenchmarkE6DNFStreamBatch) quantify the per-copy fan-out; they collapse
# to the same figure on a single-core machine.
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_4.json}
HOT='BenchmarkA1HashFamily|BenchmarkToeplitzEvalInto|BenchmarkE4F0Sketches|BenchmarkE4SketchBatch|BenchmarkGF2$|BenchmarkE1ApproxMC|BenchmarkE2FindMin|BenchmarkE6DNFStream'

mkdir -p bench
go test . -run '^$' -bench "$HOT" -benchmem -benchtime 300ms | tee bench/current_hot.txt
go test ./internal/sat -run '^$' -bench . -benchmem -benchtime 300ms | tee bench/current_sat.txt

go run ./scripts/benchjson -out "$OUT" \
  -baseline bench/baseline4_hot.txt -baseline bench/baseline4_sat.txt \
  -current bench/current_hot.txt -current bench/current_sat.txt

echo "wrote $OUT"
