#!/usr/bin/env bash
# Runs the full f0load sweep from docs/OPERATIONS.md: a profiled
# in-process run (CPU + allocation pprof) and an HTTP run against a
# self-hosted f0d, both seeded and -check-verified, with reports and
# profiles left in $LOAD_DIR for inspection or artifact upload. The SLO
# asserted here is errors=0 only — latency bounds on shared CI runners
# are noise; run interactively with e.g. `-slo p99=5ms` on quiet
# hardware to gate on latency.
#
# Usage: scripts/load.sh [ops] (default 50000)
set -euo pipefail
cd "$(dirname "$0")/.."

OPS=${1:-50000}
LOAD_DIR=${LOAD_DIR:-$(mktemp -d)}
mkdir -p "$LOAD_DIR"

NOTE=""
if [ "$(nproc 2>/dev/null || echo 1)" = 1 ]; then
  NOTE="CAVEAT: captured on a single-core machine (nproc=1) — clients time-slice one core, so ops/sec understates multi-core throughput and tail latencies include scheduler queueing; rerun on multi-core hardware for service-level numbers."
fi

go build -o "$LOAD_DIR/f0load" ./cmd/f0load
go build -o "$LOAD_DIR/f0d" ./cmd/f0d

# In-process run: the sketch front with no HTTP in the way, profiled.
"$LOAD_DIR/f0load" -target inproc -ops "$OPS" -clients 8 -bits 24 -batch 128 \
  -mix ingest=90,estimate=9,snapshot=1 -keys 100000 -zipf 1.2 -seed 20210608 \
  -check -slo errors=0 -note "$NOTE" \
  -cpuprofile "$LOAD_DIR/inproc_cpu.pprof" -memprofile "$LOAD_DIR/inproc_mem.pprof" \
  -out "$LOAD_DIR/LOAD_inproc.json"

# HTTP run: the same workload through a live f0d (loopback socket), so
# the report reflects the full serve path: auth, JSON, handler, front.
"$LOAD_DIR/f0d" -addr 127.0.0.1:18090 -token load:load-token &
F0D_PID=$!
trap 'kill "$F0D_PID" 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
  curl -sf http://127.0.0.1:18090/healthz >/dev/null && break
  sleep 0.2
done

"$LOAD_DIR/f0load" -target http -url http://127.0.0.1:18090 -token load-token \
  -sketch loadsh -ops "$OPS" -clients 8 -bits 24 -batch 128 \
  -mix ingest=90,estimate=9,snapshot=0 -keys 100000 -zipf 1.2 -seed 20210608 \
  -check -delete -slo errors=0 -note "$NOTE" \
  -out "$LOAD_DIR/LOAD_http.json"

kill -TERM "$F0D_PID"
wait "$F0D_PID"
trap - EXIT

echo "wrote $LOAD_DIR/LOAD_inproc.json and $LOAD_DIR/LOAD_http.json (profiles alongside)"
