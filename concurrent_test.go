package mcf0

import (
	"runtime"
	"sync"
	"testing"
)

// Fixed-seed ConcurrentF0 estimates must be bit-identical to a serial F0
// over the same element set, at every replica count and algorithm — the
// tentpole acceptance criterion.
func TestConcurrentF0Determinism(t *testing.T) {
	cfg := Config{Thresh: 24, Iterations: 7, Seed: 5, Parallelism: 1}
	xs := make([]uint64, 4000)
	for i := range xs {
		xs[i] = uint64(i*i) % 1800
	}
	for _, alg := range []Algorithm{AlgorithmBucketing, AlgorithmMinimum, AlgorithmEstimation} {
		serial, err := NewF0(24, alg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		serial.AddBatch(xs)
		want := serial.Estimate()
		for _, reps := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
			c, err := NewConcurrentF0(24, alg, cfg, reps)
			if err != nil {
				t.Fatal(err)
			}
			if c.Replicas() != reps {
				t.Fatalf("alg=%s: replicas %d != %d", alg, c.Replicas(), reps)
			}
			for lo := 0; lo < len(xs); lo += 300 {
				c.AddBatch(xs[lo:min(lo+300, len(xs))])
			}
			if got := c.Estimate(); got != want {
				t.Fatalf("alg=%s replicas=%d: estimate %v != serial %v", alg, reps, got, want)
			}
		}
	}
}

// Concurrent producers driving one ConcurrentF0 must land on the same
// estimate as serial ingestion (run under -race in CI).
func TestConcurrentF0ProducersRace(t *testing.T) {
	cfg := Config{Thresh: 24, Iterations: 5, Seed: 9, Parallelism: 1}
	serial, err := NewF0(20, AlgorithmMinimum, cfg)
	if err != nil {
		t.Fatal(err)
	}
	producers := 6
	perProducer := 500
	for p := 0; p < producers; p++ {
		for i := 0; i < perProducer; i++ {
			serial.Add(uint64(p*perProducer+i) % 900)
		}
	}
	want := serial.Estimate()

	c, err := NewConcurrentF0(20, AlgorithmMinimum, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			buf := make([]uint64, 0, 64)
			for i := 0; i < perProducer; i++ {
				buf = append(buf, uint64(p*perProducer+i)%900)
				if len(buf) == 64 {
					c.AddBatch(buf)
					buf = buf[:0]
				}
			}
			c.AddBatch(buf)
		}(p)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 25; i++ {
			c.Estimate()
		}
	}()
	wg.Wait()
	<-done
	if got := c.Estimate(); got != want {
		t.Fatalf("estimate %v != serial %v", got, want)
	}
	if c.SketchWords() <= 0 {
		t.Fatal("SketchWords must be positive after ingestion")
	}
}

// F0.Merge across split streams must match single-stream ingestion, and
// Clone must leave the original untouched.
func TestF0MergeAndClone(t *testing.T) {
	cfg := Config{Thresh: 24, Iterations: 7, Seed: 11, Parallelism: 1}
	xs := make([]uint64, 3000)
	for i := range xs {
		xs[i] = uint64(i*31) % 1400
	}
	for _, alg := range []Algorithm{AlgorithmBucketing, AlgorithmMinimum, AlgorithmEstimation} {
		whole, _ := NewF0(24, alg, cfg)
		left, _ := NewF0(24, alg, cfg)
		right, _ := NewF0(24, alg, cfg)
		whole.AddBatch(xs)
		left.AddBatch(xs[:1500])
		right.AddBatch(xs[1500:])
		before := left.Estimate()
		clone := left.Clone()
		if err := left.Merge(right); err != nil {
			t.Fatalf("alg=%s: merge: %v", alg, err)
		}
		if got, want := left.Estimate(), whole.Estimate(); got != want {
			t.Fatalf("alg=%s: merged estimate %v != whole %v", alg, got, want)
		}
		// The pre-merge clone is unaffected by the merge into its origin.
		if got := clone.Estimate(); got != before {
			t.Fatalf("alg=%s: clone estimate moved %v → %v", alg, before, got)
		}
	}

	// Different seeds → different draws → must refuse.
	a, _ := NewF0(24, AlgorithmBucketing, cfg)
	otherSeed := cfg
	otherSeed.Seed = 12
	b, _ := NewF0(24, AlgorithmBucketing, otherSeed)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging different seeds must fail")
	}
}

// Set-stream wrappers: split/merge must match single-stream ingestion.
func TestSetStreamMerge(t *testing.T) {
	cfg := Config{Thresh: 24, Iterations: 5, Seed: 13, Parallelism: 1}

	whole := NewDNFSetF0(12, cfg)
	left := NewDNFSetF0(12, cfg)
	right := NewDNFSetF0(12, cfg)
	sets := [][][]int{
		{{1, 2}, {-3}}, {{4, -5}}, {{6, 7, 8}}, {{-1, -2}}, {{9}, {10, -11}}, {{12, 1}},
	}
	for _, s := range sets {
		if err := whole.AddDNF(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range sets[:3] {
		if err := left.AddDNF(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range sets[3:] {
		if err := right.AddDNF(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := left.Merge(right); err != nil {
		t.Fatalf("dnf merge: %v", err)
	}
	if got, want := left.Estimate(), whole.Estimate(); got != want {
		t.Fatalf("dnf merged estimate %v != whole %v", got, want)
	}

	rWhole, _ := NewRangeF0([]int{10, 10}, cfg)
	rLeft, _ := NewRangeF0([]int{10, 10}, cfg)
	rRight, _ := NewRangeF0([]int{10, 10}, cfg)
	boxes := [][2][]uint64{
		{{0, 0}, {100, 50}}, {{200, 10}, {600, 400}}, {{50, 50}, {70, 800}}, {{500, 500}, {900, 900}},
	}
	for _, b := range boxes {
		if err := rWhole.AddRange(b[0], b[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range boxes[:2] {
		if err := rLeft.AddRange(b[0], b[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range boxes[2:] {
		if err := rRight.AddRange(b[0], b[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := rLeft.Merge(rRight); err != nil {
		t.Fatalf("range merge: %v", err)
	}
	if got, want := rLeft.Estimate(), rWhole.Estimate(); got != want {
		t.Fatalf("range merged estimate %v != whole %v", got, want)
	}
}
