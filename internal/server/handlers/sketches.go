package handlers

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mcf0/internal/server/state"
)

// createReq is the body of POST /v1/sketches.
type createReq struct {
	Name       string  `json:"name"`
	Bits       int     `json:"bits"`
	Algorithm  string  `json:"algorithm"`
	Epsilon    float64 `json:"epsilon"`
	Delta      float64 `json:"delta"`
	Thresh     int     `json:"thresh"`
	Iterations int     `json:"iterations"`
	Seed       U64     `json:"seed"`
	Replicas   int     `json:"replicas"`
}

// sketchInfo is the representation every inspect-style response shares.
type sketchInfo struct {
	Name        string  `json:"name"`
	Algorithm   string  `json:"algorithm"`
	Bits        int     `json:"bits"`
	Epsilon     float64 `json:"epsilon"`
	Delta       float64 `json:"delta"`
	Thresh      int     `json:"thresh"`
	Iterations  int     `json:"iterations"`
	Seed        U64     `json:"seed"`
	Replicas    int     `json:"replicas"`
	Items       U64     `json:"items"`
	Version     U64     `json:"version"`
	SketchWords int     `json:"sketch_words"`
	Dirty       bool    `json:"dirty"`
}

func info(sk *state.Sketch) sketchInfo {
	thresh, iters := sk.Config.Resolved()
	alg := sk.Config.Algorithm
	if alg == "" {
		alg = "bucketing"
	}
	eps, delta := sk.Config.Epsilon, sk.Config.Delta
	if eps == 0 {
		eps = 0.8
	}
	if delta == 0 {
		delta = 0.2
	}
	return sketchInfo{
		Name:        sk.Name,
		Algorithm:   alg,
		Bits:        sk.Config.Bits,
		Epsilon:     eps,
		Delta:       delta,
		Thresh:      thresh,
		Iterations:  iters,
		Seed:        U64(sk.Config.Seed),
		Replicas:    sk.Replicas(),
		Items:       U64(sk.Items()),
		Version:     U64(sk.Version()),
		SketchWords: sk.SketchWords(),
		Dirty:       sk.Dirty(),
	}
}

// Create handles POST /v1/sketches.
func (api *API) Create(w http.ResponseWriter, r *http.Request) {
	var req createReq
	if !api.decodeBody(w, r, &req) {
		return
	}
	if !state.ValidName(req.Name) {
		writeErr(w, http.StatusBadRequest, "invalid_name",
			"sketch name must be 1-64 characters from [A-Za-z0-9_.-], starting alphanumeric")
		return
	}
	if req.Bits < 1 || req.Bits > 64 {
		writeErr(w, http.StatusBadRequest, "invalid_config", "bits must be in [1,64]")
		return
	}
	if !validAlgorithm(req.Algorithm) {
		writeErr(w, http.StatusBadRequest, "invalid_config",
			fmt.Sprintf("unknown algorithm %q (want one of: %s)", req.Algorithm, algNames))
		return
	}
	if req.Epsilon < 0 || req.Delta < 0 || req.Delta >= 1 {
		writeErr(w, http.StatusBadRequest, "invalid_config", "need epsilon >= 0 and 0 <= delta < 1")
		return
	}
	if req.Thresh < 0 || req.Thresh > 1<<20 {
		writeErr(w, http.StatusBadRequest, "invalid_config", "thresh must be in [0, 2^20]")
		return
	}
	if req.Iterations < 0 || req.Iterations > 1<<16 {
		writeErr(w, http.StatusBadRequest, "invalid_config", "iterations must be in [0, 2^16]")
		return
	}
	if req.Replicas < 0 || req.Replicas > 1024 {
		writeErr(w, http.StatusBadRequest, "invalid_config", "replicas must be in [0, 1024]")
		return
	}
	t := tenant(r)
	cfg := state.SketchConfig{
		Bits:       req.Bits,
		Algorithm:  strings.ToLower(req.Algorithm),
		Epsilon:    req.Epsilon,
		Delta:      req.Delta,
		Thresh:     req.Thresh,
		Iterations: req.Iterations,
		Seed:       uint64(req.Seed),
		Replicas:   req.Replicas,
	}
	sk, err := api.Registry.Create(t.Name, req.Name, cfg, t.MaxSketches)
	switch {
	case errors.Is(err, state.ErrExists):
		writeErr(w, http.StatusConflict, "already_exists", fmt.Sprintf("sketch %q already exists", req.Name))
		return
	case errors.Is(err, state.ErrQuota):
		writeErr(w, http.StatusForbidden, "quota_exhausted",
			fmt.Sprintf("tenant %q is at its quota of %d sketches", t.Name, t.MaxSketches))
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, "invalid_config", err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"sketch": info(sk)})
}

// List handles GET /v1/sketches.
func (api *API) List(w http.ResponseWriter, r *http.Request) {
	sketches := api.Registry.List(tenant(r).Name)
	infos := make([]sketchInfo, len(sketches))
	for i, sk := range sketches {
		infos[i] = info(sk)
	}
	writeJSON(w, http.StatusOK, map[string]any{"sketches": infos})
}

// Get handles GET /v1/sketches/{name}.
func (api *API) Get(w http.ResponseWriter, r *http.Request) {
	sk, ok := api.sketchOr404(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"sketch": info(sk)})
}

// Delete handles DELETE /v1/sketches/{name}; persisted snapshot files
// are removed with the sketch.
func (api *API) Delete(w http.ResponseWriter, r *http.Request) {
	sk, ok := api.sketchOr404(w, r)
	if !ok {
		return
	}
	if err := api.Registry.Delete(sk.Tenant, sk.Name); err != nil {
		writeErr(w, http.StatusNotFound, "not_found", fmt.Sprintf("sketch %q not found", sk.Name))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// addReq is the body of POST /v1/sketches/{name}/add.
type addReq struct {
	Elements []U64 `json:"elements"`
}

// Add handles POST /v1/sketches/{name}/add: batched ingestion through
// the sketch's lock-free concurrent front. The whole batch is validated
// before any element is ingested — an out-of-range element rejects the
// request atomically with 400.
func (api *API) Add(w http.ResponseWriter, r *http.Request) {
	sk, ok := api.sketchOr404(w, r)
	if !ok {
		return
	}
	var req addReq
	if !api.decodeBody(w, r, &req) {
		return
	}
	if len(req.Elements) > api.maxBatch() {
		writeErr(w, http.StatusRequestEntityTooLarge, "batch_too_large",
			fmt.Sprintf("batch of %d elements exceeds the %d-element limit; split it", len(req.Elements), api.maxBatch()))
		return
	}
	bits := sk.Config.Bits
	if bits < 64 {
		limit := uint64(1) << uint(bits)
		for i, x := range req.Elements {
			if uint64(x) >= limit {
				writeErr(w, http.StatusBadRequest, "element_out_of_range",
					fmt.Sprintf("elements[%d] = %d exceeds the %d-bit universe; batch rejected", i, x, bits))
				return
			}
		}
	}
	if len(req.Elements) > 0 {
		xs := make([]uint64, len(req.Elements))
		for i, x := range req.Elements {
			xs[i] = uint64(x)
		}
		sk.AddBatch(xs)
	}
	t := tenant(r)
	api.Metrics.AddLabeled("f0d_ingest_requests_total", tenantLabel(t), 1)
	api.Metrics.AddLabeled("f0d_ingest_elements_total", tenantLabel(t), float64(len(req.Elements)))
	writeJSON(w, http.StatusOK, map[string]any{
		"ingested": len(req.Elements),
		"items":    U64(sk.Items()),
		"version":  U64(sk.Version()),
	})
}

// Estimate handles GET /v1/sketches/{name}/estimate. The answer is
// cached against the sketch's write-version counter: queries between
// writes are served without locking the replicas, and the reported
// estimate is bit-identical to an in-process F0 over the same stream
// (determinism invariant 7).
func (api *API) Estimate(w http.ResponseWriter, r *http.Request) {
	sk, ok := api.sketchOr404(w, r)
	if !ok {
		return
	}
	est, version, cached := sk.Estimate()
	t := tenant(r)
	api.Metrics.AddLabeled("f0d_estimate_queries_total", tenantLabel(t), 1)
	if cached {
		api.Metrics.AddLabeled("f0d_estimate_cache_hits_total", tenantLabel(t), 1)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"estimate": est,
		"items":    U64(sk.Items()),
		"version":  U64(version),
		"cached":   cached,
	})
}

// Snapshot handles POST /v1/sketches/{name}/snapshot: the complete
// merged sketch state is encoded with the versioned wire codec and
// persisted under the data directory (409 when the daemon runs without
// one). Ingestion may continue concurrently.
func (api *API) Snapshot(w http.ResponseWriter, r *http.Request) {
	sk, ok := api.sketchOr404(w, r)
	if !ok {
		return
	}
	snap, err := api.Registry.Snapshot(sk)
	if errors.Is(err, state.ErrNoDataDir) {
		writeErr(w, http.StatusConflict, "snapshots_disabled",
			"snapshot persistence is disabled: start f0d with -data <dir>")
		return
	}
	if errors.Is(err, state.ErrBreakerOpen) {
		retryAfter := 1
		if br := api.Registry.Breaker(); br != nil {
			if secs := int((br.RetryAfter() + time.Second - 1) / time.Second); secs > retryAfter {
				retryAfter = secs
			}
		}
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		writeErr(w, http.StatusServiceUnavailable, "snapshot_unavailable",
			"snapshot circuit breaker open after repeated disk failures; serving degraded, retry later")
		return
	}
	if err != nil {
		// A failing disk is an operational condition, not a handler bug:
		// 503 + Retry-After, so well-behaved clients back off and retry.
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "snapshot_failed", err.Error())
		return
	}
	t := tenant(r)
	api.Metrics.AddLabeled("f0d_snapshots_total", tenantLabel(t), 1)
	api.Metrics.AddLabeled("f0d_snapshot_bytes_total", tenantLabel(t), float64(snap.Bytes))
	writeJSON(w, http.StatusOK, map[string]any{
		"file":    snap.File,
		"bytes":   snap.Bytes,
		"items":   U64(snap.Items),
		"version": U64(snap.Version),
	})
}
