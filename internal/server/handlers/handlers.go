// Package handlers implements f0d's HTTP/JSON endpoints: the sketch
// lifecycle (create / list / inspect / delete), batched ingestion riding
// ConcurrentF0.AddBatch, estimate queries with version-counter caching,
// snapshot persistence, and one-shot model counting.
//
// Conventions shared by every endpoint: requests and responses are JSON;
// errors use the envelope {"error":{"code":...,"message":...}}; client
// mistakes (malformed bodies, unknown fields, out-of-range values,
// missing sketches) are always typed 4xx responses — a 5xx means a server
// bug, never bad input. 64-bit integers (stream elements, seeds) are
// accepted as JSON numbers or decimal strings, since doubles lose
// precision past 2^53.
package handlers

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"mcf0/internal/server/metrics"
	"mcf0/internal/server/middleware"
	"mcf0/internal/server/state"
)

// API carries the handlers' dependencies; one instance serves all routes.
type API struct {
	Registry *state.Registry
	Metrics  *metrics.Metrics
	// MaxBatch bounds elements per add request (0 = 65536).
	MaxBatch int
	// MaxBodyBytes bounds request body size (0 = 8 MiB).
	MaxBodyBytes int64
	// MaxCountVars bounds n for /v1/count (0 = 4096).
	MaxCountVars int
}

func (api *API) maxBatch() int {
	if api.MaxBatch > 0 {
		return api.MaxBatch
	}
	return 65536
}

func (api *API) maxBody() int64 {
	if api.MaxBodyBytes > 0 {
		return api.MaxBodyBytes
	}
	return 8 << 20
}

func (api *API) maxCountVars() int {
	if api.MaxCountVars > 0 {
		return api.MaxCountVars
	}
	return 4096
}

// U64 is a uint64 that unmarshals from a JSON number or a decimal
// string, so full 64-bit values survive JSON's float64 number type.
type U64 uint64

// UnmarshalJSON accepts 123 or "123".
func (u *U64) UnmarshalJSON(data []byte) error {
	s := string(data)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return fmt.Errorf("want a uint64 as number or decimal string, got %s", data)
	}
	*u = U64(v)
	return nil
}

// MarshalJSON renders large values as strings so they round-trip through
// JSON parsers that read numbers as doubles.
func (u U64) MarshalJSON() ([]byte, error) {
	if u > 1<<53 {
		return []byte(`"` + strconv.FormatUint(uint64(u), 10) + `"`), nil
	}
	return []byte(strconv.FormatUint(uint64(u), 10)), nil
}

// writeJSON emits a JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// writeErr emits the canonical error envelope.
func writeErr(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, map[string]any{
		"error": map[string]string{"code": code, "message": msg},
	})
}

// decodeBody parses the request body into dst: strict JSON (unknown
// fields rejected, trailing garbage rejected), size-capped. On failure it
// writes a typed 4xx and returns false — malformed input can never reach
// a handler's logic, let alone a 5xx.
func (api *API) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, api.maxBody())
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeErr(w, http.StatusBadRequest, "bad_request", "malformed request body: "+err.Error())
		return false
	}
	if dec.More() {
		writeErr(w, http.StatusBadRequest, "bad_request", "trailing data after JSON body")
		return false
	}
	return true
}

// tenant returns the authenticated tenant (the Auth middleware runs on
// every /v1 route, so absence is a wiring bug, not a client error).
func tenant(r *http.Request) *middleware.Tenant {
	t := middleware.TenantFrom(r.Context())
	if t == nil {
		panic("handlers: route reached without authentication middleware")
	}
	return t
}

// sketchOr404 resolves {name} to the tenant's sketch.
func (api *API) sketchOr404(w http.ResponseWriter, r *http.Request) (*state.Sketch, bool) {
	name := r.PathValue("name")
	sk, err := api.Registry.Get(tenant(r).Name, name)
	if err != nil {
		writeErr(w, http.StatusNotFound, "not_found", fmt.Sprintf("sketch %q not found", name))
		return nil, false
	}
	return sk, true
}

// Healthz is the liveness probe: GET /healthz. With the snapshot
// breaker open the daemon is degraded, not dead — estimates still
// serve — so the status flips to "degraded" but the code stays 200:
// orchestrators must not kill a replica that is the only holder of
// dirty in-memory state.
func (api *API) Healthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]string{"status": "ok"}
	if br := api.Registry.Breaker(); br != nil {
		if st := br.State(); st != state.BreakerClosed {
			body["status"] = "degraded"
			body["snapshot_breaker"] = st.String()
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// tenantLabel renders the metric label for a tenant.
func tenantLabel(t *middleware.Tenant) string { return metrics.Label("tenant", t.Name) }

// algNames is the user-facing list of sketch families.
const algNames = "bucketing, minimum, estimation"

func validAlgorithm(alg string) bool {
	switch strings.ToLower(alg) {
	case "", "bucketing", "minimum", "estimation":
		return true
	}
	return false
}
