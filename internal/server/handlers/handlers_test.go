package handlers

import (
	"encoding/json"
	"testing"
)

func TestU64RoundTrip(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want uint64
	}{
		{`0`, 0},
		{`123`, 123},
		{`"123"`, 123},
		{`9007199254740992`, 1 << 53},
		{`"18446744073709551615"`, 1<<64 - 1}, // max uint64 only fits as a string
	} {
		var u U64
		if err := json.Unmarshal([]byte(tc.in), &u); err != nil {
			t.Errorf("Unmarshal(%s): %v", tc.in, err)
			continue
		}
		if uint64(u) != tc.want {
			t.Errorf("Unmarshal(%s) = %d, want %d", tc.in, u, tc.want)
		}
		// Marshal → Unmarshal is the identity regardless of magnitude.
		out, err := json.Marshal(u)
		if err != nil {
			t.Errorf("Marshal(%d): %v", u, err)
			continue
		}
		var back U64
		if err := json.Unmarshal(out, &back); err != nil || back != u {
			t.Errorf("round trip %s → %s → %d (err %v), want %d", tc.in, out, back, err, u)
		}
	}
	// Values past 2^53 marshal as strings so double-based parsers keep
	// full precision.
	out, _ := json.Marshal(U64(1<<53 + 1))
	if out[0] != '"' {
		t.Errorf("U64(2^53+1) marshalled as a bare number: %s", out)
	}

	for _, bad := range []string{`-1`, `1.5`, `"ten"`, `""`, `null`, `"1e3"`, `true`} {
		var u U64
		if err := json.Unmarshal([]byte(bad), &u); err == nil {
			t.Errorf("Unmarshal(%s) accepted, want error", bad)
		}
	}
}
