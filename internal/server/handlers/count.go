package handlers

import (
	"fmt"
	"net/http"
	"strings"

	"mcf0"
)

// countReq is the body of POST /v1/count: a one-shot approximate model
// count of a CNF (clauses) or DNF (terms) formula in the DIMACS literal
// convention.
type countReq struct {
	Kind       string  `json:"kind"` // "cnf" or "dnf"
	N          int     `json:"n"`
	Clauses    [][]int `json:"clauses"`
	Terms      [][]int `json:"terms"`
	Algorithm  string  `json:"algorithm"`
	Epsilon    float64 `json:"epsilon"`
	Delta      float64 `json:"delta"`
	Thresh     int     `json:"thresh"`
	Iterations int     `json:"iterations"`
	Seed       U64     `json:"seed"`
	// Parallelism bounds the request's median-trial worker pool
	// (0 = GOMAXPROCS; estimates are bit-identical at every level).
	Parallelism int `json:"parallelism"`
}

// Count handles POST /v1/count. Solver and oracle work is surfaced in
// the response and accumulated into the /metrics solver counters.
func (api *API) Count(w http.ResponseWriter, r *http.Request) {
	var req countReq
	if !api.decodeBody(w, r, &req) {
		return
	}
	kind := strings.ToLower(req.Kind)
	if kind != "cnf" && kind != "dnf" {
		writeErr(w, http.StatusBadRequest, "invalid_formula", `kind must be "cnf" or "dnf"`)
		return
	}
	if req.N < 1 || req.N > api.maxCountVars() {
		writeErr(w, http.StatusBadRequest, "invalid_formula",
			fmt.Sprintf("n must be in [1, %d]", api.maxCountVars()))
		return
	}
	if req.Epsilon < 0 || req.Delta < 0 || req.Delta >= 1 || req.Thresh < 0 || req.Thresh > 1<<20 ||
		req.Iterations < 0 || req.Iterations > 1<<16 || req.Parallelism < 0 {
		writeErr(w, http.StatusBadRequest, "invalid_config",
			"need epsilon >= 0, 0 <= delta < 1, thresh in [0, 2^20], iterations in [0, 2^16], parallelism >= 0")
		return
	}
	lists, field := req.Clauses, "clauses"
	if kind == "dnf" {
		lists, field = req.Terms, "terms"
	}
	if len(lists) == 0 {
		writeErr(w, http.StatusBadRequest, "invalid_formula", fmt.Sprintf("%s must be non-empty", field))
		return
	}
	lits := 0
	for _, l := range lists {
		lits += len(l)
	}
	if len(lists) > 1<<17 || lits > 1<<20 {
		writeErr(w, http.StatusRequestEntityTooLarge, "formula_too_large",
			fmt.Sprintf("formula exceeds the %d-%s / %d-literal limit", 1<<17, field, 1<<20))
		return
	}
	cfg := mcf0.Config{
		Epsilon:     req.Epsilon,
		Delta:       req.Delta,
		Thresh:      req.Thresh,
		Iterations:  req.Iterations,
		Seed:        uint64(req.Seed),
		Parallelism: req.Parallelism,
	}
	var (
		res mcf0.CountResult
		err error
	)
	if kind == "cnf" {
		res, err = mcf0.CountCNFClauses(req.N, lists, mcf0.Algorithm(strings.ToLower(req.Algorithm)), cfg)
	} else {
		res, err = mcf0.CountDNFTerms(req.N, lists, mcf0.Algorithm(strings.ToLower(req.Algorithm)), cfg)
	}
	if err != nil {
		// Every error mcf0 returns here is an input problem: an unknown
		// algorithm, a literal out of range, or an algorithm/formula
		// mismatch (e.g. karpluby on CNF, estimation beyond 24 vars).
		writeErr(w, http.StatusBadRequest, "invalid_formula", err.Error())
		return
	}
	t := tenant(r)
	api.Metrics.AddLabeled("f0d_count_requests_total", tenantLabel(t), 1)
	api.Metrics.Add("f0d_oracle_queries_total", float64(res.OracleQueries))
	api.Metrics.Add("f0d_solver_decisions_total", float64(res.Solver.Decisions))
	api.Metrics.Add("f0d_solver_propagations_total", float64(res.Solver.Propagations))
	api.Metrics.Add("f0d_solver_conflicts_total", float64(res.Solver.Conflicts))
	api.Metrics.Add("f0d_solver_learned_total", float64(res.Solver.Learned))
	api.Metrics.Add("f0d_solver_deleted_total", float64(res.Solver.Deleted))
	api.Metrics.Add("f0d_solver_restarts_total", float64(res.Solver.Restarts))
	writeJSON(w, http.StatusOK, map[string]any{
		"estimate":       res.Estimate,
		"oracle_queries": res.OracleQueries,
		"solver": map[string]int64{
			"decisions":      res.Solver.Decisions,
			"propagations":   res.Solver.Propagations,
			"conflicts":      res.Solver.Conflicts,
			"learned":        res.Solver.Learned,
			"deleted":        res.Solver.Deleted,
			"restarts":       res.Solver.Restarts,
			"learned_lits":   res.Solver.LearnedLits,
			"minimized_lits": res.Solver.MinimizedLits,
		},
	})
}
