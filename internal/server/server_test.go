package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mcf0/internal/server"
	"mcf0/internal/server/middleware"
)

const (
	testTenant = "acme"
	testToken  = "test-token-1"
)

// newServer builds a daemon with one default tenant (unless cfg already
// names tenants) and mounts it on an httptest server.
func newServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	if cfg.Tenants == nil {
		cfg.Tenants = []middleware.TenantConfig{{Name: testTenant, Token: testToken}}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// do sends one request (token "" = unauthenticated, body nil = empty)
// and returns the status and decoded JSON body (nil on no content).
func do(t *testing.T, method, url, token string, body any) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		switch b := body.(type) {
		case string: // raw body for malformed-input tests
			rd = strings.NewReader(b)
		default:
			blob, err := json.Marshal(body)
			if err != nil {
				t.Fatal(err)
			}
			rd = bytes.NewReader(blob)
		}
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		return resp.StatusCode, nil
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("%s %s: non-JSON response %q", method, url, raw)
	}
	return resp.StatusCode, out
}

// errCode digs the typed error code out of an error envelope.
func errCode(t *testing.T, body map[string]any) string {
	t.Helper()
	e, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("response has no error envelope: %v", body)
	}
	code, _ := e["code"].(string)
	return code
}

func TestAuthRejection(t *testing.T) {
	_, ts := newServer(t, server.Config{})
	for _, tc := range []struct {
		name  string
		token string
	}{
		{"no token", ""},
		{"wrong token", "nope"},
		{"empty bearer", " "},
	} {
		status, body := do(t, "GET", ts.URL+"/v1/sketches", tc.token, nil)
		if status != http.StatusUnauthorized {
			t.Errorf("%s: status %d, want 401", tc.name, status)
		}
		if code := errCode(t, body); code != "unauthorized" {
			t.Errorf("%s: code %q, want unauthorized", tc.name, code)
		}
	}
	// Health and metrics stay open.
	if status, _ := do(t, "GET", ts.URL+"/healthz", "", nil); status != http.StatusOK {
		t.Errorf("healthz: status %d, want 200", status)
	}
}

func TestSketchLifecycle(t *testing.T) {
	_, ts := newServer(t, server.Config{})
	create := map[string]any{"name": "users", "bits": 16, "algorithm": "minimum", "seed": 3}

	status, body := do(t, "POST", ts.URL+"/v1/sketches", testToken, create)
	if status != http.StatusCreated {
		t.Fatalf("create: status %d body %v", status, body)
	}
	sk := body["sketch"].(map[string]any)
	if sk["name"] != "users" || sk["algorithm"] != "minimum" {
		t.Fatalf("create echo: %v", sk)
	}
	if sk["thresh"].(float64) <= 0 || sk["iterations"].(float64) <= 0 {
		t.Fatalf("create should echo resolved parameters: %v", sk)
	}

	// Duplicate create → 409.
	if status, body = do(t, "POST", ts.URL+"/v1/sketches", testToken, create); status != http.StatusConflict {
		t.Fatalf("duplicate create: status %d", status)
	} else if errCode(t, body) != "already_exists" {
		t.Fatalf("duplicate create: %v", body)
	}

	// Ingest + estimate.
	status, body = do(t, "POST", ts.URL+"/v1/sketches/users/add", testToken,
		map[string]any{"elements": []uint64{1, 2, 3, 2, 1}})
	if status != http.StatusOK || body["ingested"].(float64) != 5 {
		t.Fatalf("add: status %d body %v", status, body)
	}
	status, body = do(t, "GET", ts.URL+"/v1/sketches/users/estimate", testToken, nil)
	if status != http.StatusOK {
		t.Fatalf("estimate: status %d", status)
	}
	if est := body["estimate"].(float64); est <= 0 {
		t.Fatalf("estimate %v for non-empty sketch", est)
	}
	if body["cached"].(bool) {
		t.Fatal("first estimate claims to be cached")
	}
	// Second query with no writes rides the version-counter cache.
	_, body = do(t, "GET", ts.URL+"/v1/sketches/users/estimate", testToken, nil)
	if !body["cached"].(bool) {
		t.Fatal("repeat estimate did not hit the cache")
	}

	// List and inspect.
	status, body = do(t, "GET", ts.URL+"/v1/sketches", testToken, nil)
	if status != http.StatusOK || len(body["sketches"].([]any)) != 1 {
		t.Fatalf("list: status %d body %v", status, body)
	}
	status, body = do(t, "GET", ts.URL+"/v1/sketches/users", testToken, nil)
	if status != http.StatusOK || body["sketch"].(map[string]any)["items"].(float64) != 5 {
		t.Fatalf("inspect: status %d body %v", status, body)
	}

	// Delete, then 404 everywhere.
	if status, _ = do(t, "DELETE", ts.URL+"/v1/sketches/users", testToken, nil); status != http.StatusNoContent {
		t.Fatalf("delete: status %d", status)
	}
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/sketches/users"},
		{"GET", "/v1/sketches/users/estimate"},
		{"POST", "/v1/sketches/users/snapshot"},
		{"DELETE", "/v1/sketches/users"},
	} {
		var b any
		if probe.method == "POST" {
			b = map[string]any{}
		}
		if status, _ = do(t, probe.method, ts.URL+probe.path, testToken, b); status != http.StatusNotFound {
			t.Errorf("%s %s after delete: status %d, want 404", probe.method, probe.path, status)
		}
	}
}

func TestTenantIsolationAndQuota(t *testing.T) {
	_, ts := newServer(t, server.Config{Tenants: []middleware.TenantConfig{
		{Name: "a", Token: "tok-a", MaxSketches: 2},
		{Name: "b", Token: "tok-b", MaxSketches: 2},
	}})
	mk := func(token, name string) (int, map[string]any) {
		return do(t, "POST", ts.URL+"/v1/sketches", token, map[string]any{"name": name, "bits": 8})
	}
	// Same sketch name under two tenants: no clash.
	if status, _ := mk("tok-a", "s1"); status != http.StatusCreated {
		t.Fatalf("a/s1: %d", status)
	}
	if status, _ := mk("tok-b", "s1"); status != http.StatusCreated {
		t.Fatalf("b/s1: %d", status)
	}
	// Tenant b cannot see or touch tenant a's sketch count.
	if _, body := do(t, "GET", ts.URL+"/v1/sketches", "tok-b", nil); len(body["sketches"].([]any)) != 1 {
		t.Fatalf("tenant b sees foreign sketches: %v", body)
	}

	// Quota: a's second create fine, third → 403 quota_exhausted.
	if status, _ := mk("tok-a", "s2"); status != http.StatusCreated {
		t.Fatalf("a/s2: %d", status)
	}
	status, body := mk("tok-a", "s3")
	if status != http.StatusForbidden || errCode(t, body) != "quota_exhausted" {
		t.Fatalf("quota: status %d body %v", status, body)
	}
	// Deleting frees quota.
	if status, _ := do(t, "DELETE", ts.URL+"/v1/sketches/s2", "tok-a", nil); status != http.StatusNoContent {
		t.Fatalf("delete s2: %d", status)
	}
	if status, _ := mk("tok-a", "s3"); status != http.StatusCreated {
		t.Fatalf("a/s3 after delete: %d", status)
	}
}

// fakeClock is a mutex-guarded test clock: the server goroutine reads it
// while the test advances it.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) read() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func TestRateLimit(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	_, ts := newServer(t, server.Config{
		Tenants: []middleware.TenantConfig{{Name: "rl", Token: "tok-rl", RatePerSec: 1, Burst: 2}},
		Now:     clock.read,
	})
	url := ts.URL + "/v1/sketches"
	// Burst of 2 passes, third is limited.
	for i := 0; i < 2; i++ {
		if status, _ := do(t, "GET", url, "tok-rl", nil); status != http.StatusOK {
			t.Fatalf("burst request %d: status %d", i, status)
		}
	}
	status, body := do(t, "GET", url, "tok-rl", nil)
	if status != http.StatusTooManyRequests || errCode(t, body) != "rate_limited" {
		t.Fatalf("rate limit: status %d body %v", status, body)
	}
	// One second later the bucket has refilled one token.
	clock.advance(time.Second)
	if status, _ := do(t, "GET", url, "tok-rl", nil); status != http.StatusOK {
		t.Fatalf("after refill: status %d", status)
	}
	if status, _ := do(t, "GET", url, "tok-rl", nil); status != http.StatusTooManyRequests {
		t.Fatalf("bucket should be empty again: status %d", status)
	}
}

// TestMalformedBodiesNever5xx drives every parsing and validation edge
// with hostile input and demands a typed 4xx — a 5xx would mean bad
// input reached server logic.
func TestMalformedBodiesNever5xx(t *testing.T) {
	_, ts := newServer(t, server.Config{MaxBatch: 4})
	// A healthy sketch for the ingest cases (8-bit universe).
	if status, _ := do(t, "POST", ts.URL+"/v1/sketches", testToken,
		map[string]any{"name": "m", "bits": 8}); status != http.StatusCreated {
		t.Fatal("setup create failed")
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   any // string = raw non-JSON body
		want   int
		code   string
	}{
		{"create invalid JSON", "POST", "/v1/sketches", "{", 400, "bad_request"},
		{"create unknown field", "POST", "/v1/sketches", `{"name":"x","bits":8,"bogus":1}`, 400, "bad_request"},
		{"create trailing garbage", "POST", "/v1/sketches", `{"name":"x","bits":8}{}`, 400, "bad_request"},
		{"create missing name", "POST", "/v1/sketches", map[string]any{"bits": 8}, 400, "invalid_name"},
		{"create traversal name", "POST", "/v1/sketches", map[string]any{"name": "../evil", "bits": 8}, 400, "invalid_name"},
		{"create bits too wide", "POST", "/v1/sketches", map[string]any{"name": "x", "bits": 65}, 400, "invalid_config"},
		{"create unknown algorithm", "POST", "/v1/sketches", map[string]any{"name": "x", "bits": 8, "algorithm": "median"}, 400, "invalid_config"},
		{"create negative epsilon", "POST", "/v1/sketches", map[string]any{"name": "x", "bits": 8, "epsilon": -1}, 400, "invalid_config"},
		{"create delta one", "POST", "/v1/sketches", map[string]any{"name": "x", "bits": 8, "delta": 1.0}, 400, "invalid_config"},
		{"create replicas negative", "POST", "/v1/sketches", map[string]any{"name": "x", "bits": 8, "replicas": -1}, 400, "invalid_config"},
		{"add invalid JSON", "POST", "/v1/sketches/m/add", "not json", 400, "bad_request"},
		{"add elements wrong type", "POST", "/v1/sketches/m/add", `{"elements":"zap"}`, 400, "bad_request"},
		{"add fractional element", "POST", "/v1/sketches/m/add", `{"elements":[1.5]}`, 400, "bad_request"},
		{"add negative element", "POST", "/v1/sketches/m/add", `{"elements":[-1]}`, 400, "bad_request"},
		{"add non-numeric string", "POST", "/v1/sketches/m/add", `{"elements":["ten"]}`, 400, "bad_request"},
		{"add out of range", "POST", "/v1/sketches/m/add", map[string]any{"elements": []uint64{1, 256}}, 400, "element_out_of_range"},
		{"add batch too large", "POST", "/v1/sketches/m/add", map[string]any{"elements": []uint64{1, 2, 3, 4, 5}}, 413, "batch_too_large"},
		{"count bad kind", "POST", "/v1/count", map[string]any{"kind": "qbf", "n": 3, "terms": [][]int{{1}}}, 400, "invalid_formula"},
		{"count zero vars", "POST", "/v1/count", map[string]any{"kind": "dnf", "n": 0, "terms": [][]int{{1}}}, 400, "invalid_formula"},
		{"count empty formula", "POST", "/v1/count", map[string]any{"kind": "dnf", "n": 3}, 400, "invalid_formula"},
		{"count literal out of range", "POST", "/v1/count", map[string]any{"kind": "dnf", "n": 3, "terms": [][]int{{4}}}, 400, "invalid_formula"},
		{"count karpluby on cnf", "POST", "/v1/count", map[string]any{"kind": "cnf", "n": 3, "clauses": [][]int{{1}}, "algorithm": "karpluby"}, 400, "invalid_formula"},
	}
	for _, tc := range cases {
		status, body := do(t, tc.method, ts.URL+tc.path, testToken, tc.body)
		if status >= 500 {
			t.Errorf("%s: got 5xx (%d): %v", tc.name, status, body)
			continue
		}
		if status != tc.want {
			t.Errorf("%s: status %d, want %d (%v)", tc.name, status, tc.want, body)
			continue
		}
		if got := errCode(t, body); got != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, got, tc.code)
		}
	}

	// The out-of-range rejection was atomic: nothing was ingested.
	_, body := do(t, "GET", ts.URL+"/v1/sketches/m", testToken, nil)
	if items := body["sketch"].(map[string]any)["items"].(float64); items != 0 {
		t.Errorf("rejected batches leaked %v items into the sketch", items)
	}
}

func TestCountEndpointMatchesLibrary(t *testing.T) {
	_, ts := newServer(t, server.Config{})
	status, body := do(t, "POST", ts.URL+"/v1/count", testToken, map[string]any{
		"kind": "dnf", "n": 12, "terms": [][]int{{1, 2}, {-3, 4, 5}, {6}},
		"algorithm": "minimum", "seed": 11,
	})
	if status != http.StatusOK {
		t.Fatalf("count: status %d body %v", status, body)
	}
	got := body["estimate"].(float64)

	ref, err := countDNFRef(12, [][]int{{1, 2}, {-3, 4, 5}, {6}}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Fatalf("HTTP count %v != library count %v", got, ref)
	}

	// A CNF count exercises the SAT solver and must surface its counters.
	status, body = do(t, "POST", ts.URL+"/v1/count", testToken, map[string]any{
		"kind": "cnf", "n": 6, "clauses": [][]int{{1, 2}, {-1, 3}, {2, -3, 4}, {5, 6}},
		"seed": 5,
	})
	if status != http.StatusOK {
		t.Fatalf("cnf count: status %d body %v", status, body)
	}
	solver := body["solver"].(map[string]any)
	if solver["propagations"].(float64) <= 0 {
		t.Fatalf("cnf count reported no solver work: %v", solver)
	}

	// The /metrics exposition carries the aggregated solver counters.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	for _, want := range []string{
		"f0d_count_requests_total{tenant=\"acme\"} 2",
		"f0d_solver_propagations_total",
		"f0d_http_requests_total",
		"f0d_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
}

func TestMetricsTrackIngestAndSketches(t *testing.T) {
	_, ts := newServer(t, server.Config{})
	do(t, "POST", ts.URL+"/v1/sketches", testToken, map[string]any{"name": "m1", "bits": 8, "seed": 1})
	do(t, "POST", ts.URL+"/v1/sketches/m1/add", testToken, map[string]any{"elements": []uint64{1, 2, 3}})
	do(t, "GET", ts.URL+"/v1/sketches/m1/estimate", testToken, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	for _, want := range []string{
		`f0d_ingest_elements_total{tenant="acme"} 3`,
		`f0d_estimate_queries_total{tenant="acme"} 1`,
		`f0d_sketches{tenant="acme"} 1`,
		fmt.Sprintf("f0d_http_requests_total{code=\"201\",route=%q} 1", "POST /v1/sketches"),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
}
