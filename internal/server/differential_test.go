package server_test

import (
	"fmt"
	"net/http"
	"sync"
	"testing"

	"mcf0"
	"mcf0/internal/server"
)

// countDNFRef computes the reference for TestCountEndpointMatchesLibrary
// by calling the library directly with the same parameters.
func countDNFRef(n int, terms [][]int, seed uint64) (float64, error) {
	res, err := mcf0.CountDNFTerms(n, terms, mcf0.AlgorithmMinimum, mcf0.Config{Seed: seed})
	if err != nil {
		return 0, err
	}
	return res.Estimate, nil
}

// stream generates a deterministic element stream with duplicates,
// bounded to a bits-wide universe.
func stream(n int, bits int) []uint64 {
	mask := uint64(1)<<uint(bits) - 1
	xs := make([]uint64, n)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range xs {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		xs[i] = (x >> 3) & mask
		if i%5 == 4 {
			xs[i] = xs[i/2] // force duplicates
		}
	}
	return xs
}

// TestHTTPEstimateBitIdentical is determinism invariant 7: for every
// sketch family and replica count, the estimate served over HTTP is
// bit-identical to an in-process F0 with the same seed over the same
// stream. JSON transport must not perturb the float (encoding/json
// round-trips float64 exactly via shortest-form formatting).
func TestHTTPEstimateBitIdentical(t *testing.T) {
	_, ts := newServer(t, server.Config{})
	elements := stream(4000, 20)

	for _, alg := range []string{"bucketing", "minimum", "estimation"} {
		for _, replicas := range []int{1, 3} {
			name := fmt.Sprintf("d-%s-%d", alg, replicas)
			t.Run(name, func(t *testing.T) {
				status, body := do(t, "POST", ts.URL+"/v1/sketches", testToken, map[string]any{
					"name": name, "bits": 20, "algorithm": alg, "seed": 42, "replicas": replicas,
				})
				if status != http.StatusCreated {
					t.Fatalf("create: status %d body %v", status, body)
				}
				// Ingest in uneven batches (batching is never semantic).
				for lo := 0; lo < len(elements); lo += 1700 {
					hi := min(lo+1700, len(elements))
					status, body = do(t, "POST", ts.URL+"/v1/sketches/"+name+"/add", testToken,
						map[string]any{"elements": elements[lo:hi]})
					if status != http.StatusOK {
						t.Fatalf("add: status %d body %v", status, body)
					}
				}
				_, body = do(t, "GET", ts.URL+"/v1/sketches/"+name+"/estimate", testToken, nil)
				got := body["estimate"].(float64)

				ref, err := mcf0.NewF0(20, mcf0.Algorithm(alg), mcf0.Config{Seed: 42})
				if err != nil {
					t.Fatal(err)
				}
				ref.AddBatch(elements)
				if want := ref.Estimate(); got != want {
					t.Fatalf("HTTP estimate %v != in-process estimate %v", got, want)
				}
			})
		}
	}
}

// TestSnapshotRestartDifferential drives the crash-recovery path:
// serve → snapshot → restart on the same data directory → serve. The
// restored sketch answers bit-identically, and restore + remaining
// stream equals an uninterrupted run (invariants 6 and 7 composed).
func TestSnapshotRestartDifferential(t *testing.T) {
	dataDir := t.TempDir()
	elements := stream(3000, 24)
	half := len(elements) / 2

	// First server: create, ingest the first half, snapshot explicitly.
	s1, ts1 := newServer(t, server.Config{DataDir: dataDir})
	status, body := do(t, "POST", ts1.URL+"/v1/sketches", testToken, map[string]any{
		"name": "recov", "bits": 24, "algorithm": "minimum", "seed": 99, "replicas": 2,
	})
	if status != http.StatusCreated {
		t.Fatalf("create: status %d body %v", status, body)
	}
	do(t, "POST", ts1.URL+"/v1/sketches/recov/add", testToken, map[string]any{"elements": elements[:half]})
	_, body = do(t, "GET", ts1.URL+"/v1/sketches/recov/estimate", testToken, nil)
	preRestart := body["estimate"].(float64)

	status, body = do(t, "POST", ts1.URL+"/v1/sketches/recov/snapshot", testToken, map[string]any{})
	if status != http.StatusOK {
		t.Fatalf("snapshot: status %d body %v", status, body)
	}
	if items := body["items"].(float64); items != float64(half) {
		t.Fatalf("snapshot covered %v items, want %d", items, half)
	}
	ts1.Close() // simulate a crash: no graceful shutdown, snapshot already cut
	_ = s1

	// Second server boots from the same data directory.
	s2, ts2 := newServer(t, server.Config{DataDir: dataDir})
	if s2.Restored() != 1 {
		t.Fatalf("restored %d sketches, want 1", s2.Restored())
	}
	status, body = do(t, "GET", ts2.URL+"/v1/sketches/recov", testToken, nil)
	if status != http.StatusOK {
		t.Fatalf("inspect after restart: status %d", status)
	}
	sk := body["sketch"].(map[string]any)
	if sk["items"].(float64) != float64(half) || sk["algorithm"] != "minimum" || sk["bits"].(float64) != 24 {
		t.Fatalf("restored sketch lost its identity: %v", sk)
	}
	if sk["dirty"].(bool) {
		t.Fatal("freshly restored sketch claims to be dirty")
	}

	// The restored estimate is bit-identical to the pre-restart one.
	_, body = do(t, "GET", ts2.URL+"/v1/sketches/recov/estimate", testToken, nil)
	if got := body["estimate"].(float64); got != preRestart {
		t.Fatalf("restored estimate %v != pre-restart estimate %v", got, preRestart)
	}

	// Ingesting the remainder yields the uninterrupted-run estimate.
	do(t, "POST", ts2.URL+"/v1/sketches/recov/add", testToken, map[string]any{"elements": elements[half:]})
	_, body = do(t, "GET", ts2.URL+"/v1/sketches/recov/estimate", testToken, nil)
	got := body["estimate"].(float64)

	ref, err := mcf0.NewF0(24, mcf0.AlgorithmMinimum, mcf0.Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	ref.AddBatch(elements)
	if want := ref.Estimate(); got != want {
		t.Fatalf("restore+remainder estimate %v != uninterrupted estimate %v", got, want)
	}
}

// TestShutdownSnapshotsDirty drives the graceful-shutdown tail: dirty
// sketches are persisted without an explicit snapshot request, and a
// restart restores them bit-identically.
func TestShutdownSnapshotsDirty(t *testing.T) {
	dataDir := t.TempDir()
	elements := stream(1500, 16)

	s1, ts1 := newServer(t, server.Config{DataDir: dataDir})
	do(t, "POST", ts1.URL+"/v1/sketches", testToken, map[string]any{
		"name": "grace", "bits": 16, "seed": 7,
	})
	do(t, "POST", ts1.URL+"/v1/sketches/grace/add", testToken, map[string]any{"elements": elements})
	_, body := do(t, "GET", ts1.URL+"/v1/sketches/grace/estimate", testToken, nil)
	want := body["estimate"].(float64)
	if err := s1.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts1.Close()

	s2, ts2 := newServer(t, server.Config{DataDir: dataDir})
	if s2.Restored() != 1 {
		t.Fatalf("restored %d sketches after graceful shutdown, want 1", s2.Restored())
	}
	_, body = do(t, "GET", ts2.URL+"/v1/sketches/grace/estimate", testToken, nil)
	if got := body["estimate"].(float64); got != want {
		t.Fatalf("estimate after graceful restart %v != %v", got, want)
	}
}

// TestConcurrentIngestAndEstimate hammers one sketch with parallel
// ingest batches and estimate queries (run under -race in CI), then
// checks the settled estimate equals a serial in-process run over the
// union — parallelism is never semantic (invariant 2).
func TestConcurrentIngestAndEstimate(t *testing.T) {
	_, ts := newServer(t, server.Config{})
	status, _ := do(t, "POST", ts.URL+"/v1/sketches", testToken, map[string]any{
		"name": "hammer", "bits": 22, "algorithm": "minimum", "seed": 5, "replicas": 4,
	})
	if status != http.StatusCreated {
		t.Fatal("create failed")
	}

	elements := stream(6000, 22)
	const writers = 6
	chunk := len(elements) / writers

	var writersWG, readersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if w == writers-1 {
			hi = len(elements)
		}
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			for at := lo; at < hi; at += 256 {
				end := min(at+256, hi)
				st, body := do(t, "POST", ts.URL+"/v1/sketches/hammer/add", testToken,
					map[string]any{"elements": elements[at:end]})
				if st != http.StatusOK {
					t.Errorf("concurrent add: status %d body %v", st, body)
					return
				}
			}
		}()
	}
	// Readers hammer estimates while the writers run.
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if st, _ := do(t, "GET", ts.URL+"/v1/sketches/hammer/estimate", testToken, nil); st != http.StatusOK {
					t.Errorf("concurrent estimate: status %d", st)
					return
				}
			}
		}()
	}
	writersWG.Wait()
	close(stop)
	readersWG.Wait()

	_, body := do(t, "GET", ts.URL+"/v1/sketches/hammer/estimate", testToken, nil)
	got := body["estimate"].(float64)
	if items := body["items"].(float64); items != float64(len(elements)) {
		t.Fatalf("accepted %v items, want %d", items, len(elements))
	}

	ref, err := mcf0.NewF0(22, mcf0.AlgorithmMinimum, mcf0.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ref.AddBatch(elements)
	if want := ref.Estimate(); got != want {
		t.Fatalf("concurrent estimate %v != serial estimate %v", got, want)
	}
}
