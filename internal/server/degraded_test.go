package server_test

import (
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"mcf0/internal/faultinject"
	"mcf0/internal/server"
)

// testClock is a mutex-guarded fake clock for the breaker's cooldown.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// TestDegradedModeEndToEnd walks the whole resilience story: a permanent
// disk failure opens the snapshot breaker; /healthz and /metrics report
// the degraded daemon; ingest and estimates keep serving; and after the
// disk heals a clean shutdown + restart recovers every acknowledged
// ingest.
func TestDegradedModeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	clk := &testClock{t: time.Unix(1000, 0)}
	chaos := faultinject.MustNew(faultinject.Config{Seed: 42})

	s, ts := newServer(t, server.Config{
		DataDir:         dir,
		Now:             clk.now,
		BreakerFailures: 2,
		BreakerCooldown: time.Hour,
		DiskHook:        chaos.DiskHook(),
	})
	base := ts.URL

	status, _ := do(t, "POST", base+"/v1/sketches", testToken,
		map[string]any{"name": "s", "bits": 16, "seed": 7})
	if status != http.StatusCreated && status != http.StatusOK {
		t.Fatalf("create: status %d", status)
	}
	if status, _ := do(t, "POST", base+"/v1/sketches/s/add", testToken,
		map[string]any{"elements": []uint64{1, 2, 3}}); status != http.StatusOK {
		t.Fatalf("add: status %d", status)
	}
	if status, _ := do(t, "POST", base+"/v1/sketches/s/snapshot", testToken, nil); status != http.StatusOK {
		t.Fatalf("healthy snapshot: status %d", status)
	}

	// The disk dies. Acked ingests continue; snapshots start failing.
	chaos.BreakDisk()
	if status, _ := do(t, "POST", base+"/v1/sketches/s/add", testToken,
		map[string]any{"elements": []uint64{4, 5}}); status != http.StatusOK {
		t.Fatalf("add on dead disk: status %d (ingest must not depend on the disk)", status)
	}
	for i := 0; i < 2; i++ {
		status, body := do(t, "POST", base+"/v1/sketches/s/snapshot", testToken, nil)
		if status != http.StatusServiceUnavailable || errCode(t, body) != "snapshot_failed" {
			t.Fatalf("snapshot %d on dead disk: status %d code %q, want 503 snapshot_failed",
				i, status, errCode(t, body))
		}
	}

	// Two consecutive failures opened the breaker: now requests fail fast
	// with the breaker's Retry-After, without touching the disk.
	req, _ := http.NewRequest("POST", base+"/v1/sketches/s/snapshot", nil)
	req.Header.Set("Authorization", "Bearer "+testToken)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker snapshot: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("open-breaker 503 carries no Retry-After")
	}

	// The daemon is degraded, not dead: healthz says so at 200.
	status, body := do(t, "GET", base+"/healthz", "", nil)
	if status != http.StatusOK {
		t.Fatalf("degraded healthz: status %d, want 200 (orchestrators must not kill the replica)", status)
	}
	if body["status"] != "degraded" || body["snapshot_breaker"] != "open" {
		t.Fatalf("degraded healthz body = %v", body)
	}

	// Metrics expose the breaker.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	buf := make([]byte, 64<<10)
	for {
		n, rerr := mresp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	mresp.Body.Close()
	metricsText := sb.String()
	if !strings.Contains(metricsText, "f0d_snapshot_breaker_state 1") {
		t.Fatalf("metrics do not report the open breaker:\n%s", metricsText)
	}
	if !strings.Contains(metricsText, "f0d_snapshot_breaker_opens 1") {
		t.Fatal("metrics do not count the breaker open")
	}

	// Estimates keep flowing in degraded mode.
	status, body = do(t, "GET", base+"/v1/sketches/s/estimate", testToken, nil)
	if status != http.StatusOK {
		t.Fatalf("degraded estimate: status %d", status)
	}
	degradedEstimate := body["estimate"]

	// The disk heals; a clean shutdown persists the dirty sketch even
	// though the breaker never saw the recovery (shutdown bypasses it).
	chaos.HealDisk()
	if err := s.Shutdown(); err != nil {
		t.Fatalf("shutdown snapshot after heal: %v", err)
	}

	// Restart over the same data directory: nothing acked was lost.
	s2, ts2 := newServer(t, server.Config{DataDir: dir})
	if s2.Restored() != 1 {
		t.Fatalf("restored %d sketches, want 1", s2.Restored())
	}
	status, body = do(t, "GET", ts2.URL+"/v1/sketches/s/estimate", testToken, nil)
	if status != http.StatusOK {
		t.Fatalf("post-restart estimate: status %d", status)
	}
	if body["estimate"] != degradedEstimate {
		t.Fatalf("post-restart estimate %v != degraded-mode estimate %v (acked ingest lost)",
			body["estimate"], degradedEstimate)
	}
	status, body = do(t, "GET", ts2.URL+"/healthz", "", nil)
	if status != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("post-restart healthz = %d %v, want 200 ok", status, body)
	}

	// Cooldown probes: back on the first server's clock the breaker would
	// have half-opened after the hour — covered by the state package's
	// breaker tests; here the restart already proved recovery.
	clk.advance(2 * time.Hour)
}
