package server_test

import (
	"os"
	"regexp"
	"testing"

	"mcf0/internal/server"
	"mcf0/internal/server/middleware"
)

// headingRE matches docs/API.md endpoint headings: ### `METHOD /path`.
var headingRE = regexp.MustCompile("(?m)^### `(GET|POST|PUT|PATCH|DELETE) ([^`]+)`")

// TestRoutesDocumented cross-checks the live route table against
// docs/API.md in both directions: every registered route must have an
// endpoint heading, and every endpoint heading must correspond to a
// registered route. Shipping an undocumented endpoint — or documenting
// a phantom one — fails CI here.
func TestRoutesDocumented(t *testing.T) {
	raw, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("docs/API.md must exist and document every route: %v", err)
	}

	documented := make(map[string]bool)
	for _, m := range headingRE.FindAllStringSubmatch(string(raw), -1) {
		documented[m[1]+" "+m[2]] = true
	}
	if len(documented) == 0 {
		t.Fatal("docs/API.md has no endpoint headings (want lines like \"### `POST /v1/sketches`\")")
	}

	s, err := server.New(server.Config{
		Tenants: []middleware.TenantConfig{{Name: "doc", Token: "doc-token"}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}

	served := make(map[string]bool)
	for _, rt := range s.Routes() {
		key := rt.Method + " " + rt.Pattern
		served[key] = true
		if rt.Doc == "" {
			t.Errorf("route %q has an empty Doc summary", key)
		}
		if !documented[key] {
			t.Errorf("route %q is served but has no \"### `%s`\" heading in docs/API.md", key, key)
		}
	}
	for key := range documented {
		if !served[key] {
			t.Errorf("docs/API.md documents %q but no such route is registered", key)
		}
	}

	if len(served) < 10 {
		t.Errorf("route table has %d routes; the daemon ships 10 — did a route get dropped?", len(served))
	}
}
