package middleware

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mcf0/internal/server/metrics"
)

func TestNewAuthValidation(t *testing.T) {
	met := metrics.New()
	for _, tc := range []struct {
		name    string
		tenants []TenantConfig
	}{
		{"empty name", []TenantConfig{{Name: "", Token: "x"}}},
		{"empty token", []TenantConfig{{Name: "a", Token: ""}}},
		{"duplicate tenant", []TenantConfig{{Name: "a", Token: "x"}, {Name: "a", Token: "y"}}},
		{"duplicate token", []TenantConfig{{Name: "a", Token: "x"}, {Name: "b", Token: "x"}}},
	} {
		if _, err := NewAuth(tc.tenants, met, nil); err == nil {
			t.Errorf("%s: NewAuth accepted bad config", tc.name)
		}
	}
	if _, err := NewAuth([]TenantConfig{{Name: "a", Token: "x"}, {Name: "b", Token: "y"}}, met, nil); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestBearerToken(t *testing.T) {
	mk := func(h string) *http.Request {
		r := httptest.NewRequest("GET", "/", nil)
		if h != "" {
			r.Header.Set("Authorization", h)
		}
		return r
	}
	for _, tc := range []struct {
		header string
		token  string
		ok     bool
	}{
		{"", "", false},
		{"Bearer", "", false},
		{"Bearer ", "", false},
		{"Basic dXNlcg==", "", false},
		{"Bearer tok", "tok", true},
		{"bearer tok", "tok", true}, // scheme is case-insensitive
		{"BEARER tok", "tok", true},
	} {
		token, ok := bearerToken(mk(tc.header))
		if ok != tc.ok || token != tc.token {
			t.Errorf("bearerToken(%q) = (%q, %v), want (%q, %v)", tc.header, token, ok, tc.token, tc.ok)
		}
	}
}

func TestTokenBucket(t *testing.T) {
	met := metrics.New()
	auth, err := NewAuth([]TenantConfig{{Name: "a", Token: "x", RatePerSec: 2, Burst: 3}}, met, nil)
	if err != nil {
		t.Fatal(err)
	}
	var tenant *Tenant
	for _, tn := range auth.byToken {
		tenant = tn
	}
	now := time.Unix(0, 0)
	// Burst of 3, then dry.
	for i := 0; i < 3; i++ {
		if !tenant.allow(now) {
			t.Fatalf("burst request %d denied", i)
		}
	}
	if tenant.allow(now) {
		t.Fatal("4th request in one instant should be denied")
	}
	// 500ms refills one token at 2/s.
	now = now.Add(500 * time.Millisecond)
	if !tenant.allow(now) {
		t.Fatal("request after refill denied")
	}
	if tenant.allow(now) {
		t.Fatal("bucket should be dry again")
	}
	// A long idle period caps at the burst, not unbounded.
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if !tenant.allow(now) {
			t.Fatalf("post-idle burst request %d denied", i)
		}
	}
	if tenant.allow(now) {
		t.Fatal("idle time must not accumulate beyond the burst")
	}
}

func TestBurstDefaults(t *testing.T) {
	met := metrics.New()
	auth, err := NewAuth([]TenantConfig{{Name: "a", Token: "x", RatePerSec: 0.5}}, met, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range auth.byToken {
		if tn.burst != 1 {
			t.Fatalf("burst = %v, want the max(1, rate) default", tn.burst)
		}
	}
	// Rate 0 = unlimited: allow never denies.
	auth, err = NewAuth([]TenantConfig{{Name: "b", Token: "y"}}, met, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range auth.byToken {
		for i := 0; i < 100; i++ {
			if !tn.allow(time.Unix(0, 0)) {
				t.Fatal("unlimited tenant was rate limited")
			}
		}
	}
}

func TestObservePanicRecovery(t *testing.T) {
	met := metrics.New()
	h := Observe("GET /boom", met, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", rec.Code)
	}
	var body struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error.Code != "internal" {
		t.Fatalf("panic response %q (err %v), want the internal error envelope", rec.Body.String(), err)
	}
}
