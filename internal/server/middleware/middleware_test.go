package middleware

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mcf0/internal/server/metrics"
)

func TestNewAuthValidation(t *testing.T) {
	met := metrics.New()
	for _, tc := range []struct {
		name    string
		tenants []TenantConfig
	}{
		{"empty name", []TenantConfig{{Name: "", Token: "x"}}},
		{"empty token", []TenantConfig{{Name: "a", Token: ""}}},
		{"duplicate tenant", []TenantConfig{{Name: "a", Token: "x"}, {Name: "a", Token: "y"}}},
		{"duplicate token", []TenantConfig{{Name: "a", Token: "x"}, {Name: "b", Token: "x"}}},
	} {
		if _, err := NewAuth(tc.tenants, met, nil); err == nil {
			t.Errorf("%s: NewAuth accepted bad config", tc.name)
		}
	}
	if _, err := NewAuth([]TenantConfig{{Name: "a", Token: "x"}, {Name: "b", Token: "y"}}, met, nil); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestBearerToken(t *testing.T) {
	mk := func(h string) *http.Request {
		r := httptest.NewRequest("GET", "/", nil)
		if h != "" {
			r.Header.Set("Authorization", h)
		}
		return r
	}
	for _, tc := range []struct {
		header string
		token  string
		ok     bool
	}{
		{"", "", false},
		{"Bearer", "", false},
		{"Bearer ", "", false},
		{"Basic dXNlcg==", "", false},
		{"Bearer tok", "tok", true},
		{"bearer tok", "tok", true}, // scheme is case-insensitive
		{"BEARER tok", "tok", true},
	} {
		token, ok := bearerToken(mk(tc.header))
		if ok != tc.ok || token != tc.token {
			t.Errorf("bearerToken(%q) = (%q, %v), want (%q, %v)", tc.header, token, ok, tc.token, tc.ok)
		}
	}
}

func TestTokenBucket(t *testing.T) {
	met := metrics.New()
	auth, err := NewAuth([]TenantConfig{{Name: "a", Token: "x", RatePerSec: 2, Burst: 3}}, met, nil)
	if err != nil {
		t.Fatal(err)
	}
	var tenant *Tenant
	for _, tn := range auth.byToken {
		tenant = tn
	}
	now := time.Unix(0, 0)
	// Burst of 3, then dry.
	for i := 0; i < 3; i++ {
		if ok, _ := tenant.allow(now); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	if ok, retryAfter := tenant.allow(now); ok {
		t.Fatal("4th request in one instant should be denied")
	} else if retryAfter <= 0 || retryAfter > 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want (0, 500ms] at 2 tokens/s", retryAfter)
	}
	// 500ms refills one token at 2/s.
	now = now.Add(500 * time.Millisecond)
	if ok, _ := tenant.allow(now); !ok {
		t.Fatal("request after refill denied")
	}
	if ok, _ := tenant.allow(now); ok {
		t.Fatal("bucket should be dry again")
	}
	// A long idle period caps at the burst, not unbounded.
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := tenant.allow(now); !ok {
			t.Fatalf("post-idle burst request %d denied", i)
		}
	}
	if ok, _ := tenant.allow(now); ok {
		t.Fatal("idle time must not accumulate beyond the burst")
	}
}

func TestBurstDefaults(t *testing.T) {
	met := metrics.New()
	auth, err := NewAuth([]TenantConfig{{Name: "a", Token: "x", RatePerSec: 0.5}}, met, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range auth.byToken {
		if tn.burst != 1 {
			t.Fatalf("burst = %v, want the max(1, rate) default", tn.burst)
		}
	}
	// Rate 0 = unlimited: allow never denies.
	auth, err = NewAuth([]TenantConfig{{Name: "b", Token: "y"}}, met, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range auth.byToken {
		for i := 0; i < 100; i++ {
			if ok, _ := tn.allow(time.Unix(0, 0)); !ok {
				t.Fatal("unlimited tenant was rate limited")
			}
		}
	}
}

func TestRateLimitSendsRetryAfter(t *testing.T) {
	met := metrics.New()
	auth, err := NewAuth([]TenantConfig{{Name: "a", Token: "x", RatePerSec: 1, Burst: 1}}, met, func() time.Time { return time.Unix(0, 0) })
	if err != nil {
		t.Fatal(err)
	}
	h := auth.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	mk := func() *httptest.ResponseRecorder {
		r := httptest.NewRequest("GET", "/", nil)
		r.Header.Set("Authorization", "Bearer x")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		return rec
	}
	if rec := mk(); rec.Code != http.StatusOK {
		t.Fatalf("first request: status %d", rec.Code)
	}
	rec := mk()
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want %q (1 token/s bucket)", ra, "1")
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{10 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1100 * time.Millisecond, "2"},
		{10 * time.Second, "10"},
	} {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

// TestShed: requests beyond the in-flight limit are refused with 503 +
// Retry-After while an admitted request is still running.
func TestShed(t *testing.T) {
	met := metrics.New()
	shed := NewShed(1, met)
	release := make(chan struct{})
	entered := make(chan struct{})
	h := shed.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}))

	done := make(chan *httptest.ResponseRecorder)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
		done <- rec
	}()
	<-entered // the slow request holds the only slot

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated gate: status %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("shed Retry-After = %q, want %q", ra, "1")
	}
	var body struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error.Code != "overloaded" {
		t.Fatalf("shed body %q (err %v), want the overloaded envelope", rec.Body.String(), err)
	}

	close(release)
	if rec := <-done; rec.Code != http.StatusOK {
		t.Fatalf("admitted request: status %d, want 200", rec.Code)
	}
	if shed.InFlight() != 0 {
		t.Fatalf("InFlight = %d after all requests finished", shed.InFlight())
	}
}

func TestShedDisabled(t *testing.T) {
	var s *Shed
	h := s.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("nil shed: status %d", rec.Code)
	}
}

func TestDeadline(t *testing.T) {
	var sawDeadline bool
	h := Deadline(time.Minute, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, sawDeadline = r.Context().Deadline()
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if !sawDeadline {
		t.Fatal("Deadline(1m) did not attach a context deadline")
	}
	h = Deadline(0, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, sawDeadline = r.Context().Deadline()
	}))
	sawDeadline = false
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if sawDeadline {
		t.Fatal("Deadline(0) attached a deadline; 0 must disable the wrapper")
	}
}

func TestObservePanicRecovery(t *testing.T) {
	met := metrics.New()
	h := Observe("GET /boom", met, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", rec.Code)
	}
	var body struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error.Code != "internal" {
		t.Fatalf("panic response %q (err %v), want the internal error envelope", rec.Body.String(), err)
	}
}
