// Package middleware carries f0d's HTTP cross-cutting concerns: bearer
// token authentication resolving tokens to tenants, per-tenant
// token-bucket rate limiting, and the per-route observation wrapper
// (request counting by status code, panic-to-500 recovery).
//
// Tokens are looked up by SHA-256 digest, so the map lookup never
// compares secret bytes against attacker-controlled input byte-by-byte.
// Rejections use the same JSON error envelope as the handlers:
// {"error":{"code":...,"message":...}}.
package middleware

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcf0/internal/server/metrics"
)

// TenantConfig describes one tenant's credentials and limits.
type TenantConfig struct {
	// Name identifies the tenant; it scopes sketch names, quota
	// accounting, and metric labels.
	Name string
	// Token is the bearer token (non-empty).
	Token string
	// MaxSketches bounds the tenant's live sketches (0 = unlimited).
	MaxSketches int
	// RatePerSec and Burst parameterise the tenant's request token
	// bucket (RatePerSec 0 = unlimited; Burst defaults to
	// max(1, ⌈RatePerSec⌉)).
	RatePerSec float64
	Burst      int
}

// Tenant is the resolved identity attached to authenticated requests.
type Tenant struct {
	Name        string
	MaxSketches int

	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// allow takes one token from the bucket if available; when it refuses,
// retryAfter is how long until the bucket next holds a whole token (the
// 429 Retry-After hint).
func (t *Tenant) allow(now time.Time) (ok bool, retryAfter time.Duration) {
	if t.rate <= 0 {
		return true, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.last.IsZero() {
		t.tokens += now.Sub(t.last).Seconds() * t.rate
		if t.tokens > t.burst {
			t.tokens = t.burst
		}
	}
	t.last = now
	if t.tokens < 1 {
		return false, time.Duration((1 - t.tokens) / t.rate * float64(time.Second))
	}
	t.tokens--
	return true, 0
}

type ctxKey struct{}

// TenantFrom returns the tenant the Auth middleware attached to the
// request context (nil on unauthenticated routes).
func TenantFrom(ctx context.Context) *Tenant {
	t, _ := ctx.Value(ctxKey{}).(*Tenant)
	return t
}

// Auth authenticates requests by bearer token and applies the resolved
// tenant's rate limit.
type Auth struct {
	byToken map[[sha256.Size]byte]*Tenant
	met     *metrics.Metrics
	now     func() time.Time
}

// NewAuth builds the authenticator. now is the rate limiter's clock
// (nil = time.Now; tests inject a fake).
func NewAuth(tenants []TenantConfig, met *metrics.Metrics, now func() time.Time) (*Auth, error) {
	if now == nil {
		now = time.Now
	}
	a := &Auth{byToken: make(map[[sha256.Size]byte]*Tenant, len(tenants)), met: met, now: now}
	seen := make(map[string]bool, len(tenants))
	for _, tc := range tenants {
		if tc.Name == "" || tc.Token == "" {
			return nil, fmt.Errorf("middleware: tenant needs a name and a non-empty token")
		}
		if seen[tc.Name] {
			return nil, fmt.Errorf("middleware: duplicate tenant %q", tc.Name)
		}
		seen[tc.Name] = true
		key := sha256.Sum256([]byte(tc.Token))
		if _, dup := a.byToken[key]; dup {
			return nil, fmt.Errorf("middleware: duplicate token (tenant %q)", tc.Name)
		}
		burst := float64(tc.Burst)
		if tc.RatePerSec > 0 && burst < 1 {
			burst = tc.RatePerSec
			if burst < 1 {
				burst = 1
			}
		}
		a.byToken[key] = &Tenant{
			Name:        tc.Name,
			MaxSketches: tc.MaxSketches,
			rate:        tc.RatePerSec,
			burst:       burst,
			tokens:      burst,
		}
	}
	return a, nil
}

// Wrap enforces authentication (401) and the tenant's rate limit (429)
// before next runs with the tenant in the request context.
func (a *Auth) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		token, ok := bearerToken(r)
		if !ok {
			a.met.Add("f0d_auth_failures_total", 1)
			w.Header().Set("WWW-Authenticate", `Bearer realm="f0d"`)
			writeErr(w, http.StatusUnauthorized, "unauthorized", "missing or malformed Authorization: Bearer header")
			return
		}
		tenant, ok := a.byToken[sha256.Sum256([]byte(token))]
		if !ok {
			a.met.Add("f0d_auth_failures_total", 1)
			w.Header().Set("WWW-Authenticate", `Bearer realm="f0d"`)
			writeErr(w, http.StatusUnauthorized, "unauthorized", "unknown bearer token")
			return
		}
		if ok, retryAfter := tenant.allow(a.now()); !ok {
			a.met.AddLabeled("f0d_rate_limited_total", metrics.Label("tenant", tenant.Name), 1)
			w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
			writeErr(w, http.StatusTooManyRequests, "rate_limited", "tenant request rate exceeded; retry later")
			return
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ctxKey{}, tenant)))
	})
}

// retryAfterSeconds renders a duration as a Retry-After header value:
// whole seconds, rounded up, at least 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// Shed is the bounded in-flight gate: at most limit requests run at
// once, and excess load is refused immediately with 503 + Retry-After
// instead of queueing until timeouts tear everything down. Health and
// metrics routes are wired outside the gate so operators can always
// observe a saturated daemon.
type Shed struct {
	limit    int64
	inflight atomic.Int64
	met      *metrics.Metrics
}

// NewShed builds the gate; limit ≤ 0 disables shedding (nil Shed also
// works as a no-op wrapper).
func NewShed(limit int, met *metrics.Metrics) *Shed {
	return &Shed{limit: int64(limit), met: met}
}

// Wrap applies the gate to next.
func (s *Shed) Wrap(next http.Handler) http.Handler {
	if s == nil || s.limit <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.inflight.Add(1) > s.limit {
			s.inflight.Add(-1)
			s.met.Add("f0d_shed_total", 1)
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, "overloaded", "server at capacity; retry later")
			return
		}
		defer s.inflight.Add(-1)
		next.ServeHTTP(w, r)
	})
}

// InFlight returns the current number of admitted requests.
func (s *Shed) InFlight() int64 {
	if s == nil {
		return 0
	}
	return s.inflight.Load()
}

// Deadline attaches a per-request timeout to the request context, so
// every handler downstream — including snapshot disk writes — inherits
// a cancellation deadline. d ≤ 0 disables the wrapper.
func Deadline(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

func bearerToken(r *http.Request) (string, bool) {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) <= len(prefix) || !strings.EqualFold(h[:len(prefix)], prefix) {
		return "", false
	}
	return h[len(prefix):], true
}

// Observe wraps a route's handler with request counting (by final status
// code) and panic recovery: a panicking handler yields a JSON 500, never
// a torn connection, and the panic is counted against the route.
func Observe(route string, met *metrics.Metrics, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				if !sw.wrote {
					writeErr(sw, http.StatusInternalServerError, "internal", fmt.Sprintf("internal error: %v", p))
				}
			}
			met.IncRequest(route, sw.status())
		}()
		next.ServeHTTP(sw, r)
	})
}

type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code, w.wrote = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code, w.wrote = http.StatusOK, true
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if !w.wrote {
		return http.StatusOK
	}
	return w.code
}

// writeErr emits the canonical error envelope (the handlers package
// writes the same shape; keeping a local copy avoids an import cycle).
func writeErr(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]string{"code": code, "message": msg},
	})
}
