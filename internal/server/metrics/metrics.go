// Package metrics is the f0d daemon's counter registry and Prometheus
// text exposition. It is deliberately dependency-free: counters are
// (name, label-set) → float64 cells guarded by one mutex (the handlers'
// hot paths touch a counter once per HTTP request, so contention is not a
// concern), gauges are callbacks sampled at scrape time, and ServeHTTP
// renders everything in the Prometheus text format (version 0.0.4) in
// deterministic sorted order.
//
// Known f0d_* series carry HELP/TYPE headers from a static table; see
// docs/OPERATIONS.md for the full metrics reference.
package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Metrics is a registry of counters and gauge callbacks.
type Metrics struct {
	start time.Time

	mu      sync.Mutex
	series  map[string]map[string]float64 // name -> rendered labels -> value
	gaugeFn []gauge
}

type gauge struct {
	name string
	fn   func() map[string]float64 // rendered labels -> value ("" = unlabeled)
}

// New returns an empty registry; uptime is measured from this call.
func New() *Metrics {
	return &Metrics{start: time.Now(), series: make(map[string]map[string]float64)}
}

// Add increments the unlabeled counter name by v.
func (m *Metrics) Add(name string, v float64) { m.AddLabeled(name, "", v) }

// AddLabeled increments the counter cell (name, labels) by v; labels is a
// rendered label list such as `tenant="acme"` (see Label).
func (m *Metrics) AddLabeled(name, labels string, v float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cells := m.series[name]
	if cells == nil {
		cells = make(map[string]float64)
		m.series[name] = cells
	}
	cells[labels] += v
}

// IncRequest counts one served HTTP request on the given route pattern
// with the given status code.
func (m *Metrics) IncRequest(route string, code int) {
	m.AddLabeled("f0d_http_requests_total",
		fmt.Sprintf("code=\"%d\",route=%q", code, route), 1)
}

// RegisterGauge registers a callback sampled at scrape time; it returns
// the gauge's cells as rendered-labels → value ("" for an unlabeled
// gauge). Callbacks run outside the registry lock and must be safe to
// call from any goroutine.
func (m *Metrics) RegisterGauge(name string, fn func() map[string]float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gaugeFn = append(m.gaugeFn, gauge{name: name, fn: fn})
}

// Label renders one label pair, escaping the value.
func Label(key, value string) string { return fmt.Sprintf("%s=%q", key, value) }

// helpText carries the HELP line and metric type of every known series.
var helpText = map[string]struct {
	help  string
	gauge bool
}{
	"f0d_http_requests_total":       {help: "HTTP requests served, by route pattern and status code."},
	"f0d_ingest_elements_total":     {help: "Stream elements accepted into sketches, by tenant."},
	"f0d_ingest_requests_total":     {help: "Ingest (add) requests accepted, by tenant."},
	"f0d_estimate_queries_total":    {help: "Estimate queries served, by tenant."},
	"f0d_estimate_cache_hits_total": {help: "Estimate queries answered from the version-counter cache, by tenant."},
	"f0d_snapshots_total":           {help: "Sketch snapshots persisted, by tenant."},
	"f0d_snapshot_bytes_total":      {help: "Bytes of encoded sketch snapshots persisted, by tenant."},
	"f0d_auth_failures_total":       {help: "Requests rejected for a missing or unknown bearer token."},
	"f0d_rate_limited_total":        {help: "Requests rejected by the per-tenant rate limiter, by tenant."},
	"f0d_count_requests_total":      {help: "One-shot model-counting requests served, by tenant."},
	"f0d_oracle_queries_total":      {help: "NP-oracle (SAT) queries spent by model-counting requests."},
	"f0d_solver_decisions_total":    {help: "CDCL solver decisions across model-counting requests."},
	"f0d_solver_propagations_total": {help: "CDCL solver propagations across model-counting requests."},
	"f0d_solver_conflicts_total":    {help: "CDCL solver conflicts across model-counting requests."},
	"f0d_solver_learned_total":      {help: "CDCL learned clauses across model-counting requests."},
	"f0d_solver_deleted_total":      {help: "CDCL learned clauses deleted by database reduction."},
	"f0d_solver_restarts_total":     {help: "CDCL solver restarts across model-counting requests."},
	"f0d_sketches":                  {help: "Live sketches, by tenant.", gauge: true},
	"f0d_sketch_words":              {help: "Summed sketch footprint in 64-bit words, by tenant.", gauge: true},
	"f0d_uptime_seconds":            {help: "Seconds since the daemon started.", gauge: true},
	"f0d_shed_total":                {help: "Requests refused by the in-flight load-shedding gate (503 overloaded)."},
	"f0d_inflight_requests":         {help: "Authenticated requests currently executing.", gauge: true},
	"f0d_snapshot_breaker_state":    {help: "Snapshot disk circuit breaker state (0=closed, 1=open, 2=half-open).", gauge: true},
	"f0d_snapshot_breaker_opens":    {help: "Times the snapshot disk circuit breaker has opened since boot.", gauge: true},
}

// ServeHTTP renders the registry in the Prometheus text format.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.Render(w)
}

// Render writes the exposition to w: every counter cell plus every
// registered gauge, grouped by series name in sorted order.
func (m *Metrics) Render(w io.Writer) {
	m.mu.Lock()
	out := make(map[string]map[string]float64, len(m.series)+len(m.gaugeFn)+1)
	for name, cells := range m.series {
		cp := make(map[string]float64, len(cells))
		for l, v := range cells {
			cp[l] = v
		}
		out[name] = cp
	}
	gauges := append([]gauge(nil), m.gaugeFn...)
	m.mu.Unlock()

	for _, g := range gauges {
		out[g.name] = g.fn()
	}
	out["f0d_uptime_seconds"] = map[string]float64{"": time.Since(m.start).Seconds()}

	names := make([]string, 0, len(out))
	for name := range out {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		if ht, ok := helpText[name]; ok {
			typ := "counter"
			if ht.gauge {
				typ = "gauge"
			}
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, ht.help, name, typ)
		}
		cells := out[name]
		labels := make([]string, 0, len(cells))
		for l := range cells {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			if l == "" {
				fmt.Fprintf(&b, "%s %g\n", name, cells[l])
			} else {
				fmt.Fprintf(&b, "%s{%s} %g\n", name, l, cells[l])
			}
		}
	}
	io.WriteString(w, b.String())
}
