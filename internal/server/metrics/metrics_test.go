package metrics

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRenderSortedAndLabeled(t *testing.T) {
	m := New()
	m.Add("f0d_auth_failures_total", 2)
	m.AddLabeled("f0d_ingest_elements_total", Label("tenant", "b"), 5)
	m.AddLabeled("f0d_ingest_elements_total", Label("tenant", "a"), 3)
	m.AddLabeled("f0d_ingest_elements_total", Label("tenant", "a"), 4) // accumulates
	m.IncRequest("GET /healthz", 200)
	m.RegisterGauge("f0d_sketches", func() map[string]float64 {
		return map[string]float64{Label("tenant", "a"): 1}
	})

	var b strings.Builder
	m.Render(&b)
	text := b.String()

	for _, want := range []string{
		"# HELP f0d_auth_failures_total ",
		"# TYPE f0d_auth_failures_total counter",
		"f0d_auth_failures_total 2\n",
		`f0d_ingest_elements_total{tenant="a"} 7`,
		`f0d_ingest_elements_total{tenant="b"} 5`,
		`f0d_http_requests_total{code="200",route="GET /healthz"} 1`,
		"# TYPE f0d_sketches gauge",
		`f0d_sketches{tenant="a"} 1`,
		"f0d_uptime_seconds ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// Label cells of one series render in sorted order.
	if strings.Index(text, `tenant="a"} 7`) > strings.Index(text, `tenant="b"} 5`) {
		t.Error("label cells are not sorted")
	}
	// Deterministic output: two renders agree (modulo uptime).
	var b2 strings.Builder
	m.Render(&b2)
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.HasPrefix(line, "f0d_uptime_seconds ") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	if strip(b.String()) != strip(b2.String()) {
		t.Error("Render output is not deterministic")
	}
}

func TestLabelEscaping(t *testing.T) {
	if got := Label("tenant", `a"b\c`); got != `tenant="a\"b\\c"` {
		t.Errorf("Label escaped to %s", got)
	}
}

func TestServeHTTPContentType(t *testing.T) {
	m := New()
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("Content-Type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "f0d_uptime_seconds") {
		t.Fatal("exposition missing the uptime gauge")
	}
}
