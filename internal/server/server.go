// Package server assembles the f0d daemon from its parts — the sketch
// registry (state), the HTTP endpoints (handlers), bearer-token auth and
// per-tenant rate limiting (middleware), and the Prometheus registry
// (metrics) — behind one declarative route table.
//
// Lifecycle: New restores every persisted sketch from the data directory
// (crash recovery through the versioned wire codec), ListenAndServe runs
// until the context is cancelled, then drains in-flight requests and
// snapshots every dirty sketch so no acknowledged write is older than
// one snapshot on a clean shutdown. The route table (Routes) is data,
// not wiring: the docs cross-check test walks it to fail CI when an
// endpoint ships undocumented in docs/API.md.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"mcf0/internal/server/handlers"
	"mcf0/internal/server/metrics"
	"mcf0/internal/server/middleware"
	"mcf0/internal/server/state"
)

// Config parameterises a daemon instance.
type Config struct {
	// Tenants are the accepted identities; the daemon refuses to start
	// with none (there is deliberately no unauthenticated mode).
	Tenants []middleware.TenantConfig
	// DataDir is the snapshot directory; "" disables persistence
	// (snapshot requests then answer 409, shutdown skips snapshotting).
	DataDir string
	// MaxBatch bounds elements per ingest request (0 = 65536).
	MaxBatch int
	// MaxBodyBytes bounds request bodies (0 = 8 MiB).
	MaxBodyBytes int64
	// Now is the rate limiter's clock (nil = time.Now; tests inject).
	Now func() time.Time
	// Logf receives operational log lines (nil = log.Printf).
	Logf func(format string, args ...any)
}

// Server is one assembled daemon.
type Server struct {
	cfg      Config
	logf     func(string, ...any)
	registry *state.Registry
	metrics  *metrics.Metrics
	api      *handlers.API
	auth     *middleware.Auth
	handler  http.Handler
	restored int
}

// Route is one entry of the declarative route table.
type Route struct {
	// Method and Pattern form the net/http ServeMux pattern
	// ("POST /v1/sketches/{name}/add").
	Method  string
	Pattern string
	// Doc is a one-line summary (surfaced by the docs cross-check).
	Doc string
	// Auth marks routes behind the bearer-token middleware.
	Auth bool

	handler http.HandlerFunc
}

// New assembles a server and restores persisted sketches from
// cfg.DataDir (refusing to start over corrupt snapshots).
func New(cfg Config) (*Server, error) {
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("server: refusing to start without tenants (no unauthenticated mode)")
	}
	for _, t := range cfg.Tenants {
		if !state.ValidName(t.Name) {
			return nil, fmt.Errorf("server: invalid tenant name %q", t.Name)
		}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	met := metrics.New()
	auth, err := middleware.NewAuth(cfg.Tenants, met, cfg.Now)
	if err != nil {
		return nil, err
	}
	reg := state.NewRegistry(cfg.DataDir)
	restored, err := reg.Load()
	if err != nil {
		return nil, fmt.Errorf("server: restore-on-boot: %w", err)
	}
	met.RegisterGauge("f0d_sketches", func() map[string]float64 {
		out := make(map[string]float64)
		for tenant, n := range reg.CountByTenant() {
			out[metrics.Label("tenant", tenant)] = float64(n)
		}
		return out
	})
	met.RegisterGauge("f0d_sketch_words", func() map[string]float64 {
		out := make(map[string]float64)
		for tenant, words := range reg.WordsByTenant() {
			out[metrics.Label("tenant", tenant)] = float64(words)
		}
		return out
	})
	s := &Server{
		cfg:      cfg,
		logf:     logf,
		registry: reg,
		metrics:  met,
		api:      &handlers.API{Registry: reg, Metrics: met, MaxBatch: cfg.MaxBatch, MaxBodyBytes: cfg.MaxBodyBytes},
		auth:     auth,
		restored: restored,
	}
	mux := http.NewServeMux()
	for _, rt := range s.Routes() {
		h := http.Handler(rt.handler)
		if rt.Auth {
			h = s.auth.Wrap(h)
		}
		h = middleware.Observe(rt.Method+" "+rt.Pattern, met, h)
		mux.Handle(rt.Method+" "+rt.Pattern, h)
	}
	s.handler = mux
	return s, nil
}

// Routes returns the daemon's full route table. Every entry here must be
// documented in docs/API.md — the cross-check test fails CI otherwise.
func (s *Server) Routes() []Route {
	return []Route{
		{Method: "GET", Pattern: "/healthz", Doc: "liveness probe", handler: s.api.Healthz},
		{Method: "GET", Pattern: "/metrics", Doc: "Prometheus metrics exposition", handler: s.metrics.ServeHTTP},
		{Method: "POST", Pattern: "/v1/sketches", Doc: "create a named sketch", Auth: true, handler: s.api.Create},
		{Method: "GET", Pattern: "/v1/sketches", Doc: "list the tenant's sketches", Auth: true, handler: s.api.List},
		{Method: "GET", Pattern: "/v1/sketches/{name}", Doc: "inspect one sketch", Auth: true, handler: s.api.Get},
		{Method: "DELETE", Pattern: "/v1/sketches/{name}", Doc: "delete a sketch and its snapshots", Auth: true, handler: s.api.Delete},
		{Method: "POST", Pattern: "/v1/sketches/{name}/add", Doc: "batched element ingest", Auth: true, handler: s.api.Add},
		{Method: "GET", Pattern: "/v1/sketches/{name}/estimate", Doc: "query the distinct-count estimate", Auth: true, handler: s.api.Estimate},
		{Method: "POST", Pattern: "/v1/sketches/{name}/snapshot", Doc: "persist a crash-recovery snapshot", Auth: true, handler: s.api.Snapshot},
		{Method: "POST", Pattern: "/v1/count", Doc: "one-shot approximate model count", Auth: true, handler: s.api.Count},
	}
}

// Handler returns the fully wired HTTP handler (auth, rate limiting,
// metrics, and panic recovery included) — what tests mount on httptest
// servers and ListenAndServe serves.
func (s *Server) Handler() http.Handler { return s.handler }

// Registry exposes the sketch registry (the f0d CLI logs against it).
func (s *Server) Registry() *state.Registry { return s.registry }

// Restored returns how many sketches restore-on-boot loaded.
func (s *Server) Restored() int { return s.restored }

// Shutdown snapshots every dirty sketch to the data directory; it is the
// graceful-shutdown tail and safe to call on a server that never
// listened. Without a data directory it is a no-op.
func (s *Server) Shutdown() error {
	n, err := s.registry.SnapshotDirty()
	if n > 0 || err != nil {
		s.logf("f0d: shutdown snapshot: %d sketch(es) persisted, err=%v", n, err)
	}
	return err
}

// ListenAndServe serves on addr until ctx is cancelled, then drains
// in-flight requests (grace period) and runs Shutdown. The returned
// error is nil on a clean shutdown.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is ListenAndServe over an existing listener (tests and the CLI
// use it to learn the bound port before serving).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	s.logf("f0d: serving on %s (%d sketch(es) restored)", ln.Addr(), s.restored)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		s.Shutdown()
		return err
	}
	return s.Shutdown()
}
