// Package server assembles the f0d daemon from its parts — the sketch
// registry (state), the HTTP endpoints (handlers), bearer-token auth and
// per-tenant rate limiting (middleware), and the Prometheus registry
// (metrics) — behind one declarative route table.
//
// Lifecycle: New restores every persisted sketch from the data directory
// (crash recovery through the versioned wire codec), ListenAndServe runs
// until the context is cancelled, then drains in-flight requests and
// snapshots every dirty sketch so no acknowledged write is older than
// one snapshot on a clean shutdown. The route table (Routes) is data,
// not wiring: the docs cross-check test walks it to fail CI when an
// endpoint ships undocumented in docs/API.md.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"mcf0/internal/server/handlers"
	"mcf0/internal/server/metrics"
	"mcf0/internal/server/middleware"
	"mcf0/internal/server/state"
)

// Config parameterises a daemon instance.
type Config struct {
	// Tenants are the accepted identities; the daemon refuses to start
	// with none (there is deliberately no unauthenticated mode).
	Tenants []middleware.TenantConfig
	// DataDir is the snapshot directory; "" disables persistence
	// (snapshot requests then answer 409, shutdown skips snapshotting).
	DataDir string
	// MaxBatch bounds elements per ingest request (0 = 65536).
	MaxBatch int
	// MaxBodyBytes bounds request bodies (0 = 8 MiB).
	MaxBodyBytes int64
	// Now is the rate limiter's and breaker's clock (nil = time.Now;
	// tests inject).
	Now func() time.Time
	// Logf receives operational log lines (nil = log.Printf).
	Logf func(format string, args ...any)

	// ReadHeaderTimeout, ReadTimeout, WriteTimeout, and IdleTimeout
	// harden the http.Server against slow-loris clients and dead
	// connections (0 = the defaults 5s/60s/60s/120s; < 0 = disabled).
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration
	// MaxHeaderBytes bounds request headers (0 = 1 MiB).
	MaxHeaderBytes int
	// RequestTimeout is the per-request context deadline propagated to
	// every authenticated handler (0 = disabled).
	RequestTimeout time.Duration
	// MaxInFlight bounds concurrently executing authenticated requests;
	// excess load is shed with 503 + Retry-After (0 = unlimited).
	// /healthz and /metrics are exempt, so a saturated daemon stays
	// observable.
	MaxInFlight int
	// DrainTimeout bounds the graceful drain of in-flight requests on
	// shutdown (0 = 10s).
	DrainTimeout time.Duration

	// BreakerFailures is how many consecutive snapshot disk failures
	// open the circuit breaker (0 = 3); BreakerCooldown is the open →
	// half-open probe delay (0 = 10s).
	BreakerFailures int
	BreakerCooldown time.Duration
	// DiskHook, when non-nil, intercepts every snapshot disk operation —
	// the fault-injection seam (see internal/faultinject).
	DiskHook state.DiskHook
}

// Default timeout values applied when the corresponding Config field is
// zero.
const (
	DefaultReadHeaderTimeout = 5 * time.Second
	DefaultReadTimeout       = 60 * time.Second
	DefaultWriteTimeout      = 60 * time.Second
	DefaultIdleTimeout       = 120 * time.Second
	DefaultMaxHeaderBytes    = 1 << 20
	DefaultDrainTimeout      = 10 * time.Second
)

func defDur(v, def time.Duration) time.Duration {
	switch {
	case v < 0:
		return 0
	case v == 0:
		return def
	}
	return v
}

// Server is one assembled daemon.
type Server struct {
	cfg      Config
	logf     func(string, ...any)
	registry *state.Registry
	metrics  *metrics.Metrics
	api      *handlers.API
	auth     *middleware.Auth
	shed     *middleware.Shed
	handler  http.Handler
	restored int
}

// Route is one entry of the declarative route table.
type Route struct {
	// Method and Pattern form the net/http ServeMux pattern
	// ("POST /v1/sketches/{name}/add").
	Method  string
	Pattern string
	// Doc is a one-line summary (surfaced by the docs cross-check).
	Doc string
	// Auth marks routes behind the bearer-token middleware.
	Auth bool

	handler http.HandlerFunc
}

// New assembles a server and restores persisted sketches from
// cfg.DataDir (refusing to start over corrupt snapshots).
func New(cfg Config) (*Server, error) {
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("server: refusing to start without tenants (no unauthenticated mode)")
	}
	for _, t := range cfg.Tenants {
		if !state.ValidName(t.Name) {
			return nil, fmt.Errorf("server: invalid tenant name %q", t.Name)
		}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	met := metrics.New()
	auth, err := middleware.NewAuth(cfg.Tenants, met, cfg.Now)
	if err != nil {
		return nil, err
	}
	reg := state.NewRegistry(cfg.DataDir)
	if cfg.DiskHook != nil {
		reg.SetDiskHook(cfg.DiskHook)
	}
	breaker := state.NewBreaker(cfg.BreakerFailures, cfg.BreakerCooldown, cfg.Now)
	reg.SetBreaker(breaker)
	restored, err := reg.Load()
	if err != nil {
		return nil, fmt.Errorf("server: restore-on-boot: %w", err)
	}
	met.RegisterGauge("f0d_sketches", func() map[string]float64 {
		out := make(map[string]float64)
		for tenant, n := range reg.CountByTenant() {
			out[metrics.Label("tenant", tenant)] = float64(n)
		}
		return out
	})
	met.RegisterGauge("f0d_sketch_words", func() map[string]float64 {
		out := make(map[string]float64)
		for tenant, words := range reg.WordsByTenant() {
			out[metrics.Label("tenant", tenant)] = float64(words)
		}
		return out
	})
	met.RegisterGauge("f0d_snapshot_breaker_state", func() map[string]float64 {
		return map[string]float64{"": float64(breaker.State())}
	})
	met.RegisterGauge("f0d_snapshot_breaker_opens", func() map[string]float64 {
		return map[string]float64{"": float64(breaker.Opens())}
	})
	shed := middleware.NewShed(cfg.MaxInFlight, met)
	met.RegisterGauge("f0d_inflight_requests", func() map[string]float64 {
		return map[string]float64{"": float64(shed.InFlight())}
	})
	s := &Server{
		cfg:      cfg,
		logf:     logf,
		registry: reg,
		metrics:  met,
		api:      &handlers.API{Registry: reg, Metrics: met, MaxBatch: cfg.MaxBatch, MaxBodyBytes: cfg.MaxBodyBytes},
		auth:     auth,
		shed:     shed,
		restored: restored,
	}
	mux := http.NewServeMux()
	for _, rt := range s.Routes() {
		h := http.Handler(rt.handler)
		if rt.Auth {
			// Inside-out: auth → deadline → shed, so the shed gate and
			// request deadline also cover token verification, while
			// /healthz and /metrics stay outside both — a saturated or
			// degraded daemon must remain observable.
			h = s.auth.Wrap(h)
			h = middleware.Deadline(cfg.RequestTimeout, h)
			h = shed.Wrap(h)
		}
		h = middleware.Observe(rt.Method+" "+rt.Pattern, met, h)
		mux.Handle(rt.Method+" "+rt.Pattern, h)
	}
	s.handler = mux
	return s, nil
}

// Routes returns the daemon's full route table. Every entry here must be
// documented in docs/API.md — the cross-check test fails CI otherwise.
func (s *Server) Routes() []Route {
	return []Route{
		{Method: "GET", Pattern: "/healthz", Doc: "liveness probe", handler: s.api.Healthz},
		{Method: "GET", Pattern: "/metrics", Doc: "Prometheus metrics exposition", handler: s.metrics.ServeHTTP},
		{Method: "POST", Pattern: "/v1/sketches", Doc: "create a named sketch", Auth: true, handler: s.api.Create},
		{Method: "GET", Pattern: "/v1/sketches", Doc: "list the tenant's sketches", Auth: true, handler: s.api.List},
		{Method: "GET", Pattern: "/v1/sketches/{name}", Doc: "inspect one sketch", Auth: true, handler: s.api.Get},
		{Method: "DELETE", Pattern: "/v1/sketches/{name}", Doc: "delete a sketch and its snapshots", Auth: true, handler: s.api.Delete},
		{Method: "POST", Pattern: "/v1/sketches/{name}/add", Doc: "batched element ingest", Auth: true, handler: s.api.Add},
		{Method: "GET", Pattern: "/v1/sketches/{name}/estimate", Doc: "query the distinct-count estimate", Auth: true, handler: s.api.Estimate},
		{Method: "POST", Pattern: "/v1/sketches/{name}/snapshot", Doc: "persist a crash-recovery snapshot", Auth: true, handler: s.api.Snapshot},
		{Method: "POST", Pattern: "/v1/count", Doc: "one-shot approximate model count", Auth: true, handler: s.api.Count},
	}
}

// Handler returns the fully wired HTTP handler (auth, rate limiting,
// metrics, and panic recovery included) — what tests mount on httptest
// servers and ListenAndServe serves.
func (s *Server) Handler() http.Handler { return s.handler }

// Registry exposes the sketch registry (the f0d CLI logs against it).
func (s *Server) Registry() *state.Registry { return s.registry }

// Restored returns how many sketches restore-on-boot loaded.
func (s *Server) Restored() int { return s.restored }

// Shutdown snapshots every dirty sketch to the data directory; it is the
// graceful-shutdown tail and safe to call on a server that never
// listened. Without a data directory it is a no-op.
func (s *Server) Shutdown() error {
	n, err := s.registry.SnapshotDirty()
	if n > 0 || err != nil {
		s.logf("f0d: shutdown snapshot: %d sketch(es) persisted, err=%v", n, err)
	}
	return err
}

// ListenAndServe serves on addr until ctx is cancelled, then drains
// in-flight requests (grace period) and runs Shutdown. The returned
// error is nil on a clean shutdown.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is ListenAndServe over an existing listener (tests and the CLI
// use it to learn the bound port before serving).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: defDur(s.cfg.ReadHeaderTimeout, DefaultReadHeaderTimeout),
		ReadTimeout:       defDur(s.cfg.ReadTimeout, DefaultReadTimeout),
		WriteTimeout:      defDur(s.cfg.WriteTimeout, DefaultWriteTimeout),
		IdleTimeout:       defDur(s.cfg.IdleTimeout, DefaultIdleTimeout),
		MaxHeaderBytes:    s.cfg.MaxHeaderBytes,
	}
	if srv.MaxHeaderBytes == 0 {
		srv.MaxHeaderBytes = DefaultMaxHeaderBytes
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	s.logf("f0d: serving on %s (%d sketch(es) restored)", ln.Addr(), s.restored)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), defDur(s.cfg.DrainTimeout, DefaultDrainTimeout))
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		s.Shutdown()
		return err
	}
	return s.Shutdown()
}
