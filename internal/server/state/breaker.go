package state

import (
	"sync"
	"time"
)

// BreakerState is the snapshot circuit breaker's current mode.
type BreakerState int32

const (
	// BreakerClosed: disk writes flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: snapshot writes are refused without touching the
	// disk; the daemon serves in degraded (serve-only) mode.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed and exactly one probe write
	// is allowed through; its outcome closes or re-opens the breaker.
	BreakerHalfOpen
)

// String names the state as /healthz and /metrics report it.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is the snapshot disk circuit breaker: after Threshold
// consecutive write failures it opens, and the daemon degrades to
// serve-only mode — ingest and estimates keep flowing, dirty state is
// preserved in memory, and snapshot requests fail fast with a
// Retry-After instead of hammering a dead disk. After Cooldown one
// half-open probe is let through; success closes the breaker, failure
// re-opens it for another cooldown.
//
// The clock is injectable so the open→half-open→closed transitions are
// unit-testable without sleeping.
type Breaker struct {
	mu        sync.Mutex
	now       func() time.Time
	threshold int
	cooldown  time.Duration

	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
	opens    uint64    // times opened since construction
}

// NewBreaker builds a breaker opening after threshold consecutive
// failures (≤ 0 = 3) with the given half-open cooldown (≤ 0 = 10s);
// now is the clock (nil = time.Now).
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{now: now, threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a snapshot write may proceed. While open it
// returns false until the cooldown elapses, then admits exactly one
// half-open probe at a time; the caller must report the probe's outcome
// through Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful disk write: it resets the failure streak
// and closes a half-open breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	b.state = BreakerClosed
}

// Failure records a failed disk write: it re-opens a half-open breaker
// immediately and opens a closed one once the consecutive-failure streak
// reaches the threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if b.state != BreakerClosed {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.opens++
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.opens++
	}
}

// State returns the current mode (checking for an elapsed cooldown, so
// an open breaker reads half-open once a probe would be admitted).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// RetryAfter returns how long until a snapshot attempt could be admitted
// (zero when the breaker is closed or a probe is already due).
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0
	}
	if rem := b.cooldown - b.now().Sub(b.openedAt); rem > 0 {
		return rem
	}
	return 0
}

// Opens returns how many times the breaker has opened since construction
// (the f0d_snapshot_breaker_opens gauge's source).
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
