package state

import (
	"os"
	"path/filepath"
	"testing"
)

func TestValidName(t *testing.T) {
	for _, ok := range []string{"a", "A9", "flow-1", "x_y.z", "a123456789012345678901234567890123456789012345678901234567890123"} {
		if !ValidName(ok) {
			t.Errorf("ValidName(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", ".", "..", ".hidden", "-x", "_x", "a/b", "a b", "a\x00b", "é",
		"a1234567890123456789012345678901234567890123456789012345678901234"} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true, want false", bad)
		}
	}
}

func TestRegistryQuotaAndLifecycle(t *testing.T) {
	r := NewRegistry("")
	cfg := SketchConfig{Bits: 8}

	if _, err := r.Create("t", "bad name", cfg, 0); err == nil {
		t.Fatal("Create accepted an invalid name")
	}
	if _, err := r.Create("t", "s1", cfg, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("t", "s1", cfg, 2); err != ErrExists {
		t.Fatalf("duplicate create: %v, want ErrExists", err)
	}
	if _, err := r.Create("t", "s2", cfg, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("t", "s3", cfg, 2); err != ErrQuota {
		t.Fatalf("over-quota create: %v, want ErrQuota", err)
	}
	// Another tenant has its own quota and namespace.
	if _, err := r.Create("u", "s1", cfg, 2); err != nil {
		t.Fatalf("cross-tenant create: %v", err)
	}
	if n := r.CountByTenant()["t"]; n != 2 {
		t.Fatalf("CountByTenant[t] = %d, want 2", n)
	}
	// Delete frees quota; deleting twice errors.
	if err := r.Delete("t", "s2"); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("t", "s2"); err != ErrNotFound {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
	if _, err := r.Create("t", "s3", cfg, 2); err != nil {
		t.Fatalf("create after delete: %v", err)
	}
	if _, err := r.Get("t", "nope"); err != ErrNotFound {
		t.Fatalf("Get missing: %v, want ErrNotFound", err)
	}

	names := func(sks []*Sketch) []string {
		out := make([]string, len(sks))
		for i, sk := range sks {
			out[i] = sk.Tenant + "/" + sk.Name
		}
		return out
	}
	got := names(r.All())
	want := []string{"t/s1", "t/s3", "u/s1"}
	if len(got) != len(want) {
		t.Fatalf("All() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("All() = %v, want %v (sorted)", got, want)
		}
	}
}

func TestSnapshotWithoutDataDir(t *testing.T) {
	r := NewRegistry("")
	sk, err := r.Create("t", "s", SketchConfig{Bits: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Snapshot(sk); err != ErrNoDataDir {
		t.Fatalf("Snapshot without data dir: %v, want ErrNoDataDir", err)
	}
	if n, err := r.SnapshotDirty(); n != 0 || err != nil {
		t.Fatalf("SnapshotDirty without data dir: (%d, %v), want (0, nil)", n, err)
	}
	if n, err := r.Load(); n != 0 || err != nil {
		t.Fatalf("Load without data dir: (%d, %v), want (0, nil)", n, err)
	}
}

func TestDirtyTracking(t *testing.T) {
	r := NewRegistry(t.TempDir())
	sk, err := r.Create("t", "s", SketchConfig{Bits: 16, Seed: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sk.Dirty() {
		t.Fatal("a never-snapshotted sketch must be dirty")
	}
	sk.AddBatch([]uint64{1, 2, 3})
	if _, err := r.Snapshot(sk); err != nil {
		t.Fatal(err)
	}
	if sk.Dirty() {
		t.Fatal("freshly snapshotted sketch must be clean")
	}
	sk.AddBatch([]uint64{4})
	if !sk.Dirty() {
		t.Fatal("a write must re-dirty the sketch")
	}
	if n, err := r.SnapshotDirty(); n != 1 || err != nil {
		t.Fatalf("SnapshotDirty = (%d, %v), want (1, nil)", n, err)
	}
	if sk.Dirty() {
		t.Fatal("SnapshotDirty must leave the sketch clean")
	}
}

func TestLoadRefusesCorruptSnapshots(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry(dir)
	sk, err := r.Create("t", "s", SketchConfig{Bits: 16, Seed: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sk.AddBatch([]uint64{1, 2, 3})
	if _, err := r.Snapshot(sk); err != nil {
		t.Fatal(err)
	}

	// A clean reload works and restores the counters.
	r2 := NewRegistry(dir)
	if n, err := r2.Load(); n != 1 || err != nil {
		t.Fatalf("Load = (%d, %v), want (1, nil)", n, err)
	}
	got, err := r2.Get("t", "s")
	if err != nil || got.Items() != 3 {
		t.Fatalf("restored sketch: items=%d err=%v", got.Items(), err)
	}

	// Truncated blob → Load refuses to boot.
	blobPath := filepath.Join(dir, "t", "s.snap")
	blob, err := os.ReadFile(blobPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(blobPath, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRegistry(dir).Load(); err == nil {
		t.Fatal("Load accepted a truncated snapshot blob")
	}
	if err := os.WriteFile(blobPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	// Corrupt metadata → Load refuses to boot.
	metaPath := filepath.Join(dir, "t", "s.json")
	if err := os.WriteFile(metaPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRegistry(dir).Load(); err == nil {
		t.Fatal("Load accepted corrupt snapshot metadata")
	}
}

func TestEstimateCache(t *testing.T) {
	r := NewRegistry("")
	sk, err := r.Create("t", "s", SketchConfig{Bits: 16, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sk.AddBatch([]uint64{10, 20, 30})
	est1, v1, cached := sk.Estimate()
	if cached {
		t.Fatal("first estimate claims cached")
	}
	est2, v2, cached := sk.Estimate()
	if !cached || est2 != est1 || v2 != v1 {
		t.Fatalf("repeat estimate: (%v, %d, %v), want cached (%v, %d)", est2, v2, cached, est1, v1)
	}
	sk.AddBatch([]uint64{40})
	_, v3, cached := sk.Estimate()
	if cached || v3 == v1 {
		t.Fatalf("estimate after a write must recompute (cached=%v, version %d→%d)", cached, v1, v3)
	}
}
