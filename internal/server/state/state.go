// Package state is the f0d daemon's sketch registry: named, tenant-owned
// ConcurrentF0 sketches with per-tenant quota accounting, an
// estimate cache keyed on the front's write-version counter, and
// snapshot persistence through the mcf0 wire codec (atomic
// write-to-temp-then-rename of a .snap blob plus a .json metadata
// sidecar) with restore-on-boot crash recovery.
//
// Concurrency contract: the Registry mutex guards only the name → sketch
// map and the per-tenant counts. Ingestion and estimation never hold it —
// they ride ConcurrentF0's own lock-free front — so a slow merge on one
// sketch never stalls ingest on another, and handlers may call AddBatch,
// Estimate, and Snapshot on the same sketch from any number of
// goroutines.
package state

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mcf0"
)

// Registry errors, mapped to HTTP statuses by the handlers.
var (
	ErrExists    = errors.New("state: sketch already exists")
	ErrNotFound  = errors.New("state: sketch not found")
	ErrQuota     = errors.New("state: tenant sketch quota exhausted")
	ErrNoDataDir = errors.New("state: snapshot persistence disabled (no data directory)")
	// ErrBreakerOpen means the snapshot circuit breaker refused the
	// write: the disk failed repeatedly and the daemon is in serve-only
	// degraded mode. Handlers map it to 503 with a Retry-After.
	ErrBreakerOpen = errors.New("state: snapshot circuit breaker open (disk degraded)")
)

// DiskHook is the snapshot path's fault-injection seam: when non-nil it
// is consulted before each physical write phase ("mkdir", "create",
// "write", "rename") with the destination path; returning an error
// simulates a disk failure at that point. A failure in the "write" phase
// deliberately leaves the partial temp file behind, the wreckage a real
// crash would leave — Load cleans such strays on boot.
type DiskHook func(path, phase string) error

// nameRE bounds sketch and tenant names to one safe path element.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

// ValidName reports whether s is acceptable as a sketch or tenant name:
// 1–64 characters from [A-Za-z0-9_.-], starting alphanumeric (so path
// traversal and dotfiles are unrepresentable).
func ValidName(s string) bool { return nameRE.MatchString(s) }

// SketchConfig is the creation-time configuration of a named sketch; it
// is echoed by the inspect endpoints and persisted in the snapshot
// metadata sidecar so a restore rebuilds the same front.
type SketchConfig struct {
	// Bits is the universe width (1–64).
	Bits int `json:"bits"`
	// Algorithm is the sketch family: bucketing, minimum, or estimation.
	Algorithm string `json:"algorithm"`
	// Epsilon, Delta, Thresh, Iterations, Seed parameterise mcf0.Config;
	// zero values select the paper constants (see Config.ResolvedThresh).
	Epsilon    float64 `json:"epsilon,omitempty"`
	Delta      float64 `json:"delta,omitempty"`
	Thresh     int     `json:"thresh,omitempty"`
	Iterations int     `json:"iterations,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	// Replicas sizes the lock-free concurrent front (≤ 0 = GOMAXPROCS).
	Replicas int `json:"replicas,omitempty"`
}

func (c SketchConfig) mcf0Config() mcf0.Config {
	return mcf0.Config{
		Epsilon:    c.Epsilon,
		Delta:      c.Delta,
		Thresh:     c.Thresh,
		Iterations: c.Iterations,
		Seed:       c.Seed,
	}
}

// Resolved returns the thresh and iterations actually in effect.
func (c SketchConfig) Resolved() (thresh, iterations int) {
	cfg := c.mcf0Config()
	return cfg.ResolvedThresh(), cfg.ResolvedIterations()
}

// Sketch is one live named sketch: a ConcurrentF0 front plus the
// bookkeeping the service layers on top (items accepted, estimate cache,
// snapshot dirtiness).
type Sketch struct {
	Tenant string
	Name   string
	Config SketchConfig

	front *mcf0.ConcurrentF0
	items atomic.Uint64

	estMu   sync.Mutex
	cached  float64
	cachedV uint64
	hasEst  bool

	snapMu      sync.Mutex
	snapped     bool   // a snapshot (or the boot restore) exists on disk
	snapVersion uint64 // front.Version() the last snapshot covered
}

// AddBatch ingests a validated chunk through the lock-free front; safe
// from any goroutine. Elements must already be range-checked against
// Config.Bits (the handler's job — the front panics on violations).
func (s *Sketch) AddBatch(xs []uint64) {
	s.front.AddBatch(xs)
	s.items.Add(uint64(len(xs)))
}

// Estimate returns the current estimate, the write-version it covers,
// and whether it was served from the cache. The cache is keyed on
// ConcurrentF0.Version — the same counter the front's internal cache
// uses — so repeated queries between writes cost no replica locking.
// The cached value may cover writes that completed while the merge ran
// (it is never staler than the returned version).
func (s *Sketch) Estimate() (est float64, version uint64, cached bool) {
	v := s.front.Version()
	s.estMu.Lock()
	defer s.estMu.Unlock()
	if s.hasEst && s.cachedV == v {
		return s.cached, v, true
	}
	est = s.front.Estimate()
	s.cached, s.cachedV, s.hasEst = est, v, true
	return est, v, false
}

// Items returns the number of elements accepted so far.
func (s *Sketch) Items() uint64 { return s.items.Load() }

// Version returns the front's completed-write counter.
func (s *Sketch) Version() uint64 { return s.front.Version() }

// SketchWords returns the summed replica footprint in 64-bit words.
func (s *Sketch) SketchWords() int { return s.front.SketchWords() }

// Replicas returns the front's replica count.
func (s *Sketch) Replicas() int { return s.front.Replicas() }

// Dirty reports whether the sketch has state no on-disk snapshot covers:
// it has never been snapshotted, or writes completed since the last one.
func (s *Sketch) Dirty() bool {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return !s.snapped || s.front.Version() != s.snapVersion
}

// SnapshotInfo describes one persisted snapshot.
type SnapshotInfo struct {
	// File is the blob's path relative to the registry's data directory.
	File string
	// Bytes is the encoded blob size.
	Bytes int
	// Items and Version are the sketch's counters when the snapshot was
	// cut (Version is conservative: writes racing the encode re-dirty
	// the sketch and land in the next snapshot).
	Items   uint64
	Version uint64
}

// snapshotMeta is the .json sidecar persisted next to each blob.
type snapshotMeta struct {
	Tenant string       `json:"tenant"`
	Name   string       `json:"name"`
	Items  uint64       `json:"items"`
	Config SketchConfig `json:"config"`
}

// Registry maps (tenant, name) to live sketches.
type Registry struct {
	dataDir string
	hook    DiskHook
	breaker *Breaker

	mu       sync.Mutex
	sketches map[string]*Sketch
	byTenant map[string]int
}

// NewRegistry returns an empty registry persisting snapshots under
// dataDir ("" disables persistence; Snapshot then fails with
// ErrNoDataDir and Load is a no-op). The snapshot circuit breaker
// defaults to 3 consecutive failures / 10s cooldown; override with
// SetBreaker before serving.
func NewRegistry(dataDir string) *Registry {
	return &Registry{
		dataDir:  dataDir,
		breaker:  NewBreaker(0, 0, nil),
		sketches: make(map[string]*Sketch),
		byTenant: make(map[string]int),
	}
}

// SetDiskHook installs the snapshot write fault-injection seam (chaos
// tests); call before serving.
func (r *Registry) SetDiskHook(h DiskHook) { r.hook = h }

// SetBreaker replaces the snapshot circuit breaker (the server wires
// configured thresholds and its clock here); call before serving.
func (r *Registry) SetBreaker(b *Breaker) {
	if b != nil {
		r.breaker = b
	}
}

// Breaker exposes the snapshot circuit breaker (healthz and metrics
// report its state).
func (r *Registry) Breaker() *Breaker { return r.breaker }

func key(tenant, name string) string { return tenant + "/" + name }

// Create registers a new sketch. maxSketches > 0 bounds the tenant's
// live-sketch count (ErrQuota beyond it); invalid configurations are
// rejected by mcf0.NewConcurrentF0's own validation.
func (r *Registry) Create(tenant, name string, cfg SketchConfig, maxSketches int) (*Sketch, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("state: invalid sketch name %q (want %s)", name, nameRE)
	}
	front, err := mcf0.NewConcurrentF0(cfg.Bits, mcf0.Algorithm(cfg.Algorithm), cfg.mcf0Config(), cfg.Replicas)
	if err != nil {
		return nil, err
	}
	sk := &Sketch{Tenant: tenant, Name: name, Config: cfg, front: front}

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sketches[key(tenant, name)]; ok {
		return nil, ErrExists
	}
	if maxSketches > 0 && r.byTenant[tenant] >= maxSketches {
		return nil, ErrQuota
	}
	r.sketches[key(tenant, name)] = sk
	r.byTenant[tenant]++
	return sk, nil
}

// Get returns the named sketch, or ErrNotFound.
func (r *Registry) Get(tenant, name string) (*Sketch, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sk, ok := r.sketches[key(tenant, name)]
	if !ok {
		return nil, ErrNotFound
	}
	return sk, nil
}

// List returns the tenant's sketches sorted by name.
func (r *Registry) List(tenant string) []*Sketch {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*Sketch
	for _, sk := range r.sketches {
		if sk.Tenant == tenant {
			out = append(out, sk)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Delete removes the named sketch and its persisted snapshot files.
func (r *Registry) Delete(tenant, name string) error {
	r.mu.Lock()
	sk, ok := r.sketches[key(tenant, name)]
	if ok {
		delete(r.sketches, key(tenant, name))
		r.byTenant[tenant]--
	}
	r.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	if r.dataDir != "" {
		os.Remove(filepath.Join(r.dataDir, sk.Tenant, sk.Name+".snap"))
		os.Remove(filepath.Join(r.dataDir, sk.Tenant, sk.Name+".json"))
	}
	return nil
}

// CountByTenant returns live-sketch counts per tenant (the f0d_sketches
// gauge's source).
func (r *Registry) CountByTenant() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.byTenant))
	for t, n := range r.byTenant {
		if n > 0 {
			out[t] = n
		}
	}
	return out
}

// WordsByTenant returns the summed sketch footprint per tenant in 64-bit
// words (the f0d_sketch_words gauge's source).
func (r *Registry) WordsByTenant() map[string]int {
	r.mu.Lock()
	sketches := make([]*Sketch, 0, len(r.sketches))
	for _, sk := range r.sketches {
		sketches = append(sketches, sk)
	}
	r.mu.Unlock()
	out := make(map[string]int)
	for _, sk := range sketches {
		out[sk.Tenant] += sk.SketchWords()
	}
	return out
}

// All returns every live sketch (any tenant), sorted by tenant then name.
func (r *Registry) All() []*Sketch {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Sketch, 0, len(r.sketches))
	for _, sk := range r.sketches {
		out = append(out, sk)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Snapshot encodes the sketch's complete merged state (wire codec) and
// persists blob + metadata sidecar atomically under the data directory.
// Ingestion may continue concurrently: the snapshot covers at least the
// writes completed when it was cut, and anything racing it re-dirties
// the sketch. While the circuit breaker is open the write is refused
// with ErrBreakerOpen — serve-only degraded mode.
func (r *Registry) Snapshot(sk *Sketch) (SnapshotInfo, error) {
	return r.snapshot(sk, false)
}

// snapshot is Snapshot with a force escape hatch: the shutdown path
// bypasses the breaker's admission check (a last-chance write to a disk
// that may have healed beats guaranteed data loss), though failures
// still count against the breaker.
func (r *Registry) snapshot(sk *Sketch, force bool) (SnapshotInfo, error) {
	if r.dataDir == "" {
		return SnapshotInfo{}, ErrNoDataDir
	}
	if !force && !r.breaker.Allow() {
		return SnapshotInfo{}, ErrBreakerOpen
	}
	sk.snapMu.Lock()
	defer sk.snapMu.Unlock()
	version := sk.front.Version()
	items := sk.items.Load()
	blob, err := sk.front.MarshalBinary()
	if err != nil {
		// Encoding failures are not disk failures; they do not move the
		// breaker (and a forced path must not mask them either).
		return SnapshotInfo{}, err
	}
	meta, err := json.Marshal(snapshotMeta{Tenant: sk.Tenant, Name: sk.Name, Items: items, Config: sk.Config})
	if err != nil {
		return SnapshotInfo{}, err
	}
	if err := r.persist(sk, blob, meta); err != nil {
		r.breaker.Failure()
		return SnapshotInfo{}, err
	}
	r.breaker.Success()
	sk.snapped, sk.snapVersion = true, version
	return SnapshotInfo{
		File:    filepath.Join(sk.Tenant, sk.Name+".snap"),
		Bytes:   len(blob),
		Items:   items,
		Version: version,
	}, nil
}

// persist performs the disk phase of a snapshot: mkdir, then the two
// atomic (temp + fsync + rename + dir-fsync) writes.
func (r *Registry) persist(sk *Sketch, blob, meta []byte) error {
	dir := filepath.Join(r.dataDir, sk.Tenant)
	if r.hook != nil {
		if err := r.hook(dir, "mkdir"); err != nil {
			return err
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := r.writeAtomic(filepath.Join(dir, sk.Name+".snap"), blob); err != nil {
		return err
	}
	return r.writeAtomic(filepath.Join(dir, sk.Name+".json"), meta)
}

// SnapshotDirty persists every dirty sketch (the graceful-shutdown path)
// and returns how many it wrote. It keeps going past per-sketch failures
// and returns the first error. This path bypasses the circuit breaker's
// admission check: shutdown is the last chance to persist, and a healed
// disk should be used even if the breaker has not probed it yet.
func (r *Registry) SnapshotDirty() (int, error) {
	if r.dataDir == "" {
		return 0, nil
	}
	var firstErr error
	written := 0
	for _, sk := range r.All() {
		if !sk.Dirty() {
			continue
		}
		if _, err := r.snapshot(sk, true); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("state: snapshot %s/%s: %w", sk.Tenant, sk.Name, err)
			}
			continue
		}
		written++
	}
	return written, firstErr
}

// Load restores every persisted sketch from the data directory (the
// restore-on-boot path), returning how many it loaded. A corrupt or
// mismatched snapshot aborts the boot with an error naming the file —
// refusing to serve is safer than silently dropping a tenant's data.
func (r *Registry) Load() (int, error) {
	if r.dataDir == "" {
		return 0, nil
	}
	// Stale temp files are the wreckage of writes torn by a crash or an
	// injected disk failure; the atomic rename never exposed them to
	// readers, so they are safe to discard — the last completed rename
	// remains the snapshot of record.
	if strays, err := filepath.Glob(filepath.Join(r.dataDir, "*", "*.tmp*")); err == nil {
		for _, s := range strays {
			os.Remove(s)
		}
	}
	metas, err := filepath.Glob(filepath.Join(r.dataDir, "*", "*.json"))
	if err != nil {
		return 0, err
	}
	sort.Strings(metas)
	loaded := 0
	for _, metaPath := range metas {
		raw, err := os.ReadFile(metaPath)
		if err != nil {
			return loaded, err
		}
		var meta snapshotMeta
		if err := json.Unmarshal(raw, &meta); err != nil {
			return loaded, fmt.Errorf("state: corrupt snapshot metadata %s: %w", metaPath, err)
		}
		if !ValidName(meta.Tenant) || !ValidName(meta.Name) {
			return loaded, fmt.Errorf("state: snapshot metadata %s names invalid sketch %q/%q", metaPath, meta.Tenant, meta.Name)
		}
		snapPath := strings.TrimSuffix(metaPath, ".json") + ".snap"
		blob, err := os.ReadFile(snapPath)
		if err != nil {
			return loaded, err
		}
		front, err := mcf0.DecodeConcurrentF0(blob, meta.Config.Replicas)
		if err != nil {
			return loaded, fmt.Errorf("state: corrupt snapshot %s: %w", snapPath, err)
		}
		if front.Bits() != meta.Config.Bits {
			return loaded, fmt.Errorf("state: snapshot %s is %d bits wide but its metadata says %d",
				snapPath, front.Bits(), meta.Config.Bits)
		}
		sk := &Sketch{Tenant: meta.Tenant, Name: meta.Name, Config: meta.Config, front: front,
			snapped: true, snapVersion: 0}
		sk.items.Store(meta.Items)

		r.mu.Lock()
		if _, ok := r.sketches[key(meta.Tenant, meta.Name)]; ok {
			r.mu.Unlock()
			return loaded, fmt.Errorf("state: duplicate snapshot for %s/%s", meta.Tenant, meta.Name)
		}
		r.sketches[key(meta.Tenant, meta.Name)] = sk
		r.byTenant[meta.Tenant]++
		r.mu.Unlock()
		loaded++
	}
	return loaded, nil
}

// writeAtomic writes data to path via temp file + fsync + rename +
// directory fsync, so readers (and a crash mid-write) never observe a
// partial file AND a completed rename survives power loss, not just
// process death — without the two syncs, the rename can hit disk before
// the data, leaving a correctly-named file of garbage after a crash.
// The hook phases ("create", "write", "rename") are the fault-injection
// seam; an injected "write" failure leaves the partial temp file behind
// exactly as a crash would.
func (r *Registry) writeAtomic(path string, data []byte) error {
	if r.hook != nil {
		if err := r.hook(path, "create"); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data[:len(data)/2]); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if r.hook != nil {
		// Fail between the two half-writes: the temp file is left
		// partially written, like a torn crash write.
		if err := r.hook(path, "write"); err != nil {
			tmp.Close()
			return err
		}
	}
	if _, err := tmp.Write(data[len(data)/2:]); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if r.hook != nil {
		if err := r.hook(path, "rename"); err != nil {
			os.Remove(tmp.Name())
			return err
		}
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a completed rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
