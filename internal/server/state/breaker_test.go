package state

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is the injectable breaker clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time                 { return c.t }
func (c *fakeClock) advance(d time.Duration)        { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                      { return &fakeClock{t: time.Unix(1000, 0)} }
func newTestBreaker(clk *fakeClock, n int) *Breaker { return NewBreaker(n, 10*time.Second, clk.now) }

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, 3)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused write %d", i)
		}
		b.Failure()
		if b.State() != BreakerClosed {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	b.Allow()
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("breaker closed after 3 consecutive failures")
	}
	if b.Opens() != 1 {
		t.Fatalf("Opens = %d, want 1", b.Opens())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a write inside the cooldown")
	}
	if ra := b.RetryAfter(); ra != 10*time.Second {
		t.Fatalf("RetryAfter = %v, want 10s", ra)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, 3)
	b.Allow()
	b.Failure()
	b.Allow()
	b.Failure()
	b.Allow()
	b.Success() // streak broken
	b.Allow()
	b.Failure()
	b.Allow()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures opened the breaker")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, 1)
	b.Allow()
	b.Failure() // threshold 1 → open
	if b.State() != BreakerOpen {
		t.Fatal("not open")
	}

	clk.advance(9 * time.Second)
	if b.Allow() {
		t.Fatal("probe admitted before cooldown elapsed")
	}
	clk.advance(2 * time.Second) // past cooldown
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	// Only ONE probe at a time.
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Probe fails → re-open for another full cooldown.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not re-open")
	}
	if b.Opens() != 2 {
		t.Fatalf("Opens = %d, want 2", b.Opens())
	}
	clk.advance(11 * time.Second)
	if !b.Allow() {
		t.Fatal("re-opened breaker refused the next probe after cooldown")
	}
	// Probe succeeds → closed, writes flow again.
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("successful probe did not close")
	}
	if !b.Allow() || !b.Allow() {
		t.Fatal("closed breaker limits admissions")
	}
	if b.RetryAfter() != 0 {
		t.Fatalf("closed RetryAfter = %v, want 0", b.RetryAfter())
	}
}

// TestSnapshotBreakerIntegration: injected disk failures drive the
// registry's breaker open; snapshots then fail fast with ErrBreakerOpen
// without touching the disk, and a healed disk closes it through the
// half-open probe.
func TestSnapshotBreakerIntegration(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	r := NewRegistry(dir)
	r.SetBreaker(NewBreaker(2, 10*time.Second, clk.now))

	var broken atomic.Bool
	var hookCalls atomic.Int64
	r.SetDiskHook(func(path, phase string) error {
		hookCalls.Add(1)
		if broken.Load() {
			return fmt.Errorf("injected %s failure on %s", phase, path)
		}
		return nil
	})

	sk, err := r.Create("t", "s", SketchConfig{Bits: 16, Seed: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sk.AddBatch([]uint64{1, 2, 3})
	if _, err := r.Snapshot(sk); err != nil {
		t.Fatalf("healthy snapshot: %v", err)
	}

	broken.Store(true)
	sk.AddBatch([]uint64{4})
	for i := 0; i < 2; i++ {
		if _, err := r.Snapshot(sk); err == nil {
			t.Fatalf("snapshot %d succeeded over a broken disk", i)
		}
	}
	if r.Breaker().State() != BreakerOpen {
		t.Fatal("breaker not open after 2 disk failures")
	}

	// Open breaker: fail fast, disk untouched.
	before := hookCalls.Load()
	if _, err := r.Snapshot(sk); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker snapshot: %v, want ErrBreakerOpen", err)
	}
	if hookCalls.Load() != before {
		t.Fatal("open breaker still touched the disk")
	}

	// Ingest and estimates keep flowing in degraded mode.
	sk.AddBatch([]uint64{5, 6})
	if est, _, _ := sk.Estimate(); est <= 0 {
		t.Fatalf("estimate in degraded mode = %v", est)
	}

	// Heal + cooldown → half-open probe succeeds → closed.
	broken.Store(false)
	clk.advance(11 * time.Second)
	if _, err := r.Snapshot(sk); err != nil {
		t.Fatalf("probe snapshot after heal: %v", err)
	}
	if r.Breaker().State() != BreakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if sk.Dirty() {
		t.Fatal("post-heal snapshot left the sketch dirty")
	}
}

// TestShutdownBypassesOpenBreaker: SnapshotDirty (the shutdown path)
// writes even while the breaker is open — last-chance persistence on a
// disk that healed after the breaker tripped.
func TestShutdownBypassesOpenBreaker(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	r := NewRegistry(dir)
	r.SetBreaker(NewBreaker(1, time.Hour, clk.now))

	var broken atomic.Bool
	r.SetDiskHook(func(path, phase string) error {
		if broken.Load() {
			return fmt.Errorf("injected %s failure", phase)
		}
		return nil
	})
	sk, err := r.Create("t", "s", SketchConfig{Bits: 16, Seed: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sk.AddBatch([]uint64{1, 2, 3})

	broken.Store(true)
	if _, err := r.Snapshot(sk); err == nil {
		t.Fatal("snapshot succeeded over a broken disk")
	}
	if r.Breaker().State() != BreakerOpen {
		t.Fatal("breaker not open")
	}

	// Disk heals; the hour-long cooldown has NOT elapsed, but shutdown
	// must still persist the acked ingest.
	broken.Store(false)
	if n, err := r.SnapshotDirty(); n != 1 || err != nil {
		t.Fatalf("SnapshotDirty over open breaker = (%d, %v), want (1, nil)", n, err)
	}

	r2 := NewRegistry(dir)
	if n, err := r2.Load(); n != 1 || err != nil {
		t.Fatalf("Load = (%d, %v), want (1, nil)", n, err)
	}
	got, err := r2.Get("t", "s")
	if err != nil || got.Items() != 3 {
		t.Fatalf("restored sketch: items=%d err=%v", got.Items(), err)
	}
}

// TestRestorePartialWriteWreckage: an injected "write"-phase disk
// failure leaves a partial temp file; boot must discard the stray and
// restore the last good snapshot.
func TestRestorePartialWriteWreckage(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry(dir)
	sk, err := r.Create("t", "s", SketchConfig{Bits: 16, Seed: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sk.AddBatch([]uint64{1, 2, 3})
	if _, err := r.Snapshot(sk); err != nil {
		t.Fatal(err)
	}

	// Now arm a write-phase failure and snapshot again: the temp file is
	// left behind partially written, the good snapshot is untouched.
	r.SetDiskHook(func(path, phase string) error {
		if phase == "write" && strings.HasSuffix(path, ".snap") {
			return fmt.Errorf("injected torn write")
		}
		return nil
	})
	sk.AddBatch([]uint64{4})
	if _, err := r.Snapshot(sk); err == nil {
		t.Fatal("torn write did not fail the snapshot")
	}
	strays, _ := filepath.Glob(filepath.Join(dir, "t", "*.tmp*"))
	if len(strays) == 0 {
		t.Fatal("torn write left no temp wreckage (the injection seam regressed)")
	}

	r2 := NewRegistry(dir)
	if n, err := r2.Load(); n != 1 || err != nil {
		t.Fatalf("Load over wreckage = (%d, %v), want (1, nil)", n, err)
	}
	got, err := r2.Get("t", "s")
	if err != nil || got.Items() != 3 {
		t.Fatalf("restored sketch: items=%d err=%v", got.Items(), err)
	}
	strays, _ = filepath.Glob(filepath.Join(dir, "t", "*.tmp*"))
	if len(strays) != 0 {
		t.Fatalf("boot left stray temp files: %v", strays)
	}
}

// TestRestoreMissingBlob: a sidecar whose .snap vanished must abort the
// boot with an error naming the file, not silently drop the sketch.
func TestRestoreMissingBlob(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry(dir)
	sk, err := r.Create("t", "s", SketchConfig{Bits: 16, Seed: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sk.AddBatch([]uint64{1, 2, 3})
	if _, err := r.Snapshot(sk); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "t", "s.snap")); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRegistry(dir).Load(); err == nil {
		t.Fatal("Load accepted a sidecar with no blob")
	}
}
