package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromUint64RoundTrip(t *testing.T) {
	cases := []struct {
		v uint64
		n int
	}{
		{0, 1}, {1, 1}, {0, 8}, {255, 8}, {0xa5, 8}, {1 << 40, 64}, {^uint64(0), 64},
	}
	for _, c := range cases {
		b := FromUint64(c.v, c.n)
		if got := b.Uint64(); got != c.v {
			t.Errorf("FromUint64(%d,%d).Uint64() = %d", c.v, c.n, got)
		}
		if b.Len() != c.n {
			t.Errorf("width = %d, want %d", b.Len(), c.n)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{"", "0", "1", "0101", "111000111", "0000000000000000000000000000000000000000000000000000000000000000001"} {
		if got := FromString(s).String(); got != s {
			t.Errorf("FromString(%q).String() = %q", s, got)
		}
	}
}

func TestSetGetFlip(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("fresh vector has bit %d set", i)
		}
		b.Set(i, true)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		b.Flip(i)
		if b.Get(i) {
			t.Fatalf("bit %d still set after Flip", i)
		}
	}
}

func TestCmpMatchesStringOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(100)
		a := Random(n, rng.Uint64)
		b := Random(n, rng.Uint64)
		want := 0
		as, bs := a.String(), b.String()
		if as < bs {
			want = -1
		} else if as > bs {
			want = 1
		}
		if got := a.Cmp(b); got != want {
			t.Fatalf("Cmp(%s,%s) = %d, want %d", as, bs, got, want)
		}
	}
}

func TestTrailingLeadingZeros(t *testing.T) {
	cases := []struct {
		s              string
		trail, lead    int
		zeroPrefixLens []int
	}{
		{"0000", 4, 4, []int{0, 1, 2, 3, 4}},
		{"1000", 3, 0, []int{0}},
		{"0001", 0, 3, []int{0, 1, 2, 3}},
		{"0100", 2, 1, []int{0, 1}},
		{"1", 0, 0, []int{0}},
	}
	for _, c := range cases {
		b := FromString(c.s)
		if got := b.TrailingZeros(); got != c.trail {
			t.Errorf("%q TrailingZeros = %d, want %d", c.s, got, c.trail)
		}
		if got := b.LeadingZeros(); got != c.lead {
			t.Errorf("%q LeadingZeros = %d, want %d", c.s, got, c.lead)
		}
		for m := 0; m <= b.Len(); m++ {
			want := false
			for _, ok := range c.zeroPrefixLens {
				if ok == m {
					want = true
				}
			}
			if got := b.HasZeroPrefix(m); got != want {
				t.Errorf("%q HasZeroPrefix(%d) = %v, want %v", c.s, m, got, want)
			}
		}
	}
}

func TestXorProperties(t *testing.T) {
	f := func(av, bv uint64) bool {
		a := FromUint64(av, 64)
		b := FromUint64(bv, 64)
		x := a.Xor(b)
		// XOR must be involutive and match uint64 semantics.
		return x.Uint64() == av^bv && x.Xor(b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDotBilinear(t *testing.T) {
	f := func(av, bv, cv uint64) bool {
		a := FromUint64(av, 64)
		b := FromUint64(bv, 64)
		c := FromUint64(cv, 64)
		// <a+b, c> == <a,c> xor <b,c>
		return a.Xor(b).Dot(c) == (a.Dot(c) != b.Dot(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPopCountAndKey(t *testing.T) {
	f := func(av uint64) bool {
		a := FromUint64(av, 64)
		pc := 0
		for v := av; v != 0; v &= v - 1 {
			pc++
		}
		return a.PopCount() == pc && a.IsZero() == (av == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	rng := rand.New(rand.NewSource(7))
	seen := map[string]BitVec{}
	for i := 0; i < 2000; i++ {
		b := Random(100, rng.Uint64)
		if prev, ok := seen[b.Key()]; ok && !prev.Equal(b) {
			t.Fatalf("key collision between distinct vectors %s and %s", prev, b)
		}
		seen[b.Key()] = b
	}
}

func TestRandomMasksExcessBits(t *testing.T) {
	// Random must not leave stray bits beyond width n; otherwise Equal and
	// Key would distinguish logically equal vectors.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(130)
		a := Random(n, rng.Uint64)
		b := FromString(a.String())
		if !a.Equal(b) || a.Key() != b.Key() {
			t.Fatalf("Random(%d) left excess bits: %s", n, a)
		}
	}
}

func TestPrefix(t *testing.T) {
	b := FromString("1011001")
	for m := 0; m <= 7; m++ {
		if got, want := b.Prefix(m).String(), "1011001"[:m]; got != want {
			t.Errorf("Prefix(%d) = %q, want %q", m, got, want)
		}
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	b := New(4)
	mustPanic("Get out of range", func() { b.Get(4) })
	mustPanic("Set negative", func() { b.Set(-1, true) })
	mustPanic("width mismatch", func() { b.XorInPlace(New(5)) })
	mustPanic("FromUint64 too wide", func() { FromUint64(0, 65) })
	mustPanic("bad string", func() { FromString("01x") })
	mustPanic("prefix too long", func() { b.Prefix(5) })
}
