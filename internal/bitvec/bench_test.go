package bitvec

import (
	"fmt"
	"testing"
)

// The microbenchmarks below cover the kernels on the counting stack's hot
// paths: comparisons and trailing-zero scans (Minimum/Estimation sketches),
// prefix tests (Bucketing), and the dedup key construction.

func benchVecs(n int) (BitVec, BitVec) {
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		return z ^ (z >> 27)
	}
	a := Random(n, next)
	b := a.Clone()
	// Differ only in the last bit so Cmp/Less walk the full width.
	b.Flip(n - 1)
	return a, b
}

var (
	sinkInt    int
	sinkBool   bool
	sinkFloat  float64
	sinkString string
)

func BenchmarkKeyString(b *testing.B) {
	x, _ := benchVecs(192)
	for i := 0; i < b.N; i++ {
		sinkString = x.Key()
	}
}

var sinkFP Fingerprint

func BenchmarkFingerprint(b *testing.B) {
	for _, n := range []int{64, 192} {
		x, _ := benchVecs(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkFP = x.Fingerprint()
			}
		})
	}
}

func BenchmarkCmp(b *testing.B) {
	for _, n := range []int{64, 192, 1024} {
		x, y := benchVecs(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt = x.Cmp(y)
			}
		})
	}
}

func BenchmarkTrailingZeros(b *testing.B) {
	for _, n := range []int{64, 192, 1024} {
		x := New(n)
		x.Set(0, true) // n-1 trailing zeros: worst-case scan
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt = x.TrailingZeros()
			}
		})
	}
}

func BenchmarkHasZeroPrefix(b *testing.B) {
	for _, n := range []int{64, 192, 1024} {
		x := New(n)
		x.Set(n-1, true)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkBool = x.HasZeroPrefix(n - 1)
			}
		})
	}
}

func BenchmarkFraction(b *testing.B) {
	x, _ := benchVecs(192)
	for i := 0; i < b.N; i++ {
		sinkFloat = x.Fraction()
	}
}

func BenchmarkUint64(b *testing.B) {
	x, _ := benchVecs(64)
	for i := 0; i < b.N; i++ {
		sinkInt = int(x.Uint64())
	}
}

func BenchmarkString(b *testing.B) {
	x, _ := benchVecs(192)
	for i := 0; i < b.N; i++ {
		sinkString = x.String()
	}
}
