package bitvec

import (
	"math/rand/v2"
	"testing"
)

func TestWindowFromWordsMatchesWindowInto(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, total := range []int{1, 63, 64, 65, 127, 128, 129, 250} {
		src := Random(total, rng.Uint64)
		// Pad the word slice beyond the vector to check the in-range word
		// handling (WindowFromWords sees raw words, not a width).
		words := append(append([]uint64(nil), src.Words()...), rng.Uint64())
		for _, width := range []int{0, 1, 63, 64, 65, total} {
			if width > total {
				continue
			}
			for _, off := range []int{0, 1, 31, 63, 64, 65, total - width} {
				if off < 0 || off+width > total {
					continue
				}
				want := New(width)
				src.WindowInto(off, want)
				got := New(width)
				WindowFromWords(words, off, got)
				if !got.Equal(want) {
					t.Fatalf("total=%d off=%d width=%d: got %s want %s", total, off, width, got, want)
				}
			}
		}
	}
}

func TestWindowFromWordsPanics(t *testing.T) {
	mustPanicWR := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanicWR("negative offset", func() { WindowFromWords(make([]uint64, 2), -1, New(8)) })
	mustPanicWR("past end", func() { WindowFromWords(make([]uint64, 1), 60, New(8)) })
}

func TestReverse(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"", ""},
		{"1", "1"},
		{"10", "01"},
		{"1011001", "1001101"},
	} {
		if got := FromString(tc.in).Reverse().String(); got != tc.want {
			t.Fatalf("Reverse(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	rng := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{1, 2, 63, 64, 65, 127, 128, 129, 300} {
		v := Random(n, rng.Uint64)
		r := v.Reverse()
		for i := 0; i < n; i++ {
			if r.Get(i) != v.Get(n-1-i) {
				t.Fatalf("n=%d: reversed bit %d mismatch", n, i)
			}
		}
		// Involution, and the excess-bits invariant must hold on the result.
		if !r.Reverse().Equal(v) {
			t.Fatalf("n=%d: double reversal is not the identity", n)
		}
		if rr := r.Clone(); !rr.Equal(r) || r.PopCount() != v.PopCount() {
			t.Fatalf("n=%d: reversal corrupted the word invariant", n)
		}
	}
}

func TestReverseIntoPanicsOnWidthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(8).ReverseInto(New(9))
}
