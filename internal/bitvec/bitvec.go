// Package bitvec implements fixed-width bit vectors over GF(2).
//
// A BitVec represents an element of {0,1}^n. Bit 0 is the most significant
// position: the paper's universe {0,1}^n orders strings lexicographically
// left-to-right, so bit index i corresponds to position i+1 of the string.
// Trailing zeros are counted from the least significant end (position n-1),
// matching the TrailZero procedure of the paper.
package bitvec

import "math/bits"

// BitVec is a fixed-width vector of bits.
type BitVec struct {
	n     int
	words []uint64
}

const wordBits = 64

// New returns an all-zero bit vector of width n bits.
func New(n int) BitVec {
	if n < 0 {
		panic("bitvec: negative width")
	}
	return BitVec{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromUint64 returns an n-bit vector whose string form is the n-bit binary
// representation of v (most significant bit first). n must be at most 64.
func FromUint64(v uint64, n int) BitVec {
	if n > 64 {
		panic("bitvec: FromUint64 width exceeds 64")
	}
	b := New(n)
	for i := 0; i < n; i++ {
		if v&(1<<(n-1-i)) != 0 {
			b.Set(i, true)
		}
	}
	return b
}

// Uint64 returns the integer whose n-bit binary representation equals the
// vector (most significant bit first). Width must be at most 64.
func (b BitVec) Uint64() uint64 {
	if b.n > 64 {
		panic("bitvec: Uint64 width exceeds 64")
	}
	var v uint64
	for i := 0; i < b.n; i++ {
		v <<= 1
		if b.Get(i) {
			v |= 1
		}
	}
	return v
}

// FromString parses a string of '0' and '1' runes.
func FromString(s string) BitVec {
	b := New(len(s))
	for i, c := range s {
		switch c {
		case '0':
		case '1':
			b.Set(i, true)
		default:
			panic("bitvec: invalid character in bit string")
		}
	}
	return b
}

// Len returns the width in bits.
func (b BitVec) Len() int { return b.n }

// Get reports whether bit i is set.
func (b BitVec) Get(i int) bool {
	if i < 0 || i >= b.n {
		panic("bitvec: index out of range")
	}
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set sets bit i to v.
func (b BitVec) Set(i int, v bool) {
	if i < 0 || i >= b.n {
		panic("bitvec: index out of range")
	}
	if v {
		b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
	} else {
		b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// Flip toggles bit i.
func (b BitVec) Flip(i int) { b.Set(i, !b.Get(i)) }

// Clone returns an independent copy.
func (b BitVec) Clone() BitVec {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return BitVec{n: b.n, words: w}
}

// XorInPlace sets b to b XOR o. Widths must match.
func (b BitVec) XorInPlace(o BitVec) {
	if b.n != o.n {
		panic("bitvec: width mismatch")
	}
	for i := range b.words {
		b.words[i] ^= o.words[i]
	}
}

// Xor returns b XOR o as a fresh vector.
func (b BitVec) Xor(o BitVec) BitVec {
	r := b.Clone()
	r.XorInPlace(o)
	return r
}

// AndPopCount returns the number of positions where both b and o are 1,
// i.e. popcount(b AND o). This is the inner product workhorse for GF(2)
// matrix-vector products.
func (b BitVec) AndPopCount(o BitVec) int {
	if b.n != o.n {
		panic("bitvec: width mismatch")
	}
	c := 0
	for i := range b.words {
		c += popcount64(b.words[i] & o.words[i])
	}
	return c
}

// Dot returns the GF(2) inner product of b and o.
func (b BitVec) Dot(o BitVec) bool { return b.AndPopCount(o)&1 == 1 }

// PopCount returns the number of set bits.
func (b BitVec) PopCount() int {
	c := 0
	for _, w := range b.words {
		c += popcount64(w)
	}
	return c
}

// IsZero reports whether every bit is zero.
func (b BitVec) IsZero() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether b and o have the same width and bits.
func (b BitVec) Equal(o BitVec) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Cmp compares b and o lexicographically as bit strings (position 0 first).
// It returns -1, 0, or +1. Widths must match.
func (b BitVec) Cmp(o BitVec) int {
	if b.n != o.n {
		panic("bitvec: width mismatch")
	}
	for i := 0; i < b.n; i++ {
		x, y := b.Get(i), o.Get(i)
		if x != y {
			if y {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Less reports whether b precedes o lexicographically.
func (b BitVec) Less(o BitVec) bool { return b.Cmp(o) < 0 }

// TrailingZeros returns the number of consecutive zero bits at the least
// significant (rightmost string) end. A zero vector has n trailing zeros.
func (b BitVec) TrailingZeros() int {
	c := 0
	for i := b.n - 1; i >= 0; i-- {
		if b.Get(i) {
			return c
		}
		c++
	}
	return c
}

// LeadingZeros returns the number of consecutive zero bits at position 0
// onward, i.e. the length of the all-zero prefix.
func (b BitVec) LeadingZeros() int {
	c := 0
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			return c
		}
		c++
	}
	return c
}

// HasZeroPrefix reports whether the first m bits are all zero.
func (b BitVec) HasZeroPrefix(m int) bool {
	if m > b.n {
		panic("bitvec: prefix longer than vector")
	}
	for i := 0; i < m; i++ {
		if b.Get(i) {
			return false
		}
	}
	return true
}

// Prefix returns the first m bits as a fresh m-bit vector.
func (b BitVec) Prefix(m int) BitVec {
	if m > b.n {
		panic("bitvec: prefix longer than vector")
	}
	p := New(m)
	for i := 0; i < m; i++ {
		if b.Get(i) {
			p.Set(i, true)
		}
	}
	return p
}

// String renders the vector as a bit string, position 0 first.
func (b BitVec) String() string {
	buf := make([]byte, b.n)
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}

// Fraction interprets the vector (position 0 first) as a binary fraction
// in [0, 1), using the first 53 bits. Lexicographic order on vectors of
// equal width agrees with numeric order on fractions (up to the 53-bit
// truncation), which is what the k-minimum-values estimator needs.
func (b BitVec) Fraction() float64 {
	f := 0.0
	scale := 0.5
	limit := b.n
	if limit > 53 {
		limit = 53
	}
	for i := 0; i < limit; i++ {
		if b.Get(i) {
			f += scale
		}
		scale /= 2
	}
	return f
}

// Key returns a compact string usable as a map key. Vectors of equal width
// have equal keys iff they are equal.
func (b BitVec) Key() string {
	buf := make([]byte, 0, len(b.words)*8)
	for _, w := range b.words {
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(w>>s))
		}
	}
	return string(buf)
}

// Random fills an n-bit vector using next as the entropy source; next is
// called once per 64-bit word. Excess high bits of the last word are masked
// so that Equal and Key behave correctly.
func Random(n int, next func() uint64) BitVec {
	b := New(n)
	for i := range b.words {
		b.words[i] = next()
	}
	if rem := n % wordBits; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
	}
	return b
}

func popcount64(x uint64) int { return bits.OnesCount64(x) }
