// Package bitvec implements fixed-width bit vectors over GF(2).
//
// A BitVec represents an element of {0,1}^n. Bit 0 is the most significant
// position: the paper's universe {0,1}^n orders strings lexicographically
// left-to-right, so bit index i corresponds to position i+1 of the string.
// Trailing zeros are counted from the least significant end (position n-1),
// matching the TrailZero procedure of the paper.
//
// Storage is little-endian within words: bit i lives at words[i/64], bit
// position i%64. Every operation maintains the invariant that the unused
// high bits of the last word are zero, which is what lets the kernels below
// run word-parallel (64 positions per machine operation) instead of
// bit-at-a-time.
//
// # Destination-passing variants and ownership
//
// The *Into methods (XorInto, PrefixInto, WindowInto, CopyFrom, plus
// SetUint64 and FillRandom) write their result into a caller-owned vector
// instead of allocating a fresh one. The contract is:
//
//   - the destination must have been allocated by the caller with the
//     correct width (the methods panic on width mismatch, they never
//     resize);
//   - the destination must not alias the receiver or other operands unless
//     a method's doc comment explicitly allows it;
//   - the callee never retains the destination; after the call the caller
//     remains the unique owner and may reuse the vector for the next
//     iteration.
//
// Enumeration loops (hash evaluation, sketch updates, Gaussian elimination)
// use these to run allocation-free: allocate scratch once, then evaluate
// into it millions of times.
package bitvec

import (
	"encoding/binary"
	"math"
	"math/bits"
	"unsafe"
)

// BitVec is a fixed-width vector of bits.
type BitVec struct {
	n     int
	words []uint64
}

const wordBits = 64

// New returns an all-zero bit vector of width n bits.
func New(n int) BitVec {
	if n < 0 {
		panic("bitvec: negative width")
	}
	return BitVec{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// NewSlab returns count independent width-n vectors whose word storage is
// carved from a single allocation. The vectors behave exactly like New(n)
// results; the shared backing array only reduces allocator pressure when a
// caller needs many rows at once (hash matrices, sketch cells).
func NewSlab(n, count int) []BitVec {
	vs, _ := NewSlabWords(n, count)
	return vs
}

// NewSlabWords is NewSlab exposing the backing word array as well: vector i
// occupies words[i*stride : (i+1)*stride] with stride = ⌈n/64⌉. Kernels
// that stream over many rows (GF(2) matrix-vector products) use the flat
// array to avoid a pointer chase per row.
func NewSlabWords(n, count int) ([]BitVec, []uint64) {
	if n < 0 || count < 0 {
		panic("bitvec: negative slab dimensions")
	}
	wpr := (n + wordBits - 1) / wordBits
	words := make([]uint64, wpr*count)
	vs := make([]BitVec, count)
	for i := range vs {
		vs[i] = BitVec{n: n, words: words[i*wpr : (i+1)*wpr : (i+1)*wpr]}
	}
	return vs, words
}

// FromUint64 returns an n-bit vector whose string form is the n-bit binary
// representation of v (most significant bit first). n must be at most 64.
func FromUint64(v uint64, n int) BitVec {
	if n > 64 {
		panic("bitvec: FromUint64 width exceeds 64")
	}
	b := New(n)
	b.SetUint64(v)
	return b
}

// SetUint64 overwrites the vector (width ≤ 64) with the n-bit binary
// representation of v, most significant bit first — the in-place form of
// FromUint64. Bits of v at or above position n are ignored.
func (b BitVec) SetUint64(v uint64) {
	if b.n > 64 {
		panic("bitvec: SetUint64 width exceeds 64")
	}
	if b.n == 0 {
		return
	}
	// Vector bit i is bit n-1-i of v: reverse the low n bits into place.
	b.words[0] = bits.Reverse64(v << (wordBits - uint(b.n)))
}

// Uint64 returns the integer whose n-bit binary representation equals the
// vector (most significant bit first). Width must be at most 64.
func (b BitVec) Uint64() uint64 {
	if b.n > 64 {
		panic("bitvec: Uint64 width exceeds 64")
	}
	if b.n == 0 {
		return 0
	}
	return bits.Reverse64(b.words[0]) >> (wordBits - uint(b.n))
}

// FromString parses a string of '0' and '1' runes.
func FromString(s string) BitVec {
	b := New(len(s))
	for i, c := range s {
		switch c {
		case '0':
		case '1':
			b.Set(i, true)
		default:
			panic("bitvec: invalid character in bit string")
		}
	}
	return b
}

// Len returns the width in bits.
func (b BitVec) Len() int { return b.n }

// Get reports whether bit i is set.
func (b BitVec) Get(i int) bool {
	if i < 0 || i >= b.n {
		panic("bitvec: index out of range")
	}
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set sets bit i to v.
func (b BitVec) Set(i int, v bool) {
	if i < 0 || i >= b.n {
		panic("bitvec: index out of range")
	}
	if v {
		b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
	} else {
		b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// Flip toggles bit i.
func (b BitVec) Flip(i int) {
	if i < 0 || i >= b.n {
		panic("bitvec: index out of range")
	}
	b.words[i/wordBits] ^= 1 << (uint(i) % wordBits)
}

// Clone returns an independent copy.
func (b BitVec) Clone() BitVec {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return BitVec{n: b.n, words: w}
}

// CopyFrom overwrites b with o. Widths must match.
func (b BitVec) CopyFrom(o BitVec) {
	if b.n != o.n {
		panic("bitvec: width mismatch")
	}
	copy(b.words, o.words)
}

// Words exposes the underlying word storage: bit i lives at Words()[i/64],
// bit position i%64, and the unused high bits of the last word are always
// zero. The slice aliases the vector — writes through it mutate the vector,
// and writers must preserve the excess-bit invariant. It exists for
// performance-critical kernels (GF(2) elimination); ordinary callers should
// stay on the method API.
func (b BitVec) Words() []uint64 { return b.words }

// XorInPlace sets b to b XOR o. Widths must match.
func (b BitVec) XorInPlace(o BitVec) {
	if b.n != o.n {
		panic("bitvec: width mismatch")
	}
	bw := b.words
	ow := o.words[:len(bw)]
	for i := range bw {
		bw[i] ^= ow[i]
	}
}

// XorInto writes b XOR o into dst without allocating. All three vectors
// must share one width; dst may alias b or o.
func (b BitVec) XorInto(o, dst BitVec) {
	if b.n != o.n || b.n != dst.n {
		panic("bitvec: width mismatch")
	}
	dw := dst.words
	bw := b.words[:len(dw)]
	ow := o.words[:len(dw)]
	for i := range dw {
		dw[i] = bw[i] ^ ow[i]
	}
}

// Xor returns b XOR o as a fresh vector.
func (b BitVec) Xor(o BitVec) BitVec {
	r := b.Clone()
	r.XorInPlace(o)
	return r
}

// AndPopCount returns the number of positions where both b and o are 1,
// i.e. popcount(b AND o). This is the inner product workhorse for GF(2)
// matrix-vector products.
func (b BitVec) AndPopCount(o BitVec) int {
	if b.n != o.n {
		panic("bitvec: width mismatch")
	}
	c := 0
	bw := b.words
	ow := o.words[:len(bw)]
	for i := range bw {
		c += bits.OnesCount64(bw[i] & ow[i])
	}
	return c
}

// Dot returns the GF(2) inner product of b and o. Parity is additive mod
// 2, so the AND words are XOR-folded first and a single popcount finishes.
func (b BitVec) Dot(o BitVec) bool {
	if b.n != o.n {
		panic("bitvec: width mismatch")
	}
	var fold uint64
	bw := b.words
	ow := o.words[:len(bw)]
	for i := range bw {
		fold ^= bw[i] & ow[i]
	}
	return bits.OnesCount64(fold)&1 == 1
}

// PopCount returns the number of set bits.
func (b BitVec) PopCount() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsZero reports whether every bit is zero.
func (b BitVec) IsZero() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether b and o have the same width and bits.
func (b BitVec) Equal(o BitVec) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Cmp compares b and o lexicographically as bit strings (position 0 first).
// It returns -1, 0, or +1. Widths must match.
//
// The first differing string position is the lowest differing bit index, so
// one XOR and a trailing-zeros count decide each word.
func (b BitVec) Cmp(o BitVec) int {
	if b.n != o.n {
		panic("bitvec: width mismatch")
	}
	bw := b.words
	ow := o.words[:len(bw)]
	for i := range bw {
		if d := bw[i] ^ ow[i]; d != 0 {
			if ow[i]&(d&-d) != 0 {
				return -1 // o has the 1 at the first differing position
			}
			return 1
		}
	}
	return 0
}

// Less reports whether b precedes o lexicographically.
func (b BitVec) Less(o BitVec) bool {
	if b.n != o.n {
		panic("bitvec: width mismatch")
	}
	bw := b.words
	ow := o.words[:len(bw)]
	for i := range bw {
		if d := bw[i] ^ ow[i]; d != 0 {
			return ow[i]&(d&-d) != 0
		}
	}
	return false
}

// TrailingZeros returns the number of consecutive zero bits at the least
// significant (rightmost string) end. A zero vector has n trailing zeros.
func (b BitVec) TrailingZeros() int {
	if b.n == 0 {
		return 0
	}
	last := len(b.words) - 1
	c := 0
	// The last word holds positions [64·last, n); shift its window so the
	// highest position sits at bit 63, then leading zeros count string
	// trailing zeros.
	w := b.words[last]
	if rem := uint(b.n) % wordBits; rem != 0 {
		w <<= wordBits - rem
		if w != 0 {
			return bits.LeadingZeros64(w)
		}
		c = int(rem)
	} else {
		if w != 0 {
			return bits.LeadingZeros64(w)
		}
		c = wordBits
	}
	for i := last - 1; i >= 0; i-- {
		if w := b.words[i]; w != 0 {
			return c + bits.LeadingZeros64(w)
		}
		c += wordBits
	}
	return c
}

// LeadingZeros returns the number of consecutive zero bits at position 0
// onward, i.e. the length of the all-zero prefix.
func (b BitVec) LeadingZeros() int {
	for i, w := range b.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return b.n
}

// FirstSet returns the index of the first set position (equivalently
// LeadingZeros when a bit is set), or -1 for the zero vector.
func (b BitVec) FirstSet() int {
	for i, w := range b.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// HasZeroPrefix reports whether the first m bits are all zero.
func (b BitVec) HasZeroPrefix(m int) bool {
	if m > b.n {
		panic("bitvec: prefix longer than vector")
	}
	k := m / wordBits
	for i := 0; i < k; i++ {
		if b.words[i] != 0 {
			return false
		}
	}
	if rem := uint(m) % wordBits; rem != 0 {
		return b.words[k]&((1<<rem)-1) == 0
	}
	return true
}

// Prefix returns the first m bits as a fresh m-bit vector.
func (b BitVec) Prefix(m int) BitVec {
	p := New(m)
	b.PrefixInto(p)
	return p
}

// PrefixInto copies the first dst.Len() bits of b into dst, which must be
// no wider than b.
func (b BitVec) PrefixInto(dst BitVec) {
	if dst.n > b.n {
		panic("bitvec: prefix longer than vector")
	}
	dw := dst.words
	copy(dw, b.words[:len(dw)])
	if rem := uint(dst.n) % wordBits; rem != 0 {
		dw[len(dw)-1] &= (1 << rem) - 1
	}
}

// WindowInto copies bits [off, off+dst.Len()) of b into dst — the
// word-parallel slice primitive behind Toeplitz row construction.
func (b BitVec) WindowInto(off int, dst BitVec) {
	if off < 0 || off+dst.n > b.n {
		panic("bitvec: window out of range")
	}
	if dst.n == 0 {
		return
	}
	sw := off / wordBits
	sh := uint(off) % wordBits
	bw := b.words
	dw := dst.words
	for i := range dw {
		w := bw[sw+i] >> sh
		if sh != 0 && sw+i+1 < len(bw) {
			w |= bw[sw+i+1] << (wordBits - sh)
		}
		dw[i] = w
	}
	if rem := uint(dst.n) % wordBits; rem != 0 {
		dw[len(dw)-1] &= (1 << rem) - 1
	}
}

// WindowFromWords copies bits [off, off+dst.Len()) of the packed
// little-endian word slice src (bit i lives at src[i/64], position i%64 —
// the Words layout) into dst. It is the destination-passing bridge from
// raw polynomial products (gf2poly.ClmulAccInto) back into bit-vector
// form; package hash uses it to slice the output window out of a Toeplitz
// carry-less multiply.
func WindowFromWords(src []uint64, off int, dst BitVec) {
	if off < 0 || off+dst.n > len(src)*wordBits {
		panic("bitvec: window out of range")
	}
	if dst.n == 0 {
		return
	}
	sw := off / wordBits
	sh := uint(off) % wordBits
	dw := dst.words
	for i := range dw {
		w := src[sw+i] >> sh
		if sh != 0 && sw+i+1 < len(src) {
			w |= src[sw+i+1] << (wordBits - sh)
		}
		dw[i] = w
	}
	if rem := uint(dst.n) % wordBits; rem != 0 {
		dw[len(dw)-1] &= (1 << rem) - 1
	}
}

// ReverseInto writes the bit-reversal of b into dst: dst bit t is b's bit
// n−1−t. Widths must match and dst must not alias b. The reversal is
// word-parallel: reverse the word order, bit-reverse each word, then shift
// out the padding that the last partial word introduced. Package hash uses
// this to turn a Toeplitz diagonal into the packed polynomial whose
// product with the input realizes A·x.
func (b BitVec) ReverseInto(dst BitVec) {
	if b.n != dst.n {
		panic("bitvec: width mismatch")
	}
	sw := b.words
	dw := dst.words
	for i, w := range sw {
		dw[len(sw)-1-i] = bits.Reverse64(w)
	}
	// The reversal of the zero-padded 64·W-bit string carries the true
	// n-bit reversal in its high bits; shift the padding out.
	if pad := uint(len(sw)*wordBits - b.n); pad != 0 {
		for i := 0; i < len(dw)-1; i++ {
			dw[i] = dw[i]>>pad | dw[i+1]<<(wordBits-pad)
		}
		dw[len(dw)-1] >>= pad
	}
}

// Reverse returns the bit-reversal of b as a fresh vector.
func (b BitVec) Reverse() BitVec {
	r := New(b.n)
	b.ReverseInto(r)
	return r
}

// String renders the vector as a bit string, position 0 first. Eight
// positions are rendered per step by spreading one byte of the word into
// eight '0'/'1' bytes with a mask-and-carry trick.
func (b BitVec) String() string {
	buf := make([]byte, b.n)
	pos := 0
	for _, w := range b.words {
		for s := 0; s < wordBits && pos < b.n; s += 8 {
			if b.n-pos >= 8 {
				binary.LittleEndian.PutUint64(buf[pos:pos+8], spreadBits(byte(w>>uint(s))))
				pos += 8
			} else {
				// Tail shorter than a byte: per-bit.
				for j := 0; pos < b.n; j++ {
					buf[pos] = '0' + byte((w>>uint(s+j))&1)
					pos++
				}
			}
		}
	}
	// buf is function-local and never written again: aliasing it as the
	// result string is safe and saves the copy string(buf) would make.
	return unsafe.String(unsafe.SliceData(buf), len(buf))
}

// spreadBits expands the 8 bits of v into 8 bytes, byte i = '0' + bit i.
func spreadBits(v byte) uint64 {
	x := uint64(v) * 0x0101010101010101 & 0x8040201008040201
	x = ((x + 0x7f7f7f7f7f7f7f7f) >> 7) & 0x0101010101010101
	return x + 0x3030303030303030
}

// Fraction interprets the vector (position 0 first) as a binary fraction
// in [0, 1), using the first 53 bits. Lexicographic order on vectors of
// equal width agrees with numeric order on fractions (up to the 53-bit
// truncation), which is what the k-minimum-values estimator needs.
func (b BitVec) Fraction() float64 {
	limit := b.n
	if limit > 53 {
		limit = 53
	}
	if limit == 0 {
		return 0
	}
	// The first `limit` positions read MSB-first form an integer < 2^53,
	// exact in float64.
	v := bits.Reverse64(b.words[0]) >> (wordBits - uint(limit))
	return math.Ldexp(float64(v), -limit)
}

// Key returns a compact string usable as a map key. Vectors of equal width
// have equal keys iff they are equal.
//
// Deprecated-for-hot-paths: every call allocates the returned string.
// Enumeration and sketch loops should use Fingerprint, which is a
// fixed-size comparable value.
func (b BitVec) Key() string {
	buf := make([]byte, 0, len(b.words)*8)
	for _, w := range b.words {
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(w>>s))
		}
	}
	return string(buf)
}

// Fingerprint is a fixed-size comparable digest of a BitVec, usable
// directly as a map key with zero allocation per lookup. For widths up to
// 128 bits it is exact: two vectors of equal width have equal fingerprints
// iff they are equal. Beyond 128 bits the remaining words are folded in
// with a 128-bit mix, so distinct vectors collide with probability ~2^-128
// per pair — negligible against the (ε, δ) guarantees of every algorithm
// in this repository.
type Fingerprint struct {
	lo, hi uint64
	n      uint32
}

// Fingerprint digests the vector; see the Fingerprint type for the
// collision contract.
func (b BitVec) Fingerprint() Fingerprint {
	f := Fingerprint{n: uint32(b.n)}
	switch len(b.words) {
	case 0:
	case 1:
		f.lo = b.words[0]
	case 2:
		f.lo, f.hi = b.words[0], b.words[1]
	default:
		f.lo, f.hi = b.words[0], b.words[1]
		for _, w := range b.words[2:] {
			f.lo = mix64(f.lo ^ (w * 0x9e3779b97f4a7c15))
			f.hi = mix64(f.hi + bits.RotateLeft64(w, 31) + 0xd1342543de82ef95)
		}
	}
	return f
}

// Raw exposes the fingerprint's digest words and the width of the vector
// it was taken over, for serialization; RawFingerprint reverses it.
func (f Fingerprint) Raw() (lo, hi uint64, n int) { return f.lo, f.hi, int(f.n) }

// RawFingerprint rebuilds a fingerprint from its Raw parts. It is only
// meaningful for values previously produced by BitVec.Fingerprint — the
// codec round-trips stored digests without re-deriving them from elements
// (the elements themselves are not retained by the sketches).
func RawFingerprint(lo, hi uint64, n int) Fingerprint {
	return Fingerprint{lo: lo, hi: hi, n: uint32(n)}
}

// mix64 is the splitmix64 finalizer, a bijection on uint64.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Random fills an n-bit vector using next as the entropy source; next is
// called once per 64-bit word. Excess high bits of the last word are masked
// so that Equal and Key behave correctly.
func Random(n int, next func() uint64) BitVec {
	b := New(n)
	b.FillRandom(next)
	return b
}

// FillRandom overwrites b with random bits from next (one call per word),
// masking the excess bits of the last word — the in-place form of Random.
func (b BitVec) FillRandom(next func() uint64) {
	for i := range b.words {
		b.words[i] = next()
	}
	if rem := uint(b.n) % wordBits; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << rem) - 1
	}
}
