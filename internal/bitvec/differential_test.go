package bitvec

import (
	"fmt"
	"math"
	"testing"
)

// Differential tests: every word-parallel kernel is checked against a
// retained naive per-bit reference implementation (the seed's semantics) on
// randomized vectors, with widths that straddle 64-bit word boundaries.

// testWidths are the widths every differential case runs at; 63/64/65 and
// 127/128/129 straddle the one- and two-word boundaries.
var testWidths = []int{1, 2, 7, 31, 53, 63, 64, 65, 100, 127, 128, 129, 191, 192, 193, 320}

type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// testVectors produces a width-n sample set covering the adversarial shapes
// for scan kernels: all-zero, all-one, single bits at the ends and at word
// boundaries, long zero prefixes/suffixes, and random fills.
func testVectors(n int, rng *splitmix) []BitVec {
	var vs []BitVec
	vs = append(vs, New(n)) // all zero
	ones := New(n)
	for i := 0; i < n; i++ {
		ones.Set(i, true)
	}
	vs = append(vs, ones)
	for _, i := range []int{0, 1, n / 2, n - 2, n - 1, 62, 63, 64, 65, 126, 127, 128} {
		if i < 0 || i >= n {
			continue
		}
		v := New(n)
		v.Set(i, true)
		vs = append(vs, v)
	}
	for k := 0; k < 8; k++ {
		vs = append(vs, Random(n, rng.next))
	}
	// Random with forced zero prefix and forced zero suffix.
	p := Random(n, rng.next)
	for i := 0; i < n/2; i++ {
		p.Set(i, false)
	}
	vs = append(vs, p)
	s := Random(n, rng.next)
	for i := n / 2; i < n; i++ {
		s.Set(i, false)
	}
	vs = append(vs, s)
	return vs
}

// --- naive reference implementations (per-bit, as in the seed) ---

func refCmp(b, o BitVec) int {
	for i := 0; i < b.Len(); i++ {
		x, y := b.Get(i), o.Get(i)
		if x != y {
			if y {
				return -1
			}
			return 1
		}
	}
	return 0
}

func refTrailingZeros(b BitVec) int {
	c := 0
	for i := b.Len() - 1; i >= 0; i-- {
		if b.Get(i) {
			return c
		}
		c++
	}
	return c
}

func refLeadingZeros(b BitVec) int {
	c := 0
	for i := 0; i < b.Len(); i++ {
		if b.Get(i) {
			return c
		}
		c++
	}
	return c
}

func refHasZeroPrefix(b BitVec, m int) bool {
	for i := 0; i < m; i++ {
		if b.Get(i) {
			return false
		}
	}
	return true
}

func refPrefix(b BitVec, m int) BitVec {
	p := New(m)
	for i := 0; i < m; i++ {
		if b.Get(i) {
			p.Set(i, true)
		}
	}
	return p
}

func refUint64(b BitVec) uint64 {
	var v uint64
	for i := 0; i < b.Len(); i++ {
		v <<= 1
		if b.Get(i) {
			v |= 1
		}
	}
	return v
}

func refFromUint64(v uint64, n int) BitVec {
	b := New(n)
	for i := 0; i < n; i++ {
		if v&(1<<(n-1-i)) != 0 {
			b.Set(i, true)
		}
	}
	return b
}

func refFraction(b BitVec) float64 {
	f := 0.0
	scale := 0.5
	limit := b.Len()
	if limit > 53 {
		limit = 53
	}
	for i := 0; i < limit; i++ {
		if b.Get(i) {
			f += scale
		}
		scale /= 2
	}
	return f
}

func refString(b BitVec) string {
	buf := make([]byte, b.Len())
	for i := 0; i < b.Len(); i++ {
		if b.Get(i) {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}

func refFirstSet(b BitVec) int {
	for i := 0; i < b.Len(); i++ {
		if b.Get(i) {
			return i
		}
	}
	return -1
}

func refWindow(b BitVec, off, m int) BitVec {
	w := New(m)
	for i := 0; i < m; i++ {
		if b.Get(off + i) {
			w.Set(i, true)
		}
	}
	return w
}

func TestDifferentialScanKernels(t *testing.T) {
	rng := &splitmix{state: 0xbeef}
	for _, n := range testWidths {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			for vi, v := range testVectors(n, rng) {
				if got, want := v.TrailingZeros(), refTrailingZeros(v); got != want {
					t.Fatalf("vec %d: TrailingZeros = %d, want %d", vi, got, want)
				}
				if got, want := v.LeadingZeros(), refLeadingZeros(v); got != want {
					t.Fatalf("vec %d: LeadingZeros = %d, want %d", vi, got, want)
				}
				if got, want := v.FirstSet(), refFirstSet(v); got != want {
					t.Fatalf("vec %d: FirstSet = %d, want %d", vi, got, want)
				}
				for _, m := range []int{0, 1, n / 2, n - 1, n} {
					if m < 0 {
						continue
					}
					if got, want := v.HasZeroPrefix(m), refHasZeroPrefix(v, m); got != want {
						t.Fatalf("vec %d: HasZeroPrefix(%d) = %v, want %v", vi, m, got, want)
					}
					if got, want := v.Prefix(m), refPrefix(v, m); !got.Equal(want) {
						t.Fatalf("vec %d: Prefix(%d) = %v, want %v", vi, m, got, want)
					}
				}
				if got, want := v.Fraction(), refFraction(v); got != want {
					t.Fatalf("vec %d: Fraction = %v, want %v", vi, got, want)
				}
				if got, want := v.String(), refString(v); got != want {
					t.Fatalf("vec %d: String = %q, want %q", vi, got, want)
				}
			}
		})
	}
}

func TestDifferentialCmp(t *testing.T) {
	rng := &splitmix{state: 0xcafe}
	for _, n := range testWidths {
		vs := testVectors(n, rng)
		// Add near-identical pairs differing in exactly one position.
		for _, i := range []int{0, n / 2, n - 1, 63, 64, 127, 128} {
			if i < 0 || i >= n {
				continue
			}
			a := Random(n, rng.next)
			b := a.Clone()
			b.Flip(i)
			vs = append(vs, a, b)
		}
		for _, a := range vs {
			for _, b := range vs {
				if got, want := a.Cmp(b), refCmp(a, b); got != want {
					t.Fatalf("n=%d: Cmp(%v, %v) = %d, want %d", n, a, b, got, want)
				}
				if got, want := a.Less(b), refCmp(a, b) < 0; got != want {
					t.Fatalf("n=%d: Less(%v, %v) = %v, want %v", n, a, b, got, want)
				}
			}
		}
	}
}

func TestDifferentialUint64(t *testing.T) {
	rng := &splitmix{state: 0xd00d}
	for _, n := range []int{1, 2, 7, 31, 32, 33, 53, 63, 64} {
		for _, v := range testVectors(n, rng) {
			if got, want := v.Uint64(), refUint64(v); got != want {
				t.Fatalf("n=%d: Uint64(%v) = %d, want %d", n, v, got, want)
			}
		}
		for k := 0; k < 32; k++ {
			raw := rng.next()
			if n < 64 {
				raw &= (1 << uint(n)) - 1
			}
			got := FromUint64(raw, n)
			want := refFromUint64(raw, n)
			if !got.Equal(want) {
				t.Fatalf("n=%d: FromUint64(%d) = %v, want %v", n, raw, got, want)
			}
			if got.Uint64() != raw {
				t.Fatalf("n=%d: Uint64 round-trip of %d gave %d", n, raw, got.Uint64())
			}
			// SetUint64 must match FromUint64 and fully overwrite.
			s := Random(n, rng.next)
			s.SetUint64(raw)
			if !s.Equal(want) {
				t.Fatalf("n=%d: SetUint64(%d) = %v, want %v", n, raw, s, want)
			}
		}
	}
}

func TestDifferentialIntoVariants(t *testing.T) {
	rng := &splitmix{state: 0xfeed}
	for _, n := range testWidths {
		for k := 0; k < 16; k++ {
			a := Random(n, rng.next)
			b := Random(n, rng.next)
			want := a.Xor(b)
			dst := Random(n, rng.next) // stale contents must be overwritten
			a.XorInto(b, dst)
			if !dst.Equal(want) {
				t.Fatalf("n=%d: XorInto mismatch", n)
			}
			// Aliased destination.
			alias := a.Clone()
			alias.XorInto(b, alias)
			if !alias.Equal(want) {
				t.Fatalf("n=%d: aliased XorInto mismatch", n)
			}

			m := int(rng.next() % uint64(n+1))
			pdst := Random(m, rng.next)
			a.PrefixInto(pdst)
			if want := refPrefix(a, m); !pdst.Equal(want) {
				t.Fatalf("n=%d: PrefixInto(%d) mismatch", n, m)
			}

			cdst := Random(n, rng.next)
			cdst.CopyFrom(a)
			if !cdst.Equal(a) {
				t.Fatalf("n=%d: CopyFrom mismatch", n)
			}

			off := int(rng.next() % uint64(n))
			wlen := int(rng.next() % uint64(n-off+1))
			wdst := Random(wlen, rng.next)
			a.WindowInto(off, wdst)
			if want := refWindow(a, off, wlen); !wdst.Equal(want) {
				t.Fatalf("n=%d: WindowInto(%d, len %d) mismatch", n, off, wlen)
			}
		}
	}
}

func TestDifferentialFlip(t *testing.T) {
	rng := &splitmix{state: 0xf00d}
	for _, n := range testWidths {
		v := Random(n, rng.next)
		ref := v.Clone()
		for _, i := range []int{0, n - 1, n / 2, 63, 64, 127, 128} {
			if i < 0 || i >= n {
				continue
			}
			v.Flip(i)
			ref.Set(i, !ref.Get(i))
			if !v.Equal(ref) {
				t.Fatalf("n=%d: Flip(%d) mismatch", n, i)
			}
		}
	}
}

func TestFingerprintExactForNarrowWidths(t *testing.T) {
	rng := &splitmix{state: 0xace}
	// ≤ 128 bits: fingerprints must be exact, i.e. injective per width.
	for _, n := range []int{1, 63, 64, 65, 127, 128} {
		seen := map[Fingerprint]string{}
		vs := testVectors(n, rng)
		for _, i := range []int{0, n - 1} {
			v := New(n)
			if i >= 0 {
				v.Set(i, true)
			}
			vs = append(vs, v)
		}
		for _, v := range vs {
			fp := v.Fingerprint()
			if prev, ok := seen[fp]; ok && prev != v.String() {
				t.Fatalf("n=%d: fingerprint collision between %s and %s", n, prev, v.String())
			}
			seen[fp] = v.String()
			if fp != v.Clone().Fingerprint() {
				t.Fatalf("n=%d: fingerprint not deterministic", n)
			}
		}
	}
	// Distinct widths must never share a fingerprint (width is part of it).
	if New(63).Fingerprint() == New(64).Fingerprint() {
		t.Fatal("fingerprints of different widths compare equal")
	}
}

func TestFingerprintWideVectors(t *testing.T) {
	rng := &splitmix{state: 0xbead}
	// > 128 bits: digest path. Equal vectors agree; a large random sample
	// plus single-bit flips must not collide.
	for _, n := range []int{129, 192, 320} {
		seen := map[Fingerprint]string{}
		check := func(v BitVec) {
			fp := v.Fingerprint()
			if fp != v.Clone().Fingerprint() {
				t.Fatalf("n=%d: fingerprint of equal vectors differs", n)
			}
			if prev, ok := seen[fp]; ok && prev != v.String() {
				t.Fatalf("n=%d: fingerprint collision between %s and %s", n, prev, v.String())
			}
			seen[fp] = v.String()
		}
		base := Random(n, rng.next)
		check(base)
		for i := 0; i < n; i++ {
			v := base.Clone()
			v.Flip(i)
			check(v)
		}
		for k := 0; k < 512; k++ {
			check(Random(n, rng.next))
		}
	}
}

func TestSlabVectorsIndependent(t *testing.T) {
	vs := NewSlab(65, 4)
	if len(vs) != 4 {
		t.Fatalf("slab size %d, want 4", len(vs))
	}
	for i, v := range vs {
		if v.Len() != 65 || !v.IsZero() {
			t.Fatalf("slab vector %d not zero width-65", i)
		}
	}
	vs[1].Set(64, true)
	for i, v := range vs {
		if i != 1 && !v.IsZero() {
			t.Fatalf("write to slab vector 1 leaked into vector %d", i)
		}
	}
	if !vs[1].Get(64) {
		t.Fatal("slab vector write lost")
	}
	// Appending to one vector's words (via Clone growth paths) must not be
	// possible: capacities are clipped per row.
	if cap(vs[0].Words()) != len(vs[0].Words()) {
		t.Fatal("slab rows must have clipped capacity")
	}
}

func TestFractionMatchesLexOrder(t *testing.T) {
	rng := &splitmix{state: 0x50de}
	n := 53
	var prev *BitVec
	_ = prev
	vs := testVectors(n, rng)
	for i := 0; i < len(vs); i++ {
		for j := 0; j < len(vs); j++ {
			a, b := vs[i], vs[j]
			if a.Less(b) && a.Fraction() > b.Fraction() {
				t.Fatalf("lex order and fraction order disagree: %v vs %v", a, b)
			}
		}
	}
	if got := New(0).Fraction(); got != 0 || math.IsNaN(got) {
		t.Fatalf("zero-width fraction = %v", got)
	}
}
