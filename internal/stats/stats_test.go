package stats

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGUniformish(t *testing.T) {
	// Coarse sanity: bucket counts of Intn(8) within 20% of expectation.
	r := NewRNG(7)
	const n, buckets = 80000, 8
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/buckets) > 0.2*n/buckets {
			t.Fatalf("bucket %d count %d far from %d", i, c, n/buckets)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1}, 1},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{5, 5, 5}, 5},
	}
	for _, c := range cases {
		orig := append([]float64(nil), c.in...)
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
		for i := range orig {
			if c.in[i] != orig[i] {
				t.Error("Median mutated its input")
			}
		}
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2.138089935) > 1e-6 {
		t.Errorf("StdDev = %v", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("StdDev of singleton should be 0")
	}
}

func TestWithinFactor(t *testing.T) {
	cases := []struct {
		est, truth, eps float64
		want            bool
	}{
		{100, 100, 0.1, true},
		{111, 100, 0.1, false},
		{110, 100, 0.1, true},
		{90, 100, 0.1, false}, // 100/1.1 ≈ 90.909
		{91, 100, 0.1, true},
		{0, 0, 0.5, true},
		{1, 0, 0.5, false},
	}
	for _, c := range cases {
		if got := WithinFactor(c.est, c.truth, c.eps); got != c.want {
			t.Errorf("WithinFactor(%v,%v,%v) = %v, want %v", c.est, c.truth, c.eps, got, c.want)
		}
	}
}

func TestSuccessRate(t *testing.T) {
	if got := SuccessRate([]bool{true, false, true, true}); got != 0.75 {
		t.Errorf("SuccessRate = %v, want 0.75", got)
	}
	if got := SuccessRate(nil); got != 0 {
		t.Errorf("SuccessRate(nil) = %v", got)
	}
}

func TestMedianInt(t *testing.T) {
	if got := MedianInt([]int{1, 9, 3}); got != 3 {
		t.Errorf("MedianInt = %v, want 3", got)
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Median empty": func() { Median(nil) },
		"Mean empty":   func() { Mean(nil) },
		"Intn zero":    func() { NewRNG(1).Intn(0) },
		"Uint64n zero": func() { NewRNG(1).Uint64n(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
