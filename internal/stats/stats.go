// Package stats provides the deterministic randomness source and the small
// statistical helpers (medians, accuracy checks) shared by the counting and
// streaming algorithms and the experiment harness.
package stats

import (
	"math"
	"sort"
)

// RNG is a splitmix64 pseudo-random generator. It is deterministic given a
// seed, cheap, and has no shared state, which keeps every experiment in the
// repository reproducible. Not safe for concurrent use; derive per-goroutine
// generators with Split.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next pseudo-random value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). n must be positive.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with zero bound")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns a uniform bit.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Split derives an independent generator; the parent advances once.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// Median returns the median of xs (mean of the middle pair for even
// lengths). It does not modify xs. Panics on empty input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: median of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Mean returns the arithmetic mean. Panics on empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: mean of empty slice")
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n−1 denominator); zero for
// fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// WithinFactor reports whether est lies in [truth/(1+eps), truth*(1+eps)],
// the paper's (ε, δ) accuracy band. A truth of zero requires est zero.
func WithinFactor(est, truth, eps float64) bool {
	if truth == 0 {
		return est == 0
	}
	return est >= truth/(1+eps) && est <= truth*(1+eps)
}

// SuccessRate returns the fraction of trials for which ok is true.
func SuccessRate(oks []bool) float64 {
	if len(oks) == 0 {
		return 0
	}
	c := 0
	for _, ok := range oks {
		if ok {
			c++
		}
	}
	return float64(c) / float64(len(oks))
}

// CouponEstimate is the Lemma 3 estimator shared by the Estimation-based
// model counter and F0 sketch: with hits out of total hash functions
// reaching r trailing zeros, the distinct-count estimate is
// ln(1 − hits/total) / ln(1 − 2^−r). Returns +Inf when every hash hit.
func CouponEstimate(hits, total, r int) float64 {
	frac := float64(hits) / float64(total)
	if frac >= 1 {
		return math.Inf(1)
	}
	return math.Log(1-frac) / math.Log(1-math.Pow(2, float64(-r)))
}

// MedianInt returns the median of integer samples as a float64.
func MedianInt(xs []int) float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Median(fs)
}
