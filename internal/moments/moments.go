// Package moments explores the paper's §6 "Higher Moments" direction:
// frequency-moment estimation over structured set streams. Stream items
// are succinct sets (term cubes or affine spaces) over {0,1}^n; the
// frequency of x is the number of items whose set contains it, and
//
//	F1 = Σ_x freq(x) = Σ_i |S_i|         (exact, closed form per item)
//	F2 = Σ_x freq(x)²                     (estimated, AMS-style)
//
// The AMS sketch needs Σ_{x∈S} s(x) for ±1 hashes s. For linear sign
// hashes s(x) = (−1)^{⟨a,x⟩⊕b}, that sum has a closed form over both item
// kinds — a cube sums to ±|S| when a's free-variable restriction vanishes
// and to 0 otherwise; an affine space sums to ±|S| when a is orthogonal to
// its null space and to 0 otherwise — so items are absorbed in poly(n)
// time regardless of their cardinality, exactly the structured-stream
// economics of Section 5.
//
// Honesty note (why the paper calls this future work): linear sign hashes
// are pairwise independent, which makes the estimator unbiased, but the
// classical AMS variance bound needs 4-wise independence — and no 4-wise
// family is known whose cube sums stay closed-form. The sketch compensates
// with medians of larger means and is validated empirically against brute
// force in the tests; tightening this is the open problem.
package moments

import (
	"mcf0/internal/bitvec"
	"mcf0/internal/formula"
	"mcf0/internal/gf2"
	"mcf0/internal/stats"
)

// SignHash is the linear ±1 hash s(x) = (−1)^{⟨a,x⟩⊕b}.
type SignHash struct {
	a bitvec.BitVec
	b bool
}

// NewSignHash draws a sign hash over n-bit inputs.
func NewSignHash(n int, rng *stats.RNG) SignHash {
	return SignHash{a: bitvec.Random(n, rng.Uint64), b: rng.Bool()}
}

// Eval returns s(x) ∈ {+1, −1}.
func (s SignHash) Eval(x bitvec.BitVec) int {
	if s.a.Dot(x) != s.b {
		return 1
	}
	return -1
}

// CubeSum returns Σ_{x ⊨ t} s(x) for a term cube over n variables, in
// closed form. A contradictory term sums to 0.
func (s SignHash) CubeSum(n int, t formula.Term) float64 {
	norm, ok := t.Normalize()
	if !ok {
		return 0
	}
	fixed, val := formula.TermFixed(n, norm)
	// If a touches any free variable the ± contributions cancel.
	freeBits := 0
	for i := 0; i < n; i++ {
		if !fixed[i] {
			if s.a.Get(i) {
				return 0
			}
			freeBits++
		}
	}
	sign := 1.0
	if s.a.Dot(val) != s.b {
		// ⟨a,x⟩ = ⟨a,val⟩ for every x in the cube (a avoids free vars).
	} else {
		sign = -1
	}
	size := 1.0
	for i := 0; i < freeBits; i++ {
		size *= 2
	}
	return sign * size
}

// AffineSum returns Σ_{x : Ax=b} s(x) in closed form: zero when a has a
// component along the null space, ±|Sol| otherwise (and 0 for an
// inconsistent system).
func (s SignHash) AffineSum(a *gf2.Matrix, b bitvec.BitVec) float64 {
	sys := gf2.NewSystem(a.Cols())
	for i := 0; i < a.Rows(); i++ {
		sys.Add(a.Row(i), b.Get(i))
	}
	x0, ok := sys.Solve()
	if !ok {
		return 0
	}
	size := 1.0
	for _, nb := range sys.NullBasis() {
		if s.a.Dot(nb) {
			return 0 // a not orthogonal to the solution space's directions
		}
		size *= 2
	}
	if s.a.Dot(x0) != s.b {
		return size
	}
	return -size
}

// F2Sketch is an AMS-style second-moment sketch over structured items:
// a t × b grid of linear counters, estimated as the median over rows of
// the mean of squared counters.
type F2Sketch struct {
	n  int
	hs [][]SignHash
	z  [][]float64
	f1 float64
}

// NewF2 builds a sketch with t median rows of b mean columns.
func NewF2(n, t, b int, rng *stats.RNG) *F2Sketch {
	if t < 1 || b < 1 {
		panic("moments: need at least one counter")
	}
	sk := &F2Sketch{n: n}
	for i := 0; i < t; i++ {
		var hrow []SignHash
		for j := 0; j < b; j++ {
			hrow = append(hrow, NewSignHash(n, rng))
		}
		sk.hs = append(sk.hs, hrow)
		sk.z = append(sk.z, make([]float64, b))
	}
	return sk
}

// ProcessTerm absorbs one cube item (the set of assignments satisfying t).
func (sk *F2Sketch) ProcessTerm(t formula.Term) {
	norm, ok := t.Normalize()
	if !ok {
		return
	}
	free := sk.n - len(norm)
	size := 1.0
	for i := 0; i < free; i++ {
		size *= 2
	}
	sk.f1 += size
	for i := range sk.hs {
		for j, h := range sk.hs[i] {
			sk.z[i][j] += h.CubeSum(sk.n, norm)
		}
	}
}

// ProcessAffine absorbs one affine item {x : Ax = b}.
func (sk *F2Sketch) ProcessAffine(a *gf2.Matrix, b bitvec.BitVec) {
	sys := gf2.NewSystem(a.Cols())
	for i := 0; i < a.Rows(); i++ {
		sys.Add(a.Row(i), b.Get(i))
	}
	if _, ok := sys.Solve(); !ok {
		return
	}
	size := 1.0
	for range sys.NullBasis() {
		size *= 2
	}
	sk.f1 += size
	for i := range sk.hs {
		for j, h := range sk.hs[i] {
			sk.z[i][j] += h.AffineSum(a, b)
		}
	}
}

// F1 returns the exact first moment Σ_i |S_i|.
func (sk *F2Sketch) F1() float64 { return sk.f1 }

// F2 returns the second-moment estimate.
func (sk *F2Sketch) F2() float64 {
	means := make([]float64, len(sk.z))
	for i, row := range sk.z {
		var sum float64
		for _, zz := range row {
			sum += zz * zz
		}
		means[i] = sum / float64(len(row))
	}
	return stats.Median(means)
}
