package moments

import (
	"math"
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/formula"
	"mcf0/internal/gf2"
	"mcf0/internal/stats"
)

func TestCubeSumMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(401)
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(7)
		w := rng.Intn(n + 1)
		var tm formula.Term
		perm := rng.Intn(2)
		_ = perm
		seen := map[int]bool{}
		for len(tm) < w {
			v := rng.Intn(n)
			if seen[v] {
				continue
			}
			seen[v] = true
			tm = append(tm, formula.Lit{Var: v, Neg: rng.Bool()})
		}
		s := NewSignHash(n, rng)
		want := 0.0
		for v := uint64(0); v < 1<<uint(n); v++ {
			x := bitvec.FromUint64(v, n)
			if tm.Eval(x) {
				want += float64(s.Eval(x))
			}
		}
		if got := s.CubeSum(n, tm); got != want {
			t.Fatalf("trial %d (n=%d w=%d): CubeSum=%g brute=%g", trial, n, w, got, want)
		}
	}
}

func TestCubeSumContradiction(t *testing.T) {
	s := NewSignHash(4, stats.NewRNG(1))
	tm := formula.Term{formula.Pos(0), formula.Negl(0)}
	if got := s.CubeSum(4, tm); got != 0 {
		t.Fatalf("contradictory cube sum = %g", got)
	}
}

func TestAffineSumMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(403)
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		rows := rng.Intn(n + 2)
		a := gf2.RandomMatrix(rows, n, rng.Uint64)
		b := bitvec.Random(rows, rng.Uint64)
		s := NewSignHash(n, rng)
		want := 0.0
		for v := uint64(0); v < 1<<uint(n); v++ {
			x := bitvec.FromUint64(v, n)
			if a.MulVec(x).Equal(b) {
				want += float64(s.Eval(x))
			}
		}
		if got := s.AffineSum(a, b); got != want {
			t.Fatalf("trial %d: AffineSum=%g brute=%g", trial, got, want)
		}
	}
}

// bruteF computes exact F1 and F2 of a cube-item stream.
func bruteF(n int, items []formula.Term) (f1, f2 float64) {
	freq := map[uint64]int{}
	for _, tm := range items {
		for v := uint64(0); v < 1<<uint(n); v++ {
			if tm.Eval(bitvec.FromUint64(v, n)) {
				freq[v]++
			}
		}
	}
	for _, f := range freq {
		f1 += float64(f)
		f2 += float64(f) * float64(f)
	}
	return f1, f2
}

func TestF1Exact(t *testing.T) {
	rng := stats.NewRNG(405)
	n := 8
	sk := NewF2(n, 3, 8, rng)
	var items []formula.Term
	for i := 0; i < 10; i++ {
		w := 1 + rng.Intn(4)
		var tm formula.Term
		seen := map[int]bool{}
		for len(tm) < w {
			v := rng.Intn(n)
			if seen[v] {
				continue
			}
			seen[v] = true
			tm = append(tm, formula.Lit{Var: v, Neg: rng.Bool()})
		}
		items = append(items, tm)
		sk.ProcessTerm(tm)
	}
	wantF1, _ := bruteF(n, items)
	if sk.F1() != wantF1 {
		t.Fatalf("F1 = %g, want %g", sk.F1(), wantF1)
	}
}

// TestF2Unbiased checks the estimator across independent sketches: the
// mean of many estimates must approach the true F2 (unbiasedness needs
// only pairwise independence), and the median-of-means single estimate
// must land within a loose band.
func TestF2Unbiased(t *testing.T) {
	rng := stats.NewRNG(407)
	n := 8
	var items []formula.Term
	for i := 0; i < 12; i++ {
		// Wider terms → lower-dimensional cubes → tamer Z² tails (the
		// pairwise-vs-4-wise variance gap the package doc discusses).
		w := 4 + rng.Intn(3)
		var tm formula.Term
		seen := map[int]bool{}
		for len(tm) < w {
			v := rng.Intn(n)
			if seen[v] {
				continue
			}
			seen[v] = true
			tm = append(tm, formula.Lit{Var: v, Neg: rng.Bool()})
		}
		items = append(items, tm)
	}
	_, wantF2 := bruteF(n, items)
	// Unbiasedness: a t=1 sketch's output IS the mean of b raw Z²
	// counters, so the grand mean over many sketches must approach F2.
	var raw []float64
	const sketches = 40
	for s := 0; s < sketches; s++ {
		sk := NewF2(n, 1, 32, stats.NewRNG(uint64(500+s)))
		for _, tm := range items {
			sk.ProcessTerm(tm)
		}
		raw = append(raw, sk.F2())
	}
	mean := stats.Mean(raw)
	if math.Abs(mean-wantF2) > 0.35*wantF2 {
		t.Fatalf("grand mean of %d sketch means %g far from F2=%g", sketches, mean, wantF2)
	}
	// Median-of-means single-shot estimates must land in a loose band.
	var ests []float64
	for s := 0; s < 10; s++ {
		sk := NewF2(n, 5, 64, stats.NewRNG(uint64(900+s)))
		for _, tm := range items {
			sk.ProcessTerm(tm)
		}
		ests = append(ests, sk.F2())
	}
	med := stats.Median(ests)
	if med < wantF2/3 || med > 3*wantF2 {
		t.Fatalf("median estimate %g outside factor-3 band of %g", med, wantF2)
	}
}

func TestF2AffineItems(t *testing.T) {
	rng := stats.NewRNG(409)
	n := 6
	type item struct {
		a *gf2.Matrix
		b bitvec.BitVec
	}
	var items []item
	freq := map[uint64]int{}
	for i := 0; i < 8; i++ {
		rows := 1 + rng.Intn(3)
		a := gf2.RandomMatrix(rows, n, rng.Uint64)
		b := bitvec.Random(rows, rng.Uint64)
		items = append(items, item{a, b})
		for v := uint64(0); v < 1<<uint(n); v++ {
			x := bitvec.FromUint64(v, n)
			if a.MulVec(x).Equal(b) {
				freq[v]++
			}
		}
	}
	var wantF1, wantF2 float64
	for _, f := range freq {
		wantF1 += float64(f)
		wantF2 += float64(f) * float64(f)
	}
	// Affine items of co-dimension r zero out all but a 2^{-(n-r)} fraction
	// of sign hashes, so Z² is heavily skewed — the very variance issue
	// the package doc flags. Wide means keep the median meaningful.
	sk := NewF2(n, 5, 512, stats.NewRNG(3))
	for _, it := range items {
		sk.ProcessAffine(it.a, it.b)
	}
	if sk.F1() != wantF1 {
		t.Fatalf("F1 = %g, want %g", sk.F1(), wantF1)
	}
	if est := sk.F2(); est < wantF2/4 || est > 4*wantF2 {
		t.Fatalf("F2 estimate %g outside factor-4 band of %g", est, wantF2)
	}
}
