// Package faultinject is the repo's seeded, fully deterministic
// fault-injection framework: a Chaos policy whose every decision is a
// pure function of (seed, event index), rendered at three seams of the
// f0d serve path — an http.RoundTripper that injects latency spikes,
// connection resets, and truncated or corrupted response bodies on the
// client side; a net.Listener wrapper that aborts accepted connections;
// and a disk-write hook (state.DiskHook-compatible) that fails snapshot
// writes transiently by rate or permanently on demand.
//
// Determinism contract: the fault *sequence* is a pure function of the
// policy seed — replaying a workload with the same seed draws the same
// decisions in the same order. Which concurrent request receives which
// decision depends on scheduling, and deliberately so: the resilience
// layer under test must make ANY assignment of faults harmless, which is
// exactly what determinism invariant 9 (ARCHITECTURE.md) demands — with
// retries enabled, a fault-injected run's final estimate is bit-identical
// to the fault-free run, because F0 sketch state is a pure function of
// the element set and duplicate delivery is therefore free.
//
// Every injected fault is counted by kind (Injected), so tests and the
// chaos CI smoke can attribute observed errors: any failure not covered
// by an injected-fault counter is a real bug.
package faultinject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// KindNone is the no-fault decision (not counted).
	KindNone Kind = iota
	// KindLatency delays the event by a deterministic fraction of
	// Config.MaxLatency.
	KindLatency
	// KindReset aborts the connection — before the request is sent
	// (delivered zero times) or after (delivered, response lost), chosen
	// by a deterministic secondary draw.
	KindReset
	// KindTruncate cuts the response body in half, leaving the declared
	// Content-Length intact so readers hit an unexpected EOF.
	KindTruncate
	// KindCorrupt overwrites the leading response-body bytes with 0xFF,
	// which can never begin valid JSON (or valid UTF-8).
	KindCorrupt
	// KindDisk fails a snapshot disk write (transiently by Config.Disk
	// rate, or permanently after BreakDisk).
	KindDisk

	numKinds
)

// String names the fault kind (the Injected map's keys).
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindLatency:
		return "latency"
	case KindReset:
		return "reset"
	case KindTruncate:
		return "truncate"
	case KindCorrupt:
		return "corrupt"
	case KindDisk:
		return "disk"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Config parameterises a Chaos policy. Rates are per-event probabilities
// in [0, 1]; an event is one HTTP round trip, one accepted connection,
// or one disk-write phase, each drawing from its own decision stream.
type Config struct {
	// Seed fixes every decision; equal seeds replay equal fault
	// sequences.
	Seed uint64
	// Latency is the rate of injected delays; MaxLatency bounds them
	// (0 = 5ms). The actual delay is a deterministic fraction of
	// MaxLatency drawn per event.
	Latency    float64
	MaxLatency time.Duration
	// Reset is the rate of injected connection resets on the HTTP path.
	Reset float64
	// Truncate is the rate of truncated response bodies.
	Truncate float64
	// Corrupt is the rate of corrupted response bodies.
	Corrupt float64
	// Disk is the rate of transient disk-write failures injected by the
	// DiskHook (independent of BreakDisk's permanent mode).
	Disk float64
	// ConnReset is the rate of aborted connections injected by the
	// Listener wrapper (0 disables; separate from Reset so HTTP-level
	// and listener-level chaos compose independently).
	ConnReset float64
}

func (c Config) maxLatency() time.Duration {
	if c.MaxLatency > 0 {
		return c.MaxLatency
	}
	return 5 * time.Millisecond
}

func (c Config) validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"latency", c.Latency}, {"reset", c.Reset}, {"truncate", c.Truncate},
		{"corrupt", c.Corrupt}, {"disk", c.Disk}, {"conn-reset", c.ConnReset}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faultinject: %s rate %v outside [0,1]", r.name, r.v)
		}
	}
	if c.Latency+c.Reset+c.Truncate+c.Corrupt > 1 {
		return fmt.Errorf("faultinject: HTTP fault rates sum to %v > 1",
			c.Latency+c.Reset+c.Truncate+c.Corrupt)
	}
	return nil
}

// Chaos renders a Config into the three injection seams. One instance
// may back any number of RoundTrippers, Listeners, and DiskHooks; each
// seam consumes its own decision stream (salted off the shared seed) so
// adding chaos on one seam never perturbs another's sequence.
type Chaos struct {
	cfg Config

	httpIdx atomic.Uint64
	connIdx atomic.Uint64
	diskIdx atomic.Uint64

	diskBroken atomic.Bool
	counts     [numKinds]atomic.Uint64
}

// New builds a Chaos policy; invalid rates are a programming error and
// are rejected loudly.
func New(cfg Config) (*Chaos, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Chaos{cfg: cfg}, nil
}

// MustNew is New for tests and wiring where the config is a literal.
func MustNew(cfg Config) *Chaos {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// U64At is the deterministic decision kernel: a splitmix64-style mix of
// (seed, index), pure and stateless. Exported so other packages (the
// loadgen retry jitter, the distributed flaky-transport tests) can share
// the same reproducible stream without importing a second RNG.
func U64At(seed, index uint64) uint64 {
	x := seed + (index+1)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// FracAt maps U64At into [0, 1) with 53-bit precision.
func FracAt(seed, index uint64) float64 {
	return float64(U64At(seed, index)>>11) / float64(1<<53)
}

// Stream salts keep the three decision streams independent.
const (
	saltHTTP = 0x68747470 // "http"
	saltConn = 0x636f6e6e // "conn"
	saltDisk = 0x6469736b // "disk"
)

// decision is one rendered draw: the chosen fault and a secondary
// fraction for fault-local choices (latency magnitude, reset phase).
type decision struct {
	kind Kind
	frac float64
}

// httpDecision draws the next HTTP-path decision.
func (c *Chaos) httpDecision() decision {
	i := c.httpIdx.Add(1) - 1
	p := FracAt(c.cfg.Seed^saltHTTP, 2*i)
	frac := FracAt(c.cfg.Seed^saltHTTP, 2*i+1)
	cum := c.cfg.Latency
	if p < cum {
		return decision{KindLatency, frac}
	}
	if cum += c.cfg.Reset; p < cum {
		return decision{KindReset, frac}
	}
	if cum += c.cfg.Truncate; p < cum {
		return decision{KindTruncate, frac}
	}
	if cum += c.cfg.Corrupt; p < cum {
		return decision{KindCorrupt, frac}
	}
	return decision{KindNone, frac}
}

// connDecision draws the next listener-path decision.
func (c *Chaos) connDecision() decision {
	i := c.connIdx.Add(1) - 1
	p := FracAt(c.cfg.Seed^saltConn, 2*i)
	frac := FracAt(c.cfg.Seed^saltConn, 2*i+1)
	if p < c.cfg.ConnReset {
		return decision{KindReset, frac}
	}
	return decision{KindNone, frac}
}

// diskDecision draws the next disk-path decision.
func (c *Chaos) diskDecision() decision {
	i := c.diskIdx.Add(1) - 1
	if p := FracAt(c.cfg.Seed^saltDisk, i); p < c.cfg.Disk {
		return decision{KindDisk, p}
	}
	return decision{KindNone, 0}
}

func (c *Chaos) count(k Kind) { c.counts[k].Add(1) }

// Injected returns how many faults of each kind have been injected so
// far (kinds with zero injections are omitted).
func (c *Chaos) Injected() map[string]uint64 {
	out := make(map[string]uint64)
	for k := Kind(1); k < numKinds; k++ {
		if n := c.counts[k].Load(); n > 0 {
			out[k.String()] = n
		}
	}
	return out
}

// InjectedTotal returns the total injected-fault count across kinds.
func (c *Chaos) InjectedTotal() uint64 {
	var n uint64
	for k := Kind(1); k < numKinds; k++ {
		n += c.counts[k].Load()
	}
	return n
}

// BreakDisk switches the DiskHook to permanent-failure mode: every disk
// write fails until HealDisk. This is the degraded-mode lever — it opens
// the snapshot circuit breaker deterministically, unlike the rate-driven
// transient failures.
func (c *Chaos) BreakDisk() { c.diskBroken.Store(true) }

// HealDisk ends permanent-failure mode; rate-driven transient failures
// (Config.Disk) continue to apply.
func (c *Chaos) HealDisk() { c.diskBroken.Store(false) }

// ErrInjected is the sentinel wrapped by every injected error, so
// resilience code and tests can tell injected faults from real ones.
var ErrInjected = errors.New("faultinject: injected fault")

// DiskHook returns a hook compatible with the state package's snapshot
// write seam (func(path, phase string) error): it fails the write with a
// wrapped ErrInjected either permanently (BreakDisk) or transiently at
// the Config.Disk rate, and passes otherwise.
func (c *Chaos) DiskHook() func(path, phase string) error {
	return func(path, phase string) error {
		if c.diskBroken.Load() {
			c.count(KindDisk)
			return fmt.Errorf("%w: permanent disk failure (%s %s)", ErrInjected, phase, path)
		}
		if d := c.diskDecision(); d.kind == KindDisk {
			c.count(KindDisk)
			return fmt.Errorf("%w: transient disk failure (%s %s)", ErrInjected, phase, path)
		}
		return nil
	}
}

// ParseSpec parses the CLI chaos spec: comma-separated key=value pairs
// with keys seed, latency, max-latency, reset, truncate, corrupt, disk,
// conn-reset. Rates are probabilities in [0,1]; max-latency is a Go
// duration. Example:
//
//	seed=7,latency=0.05,max-latency=2ms,reset=0.06,truncate=0.04,corrupt=0.04
func ParseSpec(s string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(s) == "" {
		return cfg, fmt.Errorf("faultinject: empty chaos spec")
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return cfg, fmt.Errorf("faultinject: spec term %q is not key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "seed":
			v, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("faultinject: seed %q: %v", val, err)
			}
			cfg.Seed = v
		case "max-latency":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return cfg, fmt.Errorf("faultinject: max-latency %q is not a non-negative duration", val)
			}
			cfg.MaxLatency = d
		case "latency", "reset", "truncate", "corrupt", "disk", "conn-reset":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return cfg, fmt.Errorf("faultinject: rate %s=%q is not a number", key, val)
			}
			switch key {
			case "latency":
				cfg.Latency = v
			case "reset":
				cfg.Reset = v
			case "truncate":
				cfg.Truncate = v
			case "corrupt":
				cfg.Corrupt = v
			case "disk":
				cfg.Disk = v
			case "conn-reset":
				cfg.ConnReset = v
			}
		default:
			return cfg, fmt.Errorf("faultinject: unknown spec key %q", key)
		}
	}
	if err := cfg.validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}
