package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestDecisionKernelPure: U64At and FracAt are pure functions of
// (seed, index) — the determinism the whole framework rests on.
func TestDecisionKernelPure(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, ^uint64(0)} {
		for i := uint64(0); i < 100; i++ {
			if U64At(seed, i) != U64At(seed, i) {
				t.Fatalf("U64At(%d,%d) not stable", seed, i)
			}
			f := FracAt(seed, i)
			if f < 0 || f >= 1 {
				t.Fatalf("FracAt(%d,%d) = %v outside [0,1)", seed, i, f)
			}
		}
	}
	// Different seeds must diverge somewhere early.
	same := 0
	for i := uint64(0); i < 64; i++ {
		if U64At(1, i) == U64At(2, i) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collide on %d/64 draws", same)
	}
}

// TestFaultSequenceDeterministic: two same-seed policies draw identical
// decision sequences on every stream.
func TestFaultSequenceDeterministic(t *testing.T) {
	cfg := Config{Seed: 99, Latency: 0.2, Reset: 0.2, Truncate: 0.2, Corrupt: 0.2, Disk: 0.3, ConnReset: 0.3}
	a, b := MustNew(cfg), MustNew(cfg)
	for i := 0; i < 500; i++ {
		da, db := a.httpDecision(), b.httpDecision()
		if da != db {
			t.Fatalf("http decision %d: %v != %v", i, da, db)
		}
		if ca, cb := a.connDecision(), b.connDecision(); ca != cb {
			t.Fatalf("conn decision %d: %v != %v", i, ca, cb)
		}
		if ka, kb := a.diskDecision(), b.diskDecision(); ka != kb {
			t.Fatalf("disk decision %d: %v != %v", i, ka, kb)
		}
	}
	// All configured kinds must actually occur at these rates within 500
	// draws (this is deterministic: fixed seed, fixed count).
	for _, k := range []Kind{KindLatency, KindReset, KindTruncate, KindCorrupt, KindDisk} {
		if a.counts[k].Load() != 0 {
			t.Fatalf("decisions alone must not count injections (kind %v)", k)
		}
	}
}

func chaosClient(t *testing.T, ts *httptest.Server, cfg Config) (*Chaos, *http.Client) {
	t.Helper()
	c := MustNew(cfg)
	client := &http.Client{Transport: c.RoundTripper(ts.Client().Transport)}
	return c, client
}

func newEchoServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"answer":"0123456789abcdef0123456789abcdef"}`)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestRoundTripperTruncate(t *testing.T) {
	ts := newEchoServer(t)
	c, client := chaosClient(t, ts, Config{Seed: 1, Truncate: 1})
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	full := len(`{"answer":"0123456789abcdef0123456789abcdef"}`)
	if len(body) != full/2 {
		t.Fatalf("truncated body is %d bytes, want %d", len(body), full/2)
	}
	if got := c.Injected()["truncate"]; got != 1 {
		t.Fatalf("truncate count = %d, want 1", got)
	}
}

func TestRoundTripperCorrupt(t *testing.T) {
	ts := newEchoServer(t)
	c, client := chaosClient(t, ts, Config{Seed: 1, Corrupt: 1})
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for i := 0; i < 8; i++ {
		if body[i] != 0xFF {
			t.Fatalf("byte %d = %#x, want 0xFF (corrupted prefix)", i, body[i])
		}
	}
	if got := c.Injected()["corrupt"]; got != 1 {
		t.Fatalf("corrupt count = %d, want 1", got)
	}
}

func TestRoundTripperReset(t *testing.T) {
	ts := newEchoServer(t)
	c, client := chaosClient(t, ts, Config{Seed: 1, Reset: 1})
	for i := 0; i < 8; i++ {
		_, err := client.Get(ts.URL)
		if err == nil {
			t.Fatalf("request %d: injected reset did not surface an error", i)
		}
		if !errors.Is(err, ErrInjected) && !strings.Contains(err.Error(), "injected") {
			t.Fatalf("request %d: error %v is not marked injected", i, err)
		}
	}
	if got := c.Injected()["reset"]; got != 8 {
		t.Fatalf("reset count = %d, want 8", got)
	}
}

func TestRoundTripperLatency(t *testing.T) {
	ts := newEchoServer(t)
	c, client := chaosClient(t, ts, Config{Seed: 1, Latency: 1, MaxLatency: time.Millisecond})
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := c.Injected()["latency"]; got != 1 {
		t.Fatalf("latency count = %d, want 1", got)
	}
}

func TestListenerAbort(t *testing.T) {
	inner := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("x", 4096))
	}))
	c := MustNew(Config{Seed: 3, ConnReset: 1})
	inner.Listener = c.Listener(inner.Listener)
	inner.Start()
	defer inner.Close()

	client := &http.Client{Timeout: 2 * time.Second}
	failed := 0
	for i := 0; i < 4; i++ {
		resp, err := client.Get(inner.URL)
		if err != nil {
			failed++
			continue
		}
		if _, err := io.ReadAll(resp.Body); err != nil {
			failed++
		}
		resp.Body.Close()
	}
	if failed == 0 {
		t.Fatal("conn-reset=1 listener never disturbed a request")
	}
	if c.Injected()["reset"] == 0 {
		t.Fatal("listener aborts not counted")
	}
}

func TestDiskHookTransientAndPermanent(t *testing.T) {
	c := MustNew(Config{Seed: 5, Disk: 1})
	hook := c.DiskHook()
	if err := hook("/x/y.snap", "write"); !errors.Is(err, ErrInjected) {
		t.Fatalf("disk=1 hook returned %v, want ErrInjected", err)
	}

	c2 := MustNew(Config{Seed: 5}) // zero transient rate
	hook2 := c2.DiskHook()
	if err := hook2("/x/y.snap", "write"); err != nil {
		t.Fatalf("healthy hook failed: %v", err)
	}
	c2.BreakDisk()
	for i := 0; i < 3; i++ {
		if err := hook2("/x/y.snap", "rename"); !errors.Is(err, ErrInjected) {
			t.Fatalf("broken disk pass %d: %v, want ErrInjected", i, err)
		}
	}
	c2.HealDisk()
	if err := hook2("/x/y.snap", "write"); err != nil {
		t.Fatalf("healed hook failed: %v", err)
	}
	if got := c2.Injected()["disk"]; got != 3 {
		t.Fatalf("disk count = %d, want 3", got)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7,latency=0.05,max-latency=2ms,reset=0.06,truncate=0.04,corrupt=0.04,disk=0.1,conn-reset=0.2")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, Latency: 0.05, MaxLatency: 2 * time.Millisecond,
		Reset: 0.06, Truncate: 0.04, Corrupt: 0.04, Disk: 0.1, ConnReset: 0.2}
	if cfg != want {
		t.Fatalf("ParseSpec = %+v, want %+v", cfg, want)
	}
	for _, bad := range []string{"", "latency", "latency=x", "latency=2", "bogus=1", "seed=-1", "max-latency=5"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}

// TestInjectedTotal: the attribution counters sum across kinds.
func TestInjectedTotal(t *testing.T) {
	c := MustNew(Config{Seed: 1})
	c.count(KindReset)
	c.count(KindDisk)
	c.count(KindDisk)
	if c.InjectedTotal() != 3 {
		t.Fatalf("InjectedTotal = %d, want 3", c.InjectedTotal())
	}
}
