package faultinject

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// resetError is the injected connection-reset error; it reports itself
// as a temporary network error, like a real RST would surface.
type resetError struct{ phase string }

func (e *resetError) Error() string {
	return "faultinject: injected fault: connection reset (" + e.phase + ")"
}
func (e *resetError) Unwrap() error   { return ErrInjected }
func (e *resetError) Timeout() bool   { return false }
func (e *resetError) Temporary() bool { return true }

var _ net.Error = (*resetError)(nil)

// RoundTripper wraps inner (nil = http.DefaultTransport) with the
// policy's HTTP-path faults. Each round trip draws one decision:
//
//   - latency: sleep frac·MaxLatency, then forward unchanged;
//   - reset (frac < ½): fail before the request is sent — the server
//     never sees it;
//   - reset (frac ≥ ½): forward the request, discard the server's
//     response, fail — the at-least-once generator: a retry after this
//     fault is a duplicate delivery, which set-semantics ingestion must
//     absorb without changing the estimate;
//   - truncate: forward, then cut the response body in half (headers,
//     including Content-Length, untouched);
//   - corrupt: forward, then overwrite the leading body bytes with 0xFF.
func (c *Chaos) RoundTripper(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &roundTripper{c: c, inner: inner}
}

type roundTripper struct {
	c     *Chaos
	inner http.RoundTripper
}

func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	d := rt.c.httpDecision()
	switch d.kind {
	case KindLatency:
		rt.c.count(KindLatency)
		time.Sleep(time.Duration(d.frac * float64(rt.c.cfg.maxLatency())))
	case KindReset:
		rt.c.count(KindReset)
		if d.frac < 0.5 {
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, &resetError{phase: "before send"}
		}
		resp, err := rt.inner.RoundTrip(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return nil, &resetError{phase: "after send"}
	case KindTruncate:
		resp, err := rt.inner.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		rt.c.count(KindTruncate)
		resp.Body = io.NopCloser(bytes.NewReader(body[:len(body)/2]))
		return resp, nil
	case KindCorrupt:
		resp, err := rt.inner.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		rt.c.count(KindCorrupt)
		for i := 0; i < len(body) && i < 8; i++ {
			body[i] = 0xFF
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		return resp, nil
	}
	return rt.inner.RoundTrip(req)
}

// Listener wraps inner with the policy's connection-level faults: at the
// Config.ConnReset rate an accepted connection is aborted after a
// deterministic byte budget — the peer sees a mid-stream close, the
// slow-loris / flaky-network shape the server's Read/Write timeouts and
// the client's retries must both survive.
func (c *Chaos) Listener(inner net.Listener) net.Listener {
	return &listener{c: c, Listener: inner}
}

type listener struct {
	net.Listener
	c *Chaos
}

func (l *listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return conn, err
	}
	if d := l.c.connDecision(); d.kind == KindReset {
		l.c.count(KindReset)
		ac := &abortConn{Conn: conn}
		// Budget: 1–512 bytes of traffic before the abort.
		ac.budget.Store(1 + int64(d.frac*511))
		return ac, nil
	}
	return conn, nil
}

// abortConn serves reads and writes until its byte budget is exhausted,
// then closes the underlying connection and fails every subsequent
// operation — a mid-stream abort from the peer's point of view. The
// budget is atomic because net/http reads and writes one connection from
// different goroutines.
type abortConn struct {
	net.Conn
	budget atomic.Int64
}

func (c *abortConn) Read(b []byte) (int, error) {
	budget := c.budget.Load()
	if budget <= 0 {
		c.Conn.Close()
		return 0, &resetError{phase: "conn read"}
	}
	if int64(len(b)) > budget {
		b = b[:budget]
	}
	n, err := c.Conn.Read(b)
	c.budget.Add(-int64(n))
	return n, err
}

func (c *abortConn) Write(b []byte) (int, error) {
	budget := c.budget.Load()
	if budget <= 0 {
		c.Conn.Close()
		return 0, &resetError{phase: "conn write"}
	}
	if int64(len(b)) > budget {
		n, err := c.Conn.Write(b[:budget])
		c.budget.Add(-int64(n))
		if err != nil {
			return n, err
		}
		c.Conn.Close()
		return n, &resetError{phase: "conn write"}
	}
	n, err := c.Conn.Write(b)
	c.budget.Add(-int64(n))
	return n, err
}
