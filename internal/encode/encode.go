// Package encode implements Proposition 3's NP oracle concretely: it
// Tseitin-encodes the evaluation of an s-wise independent polynomial hash
// h(x) = Σ cᵢ·x^i over GF(2^m) into CNF + XOR constraints, so the CDCL
// solver can decide "∃ x ⊨ φ with TrailZero(h(x)) ≥ t" for CNF φ.
//
// The paper leaves this oracle abstract (and notes no efficient DNF
// implementation is known); this package makes the CNF case executable:
//
//   - each field multiplication Pᵢ₊₁ = Pᵢ ⊗ x contributes m² AND gates
//     (fresh variables gₐᵦ = Pᵢ[a] ∧ x[b], three clauses each);
//   - modular reduction by the field polynomial is linear over GF(2), so
//     each output bit of a product — and each bit of the final sum
//     Σ cᵢ·Pᵢ — is one native XOR row (bit k of cᵢ·x^j mod f is a fixed
//     constant the encoder reads off the field tables);
//   - "t trailing zeros" pins the t low field bits of h(x) to zero, again
//     XOR rows.
//
// The resulting instances are exactly the CNF-XOR queries the solver's
// native Gaussian propagation is built for.
package encode

import (
	"mcf0/internal/formula"
	"mcf0/internal/gf2poly"
	"mcf0/internal/hash"
	"mcf0/internal/sat"
)

// PolyTester answers trailing-zero queries about polynomial hashes over a
// CNF formula via the SAT solver. It implements oracle.TrailingZeroTester.
type PolyTester struct {
	cnf     *formula.CNF
	queries int64
}

// NewPolyTester wraps a CNF formula.
func NewPolyTester(c *formula.CNF) *PolyTester { return &PolyTester{cnf: c} }

// Queries returns the number of SAT calls made.
func (p *PolyTester) Queries() int64 { return p.queries }

// ExistsTrailingZeros reports whether some model of φ hashes, under the
// polynomial hash h, to a value with at least t trailing zero bits. h must
// come from hash.NewPoly (its coefficients are needed for the encoding).
func (p *PolyTester) ExistsTrailingZeros(h hash.Func, t int) bool {
	coeffs, ok := hash.PolyCoefficients(h)
	if !ok {
		panic("encode: hash is not a polynomial-family function")
	}
	n := p.cnf.N
	if h.InBits() != n {
		panic("encode: hash width mismatch")
	}
	p.queries++
	solver, hashBits := buildHashCircuit(p.cnf, coeffs)
	if solver == nil {
		return false // base formula already unsatisfiable
	}
	// Pin the t low field bits of h(x) to zero. hashBits[k] describes bit
	// k of h(x) as an XOR of circuit variables plus a constant.
	for k := 0; k < t; k++ {
		if !solver.AddXOR(hashBits[k].vars, hashBits[k].rhs) {
			return false
		}
	}
	_, sat := solver.Solve()
	return sat
}

// xorExpr is an XOR-of-variables-equals-constant description of one bit.
type xorExpr struct {
	vars []int
	rhs  bool // the constant term: XOR(vars) = rhs makes the bit zero
}

// buildHashCircuit constructs a solver containing φ plus the evaluation
// circuit of h(x) = Σ cᵢ·x^i over GF(2^n), returning per-bit XOR
// descriptions of the hash output. Field bit j of the input element is
// formula variable n−1−j (the MSB-first integer convention of
// bitvec.Uint64, matching hash.Poly's evaluation).
func buildHashCircuit(cnf *formula.CNF, coeffs []uint64) (*sat.Solver, []xorExpr) {
	n := cnf.N
	field := gf2poly.NewField(n)
	s := len(coeffs)

	// Variable budget: n formula vars, then for each power i = 2..s−1 an
	// m-bit register plus m² AND gates.
	powerRegs := 0
	if s > 2 {
		powerRegs = s - 2
	}
	total := n + powerRegs*(n+n*n)
	solver := sat.New(total)
	for _, cl := range cnf.Clauses {
		if !solver.AddClause([]formula.Lit(cl)) {
			return nil, nil
		}
	}

	// inputBit(j) is the solver variable holding field bit j of x.
	inputBit := func(j int) int { return n - 1 - j }

	// prev holds the variables of P_i (bits of x^i); start with P_1 = x.
	prev := make([]int, n)
	for j := 0; j < n; j++ {
		prev[j] = inputBit(j)
	}
	// powers[i] = variables of x^i for i ≥ 1.
	powers := [][]int{nil, prev}

	next := n // next fresh variable
	for i := 2; i < s; i++ {
		reg := make([]int, n)
		for j := range reg {
			reg[j] = next
			next++
		}
		gate := make([][]int, n) // gate[a][b] = P_{i-1}[a] ∧ x[b]
		for a := 0; a < n; a++ {
			gate[a] = make([]int, n)
			for b := 0; b < n; b++ {
				g := next
				next++
				gate[a][b] = g
				addAND(solver, g, powers[i-1][a], inputBit(b))
			}
		}
		// reg[k] = XOR over (a, b) with bit k of x^(a+b) mod f set.
		for k := 0; k < n; k++ {
			vars := []int{reg[k]}
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					if field.Pow(2, uint64(a+b))&(1<<uint(k)) != 0 {
						vars = append(vars, gate[a][b])
					}
				}
			}
			if !solver.AddXOR(vars, false) {
				return nil, nil
			}
		}
		powers = append(powers, reg)
	}

	// h(x) bit k = bit k of c₀ ⊕ XOR over i ≥ 1, j of
	// [bit k of cᵢ·x^j mod f]·Pᵢ[j].
	hashBits := make([]xorExpr, n)
	for k := 0; k < n; k++ {
		var vars []int
		rhs := false
		if len(coeffs) > 0 && coeffs[0]&(1<<uint(k)) != 0 {
			rhs = true
		}
		for i := 1; i < s; i++ {
			ci := coeffs[i]
			for j := 0; j < n; j++ {
				// Constant multiply-by-cᵢ matrix column j.
				if field.Mul(ci, 1<<uint(j))&(1<<uint(k)) != 0 {
					vars = append(vars, powers[i][j])
				}
			}
		}
		hashBits[k] = xorExpr{vars: vars, rhs: rhs}
	}
	return solver, hashBits
}

// addAND emits the three clauses of out = a ∧ b.
func addAND(s *sat.Solver, out, a, b int) {
	s.AddClause([]formula.Lit{{Var: out, Neg: true}, {Var: a}})
	s.AddClause([]formula.Lit{{Var: out, Neg: true}, {Var: b}})
	s.AddClause([]formula.Lit{{Var: a, Neg: true}, {Var: b, Neg: true}, {Var: out}})
}
