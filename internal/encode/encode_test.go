package encode

import (
	"math"
	"testing"

	"mcf0/internal/counting"
	"mcf0/internal/exact"
	"mcf0/internal/formula"
	"mcf0/internal/hash"
	"mcf0/internal/oracle"
	"mcf0/internal/stats"
)

// TestPolyTesterAgreesWithExhaustive is the load-bearing cross-validation:
// the Tseitin-encoded SAT oracle must answer every (h, t) query exactly as
// brute-force enumeration does.
func TestPolyTesterAgreesWithExhaustive(t *testing.T) {
	rng := stats.NewRNG(201)
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(4)
		cnf := formula.RandomKCNF(n, rng.Intn(2*n), 2, rng)
		s := 2 + rng.Intn(3)
		fam := hash.NewPoly(n, s)
		h := fam.Draw(rng.Uint64)
		ground := oracle.NewExhaustive(n, cnf.Eval)
		tester := NewPolyTester(cnf)
		for tt := 0; tt <= n; tt++ {
			want := ground.ExistsTrailingZeros(h, tt)
			got := tester.ExistsTrailingZeros(h, tt)
			if got != want {
				t.Fatalf("trial %d (n=%d s=%d t=%d): encoded=%v brute=%v", trial, n, s, tt, got, want)
			}
		}
	}
}

func TestPolyTesterFindMaxRange(t *testing.T) {
	rng := stats.NewRNG(203)
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(4)
		cnf, _ := formula.PlantedKCNF(n, n, 2, rng)
		h := hash.NewPoly(n, 3).Draw(rng.Uint64)
		ground := oracle.NewExhaustive(n, cnf.Eval)
		want := counting.FindMaxRange(ground, h, n)
		got := counting.FindMaxRange(NewPolyTester(cnf), h, n)
		if got != want {
			t.Fatalf("trial %d: FindMaxRange encoded=%d brute=%d", trial, got, want)
		}
	}
}

func TestPolyTesterUnsat(t *testing.T) {
	cnf := formula.NewCNF(4)
	cnf.AddClause(formula.Clause{formula.Pos(0)})
	cnf.AddClause(formula.Clause{formula.Negl(0)})
	h := hash.NewPoly(4, 2).Draw(stats.NewRNG(1).Uint64)
	tester := NewPolyTester(cnf)
	if tester.ExistsTrailingZeros(h, 0) {
		t.Fatal("unsat formula reported a witness")
	}
	if tester.Queries() == 0 {
		t.Fatal("queries not metered")
	}
}

func TestPolyTesterRejectsLinearHash(t *testing.T) {
	cnf := formula.NewCNF(4)
	lin := hash.NewToeplitz(4, 4).Draw(stats.NewRNG(1).Uint64)
	defer func() {
		if recover() == nil {
			t.Fatal("linear hash accepted")
		}
	}()
	NewPolyTester(cnf).ExistsTrailingZeros(lin, 1)
}

// TestApproxModelCountEstWithSATOracle runs the full Algorithm 7 pipeline
// with the encoded oracle on a CNF formula — the configuration the paper
// describes (Theorem 4) but leaves to an abstract NP oracle.
func TestApproxModelCountEstWithSATOracle(t *testing.T) {
	rng := stats.NewRNG(207)
	cnf, _ := formula.PlantedKCNF(10, 12, 3, rng)
	truth := float64(exact.CountCNF(cnf))
	r := int(math.Ceil(math.Log2(2 * truth)))
	if r > 10 {
		r = 10
	}
	tester := NewPolyTester(cnf)
	opts := counting.Options{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 5, RNG: stats.NewRNG(1)}
	ok := 0
	const trials = 5
	for s := 0; s < trials; s++ {
		opts.RNG = stats.NewRNG(uint64(300 + s))
		res := counting.ApproxModelCountEst(tester, 10, r, opts)
		if stats.WithinFactor(res.Estimate, truth, 0.8) {
			ok++
		}
	}
	if ok < trials*3/5 {
		t.Errorf("SAT-oracle Algorithm 7 in-band only %d/%d (truth %g)", ok, trials, truth)
	}
	if tester.Queries() == 0 {
		t.Error("no SAT queries recorded")
	}
}
