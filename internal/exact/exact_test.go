package exact

import (
	"math"
	"testing"

	"mcf0/internal/formula"
	"mcf0/internal/stats"
)

func TestCountCNFAgainstExhaustive(t *testing.T) {
	rng := stats.NewRNG(31)
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		m := rng.Intn(4 * n)
		cnf := formula.RandomKCNF(n, m, min(2+rng.Intn(2), n), rng)
		want := Exhaustive(n, cnf.Eval)
		if got := CountCNF(cnf); got != want {
			t.Fatalf("trial %d (n=%d m=%d): dpll=%d brute=%d", trial, n, m, got, want)
		}
	}
}

func TestCountCNFEdgeCases(t *testing.T) {
	empty := formula.NewCNF(5)
	if got := CountCNF(empty); got != 32 {
		t.Errorf("empty CNF count = %d, want 32", got)
	}
	contra := formula.NewCNF(3)
	contra.AddClause(formula.Clause{formula.Pos(0)})
	contra.AddClause(formula.Clause{formula.Negl(0)})
	if got := CountCNF(contra); got != 0 {
		t.Errorf("contradiction count = %d, want 0", got)
	}
	withEmpty := formula.NewCNF(3)
	withEmpty.AddClause(formula.Clause{})
	if got := CountCNF(withEmpty); got != 0 {
		t.Errorf("empty-clause CNF count = %d, want 0", got)
	}
}

func TestCountDNFAgainstExhaustive(t *testing.T) {
	rng := stats.NewRNG(37)
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		k := 1 + rng.Intn(8)
		w := min(1+rng.Intn(4), n)
		dnf := formula.RandomDNF(n, k, w, rng)
		want := Exhaustive(n, dnf.Eval)
		if got := CountDNF(dnf); got != want {
			t.Fatalf("trial %d (n=%d k=%d): IE=%d brute=%d", trial, n, k, got, want)
		}
	}
}

func TestCountDNFEmpty(t *testing.T) {
	if got := CountDNF(formula.NewDNF(4)); got != 0 {
		t.Errorf("empty DNF count = %d", got)
	}
	full := formula.NewDNF(4)
	full.AddTerm(formula.Term{})
	if got := CountDNF(full); got != 16 {
		t.Errorf("tautology DNF count = %d, want 16", got)
	}
}

func TestCountDNFRangeFormulas(t *testing.T) {
	// The Lemma 4 DNF for [lo, hi] must count exactly hi−lo+1.
	for _, tc := range []struct{ lo, hi uint64 }{{0, 0}, {3, 11}, {0, 255}, {17, 200}} {
		d, err := formula.RangeDNF(formula.Range{Lo: tc.lo, Hi: tc.hi, Bits: 8})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := CountDNF(d), tc.hi-tc.lo+1; got != want {
			t.Errorf("range [%d,%d]: count %d, want %d", tc.lo, tc.hi, got, want)
		}
	}
}

func TestWeightedCountDNF(t *testing.T) {
	rng := stats.NewRNG(41)
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(7)
		k := 1 + rng.Intn(6)
		dnf := formula.RandomDNF(n, k, min(1+rng.Intn(3), n), rng)
		w := WeightFunc{Num: make([]uint64, n), Bits: make([]int, n)}
		for i := 0; i < n; i++ {
			w.Bits[i] = 1 + rng.Intn(6)
			w.Num[i] = 1 + rng.Uint64n(uint64(1)<<uint(w.Bits[i])-1)
		}
		want := WeightedExhaustive(n, dnf.Eval, w)
		got := WeightedCountDNF(dnf, w)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: weighted IE=%g brute=%g", trial, got, want)
		}
	}
}

func TestWeightFuncValidate(t *testing.T) {
	good := WeightFunc{Num: []uint64{1, 3}, Bits: []int{1, 2}}
	if !good.Validate(2) {
		t.Error("valid weight rejected")
	}
	for _, bad := range []WeightFunc{
		{Num: []uint64{0, 1}, Bits: []int{2, 2}},  // zero weight
		{Num: []uint64{4, 1}, Bits: []int{2, 2}},  // weight = 1
		{Num: []uint64{1}, Bits: []int{2}},        // wrong arity
		{Num: []uint64{1, 1}, Bits: []int{0, 2}},  // zero bits
		{Num: []uint64{1, 1}, Bits: []int{63, 2}}, // too many bits
	} {
		if bad.Validate(2) {
			t.Errorf("invalid weight accepted: %+v", bad)
		}
	}
}

func TestCountCNFModeratelyLarge(t *testing.T) {
	// Beyond exhaustive range: n=34 free variables with a few clauses;
	// verify against a hand-computable structure: x0 ∧ (x1 ∨ x2) leaves
	// 2^31 · 3/4 · ... — use independent clause blocks for an exact value.
	c := formula.NewCNF(34)
	c.AddClause(formula.Clause{formula.Pos(0)})
	c.AddClause(formula.Clause{formula.Pos(1), formula.Pos(2)})
	// count = 1 · 3 · 2^31
	if got, want := CountCNF(c), uint64(3)<<31; got != want {
		t.Fatalf("structured CNF count = %d, want %d", got, want)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
