// Package exact provides ground-truth model counters used to validate the
// approximate algorithms and to anchor every experiment: exhaustive
// enumeration for small n, a counting DPLL for CNF at moderate n,
// inclusion–exclusion for DNF (and weighted DNF) with few terms.
package exact

import (
	"math"

	"mcf0/internal/bitvec"
	"mcf0/internal/formula"
)

// Exhaustive counts satisfying assignments of an arbitrary predicate over
// {0,1}^n by full enumeration. Practical for n ≤ 24.
func Exhaustive(n int, eval func(bitvec.BitVec) bool) uint64 {
	if n > 30 {
		panic("exact: exhaustive enumeration beyond 2^30")
	}
	var count uint64
	for v := uint64(0); v < 1<<uint(n); v++ {
		if eval(bitvec.FromUint64(v, n)) {
			count++
		}
	}
	return count
}

// CountCNF returns |Sol(φ)| for a CNF formula using a counting DPLL with
// unit propagation and free-variable multiplication. Exponential in the
// worst case, practical well past exhaustive range on structured inputs.
func CountCNF(c *formula.CNF) uint64 {
	d := &dpll{n: c.N}
	for _, cl := range c.Clauses {
		if len(cl) == 0 {
			return 0
		}
		lits := make([]int, len(cl))
		for i, l := range cl {
			lits[i] = l.Var<<1 | boolBit(l.Neg)
		}
		d.clauses = append(d.clauses, lits)
	}
	d.assign = make([]int8, c.N)
	return d.count()
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

// dpll is a simple counting DPLL: assignment values are 0 (unset), 1
// (true), 2 (false).
type dpll struct {
	n       int
	clauses [][]int
	assign  []int8
}

func (d *dpll) litVal(l int) int8 {
	v := d.assign[l>>1]
	if v == 0 {
		return 0
	}
	if l&1 == 1 { // negative literal
		if v == 1 {
			return 2
		}
		return 1
	}
	return v
}

// count counts extensions of the current partial assignment.
func (d *dpll) count() uint64 {
	// Unit propagation with trail for undo.
	var trail []int
	undo := func() {
		for _, v := range trail {
			d.assign[v] = 0
		}
	}
	for {
		unit := -1
		for _, cl := range d.clauses {
			unassigned := -1
			nUnassigned := 0
			satisfied := false
			for _, l := range cl {
				switch d.litVal(l) {
				case 1:
					satisfied = true
				case 0:
					nUnassigned++
					unassigned = l
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			if nUnassigned == 0 {
				undo()
				return 0 // falsified clause
			}
			if nUnassigned == 1 {
				unit = unassigned
				break
			}
		}
		if unit < 0 {
			break
		}
		v := unit >> 1
		if unit&1 == 1 {
			d.assign[v] = 2
		} else {
			d.assign[v] = 1
		}
		trail = append(trail, v)
	}
	// Pick a branching variable occurring in an unsatisfied clause.
	branch := -1
	anyUnsat := false
	for _, cl := range d.clauses {
		satisfied := false
		for _, l := range cl {
			if d.litVal(l) == 1 {
				satisfied = true
				break
			}
		}
		if satisfied {
			continue
		}
		anyUnsat = true
		for _, l := range cl {
			if d.litVal(l) == 0 {
				branch = l >> 1
				break
			}
		}
		if branch >= 0 {
			break
		}
	}
	if !anyUnsat {
		// All clauses satisfied: every unassigned variable is free.
		free := 0
		for _, a := range d.assign {
			if a == 0 {
				free++
			}
		}
		undo()
		return 1 << uint(free)
	}
	var total uint64
	d.assign[branch] = 1
	total += d.count()
	d.assign[branch] = 2
	total += d.count()
	d.assign[branch] = 0
	undo()
	return total
}

// CountDNF returns |Sol(φ)| for a DNF formula by inclusion–exclusion over
// term subsets: |∪Tᵢ| = Σ_{∅≠S} (−1)^{|S|+1} |∩_{i∈S} Tᵢ|, where a
// consistent intersection of terms fixing f variables has 2^(n−f)
// solutions. Exponential in the number of terms; practical for ≤ 20 terms.
// For more terms, use the approximate counters this package validates.
func CountDNF(d *formula.DNF) uint64 {
	k := len(d.Terms)
	if k > 24 {
		panic("exact: inclusion-exclusion beyond 24 terms")
	}
	var total int64
	for mask := uint64(1); mask < 1<<uint(k); mask++ {
		fixed, consistent := intersectTerms(d, mask)
		if !consistent {
			continue
		}
		cnt := int64(1) << uint(d.N-fixed)
		if popcount(mask)%2 == 1 {
			total += cnt
		} else {
			total -= cnt
		}
	}
	return uint64(total)
}

// intersectTerms conjoins the terms selected by mask, returning the number
// of fixed variables and whether the conjunction is consistent.
func intersectTerms(d *formula.DNF, mask uint64) (int, bool) {
	val := map[int]bool{}
	for i := 0; i < len(d.Terms); i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		for _, l := range d.Terms[i] {
			want := !l.Neg
			if prev, ok := val[l.Var]; ok {
				if prev != want {
					return 0, false
				}
			} else {
				val[l.Var] = want
			}
		}
	}
	return len(val), true
}

func popcount(x uint64) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// WeightFunc assigns each variable i a probability ρ(xᵢ) = Num[i] / 2^Bits[i]
// of being true, as in the weighted counting setting of Section 5.
type WeightFunc struct {
	Num  []uint64
	Bits []int
}

// Validate checks 0 < Num[i] < 2^Bits[i] for all i (weights strictly inside
// (0,1), as the paper requires).
func (w WeightFunc) Validate(n int) bool {
	if len(w.Num) != n || len(w.Bits) != n {
		return false
	}
	for i := range w.Num {
		if w.Bits[i] < 1 || w.Bits[i] > 62 {
			return false
		}
		if w.Num[i] == 0 || w.Num[i] >= 1<<uint(w.Bits[i]) {
			return false
		}
	}
	return true
}

// Rho returns ρ(xᵢ) as a float64.
func (w WeightFunc) Rho(i int) float64 {
	return float64(w.Num[i]) / float64(uint64(1)<<uint(w.Bits[i]))
}

// WeightedCountDNF returns W(φ) = Σ_{σ ⊨ φ} W(σ) by inclusion–exclusion:
// the weight of a term's solution cube is the product of its fixed
// literals' probabilities (free variables integrate to 1).
func WeightedCountDNF(d *formula.DNF, w WeightFunc) float64 {
	if !w.Validate(d.N) {
		panic("exact: invalid weight function")
	}
	k := len(d.Terms)
	if k > 24 {
		panic("exact: inclusion-exclusion beyond 24 terms")
	}
	total := 0.0
	for mask := uint64(1); mask < 1<<uint(k); mask++ {
		weight, consistent := termIntersectionWeight(d, mask, w)
		if !consistent {
			continue
		}
		if popcount(mask)%2 == 1 {
			total += weight
		} else {
			total -= weight
		}
	}
	return total
}

func termIntersectionWeight(d *formula.DNF, mask uint64, w WeightFunc) (float64, bool) {
	val := map[int]bool{}
	for i := 0; i < len(d.Terms); i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		for _, l := range d.Terms[i] {
			want := !l.Neg
			if prev, ok := val[l.Var]; ok {
				if prev != want {
					return 0, false
				}
			} else {
				val[l.Var] = want
			}
		}
	}
	weight := 1.0
	for v, isTrue := range val {
		if isTrue {
			weight *= w.Rho(v)
		} else {
			weight *= 1 - w.Rho(v)
		}
	}
	return weight, true
}

// WeightedExhaustive computes W(φ) by full enumeration; ground truth for
// WeightedCountDNF at small n.
func WeightedExhaustive(n int, eval func(bitvec.BitVec) bool, w WeightFunc) float64 {
	if n > 24 {
		panic("exact: exhaustive enumeration beyond 2^24")
	}
	total := 0.0
	for v := uint64(0); v < 1<<uint(n); v++ {
		x := bitvec.FromUint64(v, n)
		if !eval(x) {
			continue
		}
		weight := 1.0
		for i := 0; i < n; i++ {
			if x.Get(i) {
				weight *= w.Rho(i)
			} else {
				weight *= 1 - w.Rho(i)
			}
		}
		total += weight
	}
	return total
}

// Log2 returns log₂(x); convenience for experiment reports.
func Log2(x float64) float64 { return math.Log2(x) }
