package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("positive request must pass through")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Fatal("non-positive request must select GOMAXPROCS")
	}
}

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		for _, count := range []int{0, 1, 5, 100} {
			hits := make([]atomic.Int32, count)
			Run(count, workers, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d count=%d: index %d hit %d times", workers, count, i, got)
				}
			}
		}
	}
}

func TestShardCount(t *testing.T) {
	for _, tc := range []struct{ count, workers, want int }{
		{10, 4, 4}, {3, 8, 3}, {5, 1, 1}, {0, 4, 1}, {7, 0, 1},
	} {
		if got := ShardCount(tc.count, tc.workers); got != tc.want {
			t.Fatalf("ShardCount(%d, %d) = %d, want %d", tc.count, tc.workers, got, tc.want)
		}
	}
}

// RunSharded must visit every index exactly once, assign contiguous
// ascending blocks per shard, and keep the assignment a pure function of
// (count, workers).
func TestRunShardedAssignment(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, count := range []int{0, 1, 4, 29} {
			shards := ShardCount(count, workers)
			gotShard := make([]int32, count)
			var calls atomic.Int32
			RunSharded(count, workers, func(i, shard int) {
				if shard < 0 || shard >= shards {
					t.Errorf("shard %d out of [0, %d)", shard, shards)
				}
				gotShard[i] = int32(shard) // index i visited by exactly one goroutine
				calls.Add(1)
			})
			if int(calls.Load()) != count {
				t.Fatalf("workers=%d count=%d: %d calls", workers, count, calls.Load())
			}
			for i := 0; i < count; i++ {
				want := int32(0)
				for s := 0; s < shards; s++ {
					if i >= s*count/shards && i < (s+1)*count/shards {
						want = int32(s)
					}
				}
				if gotShard[i] != want {
					t.Fatalf("workers=%d count=%d: index %d on shard %d, want %d",
						workers, count, i, gotShard[i], want)
				}
			}
		}
	}
}

// Per-shard scratch must never be touched by two indices concurrently:
// each scratch slot tracks an owner flag that would race (and be caught by
// -race) or observe inconsistency if shared across goroutines.
func TestRunShardedScratchIsolation(t *testing.T) {
	workers := 4
	count := 64
	scratch := ShardScratch(Workers(workers), func() *int32 { return new(int32) })
	if len(scratch) != workers {
		t.Fatalf("scratch len %d, want %d", len(scratch), workers)
	}
	RunSharded(count, workers, func(i, shard int) {
		if !atomic.CompareAndSwapInt32(scratch[shard], 0, 1) {
			t.Errorf("shard %d scratch entered twice concurrently", shard)
		}
		atomic.StoreInt32(scratch[shard], 0)
	})
}
