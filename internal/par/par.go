// Package par provides the two worker-pool primitives shared by every
// parallel loop in the repository:
//
//   - Run, a dynamic (work-stealing) pool for heterogeneous tasks such as
//     the counting and distributed median trials, where per-task cost
//     varies by orders of magnitude (SAT calls);
//   - RunSharded, a static block-partitioned pool for homogeneous per-copy
//     sketch work, where a fixed shard→index assignment lets callers keep
//     per-shard scratch and amortise dispatch over whole index blocks.
//
// Keeping both in one place means pool semantics — assignment order, panic
// propagation, future cancellation — are fixed once.
//
// # Concurrency contract
//
// Run and RunSharded block until every index has been processed and are
// themselves safe to call from multiple goroutines (each call spins up its
// own transient workers; there is no shared pool state). Within one call,
// fn runs concurrently for different indices, so fn must only touch state
// owned by its index (Run) or its shard (RunSharded).
//
// Scratch ownership follows the shard, not the goroutine: RunSharded
// guarantees that shard s is driven by exactly one worker for the duration
// of the call, so scratch obtained from ShardScratch(workers, mk)[s] is
// touched by one goroutine at a time and can be reused across calls
// without synchronisation. The shard→index assignment is a pure function
// of (count, workers) — never of scheduling — which is one half of the
// repository's determinism invariant; the other half is that callers
// pre-draw any randomness serially, keyed by index. Under that discipline
// results are bit-identical for every workers value, including 1 (callers
// may special-case workers == 1 to skip dispatch entirely; the assignment
// makes the two paths indistinguishable).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Parallelism option to an effective worker bound:
// positive values pass through, anything else selects GOMAXPROCS.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes fn(i) for i in [0, count) on up to workers goroutines.
// Indices are handed out dynamically (first idle worker takes the next
// index), which balances heterogeneous task costs. fn must write results
// only to its own index's slot; when workers > 1 it is invoked concurrently
// and must not touch shared mutable state.
func Run(count, workers int, fn func(i int)) {
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		for i := 0; i < count; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= count {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ShardCount returns the number of shards RunSharded uses for the given
// index count and worker bound: min(workers, count), at least 1. Callers
// sizing per-shard scratch should use the worker bound alone (Workers(p)),
// which is an upper bound for every count.
func ShardCount(count, workers int) int {
	if workers > count {
		workers = count
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// RunSharded executes fn(i, shard) for i in [0, count) on up to workers
// goroutines, statically partitioning the index space into
// ShardCount(count, workers) contiguous blocks: shard s owns indices
// [s·count/shards, (s+1)·count/shards) and visits them in increasing order
// on a single goroutine. The assignment is a pure function of
// (count, workers) — never of scheduling — so runs are reproducible and fn
// may reuse scratch buffers indexed by shard. Scratch carries garbage
// between indices of the same shard; fn must fully overwrite it per index.
//
// Determinism of results across worker counts is the caller's contract:
// index i's work must depend only on i's own state (per-copy RNG streams
// keyed by copy index, never by shard or worker), in which case results
// are bit-identical at every parallelism level.
func RunSharded(count, workers int, fn func(i, shard int)) {
	shards := ShardCount(count, workers)
	if shards <= 1 {
		for i := 0; i < count; i++ {
			fn(i, 0)
		}
		return
	}
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo := s * count / shards
		hi := (s + 1) * count / shards
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i, s)
			}
		}(s, lo, hi)
	}
	wg.Wait()
}

// ShardScratch builds one scratch value per potential shard for RunSharded
// loops with worker bound `workers` (shard indices never reach past
// Workers-many shards regardless of count). Intended to be called once at
// sketch construction and reused across calls.
func ShardScratch[T any](workers int, mk func() T) []T {
	out := make([]T, workers)
	for i := range out {
		out[i] = mk()
	}
	return out
}
