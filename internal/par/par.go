// Package par provides the tiny worker-pool primitive shared by every
// trial-parallel loop in the repository (counting and distributed median
// trials, set-stream sketch copies). Keeping it in one place means pool
// semantics — work-stealing order, panic propagation, future cancellation —
// are fixed once.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Parallelism option to an effective worker bound:
// positive values pass through, anything else selects GOMAXPROCS.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes fn(i) for i in [0, count) on up to workers goroutines.
// fn must write results only to its own index's slot; when workers > 1 it
// is invoked concurrently and must not touch shared mutable state.
func Run(count, workers int, fn func(i int)) {
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		for i := 0; i < count; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= count {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
