// Package oracle abstracts the "NP oracle" of the paper behind interfaces
// the model-counting algorithms consume, with per-query metering so
// experiments can report oracle-call counts (the paper's complexity
// currency) independent of the solver's wall-clock speed.
//
// Three backends are provided:
//   - CNF: a CDCL+XOR SAT solver (internal/sat) — the practical substitute
//     for the NP oracle, as in ApproxMC implementations;
//   - DNF: polynomial-time linear algebra per term (no NP oracle needed,
//     matching the FPRAS claims of Theorems 2 and 3);
//   - Exhaustive: brute-force enumeration, the ground-truth backend used to
//     validate the other two and to answer queries (like Proposition 3's
//     trailing-zero oracle over DNF inputs) with no known efficient
//     implementation.
//
// # Concurrency contract
//
// A Source is single-threaded: it carries a query meter and (for CNF) an
// incremental SAT solver, both mutated by every call. Parallel trial loops
// must not share one handle; they call Fork, which returns an independent
// handle with its own meter and solver state — immutable inputs (the
// parsed formula, the materialised solution list of Exhaustive) are shared
// structurally, mutable state is never. The counting layer forks once per
// trial before fan-out and aggregates meters after the join, in trial
// order, so query counts are deterministic at every parallelism level.
// CNFSource keeps one incremental solver per handle across a trial's whole
// hash-cell sweep (rows installed once behind activation selectors and
// enabled by assumption), which is why sharing a handle across goroutines
// is unsafe even for "read-only" queries: every query schedules solver
// work. Scratch vectors passed to the hash helpers (EvalTrailingZeros)
// are caller-owned per the bitvec destination-passing contract.
package oracle

import (
	"math/bits"
	"sync"

	"mcf0/internal/bitvec"
	"mcf0/internal/formula"
	"mcf0/internal/gf2"
	"mcf0/internal/hash"
	"mcf0/internal/sat"
)

// Source enumerates solutions of φ conjoined with a linear (XOR) constraint
// system over the formula's variables. It is the primitive behind
// BoundedSAT (Proposition 1) and FindMin's prefix search (Proposition 2).
type Source interface {
	// NVars returns the variable count n.
	NVars() int
	// Enumerate visits up to limit distinct solutions of φ ∧ cons
	// (limit < 0 for all); visit returning false stops early. It returns
	// the number of solutions visited. cons may be nil (no constraints).
	Enumerate(cons *gf2.System, limit int, visit func(bitvec.BitVec) bool) int
	// Queries returns the cumulative number of NP-oracle invocations
	// (SAT calls for the CNF backend; per-term linear solves for DNF).
	Queries() int64
}

// TrailingZeroTester answers Proposition 3's oracle query: is there an
// x ⊨ φ such that h(x) ends in at least t zero bits?
type TrailingZeroTester interface {
	ExistsTrailingZeros(h hash.Func, t int) bool
	Queries() int64
}

// Forkable is implemented by sources that can hand out independent handles
// over the same formula for concurrent trials. A fork shares the immutable
// formula (and any memoized solution list) but meters its own queries
// starting from zero; the parallel counters sum fork meters back into the
// result, so the reported totals match a serial run exactly.
type Forkable interface {
	Fork() Source
}

// ForkTrailingZeroTester returns an independent tester over the same
// formula when tz supports forking, for concurrent median trials.
func ForkTrailingZeroTester(tz TrailingZeroTester) (TrailingZeroTester, bool) {
	f, ok := tz.(Forkable)
	if !ok {
		return nil, false
	}
	t, ok := f.Fork().(TrailingZeroTester)
	return t, ok
}

// CNFSource is the SAT-backed oracle for CNF formulas. One CDCL solver
// instance is built lazily per source (φ's clauses are loaded exactly once)
// and reused across every Enumerate call, following the incremental
// CNF-XOR protocol of ApproxMC-on-CryptoMiniSat:
//
//   - each distinct XOR row A·x = b of a query's constraint system is
//     installed once as A·x ⊕ sel = b with a fresh activation selector
//     variable sel, and enabled per query by assuming ¬sel. With sel free
//     the row merely defines sel = A·x ⊕ b and constrains nothing, so rows
//     from earlier hash functions stay inert. Because the prefix systems
//     h_m(x) = 0^m of one hash are nested in echelon form, the hash-count
//     search at prefix m reuses the m−1 rows it already installed.
//   - a query's blocking clauses carry one shared blocking selector,
//     assumed false while the cell is enumerated and pinned true (a unit
//     clause) when the query finishes, which permanently satisfies — and
//     lets the solver's Simplify pass physically delete — every blocking
//     clause of that query.
//
// Under any Enumerate call's assumptions the auxiliary variables are all
// functions of x (row selectors via their XOR rows, retired blocking
// selectors via their units), so solver models remain in bijection with
// solutions of φ ∧ cons.
type CNFSource struct {
	cnf     *formula.CNF
	queries int64

	solver *sat.Solver
	broken bool // φ unsatisfiable at level 0
	// rowSel maps an XOR row's A-part to its activation selector per rhs
	// (-1 absent); fingerprint keys keep the per-query lookups
	// allocation-free (see the bitvec.Fingerprint collision contract).
	rowSel  map[bitvec.Fingerprint][2]int
	retired int       // blocking selectors pinned since last Simplify
	worked  sat.Stats // counters of solvers retired by rebuilds
	forks   *cnfForks
}

// auxBudget bounds the auxiliary (selector) variables a solver instance may
// accumulate before Enumerate retires it and rebuilds from φ: stale rows
// and retired selectors are inert but still cost propagation and model
// width, so unbounded reuse across many hash functions (e.g. one serial
// source serving every trial) would degrade linearly. A rebuild costs one
// CNF load — what the pre-incremental oracle paid on every query.
func (s *CNFSource) auxBudget() int {
	b := 8 * s.cnf.N
	if b < 256 {
		b = 256
	}
	return b
}

// cnfForks tracks every fork of a source so solver work counters can be
// aggregated for reporting.
type cnfForks struct {
	mu      sync.Mutex
	members []*CNFSource
}

// NewCNFSource wraps a CNF formula.
func NewCNFSource(c *formula.CNF) *CNFSource {
	s := &CNFSource{cnf: c, forks: &cnfForks{}}
	s.forks.members = append(s.forks.members, s)
	return s
}

// Fork returns an independent source over the same formula with its own
// query meter and its own solver instance.
func (s *CNFSource) Fork() Source {
	f := &CNFSource{cnf: s.cnf, forks: s.forks}
	s.forks.mu.Lock()
	s.forks.members = append(s.forks.members, f)
	s.forks.mu.Unlock()
	return f
}

// NVars returns the variable count.
func (s *CNFSource) NVars() int { return s.cnf.N }

// Queries returns the number of SAT-solver invocations so far.
func (s *CNFSource) Queries() int64 { return s.queries }

// SolverStats aggregates the CDCL work counters across this source and all
// of its forks. It must not be called while forked trials are still
// running.
func (s *CNFSource) SolverStats() sat.Stats {
	s.forks.mu.Lock()
	defer s.forks.mu.Unlock()
	var total sat.Stats
	for _, m := range s.forks.members {
		total.Add(m.worked)
		if m.solver != nil {
			total.Add(m.solver.Stats())
		}
	}
	return total
}

// build loads φ into a fresh solver; false means φ is unsatisfiable at
// level 0.
func (s *CNFSource) build() bool {
	s.solver = sat.New(s.cnf.N)
	s.rowSel = make(map[bitvec.Fingerprint][2]int)
	for _, cl := range s.cnf.Clauses {
		if !s.solver.AddClause([]formula.Lit(cl)) {
			s.broken = true
			return false
		}
	}
	return true
}

// retire drops the current solver; the next query rebuilds from φ.
func (s *CNFSource) retire() {
	if s.solver == nil {
		return
	}
	s.worked.Add(s.solver.Stats())
	s.solver = nil
	s.rowSel = nil
	s.retired = 0
}

// selector returns the activation selector for the XOR row (eq.A, eq.RHS),
// installing the row on first sight.
func (s *CNFSource) selector(eq gf2.Equation) (int, bool) {
	key := eq.A.Fingerprint()
	rhs := 0
	if eq.RHS {
		rhs = 1
	}
	sels, cached := s.rowSel[key]
	if !cached {
		sels = [2]int{-1, -1}
	}
	if sels[rhs] >= 0 {
		return sels[rhs], true
	}
	sel := s.solver.AddVar()
	vars := make([]int, 0, eq.A.PopCount()+1)
	for wi, w := range eq.A.Words() {
		for w != 0 {
			vars = append(vars, wi*64+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	vars = append(vars, sel)
	if !s.solver.AddXOR(vars, eq.RHS) {
		return 0, false
	}
	sels[rhs] = sel
	s.rowSel[key] = sels
	return sel, true
}

// Enumerate solves φ ∧ cons on the shared incremental solver, enabling the
// constraint rows by assumption and blocking each model before searching
// for the next. Each model costs one SAT call, plus one final UNSAT call
// (mirroring the paper's O(p) NP calls for BoundedSAT).
func (s *CNFSource) Enumerate(cons *gf2.System, limit int, visit func(bitvec.BitVec) bool) int {
	if cons != nil && !cons.Consistent() {
		return 0
	}
	if limit == 0 {
		return 0
	}
	if s.solver != nil && s.solver.NVars()-s.cnf.N > s.auxBudget() {
		s.retire()
	}
	var eqs []gf2.Equation
	if cons != nil {
		eqs = cons.Equations()
	}
	// Hash turnover: when none of the query's rows are cached, the cached
	// rows belong to an abandoned hash function and would only slow
	// propagation down — start a fresh solver instead of dragging them
	// along. (Prefix systems of one hash are nested, so within a
	// hash-count search there is always overlap.)
	if len(eqs) > 0 && s.solver != nil && len(s.rowSel) > 0 {
		hit := false
		for _, eq := range eqs {
			if _, ok := s.rowSel[eq.A.Fingerprint()]; ok {
				hit = true
				break
			}
		}
		if !hit {
			s.retire()
		}
	}
	if s.solver == nil && !s.build() {
		return 0
	}
	if s.broken {
		return 0
	}
	n := s.cnf.N
	var assumps []formula.Lit
	for _, eq := range eqs {
		sel, ok := s.selector(eq)
		if !ok {
			// Installing an independent row can only fail when the
			// solver is already unsatisfiable at level 0.
			s.broken = true
			return 0
		}
		assumps = append(assumps, formula.Lit{Var: sel, Neg: true})
	}
	// Blocking clauses are scoped to this query by a blocking selector,
	// assumed false now and pinned true afterwards. limit == 1 never
	// blocks, so feasibility probes stay selector-free.
	var extra []formula.Lit
	blockSel := -1
	if limit != 1 {
		blockSel = s.solver.AddVar()
		assumps = append(assumps, formula.Lit{Var: blockSel, Neg: true})
		extra = []formula.Lit{{Var: blockSel}}
	}
	count, exhausted := s.solver.EnumerateBlocking(limit, n, extra, visit, assumps...)
	// Meter like a solve-block-resolve loop: one SAT call per model, plus
	// the final UNSAT call when the cell was exhausted.
	s.queries += int64(count)
	if exhausted {
		s.queries++
	}
	if blockSel >= 0 && count > 0 {
		// Retire this query's blocking clauses by pinning the selector;
		// compact them away once enough queries have accumulated.
		s.solver.AddClause([]formula.Lit{{Var: blockSel}})
		s.retired++
		if s.retired >= 8 {
			s.solver.Simplify()
			s.retired = 0
		}
	}
	return count
}

// DNFSource is the polynomial-time oracle for DNF formulas: the solutions
// of a term conjoined with linear constraints form an affine subspace,
// enumerable by Gaussian elimination. Solutions appearing in multiple terms
// are deduplicated.
type DNFSource struct {
	dnf     *formula.DNF
	queries int64
	// empty is the persistent stand-in for a nil constraint system; unit is
	// scratch for the per-literal unit equations. Both exist so Enumerate
	// works by Mark/extend/Rewind instead of cloning a system per term.
	empty *gf2.System
	unit  bitvec.BitVec
}

// NewDNFSource wraps a DNF formula.
func NewDNFSource(d *formula.DNF) *DNFSource { return &DNFSource{dnf: d} }

// Fork returns an independent source over the same formula with its own
// query meter.
func (s *DNFSource) Fork() Source { return NewDNFSource(s.dnf) }

// NVars returns the variable count.
func (s *DNFSource) NVars() int { return s.dnf.N }

// Queries returns the number of per-term linear-system solves.
func (s *DNFSource) Queries() int64 { return s.queries }

// Enumerate visits distinct solutions of φ ∧ cons, term by term. Each
// term's equations are stacked onto cons behind a checkpoint and rewound
// afterwards (cons is restored to its entry state before Enumerate
// returns), replacing the former clone-per-term: the source is
// single-threaded per the package contract, so the temporary extension is
// invisible to the caller.
func (s *DNFSource) Enumerate(cons *gf2.System, limit int, visit func(bitvec.BitVec) bool) int {
	if cons != nil && !cons.Consistent() {
		return 0
	}
	if limit == 0 {
		return 0
	}
	sys := cons
	if sys == nil {
		if s.empty == nil {
			s.empty = gf2.NewSystem(s.dnf.N)
		}
		sys = s.empty
	}
	if s.unit.Len() == 0 {
		s.unit = bitvec.New(s.dnf.N)
	}
	seen := map[bitvec.Fingerprint]bool{}
	count := 0
	stop := false
	for _, t := range s.dnf.Terms {
		if stop {
			break
		}
		cp := sys.Mark()
		ok := s.stackTerm(sys, t)
		s.queries++
		if ok && sys.Consistent() {
			sys.EnumerateSolutions(-1, func(x bitvec.BitVec) bool {
				fp := x.Fingerprint()
				if seen[fp] {
					return true
				}
				seen[fp] = true
				count++
				if !visit(x) {
					stop = true
					return false
				}
				if limit >= 0 && count >= limit {
					stop = true
					return false
				}
				return true
			})
		}
		sys.Rewind(cp)
	}
	return count
}

// stackTerm adds the unit equations "x ⊨ term" onto sys; false when the
// term is internally contradictory (nothing is added then).
func (s *DNFSource) stackTerm(sys *gf2.System, t formula.Term) bool {
	norm, ok := t.Normalize()
	if !ok {
		return false
	}
	for _, l := range norm {
		s.unit.Set(l.Var, true)
		sys.Add(s.unit, !l.Neg)
		s.unit.Set(l.Var, false)
	}
	return true
}

// Exhaustive is the ground-truth backend: full enumeration over {0,1}^n.
// It implements both Source and TrailingZeroTester. Practical for n ≤ 24.
type Exhaustive struct {
	n       int
	eval    func(bitvec.BitVec) bool
	queries int64
	sols    []bitvec.BitVec // lazily materialised solution list
	solsVal []uint64        // integer forms of sols, for Uint64Hash fast paths
	solsSet bool
}

// NewExhaustive wraps a predicate over n-bit assignments. The predicate
// must be a pure function of its argument (it is shared across forks).
func NewExhaustive(n int, eval func(bitvec.BitVec) bool) *Exhaustive {
	if n > 30 {
		panic("oracle: exhaustive backend beyond 2^30")
	}
	return &Exhaustive{n: n, eval: eval}
}

// Fork returns an independent handle with its own query meter. The
// (immutable once built) solution list is materialised first so that all
// forks share it instead of re-enumerating the universe.
func (e *Exhaustive) Fork() Source {
	e.solutions()
	return &Exhaustive{n: e.n, eval: e.eval, sols: e.sols, solsVal: e.solsVal, solsSet: true}
}

// NVars returns the variable count.
func (e *Exhaustive) NVars() int { return e.n }

// Queries returns the number of full sweeps performed.
func (e *Exhaustive) Queries() int64 { return e.queries }

// Enumerate visits solutions in increasing numeric order. The sweep reuses
// one scratch vector; solutions are cloned only when visited.
func (e *Exhaustive) Enumerate(cons *gf2.System, limit int, visit func(bitvec.BitVec) bool) int {
	e.queries++
	if cons != nil && !cons.Consistent() {
		return 0
	}
	count := 0
	x := bitvec.New(e.n)
	for v := uint64(0); v < 1<<uint(e.n); v++ {
		if limit >= 0 && count >= limit {
			break
		}
		x.SetUint64(v)
		if !e.eval(x) {
			continue
		}
		if cons != nil && !satisfies(cons, x) {
			continue
		}
		count++
		if !visit(x.Clone()) {
			break
		}
	}
	return count
}

// solutions materialises Sol(φ) once so that repeated hash queries scan
// only the solution list instead of the whole universe.
func (e *Exhaustive) solutions() []bitvec.BitVec {
	if !e.solsSet {
		for v := uint64(0); v < 1<<uint(e.n); v++ {
			x := bitvec.FromUint64(v, e.n)
			if e.eval(x) {
				e.sols = append(e.sols, x)
				e.solsVal = append(e.solsVal, v)
			}
		}
		e.solsSet = true
	}
	return e.sols
}

// ExistsTrailingZeros scans the solutions for one whose hash ends in ≥ t
// zeros.
func (e *Exhaustive) ExistsTrailingZeros(h hash.Func, t int) bool {
	e.queries++
	e.solutions()
	if u, ok := hash.AsUint64Hash(h); ok {
		for _, v := range e.solsVal {
			if trailingZerosValue(u.EvalUint64(v), h.OutBits()) >= t {
				return true
			}
		}
		return false
	}
	scratch := bitvec.New(h.OutBits())
	for _, x := range e.sols {
		if hash.EvalTrailingZeros(h, x, scratch) >= t {
			return true
		}
	}
	return false
}

// MaxTrailingZeros answers the whole FindMaxRange question in one sweep —
// the fast path counting.FindMaxRange uses when available (ground-truth
// backends need not pay the binary search's repeated scans). Returns −1
// when φ is unsatisfiable.
func (e *Exhaustive) MaxTrailingZeros(h hash.Func) int {
	e.queries++
	e.solutions()
	best := -1
	if u, ok := hash.AsUint64Hash(h); ok {
		for _, v := range e.solsVal {
			if tz := trailingZerosValue(u.EvalUint64(v), h.OutBits()); tz > best {
				best = tz
			}
		}
		return best
	}
	scratch := bitvec.New(h.OutBits())
	for _, x := range e.sols {
		if tz := hash.EvalTrailingZeros(h, x, scratch); tz > best {
			best = tz
		}
	}
	return best
}

// trailingZerosValue is the string trailing-zero count of the n-bit output
// integer y (see hash.Uint64Hash): n for zero, else the binary count.
func trailingZerosValue(y uint64, n int) int {
	if y == 0 {
		return n
	}
	return bits.TrailingZeros64(y)
}

func satisfies(cons *gf2.System, x bitvec.BitVec) bool {
	for _, eq := range cons.Equations() {
		if eq.A.Dot(x) != eq.RHS {
			return false
		}
	}
	return true
}
