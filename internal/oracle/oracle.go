// Package oracle abstracts the "NP oracle" of the paper behind interfaces
// the model-counting algorithms consume, with per-query metering so
// experiments can report oracle-call counts (the paper's complexity
// currency) independent of the solver's wall-clock speed.
//
// Three backends are provided:
//   - CNF: a CDCL+XOR SAT solver (internal/sat) — the practical substitute
//     for the NP oracle, as in ApproxMC implementations;
//   - DNF: polynomial-time linear algebra per term (no NP oracle needed,
//     matching the FPRAS claims of Theorems 2 and 3);
//   - Exhaustive: brute-force enumeration, the ground-truth backend used to
//     validate the other two and to answer queries (like Proposition 3's
//     trailing-zero oracle over DNF inputs) with no known efficient
//     implementation.
package oracle

import (
	"math/bits"

	"mcf0/internal/bitvec"
	"mcf0/internal/formula"
	"mcf0/internal/gf2"
	"mcf0/internal/hash"
	"mcf0/internal/sat"
)

// Source enumerates solutions of φ conjoined with a linear (XOR) constraint
// system over the formula's variables. It is the primitive behind
// BoundedSAT (Proposition 1) and FindMin's prefix search (Proposition 2).
type Source interface {
	// NVars returns the variable count n.
	NVars() int
	// Enumerate visits up to limit distinct solutions of φ ∧ cons
	// (limit < 0 for all); visit returning false stops early. It returns
	// the number of solutions visited. cons may be nil (no constraints).
	Enumerate(cons *gf2.System, limit int, visit func(bitvec.BitVec) bool) int
	// Queries returns the cumulative number of NP-oracle invocations
	// (SAT calls for the CNF backend; per-term linear solves for DNF).
	Queries() int64
}

// TrailingZeroTester answers Proposition 3's oracle query: is there an
// x ⊨ φ such that h(x) ends in at least t zero bits?
type TrailingZeroTester interface {
	ExistsTrailingZeros(h hash.Func, t int) bool
	Queries() int64
}

// Forkable is implemented by sources that can hand out independent handles
// over the same formula for concurrent trials. A fork shares the immutable
// formula (and any memoized solution list) but meters its own queries
// starting from zero; the parallel counters sum fork meters back into the
// result, so the reported totals match a serial run exactly.
type Forkable interface {
	Fork() Source
}

// ForkTrailingZeroTester returns an independent tester over the same
// formula when tz supports forking, for concurrent median trials.
func ForkTrailingZeroTester(tz TrailingZeroTester) (TrailingZeroTester, bool) {
	f, ok := tz.(Forkable)
	if !ok {
		return nil, false
	}
	t, ok := f.Fork().(TrailingZeroTester)
	return t, ok
}

// CNFSource is the SAT-backed oracle for CNF formulas.
type CNFSource struct {
	cnf     *formula.CNF
	queries int64
}

// NewCNFSource wraps a CNF formula.
func NewCNFSource(c *formula.CNF) *CNFSource { return &CNFSource{cnf: c} }

// Fork returns an independent source over the same formula with its own
// query meter.
func (s *CNFSource) Fork() Source { return NewCNFSource(s.cnf) }

// NVars returns the variable count.
func (s *CNFSource) NVars() int { return s.cnf.N }

// Queries returns the number of SAT-solver invocations so far.
func (s *CNFSource) Queries() int64 { return s.queries }

// Enumerate builds a fresh CDCL solver with φ's clauses plus cons as native
// XOR rows and enumerates models with blocking clauses. Each model costs
// one SAT call, plus one final UNSAT call (mirroring the paper's
// O(p) NP calls for BoundedSAT).
func (s *CNFSource) Enumerate(cons *gf2.System, limit int, visit func(bitvec.BitVec) bool) int {
	if cons != nil && !cons.Consistent() {
		return 0
	}
	solver := sat.New(s.cnf.N)
	for _, cl := range s.cnf.Clauses {
		if !solver.AddClause([]formula.Lit(cl)) {
			return 0
		}
	}
	if cons != nil {
		for _, eq := range cons.Equations() {
			vars := make([]int, 0, eq.A.PopCount())
			for i := 0; i < eq.A.Len(); i++ {
				if eq.A.Get(i) {
					vars = append(vars, i)
				}
			}
			if !solver.AddXOR(vars, eq.RHS) {
				return 0
			}
		}
	}
	count := 0
	for limit < 0 || count < limit {
		s.queries++
		model, ok := solver.Solve()
		if !ok {
			break
		}
		count++
		if !visit(model) {
			break
		}
		if !solver.BlockModel(model) {
			break
		}
	}
	return count
}

// DNFSource is the polynomial-time oracle for DNF formulas: the solutions
// of a term conjoined with linear constraints form an affine subspace,
// enumerable by Gaussian elimination. Solutions appearing in multiple terms
// are deduplicated.
type DNFSource struct {
	dnf     *formula.DNF
	queries int64
}

// NewDNFSource wraps a DNF formula.
func NewDNFSource(d *formula.DNF) *DNFSource { return &DNFSource{dnf: d} }

// Fork returns an independent source over the same formula with its own
// query meter.
func (s *DNFSource) Fork() Source { return NewDNFSource(s.dnf) }

// NVars returns the variable count.
func (s *DNFSource) NVars() int { return s.dnf.N }

// Queries returns the number of per-term linear-system solves.
func (s *DNFSource) Queries() int64 { return s.queries }

// Enumerate visits distinct solutions of φ ∧ cons, term by term.
func (s *DNFSource) Enumerate(cons *gf2.System, limit int, visit func(bitvec.BitVec) bool) int {
	if cons != nil && !cons.Consistent() {
		return 0
	}
	if limit == 0 {
		return 0
	}
	seen := map[bitvec.Fingerprint]bool{}
	count := 0
	stop := false
	for _, t := range s.dnf.Terms {
		if stop {
			break
		}
		sys := s.termSystem(t, cons)
		s.queries++
		if sys == nil || !sys.Consistent() {
			continue
		}
		sys.EnumerateSolutions(-1, func(x bitvec.BitVec) bool {
			fp := x.Fingerprint()
			if seen[fp] {
				return true
			}
			seen[fp] = true
			count++
			if !visit(x) {
				stop = true
				return false
			}
			if limit >= 0 && count >= limit {
				stop = true
				return false
			}
			return true
		})
	}
	return count
}

// termSystem builds the linear system over x equivalent to "x ⊨ term and
// x satisfies cons"; nil when the term is internally contradictory.
func (s *DNFSource) termSystem(t formula.Term, cons *gf2.System) *gf2.System {
	norm, ok := t.Normalize()
	if !ok {
		return nil
	}
	var sys *gf2.System
	if cons != nil {
		sys = cons.Clone()
	} else {
		sys = gf2.NewSystem(s.dnf.N)
	}
	for _, l := range norm {
		unit := bitvec.New(s.dnf.N)
		unit.Set(l.Var, true)
		sys.Add(unit, !l.Neg)
	}
	return sys
}

// Exhaustive is the ground-truth backend: full enumeration over {0,1}^n.
// It implements both Source and TrailingZeroTester. Practical for n ≤ 24.
type Exhaustive struct {
	n       int
	eval    func(bitvec.BitVec) bool
	queries int64
	sols    []bitvec.BitVec // lazily materialised solution list
	solsVal []uint64        // integer forms of sols, for Uint64Hash fast paths
	solsSet bool
}

// NewExhaustive wraps a predicate over n-bit assignments. The predicate
// must be a pure function of its argument (it is shared across forks).
func NewExhaustive(n int, eval func(bitvec.BitVec) bool) *Exhaustive {
	if n > 30 {
		panic("oracle: exhaustive backend beyond 2^30")
	}
	return &Exhaustive{n: n, eval: eval}
}

// Fork returns an independent handle with its own query meter. The
// (immutable once built) solution list is materialised first so that all
// forks share it instead of re-enumerating the universe.
func (e *Exhaustive) Fork() Source {
	e.solutions()
	return &Exhaustive{n: e.n, eval: e.eval, sols: e.sols, solsVal: e.solsVal, solsSet: true}
}

// NVars returns the variable count.
func (e *Exhaustive) NVars() int { return e.n }

// Queries returns the number of full sweeps performed.
func (e *Exhaustive) Queries() int64 { return e.queries }

// Enumerate visits solutions in increasing numeric order. The sweep reuses
// one scratch vector; solutions are cloned only when visited.
func (e *Exhaustive) Enumerate(cons *gf2.System, limit int, visit func(bitvec.BitVec) bool) int {
	e.queries++
	if cons != nil && !cons.Consistent() {
		return 0
	}
	count := 0
	x := bitvec.New(e.n)
	for v := uint64(0); v < 1<<uint(e.n); v++ {
		if limit >= 0 && count >= limit {
			break
		}
		x.SetUint64(v)
		if !e.eval(x) {
			continue
		}
		if cons != nil && !satisfies(cons, x) {
			continue
		}
		count++
		if !visit(x.Clone()) {
			break
		}
	}
	return count
}

// solutions materialises Sol(φ) once so that repeated hash queries scan
// only the solution list instead of the whole universe.
func (e *Exhaustive) solutions() []bitvec.BitVec {
	if !e.solsSet {
		for v := uint64(0); v < 1<<uint(e.n); v++ {
			x := bitvec.FromUint64(v, e.n)
			if e.eval(x) {
				e.sols = append(e.sols, x)
				e.solsVal = append(e.solsVal, v)
			}
		}
		e.solsSet = true
	}
	return e.sols
}

// ExistsTrailingZeros scans the solutions for one whose hash ends in ≥ t
// zeros.
func (e *Exhaustive) ExistsTrailingZeros(h hash.Func, t int) bool {
	e.queries++
	e.solutions()
	if u, ok := h.(hash.Uint64Hash); ok {
		for _, v := range e.solsVal {
			if trailingZerosValue(u.EvalUint64(v), h.OutBits()) >= t {
				return true
			}
		}
		return false
	}
	scratch := bitvec.New(h.OutBits())
	for _, x := range e.sols {
		if hash.EvalTrailingZeros(h, x, scratch) >= t {
			return true
		}
	}
	return false
}

// MaxTrailingZeros answers the whole FindMaxRange question in one sweep —
// the fast path counting.FindMaxRange uses when available (ground-truth
// backends need not pay the binary search's repeated scans). Returns −1
// when φ is unsatisfiable.
func (e *Exhaustive) MaxTrailingZeros(h hash.Func) int {
	e.queries++
	e.solutions()
	best := -1
	if u, ok := h.(hash.Uint64Hash); ok {
		for _, v := range e.solsVal {
			if tz := trailingZerosValue(u.EvalUint64(v), h.OutBits()); tz > best {
				best = tz
			}
		}
		return best
	}
	scratch := bitvec.New(h.OutBits())
	for _, x := range e.sols {
		if tz := hash.EvalTrailingZeros(h, x, scratch); tz > best {
			best = tz
		}
	}
	return best
}

// trailingZerosValue is the string trailing-zero count of the n-bit output
// integer y (see hash.Uint64Hash): n for zero, else the binary count.
func trailingZerosValue(y uint64, n int) int {
	if y == 0 {
		return n
	}
	return bits.TrailingZeros64(y)
}

func satisfies(cons *gf2.System, x bitvec.BitVec) bool {
	for _, eq := range cons.Equations() {
		if eq.A.Dot(x) != eq.RHS {
			return false
		}
	}
	return true
}
