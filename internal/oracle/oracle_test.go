package oracle

import (
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/formula"
	"mcf0/internal/gf2"
	"mcf0/internal/hash"
	"mcf0/internal/stats"
)

// randomSystem builds a random linear constraint system over n variables.
func randomSystem(n, rows int, rng *stats.RNG) *gf2.System {
	sys := gf2.NewSystem(n)
	for i := 0; i < rows; i++ {
		sys.Add(bitvec.Random(n, rng.Uint64), rng.Bool())
	}
	return sys
}

func collect(s Source, cons *gf2.System, limit int) map[string]bool {
	out := map[string]bool{}
	s.Enumerate(cons, limit, func(x bitvec.BitVec) bool {
		out[x.Key()] = true
		return true
	})
	return out
}

func TestSourcesAgreeCNF(t *testing.T) {
	rng := stats.NewRNG(43)
	for trial := 0; trial < 80; trial++ {
		n := 3 + rng.Intn(7)
		cnf := formula.RandomKCNF(n, rng.Intn(3*n), 2+rng.Intn(2), rng)
		cons := randomSystem(n, rng.Intn(4), rng)
		ground := NewExhaustive(n, cnf.Eval)
		cnfSrc := NewCNFSource(cnf)
		want := collect(ground, cons, -1)
		got := collect(cnfSrc, cons, -1)
		if len(got) != len(want) {
			t.Fatalf("trial %d: CNF source found %d, ground %d", trial, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: solution sets differ", trial)
			}
		}
	}
}

func TestSourcesAgreeDNF(t *testing.T) {
	rng := stats.NewRNG(47)
	for trial := 0; trial < 80; trial++ {
		n := 3 + rng.Intn(7)
		k := 1 + rng.Intn(6)
		dnf := formula.RandomDNF(n, k, 1+rng.Intn(min(3, n)), rng)
		cons := randomSystem(n, rng.Intn(4), rng)
		ground := NewExhaustive(n, dnf.Eval)
		dnfSrc := NewDNFSource(dnf)
		want := collect(ground, cons, -1)
		got := collect(dnfSrc, cons, -1)
		if len(got) != len(want) {
			t.Fatalf("trial %d (n=%d k=%d): DNF source found %d, ground %d", trial, n, k, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: solution sets differ", trial)
			}
		}
	}
}

func TestEnumerateRespectsLimit(t *testing.T) {
	rng := stats.NewRNG(53)
	n := 8
	dnf := formula.RandomDNF(n, 4, 2, rng)
	cnf := formula.RandomKCNF(n, 4, 3, rng)
	for _, src := range []Source{
		NewDNFSource(dnf),
		NewCNFSource(cnf),
		NewExhaustive(n, func(bitvec.BitVec) bool { return true }),
	} {
		total := src.Enumerate(nil, -1, func(bitvec.BitVec) bool { return true })
		if total == 0 {
			continue
		}
		lim := total / 2
		if lim == 0 {
			lim = 1
		}
		got := src.Enumerate(nil, lim, func(bitvec.BitVec) bool { return true })
		if got != lim {
			t.Errorf("%T: limit %d returned %d", src, lim, got)
		}
	}
}

func TestEnumerateDistinct(t *testing.T) {
	// Overlapping terms must not produce duplicate solutions.
	d := formula.NewDNF(4)
	d.AddTerm(formula.Term{formula.Pos(0)})                 // 8 solutions
	d.AddTerm(formula.Term{formula.Pos(0), formula.Pos(1)}) // subset of the first
	src := NewDNFSource(d)
	seen := map[string]int{}
	src.Enumerate(nil, -1, func(x bitvec.BitVec) bool {
		seen[x.Key()]++
		return true
	})
	if len(seen) != 8 {
		t.Fatalf("distinct solutions = %d, want 8", len(seen))
	}
	for _, c := range seen {
		if c != 1 {
			t.Fatal("duplicate solution visited")
		}
	}
}

func TestInconsistentConstraints(t *testing.T) {
	n := 4
	cons := gf2.NewSystem(n)
	v := bitvec.FromString("1000")
	cons.Add(v, true)
	cons.Add(v, false)
	d := formula.NewDNF(n)
	d.AddTerm(formula.Term{})
	for _, src := range []Source{
		NewDNFSource(d),
		NewCNFSource(formula.NewCNF(n)),
		NewExhaustive(n, func(bitvec.BitVec) bool { return true }),
	} {
		if got := src.Enumerate(cons, -1, func(bitvec.BitVec) bool { return true }); got != 0 {
			t.Errorf("%T: inconsistent constraints yielded %d solutions", src, got)
		}
	}
}

func TestExistsTrailingZeros(t *testing.T) {
	rng := stats.NewRNG(59)
	n := 6
	d := formula.RandomDNF(n, 3, 2, rng)
	ex := NewExhaustive(n, d.Eval)
	h := hash.NewPoly(n, 3).Draw(rng.Uint64)
	// Compare against direct max computation.
	maxTZ := -1
	for v := uint64(0); v < 1<<uint(n); v++ {
		x := bitvec.FromUint64(v, n)
		if d.Eval(x) {
			if tz := h.Eval(x).TrailingZeros(); tz > maxTZ {
				maxTZ = tz
			}
		}
	}
	for tTest := 0; tTest <= n; tTest++ {
		want := maxTZ >= tTest
		if got := ex.ExistsTrailingZeros(h, tTest); got != want {
			t.Fatalf("ExistsTrailingZeros(%d) = %v, want %v", tTest, got, want)
		}
	}
}

func TestQueriesMetered(t *testing.T) {
	rng := stats.NewRNG(61)
	cnf := formula.RandomKCNF(6, 6, 2, rng)
	src := NewCNFSource(cnf)
	if src.Queries() != 0 {
		t.Fatal("fresh source has queries")
	}
	src.Enumerate(nil, 3, func(bitvec.BitVec) bool { return true })
	if src.Queries() == 0 {
		t.Fatal("queries not metered")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
