// Package distributed implements Section 4 of the paper: distributed DNF
// counting. A DNF φ is partitioned into k subformulas held by k sites; a
// coordinator must produce an (ε, δ)-approximation of |Sol(φ)| while
// minimising communication. All three transformations of Section 3 carry
// over; this package implements each protocol and meters exact message
// bits, the quantity the paper's bounds govern:
//
//   - Bucketing:  Õ(k·(n + 1/ε²)·log(1/δ)) bits — sites send fingerprints
//     and trailing-zero levels of their cell contents;
//   - Minimum:    O(k·n/ε²·log(1/δ)) bits — sites send their Thresh
//     smallest 3n-bit hash values;
//   - Estimation: Õ(k·(n + 1/ε²)·log(1/δ)) bits — sites send one
//     trailing-zero count per hash function.
//
// The sites and coordinator are simulated in-process and deterministically;
// the independent median trials run across Options.Parallelism workers
// (hashes drawn serially up front, per-trial message tallies summed in
// trial order), which changes nothing about the communication cost the
// experiments measure.
package distributed

import (
	"math"

	"mcf0/internal/bitvec"
	"mcf0/internal/counting"
	"mcf0/internal/formula"
	"mcf0/internal/hash"
	"mcf0/internal/oracle"
	"mcf0/internal/par"
	"mcf0/internal/stats"
)

// Options parameterises the protocols (paper constants when zero).
type Options struct {
	Epsilon    float64
	Delta      float64
	Thresh     int
	Iterations int
	RNG        *stats.RNG
	// Parallelism bounds the worker pool simulating the independent median
	// trials. 0 selects GOMAXPROCS; 1 forces serial. Hash functions are
	// drawn serially up front and communication is tallied in trial order,
	// so estimates and metered bits are identical at every level.
	Parallelism int
}

func (o Options) epsilon() float64 {
	if o.Epsilon > 0 {
		return o.Epsilon
	}
	return 0.8
}

func (o Options) delta() float64 {
	if o.Delta > 0 && o.Delta < 1 {
		return o.Delta
	}
	return 0.2
}

func (o Options) thresh() int {
	if o.Thresh > 0 {
		return o.Thresh
	}
	return int(96/(o.epsilon()*o.epsilon())) + 1
}

func (o Options) iterations() int {
	if o.Iterations > 0 {
		return o.Iterations
	}
	t := int(math.Ceil(35 * math.Log2(1/o.delta())))
	if t < 1 {
		t = 1
	}
	return t
}

func (o Options) rng() *stats.RNG {
	if o.RNG != nil {
		return o.RNG
	}
	return stats.NewRNG(0xd15721b07ed)
}

func (o Options) parallelism() int { return par.Workers(o.Parallelism) }

// runTrials executes fn(i) for i in [0, t) on up to workers goroutines;
// fn must write only to its own trial slot. The dynamic pool (par.Run) is
// deliberate: per-trial cost varies with the planted formula, unlike the
// homogeneous per-copy sketch work that par.RunSharded serves.
func runTrials(t, workers int, fn func(i int)) { par.Run(t, workers, fn) }

// Comm tallies the exact number of bits exchanged.
type Comm struct {
	CoordToSites int64 // hash function descriptions broadcast
	SitesToCoord int64 // sketch contents returned
}

// Total returns the total communication in bits.
func (c Comm) Total() int64 { return c.CoordToSites + c.SitesToCoord }

// Result reports the coordinator's estimate and the protocol's cost.
type Result struct {
	Estimate float64
	Comm     Comm
	// PerIteration carries the per-hash estimates behind the median.
	PerIteration []float64
}

// Split partitions a DNF into k subformulas by dealing terms round-robin —
// the "arbitrary partition" of the distributed functional monitoring view.
func Split(d *formula.DNF, k int) []*formula.DNF {
	if k < 1 {
		panic("distributed: need at least one site")
	}
	parts := make([]*formula.DNF, k)
	for i := range parts {
		parts[i] = formula.NewDNF(d.N)
	}
	for i, t := range d.Terms {
		parts[i%k].AddTerm(t)
	}
	return parts
}

// toeplitzBits is the broadcast cost of one H_Toeplitz(n, m) function:
// n+m−1 diagonal bits plus m offset bits.
func toeplitzBits(n, m int) int64 { return int64(n + m - 1 + m) }

// xorBits is the broadcast cost of one H_xor(n, m) function: the full
// matrix plus offset.
func xorBits(n, m int) int64 { return int64(n*m + m) }

// levelBits is the cost of sending one trailing-zero level in [0, n].
func levelBits(n int) int64 {
	b := int64(1)
	for 1<<uint(b) < n+1 {
		b++
	}
	return b
}

// Bucketing runs the distributed Bucketing protocol. Cells are defined by
// trailing zeros of H[i](x) (distributionally identical to the prefix form
// and what lets a site's message ⟨G(x), TrailZero(H[i](x))⟩ serve every
// level ≥ its own): site j sends one tuple per element of its level-m_{i,j}
// cell, where m_{i,j} is the smallest level whose local cell is below
// Thresh. The coordinator unions tuples by fingerprint, finds the smallest
// global level whose cell is below Thresh, and estimates as in ApproxMC.
func Bucketing(parts []*formula.DNF, opts Options) Result {
	k := len(parts)
	n := parts[0].N
	thresh := opts.thresh()
	t := opts.iterations()
	rng := opts.rng()

	// Fingerprint width: collisions among ≤ k·Thresh distinct elements per
	// iteration must be unlikely across t iterations.
	pairs := float64(k*thresh) * float64(k*thresh) * float64(t)
	gBits := int(math.Ceil(math.Log2(pairs / opts.delta())))
	if gBits < 1 {
		gBits = 1
	}
	if gBits > 2*n {
		gBits = 2 * n
	}

	var res Result
	hFam := hash.NewToeplitz(n, n)
	gFam := hash.NewXor(n, gBits)
	g := gFam.Draw(rng.Uint64).(*hash.Linear)
	res.Comm.CoordToSites += int64(k) * xorBits(n, gBits)

	hs := make([]*hash.Linear, t)
	for i := range hs {
		hs[i] = hFam.Draw(rng.Uint64).(*hash.Linear)
	}
	res.Comm.CoordToSites += int64(t) * int64(k) * toeplitzBits(n, n)

	// Every (trial, site) pair gets an independent source handle so trials
	// can run concurrently.
	srcs := make([][]oracle.Source, t)
	for i := range srcs {
		srcs[i] = make([]oracle.Source, k)
		for j := range parts {
			srcs[i][j] = oracle.NewDNFSource(parts[j])
		}
	}

	ests := make([]float64, t)
	sitesToCoord := make([]int64, t)
	runTrials(t, opts.parallelism(), func(i int) {
		h := hs[i]
		hScratch := bitvec.New(n)
		gScratch := bitvec.New(gBits)
		var bitsSent int64

		// tuples: fingerprint key → trailing-zero level of H(x). Each site
		// also reports its local level; the coordinator's tuple set is
		// complete only for levels ≥ the maximum local level (below it,
		// some site had ≥ Thresh elements it did not send).
		tuples := map[bitvec.Fingerprint]int{}
		maxLocal := 0
		for j := 0; j < k; j++ {
			site, local := siteBucketCell(srcs[i][j], h, thresh)
			bitsSent += levelBits(n)
			if local > maxLocal {
				maxLocal = local
			}
			for _, x := range site {
				h.EvalInto(x, hScratch)
				tz := hScratch.TrailingZeros()
				g.EvalInto(x, gScratch)
				fp := gScratch.Fingerprint()
				bitsSent += int64(gBits) + levelBits(n)
				if old, ok := tuples[fp]; !ok || tz > old {
					tuples[fp] = tz
				}
			}
		}
		// Coordinator: smallest level m ≥ maxLocal with
		// |{fp : tz ≥ m}| < Thresh (the true global level is ≥ every local
		// level, so the search range is where the data is complete).
		m := maxLocal
		for {
			count := 0
			for _, tz := range tuples {
				if tz >= m {
					count++
				}
			}
			if count < thresh || m == n {
				ests[i] = float64(count) * math.Pow(2, float64(m))
				break
			}
			m++
		}
		sitesToCoord[i] = bitsSent
	})
	res.PerIteration = ests
	for _, b := range sitesToCoord {
		res.Comm.SitesToCoord += b
	}
	res.Estimate = stats.Median(res.PerIteration)
	return res
}

// siteBucketCell returns the site's level-m cell contents and the level m
// itself, for the smallest m at which the cell is below Thresh — the
// BoundedSAT adaptation of Section 4, with cells keyed by trailing zeros.
func siteBucketCell(src oracle.Source, h *hash.Linear, thresh int) ([]bitvec.BitVec, int) {
	n := h.InBits()
	for m := 0; ; m++ {
		cons := h.SuffixZeroSystem(m)
		var cell []bitvec.BitVec
		c := src.Enumerate(cons, thresh, func(x bitvec.BitVec) bool {
			cell = append(cell, x)
			return true
		})
		if c < thresh || m == n {
			return cell, m
		}
	}
}

// Minimum runs the distributed Minimum protocol: each site sends the
// Thresh lexicographically smallest 3n-bit hash values of its solutions;
// the coordinator keeps the global Thresh smallest.
func Minimum(parts []*formula.DNF, opts Options) Result {
	k := len(parts)
	n := parts[0].N
	thresh := opts.thresh()
	t := opts.iterations()
	rng := opts.rng()
	fam := hash.NewToeplitz(n, 3*n)

	var res Result
	hs := make([]*hash.Linear, t)
	for i := range hs {
		hs[i] = fam.Draw(rng.Uint64).(*hash.Linear)
	}
	res.Comm.CoordToSites += int64(t) * int64(k) * toeplitzBits(n, 3*n)

	ests := make([]float64, t)
	sitesToCoord := make([]int64, t)
	runTrials(t, opts.parallelism(), func(i int) {
		var global []bitvec.BitVec
		var bitsSent int64
		for j := 0; j < k; j++ {
			mins := counting.FindMinDNF(parts[j], hs[i], thresh)
			bitsSent += int64(len(mins)) * int64(3*n)
			global = mergeMins(global, mins, thresh)
		}
		if len(global) < thresh {
			ests[i] = float64(len(global))
		} else {
			f := global[len(global)-1].Fraction()
			if f == 0 {
				ests[i] = float64(len(global))
			} else {
				ests[i] = float64(thresh) / f
			}
		}
		sitesToCoord[i] = bitsSent
	})
	res.PerIteration = ests
	for _, b := range sitesToCoord {
		res.Comm.SitesToCoord += b
	}
	res.Estimate = stats.Median(res.PerIteration)
	return res
}

func mergeMins(a, b []bitvec.BitVec, limit int) []bitvec.BitVec {
	out := make([]bitvec.BitVec, 0, limit)
	i, j := 0, 0
	for (i < len(a) || j < len(b)) && len(out) < limit {
		var v bitvec.BitVec
		switch {
		case i >= len(a):
			v = b[j]
			j++
		case j >= len(b):
			v = a[i]
			i++
		case a[i].Less(b[j]):
			v = a[i]
			i++
		default:
			v = b[j]
			j++
		}
		if len(out) == 0 || !out[len(out)-1].Equal(v) {
			out = append(out, v)
		}
	}
	return out
}

// Estimation runs the distributed Estimation protocol: for every hash
// function the sites send their local maximum trailing-zero count (one
// level value each) and the coordinator takes the maximum — trailing-zero
// maxima compose under union. The range parameter r must satisfy
// 2F0 ≤ 2^r ≤ 50F0 (see RoughR). Sites answer FindMaxRange with the
// exhaustive tester, as no polynomial algorithm is known for DNF
// (Section 3.4); n is therefore capped at 24 here.
func Estimation(parts []*formula.DNF, r int, opts Options) Result {
	k := len(parts)
	n := parts[0].N
	thresh := opts.thresh()
	t := opts.iterations()
	rng := opts.rng()
	s := int(math.Ceil(10 * math.Log2(1/opts.epsilon())))
	if s < 2 {
		s = 2
	}
	fam := hash.NewPoly(n, s)

	// One tester per (trial, site): forks share each site's materialised
	// solution list, so concurrent trials scan it read-only. If a tester
	// ever stops being forkable, collapse to serial — sharing it across
	// workers would race on its query meter.
	workers := opts.parallelism()
	base := make([]*oracle.Exhaustive, k)
	for j := range parts {
		base[j] = oracle.NewExhaustive(n, parts[j].Eval)
	}
	testers := make([][]oracle.TrailingZeroTester, t)
	for i := range testers {
		testers[i] = make([]oracle.TrailingZeroTester, k)
		for j := range base {
			fork, ok := oracle.ForkTrailingZeroTester(base[j])
			if !ok {
				fork = base[j]
				workers = 1
			}
			testers[i][j] = fork
		}
	}

	// Hashes drawn serially in trial-major order, exactly as the serial
	// nested loop would.
	hs := make([]hash.Func, t*thresh)
	for i := range hs {
		hs[i] = fam.Draw(rng.Uint64)
	}

	var res Result
	// Per-(hash, site) message costs are data-independent: s coefficients
	// of n bits down, one level value back.
	res.Comm.CoordToSites += int64(t) * int64(thresh) * int64(k) * int64(s*n)
	res.Comm.SitesToCoord += int64(t) * int64(thresh) * int64(k) * levelBits(n)

	ests := make([]float64, t)
	runTrials(t, workers, func(i int) {
		hits := 0
		for jj := 0; jj < thresh; jj++ {
			best := -1
			for j := 0; j < k; j++ {
				if local := counting.FindMaxRange(testers[i][j], hs[i*thresh+jj], n); local > best {
					best = local
				}
			}
			if best >= r {
				hits++
			}
		}
		ests[i] = stats.CouponEstimate(hits, thresh, r)
	})
	res.PerIteration = ests
	res.Estimate = stats.Median(res.PerIteration)
	return res
}

// RoughR runs a distributed Flajolet–Martin round to pick the Estimation
// protocol's range parameter: sites send the maximum trailing-zero count of
// a shared pairwise-independent linear hash over their local solutions; the
// coordinator medians over trials and offsets into the Lemma 3 window.
func RoughR(parts []*formula.DNF, trials int, opts Options) (int, Comm) {
	k := len(parts)
	n := parts[0].N
	rng := opts.rng()
	fam := hash.NewXor(n, n)
	srcs := make([]*oracle.DNFSource, k)
	for j := range parts {
		srcs[j] = oracle.NewDNFSource(parts[j])
	}
	var comm Comm
	var rs []float64
	for i := 0; i < trials; i++ {
		h := fam.Draw(rng.Uint64).(*hash.Linear)
		comm.CoordToSites += int64(k) * xorBits(n, n)
		best := -1
		for j := 0; j < k; j++ {
			local := counting.FindMaxRangeLinear(srcs[j], h)
			comm.SitesToCoord += levelBits(n)
			if local > best {
				best = local
			}
		}
		if best < 0 {
			return -1, comm // unsatisfiable everywhere
		}
		rs = append(rs, float64(best))
	}
	r := int(stats.Median(rs)) + 3
	if r > n {
		r = n // the Lemma 3 window is infeasible for very dense sets
	}
	return r, comm
}
