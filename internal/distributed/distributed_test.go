package distributed

import (
	"math"
	"testing"

	"mcf0/internal/exact"
	"mcf0/internal/formula"
	"mcf0/internal/stats"
)

func testOpts(seed uint64) Options {
	return Options{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 9, RNG: stats.NewRNG(seed)}
}

func TestSplitPreservesSemantics(t *testing.T) {
	rng := stats.NewRNG(71)
	d := formula.RandomDNF(10, 13, 3, rng)
	for _, k := range []int{1, 2, 5, 13, 20} {
		parts := Split(d, k)
		if len(parts) != k {
			t.Fatalf("Split(%d) returned %d parts", k, len(parts))
		}
		total := 0
		for _, p := range parts {
			total += len(p.Terms)
		}
		if total != len(d.Terms) {
			t.Fatalf("k=%d: terms lost in split", k)
		}
		// Union of parts ≡ original.
		or := formula.NewDNF(d.N)
		for _, p := range parts {
			or = or.Or(p)
		}
		if exact.CountDNF(or) != exact.CountDNF(d) {
			t.Fatalf("k=%d: union of parts differs from original", k)
		}
	}
}

// protocolAccuracy checks a protocol's estimates against the exact count.
func protocolAccuracy(t *testing.T, name string, run func(parts []*formula.DNF, seed uint64) float64) {
	t.Helper()
	rng := stats.NewRNG(73)
	d := formula.RandomDNF(14, 8, 5, rng)
	truth := float64(exact.CountDNF(d))
	for _, k := range []int{1, 3, 6} {
		parts := Split(d, k)
		ok := 0
		const trials = 8
		for s := 0; s < trials; s++ {
			est := run(parts, uint64(2000+s))
			if stats.WithinFactor(est, truth, 0.8) {
				ok++
			}
		}
		if ok < trials*6/10 {
			t.Errorf("%s k=%d: within band only %d/%d (truth %g)", name, k, ok, trials, truth)
		}
	}
}

func TestBucketingProtocolAccuracy(t *testing.T) {
	protocolAccuracy(t, "bucketing", func(parts []*formula.DNF, seed uint64) float64 {
		return Bucketing(parts, testOpts(seed)).Estimate
	})
}

func TestMinimumProtocolAccuracy(t *testing.T) {
	protocolAccuracy(t, "minimum", func(parts []*formula.DNF, seed uint64) float64 {
		return Minimum(parts, testOpts(seed)).Estimate
	})
}

func TestEstimationProtocolAccuracy(t *testing.T) {
	rng := stats.NewRNG(79)
	d := formula.RandomDNF(12, 6, 4, rng)
	truth := float64(exact.CountDNF(d))
	r := int(math.Ceil(math.Log2(2 * truth)))
	parts := Split(d, 4)
	ok := 0
	const trials = 8
	for s := 0; s < trials; s++ {
		opts := testOpts(uint64(3000 + s))
		opts.Thresh = 48
		opts.Iterations = 5
		if stats.WithinFactor(Estimation(parts, r, opts).Estimate, truth, 0.8) {
			ok++
		}
	}
	if ok < trials*6/10 {
		t.Errorf("estimation protocol within band only %d/%d (truth %g)", ok, trials, truth)
	}
}

// TestMinimumMatchesCentralised: with identical hash draws, the distributed
// Minimum coordinator state must equal a single-site run over the whole
// formula — the defining property of the merge.
func TestMinimumMatchesCentralised(t *testing.T) {
	rng := stats.NewRNG(83)
	d := formula.RandomDNF(12, 9, 4, rng)
	for _, k := range []int{1, 2, 4, 9} {
		for seed := uint64(0); seed < 5; seed++ {
			distributed := Minimum(Split(d, k), testOpts(seed)).Estimate
			central := Minimum(Split(d, 1), testOpts(seed)).Estimate
			if distributed != central {
				t.Fatalf("k=%d seed=%d: distributed %g != central %g", k, seed, distributed, central)
			}
		}
	}
}

// TestEstimationMaxComposes: per-hash maxima over sites must equal the
// global maximum (trailing-zero maxima compose under union), so the
// estimate is independent of the partition.
func TestEstimationMaxComposes(t *testing.T) {
	rng := stats.NewRNG(89)
	d := formula.RandomDNF(10, 6, 3, rng)
	truth := float64(exact.CountDNF(d))
	r := int(math.Ceil(math.Log2(2*truth + 1)))
	opts := testOpts(7)
	opts.Iterations = 3
	opts.Thresh = 16
	for _, k := range []int{2, 5} {
		a := Estimation(Split(d, 1), r, testOpts(7)).Estimate
		b := Estimation(Split(d, k), r, testOpts(7)).Estimate
		_ = opts
		if a != b {
			t.Fatalf("k=%d: estimation depends on partition: %g vs %g", k, a, b)
		}
	}
}

// TestCommunicationScaling verifies the shape of the communication bounds:
// Minimum grows like k·n/ε² while Bucketing's site payload grows like
// k·(n + 1/ε²) — so as Thresh (∝1/ε²) grows with n fixed, Minimum's
// bits grow ~3n× faster per unit Thresh.
func TestCommunicationScaling(t *testing.T) {
	rng := stats.NewRNG(97)
	d := formula.RandomDNF(16, 12, 4, rng)
	base := testOpts(1)
	for _, k := range []int{2, 4, 8} {
		parts := Split(d, k)
		buck := Bucketing(parts, base)
		minr := Minimum(parts, base)
		if buck.Comm.Total() == 0 || minr.Comm.Total() == 0 {
			t.Fatal("communication not metered")
		}
		// Minimum sends 3n-bit values; Bucketing sends ~(gBits+log n)-bit
		// tuples. With n=16, Minimum's per-tuple cost must be higher.
		if minr.Comm.SitesToCoord <= buck.Comm.SitesToCoord {
			t.Errorf("k=%d: expected Minimum (%d bits) > Bucketing (%d bits) site→coord",
				k, minr.Comm.SitesToCoord, buck.Comm.SitesToCoord)
		}
	}
	// Communication must grow with k.
	c2 := Minimum(Split(d, 2), base).Comm.Total()
	c8 := Minimum(Split(d, 8), base).Comm.Total()
	if c8 <= c2 {
		t.Errorf("communication did not grow with sites: k=2 %d bits, k=8 %d bits", c2, c8)
	}
}

func TestRoughRWindow(t *testing.T) {
	rng := stats.NewRNG(101)
	d := formula.RandomDNF(14, 7, 4, rng)
	truth := float64(exact.CountDNF(d))
	parts := Split(d, 3)
	r, comm := RoughR(parts, 9, testOpts(11))
	if comm.Total() == 0 {
		t.Error("RoughR communication not metered")
	}
	// 2^r should be within a generous window around [2F0, 50F0].
	low := math.Log2(truth)
	if float64(r) < low-2 || float64(r) > low+9 {
		t.Errorf("RoughR r=%d far from log2(F0)=%.1f", r, low)
	}
}

func TestRoughRUnsat(t *testing.T) {
	d := formula.NewDNF(6)
	d.AddTerm(formula.Term{formula.Pos(0), formula.Negl(0)})
	r, _ := RoughR(Split(d, 2), 3, testOpts(1))
	if r != -1 {
		t.Errorf("unsat RoughR = %d, want -1", r)
	}
}
