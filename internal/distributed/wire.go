// Snapshot-shipping aggregation: the codec-backed counterpart of the
// metered protocols in this package. Instead of simulating per-element
// messages, each site ingests its partition into a same-seed set-stream
// sketch, serializes the *complete* sketch state with the versioned wire
// codec, and ships the snapshot; the coordinator decodes the blobs and
// merges them — the shared-draw Merge precondition is enforced against
// the decoded hash structure, exactly as it would be across real nodes.
//
// Because the sketches are idempotent, order-insensitive functions of the
// element set, the coordinator's estimate is bit-identical to a single
// sketch ingesting the concatenated stream — the differential gate the
// tests pin for both the live-Merge path and the marshal→unmarshal→Merge
// path.
package distributed

import (
	"fmt"

	"mcf0/internal/formula"
	"mcf0/internal/setstream"
	"mcf0/internal/stats"
)

// CombineDNFSnapshots decodes encoded DNF-stream snapshots (from
// setstream.DNFStream.MarshalBinary) and merges them into one stream.
// All snapshots must come from same-seed sketches; a foreign draw or a
// corrupt blob fails with a descriptive error and no partial result.
func CombineDNFSnapshots(blobs [][]byte, parallelism int) (*setstream.DNFStream, error) {
	if len(blobs) == 0 {
		return nil, fmt.Errorf("distributed: no snapshots to combine")
	}
	merged, err := setstream.DecodeDNFStream(blobs[0], parallelism)
	if err != nil {
		return nil, fmt.Errorf("distributed: snapshot 0: %w", err)
	}
	for j, blob := range blobs[1:] {
		dec, err := setstream.DecodeDNFStream(blob, parallelism)
		if err != nil {
			return nil, fmt.Errorf("distributed: snapshot %d: %w", j+1, err)
		}
		if err := merged.Merge(dec); err != nil {
			return nil, fmt.Errorf("distributed: snapshot %d: %w", j+1, err)
		}
	}
	return merged, nil
}

// SketchAndShip runs the snapshot-shipping protocol over a partitioned
// DNF: the coordinator broadcasts one 64-bit seed, every site
// deterministically re-derives the shared hash draws, ingests its
// subformula into a Minimum-style set-stream sketch, and ships the
// encoded snapshot; the coordinator decodes and merges. Communication is
// metered exactly — 64 bits per site down, the encoded snapshot sizes
// up — and the estimate is bit-identical to a single same-seed sketch
// ingesting the whole formula.
func SketchAndShip(parts []*formula.DNF, seed uint64, opts Options) (Result, error) {
	k := len(parts)
	if k == 0 {
		return Result{}, fmt.Errorf("distributed: no sites")
	}
	n := parts[0].N
	mkOpts := func() setstream.Options {
		return setstream.Options{
			Epsilon:     opts.Epsilon,
			Delta:       opts.Delta,
			Thresh:      opts.Thresh,
			Iterations:  opts.Iterations,
			RNG:         stats.NewRNG(seed),
			Parallelism: opts.Parallelism,
		}
	}

	var res Result
	res.Comm.CoordToSites = int64(k) * 64 // the seed broadcast

	// Sites run independently (their sketches share draws by seed, not by
	// pointer); each ships one snapshot blob.
	blobs := make([][]byte, k)
	errs := make([]error, k)
	runTrials(k, opts.parallelism(), func(j int) {
		site := setstream.NewDNFStream(n, mkOpts())
		site.ProcessDNF(parts[j])
		blobs[j], errs[j] = site.MarshalBinary()
	})
	for j, err := range errs {
		if err != nil {
			return Result{}, fmt.Errorf("distributed: site %d snapshot: %w", j, err)
		}
		res.Comm.SitesToCoord += int64(len(blobs[j])) * 8
	}

	merged, err := CombineDNFSnapshots(blobs, opts.Parallelism)
	if err != nil {
		return Result{}, err
	}
	res.Estimate = merged.Estimate()
	return res, nil
}
