package distributed

import (
	"fmt"
	"testing"

	"mcf0/internal/faultinject"
	"mcf0/internal/formula"
	"mcf0/internal/setstream"
	"mcf0/internal/stats"
)

// TestResilientShipMatchesLossless: over a lossless transport the
// resilient path is SketchAndShip exactly — same estimate, same metered
// bits.
func TestResilientShipMatchesLossless(t *testing.T) {
	const seed = 0x5ee0
	d := formula.RandomDNF(12, 11, 4, stats.NewRNG(77))
	for _, k := range []int{1, 3} {
		parts := Split(d, k)
		want, err := SketchAndShip(parts, seed, shipOpts())
		if err != nil {
			t.Fatal(err)
		}
		got, err := SketchAndShipResilient(parts, seed, shipOpts(), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Estimate != want.Estimate {
			t.Fatalf("k=%d: resilient estimate %v != SketchAndShip %v", k, got.Estimate, want.Estimate)
		}
		if got.Comm != want.Comm {
			t.Fatalf("k=%d: lossless resilient comm %+v != SketchAndShip %+v", k, got.Comm, want.Comm)
		}
	}
}

// TestResilientShipUnderFlakyTransport: a seeded flaky transport drops
// and mangles deliveries; retries must recover a bit-identical estimate
// while the failed attempts show up in the communication meter.
func TestResilientShipUnderFlakyTransport(t *testing.T) {
	const seed = 0x5ee0
	d := formula.RandomDNF(12, 11, 4, stats.NewRNG(77))
	parts := Split(d, 4)
	want, err := SketchAndShip(parts, seed, shipOpts())
	if err != nil {
		t.Fatal(err)
	}

	// Deterministic faults in (site, attempt): ~half of first and second
	// deliveries are disturbed — dropped outright or truncated in flight
	// (the coordinator's decode-verify catches the mangled ones).
	faults := 0
	transport := func(site, attempt int, blob []byte) ([]byte, error) {
		frac := faultinject.FracAt(0xf1a4, uint64(site)<<8|uint64(attempt))
		switch {
		case attempt < 2 && frac < 0.25:
			faults++
			return nil, fmt.Errorf("injected drop (site %d attempt %d)", site, attempt)
		case attempt < 2 && frac < 0.5:
			faults++
			return blob[:len(blob)/2], nil
		}
		return blob, nil
	}
	got, err := SketchAndShipResilient(parts, seed, shipOpts(), transport, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate != want.Estimate {
		t.Fatalf("estimate under flaky transport %v != lossless %v (invariant 9 broken)",
			got.Estimate, want.Estimate)
	}
	if faults == 0 {
		t.Fatal("flaky transport injected nothing; the test validated an empty hypothesis")
	}
	if got.Comm.SitesToCoord <= want.Comm.SitesToCoord {
		t.Fatalf("failed deliveries not metered: resilient %d bits <= lossless %d bits",
			got.Comm.SitesToCoord, want.Comm.SitesToCoord)
	}
}

// TestResilientShipDuplicateDeliveryIdempotent: merging the same site
// snapshot twice (a duplicate delivery after a lost ack) cannot move the
// estimate — sketch union is idempotent.
func TestResilientShipDuplicateDeliveryIdempotent(t *testing.T) {
	const seed = 0x5ee0
	d := formula.RandomDNF(12, 9, 4, stats.NewRNG(78))
	parts := Split(d, 3)
	blobs := make([][]byte, len(parts))
	for j, p := range parts {
		s := setstream.NewDNFStream(d.N, shipStreamOpts(seed, 1))
		s.ProcessDNF(p)
		blob, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		blobs[j] = blob
	}
	once, err := CombineDNFSnapshots(blobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	doubled := append(append([][]byte{}, blobs...), blobs...)
	twice, err := CombineDNFSnapshots(doubled, 1)
	if err != nil {
		t.Fatal(err)
	}
	if once.Estimate() != twice.Estimate() {
		t.Fatalf("duplicate delivery moved the estimate: %v -> %v", once.Estimate(), twice.Estimate())
	}
}

// TestResilientShipUndeliverable: a transport that always fails for one
// site exhausts the budget and surfaces a descriptive error, not a
// partial merge.
func TestResilientShipUndeliverable(t *testing.T) {
	d := formula.RandomDNF(10, 6, 3, stats.NewRNG(79))
	parts := Split(d, 2)
	transport := func(site, attempt int, blob []byte) ([]byte, error) {
		if site == 1 {
			return nil, fmt.Errorf("site 1 unreachable")
		}
		return blob, nil
	}
	if _, err := SketchAndShipResilient(parts, 1, shipOpts(), transport, 2); err == nil {
		t.Fatal("undeliverable site did not fail the protocol")
	}
}
