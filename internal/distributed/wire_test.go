package distributed

import (
	"bytes"
	"testing"

	"mcf0/internal/formula"
	"mcf0/internal/setstream"
	"mcf0/internal/stats"
)

func shipOpts() Options {
	return Options{Epsilon: 0.8, Delta: 0.2, Thresh: 16, Iterations: 5}
}

func shipStreamOpts(seed uint64, par int) setstream.Options {
	return setstream.Options{Epsilon: 0.8, Delta: 0.2, Thresh: 16, Iterations: 5,
		RNG: stats.NewRNG(seed), Parallelism: par}
}

// Differential gate for the snapshot-shipping protocol: the coordinator's
// estimate must be bit-identical to (a) a single same-seed sketch
// ingesting the whole formula and (b) an in-process live Merge of the
// site sketches — at several site counts and parallelism levels.
func TestSketchAndShipDifferential(t *testing.T) {
	const seed = 0x5ee0
	d := formula.RandomDNF(12, 11, 4, stats.NewRNG(77))
	for _, k := range []int{1, 2, 5} {
		for _, par := range []int{1, 4} {
			parts := Split(d, k)
			opts := shipOpts()
			opts.Parallelism = par
			res, err := SketchAndShip(parts, seed, opts)
			if err != nil {
				t.Fatalf("k=%d par=%d: %v", k, par, err)
			}

			single := setstream.NewDNFStream(d.N, shipStreamOpts(seed, par))
			single.ProcessDNF(d)
			if res.Estimate != single.Estimate() {
				t.Fatalf("k=%d par=%d: shipped estimate %v != single-node %v",
					k, par, res.Estimate, single.Estimate())
			}

			live := setstream.NewDNFStream(d.N, shipStreamOpts(seed, par))
			live.ProcessDNF(parts[0])
			for _, p := range parts[1:] {
				site := setstream.NewDNFStream(d.N, shipStreamOpts(seed, par))
				site.ProcessDNF(p)
				if err := live.Merge(site); err != nil {
					t.Fatalf("k=%d par=%d: live merge: %v", k, par, err)
				}
			}
			if res.Estimate != live.Estimate() {
				t.Fatalf("k=%d par=%d: shipped estimate %v != live merge %v",
					k, par, res.Estimate, live.Estimate())
			}

			if res.Comm.CoordToSites != int64(k)*64 {
				t.Fatalf("k=%d: seed broadcast metered as %d bits", k, res.Comm.CoordToSites)
			}
			if res.Comm.SitesToCoord <= 0 {
				t.Fatalf("k=%d: no snapshot bits metered", k)
			}
		}
	}
}

// CombineDNFSnapshots must reject corrupt blobs, foreign-seed snapshots,
// and empty input — with errors, never a panic or partial merge.
func TestCombineDNFSnapshotsErrors(t *testing.T) {
	d := formula.RandomDNF(10, 6, 3, stats.NewRNG(79))
	mk := func(seed uint64) []byte {
		s := setstream.NewDNFStream(d.N, shipStreamOpts(seed, 1))
		s.ProcessDNF(d)
		blob, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return blob
	}
	if _, err := CombineDNFSnapshots(nil, 1); err == nil {
		t.Fatal("empty snapshot list combined")
	}
	if _, err := CombineDNFSnapshots([][]byte{mk(1), mk(2)}, 1); err == nil {
		t.Fatal("foreign-seed snapshots merged")
	}
	corrupt := bytes.Clone(mk(1))
	corrupt = corrupt[:len(corrupt)-3]
	if _, err := CombineDNFSnapshots([][]byte{mk(1), corrupt}, 1); err == nil {
		t.Fatal("truncated snapshot merged")
	}
}
