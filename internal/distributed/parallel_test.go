package distributed

import (
	"reflect"
	"testing"

	"mcf0/internal/formula"
	"mcf0/internal/stats"
)

// Determinism regression: the distributed protocols must report identical
// estimates, per-iteration values, and metered communication bits at every
// parallelism level for a fixed seed.

func parOpts(par int) Options {
	return Options{Epsilon: 0.8, Delta: 0.2, Thresh: 12, Iterations: 7,
		RNG: stats.NewRNG(0xfab), Parallelism: par}
}

func checkProtocol(t *testing.T, name string, run func(par int) Result) {
	t.Helper()
	serial := run(1)
	for _, par := range []int{2, 4} {
		got := run(par)
		if got.Estimate != serial.Estimate {
			t.Fatalf("%s: parallelism %d estimate %v, serial %v",
				name, par, got.Estimate, serial.Estimate)
		}
		if !reflect.DeepEqual(got.PerIteration, serial.PerIteration) {
			t.Fatalf("%s: parallelism %d per-iteration mismatch", name, par)
		}
		if got.Comm != serial.Comm {
			t.Fatalf("%s: parallelism %d comm %+v, serial %+v",
				name, par, got.Comm, serial.Comm)
		}
	}
}

func TestDistributedParallelDeterminism(t *testing.T) {
	rng := stats.NewRNG(41)
	d := formula.RandomDNF(12, 8, 4, rng)
	parts := Split(d, 3)
	checkProtocol(t, "Bucketing", func(par int) Result {
		return Bucketing(parts, parOpts(par))
	})
	checkProtocol(t, "Minimum", func(par int) Result {
		return Minimum(parts, parOpts(par))
	})
	small := formula.RandomDNF(10, 6, 3, rng)
	smallParts := Split(small, 3)
	r, _ := RoughR(smallParts, 5, parOpts(1))
	if r < 0 {
		t.Fatal("unexpectedly unsatisfiable")
	}
	checkProtocol(t, "Estimation", func(par int) Result {
		o := parOpts(par)
		o.Thresh = 6
		o.Iterations = 5
		return Estimation(smallParts, r, o)
	})
}
