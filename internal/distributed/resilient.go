// Resilient snapshot shipping: SketchAndShip over a lossy transport.
// Sites re-send their snapshot blob until the coordinator holds a copy
// that decode-verifies, and every attempt — including the failed ones —
// is metered, so the communication cost of unreliability is visible
// instead of idealised away. Because each site's sketch is a pure
// function of its partition and the shared seed, a re-sent or even
// duplicated snapshot carries the identical state: delivery retries can
// never move the coordinator's estimate (ARCHITECTURE.md invariant 9).
package distributed

import (
	"fmt"

	"mcf0/internal/formula"
	"mcf0/internal/setstream"
	"mcf0/internal/stats"
)

// ShipTransport delivers one site's encoded snapshot to the coordinator
// and returns the bytes as received there; attempt counts deliveries of
// this site's blob (0 = first try). A transport models faults by
// returning an error (connection lost), or by returning a mangled blob —
// the coordinator decode-verifies every delivery and treats both the
// same: retry.
type ShipTransport func(site, attempt int, blob []byte) ([]byte, error)

// SketchAndShipResilient is SketchAndShip with per-site delivery retries
// over transport (nil = lossless direct delivery). Each site re-ships
// its snapshot until the coordinator decodes it successfully or the
// per-site budget of maxRetries re-sends is exhausted; the bits of every
// attempt, failed ones included, are tallied in Comm.SitesToCoord. The
// final estimate is bit-identical to SketchAndShip on the same inputs:
// retries change what the protocol costs, never what it computes.
func SketchAndShipResilient(parts []*formula.DNF, seed uint64, opts Options, transport ShipTransport, maxRetries int) (Result, error) {
	k := len(parts)
	if k == 0 {
		return Result{}, fmt.Errorf("distributed: no sites")
	}
	if transport == nil {
		transport = func(_, _ int, blob []byte) ([]byte, error) { return blob, nil }
	}

	var res Result
	res.Comm.CoordToSites = int64(k) * 64 // the seed broadcast

	// Sites sketch their partitions exactly as in SketchAndShip.
	blobs := make([][]byte, k)
	errs := make([]error, k)
	runTrials(k, opts.parallelism(), func(j int) {
		site := setstream.NewDNFStream(parts[j].N, setstream.Options{
			Epsilon:     opts.Epsilon,
			Delta:       opts.Delta,
			Thresh:      opts.Thresh,
			Iterations:  opts.Iterations,
			RNG:         stats.NewRNG(seed),
			Parallelism: opts.Parallelism,
		})
		site.ProcessDNF(parts[j])
		blobs[j], errs[j] = site.MarshalBinary()
	})
	for j, err := range errs {
		if err != nil {
			return Result{}, fmt.Errorf("distributed: site %d snapshot: %w", j, err)
		}
	}

	// Delivery: ship each blob until a copy decode-verifies at the
	// coordinator. Attempts are serial per site and tallied in site order,
	// so the metered bits are deterministic for a deterministic transport.
	received := make([][]byte, k)
	for j := range blobs {
		var lastErr error
		delivered := false
		for attempt := 0; attempt <= maxRetries; attempt++ {
			got, err := transport(j, attempt, blobs[j])
			res.Comm.SitesToCoord += int64(len(blobs[j])) * 8
			if err != nil {
				lastErr = err
				continue
			}
			if _, err := setstream.DecodeDNFStream(got, opts.Parallelism); err != nil {
				lastErr = fmt.Errorf("decode-verify: %w", err)
				continue
			}
			received[j] = got
			delivered = true
			break
		}
		if !delivered {
			return Result{}, fmt.Errorf("distributed: site %d: snapshot undeliverable after %d attempts: %w",
				j, maxRetries+1, lastErr)
		}
	}

	merged, err := CombineDNFSnapshots(received, opts.Parallelism)
	if err != nil {
		return Result{}, err
	}
	res.Estimate = merged.Estimate()
	return res, nil
}
