package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// HTTPTarget drives a live f0d daemon through the routes documented in
// docs/API.md: POST /v1/sketches/{name}/add, GET …/estimate, POST
// …/snapshot, with bearer-token auth. One instance is shared by all
// workers; request bodies are built with pooled buffers so the
// generator itself stays off the allocator's hot path.
type HTTPTarget struct {
	base    string // URL prefix up to /v1, no trailing slash
	token   string
	sketch  string
	client  *http.Client
	retry   RetryPolicy
	retries retryCounter
	bufs    sync.Pool
}

// HTTPConfig parameterises an HTTP target.
type HTTPConfig struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Token is the tenant's bearer token.
	Token string
	// Sketch names the target sketch.
	Sketch string
	// Clients sizes the connection pool (≥ Spec.Clients keeps every
	// worker on a persistent connection).
	Clients int
	// Timeout bounds one request (0 = 30s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests pass httptest clients);
	// when set, Clients and Timeout are ignored.
	Client *http.Client
	// Retry configures seeded backoff-with-jitter retries (zero value =
	// no retries, preserving single-shot behaviour).
	Retry RetryPolicy
}

// NewHTTPTarget builds an HTTP target; it performs no I/O until the
// first op (use CreateSketch to ensure the sketch exists).
func NewHTTPTarget(cfg HTTPConfig) (*HTTPTarget, error) {
	if cfg.BaseURL == "" || cfg.Sketch == "" {
		return nil, fmt.Errorf("loadgen: HTTP target needs a base URL and a sketch name")
	}
	client := cfg.Client
	if client == nil {
		conns := cfg.Clients
		if conns < 2 {
			conns = 2
		}
		timeout := cfg.Timeout
		if timeout <= 0 {
			timeout = 30 * time.Second
		}
		client = &http.Client{
			Timeout: timeout,
			Transport: &http.Transport{
				MaxIdleConns:        conns,
				MaxIdleConnsPerHost: conns,
			},
		}
	}
	return &HTTPTarget{
		base:   strings.TrimRight(cfg.BaseURL, "/"),
		token:  cfg.Token,
		sketch: cfg.Sketch,
		client: client,
		retry:  cfg.Retry,
	}, nil
}

// Retries returns how many retry attempts the target has issued (the
// chaos soak's evidence that faults actually fired and were absorbed).
func (t *HTTPTarget) Retries() uint64 { return t.retries.total() }

// apiError is the daemon's error envelope.
type apiError struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// do issues one request with the target's retry policy: transport
// errors, retryable statuses, and undecodable bodies are retried with
// seeded backoff-with-jitter up to the policy's budget; the last error
// is returned when the budget runs out. Retrying is safe because every
// op is idempotent under the daemon's set semantics.
func (t *HTTPTarget) do(method, url string, body []byte, out any) error {
	var err error
	for attempt := 0; ; attempt++ {
		var retryable bool
		var retryAfter time.Duration
		retryable, retryAfter, err = t.doOnce(method, url, body, out)
		if err == nil || !retryable || attempt >= t.retry.Max {
			return err
		}
		t.retry.sleep(t.retry.backoff(attempt, t.retries.next(), retryAfter))
	}
}

// doOnce issues one attempt and fully drains the response (connection
// reuse); non-2xx statuses decode the error envelope into the returned
// error. When out is non-nil the response body is decoded into it.
func (t *HTTPTarget) doOnce(method, url string, body []byte, out any) (retryable bool, retryAfter time.Duration, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return false, 0, err
	}
	if t.token != "" {
		req.Header.Set("Authorization", "Bearer "+t.token)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return true, 0, err // transport errors (resets, timeouts) are always retryable
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		retryable = retryableStatus(resp.StatusCode)
		retryAfter = parseRetryAfter(resp.Header)
		var envelope apiError
		if derr := json.NewDecoder(resp.Body).Decode(&envelope); derr == nil && envelope.Error.Code != "" {
			return retryable, retryAfter, fmt.Errorf("loadgen: %s %s: %s (%s)", method, url, envelope.Error.Code, envelope.Error.Message)
		}
		return retryable, retryAfter, fmt.Errorf("loadgen: %s %s: HTTP %d", method, url, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			// A 2xx with an undecodable body is a truncated or corrupted
			// response: the op succeeded server-side, so replaying it is
			// harmless and recovers the payload.
			return true, 0, fmt.Errorf("loadgen: %s %s: decoding response: %w", method, url, err)
		}
	}
	return false, 0, nil
}

// CreateSketch creates the target sketch (POST /v1/sketches) with the
// given parameters; an already-existing sketch is an error, since its
// seed/config may not match the workload's reference run.
func (t *HTTPTarget) CreateSketch(bits int, algorithm string, seed uint64, replicas int) error {
	req := map[string]any{"name": t.sketch, "bits": bits, "seed": strconv.FormatUint(seed, 10)}
	if algorithm != "" {
		req["algorithm"] = algorithm
	}
	if replicas > 0 {
		req["replicas"] = replicas
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return t.do("POST", t.base+"/v1/sketches", body, nil)
}

// DeleteSketch removes the target sketch and its snapshots.
func (t *HTTPTarget) DeleteSketch() error {
	return t.do("DELETE", t.base+"/v1/sketches/"+t.sketch, nil, nil)
}

// ingestBody renders {"elements":[…]} without reflection; values above
// 2^53 are emitted as decimal strings per the API's 64-bit convention,
// so no JSON double ever rounds an element.
func ingestBody(buf []byte, batch []uint64) []byte {
	buf = append(buf, `{"elements":[`...)
	for i, x := range batch {
		if i > 0 {
			buf = append(buf, ',')
		}
		if x > 1<<53 {
			buf = append(buf, '"')
			buf = strconv.AppendUint(buf, x, 10)
			buf = append(buf, '"')
		} else {
			buf = strconv.AppendUint(buf, x, 10)
		}
	}
	return append(buf, `]}`...)
}

// Ingest posts one batch to the add endpoint.
func (t *HTTPTarget) Ingest(batch []uint64) error {
	b, _ := t.bufs.Get().(*[]byte)
	if b == nil {
		b = new([]byte)
	}
	*b = ingestBody((*b)[:0], batch)
	err := t.do("POST", t.base+"/v1/sketches/"+t.sketch+"/add", *b, nil)
	t.bufs.Put(b)
	return err
}

// Estimate queries the estimate endpoint.
func (t *HTTPTarget) Estimate() (float64, error) {
	var out struct {
		Estimate float64 `json:"estimate"`
	}
	if err := t.do("GET", t.base+"/v1/sketches/"+t.sketch+"/estimate", nil, &out); err != nil {
		return 0, err
	}
	return out.Estimate, nil
}

// Snapshot posts to the snapshot endpoint. Against a daemon running
// without -data this fails with snapshots_disabled — visible in the
// report's snapshot error count rather than swallowed.
func (t *HTTPTarget) Snapshot() error {
	return t.do("POST", t.base+"/v1/sketches/"+t.sketch+"/snapshot", nil, nil)
}
