package loadgen

import (
	"math/bits"
	"time"
)

// Histogram bucket geometry: values below 2^histSubBits land in exact
// unit buckets; above that, each power-of-two octave is split into
// histSubBuckets sub-buckets, bounding the relative quantization error
// of any recorded value by 1/histSubBuckets ≈ 3%. The layout is fixed
// (1920 buckets for the full uint64 range), so histograms merge by
// plain vector addition with no rebinning.
const (
	histSubBits    = 5
	histSubBuckets = 1 << histSubBits
	histNumBuckets = histSubBuckets + (64-histSubBits)*histSubBuckets
)

// Histogram is a fixed-bucket log-linear latency histogram (values in
// nanoseconds). The zero value is ready to use. Not safe for concurrent
// writers — the runner keeps one per worker per op kind and merges.
type Histogram struct {
	counts [histNumBuckets]uint64
	n      uint64
	sum    uint64
	min    uint64
	max    uint64
}

// bucketIndex maps a value to its bucket; monotone in v and exact below
// histSubBuckets.
func bucketIndex(v uint64) int {
	if v < histSubBuckets {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // ≥ histSubBits
	top := exp - histSubBits
	sub := (v >> uint(top)) & (histSubBuckets - 1)
	return histSubBuckets + top*histSubBuckets + int(sub)
}

// bucketUpper returns the largest value a bucket holds (its inclusive
// upper bound) — the conservative representative quantiles report.
func bucketUpper(idx int) uint64 {
	if idx < histSubBuckets {
		return uint64(idx)
	}
	top := (idx - histSubBuckets) / histSubBuckets
	sub := uint64((idx-histSubBuckets)%histSubBuckets) + histSubBuckets
	return (sub+1)<<uint(top) - 1
}

// Record absorbs one value.
func (h *Histogram) Record(v uint64) {
	h.counts[bucketIndex(v)]++
	h.n++
	h.sum += v
	if h.n == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// RecordDuration absorbs one latency (negative durations clamp to 0).
func (h *Histogram) RecordDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.n }

// Min and Max return the exact extremes of the recorded values (0 when
// empty); Mean their arithmetic mean.
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the exact maximum recorded value.
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the mean recorded value.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) of the
// recorded values, within the bucket resolution; the bound is clamped
// to the exact observed extremes. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	target := uint64(q * float64(h.n))
	if float64(target) < q*float64(h.n) {
		target++ // ceil
	}
	if target < 1 {
		target = 1
	}
	if target > h.n {
		target = h.n
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			v := bucketUpper(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Merge adds other's recorded values into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.n == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
}
