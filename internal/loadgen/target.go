package loadgen

import (
	"fmt"

	"mcf0"
)

// Target abstracts the system under load: the three op kinds of a mixed
// workload against either sketch front. Implementations must be safe
// for concurrent use by Spec.Clients goroutines.
type Target interface {
	// Ingest absorbs one batch of stream elements.
	Ingest(batch []uint64) error
	// Estimate returns the current distinct-count estimate.
	Estimate() (float64, error)
	// Snapshot persists (HTTP) or serializes (in-process) the sketch
	// state — the op that prices crash-recovery cost under load.
	Snapshot() error
}

// InProc drives a ConcurrentF0 directly — the target for profiling the
// sketch engine itself, with no HTTP or JSON on the path. Snapshot ops
// exercise the wire codec (MarshalBinary of the merged state).
type InProc struct {
	front *mcf0.ConcurrentF0
}

// NewInProc wraps an existing concurrent front.
func NewInProc(front *mcf0.ConcurrentF0) *InProc { return &InProc{front: front} }

// Front returns the wrapped sketch (the CLI reads its final estimate).
func (t *InProc) Front() *mcf0.ConcurrentF0 { return t.front }

// Ingest absorbs one batch. ConcurrentF0.AddBatch panics on elements
// outside the universe; the generator only emits in-range elements, so
// a panic here is a harness bug and is allowed to propagate.
func (t *InProc) Ingest(batch []uint64) error {
	t.front.AddBatch(batch)
	return nil
}

// Estimate returns the merged estimate.
func (t *InProc) Estimate() (float64, error) { return t.front.Estimate(), nil }

// Snapshot encodes the merged sketch state and discards the bytes.
func (t *InProc) Snapshot() error {
	if _, err := t.front.MarshalBinary(); err != nil {
		return fmt.Errorf("loadgen: snapshot encode: %w", err)
	}
	return nil
}
