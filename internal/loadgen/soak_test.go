package loadgen_test

import (
	"testing"

	"mcf0"
	"mcf0/internal/loadgen"
	"mcf0/internal/server"
	"mcf0/internal/server/middleware"

	"net/http/httptest"
)

// TestSoakHTTPDeterminism is the loadgen-powered soak test: a short
// seeded mixed workload (multi-writer ingest, concurrent estimates,
// snapshots to a real data directory) drives an httptest-hosted f0d,
// and at the end the HTTP estimate must still equal an in-process
// serial sketch over the same generated stream — invariant 7 holding
// under concurrent mixed load, race-checked by the CI -race step.
func TestSoakHTTPDeterminism(t *testing.T) {
	srv, err := server.New(server.Config{
		Tenants: []middleware.TenantConfig{{Name: "soak", Token: "soak-token"}},
		DataDir: t.TempDir(),
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := loadgen.Spec{
		Seed: 20210401, Ops: 300, Clients: 6, Bits: 20, Batch: 48,
		IngestWeight: 85, EstimateWeight: 13, SnapshotWeight: 2,
		Keys: 3000, ZipfS: 1.2,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}

	const sketchSeed = 4242
	target, err := loadgen.NewHTTPTarget(loadgen.HTTPConfig{
		BaseURL: ts.URL, Token: "soak-token", Sketch: "soak",
		Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := target.CreateSketch(spec.Bits, "minimum", sketchSeed, 3); err != nil {
		t.Fatal(err)
	}

	rep, err := loadgen.Run(spec, target)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalOps != uint64(spec.Ops) {
		t.Fatalf("ran %d ops, want %d", rep.TotalOps, spec.Ops)
	}
	if rep.TotalErrors != 0 {
		t.Fatalf("%d errors under soak: %+v", rep.TotalErrors, rep.Kinds)
	}
	if rep.Kinds["ingest"] == nil || rep.Kinds["estimate"] == nil || rep.Kinds["snapshot"] == nil {
		t.Fatalf("mixed workload missing a kind: %v", rep.Kinds)
	}

	// Invariant 7: the served estimate equals the in-process estimate
	// over the union stream, bit-identically, after all the interleaved
	// writers, readers, and snapshots.
	ref, err := mcf0.NewF0(spec.Bits, mcf0.AlgorithmMinimum, mcf0.Config{Seed: sketchSeed})
	if err != nil {
		t.Fatal(err)
	}
	ref.AddBatch(spec.IngestedElements())
	if want := ref.Estimate(); rep.FinalEstimate != want {
		t.Fatalf("HTTP estimate after soak %v != in-process estimate %v", rep.FinalEstimate, want)
	}

	// The delete path leaves the tenant clean for quota accounting.
	if err := target.DeleteSketch(); err != nil {
		t.Fatal(err)
	}
}

// TestSoakSnapshotsDisabled: against a daemon without -data, snapshot
// ops surface as counted errors (never hidden, never a run failure).
func TestSoakSnapshotsDisabled(t *testing.T) {
	srv, err := server.New(server.Config{
		Tenants: []middleware.TenantConfig{{Name: "soak", Token: "soak-token"}},
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := loadgen.Spec{
		Seed: 5, Ops: 60, Clients: 3, Bits: 16, Batch: 16,
		IngestWeight: 50, SnapshotWeight: 50,
	}
	target, err := loadgen.NewHTTPTarget(loadgen.HTTPConfig{
		BaseURL: ts.URL, Token: "soak-token", Sketch: "nosnap", Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := target.CreateSketch(spec.Bits, "", 1, 1); err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.Run(spec, target)
	if err != nil {
		t.Fatal(err)
	}
	snap := rep.Kinds["snapshot"]
	if snap == nil || snap.Count == 0 {
		t.Fatal("no snapshot ops ran")
	}
	if snap.Errors != snap.Count {
		t.Fatalf("snapshots_disabled: %d/%d snapshot ops errored, want all", snap.Errors, snap.Count)
	}
	if ing := rep.Kinds["ingest"]; ing == nil || ing.Errors != 0 {
		t.Fatalf("ingest should stay clean: %+v", ing)
	}
	// An errors=0 SLO trips on exactly this — the injected-violation
	// check CI exercises end-to-end through cmd/f0load.
	slo, err := loadgen.ParseSLO("errors=0")
	if err != nil {
		t.Fatal(err)
	}
	if v := slo.Check(rep); len(v) == 0 {
		t.Fatal("errors=0 SLO failed to trip on snapshot errors")
	}
}
