package loadgen

import (
	"sync"
	"sync/atomic"
	"time"
)

// Run executes the spec against the target with Spec.Clients concurrent
// workers and returns the measured report. Workers claim op indices
// from one atomic counter, so every op runs exactly once regardless of
// scheduling; op content is a pure function of (spec, index), so the
// ingested element set — and therefore the target's final estimate —
// is identical across runs and client counts.
func Run(spec Spec, target Target) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	type workerStats struct {
		hists [numOpKinds]Histogram
		errs  [numOpKinds]uint64
	}
	stats := make([]workerStats, spec.Clients)

	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < spec.Clients; w++ {
		wg.Add(1)
		go func(ws *workerStats) {
			defer wg.Done()
			var scratch []uint64
			paced := spec.Arrival != "" && spec.Arrival != "open"
			for {
				i := int(next.Add(1) - 1)
				if i >= spec.Ops {
					return
				}
				if paced {
					at := start.Add(time.Duration(spec.scheduledAt(i) * float64(time.Second)))
					if d := time.Until(at); d > 0 {
						time.Sleep(d)
					}
				}
				kind := spec.Kind(i)
				var err error
				var t0 time.Time
				switch kind {
				case OpIngest:
					scratch = spec.Elements(i, scratch)
					t0 = time.Now()
					err = target.Ingest(scratch)
				case OpEstimate:
					t0 = time.Now()
					_, err = target.Estimate()
				case OpSnapshot:
					t0 = time.Now()
					err = target.Snapshot()
				}
				ws.hists[kind].RecordDuration(time.Since(t0))
				if err != nil {
					ws.errs[kind]++
				}
			}
		}(&stats[w])
	}
	wg.Wait()
	wall := time.Since(start)

	// Merge per-worker histograms and error counts.
	var merged [numOpKinds]Histogram
	var errs [numOpKinds]uint64
	for w := range stats {
		for k := OpKind(0); k < numOpKinds; k++ {
			merged[k].Merge(&stats[w].hists[k])
			errs[k] += stats[w].errs[k]
		}
	}

	rep := &Report{
		Spec:        spec,
		WallSeconds: wall.Seconds(),
		Kinds:       make(map[string]*KindStats, numOpKinds),
	}
	if wall > 0 {
		rep.OpsPerSec = round2(float64(spec.Ops) / wall.Seconds())
	}
	for k := OpKind(0); k < numOpKinds; k++ {
		h := &merged[k]
		rep.TotalOps += h.Count()
		rep.TotalErrors += errs[k]
		if h.Count() == 0 && errs[k] == 0 {
			continue
		}
		rep.Kinds[k.String()] = &KindStats{
			Count:  h.Count(),
			Errors: errs[k],
			MeanNs: round2(h.Mean()),
			P50Ns:  h.Quantile(0.50),
			P90Ns:  h.Quantile(0.90),
			P99Ns:  h.Quantile(0.99),
			P999Ns: h.Quantile(0.999),
			MaxNs:  h.Max(),
		}
	}

	// The closing estimate (uncounted): the replayable figure invariant 7
	// judges against a reference run.
	if est, err := target.Estimate(); err == nil {
		rep.FinalEstimate = est
	} else {
		rep.FinalEstimateError = err.Error()
	}
	return rep, nil
}

func round2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }
