package loadgen_test

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"mcf0"
	"mcf0/internal/faultinject"
	"mcf0/internal/loadgen"
	"mcf0/internal/server"
	"mcf0/internal/server/middleware"
)

// errLoggingTarget surfaces each op error verbatim, so a chaos-soak
// failure names the fault that leaked through the retries instead of
// just counting it.
type errLoggingTarget struct {
	t     *testing.T
	inner loadgen.Target
}

func (lt *errLoggingTarget) Ingest(batch []uint64) error {
	err := lt.inner.Ingest(batch)
	if err != nil {
		lt.t.Logf("ingest error: %v", err)
	}
	return err
}

func (lt *errLoggingTarget) Estimate() (float64, error) {
	est, err := lt.inner.Estimate()
	if err != nil {
		lt.t.Logf("estimate error: %v", err)
	}
	return est, err
}

func (lt *errLoggingTarget) Snapshot() error {
	err := lt.inner.Snapshot()
	if err != nil {
		lt.t.Logf("snapshot error: %v", err)
	}
	return err
}

// TestChaosSoakDeterminism is ARCHITECTURE.md invariant 9's enforcement
// test: the same seeded workload as the clean soak runs through a
// fault-injected transport (latency spikes, connection resets before and
// after send, truncated and corrupted response bodies) against a daemon
// whose snapshot disk throws seeded transient failures — and with
// retries enabled the run must finish with zero surfaced errors and a
// final estimate bit-identical to a fault-free in-process sketch over
// the same element stream. Duplicate deliveries from reset-after-send
// retries are absorbed by set semantics; truncated/corrupted bodies are
// re-fetched; disk faults surface as retryable 503s.
func TestChaosSoakDeterminism(t *testing.T) {
	// Transient disk faults: snapshot ops exercise the retry path
	// server-side. The rate is per hook call and one snapshot makes ~7
	// (mkdir + two atomic write sequences), so 5% per call is ~30% per
	// snapshot attempt. BreakerFailures is set far above anything this
	// run can reach so the breaker never opens and every fault stays
	// retryable — breaker behaviour has its own tests (state, server e2e).
	diskChaos := faultinject.MustNew(faultinject.Config{Seed: 1101, Disk: 0.05})
	srv, err := server.New(server.Config{
		Tenants:         []middleware.TenantConfig{{Name: "soak", Token: "soak-token"}},
		DataDir:         t.TempDir(),
		Logf:            func(string, ...any) {},
		DiskHook:        diskChaos.DiskHook(),
		BreakerFailures: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Client-side transport chaos: ~18% of round trips disturbed.
	httpChaos := faultinject.MustNew(faultinject.Config{
		Seed:       707,
		Latency:    0.04,
		MaxLatency: 500 * time.Microsecond,
		Reset:      0.06,
		Truncate:   0.04,
		Corrupt:    0.04,
	})
	client := &http.Client{Transport: httpChaos.RoundTripper(ts.Client().Transport)}

	spec := loadgen.Spec{
		Seed: 20210401, Ops: 300, Clients: 6, Bits: 20, Batch: 48,
		IngestWeight: 85, EstimateWeight: 13, SnapshotWeight: 2,
		Keys: 3000, ZipfS: 1.2,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}

	const sketchSeed = 4242
	target, err := loadgen.NewHTTPTarget(loadgen.HTTPConfig{
		BaseURL: ts.URL, Token: "soak-token", Sketch: "chaos",
		Client: client,
		// Max 16: a snapshot attempt fails ~45% of the time under the
		// combined disk + transport chaos, so a double-digit budget keeps
		// retry exhaustion below ~1e-6 per run.
		Retry: loadgen.RetryPolicy{
			Max: 16, Base: 200 * time.Microsecond, Cap: 2 * time.Millisecond, Seed: 99,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := target.CreateSketch(spec.Bits, "minimum", sketchSeed, 3); err != nil {
		t.Fatal(err)
	}

	rep, err := loadgen.Run(spec, &errLoggingTarget{t: t, inner: target})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalOps != uint64(spec.Ops) {
		t.Fatalf("ran %d ops, want %d", rep.TotalOps, spec.Ops)
	}
	if rep.TotalErrors != 0 {
		t.Fatalf("%d errors surfaced despite retries: %+v", rep.TotalErrors, rep.Kinds)
	}

	// The chaos must actually have fired, and the retries absorbed it.
	if httpChaos.InjectedTotal() == 0 {
		t.Fatal("transport chaos injected nothing; the soak validated an empty hypothesis")
	}
	if target.Retries() == 0 {
		t.Fatal("no retries issued under ~18% transport fault rate")
	}
	t.Logf("injected %v transport faults (%d disk), %d retries",
		httpChaos.Injected(), diskChaos.InjectedTotal(), target.Retries())

	// Invariant 9: the estimate after the fault-injected run is
	// bit-identical to a fault-free serial sketch over the same stream.
	ref, err := mcf0.NewF0(spec.Bits, mcf0.AlgorithmMinimum, mcf0.Config{Seed: sketchSeed})
	if err != nil {
		t.Fatal(err)
	}
	ref.AddBatch(spec.IngestedElements())
	if want := ref.Estimate(); rep.FinalEstimate != want {
		t.Fatalf("estimate after chaos %v != fault-free estimate %v (invariant 9 broken)",
			rep.FinalEstimate, want)
	}

	// 5xx attribution: every server-side 5xx must be an injected disk
	// fault on the snapshot route — any other 5xx is a real server bug
	// the chaos uncovered.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	re := regexp.MustCompile(`^f0d_http_requests_total\{code="(5\d\d)",route="([^"]+)"\} (\d+)`)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		m := re.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		if !strings.Contains(m[2], "/snapshot") {
			t.Errorf("non-injected 5xx: %s", sc.Text())
			continue
		}
		n, _ := strconv.Atoi(m[3])
		if uint64(n) > diskChaos.InjectedTotal() {
			t.Errorf("%d snapshot 5xx responses exceed %d injected disk faults: %s",
				n, diskChaos.InjectedTotal(), sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}
