package loadgen

import (
	"math/rand/v2"
	"sort"
	"testing"
	"time"
)

// TestBucketGeometry checks the log-linear layout: indices are monotone
// in the value, exact below the linear range, within bounds for the
// whole uint64 range, and bucketUpper is the true inclusive upper bound
// of its bucket.
func TestBucketGeometry(t *testing.T) {
	// Exact unit buckets below 2^histSubBits.
	for v := uint64(0); v < histSubBuckets; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want exact", v, got)
		}
	}
	// Monotone across octave boundaries and adversarial values.
	vals := []uint64{0, 1, 31, 32, 33, 63, 64, 65, 127, 128, 1023, 1024, 1 << 20,
		1<<20 + 1, 1<<40 - 1, 1 << 40, 1<<63 - 1, 1 << 63, ^uint64(0)}
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 10000; i++ {
		vals = append(vals, rng.Uint64())
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	prev := -1
	for _, v := range vals {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histNumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of [0,%d)", v, idx, histNumBuckets)
		}
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		// The value must sit at or below its bucket's upper bound, and
		// above the previous bucket's.
		up := bucketUpper(idx)
		if v > up {
			t.Fatalf("value %d above its bucket upper bound %d", v, up)
		}
		if idx > 0 && v <= bucketUpper(idx-1) {
			t.Fatalf("value %d not above previous bucket's upper bound %d", v, bucketUpper(idx-1))
		}
	}
	// bucketUpper is a right inverse: every bucket's upper bound maps
	// back to that bucket.
	for idx := 0; idx < histNumBuckets-1; idx++ {
		if got := bucketIndex(bucketUpper(idx)); got != idx {
			t.Fatalf("bucketIndex(bucketUpper(%d)) = %d", idx, got)
		}
	}
}

// TestQuantileAccuracy compares histogram quantiles against the exact
// order statistics of the recorded sample: the histogram answer must be
// ≥ the exact one (conservative upper bound) and within the ~1/32
// bucket resolution.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	var h Histogram
	vals := make([]uint64, 20000)
	for i := range vals {
		// Latency-shaped values: a lognormal-ish spread over µs–ms.
		v := uint64(1000) + rng.Uint64N(1<<uint(10+rng.IntN(14)))
		vals[i] = v
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		exactIdx := int(q*float64(len(vals))) - 1
		if exactIdx < 0 {
			exactIdx = 0
		}
		exact := vals[exactIdx]
		got := h.Quantile(q)
		if got < exact {
			t.Fatalf("Quantile(%g) = %d below exact %d", q, got, exact)
		}
		if float64(got) > float64(exact)*(1+2.0/histSubBuckets)+1 {
			t.Fatalf("Quantile(%g) = %d too far above exact %d", q, got, exact)
		}
	}
	if h.Max() != vals[len(vals)-1] || h.Min() != vals[0] {
		t.Fatalf("exact extremes lost: min %d max %d vs %d %d", h.Min(), h.Max(), vals[0], vals[len(vals)-1])
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("Quantile(1) = %d != max %d", h.Quantile(1), h.Max())
	}
}

// TestHistogramMerge asserts merging partial histograms reproduces the
// single-histogram state exactly (the runner's per-worker merge).
func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	var whole Histogram
	parts := make([]Histogram, 4)
	for i := 0; i < 50000; i++ {
		v := rng.Uint64N(1 << 30)
		whole.Record(v)
		parts[i%4].Record(v)
	}
	var merged Histogram
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged != whole {
		t.Fatal("merged histogram differs from single-stream histogram")
	}
	// Merging into an empty histogram preserves extremes.
	var empty Histogram
	empty.Merge(&whole)
	if empty.Min() != whole.Min() || empty.Max() != whole.Max() || empty.Count() != whole.Count() {
		t.Fatal("merge into empty lost state")
	}
}

// TestHistogramEmpty pins the zero-value behaviour the report relies on.
func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Count() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	h.RecordDuration(-5 * time.Millisecond) // negative clamps, never panics
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatal("negative duration not clamped to 0")
	}
}
