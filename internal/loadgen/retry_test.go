package loadgen

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{Max: 8, Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Seed: 7}
	q := RetryPolicy{Max: 8, Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Seed: 7}
	for attempt := 0; attempt < 8; attempt++ {
		for idx := uint64(0); idx < 50; idx++ {
			d1 := p.backoff(attempt, idx, 0)
			d2 := q.backoff(attempt, idx, 0)
			if d1 != d2 {
				t.Fatalf("backoff(%d, %d) differs across identical policies: %v vs %v", attempt, idx, d1, d2)
			}
			ceil := 10 * time.Millisecond << attempt
			if ceil > 80*time.Millisecond {
				ceil = 80 * time.Millisecond
			}
			if d1 < 0 || d1 > ceil {
				t.Fatalf("backoff(%d, %d) = %v outside [0, %v]", attempt, idx, d1, ceil)
			}
		}
	}
	// A different seed draws a different schedule.
	r := RetryPolicy{Max: 8, Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Seed: 8}
	same := 0
	for idx := uint64(0); idx < 50; idx++ {
		if p.backoff(3, idx, 0) == r.backoff(3, idx, 0) {
			same++
		}
	}
	if same == 50 {
		t.Fatal("seeds 7 and 8 draw identical jitter schedules")
	}
}

func TestBackoffHonorsRetryAfter(t *testing.T) {
	p := RetryPolicy{Base: time.Millisecond, Cap: 2 * time.Second, Seed: 1}
	if d := p.backoff(0, 0, time.Second); d != time.Second {
		t.Fatalf("backoff with Retry-After 1s = %v, want the 1s floor", d)
	}
	// A hostile Retry-After is capped.
	if d := p.backoff(0, 0, time.Hour); d != 2*time.Second {
		t.Fatalf("backoff with Retry-After 1h = %v, want the 2s cap", d)
	}
}

func TestParseRetryAfter(t *testing.T) {
	h := http.Header{}
	if d := parseRetryAfter(h); d != 0 {
		t.Fatalf("absent header: %v, want 0", d)
	}
	h.Set("Retry-After", "3")
	if d := parseRetryAfter(h); d != 3*time.Second {
		t.Fatalf("Retry-After 3: %v, want 3s", d)
	}
	h.Set("Retry-After", "Wed, 21 Oct 2015 07:28:00 GMT")
	if d := parseRetryAfter(h); d != 0 {
		t.Fatalf("HTTP-date Retry-After: %v, want 0 (unsupported form ignored)", d)
	}
}

// newRetryTarget points an HTTPTarget with an instant-sleep retry policy
// at a test server.
func newRetryTarget(t *testing.T, ts *httptest.Server, max int) (*HTTPTarget, *atomic.Int64) {
	t.Helper()
	var slept atomic.Int64
	target, err := NewHTTPTarget(HTTPConfig{
		BaseURL: ts.URL, Sketch: "s", Client: ts.Client(),
		Retry: RetryPolicy{Max: max, Seed: 3, Sleep: func(time.Duration) { slept.Add(1) }},
	})
	if err != nil {
		t.Fatal(err)
	}
	return target, &slept
}

func TestDoRetriesTransientStatus(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":{"code":"overloaded","message":"shed"}}`)
			return
		}
		fmt.Fprint(w, `{"estimate": 12.5}`)
	}))
	defer ts.Close()
	target, slept := newRetryTarget(t, ts, 5)
	est, err := target.Estimate()
	if err != nil || est != 12.5 {
		t.Fatalf("Estimate = (%v, %v), want (12.5, nil)", est, err)
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d attempts, want 3", hits.Load())
	}
	if slept.Load() != 2 || target.Retries() != 2 {
		t.Fatalf("slept %d times / %d retries, want 2/2", slept.Load(), target.Retries())
	}
}

func TestDoRetriesDecodeError(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			fmt.Fprint(w, `{"estimate": 12.`) // truncated body, status 200
			return
		}
		fmt.Fprint(w, `{"estimate": 12.5}`)
	}))
	defer ts.Close()
	target, _ := newRetryTarget(t, ts, 5)
	est, err := target.Estimate()
	if err != nil || est != 12.5 {
		t.Fatalf("Estimate = (%v, %v), want (12.5, nil)", est, err)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d attempts, want 2 (truncated body must be refetched)", hits.Load())
	}
}

func TestDoNeverRetriesClientErrors(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":{"code":"not_found","message":"no such sketch"}}`)
	}))
	defer ts.Close()
	target, _ := newRetryTarget(t, ts, 5)
	if _, err := target.Estimate(); err == nil {
		t.Fatal("404 did not surface as an error")
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d attempts for a 404, want 1 (4xx is never retryable)", hits.Load())
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	target, _ := newRetryTarget(t, ts, 3)
	if _, err := target.Estimate(); err == nil {
		t.Fatal("persistent 500 did not surface after the budget")
	}
	if hits.Load() != 4 {
		t.Fatalf("server saw %d attempts, want 4 (1 + 3 retries)", hits.Load())
	}
}

func TestZeroPolicyIsSingleShot(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	target, err := NewHTTPTarget(HTTPConfig{BaseURL: ts.URL, Sketch: "s", Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := target.Estimate(); err == nil {
		t.Fatal("503 did not surface")
	}
	if hits.Load() != 1 {
		t.Fatalf("zero-value policy issued %d attempts, want 1", hits.Load())
	}
}
