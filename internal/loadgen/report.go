package loadgen

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// KindStats summarizes one op kind's latency distribution. Latencies
// are nanoseconds; percentiles are bucket upper bounds (≈3% resolution)
// clamped to the observed extremes.
type KindStats struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  uint64  `json:"p50_ns"`
	P90Ns  uint64  `json:"p90_ns"`
	P99Ns  uint64  `json:"p99_ns"`
	P999Ns uint64  `json:"p999_ns"`
	MaxNs  uint64  `json:"max_ns"`
}

// Report is one run's JSON document: the spec that replays it, the
// sustained throughput, per-kind latency percentiles and error counts,
// and the final estimate the replayed spec must reproduce.
type Report struct {
	// Note carries environment caveats (the CI runs append the nproc=1
	// caveat here, the same way BENCH_6/7.json do).
	Note string `json:"note,omitempty"`
	// Target names what was driven ("inproc" or the daemon URL).
	Target string `json:"target,omitempty"`
	Spec   Spec   `json:"spec"`
	// WallSeconds is the measured run length; OpsPerSec the sustained
	// completed-op rate over it.
	WallSeconds float64 `json:"wall_seconds"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	TotalOps    uint64  `json:"total_ops"`
	TotalErrors uint64  `json:"total_errors"`
	// Kinds maps op kind → latency/error stats (kinds with no ops are
	// omitted).
	Kinds map[string]*KindStats `json:"kinds"`
	// FinalEstimate is the target's estimate after the last op — the
	// replay-determinism anchor (equal seeds must reproduce it exactly).
	FinalEstimate      float64 `json:"final_estimate"`
	FinalEstimateError string  `json:"final_estimate_error,omitempty"`
	// Profiles records where pprof capture landed, when requested.
	CPUProfile string `json:"cpu_profile,omitempty"`
	MemProfile string `json:"mem_profile,omitempty"`
	// FaultsInjected tallies chaos faults by kind when the run wrapped
	// its transport with -chaos (see internal/faultinject); Retries is
	// how many retry attempts the HTTP target issued absorbing them.
	FaultsInjected map[string]uint64 `json:"faults_injected,omitempty"`
	Retries        uint64            `json:"retries,omitempty"`
}

// MarshalIndented renders the report as indented JSON with a trailing
// newline.
func (r *Report) MarshalIndented() ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// SLO is a parsed service-level-objective assertion set. Latency bounds
// apply per op kind: an unscoped bound ("p99=5ms") must hold for every
// kind that ran, a scoped one ("ingest.p99=2ms") only for its kind.
type SLO struct {
	// Latency bounds, nanoseconds: key "p50"/"p99"/"p999"/"max" or
	// "<kind>.<percentile>".
	Latency map[string]uint64
	// MaxErrors bounds TotalErrors (-1 = unchecked).
	MaxErrors int64
	// MinOpsPerSec bounds sustained throughput from below (0 = unchecked).
	MinOpsPerSec float64
}

// ParseSLO parses a comma-separated assertion list:
//
//	errors=0,p99=5ms,ingest.p999=20ms,min_ops_per_sec=1000
//
// Durations use Go syntax ("1500us", "5ms", "1s"); bare integers are
// nanoseconds.
func ParseSLO(s string) (*SLO, error) {
	slo := &SLO{Latency: map[string]uint64{}, MaxErrors: -1}
	if strings.TrimSpace(s) == "" {
		return slo, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("loadgen: SLO term %q is not key=value", part)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch {
		case key == "errors":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("loadgen: SLO errors bound %q is not a non-negative integer", val)
			}
			slo.MaxErrors = n
		case key == "min_ops_per_sec":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 {
				return nil, fmt.Errorf("loadgen: SLO min_ops_per_sec %q is not a positive number", val)
			}
			slo.MinOpsPerSec = f
		default:
			pct := key
			if _, p, ok := strings.Cut(key, "."); ok {
				pct = p
			}
			switch pct {
			case "p50", "p90", "p99", "p999", "max":
			default:
				return nil, fmt.Errorf("loadgen: unknown SLO key %q (want errors, min_ops_per_sec, or [kind.]p50/p90/p99/p999/max)", key)
			}
			ns, err := parseLatency(val)
			if err != nil {
				return nil, fmt.Errorf("loadgen: SLO bound %s: %w", key, err)
			}
			slo.Latency[key] = ns
		}
	}
	return slo, nil
}

// parseLatency accepts a Go duration or a bare nanosecond count.
func parseLatency(s string) (uint64, error) {
	if n, err := strconv.ParseUint(s, 10, 64); err == nil {
		return n, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("%q is not a duration or nanosecond count", s)
	}
	return uint64(d), nil
}

// statNs extracts one percentile figure from a kind's stats.
func statNs(ks *KindStats, pct string) uint64 {
	switch pct {
	case "p50":
		return ks.P50Ns
	case "p90":
		return ks.P90Ns
	case "p99":
		return ks.P99Ns
	case "p999":
		return ks.P999Ns
	case "max":
		return ks.MaxNs
	}
	return 0
}

// Check evaluates the SLO against a report, returning one human-readable
// violation per failed assertion (empty = all held).
func (s *SLO) Check(rep *Report) []string {
	var violations []string
	if s.MaxErrors >= 0 && rep.TotalErrors > uint64(s.MaxErrors) {
		violations = append(violations,
			fmt.Sprintf("errors: %d > allowed %d", rep.TotalErrors, s.MaxErrors))
	}
	if s.MinOpsPerSec > 0 && rep.OpsPerSec < s.MinOpsPerSec {
		violations = append(violations,
			fmt.Sprintf("ops_per_sec: %.2f < required %.2f", rep.OpsPerSec, s.MinOpsPerSec))
	}
	// Deterministic violation order: sort the bound keys.
	keys := make([]string, 0, len(s.Latency))
	for k := range s.Latency {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		bound := s.Latency[key]
		kind, pct, scoped := strings.Cut(key, ".")
		if !scoped {
			pct = key
			for _, name := range []string{"ingest", "estimate", "snapshot"} {
				ks := rep.Kinds[name]
				if ks == nil || ks.Count == 0 {
					continue
				}
				if got := statNs(ks, pct); got > bound {
					violations = append(violations,
						fmt.Sprintf("%s.%s: %s > bound %s", name, pct,
							time.Duration(got), time.Duration(bound)))
				}
			}
			continue
		}
		ks := rep.Kinds[kind]
		if ks == nil || ks.Count == 0 {
			continue
		}
		if got := statNs(ks, pct); got > bound {
			violations = append(violations,
				fmt.Sprintf("%s.%s: %s > bound %s", kind, pct,
					time.Duration(got), time.Duration(bound)))
		}
	}
	return violations
}
