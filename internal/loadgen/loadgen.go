// Package loadgen is the profiling-driven load harness: a seeded, fully
// replayable traffic generator that drives a sketch front — in-process
// (mcf0.ConcurrentF0) or a live f0d HTTP endpoint — with N concurrent
// clients, records per-operation latency in a fixed-bucket log-linear
// histogram, and emits a JSON report (sustained ops/sec, p50/p99/p999
// per op kind, error counts) with optional SLO assertions.
//
// The workload is data, not chance: operation i of a Spec is a pure
// function of (Spec, i) — kind chosen by weighted mix, ingest elements
// drawn Zipf- or uniform-distributed over a configurable hot-key space
// and scattered through the element universe by a fixed mixing
// bijection. Workers claim indices from one atomic counter, so every op
// executes exactly once no matter how clients are scheduled, and the
// *set* of ingested elements (hence the final sketch estimate, by the
// partition-independence of invariant 2) is identical across runs,
// client counts, and targets. Two runs with one seed are byte-identical
// workloads (determinism invariant 8 in docs/ARCHITECTURE.md); two
// targets fed one seed must answer with one estimate (invariant 7).
//
// Arrival patterns (open loop, constant rate, on/off bursts, linear
// ramp) assign each op a scheduled start time; workers sleep until an
// op's slot before issuing it. Latency is measured request-to-response
// on the issuing client (service time, not queue-corrected: a saturated
// target delays later slots — read sustained ops/sec next to the
// percentiles).
package loadgen

import (
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"strconv"
)

// OpKind enumerates the generated operation kinds.
type OpKind uint8

// The operation kinds of a mixed workload.
const (
	OpIngest OpKind = iota
	OpEstimate
	OpSnapshot
	numOpKinds
)

// String returns the report/mix-flag name of the kind.
func (k OpKind) String() string {
	switch k {
	case OpIngest:
		return "ingest"
	case OpEstimate:
		return "estimate"
	case OpSnapshot:
		return "snapshot"
	}
	return fmt.Sprintf("opkind(%d)", uint8(k))
}

// Spec is one replayable workload: every field participates in op
// generation, so equal Specs generate byte-identical op sequences.
type Spec struct {
	// Seed keys all generation randomness (op kinds, elements).
	Seed uint64 `json:"seed"`
	// Ops is the total operation count.
	Ops int `json:"ops"`
	// Clients is the number of concurrent workers issuing ops.
	Clients int `json:"clients"`
	// Bits is the element-universe width (1–64); generated elements are
	// < 2^Bits, matching the target sketch's universe.
	Bits int `json:"bits"`
	// Batch is the number of elements per ingest op.
	Batch int `json:"batch"`
	// IngestWeight, EstimateWeight, and SnapshotWeight set the op mix;
	// they are relative (only ratios matter) and must sum > 0.
	IngestWeight   float64 `json:"ingest_weight"`
	EstimateWeight float64 `json:"estimate_weight"`
	SnapshotWeight float64 `json:"snapshot_weight"`
	// Keys bounds the hot-key space: elements are drawn from Keys
	// distinct keys scattered over the universe. 0 means 2^min(Bits,63)
	// (effectively unlimited).
	Keys uint64 `json:"keys,omitempty"`
	// ZipfS is the Zipf skew exponent over the key space; 0 selects the
	// uniform distribution, otherwise it must be > 1 (the math/rand/v2
	// generator's domain) — larger is more skewed.
	ZipfS float64 `json:"zipf_s,omitempty"`
	// Arrival selects the arrival pattern: "open" (issue as fast as the
	// target absorbs; default), "constant" (fixed Rate), "burst" (Rate
	// during BurstOn, silence during BurstOff), or "ramp" (rate grows
	// linearly Rate → RampTo over the run).
	Arrival string `json:"arrival,omitempty"`
	// Rate is the target ops/sec for constant/burst/ramp arrivals.
	Rate float64 `json:"rate,omitempty"`
	// RampTo is the final ops/sec of the ramp pattern.
	RampTo float64 `json:"ramp_to,omitempty"`
	// BurstOn and BurstOff are the burst pattern's phase lengths in
	// seconds (defaults 1 and 1).
	BurstOn  float64 `json:"burst_on,omitempty"`
	BurstOff float64 `json:"burst_off,omitempty"`
}

// Validate reports the first structural problem with the spec.
func (s *Spec) Validate() error {
	if s.Ops <= 0 {
		return fmt.Errorf("loadgen: ops %d must be positive", s.Ops)
	}
	if s.Clients <= 0 {
		return fmt.Errorf("loadgen: clients %d must be positive", s.Clients)
	}
	if s.Bits < 1 || s.Bits > 64 {
		return fmt.Errorf("loadgen: universe width %d out of [1,64]", s.Bits)
	}
	if s.Batch <= 0 {
		return fmt.Errorf("loadgen: batch %d must be positive", s.Batch)
	}
	if s.IngestWeight < 0 || s.EstimateWeight < 0 || s.SnapshotWeight < 0 {
		return fmt.Errorf("loadgen: op-mix weights must be non-negative")
	}
	if s.IngestWeight+s.EstimateWeight+s.SnapshotWeight <= 0 {
		return fmt.Errorf("loadgen: op-mix weights sum to zero")
	}
	if s.ZipfS != 0 && s.ZipfS <= 1 {
		return fmt.Errorf("loadgen: zipf skew %g must be 0 (uniform) or > 1", s.ZipfS)
	}
	switch s.Arrival {
	case "", "open":
	case "constant":
		if s.Rate <= 0 {
			return fmt.Errorf("loadgen: constant arrival needs rate > 0")
		}
	case "burst":
		if s.Rate <= 0 {
			return fmt.Errorf("loadgen: burst arrival needs rate > 0")
		}
		if s.BurstOn < 0 || s.BurstOff < 0 {
			return fmt.Errorf("loadgen: burst phases must be non-negative")
		}
	case "ramp":
		if s.Rate <= 0 || s.RampTo <= 0 {
			return fmt.Errorf("loadgen: ramp arrival needs rate and ramp_to > 0")
		}
	default:
		return fmt.Errorf("loadgen: unknown arrival pattern %q", s.Arrival)
	}
	return nil
}

// keySpace resolves the hot-key count.
func (s *Spec) keySpace() uint64 {
	if s.Keys > 0 {
		return s.Keys
	}
	b := s.Bits
	if b > 63 {
		b = 63
	}
	return uint64(1) << uint(b)
}

// splitmix64 is the finalizer the generator derives all per-op
// randomness from; a bijection on uint64, so distinct inputs never
// collide.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Kind returns op i's kind — a pure function of (Spec, i).
func (s *Spec) Kind(i int) OpKind {
	total := s.IngestWeight + s.EstimateWeight + s.SnapshotWeight
	// One uniform draw in [0,1) keyed by (seed, index) picks the kind by
	// cumulative weight.
	u := float64(splitmix64(s.Seed^0xa5a5a5a5a5a5a5a5^uint64(i))>>11) / (1 << 53)
	x := u * total
	if x < s.IngestWeight {
		return OpIngest
	}
	if x < s.IngestWeight+s.EstimateWeight {
		return OpEstimate
	}
	return OpSnapshot
}

// Elements fills dst with op i's ingest batch (it must have Kind(i) ==
// OpIngest) and returns dst sliced to Spec.Batch, reusing dst's storage
// when it is large enough. Elements are < 2^Bits and a pure function of
// (Spec, i).
func (s *Spec) Elements(i int, dst []uint64) []uint64 {
	if cap(dst) < s.Batch {
		dst = make([]uint64, s.Batch)
	}
	dst = dst[:s.Batch]
	rng := rand.New(rand.NewPCG(s.Seed, uint64(i)))
	keys := s.keySpace()
	var zipf *rand.Zipf
	if s.ZipfS > 1 {
		zipf = rand.NewZipf(rng, s.ZipfS, 1, keys-1)
	}
	var mask uint64
	if s.Bits >= 64 {
		mask = ^uint64(0)
	} else {
		mask = uint64(1)<<uint(s.Bits) - 1
	}
	for j := range dst {
		var key uint64
		if zipf != nil {
			key = zipf.Uint64()
		} else {
			key = rng.Uint64N(keys)
		}
		// Scatter the key through the universe with a fixed mixing
		// function so hot keys are not clustered at small values; the
		// mapping depends only on Seed, so replays and reference runs
		// agree on it.
		dst[j] = splitmix64(s.Seed+0x517cc1b727220a95+key) & mask
	}
	return dst
}

// IngestedElements returns the union stream of every ingest op in order
// of op index — the reference stream an in-process sketch replays to
// check a target's final estimate (invariant 7).
func (s *Spec) IngestedElements() []uint64 {
	var all []uint64
	var scratch []uint64
	for i := 0; i < s.Ops; i++ {
		if s.Kind(i) != OpIngest {
			continue
		}
		scratch = s.Elements(i, scratch)
		all = append(all, scratch...)
	}
	return all
}

// DumpOps renders the full op sequence as text, one op per line
// ("<index> <kind> [elements…]") — the replay transcript: equal Specs
// write byte-identical dumps (asserted by TestReplayDeterminism), and a
// dump diff pinpoints where two specs diverge.
func (s *Spec) DumpOps(w io.Writer) error {
	buf := make([]byte, 0, 256)
	var scratch []uint64
	for i := 0; i < s.Ops; i++ {
		buf = buf[:0]
		buf = strconv.AppendInt(buf, int64(i), 10)
		buf = append(buf, ' ')
		kind := s.Kind(i)
		buf = append(buf, kind.String()...)
		if kind == OpIngest {
			scratch = s.Elements(i, scratch)
			for _, x := range scratch {
				buf = append(buf, ' ')
				buf = strconv.AppendUint(buf, x, 10)
			}
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// scheduledAt returns op i's offset from run start in seconds under the
// spec's arrival pattern (0 for the open loop: no pacing).
func (s *Spec) scheduledAt(i int) float64 {
	switch s.Arrival {
	case "constant":
		return float64(i) / s.Rate
	case "burst":
		on, off := s.BurstOn, s.BurstOff
		if on <= 0 {
			on = 1
		}
		if off <= 0 {
			off = 1
		}
		perBurst := s.Rate * on
		if perBurst < 1 {
			perBurst = 1
		}
		burst := float64(i) / perBurst
		whole := float64(uint64(burst))
		frac := burst - whole
		return whole*(on+off) + frac*on
	case "ramp":
		if s.RampTo == s.Rate {
			return float64(i) / s.Rate
		}
		// Rate ramps linearly r(t) = Rate + a·t with a chosen so the last
		// op lands when the instantaneous rate reaches RampTo: total T
		// solves Ops = (Rate+RampTo)/2·T. Cumulative ops c(t) = Rate·t +
		// a·t²/2; invert for op i.
		T := 2 * float64(s.Ops) / (s.Rate + s.RampTo)
		a := (s.RampTo - s.Rate) / T
		r := s.Rate
		// t = (−r + √(r² + 2a·i)) / a
		d := r*r + 2*a*float64(i)
		if d < 0 {
			d = 0
		}
		return (math.Sqrt(d) - r) / a
	}
	return 0
}
