package loadgen

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"mcf0/internal/faultinject"
)

// RetryPolicy parameterises the HTTP target's seeded
// exponential-backoff-with-jitter retries. Retried faults are transport
// errors (resets, timeouts), retryable statuses (429, 500, 502, 503,
// 504), and undecodable response bodies (truncation, corruption) — all
// safe to replay against f0d because sketch ingestion has set
// semantics: a duplicate delivery cannot move the estimate (ARCHITECTURE.md
// invariant 9).
type RetryPolicy struct {
	// Max is the retry budget per op beyond the first attempt
	// (0 = no retries).
	Max int
	// Base is the first backoff ceiling; it doubles per attempt
	// (0 = 5ms).
	Base time.Duration
	// Cap bounds one backoff sleep (0 = 1s).
	Cap time.Duration
	// Seed drives the jitter stream: sleep n draws its fraction from
	// faultinject.FracAt(Seed, n), so a seeded run backs off through a
	// reproducible schedule.
	Seed uint64
	// Sleep overrides time.Sleep (tests inject to run instantly).
	Sleep func(time.Duration)
}

func (p RetryPolicy) base() time.Duration {
	if p.Base > 0 {
		return p.Base
	}
	return 5 * time.Millisecond
}

func (p RetryPolicy) cap() time.Duration {
	if p.Cap > 0 {
		return p.Cap
	}
	return time.Second
}

func (p RetryPolicy) sleep(d time.Duration) {
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// backoff returns the nth jittered sleep for attempt (0-based): full
// jitter over min(Cap, Base·2^attempt), floored by the server's
// Retry-After when one was sent (itself capped, so a hostile or clock-skewed
// header cannot stall the generator).
func (p RetryPolicy) backoff(attempt int, jitterIdx uint64, retryAfter time.Duration) time.Duration {
	ceil := p.base() << attempt
	if ceil > p.cap() || ceil <= 0 {
		ceil = p.cap()
	}
	d := time.Duration(faultinject.FracAt(p.Seed, jitterIdx) * float64(ceil))
	if retryAfter > d {
		d = retryAfter
		if d > p.cap() {
			d = p.cap()
		}
	}
	return d
}

// retryableStatus reports whether an HTTP status is safe and useful to
// retry: rate limiting, shedding, and server-side conditions. 4xx client
// mistakes are never retried — replaying a malformed request cannot fix it.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests,
		http.StatusInternalServerError,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// parseRetryAfter reads a delay-seconds Retry-After value (the only form
// f0d emits); absent or unparsable headers mean no floor.
func parseRetryAfter(h http.Header) time.Duration {
	secs, err := strconv.Atoi(h.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// retryCounter is the target's global jitter index: every retry across
// all workers draws the next value of the policy's jitter stream. The
// stream's values are deterministic in (Seed, index); which worker draws
// which index depends on scheduling, which is fine — invariant 9 demands
// the final estimate be identical under ANY fault/retry interleaving.
type retryCounter struct{ n atomic.Uint64 }

func (c *retryCounter) next() uint64 { return c.n.Add(1) - 1 }
func (c *retryCounter) total() uint64 {
	return c.n.Load()
}
