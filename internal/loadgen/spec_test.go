package loadgen

import (
	"bytes"
	"testing"

	"mcf0"
)

func testSpec() Spec {
	return Spec{
		Seed: 7, Ops: 600, Clients: 4, Bits: 22, Batch: 32,
		IngestWeight: 80, EstimateWeight: 18, SnapshotWeight: 2,
		Keys: 5000, ZipfS: 1.3,
	}
}

// TestReplayDeterminism is determinism invariant 8: equal specs render
// byte-identical workload transcripts, and two full runs — at different
// client counts — leave the target with bit-identical final estimates
// (the generated element set does not depend on scheduling).
func TestReplayDeterminism(t *testing.T) {
	spec := testSpec()
	var a, b bytes.Buffer
	if err := spec.DumpOps(&a); err != nil {
		t.Fatal(err)
	}
	if err := spec.DumpOps(&b); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two dumps of one spec differ")
	}

	run := func(clients, replicas int) float64 {
		s := spec
		s.Clients = clients
		front, err := mcf0.NewConcurrentF0(s.Bits, mcf0.AlgorithmBucketing, mcf0.Config{Seed: 99}, replicas)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(s, NewInProc(front))
		if err != nil {
			t.Fatal(err)
		}
		if rep.TotalOps != uint64(s.Ops) {
			t.Fatalf("ran %d ops, want %d", rep.TotalOps, s.Ops)
		}
		if rep.TotalErrors != 0 {
			t.Fatalf("%d errors against in-process front", rep.TotalErrors)
		}
		return rep.FinalEstimate
	}
	first := run(1, 1)
	for _, c := range []struct{ clients, replicas int }{{2, 2}, {4, 3}, {8, 1}} {
		if got := run(c.clients, c.replicas); got != first {
			t.Fatalf("clients=%d replicas=%d estimate %v != clients=1 estimate %v",
				c.clients, c.replicas, got, first)
		}
	}

	// And the runs match a serial reference sketch over the extracted
	// ingest stream — the anchor -check and the soak test reuse.
	ref, err := mcf0.NewF0(spec.Bits, mcf0.AlgorithmBucketing, mcf0.Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	ref.AddBatch(spec.IngestedElements())
	if want := ref.Estimate(); first != want {
		t.Fatalf("loadgen estimate %v != serial reference %v", first, want)
	}
}

// TestSpecSensitivity: changing any generation parameter must change
// the transcript (otherwise a flag silently does nothing).
func TestSpecSensitivity(t *testing.T) {
	base := testSpec()
	dump := func(s Spec) []byte {
		var buf bytes.Buffer
		if err := s.DumpOps(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := dump(base)
	mutations := map[string]func(*Spec){
		"seed":  func(s *Spec) { s.Seed++ },
		"batch": func(s *Spec) { s.Batch++ },
		"bits":  func(s *Spec) { s.Bits-- },
		"zipf":  func(s *Spec) { s.ZipfS = 0 },
		"keys":  func(s *Spec) { s.Keys = 50 },
		"mix":   func(s *Spec) { s.IngestWeight = 10 },
	}
	for name, mutate := range mutations {
		s := base
		mutate(&s)
		if bytes.Equal(dump(s), ref) {
			t.Errorf("mutating %s left the transcript unchanged", name)
		}
	}
}

// TestElementsInUniverse: generated elements respect the universe bound
// for widths straddling the word boundary.
func TestElementsInUniverse(t *testing.T) {
	for _, bits := range []int{1, 7, 53, 63, 64} {
		s := Spec{Seed: 3, Ops: 50, Clients: 1, Bits: bits, Batch: 64,
			IngestWeight: 1, ZipfS: 1.5}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		var limitOK func(x uint64) bool
		if bits == 64 {
			limitOK = func(uint64) bool { return true }
		} else {
			limit := uint64(1) << uint(bits)
			limitOK = func(x uint64) bool { return x < limit }
		}
		var scratch []uint64
		for i := 0; i < s.Ops; i++ {
			scratch = s.Elements(i, scratch)
			if len(scratch) != s.Batch {
				t.Fatalf("bits=%d: batch length %d", bits, len(scratch))
			}
			for _, x := range scratch {
				if !limitOK(x) {
					t.Fatalf("bits=%d: element %d out of universe", bits, x)
				}
			}
		}
	}
}

// TestKindMix: over many ops the realized kind frequencies track the
// weights (loose band — the draw is pseudo-random, not stratified).
func TestKindMix(t *testing.T) {
	s := Spec{Seed: 11, Ops: 20000, Clients: 1, Bits: 16, Batch: 8,
		IngestWeight: 70, EstimateWeight: 25, SnapshotWeight: 5}
	var counts [numOpKinds]int
	for i := 0; i < s.Ops; i++ {
		counts[s.Kind(i)]++
	}
	total := float64(s.Ops)
	for k, want := range map[OpKind]float64{OpIngest: 0.70, OpEstimate: 0.25, OpSnapshot: 0.05} {
		got := float64(counts[k]) / total
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("kind %s frequency %.3f, want ≈%.2f", k, got, want)
		}
	}
	// Zero-weight kinds never fire.
	s2 := s
	s2.SnapshotWeight = 0
	for i := 0; i < s2.Ops; i++ {
		if s2.Kind(i) == OpSnapshot {
			t.Fatal("zero-weight snapshot op generated")
		}
	}
}

// TestArrivalSchedules: scheduled times are non-negative and monotone
// for every pacing pattern, bursts leave silence gaps, and ramps finish
// near the analytic total duration.
func TestArrivalSchedules(t *testing.T) {
	check := func(s Spec) []float64 {
		t.Helper()
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		times := make([]float64, s.Ops)
		for i := range times {
			times[i] = s.scheduledAt(i)
			if times[i] < 0 {
				t.Fatalf("scheduledAt(%d) negative", i)
			}
			if i > 0 && times[i] < times[i-1] {
				t.Fatalf("schedule not monotone at %d", i)
			}
		}
		return times
	}
	base := Spec{Seed: 1, Ops: 1000, Clients: 2, Bits: 16, Batch: 4, IngestWeight: 1}

	open := base
	for _, at := range check(open) {
		if at != 0 {
			t.Fatal("open loop must not pace")
		}
	}

	constant := base
	constant.Arrival, constant.Rate = "constant", 500
	times := check(constant)
	if got := times[999]; got < 1.95 || got > 2.05 {
		t.Fatalf("constant 500/s: op 999 at %.3fs, want ≈2s", got)
	}

	burst := base
	burst.Arrival, burst.Rate, burst.BurstOn, burst.BurstOff = "burst", 500, 1, 1
	times = check(burst)
	// 500 ops land in burst 0 ([0,1)), the rest start at 2s.
	if times[499] >= 1 || times[500] < 2 {
		t.Fatalf("burst boundary wrong: op499=%.3f op500=%.3f", times[499], times[500])
	}

	ramp := base
	ramp.Arrival, ramp.Rate, ramp.RampTo = "ramp", 100, 900
	times = check(ramp)
	// T = 2·Ops/(R0+R1) = 2s; early ops are sparse, late ops dense.
	if got := times[999]; got < 1.9 || got > 2.1 {
		t.Fatalf("ramp: last op at %.3fs, want ≈2s", got)
	}
	if first := times[100] - times[0]; first <= times[999]-times[899] {
		t.Fatal("ramp did not accelerate")
	}
}

// TestSpecValidate sweeps the rejection paths.
func TestSpecValidate(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Ops = 0 },
		func(s *Spec) { s.Clients = 0 },
		func(s *Spec) { s.Bits = 0 },
		func(s *Spec) { s.Bits = 65 },
		func(s *Spec) { s.Batch = 0 },
		func(s *Spec) { s.IngestWeight, s.EstimateWeight, s.SnapshotWeight = 0, 0, 0 },
		func(s *Spec) { s.IngestWeight = -1 },
		func(s *Spec) { s.ZipfS = 0.5 },
		func(s *Spec) { s.Arrival = "warp" },
		func(s *Spec) { s.Arrival = "constant" },
		func(s *Spec) { s.Arrival, s.Rate, s.RampTo = "ramp", 10, 0 },
	}
	for i, mutate := range bad {
		s := testSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	good := testSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("baseline spec rejected: %v", err)
	}
}
