package loadgen

import (
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		OpsPerSec:   1500,
		TotalOps:    1000,
		TotalErrors: 3,
		Kinds: map[string]*KindStats{
			"ingest":   {Count: 900, Errors: 3, P50Ns: 1e6, P90Ns: 2e6, P99Ns: 5e6, P999Ns: 2e7, MaxNs: 3e7},
			"estimate": {Count: 100, P50Ns: 1e4, P90Ns: 2e4, P99Ns: 1e5, P999Ns: 2e5, MaxNs: 2e5},
		},
	}
}

func TestParseSLO(t *testing.T) {
	slo, err := ParseSLO("errors=0, p99=5ms, ingest.p999=20ms, min_ops_per_sec=1000, max=50000000")
	if err != nil {
		t.Fatal(err)
	}
	if slo.MaxErrors != 0 || slo.MinOpsPerSec != 1000 {
		t.Fatalf("scalar bounds wrong: %+v", slo)
	}
	if slo.Latency["p99"] != 5e6 || slo.Latency["ingest.p999"] != 2e7 || slo.Latency["max"] != 5e7 {
		t.Fatalf("latency bounds wrong: %v", slo.Latency)
	}
	// Bare integers are nanoseconds.
	slo, err = ParseSLO("p50=12345")
	if err != nil || slo.Latency["p50"] != 12345 {
		t.Fatalf("bare-ns parse: %v %v", slo, err)
	}
	// Empty SLO asserts nothing.
	slo, err = ParseSLO("  ")
	if err != nil || len(slo.Latency) != 0 || slo.MaxErrors != -1 || slo.MinOpsPerSec != 0 {
		t.Fatalf("empty SLO not neutral: %+v %v", slo, err)
	}
	for _, bad := range []string{"p99", "p98=1ms", "errors=-1", "errors=x", "p99=zz",
		"min_ops_per_sec=0", "ingest.p98=1ms", "=5ms"} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q) accepted", bad)
		}
	}
}

func TestSLOCheck(t *testing.T) {
	rep := sampleReport()
	cases := []struct {
		slo       string
		violation string // substring of the expected violation; "" = pass
	}{
		{"errors=3", ""},
		{"errors=2", "errors: 3 > allowed 2"},
		{"min_ops_per_sec=1000", ""},
		{"min_ops_per_sec=2000", "ops_per_sec"},
		{"p99=5ms", ""},                      // both kinds at or under 5ms p99
		{"p99=4ms", "ingest.p99"},            // unscoped bound catches the worst kind
		{"estimate.p99=4ms", ""},             // scoped bound checks only its kind
		{"ingest.p999=19ms", "ingest.p999"},  // scoped violation
		{"snapshot.p99=1ns", ""},             // kind that never ran: vacuously true
		{"max=30ms", ""},                     // exact max at the bound passes
		{"max=29ms", "ingest.max"},           // just under trips
		{"errors=0,p99=1ns", "estimate.p99"}, // multiple violations reported
	}
	for _, tc := range cases {
		slo, err := ParseSLO(tc.slo)
		if err != nil {
			t.Fatalf("ParseSLO(%q): %v", tc.slo, err)
		}
		violations := slo.Check(rep)
		if tc.violation == "" {
			if len(violations) != 0 {
				t.Errorf("SLO %q: unexpected violations %v", tc.slo, violations)
			}
			continue
		}
		found := false
		for _, v := range violations {
			if strings.Contains(v, tc.violation) {
				found = true
			}
		}
		if !found {
			t.Errorf("SLO %q: violations %v missing %q", tc.slo, violations, tc.violation)
		}
	}
	// The multi-violation case reports every failed assertion.
	slo, _ := ParseSLO("errors=0,p99=1ns")
	if got := slo.Check(rep); len(got) != 3 { // errors + 2 kinds' p99
		t.Fatalf("want 3 violations, got %v", got)
	}
}
