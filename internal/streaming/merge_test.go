package streaming

import (
	"runtime"
	"sync"
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/stats"
)

// mergeOpts builds same-seed Options so two sketches share hash draws.
func mergeOpts(seed uint64, par int) Options {
	return Options{Epsilon: 0.8, Delta: 0.2, Thresh: 12, Iterations: 7,
		RNG: stats.NewRNG(seed), Parallelism: par}
}

// Merge differential: for every sketch, feeding the stream halves into
// two same-seed sketches and merging must leave state bit-identical to
// one sketch ingesting the concatenated stream — at every parallelism
// level, for both merge directions.
func TestMergeVsSingleDifferential(t *testing.T) {
	n := 32
	stream := dupStream(n, 1600, stats.NewRNG(0x3e63e))
	half := len(stream) / 2
	for _, par := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		whole := NewBucketing(n, mergeOpts(41, 1))
		left := NewBucketing(n, mergeOpts(41, par))
		right := NewBucketing(n, mergeOpts(41, par))
		feedChunks(whole, stream)
		feedChunks(left, stream[:half])
		feedChunks(right, stream[half:])
		if err := left.Merge(right); err != nil {
			t.Fatalf("par=%d: bucketing merge: %v", par, err)
		}
		requireBucketingEqual(t, whole, left)
		if whole.Estimate() != left.Estimate() {
			t.Fatalf("par=%d: bucketing estimates diverge", par)
		}

		mWhole := NewMinimum(n, mergeOpts(42, 1))
		mLeft := NewMinimum(n, mergeOpts(42, par))
		mRight := NewMinimum(n, mergeOpts(42, par))
		feedChunks(mWhole, stream)
		// Merge in the reverse direction too: absorb the left half INTO the
		// right half, exercising both operand orders across sketches.
		feedChunks(mLeft, stream[:half])
		feedChunks(mRight, stream[half:])
		if err := mRight.Merge(mLeft); err != nil {
			t.Fatalf("par=%d: minimum merge: %v", par, err)
		}
		requireMinimumEqual(t, mWhole, mRight)
		if mWhole.Estimate() != mRight.Estimate() {
			t.Fatalf("par=%d: minimum estimates diverge", par)
		}

		eo := mergeOpts(43, par)
		eo.Thresh = 8
		eo.Iterations = 3
		eWholeOpts := eo
		eWholeOpts.RNG = stats.NewRNG(43)
		eWholeOpts.Parallelism = 1
		eWhole := NewEstimation(n, eWholeOpts)
		eLeftOpts := eo
		eLeftOpts.RNG = stats.NewRNG(43)
		eLeft := NewEstimation(n, eLeftOpts)
		eRightOpts := eo
		eRightOpts.RNG = stats.NewRNG(43)
		eRight := NewEstimation(n, eRightOpts)
		feedChunks(eWhole, stream)
		feedChunks(eLeft, stream[:half])
		feedChunks(eRight, stream[half:])
		if err := eLeft.Merge(eRight); err != nil {
			t.Fatalf("par=%d: estimation merge: %v", par, err)
		}
		requireEstimationEqual(t, eWhole, eLeft)
		if eWhole.Estimate() != eLeft.Estimate() {
			t.Fatalf("par=%d: estimation estimates diverge", par)
		}

		fWhole := NewFlajoletMartin(n, mergeOpts(44, 1))
		fLeft := NewFlajoletMartin(n, mergeOpts(44, par))
		fRight := NewFlajoletMartin(n, mergeOpts(44, par))
		feedChunks(fWhole, stream)
		feedChunks(fLeft, stream[:half])
		feedChunks(fRight, stream[half:])
		if err := fLeft.Merge(fRight); err != nil {
			t.Fatalf("par=%d: fm merge: %v", par, err)
		}
		requireFMEqual(t, fWhole, fLeft)

		xWhole := NewExactDistinct(n)
		xLeft := NewExactDistinct(n)
		xRight := NewExactDistinct(n)
		feedChunks(xWhole, stream)
		feedChunks(xLeft, stream[:half])
		feedChunks(xRight, stream[half:])
		if err := xLeft.Merge(xRight); err != nil {
			t.Fatalf("par=%d: exact merge: %v", par, err)
		}
		if xWhole.Count() != xLeft.Count() {
			t.Fatalf("par=%d: exact counts diverge", par)
		}
	}
}

// Merging three ways and in shuffled order must agree with two (the merge
// is the set union: associative, commutative, idempotent).
func TestMergeThreeWayAndSelf(t *testing.T) {
	n := 32
	stream := dupStream(n, 1200, stats.NewRNG(0x7733))
	third := len(stream) / 3
	whole := NewBucketing(n, mergeOpts(91, 1))
	feedChunks(whole, stream)
	parts := make([]*Bucketing, 3)
	bounds := [][2]int{{0, third}, {third, 2 * third}, {2 * third, len(stream)}}
	for i, bd := range bounds {
		parts[i] = NewBucketing(n, mergeOpts(91, 1))
		feedChunks(parts[i], stream[bd[0]:bd[1]])
	}
	// Shuffled merge order: 2 ← 0, then 2 ← 1.
	if err := parts[2].Merge(parts[0]); err != nil {
		t.Fatal(err)
	}
	if err := parts[2].Merge(parts[1]); err != nil {
		t.Fatal(err)
	}
	requireBucketingEqual(t, whole, parts[2])
	// Self-merge is a no-op (idempotence).
	if err := parts[2].Merge(parts[2].Clone().(*Bucketing)); err != nil {
		t.Fatal(err)
	}
	requireBucketingEqual(t, whole, parts[2])
}

// Clones must not share mutable state with their original: feeding the
// clone leaves the original bit-identical to an untouched twin.
func TestCloneIndependence(t *testing.T) {
	n := 32
	stream := dupStream(n, 900, stats.NewRNG(0xc10e))
	extra := dupStream(n, 900, stats.NewRNG(0xc10f))

	b := NewBucketing(n, mergeOpts(51, 1))
	twin := NewBucketing(n, mergeOpts(51, 1))
	feedChunks(b, stream)
	feedChunks(twin, stream)
	bc := b.Clone().(*Bucketing)
	requireBucketingEqual(t, b, bc)
	feedChunks(bc, extra)
	requireBucketingEqual(t, b, twin)

	m := NewMinimum(n, mergeOpts(52, 1))
	mTwin := NewMinimum(n, mergeOpts(52, 1))
	feedChunks(m, stream)
	feedChunks(mTwin, stream)
	mc := m.Clone().(*Minimum)
	requireMinimumEqual(t, m, mc)
	feedChunks(mc, extra)
	requireMinimumEqual(t, m, mTwin)

	eo := mergeOpts(53, 1)
	eo.Thresh = 8
	eo.Iterations = 3
	e := NewEstimation(n, eo)
	eo2 := mergeOpts(53, 1)
	eo2.Thresh = 8
	eo2.Iterations = 3
	eTwin := NewEstimation(n, eo2)
	feedChunks(e, stream)
	feedChunks(eTwin, stream)
	ec := e.Clone().(*Estimation)
	requireEstimationEqual(t, e, ec)
	feedChunks(ec, extra)
	requireEstimationEqual(t, e, eTwin)
}

// Sketches with different draws, shapes, or types must refuse to merge.
func TestMergeIncompatible(t *testing.T) {
	n := 32
	a := NewBucketing(n, mergeOpts(61, 1))
	b := NewBucketing(n, mergeOpts(62, 1)) // different seed → different draws
	if err := a.Merge(b); err == nil {
		t.Fatal("merging different draws must fail")
	}
	small := mergeOpts(61, 1)
	small.Thresh = 6
	c := NewBucketing(n, small)
	if err := a.Merge(c); err == nil {
		t.Fatal("merging different thresholds must fail")
	}
	m := NewMinimum(n, mergeOpts(61, 1))
	if err := a.Merge(m); err == nil {
		t.Fatal("merging different sketch types must fail")
	}
}

// Concurrent determinism matrix: sequential ingestion through the
// concurrent front must produce estimates bit-identical to the plain
// serial sketch at every replica count.
func TestConcurrentDeterminism(t *testing.T) {
	n := 32
	stream := dupStream(n, 1500, stats.NewRNG(0xc0c0))
	serial := NewBucketing(n, mergeOpts(71, 1))
	feedChunks(serial, stream)
	want := serial.Estimate()
	for _, reps := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		front := NewConcurrent(NewBucketing(n, mergeOpts(71, 1)), reps)
		feedChunks(front, stream)
		if got := front.Estimate(); got != want {
			t.Fatalf("replicas=%d: estimate %v != serial %v", reps, got, want)
		}
		// The cache must survive repeated reads and invalidate on write.
		if got := front.Estimate(); got != want {
			t.Fatalf("replicas=%d: cached estimate diverged", reps)
		}
		front.Process(bitvec.FromUint64(1<<31-1, n))
		serial2 := NewBucketing(n, mergeOpts(71, 1))
		feedChunks(serial2, stream)
		serial2.Process(bitvec.FromUint64(1<<31-1, n))
		if got, want2 := front.Estimate(), serial2.Estimate(); got != want2 {
			t.Fatalf("replicas=%d: post-write estimate %v != serial %v", reps, got, want2)
		}
	}
}

// Race hammer: concurrent producers with interleaved Estimate calls, for
// every sketch type, checked against serial ingestion of the same
// element set. Run under -race in CI.
func TestConcurrentHammerRace(t *testing.T) {
	n := 32
	producers := 8
	perProducer := 400
	reps := runtime.GOMAXPROCS(0)
	streams := make([][]bitvec.BitVec, producers)
	var all []bitvec.BitVec
	for p := range streams {
		streams[p] = dupStream(n, perProducer, stats.NewRNG(uint64(0xa0+p)))
		all = append(all, streams[p]...)
	}

	seeds := map[string]func() Sketch{
		"bucketing": func() Sketch { return NewBucketing(n, mergeOpts(81, 1)) },
		"minimum":   func() Sketch { return NewMinimum(n, mergeOpts(82, 1)) },
		"fm":        func() Sketch { return NewFlajoletMartin(n, mergeOpts(83, 1)) },
		"exact":     func() Sketch { return NewExactDistinct(n) },
	}
	for name, mk := range seeds {
		t.Run(name, func(t *testing.T) {
			serial := mk()
			for _, x := range all {
				serial.Process(x)
			}
			want := serial.Estimate()

			front := NewConcurrent(mk(), reps)
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(xs []bitvec.BitVec) {
					defer wg.Done()
					for i := 0; i < len(xs); i += 16 {
						hi := min(i+16, len(xs))
						front.ProcessBatch(xs[i:hi])
						if i%128 == 0 {
							front.Process(xs[i])
						}
					}
				}(streams[p])
			}
			// Interleave estimates (and footprint reads) with ingestion.
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < 50; i++ {
					front.Estimate()
					front.SketchWords()
				}
			}()
			wg.Wait()
			<-done
			if got := front.Estimate(); got != want {
				t.Fatalf("hammered estimate %v != serial %v", got, want)
			}
		})
	}
}
