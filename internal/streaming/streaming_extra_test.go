package streaming

import (
	"math"
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/stats"
)

func TestEstimationAllHitsGivesInf(t *testing.T) {
	// With r = 0 every hash trivially has ≥ 0 trailing zeros, so the
	// coupon estimator must saturate to +Inf rather than divide by zero.
	o := testOpts(1)
	o.Iterations = 3
	o.Thresh = 4
	e := NewEstimation(8, o)
	e.Process(bitvec.FromUint64(5, 8))
	if got := e.EstimateWithR(0); !math.IsInf(got, 1) {
		t.Fatalf("EstimateWithR(0) = %v, want +Inf", got)
	}
}

func TestEmptyStreamEstimates(t *testing.T) {
	o := testOpts(2)
	for name, e := range map[string]Estimator{
		"bucketing": NewBucketing(8, o),
		"minimum":   NewMinimum(8, o),
		"exact":     NewExactDistinct(8),
	} {
		if got := e.Estimate(); got != 0 {
			t.Errorf("%s: empty stream estimate %g", name, got)
		}
	}
	fm := NewFlajoletMartin(8, o)
	if got := fm.Estimate(); got != 0 {
		t.Errorf("FM: empty stream estimate %g", got)
	}
}

func TestBucketingSaturatedUniverse(t *testing.T) {
	// Feed the entire 2^8 universe; estimate must be within band of 256
	// even at full saturation.
	o := testOpts(3)
	b := NewBucketing(8, o)
	for v := uint64(0); v < 256; v++ {
		b.Process(bitvec.FromUint64(v, 8))
	}
	if !stats.WithinFactor(b.Estimate(), 256, 1.0) {
		t.Errorf("full-universe estimate %g", b.Estimate())
	}
}

func TestMinimumReplacementKeepsSorted(t *testing.T) {
	o := testOpts(4)
	o.Thresh = 4
	o.Iterations = 1
	m := NewMinimum(12, o)
	rng := stats.NewRNG(99)
	for i := 0; i < 500; i++ {
		m.Process(bitvec.Random(12, rng.Uint64))
	}
	c := m.copies[0]
	if len(c.vals) != 4 {
		t.Fatalf("copy holds %d values", len(c.vals))
	}
	for i := 1; i < len(c.vals); i++ {
		if !c.vals[i-1].Less(c.vals[i]) {
			t.Fatal("minimum copy not strictly sorted")
		}
	}
}

func TestSuggestRClamped(t *testing.T) {
	// A dense stream over a tiny universe must not push r past n.
	o := testOpts(5)
	o.Iterations = 3
	o.Thresh = 4
	e := NewEstimation(6, o)
	for v := uint64(0); v < 64; v++ {
		e.Process(bitvec.FromUint64(v, 6))
	}
	if r := e.SuggestR(); r > 6 {
		t.Fatalf("SuggestR = %d exceeds universe bits", r)
	}
}
