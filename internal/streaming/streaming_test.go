package streaming

import (
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/stats"
)

func testOpts(seed uint64) Options {
	return Options{Epsilon: 0.8, Delta: 0.2, Thresh: 32, Iterations: 9, RNG: stats.NewRNG(seed)}
}

// makeStream draws length elements uniformly from a universe of `distinct`
// values embedded in {0,1}^n, guaranteeing every value appears at least
// once (so F0 is exactly `distinct`).
func makeStream(n, distinct, length int, rng *stats.RNG) []bitvec.BitVec {
	if length < distinct {
		length = distinct
	}
	vals := make([]uint64, distinct)
	seen := map[uint64]bool{}
	for i := range vals {
		for {
			v := rng.Uint64n(uint64(1) << uint(n))
			if !seen[v] {
				seen[v] = true
				vals[i] = v
				break
			}
		}
	}
	stream := make([]bitvec.BitVec, 0, length)
	for _, v := range vals {
		stream = append(stream, bitvec.FromUint64(v, n))
	}
	for len(stream) < length {
		stream = append(stream, bitvec.FromUint64(vals[rng.Intn(distinct)], n))
	}
	return stream
}

func feed(e Estimator, stream []bitvec.BitVec) {
	for _, x := range stream {
		e.Process(x)
	}
}

func TestExactDistinct(t *testing.T) {
	rng := stats.NewRNG(1)
	stream := makeStream(16, 100, 500, rng)
	e := NewExactDistinct(16)
	feed(e, stream)
	if e.Count() != 100 {
		t.Fatalf("exact count %d, want 100", e.Count())
	}
}

// sketchAccuracy checks an estimator family's empirical (ε, δ) behaviour.
func sketchAccuracy(t *testing.T, name string, mk func(n int, opts Options) Estimator, eps float64) {
	t.Helper()
	rng := stats.NewRNG(42)
	for _, f0 := range []int{10, 200, 2000} {
		ok := 0
		const trials = 10
		for s := 0; s < trials; s++ {
			n := 24
			stream := makeStream(n, f0, f0*2, rng)
			e := mk(n, testOpts(uint64(100+s)))
			feed(e, stream)
			if stats.WithinFactor(e.Estimate(), float64(f0), eps) {
				ok++
			}
		}
		if ok < trials*7/10 {
			t.Errorf("%s F0=%d: only %d/%d within (1+%g)", name, f0, ok, trials, eps)
		}
	}
}

func TestBucketingAccuracy(t *testing.T) {
	sketchAccuracy(t, "Bucketing", func(n int, o Options) Estimator { return NewBucketing(n, o) }, 0.8)
}

func TestMinimumAccuracy(t *testing.T) {
	sketchAccuracy(t, "Minimum", func(n int, o Options) Estimator { return NewMinimum(n, o) }, 0.8)
}

func TestEstimationAccuracy(t *testing.T) {
	// The Estimation sketch processes t×Thresh hashes per element — keep
	// the workload smaller.
	rng := stats.NewRNG(43)
	for _, f0 := range []int{50, 500} {
		ok := 0
		const trials = 8
		for s := 0; s < trials; s++ {
			n := 20
			stream := makeStream(n, f0, f0, rng)
			opts := testOpts(uint64(200 + s))
			opts.Iterations = 7
			e := NewEstimation(n, opts)
			feed(e, stream)
			if stats.WithinFactor(e.Estimate(), float64(f0), 0.8) {
				ok++
			}
		}
		if ok < trials*6/10 {
			t.Errorf("Estimation F0=%d: only %d/%d within band", f0, ok, trials)
		}
	}
}

func TestEstimationWithGroundTruthR(t *testing.T) {
	// With r chosen from the true F0 (as Lemma 3 assumes), accuracy must
	// hold with high rate.
	rng := stats.NewRNG(44)
	f0 := 300
	ok := 0
	const trials = 8
	for s := 0; s < trials; s++ {
		stream := makeStream(20, f0, f0, rng)
		opts := testOpts(uint64(300 + s))
		opts.Iterations = 7
		e := NewEstimation(20, opts)
		feed(e, stream)
		r := 10 // 2^10 = 1024 ∈ [2·300, 50·300]
		if stats.WithinFactor(e.EstimateWithR(r), float64(f0), 0.8) {
			ok++
		}
	}
	if ok < trials*3/4 {
		t.Errorf("Estimation with true r: only %d/%d within band", ok, trials)
	}
}

func TestFlajoletMartinFactorFive(t *testing.T) {
	rng := stats.NewRNG(45)
	f0 := 1000
	ok := 0
	const trials = 10
	for s := 0; s < trials; s++ {
		stream := makeStream(24, f0, f0, rng)
		fm := NewFlajoletMartin(24, testOpts(uint64(400+s)))
		feed(fm, stream)
		est := fm.Estimate()
		if est >= float64(f0)/8 && est <= 8*float64(f0) {
			ok++
		}
	}
	if ok < trials*7/10 {
		t.Errorf("FM within factor 8 only %d/%d times", ok, trials)
	}
}

// TestOrderInsensitive verifies that all sketches produce identical
// estimates for permutations of the same multiset — the defining property
// of the relations P1–P3 of Section 3.1.
func TestOrderInsensitive(t *testing.T) {
	rng := stats.NewRNG(46)
	n := 16
	stream := makeStream(n, 150, 600, rng)
	reversed := make([]bitvec.BitVec, len(stream))
	for i, x := range stream {
		reversed[len(stream)-1-i] = x
	}
	shuffled := append([]bitvec.BitVec(nil), stream...)
	for i := len(shuffled) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	mks := map[string]func(uint64) Estimator{
		"bucketing": func(seed uint64) Estimator { return NewBucketing(n, testOpts(seed)) },
		"minimum":   func(seed uint64) Estimator { return NewMinimum(n, testOpts(seed)) },
		"estimation": func(seed uint64) Estimator {
			o := testOpts(seed)
			o.Iterations = 3
			o.Thresh = 8
			return NewEstimation(n, o)
		},
	}
	for name, mk := range mks {
		var ests []float64
		for _, s := range [][]bitvec.BitVec{stream, reversed, shuffled} {
			e := mk(7)
			feed(e, s)
			ests = append(ests, e.Estimate())
		}
		if ests[0] != ests[1] || ests[0] != ests[2] {
			t.Errorf("%s: order-dependent estimates %v", name, ests)
		}
	}
}

// TestDuplicatesIgnored verifies F0 semantics: repeating one element a
// thousand times must not move any sketch.
func TestDuplicatesIgnored(t *testing.T) {
	n := 16
	base := makeStream(n, 50, 50, stats.NewRNG(47))
	flood := append([]bitvec.BitVec(nil), base...)
	for i := 0; i < 1000; i++ {
		flood = append(flood, base[0])
	}
	for name, mk := range map[string]func() Estimator{
		"bucketing": func() Estimator { return NewBucketing(n, testOpts(9)) },
		"minimum":   func() Estimator { return NewMinimum(n, testOpts(9)) },
	} {
		a, b := mk(), mk()
		feed(a, base)
		feed(b, flood)
		if a.Estimate() != b.Estimate() {
			t.Errorf("%s: duplicates changed the estimate", name)
		}
	}
}

// TestSketchSpaceSublinear verifies the headline space claim: sketch size
// stays bounded by O(Thresh·t) words while the exact baseline grows with
// F0.
func TestSketchSpaceSublinear(t *testing.T) {
	n := 32
	rng := stats.NewRNG(48)
	opts := testOpts(11)
	small := makeStream(n, 100, 100, rng)
	big := makeStream(n, 20000, 20000, rng)

	bSmall, bBig := NewBucketing(n, opts), NewBucketing(n, opts)
	feed(bSmall, small)
	feed(bBig, big)
	bound := opts.Thresh * opts.Iterations * ((n + 63) / 64)
	if bBig.SketchWords() > bound {
		t.Errorf("bucketing sketch %d words exceeds bound %d", bBig.SketchWords(), bound)
	}

	mBig := NewMinimum(n, opts)
	feed(mBig, big)
	if mBig.SketchWords() > opts.Thresh*opts.Iterations*((3*n+63)/64) {
		t.Errorf("minimum sketch too large: %d words", mBig.SketchWords())
	}

	exact := NewExactDistinct(n)
	feed(exact, big)
	if exact.SketchWords() <= bound {
		t.Errorf("exact baseline unexpectedly small: %d words", exact.SketchWords())
	}
}

func TestMinimumSmallStreamExact(t *testing.T) {
	// Fewer distinct elements than Thresh: Minimum reports exactly.
	n := 16
	stream := makeStream(n, 10, 40, stats.NewRNG(49))
	m := NewMinimum(n, testOpts(13))
	feed(m, stream)
	if m.Estimate() != 10 {
		t.Errorf("small-stream estimate %g, want exactly 10", m.Estimate())
	}
}

func TestBucketingLevelGrowth(t *testing.T) {
	// A large stream must push sampling levels up; a small one must not.
	n := 24
	small := NewBucketing(n, testOpts(15))
	feed(small, makeStream(n, 10, 10, stats.NewRNG(50)))
	if small.MaxLevel() != 0 {
		t.Errorf("tiny stream raised level to %d", small.MaxLevel())
	}
	big := NewBucketing(n, testOpts(15))
	feed(big, makeStream(n, 5000, 5000, stats.NewRNG(51)))
	if big.MaxLevel() == 0 {
		t.Error("large stream never raised the sampling level")
	}
}

func TestPaperDefaultOptions(t *testing.T) {
	var o Options
	if o.thresh() < 150 {
		t.Errorf("default thresh %d below 96/ε²", o.thresh())
	}
	if o.iterations() < 81 {
		t.Errorf("default iterations %d below 35·log2(5)", o.iterations())
	}
}
