// Package streaming implements the ComputeF0 architecture of Section 3
// (Algorithms 1–4): three sketch-based (ε, δ) estimators for the number of
// distinct elements in a stream over {0,1}^n —
//
//   - Bucketing (Gibbons–Tirthapura): keep the elements whose hash has an
//     all-zero m-bit prefix, doubling the cell count on overflow;
//   - Minimum (Bar-Yossef et al.): keep the Thresh lexicographically
//     smallest hash values;
//   - Estimation (Bar-Yossef et al.): track the maximum trailing-zero
//     count of Thresh independent s-wise hashes;
//
// plus the Flajolet–Martin rough estimator and an exact-distinct baseline.
// Every sketch processes items one at a time (Process) or in chunks
// (ProcessBatch) and is order-insensitive.
//
// The t ≈ 35·log₂(1/δ) copies of each sketch are independent — own hash
// function, own mutable state — and run on a sharded worker pool
// (Options.Parallelism) when the work amortises dispatch: ProcessBatch
// fans the copies out one dispatch per chunk, and Estimation.Process fans
// out even on single elements (its per-copy work is Thresh evaluations).
// Hash functions are drawn serially at construction keyed by copy index,
// never by worker, so fixed-seed estimates are bit-identical at every
// parallelism level and ProcessBatch leaves every copy in exactly the
// state element-at-a-time Process would.
//
// # Concurrency contract
//
// Sketches are single-writer: Process, ProcessBatch, and Estimate must be
// driven by one goroutine at a time (callers batching from many producers
// serialise upstream). Parallelism happens inside a ProcessBatch call,
// where the copies fan out across the shard pool; a copy — and therefore
// its hash function and its mutable cell/minima/counter state — is only
// ever touched by the one worker its shard maps to. Per-shard scratch
// (hash-output buffers) is allocated with par.ShardScratch and owned by
// the shard for the duration of one dispatch; batch-conversion scratch
// (fingerprints, integer forms) is written before fan-out and read-only
// inside it. Hash functions themselves are immutable after Draw (the
// Toeplitz carry-less kernel carries no evaluation scratch), so sharing
// one across shards would also be safe — the per-copy ownership is what
// makes the *mutable* sketch state race-free.
package streaming

import (
	"math"
	"math/bits"
	"sort"

	"mcf0/internal/bitvec"
	"mcf0/internal/hash"
	"mcf0/internal/par"
	"mcf0/internal/stats"
)

// Options parameterises the sketches; the zero value selects the paper's
// constants (Thresh = 96/ε² with ε = 0.8, t = 35·log₂(1/δ) with δ = 0.2).
type Options struct {
	Epsilon    float64
	Delta      float64
	Thresh     int
	Iterations int
	RNG        *stats.RNG
	// Parallelism bounds the worker pool that fans the t independent
	// sketch copies out across CPUs. 0 selects GOMAXPROCS; 1 forces
	// serial. Copies own all their mutable state and their hashes are
	// drawn serially at construction, so fixed-seed estimates are
	// bit-identical at every level.
	Parallelism int
}

func (o Options) epsilon() float64 {
	if o.Epsilon > 0 {
		return o.Epsilon
	}
	return 0.8
}

func (o Options) delta() float64 {
	if o.Delta > 0 && o.Delta < 1 {
		return o.Delta
	}
	return 0.2
}

func (o Options) thresh() int {
	if o.Thresh > 0 {
		return o.Thresh
	}
	return int(96/(o.epsilon()*o.epsilon())) + 1
}

func (o Options) iterations() int {
	if o.Iterations > 0 {
		return o.Iterations
	}
	t := int(35 * log2(1/o.delta()))
	if t < 1 {
		t = 1
	}
	return t
}

func (o Options) rng() *stats.RNG {
	if o.RNG != nil {
		return o.RNG
	}
	return stats.NewRNG(0xf0f0f0)
}

func (o Options) parallelism() int { return par.Workers(o.Parallelism) }

func log2(x float64) float64 { return math.Log2(x) }

func pow2(k int) float64 { return math.Pow(2, float64(k)) }

// Estimator is the common face of the F0 sketches (Algorithm 1's
// architecture): feed elements with Process or ProcessBatch, read the
// answer with Estimate.
type Estimator interface {
	// Process absorbs one stream element.
	Process(x bitvec.BitVec)
	// ProcessBatch absorbs a chunk of stream elements, leaving the sketch
	// in exactly the state len(xs) Process calls in order would; chunks
	// amortise the worker-pool dispatch over many elements.
	ProcessBatch(xs []bitvec.BitVec)
	// Estimate returns the current F0 approximation.
	Estimate() float64
	// SketchWords returns the current sketch size in 64-bit words,
	// excluding the stored hash functions (reported for the space
	// experiments).
	SketchWords() int
}

// ExactDistinct is the ground-truth baseline: a hash set of all elements,
// keyed by fixed-size fingerprints (exact for widths ≤ 128 bits; see
// bitvec.Fingerprint for the collision contract beyond that).
type ExactDistinct struct {
	seen map[bitvec.Fingerprint]struct{}
	n    int
}

// NewExactDistinct returns an exact distinct counter over n-bit elements.
func NewExactDistinct(n int) *ExactDistinct {
	return &ExactDistinct{seen: map[bitvec.Fingerprint]struct{}{}, n: n}
}

// Process absorbs one element.
func (e *ExactDistinct) Process(x bitvec.BitVec) { e.seen[x.Fingerprint()] = struct{}{} }

// ProcessBatch absorbs a chunk of elements (the set is inherently serial).
func (e *ExactDistinct) ProcessBatch(xs []bitvec.BitVec) {
	for _, x := range xs {
		e.Process(x)
	}
}

// Estimate returns the exact distinct count.
func (e *ExactDistinct) Estimate() float64 { return float64(len(e.seen)) }

// SketchWords reports the O(F0) exact-set footprint.
func (e *ExactDistinct) SketchWords() int { return len(e.seen) * ((e.n + 63) / 64) }

// Count returns the distinct count as an integer.
func (e *ExactDistinct) Count() int { return len(e.seen) }

// Bucketing is Algorithm 3's Bucketing case: t independent copies of the
// Gibbons–Tirthapura adaptive-sampling bucket.
type Bucketing struct {
	thresh int
	n      int
	copies []*bucketCopy
	eng    engine
	keys   []bitvec.Fingerprint // batch fingerprint scratch
	one    [1]bitvec.BitVec
}

// bucketCopy stores its cell as a slot table over rows carved from one
// contiguous slab shared by every copy of the sketch (thresh+1 slots per
// copy: the overflow loop runs after insertion, so occupancy transiently
// reaches thresh+1). Raising the level re-filters with one linear walk
// over the slab instead of iterating a map of scattered heap vectors.
type bucketCopy struct {
	h     *hash.Linear
	level int
	idx   map[bitvec.Fingerprint]int32 // element fingerprint → occupied slot
	rows  []bitvec.BitVec              // slab rows: hash values, addressed by slot
	keys  []bitvec.Fingerprint         // keys[slot], valid while occ[slot]
	occ   []bool
	free  []int32 // stack of unoccupied slots
	// scratch holds one hash evaluation; it is copied into a slab row only
	// when the element actually enters the cell.
	scratch bitvec.BitVec
}

// NewBucketing builds a Bucketing sketch over n-bit elements, drawing
// hashes from H_Toeplitz(n, n).
func NewBucketing(n int, opts Options) *Bucketing {
	rng := opts.rng()
	fam := hash.NewToeplitz(n, n)
	b := &Bucketing{thresh: opts.thresh(), n: n, eng: newEngine(opts.Parallelism, minBatchCheap)}
	t := opts.iterations()
	slots := b.thresh + 1
	rows := bitvec.NewSlab(n, t*slots)
	for i := 0; i < t; i++ {
		b.copies = append(b.copies, newBucketCopy(
			fam.Draw(rng.Uint64).(*hash.Linear), rows[i*slots:(i+1)*slots], n))
	}
	return b
}

func newBucketCopy(h *hash.Linear, rows []bitvec.BitVec, n int) *bucketCopy {
	c := &bucketCopy{
		h:       h,
		idx:     make(map[bitvec.Fingerprint]int32, len(rows)),
		rows:    rows,
		keys:    make([]bitvec.Fingerprint, len(rows)),
		occ:     make([]bool, len(rows)),
		free:    make([]int32, 0, len(rows)),
		scratch: bitvec.New(n),
	}
	for s := len(rows) - 1; s >= 0; s-- {
		c.free = append(c.free, int32(s))
	}
	return c
}

// absorb runs lines 3–11 of Algorithm 3 for one copy and one element.
func (c *bucketCopy) absorb(x bitvec.BitVec, key bitvec.Fingerprint, thresh int) {
	if _, ok := c.idx[key]; ok {
		return
	}
	c.h.EvalInto(x, c.scratch)
	c.insert(key, c.scratch, thresh)
}

// insert places an already-evaluated hash value into the cell (lines 5–11
// of Algorithm 3): filter at the current level, store into a free slot,
// and raise the level until the cell fits again. Shared by ingestion
// (absorb) and Merge; callers have already rejected duplicate keys.
func (c *bucketCopy) insert(key bitvec.Fingerprint, hy bitvec.BitVec, thresh int) {
	if !hy.HasZeroPrefix(c.level) {
		return
	}
	slot := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.rows[slot].CopyFrom(hy)
	c.keys[slot] = key
	c.occ[slot] = true
	c.idx[key] = slot
	for len(c.idx) > thresh {
		c.setLevel(c.level + 1)
	}
}

// setLevel raises the sampling level and evicts the hash values that lose
// their all-zero prefix, scanning the slots in slab order.
func (c *bucketCopy) setLevel(level int) {
	c.level = level
	for s := range c.rows {
		if c.occ[s] && !c.rows[s].HasZeroPrefix(level) {
			delete(c.idx, c.keys[s])
			c.occ[s] = false
			c.free = append(c.free, int32(s))
		}
	}
}

// Process absorbs one element (lines 3–11 of Algorithm 3).
func (b *Bucketing) Process(x bitvec.BitVec) {
	b.one[0] = x
	b.ProcessBatch(b.one[:])
}

// ProcessBatch absorbs a chunk of elements, fanning the copies across the
// worker pool with one dispatch for the whole chunk.
func (b *Bucketing) ProcessBatch(xs []bitvec.BitVec) {
	if len(xs) == 0 {
		return
	}
	if cap(b.keys) < len(xs) {
		b.keys = make([]bitvec.Fingerprint, len(xs))
	}
	keys := b.keys[:len(xs)]
	for k, x := range xs {
		keys[k] = x.Fingerprint()
	}
	if b.eng.serial(len(xs)) {
		for _, c := range b.copies {
			for k, x := range xs {
				c.absorb(x, keys[k], b.thresh)
			}
		}
		return
	}
	b.eng.run(len(b.copies), func(i, _ int) {
		c := b.copies[i]
		for k, x := range xs {
			c.absorb(x, keys[k], b.thresh)
		}
	})
}

// Estimate returns Median_i(|bucket_i| · 2^level_i).
func (b *Bucketing) Estimate() float64 {
	ests := make([]float64, len(b.copies))
	for i, c := range b.copies {
		ests[i] = float64(len(c.idx)) * pow2(c.level)
	}
	return stats.Median(ests)
}

// SketchWords reports the live bucket contents' footprint.
func (b *Bucketing) SketchWords() int {
	total := 0
	wpr := (b.n + 63) / 64
	for _, c := range b.copies {
		total += len(c.idx) * wpr
	}
	return total
}

// MaxLevel returns the largest sampling level across copies (diagnostics).
func (b *Bucketing) MaxLevel() int {
	m := 0
	for _, c := range b.copies {
		if c.level > m {
			m = c.level
		}
	}
	return m
}

// Minimum is Algorithm 3's Minimum case: t copies each retaining the
// Thresh lexicographically smallest distinct hash values, with hashes from
// H_Toeplitz(n, 3n).
type Minimum struct {
	thresh int
	n      int
	copies []*minCopy
	eng    engine
	// mergeTmp is Merge's rank-order staging area (thresh slab rows),
	// allocated on first Merge and reused across copies.
	mergeTmp []bitvec.BitVec
	one      [1]bitvec.BitVec
}

// minCopy keeps its minima in rows carved from one contiguous slab shared
// by every copy of the sketch: vals is a sorted permutation of the first
// len(vals) store rows (headers move on insert, row data stays put), so
// absorb's shift-and-insert streams over one allocation.
type minCopy struct {
	h     *hash.Linear
	vals  []bitvec.BitVec // sorted ascending, ≤ thresh distinct values
	store []bitvec.BitVec // thresh slab rows backing vals
	// scratch holds the current evaluation; it is copied into a store row
	// only when the value actually enters the sketch, so elements hashing
	// above the current maximum (the steady-state common case) cost no
	// data movement.
	scratch bitvec.BitVec
}

// NewMinimum builds a Minimum sketch over n-bit elements.
func NewMinimum(n int, opts Options) *Minimum {
	rng := opts.rng()
	fam := hash.NewToeplitz(n, 3*n)
	m := &Minimum{thresh: opts.thresh(), n: n, eng: newEngine(opts.Parallelism, minBatchCheap)}
	t := opts.iterations()
	store := bitvec.NewSlab(3*n, t*m.thresh)
	for i := 0; i < t; i++ {
		m.copies = append(m.copies, &minCopy{
			h:       fam.Draw(rng.Uint64).(*hash.Linear),
			store:   store[i*m.thresh : (i+1)*m.thresh],
			scratch: bitvec.New(3 * n),
		})
	}
	return m
}

// absorb runs lines 12–18 of Algorithm 3 for one copy and one element.
func (c *minCopy) absorb(x bitvec.BitVec, thresh int) {
	c.h.EvalInto(x, c.scratch)
	y := c.scratch
	idx := sort.Search(len(c.vals), func(i int) bool { return !c.vals[i].Less(y) })
	if idx < len(c.vals) && c.vals[idx].Equal(y) {
		return // already present
	}
	if len(c.vals) < thresh {
		// Rows enter vals only from store in order (and evictions recycle
		// in place), so store[len(vals)] is always the next unused row.
		row := c.store[len(c.vals)]
		c.vals = append(c.vals, bitvec.BitVec{})
		copy(c.vals[idx+1:], c.vals[idx:])
		row.CopyFrom(y)
		c.vals[idx] = row
	} else if idx < len(c.vals) {
		// y is smaller than the current maximum: replace it. Recycle
		// the evicted maximum's storage instead of allocating.
		evicted := c.vals[len(c.vals)-1]
		copy(c.vals[idx+1:], c.vals[idx:len(c.vals)-1])
		evicted.CopyFrom(y)
		c.vals[idx] = evicted
	}
}

// Process absorbs one element (lines 12–18 of Algorithm 3).
func (m *Minimum) Process(x bitvec.BitVec) {
	m.one[0] = x
	m.ProcessBatch(m.one[:])
}

// ProcessBatch absorbs a chunk of elements, fanning the copies across the
// worker pool with one dispatch for the whole chunk.
func (m *Minimum) ProcessBatch(xs []bitvec.BitVec) {
	if len(xs) == 0 {
		return
	}
	if m.eng.serial(len(xs)) {
		for _, c := range m.copies {
			for _, x := range xs {
				c.absorb(x, m.thresh)
			}
		}
		return
	}
	m.eng.run(len(m.copies), func(i, _ int) {
		c := m.copies[i]
		for _, x := range xs {
			c.absorb(x, m.thresh)
		}
	})
}

// Estimate returns Median_i(Thresh / frac(max S[i])), or the exact distinct
// hash count when a copy holds fewer than Thresh values.
func (m *Minimum) Estimate() float64 {
	ests := make([]float64, len(m.copies))
	for i, c := range m.copies {
		if len(c.vals) < m.thresh {
			ests[i] = float64(len(c.vals))
			continue
		}
		f := c.vals[len(c.vals)-1].Fraction()
		if f == 0 {
			ests[i] = float64(len(c.vals))
			continue
		}
		ests[i] = float64(m.thresh) / f
	}
	return stats.Median(ests)
}

// SketchWords reports the stored minima footprint.
func (m *Minimum) SketchWords() int {
	total := 0
	for _, c := range m.copies {
		for _, v := range c.vals {
			total += (v.Len() + 63) / 64
		}
	}
	return total
}

// Estimation is Algorithm 3's Estimation case: a t × Thresh grid of s-wise
// independent hashes, tracking each one's maximum trailing-zero count.
// Requires n ≤ 64. Estimate needs the range parameter r of Lemma 3
// (2F0 ≤ 2^r ≤ 50F0); EstimateAuto derives one from a built-in
// Flajolet–Martin tracker, "run in parallel" as the paper prescribes.
type Estimation struct {
	thresh int
	n      int
	hs     [][]hash.Func
	// u64 mirrors hs via the integer fast path when every hash supports it
	// (the polynomial family always does); nil otherwise.
	u64 [][]hash.Uint64Hash
	// s is the t × Thresh grid of max trailing-zero counts, flattened to
	// one contiguous slab: cell (i, j) lives at s[i*thresh+j], so a row
	// absorb streams linearly and Merge is one pointwise-max sweep.
	s   []int
	fm  *FlajoletMartin
	eng engine
	// scratch holds one hash-output buffer per pool shard (generic path).
	scratch []bitvec.BitVec
	xvs     []uint64 // batch integer-conversion scratch
	one     [1]bitvec.BitVec
}

// NewEstimation builds an Estimation sketch over n-bit elements, drawing
// from the s-wise polynomial family with s = 10·log₂(1/ε).
func NewEstimation(n int, opts Options) *Estimation {
	rng := opts.rng()
	s := int(10 * log2(1/opts.epsilon()))
	if s < 2 {
		s = 2
	}
	fam := hash.NewPoly(n, s)
	t := opts.iterations()
	thresh := opts.thresh()
	e := &Estimation{
		thresh:  thresh,
		n:       n,
		fm:      NewFlajoletMartin(n, opts),
		eng:     newEngine(opts.Parallelism, minBatchEstimation),
		scratch: par.ShardScratch(opts.parallelism(), func() bitvec.BitVec { return bitvec.New(n) }),
	}
	e.s = make([]int, t*thresh)
	for i := range e.s {
		e.s[i] = -1
	}
	allU64 := true
	for i := 0; i < t; i++ {
		var row []hash.Func
		var urow []hash.Uint64Hash
		for j := 0; j < thresh; j++ {
			h := fam.Draw(rng.Uint64)
			row = append(row, h)
			if u, ok := hash.AsUint64Hash(h); ok {
				urow = append(urow, u)
			} else {
				allU64 = false
			}
		}
		e.hs = append(e.hs, row)
		e.u64 = append(e.u64, urow)
	}
	if !allU64 {
		e.u64 = nil
	}
	return e
}

// Process absorbs one element (lines 19–21 of Algorithm 3). Each copy does
// Thresh hash evaluations, so even a single element fans out across the
// pool.
func (e *Estimation) Process(x bitvec.BitVec) {
	e.one[0] = x
	e.ProcessBatch(e.one[:])
}

// ProcessBatch absorbs a chunk of elements, fanning the t grid rows across
// the worker pool.
func (e *Estimation) ProcessBatch(xs []bitvec.BitVec) {
	if len(xs) == 0 {
		return
	}
	if e.u64 != nil {
		// Integer fast path: convert each x once, then every grid cell is
		// one field evaluation plus a trailing-zeros instruction.
		if cap(e.xvs) < len(xs) {
			e.xvs = make([]uint64, len(xs))
		}
		xvs := e.xvs[:len(xs)]
		for k, x := range xs {
			xvs[k] = x.Uint64()
		}
		if e.eng.serial(len(xs)) {
			for i := range e.u64 {
				e.absorbRowU64(i, xvs)
			}
		} else {
			e.eng.run(len(e.u64), func(i, _ int) { e.absorbRowU64(i, xvs) })
		}
	} else {
		if e.eng.serial(len(xs)) {
			for i := range e.hs {
				e.absorbRow(i, xs, e.scratch[0])
			}
		} else {
			e.eng.run(len(e.hs), func(i, shard int) { e.absorbRow(i, xs, e.scratch[shard]) })
		}
	}
	e.fm.ProcessBatch(xs)
}

// row returns grid row i of the flat trailing-zero slab.
func (e *Estimation) row(i int) []int { return e.s[i*e.thresh : (i+1)*e.thresh] }

// absorbRowU64 folds a converted batch into grid row i (integer path).
func (e *Estimation) absorbRowU64(i int, xvs []uint64) {
	srow := e.row(i)
	for _, xv := range xvs {
		for j, u := range e.u64[i] {
			y := u.EvalUint64(xv)
			tz := e.n
			if y != 0 {
				tz = bits.TrailingZeros64(y)
			}
			if tz > srow[j] {
				srow[j] = tz
			}
		}
	}
}

// absorbRow folds a batch into grid row i via the generic hash interface.
func (e *Estimation) absorbRow(i int, xs []bitvec.BitVec, scratch bitvec.BitVec) {
	srow := e.row(i)
	for _, x := range xs {
		for j, h := range e.hs[i] {
			if tz := hash.EvalTrailingZeros(h, x, scratch); tz > srow[j] {
				srow[j] = tz
			}
		}
	}
}

// EstimateWithR evaluates the Lemma 3 estimator at range parameter r.
func (e *Estimation) EstimateWithR(r int) float64 {
	ests := make([]float64, len(e.hs))
	for i := range ests {
		hits := 0
		for _, v := range e.row(i) {
			if v >= r {
				hits++
			}
		}
		ests[i] = stats.CouponEstimate(hits, e.thresh, r)
	}
	return stats.Median(ests)
}

// Estimate uses the parallel Flajolet–Martin tracker to choose r
// (r = r_FM + 3 places 2^r inside the Lemma 3 window when FM is within its
// factor-5 band).
func (e *Estimation) Estimate() float64 { return e.EstimateWithR(e.SuggestR()) }

// SuggestR returns the FM-derived range parameter, clamped to the hash
// width (for streams denser than half the universe the Lemma 3 window is
// infeasible and r = n is the best available choice).
func (e *Estimation) SuggestR() int {
	r := e.fm.MaxTrailingZeros() + 3
	if r > e.n {
		r = e.n
	}
	return r
}

// SketchWords reports the trailing-zero grid footprint.
func (e *Estimation) SketchWords() int { return len(e.s) }

// FlajoletMartin is the classical rough estimator: the maximum trailing
// zero count r of a single pairwise-independent hash over the stream gives
// 2^r, a factor-5 approximation of F0 with probability 3/5 (Alon–Matias–
// Szegedy). The median over Iterations copies is reported.
type FlajoletMartin struct {
	hs []*hash.Linear
	// u64 mirrors hs via the integer fast path (hash.AsUint64Hash) when
	// every copy supports it — always the case for n ≤ 64; nil otherwise.
	u64 []hash.Uint64Hash
	max []int
	eng engine
	// scratch holds one hash-output buffer per pool shard (generic path).
	scratch []bitvec.BitVec
	xvs     []uint64 // batch integer-conversion scratch
	one     [1]bitvec.BitVec
}

// NewFlajoletMartin builds the rough estimator with hashes from H_xor(n,n).
func NewFlajoletMartin(n int, opts Options) *FlajoletMartin {
	rng := opts.rng()
	fam := hash.NewXor(n, n)
	f := &FlajoletMartin{
		eng:     newEngine(opts.Parallelism, minBatchCheap),
		scratch: par.ShardScratch(opts.parallelism(), func() bitvec.BitVec { return bitvec.New(n) }),
	}
	allU64 := true
	for i := 0; i < opts.iterations(); i++ {
		h := fam.Draw(rng.Uint64).(*hash.Linear)
		f.hs = append(f.hs, h)
		if u, ok := hash.AsUint64Hash(h); ok {
			f.u64 = append(f.u64, u)
		} else {
			allU64 = false
		}
		f.max = append(f.max, -1)
	}
	if !allU64 {
		f.u64 = nil
	}
	return f
}

// Process absorbs one element.
func (f *FlajoletMartin) Process(x bitvec.BitVec) {
	f.one[0] = x
	f.ProcessBatch(f.one[:])
}

// ProcessBatch absorbs a chunk of elements, fanning the copies across the
// worker pool.
func (f *FlajoletMartin) ProcessBatch(xs []bitvec.BitVec) {
	if len(xs) == 0 {
		return
	}
	if f.u64 != nil {
		// Integer fast path: convert each x once, then every copy is one
		// EvalUint64 (a carry-less multiply or single-word row sweep) plus
		// a trailing-zeros instruction.
		if cap(f.xvs) < len(xs) {
			f.xvs = make([]uint64, len(xs))
		}
		xvs := f.xvs[:len(xs)]
		for k, x := range xs {
			xvs[k] = x.Uint64()
		}
		if f.eng.serial(len(xs)) {
			for i := range f.u64 {
				f.absorbCopyU64(i, xvs)
			}
			return
		}
		f.eng.run(len(f.hs), func(i, _ int) { f.absorbCopyU64(i, xvs) })
		return
	}
	if f.eng.serial(len(xs)) {
		for i := range f.hs {
			f.absorbCopy(i, xs, f.scratch[0])
		}
		return
	}
	f.eng.run(len(f.hs), func(i, shard int) { f.absorbCopy(i, xs, f.scratch[shard]) })
}

// absorbCopyU64 folds a converted batch into copy i's counter.
func (f *FlajoletMartin) absorbCopyU64(i int, xvs []uint64) {
	u := f.u64[i]
	n := f.hs[i].OutBits()
	best := f.max[i]
	for _, v := range xvs {
		tz := n
		if y := u.EvalUint64(v); y != 0 {
			tz = bits.TrailingZeros64(y)
		}
		if tz > best {
			best = tz
		}
	}
	f.max[i] = best
}

// absorbCopy folds a batch into copy i's max-trailing-zeros counter.
func (f *FlajoletMartin) absorbCopy(i int, xs []bitvec.BitVec, scratch bitvec.BitVec) {
	h := f.hs[i]
	best := f.max[i]
	for _, x := range xs {
		h.EvalInto(x, scratch)
		if tz := scratch.TrailingZeros(); tz > best {
			best = tz
		}
	}
	f.max[i] = best
}

// Estimate returns Median_i(2^{r_i}).
func (f *FlajoletMartin) Estimate() float64 {
	ests := make([]float64, len(f.max))
	for i, r := range f.max {
		if r < 0 {
			ests[i] = 0
		} else {
			ests[i] = pow2(r)
		}
	}
	return stats.Median(ests)
}

// MaxTrailingZeros returns the median max-trailing-zero count.
func (f *FlajoletMartin) MaxTrailingZeros() int {
	return int(stats.MedianInt(f.max))
}

// SketchWords reports the O(t) counter footprint.
func (f *FlajoletMartin) SketchWords() int { return len(f.max) }
