package streaming

import (
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/stats"
)

// sinkPad keeps the scatter padding allocations live so the collector
// cannot reclaim them and compact survivors back into a slab-like layout.
var sinkPad [][]uint64

// scatterRows rebuilds the pre-slab layout: every row gets its own heap
// allocation, interleaved with padding allocations of the SAME length.
// Matching the length matters — Go's allocator segregates spans by size
// class, so differently-sized padding would land in other spans and the
// row allocations would still end up densely packed together.
func scatterRows(rows []bitvec.BitVec, width int) {
	for i := range rows {
		row := bitvec.New(width)
		row.CopyFrom(rows[i])
		rows[i] = row
		for p := 0; p < 3; p++ {
			sinkPad = append(sinkPad, make([]uint64, (width+63)/64))
		}
	}
}

func scatterBucketing(s *Bucketing) {
	for _, c := range s.copies {
		scatterRows(c.rows, s.n)
	}
}

func scatterMinimum(s *Minimum) {
	// Scatter before any ingestion: vals is empty, so no header in the
	// sorted prefix aliases a replaced store row.
	for _, c := range s.copies {
		scatterRows(c.store, 3*s.n)
	}
}

// BenchmarkAbsorbLayout times steady-state batch absorption with per-copy
// state in one contiguous slab (the PR-6 layout) against the same sketch
// with every row individually heap-allocated and padded 4× apart (the
// prior layout). One op = one full pass over a 4096-element stream in
// 256-element chunks, against a saturated sketch.
func BenchmarkAbsorbLayout(b *testing.B) {
	n := 64
	stream := dupStream(n, 4096, stats.NewRNG(0xabab))
	opts := func(seed uint64) Options {
		return Options{Epsilon: 0.8, Delta: 0.2, Thresh: 64, Iterations: 33,
			RNG: stats.NewRNG(seed), Parallelism: 1}
	}
	run := func(b *testing.B, e Estimator) {
		feedChunks(e, stream) // reach steady state before timing
		b.ReportAllocs()      // steady-state absorb must stay allocation-free
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for lo := 0; lo < len(stream); lo += 256 {
				e.ProcessBatch(stream[lo:min(lo+256, len(stream))])
			}
		}
		sinkEstimate = e.Estimate()
	}
	b.Run("bucketing/slab", func(b *testing.B) {
		run(b, NewBucketing(n, opts(21)))
	})
	b.Run("bucketing/scattered", func(b *testing.B) {
		s := NewBucketing(n, opts(21))
		scatterBucketing(s)
		run(b, s)
	})
	b.Run("minimum/slab", func(b *testing.B) {
		run(b, NewMinimum(n, opts(22)))
	})
	b.Run("minimum/scattered", func(b *testing.B) {
		s := NewMinimum(n, opts(22))
		scatterMinimum(s)
		run(b, s)
	})
}

var sinkEstimate float64
