package streaming

import (
	"errors"
	"maps"
	"slices"

	"mcf0/internal/bitvec"
	"mcf0/internal/hash"
	"mcf0/internal/par"
)

// ErrIncompatibleSketch is returned by Merge when the two sketches cannot
// be combined: different types, dimensions, copy counts — or different
// hash draws, which would make the merged state meaningless (the sketches
// would be answering about different random projections of the stream).
var ErrIncompatibleSketch = errors.New("streaming: sketches are not mergeable (mismatched type, shape, or hash draws)")

// Sketch is an Estimator that also supports in-memory combination. For
// two sketches built from the same hash draws (same-seed construction or
// Clone), Merge folds other's state into the receiver so that the result
// is bit-identical to one sketch having ingested both element streams
// interleaved in any order: every sketch here is an idempotent,
// order-insensitive function of the element *set*, so merged(A) ∪
// merged(B) determines the state regardless of how the elements were
// partitioned. Merge never mutates other.
//
// Clone returns a deep copy sharing the (immutable) hash functions, which
// is exactly the shared-draw precondition Merge requires; ingestion into
// the clone never disturbs the original.
type Sketch interface {
	Estimator
	Clone() Sketch
	Merge(other Sketch) error
}

// Static interface-compliance checks for every sketch in the package.
var (
	_ Sketch = (*Bucketing)(nil)
	_ Sketch = (*Minimum)(nil)
	_ Sketch = (*Estimation)(nil)
	_ Sketch = (*FlajoletMartin)(nil)
	_ Sketch = (*ExactDistinct)(nil)
)

// sameLinear reports whether two linear hashes are the same draw, by
// pointer (the Clone fast path) or by structural equality of Ax+b.
func sameLinear(a, b *hash.Linear) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.A.Rows() != b.A.Rows() || a.A.Cols() != b.A.Cols() || !a.B.Equal(b.B) {
		return false
	}
	for i := 0; i < a.A.Rows(); i++ {
		if !a.A.Row(i).Equal(b.A.Row(i)) {
			return false
		}
	}
	return true
}

// sameFunc reports whether two hash draws are identical: pointer equality
// (clones share draws), else structural comparison for the linear and
// polynomial families.
func sameFunc(a, b hash.Func) bool {
	if a == b {
		return true
	}
	if la, ok := a.(*hash.Linear); ok {
		lb, ok := b.(*hash.Linear)
		return ok && sameLinear(la, lb)
	}
	ca, oka := hash.PolyCoefficients(a)
	cb, okb := hash.PolyCoefficients(b)
	return oka && okb && slices.Equal(ca, cb)
}

// Clone returns a deep copy sharing hash draws, with its own slab.
func (b *Bucketing) Clone() Sketch {
	out := &Bucketing{thresh: b.thresh, n: b.n, eng: b.eng}
	slots := b.thresh + 1
	rows := bitvec.NewSlab(b.n, len(b.copies)*slots)
	for i, c := range b.copies {
		nc := &bucketCopy{
			h:       c.h, // immutable: sharing it is the mergeability precondition
			level:   c.level,
			idx:     maps.Clone(c.idx),
			rows:    rows[i*slots : (i+1)*slots],
			keys:    slices.Clone(c.keys),
			occ:     slices.Clone(c.occ),
			free:    slices.Clone(c.free),
			scratch: bitvec.New(b.n),
		}
		for s, on := range c.occ {
			if on {
				nc.rows[s].CopyFrom(c.rows[s])
			}
		}
		out.copies = append(out.copies, nc)
	}
	return out
}

// Merge folds other's cells into b (set union per copy, re-filtered at
// the maximum of the two levels, overflowing as usual). The result is
// bit-identical to b having also ingested other's elements.
func (b *Bucketing) Merge(other Sketch) error {
	o, ok := other.(*Bucketing)
	if !ok || o.thresh != b.thresh || o.n != b.n || len(o.copies) != len(b.copies) {
		return ErrIncompatibleSketch
	}
	for i := range b.copies {
		if !sameLinear(b.copies[i].h, o.copies[i].h) {
			return ErrIncompatibleSketch
		}
	}
	for i := range b.copies {
		b.copies[i].merge(o.copies[i], b.thresh)
	}
	return nil
}

func (c *bucketCopy) merge(o *bucketCopy, thresh int) {
	if o.level > c.level {
		c.setLevel(o.level)
	}
	for s, on := range o.occ {
		if !on {
			continue
		}
		if _, dup := c.idx[o.keys[s]]; dup {
			continue
		}
		c.insert(o.keys[s], o.rows[s], thresh)
	}
}

// Clone returns a deep copy sharing hash draws, with its own slab.
func (m *Minimum) Clone() Sketch {
	out := &Minimum{thresh: m.thresh, n: m.n, eng: m.eng}
	store := bitvec.NewSlab(3*m.n, len(m.copies)*m.thresh)
	for i, c := range m.copies {
		nc := &minCopy{
			h:       c.h,
			store:   store[i*m.thresh : (i+1)*m.thresh],
			scratch: bitvec.New(3 * m.n),
		}
		// Copy minima in rank order: the clone's vals is the identity
		// permutation of its first len(vals) store rows.
		for j, v := range c.vals {
			nc.store[j].CopyFrom(v)
			nc.vals = append(nc.vals, nc.store[j])
		}
		out.copies = append(out.copies, nc)
	}
	return out
}

// Merge folds other's minima into m: per copy, the sorted streams of
// distinct hash values merge and the smallest Thresh survive — exactly
// the state one sketch ingesting both streams would hold.
func (m *Minimum) Merge(other Sketch) error {
	o, ok := other.(*Minimum)
	if !ok || o.thresh != m.thresh || o.n != m.n || len(o.copies) != len(m.copies) {
		return ErrIncompatibleSketch
	}
	for i := range m.copies {
		if !sameLinear(m.copies[i].h, o.copies[i].h) {
			return ErrIncompatibleSketch
		}
	}
	if m.mergeTmp == nil {
		m.mergeTmp = bitvec.NewSlab(3*m.n, m.thresh)
	}
	for i := range m.copies {
		m.copies[i].merge(o.copies[i], m.thresh, m.mergeTmp)
	}
	return nil
}

// merge performs a two-pointer sorted merge with dedup of both vals lists
// into tmp (rank order), truncated at thresh, then rewrites the copy's
// store so vals is again the identity permutation of its prefix.
func (c *minCopy) merge(o *minCopy, thresh int, tmp []bitvec.BitVec) {
	k, i, j := 0, 0, 0
	for k < thresh && (i < len(c.vals) || j < len(o.vals)) {
		var src bitvec.BitVec
		switch {
		case i >= len(c.vals):
			src, j = o.vals[j], j+1
		case j >= len(o.vals):
			src, i = c.vals[i], i+1
		case c.vals[i].Less(o.vals[j]):
			src, i = c.vals[i], i+1
		case o.vals[j].Less(c.vals[i]):
			src, j = o.vals[j], j+1
		default: // equal hash value in both: keep one
			src, i, j = c.vals[i], i+1, j+1
		}
		tmp[k].CopyFrom(src)
		k++
	}
	c.vals = c.vals[:0]
	for r := 0; r < k; r++ {
		c.store[r].CopyFrom(tmp[r])
		c.vals = append(c.vals, c.store[r])
	}
}

// Clone returns a deep copy sharing the hash grid, with its own
// trailing-zero slab and FM tracker.
func (e *Estimation) Clone() Sketch {
	return &Estimation{
		thresh:  e.thresh,
		n:       e.n,
		hs:      e.hs,  // immutable grid of draws, shared
		u64:     e.u64, // ditto (integer mirror)
		s:       slices.Clone(e.s),
		fm:      e.fm.Clone().(*FlajoletMartin),
		eng:     e.eng,
		scratch: par.ShardScratch(e.eng.workers, func() bitvec.BitVec { return bitvec.New(e.n) }),
	}
}

// Merge takes the pointwise maximum of the trailing-zero grids (the max
// over a union of streams is the max of the per-stream maxima) and merges
// the parallel FM trackers.
func (e *Estimation) Merge(other Sketch) error {
	o, ok := other.(*Estimation)
	if !ok || o.thresh != e.thresh || o.n != e.n || len(o.hs) != len(e.hs) {
		return ErrIncompatibleSketch
	}
	for i := range e.hs {
		if len(o.hs[i]) != len(e.hs[i]) {
			return ErrIncompatibleSketch
		}
		for j := range e.hs[i] {
			if !sameFunc(e.hs[i][j], o.hs[i][j]) {
				return ErrIncompatibleSketch
			}
		}
	}
	if err := e.fm.Merge(o.fm); err != nil {
		return err
	}
	for i, v := range o.s {
		if v > e.s[i] {
			e.s[i] = v
		}
	}
	return nil
}

// Clone returns a deep copy sharing hash draws.
func (f *FlajoletMartin) Clone() Sketch {
	n := 0
	if len(f.hs) > 0 {
		n = f.hs[0].OutBits()
	}
	return &FlajoletMartin{
		hs:      f.hs,
		u64:     f.u64,
		max:     slices.Clone(f.max),
		eng:     f.eng,
		scratch: par.ShardScratch(f.eng.workers, func() bitvec.BitVec { return bitvec.New(n) }),
	}
}

// Merge takes the pointwise maximum of the per-copy counters.
func (f *FlajoletMartin) Merge(other Sketch) error {
	o, ok := other.(*FlajoletMartin)
	if !ok || len(o.hs) != len(f.hs) {
		return ErrIncompatibleSketch
	}
	for i := range f.hs {
		if !sameLinear(f.hs[i], o.hs[i]) {
			return ErrIncompatibleSketch
		}
	}
	for i, v := range o.max {
		if v > f.max[i] {
			f.max[i] = v
		}
	}
	return nil
}

// Clone returns a deep copy of the exact set.
func (e *ExactDistinct) Clone() Sketch {
	return &ExactDistinct{seen: maps.Clone(e.seen), n: e.n}
}

// Merge unions the exact sets.
func (e *ExactDistinct) Merge(other Sketch) error {
	o, ok := other.(*ExactDistinct)
	if !ok || o.n != e.n {
		return ErrIncompatibleSketch
	}
	for k := range o.seen {
		e.seen[k] = struct{}{}
	}
	return nil
}
