package streaming

import (
	"runtime"
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/stats"
)

// dupStream builds a stream over an n-bit universe with heavy duplication
// (so the batch paths exercise the already-present/eviction branches).
func dupStream(n, length int, rng *stats.RNG) []bitvec.BitVec {
	out := make([]bitvec.BitVec, length)
	for i := range out {
		out[i] = bitvec.FromUint64(rng.Uint64n(1<<14), n)
	}
	return out
}

// feedChunks splits the stream into uneven chunks straddling the engine's
// serial/parallel gate (sizes below and above minBatchCheap) and feeds
// them through ProcessBatch.
func feedChunks(e Estimator, xs []bitvec.BitVec) {
	sizes := []int{1, 3, 8, 2, 64, 5, 256}
	for i, lo := 0, 0; lo < len(xs); i++ {
		hi := lo + sizes[i%len(sizes)]
		if hi > len(xs) {
			hi = len(xs)
		}
		e.ProcessBatch(xs[lo:hi])
		lo = hi
	}
}

func requireBucketingEqual(t *testing.T, a, b *Bucketing) {
	t.Helper()
	if len(a.copies) != len(b.copies) {
		t.Fatalf("copy counts %d != %d", len(a.copies), len(b.copies))
	}
	for i := range a.copies {
		ca, cb := a.copies[i], b.copies[i]
		if ca.level != cb.level {
			t.Fatalf("copy %d: level %d != %d", i, ca.level, cb.level)
		}
		if len(ca.idx) != len(cb.idx) {
			t.Fatalf("copy %d: cell sizes %d != %d", i, len(ca.idx), len(cb.idx))
		}
		// Cells are sets keyed by fingerprint; slot assignment is layout,
		// not state, so compare contents through the index.
		for k, sa := range ca.idx {
			sb, ok := cb.idx[k]
			if !ok || !ca.rows[sa].Equal(cb.rows[sb]) {
				t.Fatalf("copy %d: cell contents diverge at key %v", i, k)
			}
		}
	}
}

func requireMinimumEqual(t *testing.T, a, b *Minimum) {
	t.Helper()
	if len(a.copies) != len(b.copies) {
		t.Fatalf("copy counts %d != %d", len(a.copies), len(b.copies))
	}
	for i := range a.copies {
		ca, cb := a.copies[i], b.copies[i]
		if len(ca.vals) != len(cb.vals) {
			t.Fatalf("copy %d: %d vs %d minima", i, len(ca.vals), len(cb.vals))
		}
		for j := range ca.vals {
			if !ca.vals[j].Equal(cb.vals[j]) {
				t.Fatalf("copy %d: minima diverge at rank %d", i, j)
			}
		}
	}
}

func requireEstimationEqual(t *testing.T, a, b *Estimation) {
	t.Helper()
	if len(a.s) != len(b.s) || a.thresh != b.thresh {
		t.Fatalf("grid shapes (%d, %d) != (%d, %d)", len(a.s), a.thresh, len(b.s), b.thresh)
	}
	for i := range a.s {
		if a.s[i] != b.s[i] {
			t.Fatalf("grid diverges at (%d, %d): %d != %d",
				i/a.thresh, i%a.thresh, a.s[i], b.s[i])
		}
	}
	requireFMEqual(t, a.fm, b.fm)
}

func requireFMEqual(t *testing.T, a, b *FlajoletMartin) {
	t.Helper()
	if len(a.max) != len(b.max) {
		t.Fatalf("copy counts %d != %d", len(a.max), len(b.max))
	}
	for i := range a.max {
		if a.max[i] != b.max[i] {
			t.Fatalf("copy %d: max trailing zeros %d != %d", i, a.max[i], b.max[i])
		}
	}
}

// Batch-vs-single differential: ProcessBatch over a random stream must
// leave every sketch copy in exactly the state element-at-a-time Process
// produces, at every parallelism level.
func TestBatchVsSingleDifferential(t *testing.T) {
	n := 32
	stream := dupStream(n, 1500, stats.NewRNG(0xba7c4))
	for _, par := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		opts := Options{Epsilon: 0.8, Delta: 0.2, Thresh: 12, Iterations: 7,
			RNG: stats.NewRNG(77), Parallelism: par}
		estOpts := opts
		estOpts.Thresh = 8
		estOpts.Iterations = 3
		estOpts.RNG = stats.NewRNG(77)

		single := NewBucketing(n, Options{Epsilon: 0.8, Delta: 0.2, Thresh: 12, Iterations: 7,
			RNG: stats.NewRNG(77), Parallelism: 1})
		batch := NewBucketing(n, opts)
		for _, x := range stream {
			single.Process(x)
		}
		feedChunks(batch, stream)
		requireBucketingEqual(t, single, batch)
		if single.Estimate() != batch.Estimate() {
			t.Fatalf("par=%d: bucketing estimates diverge", par)
		}

		mSingle := NewMinimum(n, Options{Epsilon: 0.8, Delta: 0.2, Thresh: 12, Iterations: 7,
			RNG: stats.NewRNG(78), Parallelism: 1})
		mOpts := opts
		mOpts.RNG = stats.NewRNG(78)
		mBatch := NewMinimum(n, mOpts)
		for _, x := range stream {
			mSingle.Process(x)
		}
		feedChunks(mBatch, stream)
		requireMinimumEqual(t, mSingle, mBatch)
		if mSingle.Estimate() != mBatch.Estimate() {
			t.Fatalf("par=%d: minimum estimates diverge", par)
		}

		eSingle := NewEstimation(n, Options{Epsilon: 0.8, Delta: 0.2, Thresh: 8, Iterations: 3,
			RNG: stats.NewRNG(77), Parallelism: 1})
		eBatch := NewEstimation(n, estOpts)
		for _, x := range stream {
			eSingle.Process(x)
		}
		feedChunks(eBatch, stream)
		requireEstimationEqual(t, eSingle, eBatch)
		if eSingle.Estimate() != eBatch.Estimate() {
			t.Fatalf("par=%d: estimation estimates diverge", par)
		}

		fSingle := NewFlajoletMartin(n, Options{Iterations: 7, RNG: stats.NewRNG(79), Parallelism: 1})
		fOpts := opts
		fOpts.RNG = stats.NewRNG(79)
		fBatch := NewFlajoletMartin(n, fOpts)
		for _, x := range stream {
			fSingle.Process(x)
		}
		feedChunks(fBatch, stream)
		requireFMEqual(t, fSingle, fBatch)

		xSingle := NewExactDistinct(n)
		xBatch := NewExactDistinct(n)
		for _, x := range stream {
			xSingle.Process(x)
		}
		feedChunks(xBatch, stream)
		if xSingle.Count() != xBatch.Count() {
			t.Fatalf("par=%d: exact counts diverge", par)
		}
	}
}

// Parallel-determinism matrix: fixed-seed estimates must be bit-identical
// across Parallelism ∈ {1, 2, GOMAXPROCS} (and an explicit 4 in case
// GOMAXPROCS is small), for both single-element and batched ingestion.
func TestStreamingParallelDeterminism(t *testing.T) {
	n := 32
	stream := dupStream(n, 1200, stats.NewRNG(0xdecaf))
	type result struct{ bucketing, minimum, estimation float64 }
	run := func(par int) result {
		mk := func(seed uint64) Options {
			return Options{Epsilon: 0.8, Delta: 0.2, Thresh: 12, Iterations: 7,
				RNG: stats.NewRNG(seed), Parallelism: par}
		}
		b := NewBucketing(n, mk(41))
		m := NewMinimum(n, mk(42))
		eo := mk(43)
		eo.Thresh = 8
		eo.Iterations = 3
		e := NewEstimation(n, eo)
		for lo := 0; lo < len(stream); lo += 200 {
			hi := lo + 200
			if hi > len(stream) {
				hi = len(stream)
			}
			b.ProcessBatch(stream[lo:hi])
			m.ProcessBatch(stream[lo:hi])
			e.ProcessBatch(stream[lo:hi])
		}
		return result{b.Estimate(), m.Estimate(), e.Estimate()}
	}
	want := run(1)
	for _, par := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		if got := run(par); got != want {
			t.Fatalf("parallelism %d: %+v != serial %+v", par, got, want)
		}
	}
}
