package streaming

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"mcf0/internal/bitvec"
	"mcf0/internal/par"
)

// Concurrent is a lock-free-ingestion front over any mergeable Sketch:
// P replicas cloned from one seed (so all replicas share hash draws),
// each padded onto its own cache lines. Process and ProcessBatch may be
// called from any number of goroutines concurrently — a caller claims
// whichever replica it can TryLock first, so ingestion never serialises
// on a shared lock. Estimate locks all replicas, merges their states into
// a scratch clone, and caches the answer until the next write.
//
// Because every sketch in this package is an idempotent, order-
// insensitive function of the element set and the replicas share draws,
// the merged state — and therefore the estimate — does not depend on
// which replica absorbed which element: fixed-seed estimates are
// bit-identical to a single serial sketch at every replica count.
//
// Estimate, Process, and ProcessBatch are all safe to interleave freely;
// SketchWords reports the summed replica footprint.
type Concurrent struct {
	replicas []replica
	// rr distributes writers across replicas: each acquisition starts its
	// TryLock rotation at a different replica.
	rr atomic.Uint64
	// version counts completed writes; it is bumped *before* the replica
	// lock releases, so once Estimate holds every lock the version it
	// reads covers exactly the writes its merge will see. In-flight
	// writers are still blocked and bump it later, invalidating the cache.
	version atomic.Uint64

	estMu    sync.Mutex
	cached   float64
	cachedV  uint64
	hasCache bool
}

// replicaState is the payload of one replica slot: its lock and sketch.
type replicaState struct {
	mu sync.Mutex
	sk Sketch
}

// replicaSpan is the stride replicas are padded to: two cache lines, so
// writers hammering neighbouring replicas never false-share (the spatial
// prefetcher pairs adjacent 64-byte lines).
const replicaSpan = 128

// replica pads each sketch's state onto its own cache lines. The pad is
// computed from the real field layout — unsafe.Sizeof is a compile-time
// constant — so it stays correct across pointer widths and future field
// changes instead of hard-coding the 64-bit layout's 24 bytes.
type replica struct {
	replicaState
	_ [(replicaSpan - unsafe.Sizeof(replicaState{})%replicaSpan) % replicaSpan]byte
}

// NewConcurrent wraps seed in a concurrent front with the given number of
// replicas (≤ 0 selects GOMAXPROCS). The seed is absorbed as replica 0 —
// callers must not touch it afterwards — and its current state is cloned
// into every other replica, which is harmless for the merged answer
// (idempotent set union) and preserves the shared hash draws Merge
// requires.
func NewConcurrent(seed Sketch, replicas int) *Concurrent {
	if replicas < 1 {
		replicas = par.Workers(0)
	}
	c := &Concurrent{replicas: make([]replica, replicas)}
	c.replicas[0].sk = seed
	for i := 1; i < replicas; i++ {
		c.replicas[i].sk = seed.Clone()
	}
	return c
}

// Replicas returns the replica count.
func (c *Concurrent) Replicas() int { return len(c.replicas) }

// Version returns the number of completed writes (Process or ProcessBatch
// calls) absorbed so far. Estimate's internal cache is keyed on this
// counter, so two Version calls returning the same value bracket a window
// in which estimates are served from cache; callers layering their own
// caches (e.g. a network service) can key them the same way.
func (c *Concurrent) Version() uint64 { return c.version.Load() }

// acquire claims a replica without ever blocking on a contended lock
// while any replica is free: it rotates TryLock attempts starting from a
// round-robin position and only yields the scheduler after a full idle
// cycle (every replica busy).
func (c *Concurrent) acquire() *replica {
	start := c.rr.Add(1)
	n := uint64(len(c.replicas))
	for {
		for k := uint64(0); k < n; k++ {
			r := &c.replicas[(start+k)%n]
			if r.mu.TryLock() {
				return r
			}
		}
		runtime.Gosched()
	}
}

// release publishes a completed write (invalidating the estimate cache)
// and frees the replica.
func (c *Concurrent) release(r *replica) {
	c.version.Add(1)
	r.mu.Unlock()
}

// Process absorbs one element into whichever replica is free.
func (c *Concurrent) Process(x bitvec.BitVec) {
	r := c.acquire()
	r.sk.Process(x)
	c.release(r)
}

// ProcessBatch absorbs a chunk of elements into whichever replica is
// free; the whole chunk lands on one replica, amortising acquisition.
func (c *Concurrent) ProcessBatch(xs []bitvec.BitVec) {
	if len(xs) == 0 {
		return
	}
	r := c.acquire()
	r.sk.ProcessBatch(xs)
	c.release(r)
}

// Estimate merges the replicas and returns the combined estimate —
// bit-identical to a single sketch having ingested every element. The
// merged answer is cached and reused until the next completed write.
func (c *Concurrent) Estimate() float64 {
	c.estMu.Lock()
	defer c.estMu.Unlock()
	for i := range c.replicas {
		c.replicas[i].mu.Lock()
	}
	v := c.version.Load()
	if c.hasCache && v == c.cachedV {
		c.unlockAll()
		return c.cached
	}
	var est float64
	if len(c.replicas) == 1 {
		est = c.replicas[0].sk.Estimate()
		c.unlockAll()
	} else {
		merged := c.replicas[0].sk.Clone()
		for i := 1; i < len(c.replicas); i++ {
			if err := merged.Merge(c.replicas[i].sk); err != nil {
				// Replicas are clones of one seed; a mismatch means the
				// front's own invariant broke, not a caller error.
				c.unlockAll()
				panic("streaming: concurrent replicas diverged: " + err.Error())
			}
		}
		c.unlockAll()
		est = merged.Estimate()
	}
	c.cached, c.cachedV, c.hasCache = est, v, true
	return est
}

// MergedClone locks every replica and returns a deep copy of their merged
// state — the snapshot primitive: the returned sketch shares no mutable
// state with the front (only the immutable hash draws), so it can be
// marshaled or inspected while ingestion continues.
func (c *Concurrent) MergedClone() Sketch {
	c.estMu.Lock()
	defer c.estMu.Unlock()
	for i := range c.replicas {
		c.replicas[i].mu.Lock()
	}
	defer c.unlockAll()
	merged := c.replicas[0].sk.Clone()
	for i := 1; i < len(c.replicas); i++ {
		if err := merged.Merge(c.replicas[i].sk); err != nil {
			panic("streaming: concurrent replicas diverged: " + err.Error())
		}
	}
	return merged
}

func (c *Concurrent) unlockAll() {
	for i := range c.replicas {
		c.replicas[i].mu.Unlock()
	}
}

// SketchWords reports the summed footprint of all replicas.
func (c *Concurrent) SketchWords() int {
	total := 0
	for i := range c.replicas {
		r := &c.replicas[i]
		r.mu.Lock()
		total += r.sk.SketchWords()
		r.mu.Unlock()
	}
	return total
}

var _ Estimator = (*Concurrent)(nil)
