package streaming

import (
	"mcf0/internal/par"
)

// engine fans a sketch's independent per-copy work across a bounded worker
// pool via par.RunSharded. Every sketch in this package is t independent
// copies (own hash function, own mutable state, drawn serially at
// construction keyed by copy index), so the shard→copy assignment can
// never change results: fixed-seed estimates are bit-identical at every
// parallelism level.
//
// Dispatch costs more than a cheap sketch's per-copy work on a single
// element, so the engine only engages the pool when the element batch
// amortises it; below minElems the copies run serially on the caller's
// goroutine (the exact pre-engine code path).
type engine struct {
	workers int
	// minElems is the smallest element batch worth a pool dispatch.
	minElems int
}

// minBatchCheap gates the sketches whose per-copy per-element work is a
// single linear-hash evaluation (Bucketing, Minimum, Flajolet–Martin):
// ~0.1–0.3 µs of work per copy-element against ~1–2 µs of dispatch means
// only multi-element batches pay for fan-out.
const minBatchCheap = 8

// minBatchEstimation lets Estimation fan out on single elements: each copy
// does Thresh hash evaluations per element, already far above dispatch.
const minBatchEstimation = 1

func newEngine(parallelism, minElems int) engine {
	return engine{workers: par.Workers(parallelism), minElems: minElems}
}

// serial reports whether a batch of elems runs on the caller's goroutine.
// Callers use it to take an inline (closure-free, allocation-free) loop on
// the serial path and only build the fan-out closure when the pool will
// actually engage.
func (e engine) serial(elems int) bool { return e.workers <= 1 || elems < e.minElems }

// run fans fn(copy, shard) out across the pool; callers have already
// checked serial() and handled that case inline.
func (e engine) run(copies int, fn func(i, shard int)) {
	par.RunSharded(copies, e.workers, fn)
}
