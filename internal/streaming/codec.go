// Wire codec for the streaming sketches: versioned snapshot/restore of
// complete sketch state — hash draws, per-copy slab-backed state, and
// thresholds — so a sketch decoded on another node (or after a crash) is
// Merge-compatible with one built locally from the same seed, with the
// shared-draw precondition enforced structurally across the wire instead
// of by pointer identity.
//
// Every sketch kind is one top-level message (wire magic + kind byte +
// version byte; unknown kinds and versions are rejected with typed
// errors, never a panic). Payloads ride bitvec's flat storage: per-copy
// rows decode directly into freshly carved slab rows, so restore costs the
// same handful of allocations as Clone.
//
// Canonical form: encoding is deterministic (slab-order cells, rank-order
// minima, sorted exact sets), and decode re-packs state into the same
// canonical layout Clone produces — so encode(decode(encode(s))) ==
// encode(s), and a decoded sketch's estimates, merges, and subsequent
// ingestion are bit-identical to the original's (determinism invariant 6).
package streaming

import (
	"slices"

	"mcf0/internal/bitvec"
	"mcf0/internal/hash"
	"mcf0/internal/par"
	"mcf0/internal/wire"
)

// Codec versions, one per sketch kind; bump when a payload layout changes.
const (
	bucketingVersion      byte = 1
	minimumVersion        byte = 1
	estimationVersion     byte = 1
	flajoletMartinVersion byte = 1
	exactDistinctVersion  byte = 1
)

// Decode bounds: far beyond any real configuration, tight enough that a
// corrupt count can never size a pathological allocation.
const (
	maxSketchBits = 1 << 16 // universe width
	maxCopies     = 1 << 16 // t = 35·log2(1/δ)
	maxThresh     = 1 << 24 // Thresh = 96/ε²
	// maxSlabWords caps any single decoded slab (t·Thresh rows); legitimate
	// sketches sit around 2^14 words.
	maxSlabWords = 1 << 24
)

// SketchBits returns the universe width (element bits) of any sketch in
// this package, or 0 for foreign Sketch implementations. Wrapper layers
// use it to cross-check their own recorded width against a decoded
// sketch's.
func SketchBits(s Sketch) int {
	switch sk := s.(type) {
	case *Bucketing:
		return sk.n
	case *Minimum:
		return sk.n
	case *Estimation:
		return sk.n
	case *FlajoletMartin:
		if len(sk.hs) > 0 {
			return sk.hs[0].InBits()
		}
	case *ExactDistinct:
		return sk.n
	}
	return 0
}

// AppendSketch appends the framed wire form of any sketch in this package;
// ok is false for Sketch implementations outside it.
func AppendSketch(dst []byte, s Sketch) ([]byte, bool) {
	switch sk := s.(type) {
	case *Bucketing:
		return sk.appendBinary(dst), true
	case *Minimum:
		return sk.appendBinary(dst), true
	case *Estimation:
		return sk.appendBinary(dst), true
	case *FlajoletMartin:
		return sk.appendBinary(dst), true
	case *ExactDistinct:
		return sk.appendBinary(dst), true
	}
	return dst, false
}

// EncodeSketch returns the framed wire form of a sketch.
func EncodeSketch(s Sketch) ([]byte, bool) {
	return AppendSketch(nil, s)
}

// DecodeSketch decodes one framed sketch message, which must span data
// exactly. parallelism configures the restored sketch's worker pool as
// Options.Parallelism would (estimates are bit-identical at every level).
func DecodeSketch(data []byte, parallelism int) (Sketch, error) {
	r := wire.NewReader(data)
	s := DecodeSketchFrom(r, parallelism)
	if err := r.Close(); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeSketchFrom decodes one framed sketch message at the reader's
// position, dispatching on the kind byte; failures land in the reader.
func DecodeSketchFrom(r *wire.Reader, parallelism int) Sketch {
	kind, err := r.PeekKind()
	if err != nil {
		r.Corrupt("sketch header unreadable")
		return nil
	}
	var s Sketch
	switch kind {
	case wire.KindBucketing:
		s = decodeBucketing(r, parallelism)
	case wire.KindMinimum:
		s = decodeMinimum(r, parallelism)
	case wire.KindEstimation:
		s = decodeEstimation(r, parallelism)
	case wire.KindFlajoletMartin:
		s = decodeFlajoletMartin(r, parallelism)
	case wire.KindExactDistinct:
		s = decodeExactDistinct(r)
	default:
		r.Corrupt("unknown sketch kind %#02x", kind)
		return nil
	}
	if r.Err() != nil {
		return nil
	}
	return s
}

// slabRows validates a rows×wordsPerRow slab shape against maxSlabWords
// before anything is allocated.
func slabRows(r *wire.Reader, rows, bitsPerRow int) bool {
	words := uint64(rows) * uint64((bitsPerRow+63)/64)
	if words > maxSlabWords {
		r.Corrupt("slab of %d %d-bit rows exceeds decode bound", rows, bitsPerRow)
		return false
	}
	return true
}

// ---- Bucketing ----

// appendBinary emits n, thresh, t, then per copy the hash draw, the
// sampling level, and the occupied cells in slab-slot order as
// (fingerprint, hash-value-row) pairs.
func (b *Bucketing) appendBinary(dst []byte) []byte {
	dst = wire.AppendHeader(dst, wire.KindBucketing, bucketingVersion)
	dst = wire.AppendInt(dst, b.n)
	dst = wire.AppendInt(dst, b.thresh)
	dst = wire.AppendInt(dst, len(b.copies))
	for _, c := range b.copies {
		dst, _ = hash.AppendFunc(dst, c.h)
		dst = wire.AppendInt(dst, c.level)
		dst = wire.AppendInt(dst, len(c.idx))
		for s, on := range c.occ {
			if !on {
				continue
			}
			lo, hi, _ := c.keys[s].Raw()
			dst = wire.AppendUint64(dst, lo)
			dst = wire.AppendUint64(dst, hi)
			dst = wire.AppendBitVec(dst, c.rows[s])
		}
	}
	return dst
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (b *Bucketing) MarshalBinary() ([]byte, error) { return b.appendBinary(nil), nil }

func decodeBucketing(r *wire.Reader, parallelism int) *Bucketing {
	v := r.Header(wire.KindBucketing)
	if !r.CheckVersion(wire.KindBucketing, v, bucketingVersion) {
		return nil
	}
	n := r.Int(maxSketchBits)
	thresh := r.Int(maxThresh)
	t := r.Int(maxCopies)
	if r.Err() != nil {
		return nil
	}
	if n < 1 || thresh < 1 || t < 1 {
		r.Corrupt("bucketing shape n=%d thresh=%d t=%d", n, thresh, t)
		return nil
	}
	slots := thresh + 1
	if !slabRows(r, t*slots, n) {
		return nil
	}
	b := &Bucketing{thresh: thresh, n: n, eng: newEngine(parallelism, minBatchCheap)}
	rows := bitvec.NewSlab(n, t*slots)
	for i := 0; i < t; i++ {
		h := hash.DecodeLinear(r)
		level := r.Int(n)
		cnt := r.Int(thresh)
		if r.Err() != nil {
			return nil
		}
		if h.InBits() != n || h.OutBits() != n {
			r.Corrupt("bucketing copy %d hash is %d->%d bits, want %d->%d",
				i, h.InBits(), h.OutBits(), n, n)
			return nil
		}
		c := newBucketCopy(h, rows[i*slots:(i+1)*slots], n)
		c.level = level
		// Re-pack the cells into slots 0..cnt−1 — the canonical layout a
		// fresh copy ingesting the same set would hold; slot placement is
		// invisible to estimates and merges.
		for s := 0; s < cnt; s++ {
			key := bitvec.RawFingerprint(r.Uint64(), r.Uint64(), n)
			r.BitVecInto(c.rows[s])
			if r.Err() != nil {
				return nil
			}
			if _, dup := c.idx[key]; dup {
				r.Corrupt("bucketing copy %d has duplicate cell fingerprints", i)
				return nil
			}
			if !c.rows[s].HasZeroPrefix(level) {
				r.Corrupt("bucketing copy %d cell escapes its sampling level", i)
				return nil
			}
			c.keys[s] = key
			c.occ[s] = true
			c.idx[key] = int32(s)
		}
		c.free = c.free[:0]
		for s := slots - 1; s >= cnt; s-- {
			c.free = append(c.free, int32(s))
		}
		b.copies = append(b.copies, c)
	}
	return b
}

// ---- Minimum ----

// appendBinary emits n, thresh, t, then per copy the hash draw and the
// retained minima in rank order.
func (m *Minimum) appendBinary(dst []byte) []byte {
	dst = wire.AppendHeader(dst, wire.KindMinimum, minimumVersion)
	dst = wire.AppendInt(dst, m.n)
	dst = wire.AppendInt(dst, m.thresh)
	dst = wire.AppendInt(dst, len(m.copies))
	for _, c := range m.copies {
		dst, _ = hash.AppendFunc(dst, c.h)
		dst = wire.AppendInt(dst, len(c.vals))
		for _, v := range c.vals {
			dst = wire.AppendBitVec(dst, v)
		}
	}
	return dst
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Minimum) MarshalBinary() ([]byte, error) { return m.appendBinary(nil), nil }

func decodeMinimum(r *wire.Reader, parallelism int) *Minimum {
	v := r.Header(wire.KindMinimum)
	if !r.CheckVersion(wire.KindMinimum, v, minimumVersion) {
		return nil
	}
	n := r.Int(maxSketchBits)
	thresh := r.Int(maxThresh)
	t := r.Int(maxCopies)
	if r.Err() != nil {
		return nil
	}
	if n < 1 || thresh < 1 || t < 1 {
		r.Corrupt("minimum shape n=%d thresh=%d t=%d", n, thresh, t)
		return nil
	}
	if !slabRows(r, t*thresh, 3*n) {
		return nil
	}
	m := &Minimum{thresh: thresh, n: n, eng: newEngine(parallelism, minBatchCheap)}
	store := bitvec.NewSlab(3*n, t*thresh)
	for i := 0; i < t; i++ {
		h := hash.DecodeLinear(r)
		cnt := r.Int(thresh)
		if r.Err() != nil {
			return nil
		}
		if h.InBits() != n || h.OutBits() != 3*n {
			r.Corrupt("minimum copy %d hash is %d->%d bits, want %d->%d",
				i, h.InBits(), h.OutBits(), n, 3*n)
			return nil
		}
		c := &minCopy{h: h, store: store[i*thresh : (i+1)*thresh], scratch: bitvec.New(3 * n)}
		for j := 0; j < cnt; j++ {
			r.BitVecInto(c.store[j])
			if r.Err() != nil {
				return nil
			}
			if j > 0 && !c.store[j-1].Less(c.store[j]) {
				r.Corrupt("minimum copy %d minima are not strictly ascending", i)
				return nil
			}
			c.vals = append(c.vals, c.store[j])
		}
		m.copies = append(m.copies, c)
	}
	return m
}

// ---- Estimation ----

// appendBinary emits n, thresh, t, the t×Thresh hash grid, the
// trailing-zero grid, and the parallel Flajolet–Martin tracker.
func (e *Estimation) appendBinary(dst []byte) []byte {
	dst = wire.AppendHeader(dst, wire.KindEstimation, estimationVersion)
	dst = wire.AppendInt(dst, e.n)
	dst = wire.AppendInt(dst, e.thresh)
	dst = wire.AppendInt(dst, len(e.hs))
	for _, row := range e.hs {
		for _, h := range row {
			dst, _ = hash.AppendFunc(dst, h)
		}
	}
	for _, v := range e.s {
		dst = wire.AppendInt(dst, v+1) // v ∈ [−1, n]
	}
	return e.fm.appendBody(dst)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (e *Estimation) MarshalBinary() ([]byte, error) { return e.appendBinary(nil), nil }

func decodeEstimation(r *wire.Reader, parallelism int) *Estimation {
	v := r.Header(wire.KindEstimation)
	if !r.CheckVersion(wire.KindEstimation, v, estimationVersion) {
		return nil
	}
	n := r.Int(64)
	thresh := r.Int(maxThresh)
	t := r.Int(maxCopies)
	if r.Err() != nil {
		return nil
	}
	if n < 1 || thresh < 1 || t < 1 {
		r.Corrupt("estimation shape n=%d thresh=%d t=%d", n, thresh, t)
		return nil
	}
	if uint64(t)*uint64(thresh) > maxSlabWords {
		r.Corrupt("estimation grid %dx%d exceeds decode bound", t, thresh)
		return nil
	}
	workers := par.Workers(parallelism)
	e := &Estimation{
		thresh:  thresh,
		n:       n,
		eng:     newEngine(parallelism, minBatchEstimation),
		scratch: par.ShardScratch(workers, func() bitvec.BitVec { return bitvec.New(n) }),
	}
	allU64 := true
	for i := 0; i < t; i++ {
		var row []hash.Func
		var urow []hash.Uint64Hash
		for j := 0; j < thresh; j++ {
			h := hash.DecodeFunc(r)
			if r.Err() != nil {
				return nil
			}
			if h.InBits() != n || h.OutBits() != n {
				r.Corrupt("estimation grid hash (%d,%d) is %d->%d bits, want %d->%d",
					i, j, h.InBits(), h.OutBits(), n, n)
				return nil
			}
			row = append(row, h)
			if u, ok := hash.AsUint64Hash(h); ok {
				urow = append(urow, u)
			} else {
				allU64 = false
			}
		}
		e.hs = append(e.hs, row)
		e.u64 = append(e.u64, urow)
	}
	if !allU64 {
		e.u64 = nil
	}
	e.s = make([]int, t*thresh)
	for i := range e.s {
		e.s[i] = r.Int(n+1) - 1
	}
	e.fm = decodeFMBody(r, parallelism)
	if r.Err() != nil {
		return nil
	}
	return e
}

// ---- FlajoletMartin ----

// appendBody emits the unframed tracker: t, then per copy the hash draw
// and the max-trailing-zero counter. The framed form (appendBinary) wraps
// it; Estimation nests the body under its own version.
func (f *FlajoletMartin) appendBody(dst []byte) []byte {
	dst = wire.AppendInt(dst, len(f.hs))
	for i, h := range f.hs {
		dst, _ = hash.AppendFunc(dst, h)
		dst = wire.AppendInt(dst, f.max[i]+1) // max ∈ [−1, OutBits]
	}
	return dst
}

func (f *FlajoletMartin) appendBinary(dst []byte) []byte {
	dst = wire.AppendHeader(dst, wire.KindFlajoletMartin, flajoletMartinVersion)
	return f.appendBody(dst)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (f *FlajoletMartin) MarshalBinary() ([]byte, error) { return f.appendBinary(nil), nil }

func decodeFMBody(r *wire.Reader, parallelism int) *FlajoletMartin {
	t := r.Int(maxCopies)
	if r.Err() != nil {
		return nil
	}
	if t < 1 {
		r.Corrupt("flajolet-martin tracker with no copies")
		return nil
	}
	f := &FlajoletMartin{eng: newEngine(parallelism, minBatchCheap)}
	n := 0
	allU64 := true
	for i := 0; i < t; i++ {
		h := hash.DecodeLinear(r)
		if r.Err() != nil {
			return nil
		}
		if i == 0 {
			n = h.OutBits()
		} else if h.InBits() != f.hs[0].InBits() || h.OutBits() != n {
			r.Corrupt("flajolet-martin copy %d dimensions disagree with copy 0", i)
			return nil
		}
		maxTZ := r.Int(n+1) - 1
		if r.Err() != nil {
			return nil
		}
		f.hs = append(f.hs, h)
		f.max = append(f.max, maxTZ)
		if u, ok := hash.AsUint64Hash(h); ok {
			f.u64 = append(f.u64, u)
		} else {
			allU64 = false
		}
	}
	if !allU64 {
		f.u64 = nil
	}
	f.scratch = par.ShardScratch(par.Workers(parallelism), func() bitvec.BitVec { return bitvec.New(n) })
	return f
}

func decodeFlajoletMartin(r *wire.Reader, parallelism int) *FlajoletMartin {
	v := r.Header(wire.KindFlajoletMartin)
	if !r.CheckVersion(wire.KindFlajoletMartin, v, flajoletMartinVersion) {
		return nil
	}
	return decodeFMBody(r, parallelism)
}

// ---- ExactDistinct ----

// appendBinary emits n, then the element fingerprints sorted by digest —
// the canonical order (map iteration is randomized; the wire form must
// not be).
func (e *ExactDistinct) appendBinary(dst []byte) []byte {
	dst = wire.AppendHeader(dst, wire.KindExactDistinct, exactDistinctVersion)
	dst = wire.AppendInt(dst, e.n)
	dst = wire.AppendInt(dst, len(e.seen))
	type fp struct{ lo, hi uint64 }
	fps := make([]fp, 0, len(e.seen))
	for k := range e.seen {
		lo, hi, _ := k.Raw()
		fps = append(fps, fp{lo, hi})
	}
	slices.SortFunc(fps, func(a, b fp) int {
		if a.lo != b.lo {
			if a.lo < b.lo {
				return -1
			}
			return 1
		}
		if a.hi != b.hi {
			if a.hi < b.hi {
				return -1
			}
			return 1
		}
		return 0
	})
	for _, k := range fps {
		dst = wire.AppendUint64(dst, k.lo)
		dst = wire.AppendUint64(dst, k.hi)
	}
	return dst
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (e *ExactDistinct) MarshalBinary() ([]byte, error) { return e.appendBinary(nil), nil }

func decodeExactDistinct(r *wire.Reader) *ExactDistinct {
	v := r.Header(wire.KindExactDistinct)
	if !r.CheckVersion(wire.KindExactDistinct, v, exactDistinctVersion) {
		return nil
	}
	n := r.Int(maxSketchBits)
	cnt := r.Int(r.Remaining() / 16)
	if r.Err() != nil {
		return nil
	}
	if n < 1 {
		r.Corrupt("exact-distinct sketch over empty universe")
		return nil
	}
	e := &ExactDistinct{seen: make(map[bitvec.Fingerprint]struct{}, cnt), n: n}
	for i := 0; i < cnt; i++ {
		e.seen[bitvec.RawFingerprint(r.Uint64(), r.Uint64(), n)] = struct{}{}
	}
	if r.Err() != nil {
		return nil
	}
	if len(e.seen) != cnt {
		r.Corrupt("exact-distinct set has duplicate fingerprints")
		return nil
	}
	return e
}
