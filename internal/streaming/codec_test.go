package streaming

import (
	"bytes"
	"errors"
	"testing"

	"mcf0/internal/stats"
	"mcf0/internal/wire"
)

// codecSketches builds one ingested instance of every sketch kind with
// same-seed options, plus a factory for fresh same-draw siblings.
func codecSketches(n, par int) (map[string]Sketch, func() map[string]Sketch) {
	build := func() map[string]Sketch {
		return map[string]Sketch{
			"bucketing": NewBucketing(n, mergeOpts(71, par)),
			"minimum":   NewMinimum(n, mergeOpts(72, par)),
			"estimation": NewEstimation(n, Options{Epsilon: 0.8, Delta: 0.2,
				Thresh: 8, Iterations: 3, RNG: stats.NewRNG(73), Parallelism: par}),
			"flajolet-martin": NewFlajoletMartin(n, mergeOpts(74, par)),
			"exact":           NewExactDistinct(n),
		}
	}
	return build(), build
}

// Codec round-trip determinism (invariant 6): decode(encode(s)) is
// state-identical to s — same estimate, same canonical re-encoding, and
// bit-identical behaviour under further ingestion.
func TestCodecRoundTripDeterminism(t *testing.T) {
	n := 32
	stream := dupStream(n, 1400, stats.NewRNG(0xc0dec))
	more := dupStream(n, 600, stats.NewRNG(0xc0de))
	for _, par := range []int{1, 4} {
		sketches, _ := codecSketches(n, par)
		for name, s := range sketches {
			feedChunks(s, stream)
			blob, ok := EncodeSketch(s)
			if !ok {
				t.Fatalf("par=%d %s: EncodeSketch refused", par, name)
			}
			dec, err := DecodeSketch(blob, par)
			if err != nil {
				t.Fatalf("par=%d %s: decode: %v", par, name, err)
			}
			if got, want := dec.Estimate(), s.Estimate(); got != want {
				t.Fatalf("par=%d %s: decoded estimate %v != %v", par, name, got, want)
			}
			if got, want := dec.SketchWords(), s.SketchWords(); got != want {
				t.Fatalf("par=%d %s: decoded sketch words %d != %d", par, name, got, want)
			}
			reblob, _ := EncodeSketch(dec)
			if !bytes.Equal(blob, reblob) {
				t.Fatalf("par=%d %s: encode(decode(encode)) is not canonical", par, name)
			}
			// Decoded sketches keep ingesting identically to the original.
			feedChunks(s, more)
			feedChunks(dec, more)
			if got, want := dec.Estimate(), s.Estimate(); got != want {
				t.Fatalf("par=%d %s: post-ingest estimate %v != %v", par, name, got, want)
			}
		}
	}
}

// Cross-wire merge differential: marshal→unmarshal→Merge must produce the
// exact state (and estimate) of (a) an in-process Merge of the live halves
// and (b) one sketch ingesting the concatenated stream.
func TestCodecMergeVsSingleDifferential(t *testing.T) {
	n := 32
	stream := dupStream(n, 1600, stats.NewRNG(0x3e63e))
	half := len(stream) / 2
	sketches, fresh := codecSketches(n, 2)
	whole, live, remote := sketches, fresh(), fresh()
	for name := range sketches {
		feedChunks(whole[name], stream)
		feedChunks(live[name], stream[:half])
		feedChunks(remote[name], stream[half:])

		blob, _ := EncodeSketch(remote[name])
		dec, err := DecodeSketch(blob, 2)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		// In-process control: clone the live left half, merge the live right.
		ctl := live[name].Clone()
		if err := ctl.Merge(remote[name]); err != nil {
			t.Fatalf("%s: live merge: %v", name, err)
		}
		if err := live[name].Merge(dec); err != nil {
			t.Fatalf("%s: merge of decoded sketch: %v", name, err)
		}
		if a, b, c := live[name].Estimate(), ctl.Estimate(), whole[name].Estimate(); a != b || a != c {
			t.Fatalf("%s: estimates diverge: wire-merge %v, live-merge %v, single %v",
				name, a, b, c)
		}
	}
	requireBucketingEqual(t, whole["bucketing"].(*Bucketing), live["bucketing"].(*Bucketing))
	requireMinimumEqual(t, whole["minimum"].(*Minimum), live["minimum"].(*Minimum))
	requireEstimationEqual(t, whole["estimation"].(*Estimation), live["estimation"].(*Estimation))
	requireFMEqual(t, whole["flajolet-martin"].(*FlajoletMartin), live["flajolet-martin"].(*FlajoletMartin))
}

// Decoded sketches must still reject foreign draws: two sketches from
// different seeds stay incompatible across the wire.
func TestCodecMergeRejectsForeignDraws(t *testing.T) {
	n := 32
	a := NewBucketing(n, mergeOpts(81, 1))
	b := NewBucketing(n, mergeOpts(82, 1))
	blob, _ := EncodeSketch(b)
	dec, err := DecodeSketch(blob, 1)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := a.Merge(dec); !errors.Is(err, ErrIncompatibleSketch) {
		t.Fatalf("merge of foreign decoded sketch: got %v, want ErrIncompatibleSketch", err)
	}
}

// Corrupt-input taxonomy: wrong magic, unknown kind, future version,
// truncation at every prefix, and trailing garbage all yield typed errors.
func TestCodecDecodeErrors(t *testing.T) {
	n := 16
	s := NewMinimum(n, mergeOpts(91, 1))
	feedChunks(s, dupStream(n, 200, stats.NewRNG(0x91)))
	blob, _ := EncodeSketch(s)

	if _, err := DecodeSketch(nil, 1); err == nil {
		t.Fatal("empty input decoded")
	}
	bad := bytes.Clone(blob)
	bad[0] = 'X'
	if _, err := DecodeSketch(bad, 1); !errors.Is(err, wire.ErrCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrCorrupt", err)
	}
	bad = bytes.Clone(blob)
	bad[2] = 0xee
	if _, err := DecodeSketch(bad, 1); !errors.Is(err, wire.ErrCorrupt) {
		t.Fatalf("unknown kind: got %v, want ErrCorrupt", err)
	}
	bad = bytes.Clone(blob)
	bad[3] = minimumVersion + 1
	var verr *wire.VersionError
	if _, err := DecodeSketch(bad, 1); !errors.As(err, &verr) {
		t.Fatalf("future version: got %v, want VersionError", err)
	} else if verr.Kind != wire.KindMinimum || verr.Version != minimumVersion+1 {
		t.Fatalf("version error carries %+v", verr)
	}
	for cut := 0; cut < len(blob); cut += 7 {
		if _, err := DecodeSketch(blob[:cut], 1); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	if _, err := DecodeSketch(append(bytes.Clone(blob), 0), 1); !errors.Is(err, wire.ErrCorrupt) {
		t.Fatalf("trailing byte: got %v, want ErrCorrupt", err)
	}
}

// FuzzUnmarshalSketch drives DecodeSketch with corrupt, truncated, and
// bit-flipped snapshots: it must return typed errors, never panic, and any
// accepted input must re-encode canonically and answer Estimate.
func FuzzUnmarshalSketch(f *testing.F) {
	n := 16
	stream := dupStream(n, 120, stats.NewRNG(0xf022))
	sketches, _ := codecSketches(n, 1)
	for _, s := range sketches {
		feedChunks(s, stream)
		blob, _ := EncodeSketch(s)
		f.Add(blob)
		f.Add(blob[:len(blob)/2])
	}
	f.Add([]byte{})
	f.Add([]byte{'F', '0', wire.KindBucketing, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSketch(data, 1)
		if err != nil {
			if s != nil {
				t.Fatal("error with non-nil sketch")
			}
			return
		}
		// Accepted input: the sketch must be fully functional and its wire
		// form canonical.
		_ = s.Estimate()
		reblob, ok := EncodeSketch(s)
		if !ok {
			t.Fatal("decoded sketch refuses to re-encode")
		}
		dec2, err := DecodeSketch(reblob, 1)
		if err != nil {
			t.Fatalf("re-encoded snapshot rejected: %v", err)
		}
		if dec2.Estimate() != s.Estimate() {
			t.Fatal("re-decoded estimate diverges")
		}
	})
}
