package setstream

import (
	"bytes"
	"errors"
	"testing"

	"mcf0/internal/formula"
	"mcf0/internal/stats"
	"mcf0/internal/wire"
)

// codecDNFItems builds a deterministic DNF item stream.
func codecDNFItems(n, count int, seed uint64) []*formula.DNF {
	rng := stats.NewRNG(seed)
	items := make([]*formula.DNF, count)
	for i := range items {
		items[i] = formula.RandomDNF(n, 3, 4, rng)
	}
	return items
}

// Round-trip determinism for every stream kind: decode(encode(s)) carries
// the same estimate and sketch state, re-encodes canonically, and keeps
// ingesting bit-identically.
func TestStreamCodecRoundTrip(t *testing.T) {
	n := 12
	items := codecDNFItems(n, 10, 0x5c1)
	more := codecDNFItems(n, 4, 0x5c2)

	type stream interface {
		MarshalBinary() ([]byte, error)
		Estimate() float64
	}
	check := func(name string, s stream, decode func([]byte) (stream, error), ingest func(stream, []*formula.DNF)) {
		t.Helper()
		blob, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		dec, err := decode(blob)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if dec.Estimate() != s.Estimate() {
			t.Fatalf("%s: decoded estimate %v != %v", name, dec.Estimate(), s.Estimate())
		}
		reblob, _ := dec.MarshalBinary()
		if !bytes.Equal(blob, reblob) {
			t.Fatalf("%s: encode(decode(encode)) is not canonical", name)
		}
		if ingest != nil {
			ingest(s, more)
			ingest(dec, more)
			if dec.Estimate() != s.Estimate() {
				t.Fatalf("%s: post-ingest estimate diverges", name)
			}
		}
	}

	d := NewDNFStream(n, testOpts(8001))
	d.ProcessDNFBatch(items)
	check("dnf", d,
		func(b []byte) (stream, error) { return DecodeDNFStream(b, 1) },
		func(s stream, fs []*formula.DNF) { s.(*DNFStream).ProcessDNFBatch(fs) })

	rs := NewRangeStream([]int{5, 4}, testOpts(8002))
	for i := uint64(0); i < 6; i++ {
		if err := rs.ProcessRange(formula.MultiRange{Dims: []formula.Range{
			{Lo: i, Hi: i + 7, Bits: 5}, {Lo: 2 * i, Hi: 2*i + 3, Bits: 4}}}); err != nil {
			t.Fatalf("range item: %v", err)
		}
	}
	check("range", rs,
		func(b []byte) (stream, error) { return DecodeRangeStream(b, 1) }, nil)

	ps := NewProgressionStream([]int{5, 4}, testOpts(8003))
	for i := uint64(0); i < 6; i++ {
		if err := ps.ProcessProgression([]formula.Progression{
			{A: i, B: i + 12, LogStep: 1, Bits: 5},
			{A: 0, B: 2*i + 2, LogStep: 0, Bits: 4}}); err != nil {
			t.Fatalf("progression item: %v", err)
		}
	}
	check("progression", ps,
		func(b []byte) (stream, error) { return DecodeProgressionStream(b, 1) }, nil)

	as := NewAffineStream(n, testOpts(8004))
	arng := stats.NewRNG(0xaf1)
	for i := 0; i < 6; i++ {
		a, b := randomAffine(n, 3, arng)
		as.ProcessAffine(a, b)
	}
	check("affine", as,
		func(b []byte) (stream, error) { return DecodeAffineStream(b, 1) }, nil)

	cs := NewCNFStream(n, testOpts(8005))
	crng := stats.NewRNG(0xcf1)
	for i := 0; i < 3; i++ {
		cs.ProcessCNF(formula.RandomKCNF(n, 4, 3, crng))
	}
	check("cnf", cs,
		func(b []byte) (stream, error) { return DecodeCNFStream(b, 1) }, nil)
	dec, err := DecodeCNFStream(mustMarshal(t, cs), 1)
	if err != nil {
		t.Fatalf("cnf re-decode: %v", err)
	}
	if dec.Queries != cs.Queries {
		t.Fatalf("query meter %d != %d across the wire", dec.Queries, cs.Queries)
	}
}

func mustMarshal(t *testing.T, m interface{ MarshalBinary() ([]byte, error) }) []byte {
	t.Helper()
	b, err := m.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// Cross-wire merge differential: marshal→unmarshal→Merge must equal both
// the in-process Merge and a single stream ingesting every item.
func TestStreamCodecMergeVsSingle(t *testing.T) {
	n := 12
	items := codecDNFItems(n, 12, 0x5c3)
	whole := NewDNFStream(n, testOpts(8011))
	left := NewDNFStream(n, testOpts(8011))
	right := NewDNFStream(n, testOpts(8011))
	whole.ProcessDNFBatch(items)
	left.ProcessDNFBatch(items[:6])
	right.ProcessDNFBatch(items[6:])

	dec, err := DecodeDNFStream(mustMarshal(t, right), 1)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := left.Merge(dec); err != nil {
		t.Fatalf("merge of decoded stream: %v", err)
	}
	requireSketchEqual(t, whole.s, left.s)
	if whole.Estimate() != left.Estimate() {
		t.Fatal("wire-merged estimate diverges from single-stream estimate")
	}

	// Foreign-seed snapshots must still be rejected structurally.
	foreign := NewDNFStream(n, testOpts(9999))
	foreign.ProcessDNFBatch(items[6:])
	dec2, err := DecodeDNFStream(mustMarshal(t, foreign), 1)
	if err != nil {
		t.Fatalf("decode foreign: %v", err)
	}
	if err := whole.Merge(dec2); !errors.Is(err, ErrIncompatibleSketch) {
		t.Fatalf("foreign decoded stream merged: %v", err)
	}
}

// Corrupt and truncated snapshots return typed errors; wrong-kind blobs
// are refused by each decoder.
func TestStreamCodecErrors(t *testing.T) {
	n := 10
	d := NewDNFStream(n, testOpts(8021))
	d.ProcessDNFBatch(codecDNFItems(n, 5, 0x5c4))
	blob := mustMarshal(t, d)

	for cut := 0; cut < len(blob); cut += 5 {
		if _, err := DecodeDNFStream(blob[:cut], 1); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	if _, err := DecodeDNFStream(append(bytes.Clone(blob), 1), 1); !errors.Is(err, wire.ErrCorrupt) {
		t.Fatalf("trailing byte: %v", err)
	}
	bad := bytes.Clone(blob)
	bad[3] = dnfStreamVersion + 9
	var verr *wire.VersionError
	if _, err := DecodeDNFStream(bad, 1); !errors.As(err, &verr) {
		t.Fatalf("future version: %v", err)
	}
	// A DNF snapshot is not a range snapshot.
	if _, err := DecodeRangeStream(blob, 1); err == nil {
		t.Fatal("kind confusion decoded")
	} else {
		var kerr *wire.UnknownKindError
		if !errors.As(err, &kerr) {
			t.Fatalf("kind confusion: %v", err)
		}
	}
}
