package setstream

import (
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/formula"
	"mcf0/internal/gf2"
	"mcf0/internal/stats"
)

// randomAffine draws a random system ⟨A, b⟩ with `rows` rows over n vars.
func randomAffine(n, rows int, rng *stats.RNG) (*gf2.Matrix, bitvec.BitVec) {
	return gf2.RandomMatrix(rows, n, rng.Uint64), bitvec.Random(rows, rng.Uint64)
}

// Merge differential: splitting a DNF item stream across two same-seed
// streams and merging must leave the sketch bit-identical to one stream
// processing every item.
func TestDNFStreamMergeVsSingle(t *testing.T) {
	rng := stats.NewRNG(991)
	n := 14
	var items []*formula.DNF
	for i := 0; i < 14; i++ {
		items = append(items, formula.RandomDNF(n, 3, 5, rng))
	}
	whole := NewDNFStream(n, testOpts(7001))
	left := NewDNFStream(n, testOpts(7001))
	right := NewDNFStream(n, testOpts(7001))
	for _, d := range items {
		whole.ProcessDNF(d)
	}
	for _, d := range items[:7] {
		left.ProcessDNF(d)
	}
	for _, d := range items[7:] {
		right.ProcessDNF(d)
	}
	if err := left.Merge(right); err != nil {
		t.Fatalf("merge: %v", err)
	}
	requireSketchEqual(t, whole.s, left.s)
	if whole.Estimate() != left.Estimate() {
		t.Fatal("merged estimate diverges from single-stream estimate")
	}
}

// Same-seed affine streams must also merge exactly.
func TestAffineStreamMergeVsSingle(t *testing.T) {
	rng := stats.NewRNG(992)
	n := 12
	whole := NewAffineStream(n, testOpts(7002))
	left := NewAffineStream(n, testOpts(7002))
	right := NewAffineStream(n, testOpts(7002))
	for i := 0; i < 8; i++ {
		a, b := randomAffine(n, 3, rng)
		whole.ProcessAffine(a, b)
		if i < 4 {
			left.ProcessAffine(a, b)
		} else {
			right.ProcessAffine(a, b)
		}
	}
	if err := right.Merge(left); err != nil {
		t.Fatalf("merge: %v", err)
	}
	requireSketchEqual(t, whole.s, right.s)
	if whole.Estimate() != right.Estimate() {
		t.Fatal("merged estimate diverges from single-stream estimate")
	}
}

// Streams with different draws must refuse to merge.
func TestStreamMergeIncompatible(t *testing.T) {
	n := 12
	a := NewDNFStream(n, testOpts(1))
	b := NewDNFStream(n, testOpts(2))
	if err := a.Merge(b); err == nil {
		t.Fatal("merging different draws must fail")
	}
	c := NewDNFStream(n+1, testOpts(1))
	if err := a.Merge(c); err == nil {
		t.Fatal("merging different widths must fail")
	}
}
