package setstream

import (
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/exact"
	"mcf0/internal/formula"
	"mcf0/internal/gf2"
	"mcf0/internal/hash"
	"mcf0/internal/stats"
)

func testOpts(seed uint64) Options {
	return Options{Epsilon: 0.8, Delta: 0.2, Thresh: 32, Iterations: 9, RNG: stats.NewRNG(seed)}
}

// unionCount computes |∪ᵢ Sol(φᵢ)| exhaustively.
func unionCount(n int, evals []func(bitvec.BitVec) bool) float64 {
	count := 0
	for v := uint64(0); v < 1<<uint(n); v++ {
		x := bitvec.FromUint64(v, n)
		for _, e := range evals {
			if e(x) {
				count++
				break
			}
		}
	}
	return float64(count)
}

func TestDNFStreamAccuracy(t *testing.T) {
	rng := stats.NewRNG(61)
	n := 14
	var items []*formula.DNF
	var evals []func(bitvec.BitVec) bool
	for i := 0; i < 12; i++ {
		d := formula.RandomDNF(n, 3, 5, rng)
		items = append(items, d)
		evals = append(evals, d.Eval)
	}
	truth := unionCount(n, evals)
	ok := 0
	const trials = 10
	for s := 0; s < trials; s++ {
		ds := NewDNFStream(n, testOpts(uint64(500+s)))
		for _, d := range items {
			ds.ProcessDNF(d)
		}
		if stats.WithinFactor(ds.Estimate(), truth, 0.8) {
			ok++
		}
	}
	if ok < trials*7/10 {
		t.Errorf("DNF stream within band only %d/%d (truth %g)", ok, trials, truth)
	}
}

func TestDNFStreamMatchesElementStream(t *testing.T) {
	// Feeding singleton DNFs must behave exactly like an element stream:
	// small distinct counts are reported exactly.
	n := 12
	ds := NewDNFStream(n, testOpts(3))
	rng := stats.NewRNG(62)
	seen := map[uint64]bool{}
	for len(seen) < 20 {
		v := rng.Uint64n(1 << uint(n))
		seen[v] = true
		ds.ProcessElement(bitvec.FromUint64(v, n))
	}
	if ds.Estimate() != 20 {
		t.Errorf("singleton stream estimate %g, want exactly 20", ds.Estimate())
	}
}

func TestRangeStreamExactSmallUnions(t *testing.T) {
	// Unions smaller than Thresh are counted exactly by the KMV sketch.
	rs := NewRangeStream([]int{6}, testOpts(5))
	mustRange := func(lo, hi uint64) {
		t.Helper()
		if err := rs.ProcessRange(formula.MultiRange{Dims: []formula.Range{{Lo: lo, Hi: hi, Bits: 6}}}); err != nil {
			t.Fatal(err)
		}
	}
	mustRange(3, 10) // 8 values
	mustRange(8, 15) // overlap: adds 5
	mustRange(40, 45)
	if got := rs.Estimate(); got != 19 {
		t.Errorf("range union = %g, want exactly 19", got)
	}
}

func TestRangeStreamAccuracy2D(t *testing.T) {
	rng := stats.NewRNG(63)
	bits := []int{7, 7}
	var boxes []formula.MultiRange
	var evals []func(bitvec.BitVec) bool
	for i := 0; i < 10; i++ {
		var dims []formula.Range
		for _, b := range bits {
			maxV := uint64(1)<<uint(b) - 1
			lo := rng.Uint64n(maxV + 1)
			hi := lo + rng.Uint64n(maxV-lo+1)
			dims = append(dims, formula.Range{Lo: lo, Hi: hi, Bits: b})
		}
		mr := formula.MultiRange{Dims: dims}
		boxes = append(boxes, mr)
		d, err := formula.MultiRangeDNF(mr)
		if err != nil {
			t.Fatal(err)
		}
		evals = append(evals, d.Eval)
	}
	truth := unionCount(14, evals)
	ok := 0
	const trials = 8
	for s := 0; s < trials; s++ {
		rs := NewRangeStream(bits, testOpts(uint64(700+s)))
		for _, b := range boxes {
			if err := rs.ProcessRange(b); err != nil {
				t.Fatal(err)
			}
		}
		if stats.WithinFactor(rs.Estimate(), truth, 0.8) {
			ok++
		}
	}
	if ok < trials*3/4 {
		t.Errorf("2D range stream within band only %d/%d (truth %g)", ok, trials, truth)
	}
}

func TestProgressionStreamExact(t *testing.T) {
	ps := NewProgressionStream([]int{6}, testOpts(9))
	// 4, 6, 8, 10 and 5, 9, 13: disjoint, 7 elements total.
	if err := ps.ProcessProgression([]formula.Progression{{A: 4, B: 10, LogStep: 1, Bits: 6}}); err != nil {
		t.Fatal(err)
	}
	if err := ps.ProcessProgression([]formula.Progression{{A: 5, B: 13, LogStep: 2, Bits: 6}}); err != nil {
		t.Fatal(err)
	}
	if got := ps.Estimate(); got != 7 {
		t.Errorf("progression union = %g, want exactly 7", got)
	}
}

func TestAffineFindMinMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(64)
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(4)
		rows := rng.Intn(n + 1)
		a := gf2.RandomMatrix(rows, n, rng.Uint64)
		b := bitvec.Random(rows, rng.Uint64)
		hm := gf2.RandomMatrix(3*n, n, rng.Uint64)
		hb := bitvec.Random(3*n, rng.Uint64)
		h := hash.NewLinear(hm, hb)
		tWant := 1 + rng.Intn(8)
		// Brute force.
		seen := map[string]bitvec.BitVec{}
		for v := uint64(0); v < 1<<uint(n); v++ {
			x := bitvec.FromUint64(v, n)
			if a.MulVec(x).Equal(b) {
				y := h.Eval(x)
				seen[y.Key()] = y
			}
		}
		var want []bitvec.BitVec
		for _, y := range seen {
			want = append(want, y)
		}
		sortVecs(want)
		if len(want) > tWant {
			want = want[:tWant]
		}
		got := AffineFindMin(a, b, h, tWant)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d mins, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("trial %d: min[%d] mismatch", trial, i)
			}
		}
	}
}

func TestAffineStreamAccuracy(t *testing.T) {
	rng := stats.NewRNG(65)
	n := 12
	type item struct {
		a *gf2.Matrix
		b bitvec.BitVec
	}
	var items []item
	var evals []func(bitvec.BitVec) bool
	for i := 0; i < 8; i++ {
		rows := 4 + rng.Intn(4)
		a := gf2.RandomMatrix(rows, n, rng.Uint64)
		b := bitvec.Random(rows, rng.Uint64)
		items = append(items, item{a, b})
		aa, bb := a, b
		evals = append(evals, func(x bitvec.BitVec) bool { return aa.MulVec(x).Equal(bb) })
	}
	truth := unionCount(n, evals)
	if truth == 0 {
		t.Skip("degenerate: all affine systems inconsistent")
	}
	ok := 0
	const trials = 8
	for s := 0; s < trials; s++ {
		as := NewAffineStream(n, testOpts(uint64(900+s)))
		for _, it := range items {
			as.ProcessAffine(it.a, it.b)
		}
		if stats.WithinFactor(as.Estimate(), truth, 0.8) {
			ok++
		}
	}
	if ok < trials*3/4 {
		t.Errorf("affine stream within band only %d/%d (truth %g)", ok, trials, truth)
	}
}

func TestCNFStreamExactSmall(t *testing.T) {
	// Two CNF items over 8 vars with small solution sets.
	n := 8
	cs := NewCNFStream(n, testOpts(11))
	// x0..x4 fixed true → 8 solutions.
	c1 := formula.NewCNF(n)
	for v := 0; v < 5; v++ {
		c1.AddClause(formula.Clause{formula.Pos(v)})
	}
	// x0..x4 fixed false → 8 solutions, disjoint from c1.
	c2 := formula.NewCNF(n)
	for v := 0; v < 5; v++ {
		c2.AddClause(formula.Clause{formula.Negl(v)})
	}
	cs.ProcessCNF(c1)
	cs.ProcessCNF(c2)
	if got := cs.Estimate(); got != 16 {
		t.Errorf("CNF stream union = %g, want exactly 16", got)
	}
	if cs.Queries == 0 {
		t.Error("CNF stream did not meter oracle queries")
	}
}

func TestWeightedCountMatchesExact(t *testing.T) {
	rng := stats.NewRNG(66)
	okAll := true
	for trial := 0; trial < 5; trial++ {
		n := 4
		d := formula.RandomDNF(n, 3, 2, rng)
		w := exact.WeightFunc{Num: make([]uint64, n), Bits: make([]int, n)}
		for i := 0; i < n; i++ {
			w.Bits[i] = 2 + rng.Intn(2)
			w.Num[i] = 1 + rng.Uint64n(uint64(1)<<uint(w.Bits[i])-1)
		}
		truth := exact.WeightedCountDNF(d, w)
		ok := 0
		const trials = 6
		for s := 0; s < trials; s++ {
			got := WeightedCount(WeightedDNF{D: d, W: w}, testOpts(uint64(1100+trial*100+s)))
			if stats.WithinFactor(got, truth, 0.8) {
				ok++
			}
		}
		if ok < trials/2 {
			t.Logf("trial %d: weighted count in band %d/%d (truth %g)", trial, ok, trials, truth)
			okAll = false
		}
	}
	if !okAll {
		t.Error("weighted counting accuracy too low across formulas")
	}
}

// TestWeightedTermBox checks the reduction geometry: the box of a term has
// measure W(term)·2^Σm.
func TestWeightedTermBox(t *testing.T) {
	n := 3
	d := formula.NewDNF(n)
	term := formula.Term{formula.Pos(0), formula.Negl(2)}
	d.AddTerm(term)
	w := exact.WeightFunc{Num: []uint64{3, 1, 2}, Bits: []int{3, 2, 3}}
	wd := WeightedDNF{D: d, W: w}
	box, ok := wd.TermBox(term)
	if !ok {
		t.Fatal("consistent term rejected")
	}
	// ρ0 = 3/8 fixed true → 3 values; x1 free → 4 values; ρ2 = 2/8 fixed
	// false → 6 values. Total 3·4·6 = 72 = (3/8)(1)(6/8)·2^8.
	if got := box.Count(); got != 72 {
		t.Fatalf("box measure %d, want 72", got)
	}
	contra := formula.Term{formula.Pos(0), formula.Negl(0)}
	if _, ok := wd.TermBox(contra); ok {
		t.Error("contradictory term produced a box")
	}
}

func TestSketchSpaceBounded(t *testing.T) {
	opts := testOpts(13)
	n := 24
	ds := NewDNFStream(n, opts)
	rng := stats.NewRNG(67)
	for i := 0; i < 20; i++ {
		ds.ProcessDNF(formula.RandomDNF(n, 4, 3, rng)) // huge sets
	}
	bound := opts.Thresh * opts.Iterations * ((3*n + 63) / 64)
	if ds.SketchWords() > bound {
		t.Errorf("sketch %d words exceeds bound %d", ds.SketchWords(), bound)
	}
}

func sortVecs(vs []bitvec.BitVec) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j].Less(vs[j-1]); j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}
