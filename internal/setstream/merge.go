package setstream

import (
	"errors"

	"mcf0/internal/hash"
)

// ErrIncompatibleSketch is returned by Merge when two streams cannot be
// combined: different universe widths, copy counts, thresholds — or
// different hash draws, under which the merged minima would be drawn from
// two unrelated random projections.
var ErrIncompatibleSketch = errors.New("setstream: sketches are not mergeable (mismatched shape or hash draws)")

// sameLinear reports whether two linear hashes are the same draw, by
// pointer or by structural equality of Ax+b.
func sameLinear(a, b *hash.Linear) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.A.Rows() != b.A.Rows() || a.A.Cols() != b.A.Cols() || !a.B.Equal(b.B) {
		return false
	}
	for i := 0; i < a.A.Rows(); i++ {
		if !a.A.Row(i).Equal(b.A.Row(i)) {
			return false
		}
	}
	return true
}

// merge folds other's minima into s. For sketches sharing hash draws
// (same-seed construction) the result is bit-identical to one sketch
// having processed both item streams: each copy's vals is the sorted
// Thresh-smallest prefix of the union of distinct hash values, and
// absorb's sorted-batch merge computes exactly that. other is not
// mutated.
func (s *minSketch) merge(other *minSketch) error {
	if other.thresh != s.thresh || len(other.copies) != len(s.copies) {
		return ErrIncompatibleSketch
	}
	for i := range s.copies {
		if !sameLinear(s.copies[i].h, other.copies[i].h) {
			return ErrIncompatibleSketch
		}
	}
	for i := range s.copies {
		s.absorb(s.copies[i], other.copies[i].vals)
	}
	return nil
}

// Merge folds other's sketch state into d; both streams must be built
// over the same universe with the same seed and parameters. After the
// merge, d estimates F0 of the union of both item streams.
func (d *DNFStream) Merge(other *DNFStream) error {
	if other.n != d.n {
		return ErrIncompatibleSketch
	}
	return d.s.merge(other.s)
}

// Merge folds other's sketch state into r (same-seed streams only).
func (r *RangeStream) Merge(other *RangeStream) error {
	if len(other.bits) != len(r.bits) {
		return ErrIncompatibleSketch
	}
	for i := range r.bits {
		if other.bits[i] != r.bits[i] {
			return ErrIncompatibleSketch
		}
	}
	return r.inner.Merge(other.inner)
}

// Merge folds other's sketch state into p (same-seed streams only).
func (p *ProgressionStream) Merge(other *ProgressionStream) error {
	if len(other.bits) != len(p.bits) {
		return ErrIncompatibleSketch
	}
	for i := range p.bits {
		if other.bits[i] != p.bits[i] {
			return ErrIncompatibleSketch
		}
	}
	return p.inner.Merge(other.inner)
}

// Merge folds other's sketch state into s (same-seed streams only).
func (s *AffineStream) Merge(other *AffineStream) error {
	if other.n != s.n {
		return ErrIncompatibleSketch
	}
	return s.s.merge(other.s)
}

// Merge folds other's sketch state into c (same-seed streams only) and
// adds other's oracle-query meter to c's.
func (c *CNFStream) Merge(other *CNFStream) error {
	if other.n != c.n {
		return ErrIncompatibleSketch
	}
	if err := c.s.merge(other.s); err != nil {
		return err
	}
	c.Queries += other.Queries
	return nil
}
