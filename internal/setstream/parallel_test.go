package setstream

import (
	"testing"

	"mcf0/internal/formula"
	"mcf0/internal/stats"
)

// Determinism regression: per-copy fan-out must not change estimates or
// oracle-query counts for a fixed seed.
func TestSetStreamParallelDeterminism(t *testing.T) {
	rng := stats.NewRNG(51)
	items := make([]*formula.DNF, 6)
	for i := range items {
		items[i] = formula.RandomDNF(12, 3, 4, rng)
	}
	cnf, _ := formula.PlantedKCNF(8, 12, 3, rng)

	run := func(par int) (float64, float64, int64) {
		o := Options{Epsilon: 0.8, Delta: 0.2, Thresh: 12, Iterations: 7,
			RNG: stats.NewRNG(0xabc), Parallelism: par}
		ds := NewDNFStream(12, o)
		for _, f := range items {
			ds.ProcessDNF(f)
		}
		o2 := o
		o2.RNG = stats.NewRNG(0xabc)
		o2.Thresh = 6
		o2.Iterations = 3
		cs := NewCNFStream(8, o2)
		cs.ProcessCNF(cnf)
		return ds.Estimate(), cs.Estimate(), cs.Queries
	}

	d1, c1, q1 := run(1)
	for _, par := range []int{2, 4} {
		d, c, q := run(par)
		if d != d1 || c != c1 || q != q1 {
			t.Fatalf("parallelism %d: (%v, %v, %d) != serial (%v, %v, %d)",
				par, d, c, q, d1, c1, q1)
		}
	}
}
