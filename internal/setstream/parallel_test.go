package setstream

import (
	"runtime"
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/formula"
	"mcf0/internal/gf2"
	"mcf0/internal/stats"
)

// Determinism regression: per-copy fan-out must not change estimates or
// oracle-query counts for a fixed seed.
func TestSetStreamParallelDeterminism(t *testing.T) {
	rng := stats.NewRNG(51)
	items := make([]*formula.DNF, 6)
	for i := range items {
		items[i] = formula.RandomDNF(12, 3, 4, rng)
	}
	cnf, _ := formula.PlantedKCNF(8, 12, 3, rng)

	run := func(par int) (float64, float64, int64) {
		o := Options{Epsilon: 0.8, Delta: 0.2, Thresh: 12, Iterations: 7,
			RNG: stats.NewRNG(0xabc), Parallelism: par}
		ds := NewDNFStream(12, o)
		for _, f := range items {
			ds.ProcessDNF(f)
		}
		o2 := o
		o2.RNG = stats.NewRNG(0xabc)
		o2.Thresh = 6
		o2.Iterations = 3
		cs := NewCNFStream(8, o2)
		cs.ProcessCNF(cnf)
		return ds.Estimate(), cs.Estimate(), cs.Queries
	}

	d1, c1, q1 := run(1)
	for _, par := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		d, c, q := run(par)
		if d != d1 || c != c1 || q != q1 {
			t.Fatalf("parallelism %d: (%v, %v, %d) != serial (%v, %v, %d)",
				par, d, c, q, d1, c1, q1)
		}
	}
}

// requireSketchEqual compares the full per-copy state of two min sketches.
func requireSketchEqual(t *testing.T, a, b *minSketch) {
	t.Helper()
	if len(a.copies) != len(b.copies) {
		t.Fatalf("copy counts %d != %d", len(a.copies), len(b.copies))
	}
	for i := range a.copies {
		ca, cb := a.copies[i], b.copies[i]
		if len(ca.vals) != len(cb.vals) {
			t.Fatalf("copy %d: %d vs %d minima", i, len(ca.vals), len(cb.vals))
		}
		for j := range ca.vals {
			if !ca.vals[j].Equal(cb.vals[j]) {
				t.Fatalf("copy %d: minima diverge at rank %d", i, j)
			}
		}
	}
}

// Batch-vs-single differential: the batch entry points must leave every
// sketch copy in the state item-at-a-time processing produces, at every
// parallelism level.
func TestSetStreamBatchVsSingle(t *testing.T) {
	rng := stats.NewRNG(97)
	items := make([]*formula.DNF, 9)
	for i := range items {
		items[i] = formula.RandomDNF(12, 3, 4, rng)
	}
	n := 12
	as := make([]*gf2.Matrix, 4)
	bs := make([]bitvec.BitVec, 4)
	for i := range as {
		as[i] = gf2.RandomMatrix(5, n, rng.Uint64)
		bs[i] = bitvec.Random(5, rng.Uint64)
	}
	cnfs := make([]*formula.CNF, 3)
	for i := range cnfs {
		cnfs[i], _ = formula.PlantedKCNF(8, 12, 3, rng)
	}
	for _, par := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		mk := func(seed uint64, p int) Options {
			return Options{Epsilon: 0.8, Delta: 0.2, Thresh: 12, Iterations: 7,
				RNG: stats.NewRNG(seed), Parallelism: p}
		}

		dSingle := NewDNFStream(n, mk(0xd, 1))
		for _, f := range items {
			dSingle.ProcessDNF(f)
		}
		dBatch := NewDNFStream(n, mk(0xd, par))
		dBatch.ProcessDNFBatch(items[:4])
		dBatch.ProcessDNFBatch(items[4:])
		requireSketchEqual(t, dSingle.s, dBatch.s)
		if dSingle.Estimate() != dBatch.Estimate() {
			t.Fatalf("par=%d: DNF estimates diverge", par)
		}

		aSingle := NewAffineStream(n, mk(0xa, 1))
		for i := range as {
			aSingle.ProcessAffine(as[i], bs[i])
		}
		aBatch := NewAffineStream(n, mk(0xa, par))
		aBatch.ProcessAffineBatch(as, bs)
		requireSketchEqual(t, aSingle.s, aBatch.s)

		cSingle := NewCNFStream(8, Options{Epsilon: 0.8, Delta: 0.2, Thresh: 6, Iterations: 3,
			RNG: stats.NewRNG(0xc), Parallelism: 1})
		for _, f := range cnfs {
			cSingle.ProcessCNF(f)
		}
		cBatch := NewCNFStream(8, Options{Epsilon: 0.8, Delta: 0.2, Thresh: 6, Iterations: 3,
			RNG: stats.NewRNG(0xc), Parallelism: par})
		cBatch.ProcessCNFBatch(cnfs)
		requireSketchEqual(t, cSingle.s, cBatch.s)
		if cSingle.Queries != cBatch.Queries {
			t.Fatalf("par=%d: CNF query meters %d != %d", par, cSingle.Queries, cBatch.Queries)
		}
	}
}

// Range batches reject invalid items atomically: nothing is absorbed.
func TestRangeBatchAtomicReject(t *testing.T) {
	opts := Options{Epsilon: 0.8, Delta: 0.2, Thresh: 8, Iterations: 3, RNG: stats.NewRNG(5)}
	rs := NewRangeStream([]int{6}, opts)
	good := formula.MultiRange{Dims: []formula.Range{{Lo: 3, Hi: 17, Bits: 6}}}
	bad := formula.MultiRange{Dims: []formula.Range{{Lo: 0, Hi: 200, Bits: 6}}} // Hi exceeds 6 bits
	if err := rs.ProcessRangeBatch([]formula.MultiRange{good, bad}); err == nil {
		t.Fatal("invalid range accepted")
	}
	if rs.SketchWords() != 0 {
		t.Fatal("rejected batch left state behind")
	}
	if err := rs.ProcessRangeBatch([]formula.MultiRange{good, good}); err != nil {
		t.Fatal(err)
	}
	single := NewRangeStream([]int{6}, Options{Epsilon: 0.8, Delta: 0.2, Thresh: 8, Iterations: 3,
		RNG: stats.NewRNG(5)})
	_ = single.ProcessRange(good)
	_ = single.ProcessRange(good)
	if rs.Estimate() != single.Estimate() {
		t.Fatal("range batch estimate diverges from per-item processing")
	}
}
