// Package setstream implements Section 5 of the paper: F0 estimation over
// structured set streams, where each stream item is a succinct description
// of a subset of {0,1}^n — a DNF formula (Theorem 5), a d-dimensional range
// (Lemma 4 + Theorem 6), a d-dimensional arithmetic progression
// (Corollary 1), an affine space Ax = b (Proposition 4 + Theorem 7), or a
// CNF formula (the Observation 2 discussion, answered with the CNF oracle).
//
// All estimators are instances of one pattern: keep the Thresh
// lexicographically smallest values of h(∪ᵢ Sol(φᵢ)) for h drawn from
// H_Toeplitz(n, 3n), updating per item with the appropriate FindMin — the
// Minimum-based counter run "inside out".
//
// The t sketch copies are independent (own hash, own minima) and their
// per-item FindMin computations fan out across a worker pool
// (Options.Parallelism). Every stream also offers a batch entry point
// (ProcessDNFBatch, ProcessRangeBatch, …) that walks a whole chunk of
// items per copy with a single pool dispatch, leaving the sketch in
// exactly the state element-at-a-time processing would. Hashes are drawn
// serially at construction keyed by copy index, so fixed-seed estimates
// are bit-identical at every parallelism level.
//
// The package also implements the weighted-#DNF → d-dimensional-range
// reduction of Section 5.
//
// # Concurrency contract
//
// Streams are single-writer: one goroutine drives ProcessDNF/ProcessRange/
// …/Estimate; the batch entry points reject or absorb a whole chunk
// atomically (validation happens before any copy mutates). Inside a call
// the per-copy FindMin work runs on the dynamic pool (per-copy cost is
// heterogeneous — SAT calls, image searches — so copies are not block-
// sharded), but each copy's minima and hash belong to exactly one task, so
// no copy state is shared between workers. CNF items build their per-
// (item, copy) oracles lazily inside the worker, bounding live solvers by
// the pool width; their query meters are summed in deterministic
// (item, copy) order after the join. Randomness is pre-drawn serially at
// construction, keyed by copy index — fixed-seed estimates are
// bit-identical at every Parallelism value and under any batching.
package setstream

import (
	"math"

	"mcf0/internal/bitvec"
	"mcf0/internal/counting"
	"mcf0/internal/exact"
	"mcf0/internal/formula"
	"mcf0/internal/gf2"
	"mcf0/internal/hash"
	"mcf0/internal/oracle"
	"mcf0/internal/par"
	"mcf0/internal/stats"
)

// Options parameterises the set-stream estimators; the zero value selects
// the paper's constants (Thresh = 96/ε², t = 35·log₂(1/δ), ε=0.8, δ=0.2).
type Options struct {
	Epsilon    float64
	Delta      float64
	Thresh     int
	Iterations int
	RNG        *stats.RNG
	// Parallelism bounds the worker pool that runs the t independent
	// sketch copies' per-item FindMin computations. 0 selects GOMAXPROCS;
	// 1 forces serial. Copies are independent (own hash, own minima), so
	// estimates for a fixed seed are identical at every level.
	Parallelism int
}

func (o Options) epsilon() float64 {
	if o.Epsilon > 0 {
		return o.Epsilon
	}
	return 0.8
}

func (o Options) delta() float64 {
	if o.Delta > 0 && o.Delta < 1 {
		return o.Delta
	}
	return 0.2
}

func (o Options) thresh() int {
	if o.Thresh > 0 {
		return o.Thresh
	}
	return int(96/(o.epsilon()*o.epsilon())) + 1
}

func (o Options) iterations() int {
	if o.Iterations > 0 {
		return o.Iterations
	}
	t := int(math.Ceil(35 * math.Log2(1/o.delta())))
	if t < 1 {
		t = 1
	}
	return t
}

func (o Options) rng() *stats.RNG {
	if o.RNG != nil {
		return o.RNG
	}
	return stats.NewRNG(0x5e75747265616d)
}

func (o Options) parallelism() int { return par.Workers(o.Parallelism) }

// runCopies executes fn(i) for each sketch copy on up to workers
// goroutines; fn must touch only copy i's state. The dynamic pool
// (par.Run) fits here: per-copy FindMin cost is heavy (≫ dispatch cost,
// so the pool engages even for single items, unlike the streaming
// sketches) and varies with the copy's hash — for CNF items by orders of
// magnitude (SAT) — so dynamic hand-out balances load where a static
// block partition would strand slow copies. No per-shard scratch is used,
// and results are keyed by copy index, so determinism needs nothing more.
func runCopies(count, workers int, fn func(i int)) { par.Run(count, workers, fn) }

// minSketch is the shared Minimum-style sketch: per copy, a Toeplitz hash
// n → 3n and the Thresh smallest distinct hash values seen so far. The
// copies are updated independently, so per-item work fans out across
// Options.Parallelism workers.
type minSketch struct {
	thresh  int
	workers int
	copies  []*sketchCopy
}

type sketchCopy struct {
	h    *hash.Linear
	vals []bitvec.BitVec // sorted ascending
}

func newMinSketch(n int, opts Options) *minSketch {
	rng := opts.rng()
	fam := hash.NewToeplitz(n, 3*n)
	s := &minSketch{thresh: opts.thresh(), workers: opts.parallelism()}
	for i := 0; i < opts.iterations(); i++ {
		s.copies = append(s.copies, &sketchCopy{h: fam.Draw(rng.Uint64).(*hash.Linear)})
	}
	return s
}

// absorb merges a sorted batch of candidate minima into copy c.
func (s *minSketch) absorb(c *sketchCopy, batch []bitvec.BitVec) {
	if len(batch) == 0 {
		return
	}
	merged := make([]bitvec.BitVec, 0, len(c.vals)+len(batch))
	i, j := 0, 0
	for (i < len(c.vals) || j < len(batch)) && len(merged) < s.thresh {
		switch {
		case i >= len(c.vals):
			merged = appendDistinct(merged, batch[j])
			j++
		case j >= len(batch):
			merged = appendDistinct(merged, c.vals[i])
			i++
		case c.vals[i].Less(batch[j]):
			merged = appendDistinct(merged, c.vals[i])
			i++
		default:
			merged = appendDistinct(merged, batch[j])
			j++
		}
	}
	c.vals = merged
}

func appendDistinct(vs []bitvec.BitVec, v bitvec.BitVec) []bitvec.BitVec {
	if len(vs) > 0 && vs[len(vs)-1].Equal(v) {
		return vs
	}
	return append(vs, v)
}

// Estimate is the k-minimum-values estimator shared by all set streams.
func (s *minSketch) Estimate() float64 {
	ests := make([]float64, len(s.copies))
	for i, c := range s.copies {
		if len(c.vals) < s.thresh {
			ests[i] = float64(len(c.vals))
			continue
		}
		f := c.vals[len(c.vals)-1].Fraction()
		if f == 0 {
			ests[i] = float64(len(c.vals))
			continue
		}
		ests[i] = float64(s.thresh) / f
	}
	return stats.Median(ests)
}

// SketchWords reports sketch memory in 64-bit words (hash functions
// excluded), for the space experiments of Theorems 5–7.
func (s *minSketch) SketchWords() int {
	total := 0
	for _, c := range s.copies {
		for _, v := range c.vals {
			total += (v.Len() + 63) / 64
		}
	}
	return total
}

// DNFStream estimates F0 of a stream of DNF sets (Theorem 5): per item,
// the Thresh smallest hashed solutions of the arriving formula are
// computed in time O(n⁴·k·Thresh) by FindMinDNF and merged into the
// sketch.
type DNFStream struct {
	n   int
	s   *minSketch
	one [1]*formula.DNF
}

// NewDNFStream builds the estimator over n-variable DNF items.
func NewDNFStream(n int, opts Options) *DNFStream {
	return &DNFStream{n: n, s: newMinSketch(n, opts)}
}

// ProcessDNF absorbs one DNF set; the per-copy FindMin computations run
// across the sketch's worker pool (FindMinDNF only reads f and the hash).
func (d *DNFStream) ProcessDNF(f *formula.DNF) {
	d.one[0] = f
	d.ProcessDNFBatch(d.one[:])
}

// ProcessDNFBatch absorbs a chunk of DNF sets with a single pool dispatch:
// each copy walks the items in arrival order, so the sketch ends in
// exactly the state len(fs) ProcessDNF calls would produce.
func (d *DNFStream) ProcessDNFBatch(fs []*formula.DNF) {
	for _, f := range fs {
		if f.N != d.n {
			panic("setstream: DNF variable count mismatch")
		}
	}
	if len(fs) == 0 {
		return
	}
	runCopies(len(d.s.copies), d.s.workers, func(i int) {
		c := d.s.copies[i]
		for _, f := range fs {
			d.s.absorb(c, counting.FindMinDNF(f, c.h, d.s.thresh))
		}
	})
}

// ProcessElement absorbs a single universe element (the classic streaming
// model embeds into DNF streams via singleton formulas).
func (d *DNFStream) ProcessElement(x bitvec.BitVec) {
	d.ProcessDNF(formula.SingletonDNF(x))
}

// ProcessElementBatch absorbs a chunk of universe elements as singleton
// DNF sets with a single pool dispatch.
func (d *DNFStream) ProcessElementBatch(xs []bitvec.BitVec) {
	fs := make([]*formula.DNF, len(xs))
	for i, x := range xs {
		fs[i] = formula.SingletonDNF(x)
	}
	d.ProcessDNFBatch(fs)
}

// Estimate returns the (ε, δ)-approximation of |∪ᵢ Sol(φᵢ)|.
func (d *DNFStream) Estimate() float64 { return d.s.Estimate() }

// SketchWords reports sketch memory in words.
func (d *DNFStream) SketchWords() int { return d.s.SketchWords() }

// RangeStream estimates F0 over d-dimensional range items (Theorem 6) by
// converting each range to its Lemma 4 DNF (≤ (2n)^d terms) and feeding a
// DNFStream.
type RangeStream struct {
	inner *DNFStream
	bits  []int
}

// NewRangeStream builds the estimator; bitsPerDim fixes each dimension's
// width (total variables Σ bitsPerDim).
func NewRangeStream(bitsPerDim []int, opts Options) *RangeStream {
	total := 0
	for _, b := range bitsPerDim {
		total += b
	}
	return &RangeStream{inner: NewDNFStream(total, opts), bits: append([]int(nil), bitsPerDim...)}
}

// ProcessRange absorbs one d-dimensional range.
func (r *RangeStream) ProcessRange(mr formula.MultiRange) error {
	if len(mr.Dims) != len(r.bits) {
		panic("setstream: dimension count mismatch")
	}
	for i, dim := range mr.Dims {
		if dim.Bits != r.bits[i] {
			panic("setstream: dimension width mismatch")
		}
	}
	d, err := formula.MultiRangeDNF(mr)
	if err != nil {
		return err
	}
	r.inner.ProcessDNF(d)
	return nil
}

// ProcessRangeBatch absorbs a chunk of d-dimensional ranges with a single
// pool dispatch. The conversion to Lemma 4 DNFs happens up front: on any
// invalid range the whole batch is rejected and the sketch is unchanged.
func (r *RangeStream) ProcessRangeBatch(mrs []formula.MultiRange) error {
	ds := make([]*formula.DNF, len(mrs))
	for k, mr := range mrs {
		if len(mr.Dims) != len(r.bits) {
			panic("setstream: dimension count mismatch")
		}
		for i, dim := range mr.Dims {
			if dim.Bits != r.bits[i] {
				panic("setstream: dimension width mismatch")
			}
		}
		d, err := formula.MultiRangeDNF(mr)
		if err != nil {
			return err
		}
		ds[k] = d
	}
	r.inner.ProcessDNFBatch(ds)
	return nil
}

// Estimate returns the (ε, δ)-approximation of the union size.
func (r *RangeStream) Estimate() float64 { return r.inner.Estimate() }

// SketchWords reports sketch memory in words.
func (r *RangeStream) SketchWords() int { return r.inner.SketchWords() }

// ProgressionStream estimates F0 over d-dimensional arithmetic-progression
// items with power-of-two steps (Corollary 1).
type ProgressionStream struct {
	inner *DNFStream
	bits  []int
}

// NewProgressionStream builds the estimator with the given per-dimension
// widths.
func NewProgressionStream(bitsPerDim []int, opts Options) *ProgressionStream {
	total := 0
	for _, b := range bitsPerDim {
		total += b
	}
	return &ProgressionStream{inner: NewDNFStream(total, opts), bits: append([]int(nil), bitsPerDim...)}
}

// ProcessProgression absorbs one d-dimensional progression (one Progression
// per dimension).
func (p *ProgressionStream) ProcessProgression(ps []formula.Progression) error {
	if len(ps) != len(p.bits) {
		panic("setstream: dimension count mismatch")
	}
	for i, pr := range ps {
		if pr.Bits != p.bits[i] {
			panic("setstream: dimension width mismatch")
		}
	}
	d, err := formula.MultiProgressionDNF(ps)
	if err != nil {
		return err
	}
	p.inner.ProcessDNF(d)
	return nil
}

// ProcessProgressionBatch absorbs a chunk of d-dimensional progressions
// with a single pool dispatch; on any invalid item the whole batch is
// rejected and the sketch is unchanged.
func (p *ProgressionStream) ProcessProgressionBatch(items [][]formula.Progression) error {
	ds := make([]*formula.DNF, len(items))
	for k, ps := range items {
		if len(ps) != len(p.bits) {
			panic("setstream: dimension count mismatch")
		}
		for i, pr := range ps {
			if pr.Bits != p.bits[i] {
				panic("setstream: dimension width mismatch")
			}
		}
		d, err := formula.MultiProgressionDNF(ps)
		if err != nil {
			return err
		}
		ds[k] = d
	}
	p.inner.ProcessDNFBatch(ds)
	return nil
}

// Estimate returns the (ε, δ)-approximation of the union size.
func (p *ProgressionStream) Estimate() float64 { return p.inner.Estimate() }

// AffineStream estimates F0 over affine-space items ⟨A, b⟩ representing
// {x : Ax = b} (Theorem 7). Per item, AffineFindMin (Proposition 4) finds
// the Thresh smallest values of h over the solution space by prefix search
// through the stacked system [D | A].
type AffineStream struct {
	n int
	s *minSketch
}

// NewAffineStream builds the estimator over n-bit universes.
func NewAffineStream(n int, opts Options) *AffineStream {
	return &AffineStream{n: n, s: newMinSketch(n, opts)}
}

// AffineFindMin implements Proposition 4: the t lexicographically smallest
// elements of h(Sol(⟨A, b⟩)), via Gaussian elimination in O(n⁴·t). The
// searcher takes ownership of the stacked constraint system and walks the
// t minima over one rewindable elimination state (successor probes rewind
// to their divergence point instead of cloning ⟨A, b⟩'s echelon form per
// step).
func AffineFindMin(a *gf2.Matrix, b bitvec.BitVec, h *hash.Linear, t int) []bitvec.BitVec {
	cons := gf2.NewSystem(a.Cols())
	for i := 0; i < a.Rows(); i++ {
		cons.Add(a.Row(i), b.Get(i))
	}
	searcher := gf2.NewImageSearcher(h.A, h.B, cons)
	return searcher.KMin(t)
}

// ProcessAffine absorbs one affine set {x : Ax = b}; the per-copy prefix
// searches run across the sketch's worker pool.
func (s *AffineStream) ProcessAffine(a *gf2.Matrix, b bitvec.BitVec) {
	s.ProcessAffineBatch([]*gf2.Matrix{a}, []bitvec.BitVec{b})
}

// ProcessAffineBatch absorbs a chunk of affine sets {x : as[k]·x = bs[k]}
// with a single pool dispatch: each copy runs its prefix searches over the
// items in arrival order.
func (s *AffineStream) ProcessAffineBatch(as []*gf2.Matrix, bs []bitvec.BitVec) {
	if len(as) != len(bs) {
		panic("setstream: affine batch arity mismatch")
	}
	for _, a := range as {
		if a.Cols() != s.n {
			panic("setstream: affine item width mismatch")
		}
	}
	if len(as) == 0 {
		return
	}
	runCopies(len(s.s.copies), s.s.workers, func(i int) {
		c := s.s.copies[i]
		for k, a := range as {
			s.s.absorb(c, AffineFindMin(a, bs[k], c.h, s.s.thresh))
		}
	})
}

// Estimate returns the (ε, δ)-approximation of the union size.
func (s *AffineStream) Estimate() float64 { return s.s.Estimate() }

// SketchWords reports sketch memory in words.
func (s *AffineStream) SketchWords() int { return s.s.SketchWords() }

// CNFStream estimates F0 over CNF-formula items using the NP-oracle
// FindMin (the Observation 2 discussion: with a SAT solver standing in for
// the oracle, d-dimensional ranges in CNF form take polynomially many
// oracle calls per item).
type CNFStream struct {
	n int
	s *minSketch
	// Queries accumulates oracle calls across items.
	Queries int64
}

// NewCNFStream builds the estimator over n-variable CNF items.
func NewCNFStream(n int, opts Options) *CNFStream {
	return &CNFStream{n: n, s: newMinSketch(n, opts)}
}

// ProcessCNF absorbs one CNF set; each copy solves against its own SAT
// oracle and the query meters are summed in copy order.
func (c *CNFStream) ProcessCNF(f *formula.CNF) {
	c.ProcessCNFBatch([]*formula.CNF{f})
}

// ProcessCNFBatch absorbs a chunk of CNF sets with a single pool dispatch.
// Every (item, copy) pair gets its own SAT oracle, built inside the worker
// right before use (oracle construction is pure per item, so at most t
// oracles are live at once regardless of batch size); query meters are
// recorded per pair and summed in (item, copy) order, matching repeated
// ProcessCNF calls exactly.
func (c *CNFStream) ProcessCNFBatch(fs []*formula.CNF) {
	for _, f := range fs {
		if f.N != c.n {
			panic("setstream: CNF variable count mismatch")
		}
	}
	if len(fs) == 0 {
		return
	}
	queries := make([][]int64, len(fs))
	for k := range queries {
		queries[k] = make([]int64, len(c.s.copies))
	}
	runCopies(len(c.s.copies), c.s.workers, func(i int) {
		cp := c.s.copies[i]
		for k, f := range fs {
			src := oracle.NewCNFSource(f)
			c.s.absorb(cp, counting.FindMinOracle(src, cp.h, c.s.thresh))
			queries[k][i] = src.Queries()
		}
	})
	for k := range fs {
		for _, q := range queries[k] {
			c.Queries += q
		}
	}
}

// Estimate returns the (ε, δ)-approximation of the union size.
func (c *CNFStream) Estimate() float64 { return c.s.Estimate() }

// WeightedDNF pairs a DNF with the dyadic weight function of Section 5:
// ρ(xᵢ) = Num[i] / 2^Bits[i].
type WeightedDNF struct {
	D *formula.DNF
	W exact.WeightFunc
}

// TermBox converts term t to its d-dimensional box under the weighted
// reduction. The paper maps xᵢ → [1, kᵢ] and ¬xᵢ → [kᵢ+1, 2^mᵢ]; we shift
// by one to [0, kᵢ−1] and [kᵢ, 2^mᵢ−1] so every dimension fits in mᵢ bits —
// the measure of each interval, hence the reduction, is unchanged.
func (wd WeightedDNF) TermBox(t formula.Term) (formula.MultiRange, bool) {
	norm, ok := t.Normalize()
	if !ok {
		return formula.MultiRange{}, false
	}
	fixed, val := formula.TermFixed(wd.D.N, norm)
	dims := make([]formula.Range, wd.D.N)
	for i := 0; i < wd.D.N; i++ {
		bits := wd.W.Bits[i]
		maxV := uint64(1)<<uint(bits) - 1
		switch {
		case !fixed[i]:
			dims[i] = formula.Range{Lo: 0, Hi: maxV, Bits: bits}
		case val.Get(i):
			dims[i] = formula.Range{Lo: 0, Hi: wd.W.Num[i] - 1, Bits: bits}
		default:
			dims[i] = formula.Range{Lo: wd.W.Num[i], Hi: maxV, Bits: bits}
		}
	}
	return formula.MultiRange{Dims: dims}, true
}

// WeightedCount estimates W(φ) = Σ_{σ⊨φ} W(σ) by streaming each term's box
// through a RangeStream and dividing the union size by 2^Σmᵢ — the
// reduction from weighted #DNF to F0 over d-dimensional ranges.
func WeightedCount(wd WeightedDNF, opts Options) float64 {
	if !wd.W.Validate(wd.D.N) {
		panic("setstream: invalid weight function")
	}
	rs := NewRangeStream(wd.W.Bits, opts)
	for _, t := range wd.D.Terms {
		box, ok := wd.TermBox(t)
		if !ok {
			continue
		}
		if err := rs.ProcessRange(box); err != nil {
			panic(err) // boxes are valid by construction
		}
	}
	totalBits := 0
	for _, b := range wd.W.Bits {
		totalBits += b
	}
	return rs.Estimate() / math.Pow(2, float64(totalBits))
}
