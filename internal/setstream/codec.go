// Wire codec for the set-stream estimators: versioned snapshot/restore of
// the Minimum-style sketch each stream carries (hash draws plus retained
// minima), the stream's shape (universe width or per-dimension widths),
// and the CNF oracle-query meter. A decoded stream is Merge-compatible
// with a live same-seed stream: the shared-draw precondition (sameLinear)
// is checked against the decoded Ax+b structure, exactly as for in-process
// sketches.
//
// Encoding is canonical — minima in rank order, dimensions in declaration
// order — so encode(decode(encode(s))) == encode(s) and a decoded stream's
// estimates, merges, and subsequent ingestion are bit-identical to the
// original's (determinism invariant 6).
package setstream

import (
	"mcf0/internal/bitvec"
	"mcf0/internal/hash"
	"mcf0/internal/par"
	"mcf0/internal/wire"
)

// Codec versions, one per stream kind; bump when a payload layout changes.
const (
	dnfStreamVersion         byte = 1
	rangeStreamVersion       byte = 1
	progressionStreamVersion byte = 1
	affineStreamVersion      byte = 1
	cnfStreamVersion         byte = 1
)

// Decode bounds: far beyond any real configuration, tight enough that
// corrupt counts can never size pathological allocations.
const (
	maxStreamBits = 1 << 16
	maxStreamDims = 1 << 10
	maxCopies     = 1 << 16
	maxThresh     = 1 << 24
)

// appendMinSketch emits the nested sketch body: thresh, t, then per copy
// the hash draw and the retained minima in rank order. It carries no
// header of its own — the enclosing stream message's version governs it.
func appendMinSketch(dst []byte, s *minSketch) []byte {
	dst = wire.AppendInt(dst, s.thresh)
	dst = wire.AppendInt(dst, len(s.copies))
	for _, c := range s.copies {
		dst, _ = hash.AppendFunc(dst, c.h)
		dst = wire.AppendInt(dst, len(c.vals))
		for _, v := range c.vals {
			dst = wire.AppendBitVec(dst, v)
		}
	}
	return dst
}

// decodeMinSketch reads a nested sketch body over an n-bit universe
// (minima are 3n-bit Toeplitz outputs), validating hash dimensions and
// strictly-ascending rank order.
func decodeMinSketch(r *wire.Reader, n, parallelism int) *minSketch {
	thresh := r.Int(maxThresh)
	t := r.Int(maxCopies)
	if r.Err() != nil {
		return nil
	}
	if thresh < 1 || t < 1 {
		r.Corrupt("set-stream sketch shape thresh=%d t=%d", thresh, t)
		return nil
	}
	s := &minSketch{thresh: thresh, workers: par.Workers(parallelism)}
	for i := 0; i < t; i++ {
		h := hash.DecodeLinear(r)
		cnt := r.Int(thresh)
		if r.Err() != nil {
			return nil
		}
		if h.InBits() != n || h.OutBits() != 3*n {
			r.Corrupt("set-stream copy %d hash is %d->%d bits, want %d->%d",
				i, h.InBits(), h.OutBits(), n, 3*n)
			return nil
		}
		c := &sketchCopy{h: h}
		for j := 0; j < cnt; j++ {
			v := bitvec.New(3 * n)
			r.BitVecInto(v)
			if r.Err() != nil {
				return nil
			}
			if j > 0 && !c.vals[j-1].Less(v) {
				r.Corrupt("set-stream copy %d minima are not strictly ascending", i)
				return nil
			}
			c.vals = append(c.vals, v)
		}
		s.copies = append(s.copies, c)
	}
	return s
}

// streamBits validates a universe width read off the wire.
func streamBits(r *wire.Reader, n int) bool {
	if r.Err() != nil {
		return false
	}
	if n < 1 {
		r.Corrupt("set stream over empty universe")
		return false
	}
	return true
}

// appendDims emits a per-dimension width list.
func appendDims(dst []byte, bits []int) []byte {
	dst = wire.AppendInt(dst, len(bits))
	for _, b := range bits {
		dst = wire.AppendInt(dst, b)
	}
	return dst
}

// decodeDims reads a per-dimension width list and its total.
func decodeDims(r *wire.Reader) (bits []int, total int) {
	d := r.Int(maxStreamDims)
	if r.Err() != nil {
		return nil, 0
	}
	if d < 1 {
		r.Corrupt("set stream with no dimensions")
		return nil, 0
	}
	bits = make([]int, d)
	for i := range bits {
		bits[i] = r.Int(maxStreamBits)
		if r.Err() != nil {
			return nil, 0
		}
		if bits[i] < 1 {
			r.Corrupt("set-stream dimension %d has empty width", i)
			return nil, 0
		}
		total += bits[i]
	}
	if total > maxStreamBits {
		r.Corrupt("set-stream dimensions total %d bits, exceeding decode bound", total)
		return nil, 0
	}
	return bits, total
}

// N returns the universe width (variable count) the stream was built over.
func (d *DNFStream) N() int { return d.n }

// N returns the universe width the stream was built over.
func (s *AffineStream) N() int { return s.n }

// N returns the universe width (variable count) the stream was built over.
func (c *CNFStream) N() int { return c.n }

// Dims returns a copy of the per-dimension bit widths.
func (rs *RangeStream) Dims() []int { return append([]int(nil), rs.bits...) }

// Dims returns a copy of the per-dimension bit widths.
func (p *ProgressionStream) Dims() []int { return append([]int(nil), p.bits...) }

// ---- DNFStream ----

// AppendBinary appends the framed wire form: n, then the sketch body.
func (d *DNFStream) AppendBinary(dst []byte) []byte {
	dst = wire.AppendHeader(dst, wire.KindDNFStream, dnfStreamVersion)
	dst = wire.AppendInt(dst, d.n)
	return appendMinSketch(dst, d.s)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (d *DNFStream) MarshalBinary() ([]byte, error) { return d.AppendBinary(nil), nil }

// DecodeDNFStreamFrom decodes one framed DNF stream at the reader's
// position; failures land in the reader.
func DecodeDNFStreamFrom(r *wire.Reader, parallelism int) *DNFStream {
	v := r.Header(wire.KindDNFStream)
	if !r.CheckVersion(wire.KindDNFStream, v, dnfStreamVersion) {
		return nil
	}
	n := r.Int(maxStreamBits)
	if !streamBits(r, n) {
		return nil
	}
	s := decodeMinSketch(r, n, parallelism)
	if s == nil {
		return nil
	}
	return &DNFStream{n: n, s: s}
}

// DecodeDNFStream decodes a snapshot produced by MarshalBinary, which must
// span data exactly. parallelism configures the restored stream's worker
// pool as Options.Parallelism would.
func DecodeDNFStream(data []byte, parallelism int) (*DNFStream, error) {
	r := wire.NewReader(data)
	d := DecodeDNFStreamFrom(r, parallelism)
	if err := r.Close(); err != nil {
		return nil, err
	}
	return d, nil
}

// ---- RangeStream ----

// AppendBinary appends the framed wire form: the per-dimension widths,
// then the inner sketch body.
func (rs *RangeStream) AppendBinary(dst []byte) []byte {
	dst = wire.AppendHeader(dst, wire.KindRangeStream, rangeStreamVersion)
	dst = appendDims(dst, rs.bits)
	return appendMinSketch(dst, rs.inner.s)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (rs *RangeStream) MarshalBinary() ([]byte, error) { return rs.AppendBinary(nil), nil }

// DecodeRangeStreamFrom decodes one framed range stream at the reader's
// position; failures land in the reader.
func DecodeRangeStreamFrom(r *wire.Reader, parallelism int) *RangeStream {
	v := r.Header(wire.KindRangeStream)
	if !r.CheckVersion(wire.KindRangeStream, v, rangeStreamVersion) {
		return nil
	}
	bits, total := decodeDims(r)
	if r.Err() != nil {
		return nil
	}
	s := decodeMinSketch(r, total, parallelism)
	if s == nil {
		return nil
	}
	return &RangeStream{inner: &DNFStream{n: total, s: s}, bits: bits}
}

// DecodeRangeStream decodes a snapshot produced by MarshalBinary.
func DecodeRangeStream(data []byte, parallelism int) (*RangeStream, error) {
	r := wire.NewReader(data)
	rs := DecodeRangeStreamFrom(r, parallelism)
	if err := r.Close(); err != nil {
		return nil, err
	}
	return rs, nil
}

// ---- ProgressionStream ----

// AppendBinary appends the framed wire form: the per-dimension widths,
// then the inner sketch body.
func (p *ProgressionStream) AppendBinary(dst []byte) []byte {
	dst = wire.AppendHeader(dst, wire.KindProgressionStream, progressionStreamVersion)
	dst = appendDims(dst, p.bits)
	return appendMinSketch(dst, p.inner.s)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (p *ProgressionStream) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil), nil }

// DecodeProgressionStreamFrom decodes one framed progression stream at the
// reader's position; failures land in the reader.
func DecodeProgressionStreamFrom(r *wire.Reader, parallelism int) *ProgressionStream {
	v := r.Header(wire.KindProgressionStream)
	if !r.CheckVersion(wire.KindProgressionStream, v, progressionStreamVersion) {
		return nil
	}
	bits, total := decodeDims(r)
	if r.Err() != nil {
		return nil
	}
	s := decodeMinSketch(r, total, parallelism)
	if s == nil {
		return nil
	}
	return &ProgressionStream{inner: &DNFStream{n: total, s: s}, bits: bits}
}

// DecodeProgressionStream decodes a snapshot produced by MarshalBinary.
func DecodeProgressionStream(data []byte, parallelism int) (*ProgressionStream, error) {
	r := wire.NewReader(data)
	p := DecodeProgressionStreamFrom(r, parallelism)
	if err := r.Close(); err != nil {
		return nil, err
	}
	return p, nil
}

// ---- AffineStream ----

// AppendBinary appends the framed wire form: n, then the sketch body.
func (s *AffineStream) AppendBinary(dst []byte) []byte {
	dst = wire.AppendHeader(dst, wire.KindAffineStream, affineStreamVersion)
	dst = wire.AppendInt(dst, s.n)
	return appendMinSketch(dst, s.s)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *AffineStream) MarshalBinary() ([]byte, error) { return s.AppendBinary(nil), nil }

// DecodeAffineStreamFrom decodes one framed affine stream at the reader's
// position; failures land in the reader.
func DecodeAffineStreamFrom(r *wire.Reader, parallelism int) *AffineStream {
	v := r.Header(wire.KindAffineStream)
	if !r.CheckVersion(wire.KindAffineStream, v, affineStreamVersion) {
		return nil
	}
	n := r.Int(maxStreamBits)
	if !streamBits(r, n) {
		return nil
	}
	s := decodeMinSketch(r, n, parallelism)
	if s == nil {
		return nil
	}
	return &AffineStream{n: n, s: s}
}

// DecodeAffineStream decodes a snapshot produced by MarshalBinary.
func DecodeAffineStream(data []byte, parallelism int) (*AffineStream, error) {
	r := wire.NewReader(data)
	s := DecodeAffineStreamFrom(r, parallelism)
	if err := r.Close(); err != nil {
		return nil, err
	}
	return s, nil
}

// ---- CNFStream ----

// AppendBinary appends the framed wire form: n, the oracle-query meter,
// then the sketch body.
func (c *CNFStream) AppendBinary(dst []byte) []byte {
	dst = wire.AppendHeader(dst, wire.KindCNFStream, cnfStreamVersion)
	dst = wire.AppendInt(dst, c.n)
	dst = wire.AppendUvarint(dst, uint64(c.Queries))
	return appendMinSketch(dst, c.s)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *CNFStream) MarshalBinary() ([]byte, error) { return c.AppendBinary(nil), nil }

// DecodeCNFStreamFrom decodes one framed CNF stream at the reader's
// position; failures land in the reader.
func DecodeCNFStreamFrom(r *wire.Reader, parallelism int) *CNFStream {
	v := r.Header(wire.KindCNFStream)
	if !r.CheckVersion(wire.KindCNFStream, v, cnfStreamVersion) {
		return nil
	}
	n := r.Int(maxStreamBits)
	if !streamBits(r, n) {
		return nil
	}
	queries := r.Uvarint()
	if r.Err() != nil {
		return nil
	}
	if queries > 1<<62 {
		r.Corrupt("CNF query meter overflows")
		return nil
	}
	s := decodeMinSketch(r, n, parallelism)
	if s == nil {
		return nil
	}
	return &CNFStream{n: n, s: s, Queries: int64(queries)}
}

// DecodeCNFStream decodes a snapshot produced by MarshalBinary.
func DecodeCNFStream(data []byte, parallelism int) (*CNFStream, error) {
	r := wire.NewReader(data)
	c := DecodeCNFStreamFrom(r, parallelism)
	if err := r.Close(); err != nil {
		return nil, err
	}
	return c, nil
}
