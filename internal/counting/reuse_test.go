package counting

import (
	"reflect"
	"testing"

	"mcf0/internal/formula"
	"mcf0/internal/oracle"
	"mcf0/internal/stats"
)

// Regression tests for oracle-level solver reuse: a CNFSource keeps one
// incremental CDCL solver across queries (and across whole ApproxMC runs),
// and its results must be indistinguishable from a fresh source per run, on
// every E1 configuration (linear and binary prefix search, serial and
// parallel trials).

func e1Options(seed uint64, binary bool, par int) Options {
	return Options{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 7,
		RNG: stats.NewRNG(seed), BinarySearch: binary, Parallelism: par}
}

func TestApproxMCReusedSolverMatchesFresh(t *testing.T) {
	rng := stats.NewRNG(811)
	cnf, _ := formula.PlantedKCNF(14, 21, 3, rng)
	for _, binary := range []bool{false, true} {
		for _, par := range []int{1, 4} {
			reused := oracle.NewCNFSource(cnf)
			for seed := uint64(0); seed < 3; seed++ {
				fresh := oracle.NewCNFSource(cnf)
				want := ApproxMC(fresh, e1Options(seed, binary, par))
				got := ApproxMC(reused, e1Options(seed, binary, par))
				if got.Estimate != want.Estimate {
					t.Fatalf("bin=%v par=%d seed=%d: reused estimate %g, fresh %g",
						binary, par, seed, got.Estimate, want.Estimate)
				}
				if !reflect.DeepEqual(got.PerIteration, want.PerIteration) {
					t.Fatalf("bin=%v par=%d seed=%d: per-iteration %v vs %v",
						binary, par, seed, got.PerIteration, want.PerIteration)
				}
				if got.OracleQueries != want.OracleQueries {
					t.Fatalf("bin=%v par=%d seed=%d: reused queries %d, fresh %d",
						binary, par, seed, got.OracleQueries, want.OracleQueries)
				}
			}
		}
	}
}

// TestApproxMCParallelismInvariantCNF: estimates and query totals for a
// fixed seed are identical at every parallelism level (forks per trial vs
// one shared serial solver).
func TestApproxMCParallelismInvariantCNF(t *testing.T) {
	rng := stats.NewRNG(821)
	cnf, _ := formula.PlantedKCNF(12, 18, 3, rng)
	for _, binary := range []bool{false, true} {
		base := ApproxMC(oracle.NewCNFSource(cnf), e1Options(5, binary, 1))
		for _, par := range []int{2, 4, 8} {
			got := ApproxMC(oracle.NewCNFSource(cnf), e1Options(5, binary, par))
			if got.Estimate != base.Estimate || !reflect.DeepEqual(got.PerIteration, base.PerIteration) {
				t.Fatalf("bin=%v par=%d: estimate %g/%v, serial %g/%v",
					binary, par, got.Estimate, got.PerIteration, base.Estimate, base.PerIteration)
			}
			if got.OracleQueries != base.OracleQueries {
				t.Fatalf("bin=%v par=%d: queries %d, serial %d", binary, par, got.OracleQueries, base.OracleQueries)
			}
		}
	}
}

// TestSolverStatsAggregate: the aggregated CDCL counters cover work done by
// forked trial solvers and survive internal rebuilds.
func TestSolverStatsAggregate(t *testing.T) {
	rng := stats.NewRNG(823)
	cnf, _ := formula.PlantedKCNF(12, 18, 3, rng)
	src := oracle.NewCNFSource(cnf)
	ApproxMC(src, e1Options(1, false, 4))
	st := src.SolverStats()
	if st.Decisions == 0 && st.Propagations == 0 {
		t.Fatalf("aggregated solver stats empty: %+v", st)
	}
}
