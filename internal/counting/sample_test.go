package counting

import (
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/formula"
	"mcf0/internal/hash"
	"mcf0/internal/oracle"
	"mcf0/internal/stats"
)

func TestSampleReturnsSolutions(t *testing.T) {
	rng := stats.NewRNG(301)
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(4)
		d := formula.RandomDNF(n, 3, 4, rng)
		src := oracle.NewDNFSource(d)
		samples := Sample(src, 20, testOpts(uint64(trial)))
		if len(samples) != 20 {
			t.Fatalf("trial %d: got %d samples", trial, len(samples))
		}
		for _, x := range samples {
			if !d.Eval(x) {
				t.Fatalf("trial %d: sample %v is not a solution", trial, x)
			}
		}
	}
}

func TestSampleUnsat(t *testing.T) {
	c := formula.NewCNF(4)
	c.AddClause(formula.Clause{formula.Pos(0)})
	c.AddClause(formula.Clause{formula.Negl(0)})
	if got := Sample(oracle.NewCNFSource(c), 5, testOpts(1)); got != nil {
		t.Fatalf("unsat formula produced %d samples", len(got))
	}
}

// TestSampleApproximatelyUniform draws many samples from a formula with a
// known small solution set and checks every solution is hit with frequency
// within a loose factor of uniform — the JVV-style guarantee, empirically.
func TestSampleApproximatelyUniform(t *testing.T) {
	// φ over 9 variables: x0..x4 fixed true → 16 solutions over x5..x8.
	c := formula.NewCNF(9)
	for v := 0; v < 5; v++ {
		c.AddClause(formula.Clause{formula.Pos(v)})
	}
	src := oracle.NewCNFSource(c)
	const perSolution = 40
	const total = 16 * perSolution
	opts := testOpts(7)
	counts := map[string]int{}
	for _, x := range Sample(src, total, opts) {
		if !c.Eval(x) {
			t.Fatal("non-solution sampled")
		}
		counts[x.Key()]++
	}
	if len(counts) != 16 {
		t.Fatalf("sampler hit %d of 16 solutions", len(counts))
	}
	for k, got := range counts {
		if got < perSolution/4 || got > perSolution*4 {
			t.Errorf("solution %x sampled %d times (expected ≈%d, factor-4 band)", k, got, perSolution)
		}
	}
}

func TestSampleCNFWithXORStructure(t *testing.T) {
	// Samples must respect XOR-rich structure: φ = (x0 ∨ x1) with the SAT
	// backend; every sample satisfies it.
	c := formula.NewCNF(10)
	c.AddClause(formula.Clause{formula.Pos(0), formula.Pos(1)})
	src := oracle.NewCNFSource(c)
	for _, x := range Sample(src, 10, testOpts(3)) {
		if !c.Eval(x) {
			t.Fatal("sample violates formula")
		}
	}
}

func TestSparseFamilyShape(t *testing.T) {
	rng := stats.NewRNG(303)
	fam := hash.NewSparse(64, 64, 0.1)
	if fam.Name() != "sparse" || fam.Independence() != 1 || fam.Density() != 0.1 {
		t.Fatal("sparse family metadata wrong")
	}
	totalOnes := 0
	const draws = 20
	for i := 0; i < draws; i++ {
		h := fam.Draw(rng.Uint64).(*hash.Linear)
		for r := 0; r < h.A.Rows(); r++ {
			if h.A.Row(r).IsZero() {
				t.Fatal("sparse draw produced an empty row")
			}
			totalOnes += h.A.Row(r).PopCount()
		}
	}
	mean := float64(totalOnes) / float64(draws*64)
	// Expected ≈ 6.4 ones per row at density 0.1 over 64 columns.
	if mean < 3 || mean > 12 {
		t.Fatalf("sparse row weight mean %.1f far from 6.4", mean)
	}
}

// TestSparseApproxMCStillAccurate: the §6 research question, empirically —
// sparse XORs keep ApproxMC in-band on small instances while making rows
// much lighter.
func TestSparseApproxMCStillAccurate(t *testing.T) {
	rng := stats.NewRNG(307)
	d := formula.RandomDNF(14, 6, 4, rng)
	src := oracle.NewDNFSource(d)
	var truth float64
	{
		// ground truth via dense ApproxMC's exact brute force companion
		cnt := 0
		for v := uint64(0); v < 1<<14; v++ {
			if d.Eval(bitvec.FromUint64(v, 14)) {
				cnt++
			}
		}
		truth = float64(cnt)
	}
	ok := 0
	const trials = 10
	for s := 0; s < trials; s++ {
		o := testOpts(uint64(400 + s))
		o.Family = hash.NewSparse(14, 14, 0.25)
		res := ApproxMC(src, o)
		if stats.WithinFactor(res.Estimate, truth, 0.8) {
			ok++
		}
	}
	if ok < trials/2 {
		t.Errorf("sparse-XOR ApproxMC in-band only %d/%d (truth %g)", ok, trials, truth)
	}
}
