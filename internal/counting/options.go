// Package counting implements the model-counting algorithms of the paper:
//
//   - BoundedSAT (Proposition 1) and ApproxMC (Algorithm 5), the
//     Bucketing-based counter, with both the paper's linear search and the
//     ApproxMC2 binary search over prefix lengths;
//   - FindMin (Proposition 2) and ApproxModelCountMin (Algorithm 6), the
//     Minimum-based counter — an FPRAS for DNF;
//   - FindMaxRange (Proposition 3) and ApproxModelCountEst (Algorithm 7),
//     the Estimation-based counter, plus the Flajolet–Martin rough counter
//     used to supply its range parameter r;
//   - a Karp–Luby Monte-Carlo FPRAS for #DNF as the classical baseline.
//
// All algorithms run against the oracle abstractions of internal/oracle, so
// accuracy experiments and oracle-call accounting are backend-independent.
//
// The 35·log₂(1/δ) independent median trials of every counter run across a
// bounded worker pool (Options.Parallelism, default GOMAXPROCS). All
// randomness is drawn serially before the pool starts and stateful oracle
// backends are forked per trial (oracle.Forkable), so estimates,
// PerIteration values, and oracle-query totals for a fixed seed are
// identical at every parallelism level.
package counting

import (
	"math"

	"mcf0/internal/hash"
	"mcf0/internal/par"
	"mcf0/internal/stats"
)

// Options parameterises the (ε, δ) algorithms. The zero value selects the
// paper's constants: Thresh = 96/ε² and t = 35·log₂(1/δ) iterations with
// ε = 0.8 and δ = 0.2. Tests dial Thresh and Iterations down explicitly.
type Options struct {
	// Epsilon is the multiplicative tolerance; estimates land within
	// [c/(1+ε), c(1+ε)] with probability ≥ 1−δ. Defaults to 0.8.
	Epsilon float64
	// Delta is the failure probability. Defaults to 0.2.
	Delta float64
	// Thresh overrides the bucket/minimum size 96/ε² when positive.
	Thresh int
	// Iterations overrides the median-trial count 35·log₂(1/δ) when
	// positive.
	Iterations int
	// BinarySearch selects the ApproxMC2-style galloping/binary search
	// over prefix lengths instead of Algorithm 5's linear scan.
	BinarySearch bool
	// Family overrides the linear hash family (ablation A1: H_Toeplitz vs
	// H_xor). It must have the same shape as the default — n → n for
	// ApproxMC, n → 3n for ApproxModelCountMin. Nil selects H_Toeplitz.
	Family hash.Family
	// RNG supplies randomness; a fixed-seed generator is used when nil so
	// that every run is reproducible by default.
	RNG *stats.RNG
	// Parallelism bounds the worker pool that runs the independent median
	// trials. 0 selects GOMAXPROCS; 1 forces serial execution; values above
	// the trial count are clamped. Hash functions (and per-trial RNG
	// streams where an algorithm needs in-trial randomness) are always
	// drawn serially up front, so for a fixed seed the estimate,
	// PerIteration values, and oracle-query totals are identical at every
	// parallelism level.
	Parallelism int
}

func (o Options) epsilon() float64 {
	if o.Epsilon > 0 {
		return o.Epsilon
	}
	return 0.8
}

func (o Options) delta() float64 {
	if o.Delta > 0 && o.Delta < 1 {
		return o.Delta
	}
	return 0.2
}

// thresh returns the paper's Thresh = ⌈96/ε²⌉ unless overridden.
func (o Options) thresh() int {
	if o.Thresh > 0 {
		return o.Thresh
	}
	return int(math.Ceil(96 / (o.epsilon() * o.epsilon())))
}

// iterations returns the paper's t = ⌈35·log₂(1/δ)⌉ unless overridden.
func (o Options) iterations() int {
	if o.Iterations > 0 {
		return o.Iterations
	}
	t := int(math.Ceil(35 * math.Log2(1/o.delta())))
	if t < 1 {
		t = 1
	}
	return t
}

func (o Options) rng() *stats.RNG {
	if o.RNG != nil {
		return o.RNG
	}
	return stats.NewRNG(0x6d63663073656564) // "mcf0seed"
}

// parallelism returns the effective worker bound (≥ 1).
func (o Options) parallelism() int { return par.Workers(o.Parallelism) }

// Result reports an estimate together with the work that produced it.
type Result struct {
	// Estimate is the (ε, δ)-approximation of |Sol(φ)|.
	Estimate float64
	// OracleQueries is the cumulative NP-oracle (or per-term solve) count.
	OracleQueries int64
	// Iterations is the number of median trials executed.
	Iterations int
	// PerIteration holds each trial's individual estimate.
	PerIteration []float64
}
