package counting

import (
	"mcf0/internal/oracle"
	"mcf0/internal/par"
)

// This file adapts the internal/par worker pools to the oracle backends.
// Trials use the dynamic pool (par.Run): per-trial cost is dominated by
// SAT-oracle calls whose cost varies by orders of magnitude, so dynamic
// index hand-out balances load where the static block partition the sketch
// layers use (par.RunSharded) would idle workers. The median-trial loops
// of Algorithms 5–7 (and the Karp–Luby baseline) are embarrassingly
// parallel once two sequential dependencies are removed:
//
//   - randomness: all hash functions and per-trial RNG seeds are drawn
//     serially before the pool starts, in the same order a serial run
//     draws them, so a fixed seed yields bit-identical trials at any
//     parallelism level;
//   - oracle state: stateful backends are forked per trial via
//     oracle.Forkable (each fork meters its own queries, summed back into
//     the result); backends that cannot fork force serial execution.

// runTrials executes fn(i) for i in [0, t) on up to workers goroutines.
// fn must write results only to its own trial slot; when workers > 1 it is
// invoked concurrently.
func runTrials(t, workers int, fn func(i int)) { par.Run(t, workers, fn) }

// trialSources hands each trial an oracle handle that is safe for the
// chosen worker count.
type trialSources struct {
	shared oracle.Source
	forks  []oracle.Source
}

// newTrialSources prepares per-trial sources for t trials. When workers > 1
// and src can fork, every trial gets an independent fork; otherwise all
// trials share src and the returned worker bound collapses to 1.
func newTrialSources(src oracle.Source, t, workers int) (trialSources, int) {
	if workers <= 1 || t <= 1 {
		return trialSources{shared: src}, 1
	}
	f, ok := src.(oracle.Forkable)
	if !ok {
		return trialSources{shared: src}, 1
	}
	forks := make([]oracle.Source, t)
	for i := range forks {
		forks[i] = f.Fork()
	}
	return trialSources{forks: forks}, workers
}

// at returns trial i's source.
func (ts trialSources) at(i int) oracle.Source {
	if ts.forks != nil {
		return ts.forks[i]
	}
	return ts.shared
}

// queriesSince returns the oracle calls consumed by the trials: the shared
// source's meter delta, or the sum over fork meters (forks start at zero).
func (ts trialSources) queriesSince(before int64) int64 {
	if ts.forks == nil {
		return ts.shared.Queries() - before
	}
	var total int64
	for _, f := range ts.forks {
		total += f.Queries()
	}
	return total
}

// trialTesters is the TrailingZeroTester analog of trialSources.
type trialTesters struct {
	shared oracle.TrailingZeroTester
	forks  []oracle.TrailingZeroTester
}

// newTrialTesters prepares per-trial testers, collapsing to a shared
// serial tester when tz cannot fork.
func newTrialTesters(tz oracle.TrailingZeroTester, t, workers int) (trialTesters, int) {
	if workers <= 1 || t <= 1 {
		return trialTesters{shared: tz}, 1
	}
	forks := make([]oracle.TrailingZeroTester, t)
	for i := range forks {
		fork, ok := oracle.ForkTrailingZeroTester(tz)
		if !ok {
			return trialTesters{shared: tz}, 1
		}
		forks[i] = fork
	}
	return trialTesters{forks: forks}, workers
}

// at returns trial i's tester.
func (tt trialTesters) at(i int) oracle.TrailingZeroTester {
	if tt.forks != nil {
		return tt.forks[i]
	}
	return tt.shared
}

// queriesSince mirrors trialSources.queriesSince.
func (tt trialTesters) queriesSince(before int64) int64 {
	if tt.forks == nil {
		return tt.shared.Queries() - before
	}
	var total int64
	for _, f := range tt.forks {
		total += f.Queries()
	}
	return total
}
