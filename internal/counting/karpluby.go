package counting

import (
	"math"

	"mcf0/internal/bitvec"
	"mcf0/internal/formula"
	"mcf0/internal/stats"
)

// KarpLuby is the classical Monte-Carlo FPRAS for #DNF (Karp–Luby 1983,
// with the canonical-witness estimator of Karp–Luby–Madras). It is the
// baseline the paper's hashing-based DNF counters are compared against
// (ablation A3 / the empirical-study direction of Section 3.5).
//
// The estimator samples a term i with probability |Tᵢ| / Σⱼ|Tⱼ|, then a
// uniform solution x of Tᵢ, and scores 1 iff i is the first term
// satisfied by x; the union size is M·E[score]. A median of means gives
// the (ε, δ) guarantee with O(k/ε² · log(1/δ)) samples.
func KarpLuby(d *formula.DNF, opts Options) Result {
	t := opts.iterations()
	res := Result{Iterations: t}
	rng := opts.rng()
	k := len(d.Terms)
	if k == 0 {
		res.Estimate = 0
		res.PerIteration = make([]float64, t)
		return res
	}
	// Term weights |Tᵢ| = 2^(n − widthᵢ); float64 is exact here for
	// n ≤ 53 and adequate beyond.
	weights := make([]float64, k)
	norms := make([]formula.Term, k)
	totalW := 0.0
	for i, tm := range d.Terms {
		norm, ok := tm.Normalize()
		if !ok {
			weights[i] = 0
			continue
		}
		norms[i] = norm
		weights[i] = math.Pow(2, float64(d.N-len(norm)))
		totalW += weights[i]
	}
	if totalW == 0 {
		res.Estimate = 0
		res.PerIteration = make([]float64, t)
		return res
	}
	samplesPerGroup := int(math.Ceil(8 * float64(k) / (opts.epsilon() * opts.epsilon())))
	// Each median group gets its own RNG stream seeded serially, so groups
	// are independent of the worker count and a fixed seed reproduces the
	// same estimate at any parallelism level.
	seeds := make([]uint64, t)
	for g := range seeds {
		seeds[g] = rng.Uint64()
	}
	res.PerIteration = make([]float64, t)
	runTrials(t, opts.parallelism(), func(g int) {
		grng := stats.NewRNG(seeds[g])
		x := bitvec.New(d.N)
		hits := 0
		for s := 0; s < samplesPerGroup; s++ {
			i := sampleIndex(weights, totalW, grng)
			sampleTermSolutionInto(norms[i], grng, x)
			if firstSatisfiedTerm(d, x) == i {
				hits++
			}
		}
		res.PerIteration[g] = totalW * float64(hits) / float64(samplesPerGroup)
	})
	res.Estimate = stats.Median(res.PerIteration)
	return res
}

func sampleIndex(weights []float64, total float64, rng *stats.RNG) int {
	target := rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}

// sampleTermSolutionInto draws a uniform satisfying assignment of a
// consistent normalized term into x (caller-owned scratch): fixed literals
// as dictated, free variables uniform.
func sampleTermSolutionInto(t formula.Term, rng *stats.RNG, x bitvec.BitVec) {
	x.FillRandom(rng.Uint64)
	for _, l := range t {
		x.Set(l.Var, !l.Neg)
	}
}

func firstSatisfiedTerm(d *formula.DNF, x bitvec.BitVec) int {
	for i, t := range d.Terms {
		if t.Eval(x) {
			return i
		}
	}
	return -1
}
