package counting

import (
	"sort"
	"testing"
	"testing/quick"

	"mcf0/internal/bitvec"
	"mcf0/internal/formula"
	"mcf0/internal/hash"
	"mcf0/internal/stats"
)

// TestKMinAccMatchesSort: feeding arbitrary values into the accumulator
// must yield the p smallest distinct values in sorted order — checked with
// testing/quick against a sort-and-dedup reference.
func TestKMinAccMatchesSort(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		p := int(pRaw%20) + 1
		acc := newKMinAcc(p)
		for _, v := range raw {
			x := bitvec.FromUint64(uint64(v), 16)
			if acc.candidate(x) {
				acc.insert(x)
			}
		}
		// Reference: sorted distinct values, first p.
		seen := map[uint16]bool{}
		var distinct []uint16
		for _, v := range raw {
			if !seen[v] {
				seen[v] = true
				distinct = append(distinct, v)
			}
		}
		sort.Slice(distinct, func(i, j int) bool { return distinct[i] < distinct[j] })
		if len(distinct) > p {
			distinct = distinct[:p]
		}
		if len(acc.values) != len(distinct) {
			return false
		}
		for i, v := range distinct {
			if acc.values[i].Uint64() != uint64(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestKMinAccSkipsOnlyIneligible: candidate must never reject a value that
// the reference says belongs in the answer.
func TestKMinAccCandidateSound(t *testing.T) {
	acc := newKMinAcc(2)
	a := bitvec.FromUint64(5, 8)
	b := bitvec.FromUint64(3, 8)
	c := bitvec.FromUint64(4, 8)
	for _, v := range []bitvec.BitVec{a, b, c} {
		if acc.candidate(v) {
			acc.insert(v)
		}
	}
	if len(acc.values) != 2 || acc.values[0].Uint64() != 3 || acc.values[1].Uint64() != 4 {
		t.Fatalf("accumulator = %v", acc.values)
	}
	// 7 must be rejected as a candidate now.
	if acc.candidate(bitvec.FromUint64(7, 8)) {
		t.Fatal("candidate accepted value above the p-th minimum")
	}
	// 1 must still be accepted.
	if !acc.candidate(bitvec.FromUint64(1, 8)) {
		t.Fatal("candidate rejected a new minimum")
	}
}

// TestFindMinDNFManyOverlappingTerms stresses the cross-term pruning with
// heavily overlapping terms.
func TestFindMinDNFManyOverlappingTerms(t *testing.T) {
	rng := stats.NewRNG(211)
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(3)
		d := formula.RandomDNF(n, 10, 1+rng.Intn(2), rng) // wide terms, big overlap
		h := hash.NewToeplitz(n, 2*n).Draw(rng.Uint64).(*hash.Linear)
		for _, p := range []int{1, 3, 17} {
			want := bruteHashMins(n, d.Eval, h, p)
			got := FindMinDNF(d, h, p)
			if len(got) != len(want) {
				t.Fatalf("trial %d p=%d: got %d mins, want %d", trial, p, len(got), len(want))
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("trial %d p=%d: min[%d] mismatch", trial, p, i)
				}
			}
		}
	}
}

// TestFindMinDNFDegenerate covers contradictory and full terms.
func TestFindMinDNFDegenerate(t *testing.T) {
	n := 6
	h := hash.NewToeplitz(n, 2*n).Draw(stats.NewRNG(3).Uint64).(*hash.Linear)
	empty := formula.NewDNF(n)
	if got := FindMinDNF(empty, h, 5); len(got) != 0 {
		t.Fatalf("empty DNF produced %d mins", len(got))
	}
	contra := formula.NewDNF(n)
	contra.AddTerm(formula.Term{formula.Pos(0), formula.Negl(0)})
	if got := FindMinDNF(contra, h, 5); len(got) != 0 {
		t.Fatalf("contradictory DNF produced %d mins", len(got))
	}
	taut := formula.NewDNF(n)
	taut.AddTerm(formula.Term{})
	got := FindMinDNF(taut, h, 5)
	want := bruteHashMins(n, func(bitvec.BitVec) bool { return true }, h, 5)
	if len(got) != len(want) {
		t.Fatalf("tautology: got %d mins, want %d", len(got), len(want))
	}
	// Fully-fixed term (no free variables): image is a single point.
	point := formula.NewDNF(n)
	var tm formula.Term
	for v := 0; v < n; v++ {
		tm = append(tm, formula.Pos(v))
	}
	point.AddTerm(tm)
	got = FindMinDNF(point, h, 5)
	if len(got) != 1 {
		t.Fatalf("single-point DNF produced %d mins", len(got))
	}
	all1 := bitvec.New(n)
	for i := 0; i < n; i++ {
		all1.Set(i, true)
	}
	if !got[0].Equal(h.Eval(all1)) {
		t.Fatal("single-point image wrong")
	}
}
