package counting

import (
	"fmt"
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/formula"
	"mcf0/internal/gf2"
	"mcf0/internal/hash"
	"mcf0/internal/stats"
)

// cloneFindMinDNF is the pre-rewind reference: per term, every prefix probe
// clones the base system and replays the prefix (exactly what FindMinDNF
// did before gf2.System gained Mark/Rewind). The production path must stay
// bit-identical to it.
func cloneFindMinDNF(d *formula.DNF, h *hash.Linear, p int) []bitvec.BitVec {
	acc := newKMinAcc(p)
	for _, t := range d.Terms {
		norm, ok := t.Normalize()
		if !ok {
			continue
		}
		fixed, val := formula.TermFixed(d.N, norm)
		free := make([]bool, d.N)
		for i := range free {
			free[i] = !fixed[i]
		}
		aFree := h.A.SelectColumns(free)
		offset := h.A.MulVec(val).Xor(h.B)
		lexMin := func(prefix []bool) (bitvec.BitVec, bool) {
			m := aFree.Rows()
			sys := gf2.NewSystem(aFree.Cols())
			y := bitvec.New(m)
			for i, bit := range prefix {
				sys.Add(aFree.Row(i), bit != offset.Get(i))
				if !sys.Consistent() {
					return bitvec.BitVec{}, false
				}
				if bit {
					y.Set(i, true)
				}
			}
			scratch := bitvec.New(aFree.Cols())
			for i := len(prefix); i < m; i++ {
				rr := sys.ResidualInto(aFree.Row(i), offset.Get(i), scratch)
				if scratch.IsZero() {
					if rr {
						y.Set(i, true)
					}
					continue
				}
				sys.AddPrereduced(scratch, rr)
			}
			return y, true
		}
		cur, found := lexMin(nil)
		for found && acc.candidate(cur) {
			acc.insert(cur)
			m := aFree.Rows()
			next := bitvec.BitVec{}
			found = false
			for r := m - 1; r >= 0 && !found; r-- {
				if cur.Get(r) {
					continue
				}
				prefix := make([]bool, r+1)
				for i := 0; i < r; i++ {
					prefix[i] = cur.Get(i)
				}
				prefix[r] = true
				next, found = lexMin(prefix)
			}
			cur = next
		}
	}
	return acc.values
}

// TestFindMinDNFMatchesCloneReference is the fixed-seed rewind-vs-clone
// differential for the Proposition 2 kernel across widths straddling word
// boundaries.
func TestFindMinDNFMatchesCloneReference(t *testing.T) {
	for _, n := range []int{8, 16, 21, 22, 24} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 8; seed++ {
				rng := stats.NewRNG(0xf1d<<10 ^ seed<<3 ^ uint64(n))
				d := formula.RandomDNF(n, 2+rng.Intn(8), 1+rng.Intn(n/2), rng)
				h := hash.NewToeplitz(n, 3*n).Draw(rng.Uint64).(*hash.Linear)
				p := 1 + rng.Intn(24)
				got := FindMinDNF(d, h, p)
				want := cloneFindMinDNF(d, h, p)
				if len(got) != len(want) {
					t.Fatalf("seed %d p %d: %d values, want %d", seed, p, len(got), len(want))
				}
				for i := range got {
					if !got[i].Equal(want[i]) {
						t.Fatalf("seed %d p %d: value %d = %v, want %v", seed, p, i, got[i], want[i])
					}
				}
			}
		})
	}
}
