package counting

import (
	"math"

	"mcf0/internal/bitvec"
	"mcf0/internal/hash"
	"mcf0/internal/oracle"
	"mcf0/internal/stats"
)

// maxTrailingZeroser is the one-sweep fast path some testers (notably the
// exhaustive ground-truth backend) provide.
type maxTrailingZeroser interface {
	MaxTrailingZeros(h hash.Func) int
}

// FindMaxRange implements Proposition 3: the largest t such that some
// solution's hash value ends in t zero bits, found by binary search with
// O(log n) oracle queries. Returns −1 when φ is unsatisfiable.
func FindMaxRange(tz oracle.TrailingZeroTester, h hash.Func, maxT int) int {
	if fast, ok := tz.(maxTrailingZeroser); ok {
		r := fast.MaxTrailingZeros(h)
		if r > maxT {
			r = maxT
		}
		return r
	}
	if !tz.ExistsTrailingZeros(h, 0) {
		return -1
	}
	lo, hi := 0, maxT // invariant: Exists(lo) true; answer in [lo, hi]
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if tz.ExistsTrailingZeros(h, mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// FindMaxRangeLinear specialises FindMaxRange to linear hash functions:
// "h(x) ends in ≥ t zeros" is the XOR system SuffixZeroSystem(t), so any
// Source backend (in particular the CNF-XOR SAT solver) decides it in one
// query.
func FindMaxRangeLinear(src oracle.Source, h *hash.Linear) int {
	sat := func(t int) bool {
		cons := h.SuffixZeroSystem(t)
		if !cons.Consistent() {
			return false
		}
		return src.Enumerate(cons, 1, func(bitvec.BitVec) bool { return true }) > 0
	}
	if !sat(0) {
		return -1
	}
	lo, hi := 0, h.OutBits()
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if sat(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// ApproxModelCountEst implements Algorithm 7, the Estimation-based counter.
// It draws t × Thresh hash functions from the s-wise independent polynomial
// family (s = O(log 1/ε)), computes each one's maximum trailing-zero count
// over Sol(φ) via FindMaxRange, and combines them with the coupon-collector
// estimator of Lemma 3, which requires a range parameter r with
// 2·F0 ≤ 2^r ≤ 50·F0 (obtain one with RoughCount). n must be ≤ 64 (the
// polynomial family's field size).
// Trials run across Options.Parallelism workers: the t·Thresh hash
// functions are drawn serially up front (in trial-major order, matching a
// serial run), and the tester is forked per trial when it supports
// oracle.Forkable; otherwise execution falls back to serial.
func ApproxModelCountEst(tz oracle.TrailingZeroTester, n, r int, opts Options) Result {
	thresh := opts.thresh()
	t := opts.iterations()
	rng := opts.rng()
	s := swiseIndependence(opts.epsilon())
	fam := hash.NewPoly(n, s)
	hs := make([]hash.Func, t*thresh)
	for i := range hs {
		hs[i] = fam.Draw(rng.Uint64)
	}
	tt, workers := newTrialTesters(tz, t, opts.parallelism())
	before := tz.Queries()
	res := Result{Iterations: t, PerIteration: make([]float64, t)}
	runTrials(t, workers, func(i int) {
		hits := 0
		for j := 0; j < thresh; j++ {
			if FindMaxRange(tt.at(i), hs[i*thresh+j], n) >= r {
				hits++
			}
		}
		res.PerIteration[i] = stats.CouponEstimate(hits, thresh, r)
	})
	res.OracleQueries = tt.queriesSince(before)
	res.Estimate = stats.Median(res.PerIteration)
	return res
}

// swiseIndependence returns the paper's s = 10·log₂(1/ε), at least 2.
func swiseIndependence(eps float64) int {
	s := int(math.Ceil(10 * math.Log2(1/eps)))
	if s < 2 {
		s = 2
	}
	return s
}

// RoughCount is the Flajolet–Martin-style rough counter of Section 3.4: it
// draws pairwise-independent linear hashes from H_xor(n, n), takes the
// maximum trailing-zero count over Sol(φ) for each (one FindMaxRangeLinear,
// i.e. O(log n) oracle calls each), and returns the median estimate 2^r
// together with a range parameter suitable for ApproxModelCountEst.
// A single trial satisfies F0/5 ≤ 2^r ≤ 5·F0 with probability 3/5
// (Alon–Matias–Szegedy); the median over trials concentrates this.
func RoughCount(src oracle.Source, trials int, rng *stats.RNG) (rParam int, estimate float64) {
	n := src.NVars()
	fam := hash.NewXor(n, n)
	var rs []float64
	for i := 0; i < trials; i++ {
		h := fam.Draw(rng.Uint64).(*hash.Linear)
		r := FindMaxRangeLinear(src, h)
		if r < 0 {
			return -1, 0 // unsatisfiable
		}
		rs = append(rs, float64(r))
	}
	med := stats.Median(rs)
	// 2^(med+3) lands in the [2·F0, 50·F0] window when the FM estimate is
	// within its factor-5 band (up to the window's proof slack). The offset
	// is clamped to the hash width: for solution sets denser than 2^(n-1)
	// the window is infeasible, and r = n is the best (slightly biased but
	// still concentrated) choice.
	r := int(med) + 3
	if r > n {
		r = n
	}
	return r, math.Pow(2, med)
}
