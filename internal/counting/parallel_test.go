package counting

import (
	"reflect"
	"testing"

	"mcf0/internal/formula"
	"mcf0/internal/oracle"
	"mcf0/internal/stats"
)

// Determinism regression: for a fixed seed, running the median trials on a
// worker pool (Parallelism > 1) must reproduce the serial run exactly —
// estimate, per-iteration values, and oracle-query totals.

func parOpts(par int) Options {
	return Options{Epsilon: 0.8, Delta: 0.2, Thresh: 16, Iterations: 9,
		RNG: stats.NewRNG(0xdecaf), Parallelism: par}
}

func checkDeterministic(t *testing.T, name string, run func(par int) Result) {
	t.Helper()
	serial := run(1)
	for _, par := range []int{2, 4, 8} {
		got := run(par)
		if got.Estimate != serial.Estimate {
			t.Fatalf("%s: parallelism %d estimate %v, serial %v",
				name, par, got.Estimate, serial.Estimate)
		}
		if !reflect.DeepEqual(got.PerIteration, serial.PerIteration) {
			t.Fatalf("%s: parallelism %d per-iteration %v, serial %v",
				name, par, got.PerIteration, serial.PerIteration)
		}
		if got.OracleQueries != serial.OracleQueries {
			t.Fatalf("%s: parallelism %d oracle queries %d, serial %d",
				name, par, got.OracleQueries, serial.OracleQueries)
		}
		if got.Iterations != serial.Iterations {
			t.Fatalf("%s: parallelism %d iterations %d, serial %d",
				name, par, got.Iterations, serial.Iterations)
		}
	}
}

func TestApproxMCParallelDeterminism(t *testing.T) {
	rng := stats.NewRNG(31)
	d := formula.RandomDNF(12, 6, 4, rng)
	cnf, _ := formula.PlantedKCNF(10, 15, 3, rng)
	checkDeterministic(t, "ApproxMC/DNF", func(par int) Result {
		return ApproxMC(oracle.NewDNFSource(d), parOpts(par))
	})
	checkDeterministic(t, "ApproxMC/CNF", func(par int) Result {
		return ApproxMC(oracle.NewCNFSource(cnf), parOpts(par))
	})
	checkDeterministic(t, "ApproxMC/CNF/binary", func(par int) Result {
		o := parOpts(par)
		o.BinarySearch = true
		return ApproxMC(oracle.NewCNFSource(cnf), o)
	})
}

func TestApproxModelCountMinParallelDeterminism(t *testing.T) {
	rng := stats.NewRNG(32)
	d := formula.RandomDNF(12, 6, 4, rng)
	cnf, _ := formula.PlantedKCNF(8, 12, 3, rng)
	checkDeterministic(t, "Min/DNF", func(par int) Result {
		return ApproxModelCountMinDNF(d, parOpts(par))
	})
	checkDeterministic(t, "Min/Oracle", func(par int) Result {
		o := parOpts(par)
		o.Thresh = 8
		o.Iterations = 5
		return ApproxModelCountMinOracle(oracle.NewCNFSource(cnf), o)
	})
}

func TestApproxModelCountEstParallelDeterminism(t *testing.T) {
	rng := stats.NewRNG(33)
	d := formula.RandomDNF(10, 4, 3, rng)
	tzFor := func() *oracle.Exhaustive { return oracle.NewExhaustive(10, d.Eval) }
	src := oracle.NewDNFSource(d)
	r, _ := RoughCount(src, 5, stats.NewRNG(7))
	if r < 0 {
		t.Fatal("formula unexpectedly unsatisfiable")
	}
	checkDeterministic(t, "Est", func(par int) Result {
		o := parOpts(par)
		o.Thresh = 8
		o.Iterations = 5
		return ApproxModelCountEst(tzFor(), 10, r, o)
	})
}

func TestKarpLubyParallelDeterminism(t *testing.T) {
	rng := stats.NewRNG(34)
	d := formula.RandomDNF(12, 6, 4, rng)
	checkDeterministic(t, "KarpLuby", func(par int) Result {
		return KarpLuby(d, parOpts(par))
	})
}

// A non-forkable source must still work at Parallelism > 1 by falling back
// to serial execution.
type noForkSource struct{ *oracle.DNFSource }

func (s noForkSource) Fork() {} // shadows Forkable with a non-interface method

func TestParallelFallbackForNonForkableSource(t *testing.T) {
	rng := stats.NewRNG(35)
	d := formula.RandomDNF(10, 4, 3, rng)
	serial := ApproxMC(oracle.NewDNFSource(d), parOpts(1))
	got := ApproxMC(noForkSource{oracle.NewDNFSource(d)}, parOpts(4))
	if got.Estimate != serial.Estimate {
		t.Fatalf("fallback estimate %v, want %v", got.Estimate, serial.Estimate)
	}
}
