package counting

import (
	"mcf0/internal/bitvec"
	"mcf0/internal/hash"
	"mcf0/internal/oracle"
)

// Sample draws count near-uniform satisfying assignments of φ, following
// the paper's §6 "Sampling" direction (the Jerrum–Valiant–Vazirani
// counting↔sampling connection realised UniGen-style over the Bucketing
// sketch): each sample draws a fresh h ∈ H_Toeplitz(n, n) and a uniform
// cell target α, grows the prefix length until the cell
// Sol(φ) ∩ h_m⁻¹(α_m) is small, and returns a uniform element of the
// cell. Pairwise independence of the cell partition makes cell membership
// nearly uniform over Sol(φ).
//
// Empty cells (possible once m is deep) are retried with a fresh hash, up
// to a bounded number of attempts per sample; a nil slice is returned only
// if φ is unsatisfiable.
func Sample(src oracle.Source, count int, opts Options) []bitvec.BitVec {
	n := src.NVars()
	thresh := opts.thresh()
	rng := opts.rng()
	fam := hash.NewToeplitz(n, n)

	// Unsatisfiable formulas have nothing to sample.
	if src.Enumerate(nil, 1, func(bitvec.BitVec) bool { return true }) == 0 {
		return nil
	}

	var out []bitvec.BitVec
	const maxAttempts = 64
	for len(out) < count {
		var cell []bitvec.BitVec
		for attempt := 0; attempt < maxAttempts && len(cell) == 0; attempt++ {
			h := fam.Draw(rng.Uint64).(*hash.Linear)
			target := bitvec.Random(n, rng.Uint64)
			cell = sampleCell(src, h, target, thresh)
		}
		if len(cell) == 0 {
			// Degenerate randomness; fall back to the first solution so the
			// call still terminates with valid samples.
			src.Enumerate(nil, 1, func(x bitvec.BitVec) bool {
				cell = append(cell, x)
				return true
			})
		}
		out = append(out, cell[rng.Intn(len(cell))])
	}
	return out
}

// sampleCell finds the deepest prefix length m whose cell
// Sol(φ) ∩ {x : h_m(x) = target_m} is non-empty but below thresh and
// returns its contents; nil when even the first non-full level is empty.
func sampleCell(src oracle.Source, h *hash.Linear, target bitvec.BitVec, thresh int) []bitvec.BitVec {
	n := h.InBits()
	for m := 0; m <= n; m++ {
		cons := h.PrefixEqualSystem(m, target.Prefix(m))
		var cell []bitvec.BitVec
		c := src.Enumerate(cons, thresh, func(x bitvec.BitVec) bool {
			cell = append(cell, x)
			return true
		})
		if c < thresh {
			return cell // may be empty: caller retries with a fresh hash
		}
	}
	return nil
}
