package counting

import (
	"sort"

	"mcf0/internal/bitvec"
	"mcf0/internal/formula"
	"mcf0/internal/gf2"
	"mcf0/internal/hash"
	"mcf0/internal/oracle"
	"mcf0/internal/stats"
)

// FindMinDNF implements Proposition 2's polynomial-time case: the p
// lexicographically smallest elements of h(Sol(φ)) for a DNF φ. Per term,
// the image of h over the term's solution cube is an affine image searched
// with Gaussian elimination.
//
// The walk is pruned across terms: once p values are collected, a term's
// successor chain is abandoned as soon as it exceeds the current p-th
// smallest, so for large k most terms cost a single lex-min computation.
// Each term keeps one ImageSearcher across its whole p-minima walk: the
// searcher's rewindable system makes consecutive Successor probes cost one
// row operation instead of a clone-and-replay of the prefix, and the
// element buffer is reused across steps (values are cloned only when they
// actually enter the accumulator).
func FindMinDNF(d *formula.DNF, h *hash.Linear, p int) []bitvec.BitVec {
	if h.InBits() != d.N {
		panic("counting: hash input width != variable count")
	}
	acc := newKMinAcc(p)
	cur := bitvec.New(h.OutBits())
	for _, t := range d.Terms {
		s, ok := termImageSearcher(d.N, t, h)
		if !ok {
			continue
		}
		found := s.MinInto(cur)
		for found && acc.candidate(cur) {
			acc.insert(cur)
			found = s.SuccessorInto(cur, cur)
		}
	}
	return acc.values
}

// kMinAcc accumulates the p smallest distinct bit vectors seen.
type kMinAcc struct {
	p      int
	values []bitvec.BitVec // sorted ascending, ≤ p entries
}

func newKMinAcc(p int) *kMinAcc { return &kMinAcc{p: p} }

// candidate reports whether v could still enter the accumulator.
func (a *kMinAcc) candidate(v bitvec.BitVec) bool {
	return len(a.values) < a.p || v.Less(a.values[len(a.values)-1])
}

// insert files v into the sorted accumulator, cloning it only when it is
// actually retained — callers may pass a reused scratch vector.
func (a *kMinAcc) insert(v bitvec.BitVec) {
	idx := sort.Search(len(a.values), func(i int) bool { return !a.values[i].Less(v) })
	if idx < len(a.values) && a.values[idx].Equal(v) {
		return
	}
	if len(a.values) < a.p {
		a.values = append(a.values, bitvec.BitVec{})
	} else if idx >= len(a.values) {
		return
	}
	copy(a.values[idx+1:], a.values[idx:len(a.values)-1])
	a.values[idx] = v.Clone()
}

// termImageSearcher builds the affine image {h(x) : x ⊨ t}: fixing the
// term's variables folds their contribution into the offset, leaving the
// hash matrix restricted to the free columns.
func termImageSearcher(n int, t formula.Term, h *hash.Linear) (*gf2.ImageSearcher, bool) {
	norm, ok := t.Normalize()
	if !ok {
		return nil, false
	}
	fixed, val := formula.TermFixed(n, norm)
	free := make([]bool, n)
	for i := range free {
		free[i] = !fixed[i]
	}
	aFree := h.A.SelectColumns(free)
	offset := h.A.MulVec(val).Xor(h.B)
	return gf2.NewImageSearcher(aFree, offset, nil), true
}

// FindMinOracle implements Proposition 2's NP-oracle case: the same prefix
// search, but each prefix-feasibility question "is there x ⊨ φ with
// h(x) starting y₁…yₗ?" becomes one oracle query (the paper's O(p·m) NP
// calls). It works for any Source backend, in particular CNF.
func FindMinOracle(src oracle.Source, h *hash.Linear, p int) []bitvec.BitVec {
	s := newOracleImageSearcher(src, h)
	var out []bitvec.BitVec
	cur, ok := s.lexMinWithPrefix(nil)
	for ok && len(out) < p {
		out = append(out, cur)
		cur, ok = s.successor(cur)
	}
	return out
}

// oracleImageSearcher mirrors gf2.ImageSearcher with feasibility decided by
// the oracle instead of pure linear algebra (φ is not affine for CNF). Like
// its affine sibling it keeps one rewindable constraint system for the
// whole p-minima walk, via the same gf2.PrefixStack: a feasibility probe
// rewinds to the divergence point of its prefix and the committed one
// instead of rebuilding the stacked system row by row. The oracle only
// reads the system's equations during Enumerate (the gf2.System ownership
// contract), so the pooled rows are safe to recycle between probes.
type oracleImageSearcher struct {
	src oracle.Source
	h   *hash.Linear

	ps        *gf2.PrefixStack
	prefixBuf []bool
	curBuf    []bool
}

func newOracleImageSearcher(src oracle.Source, h *hash.Linear) *oracleImageSearcher {
	return &oracleImageSearcher{src: src, h: h, ps: gf2.NewPrefixStack(h.A, h.B, nil)}
}

// feasible reports whether some x ⊨ φ has h(x) starting with prefix.
// Linearly inconsistent prefixes are rejected without an oracle call.
func (s *oracleImageSearcher) feasible(prefix []bool) bool {
	if !s.ps.ExtendTo(prefix) {
		return false
	}
	return s.src.Enumerate(s.ps.System(), 1, func(bitvec.BitVec) bool { return true }) > 0
}

func (s *oracleImageSearcher) lexMinWithPrefix(prefix []bool) (bitvec.BitVec, bool) {
	m := s.h.OutBits()
	if !s.feasible(prefix) {
		return bitvec.BitVec{}, false
	}
	cur := append(s.curBuf[:0], prefix...)
	for i := len(prefix); i < m; i++ {
		cur = append(cur, false)
		if !s.feasible(cur) {
			cur[i] = true
		}
	}
	s.curBuf = cur[:0]
	y := bitvec.New(m)
	for i, bit := range cur {
		if bit {
			y.Set(i, true)
		}
	}
	return y, true
}

func (s *oracleImageSearcher) successor(y bitvec.BitVec) (bitvec.BitVec, bool) {
	m := s.h.OutBits()
	if cap(s.prefixBuf) < m {
		s.prefixBuf = make([]bool, m)
	}
	var next bitvec.BitVec
	found := gf2.SuccessorPrefixes(y, s.prefixBuf[:m], func(prefix []bool) bool {
		var ok bool
		next, ok = s.lexMinWithPrefix(prefix)
		return ok
	})
	return next, found
}

// FindMinFunc produces the p smallest hashed solutions for a given hash;
// ApproxModelCountMin is generic over it so the DNF fast path and the
// CNF oracle path share the estimator.
type FindMinFunc func(h *hash.Linear, p int) []bitvec.BitVec

// ApproxModelCountMin implements Algorithm 6, the Minimum-based counter:
// each trial draws h from H_Toeplitz(n, 3n), computes the Thresh smallest
// values of h(Sol(φ)), and estimates |Sol(φ)| as Thresh / frac(maxS) — the
// k-minimum-values estimator, where frac treats the 3n-bit string as a
// binary fraction in [0, 1). If fewer than Thresh values exist, the image
// is exhausted and its size is the (then exact, since h is injective on
// Sol(φ) w.h.p. at range 3n) estimate.
//
// Trials run across Options.Parallelism workers; findMin must be safe for
// concurrent calls unless Parallelism is 1 (FindMinDNF is: it only reads
// the formula and hash).
func ApproxModelCountMin(n int, findMin FindMinFunc, opts Options) Result {
	return approxMinTrials(n, func(int) FindMinFunc { return findMin }, opts, opts.parallelism())
}

// approxMinTrials is the shared Algorithm 6 engine: findMinFor(i) supplies
// trial i's FindMin (letting oracle backends hand every trial its own
// fork); workers bounds the pool.
func approxMinTrials(n int, findMinFor func(trial int) FindMinFunc, opts Options, workers int) Result {
	thresh := opts.thresh()
	t := opts.iterations()
	rng := opts.rng()
	var fam hash.Family = hash.NewToeplitz(n, 3*n)
	if opts.Family != nil {
		if opts.Family.InBits() != n || opts.Family.OutBits() != 3*n {
			panic("counting: ApproxModelCountMin hash family must map n → 3n bits")
		}
		fam = opts.Family
	}
	res := Result{Iterations: t, PerIteration: make([]float64, t)}
	hs := make([]*hash.Linear, t)
	for i := range hs {
		hs[i] = fam.Draw(rng.Uint64).(*hash.Linear)
	}
	runTrials(t, workers, func(i int) {
		mins := findMinFor(i)(hs[i], thresh)
		var est float64
		if len(mins) < thresh {
			est = float64(len(mins))
		} else {
			maxFrac := mins[len(mins)-1].Fraction()
			if maxFrac == 0 {
				est = float64(len(mins))
			} else {
				est = float64(thresh) / maxFrac
			}
		}
		res.PerIteration[i] = est
	})
	res.Estimate = stats.Median(res.PerIteration)
	return res
}

// ApproxModelCountMinDNF runs Algorithm 6 with the polynomial-time FindMin,
// i.e. the FPRAS for #DNF of Theorem 3.
func ApproxModelCountMinDNF(d *formula.DNF, opts Options) Result {
	return ApproxModelCountMin(d.N, func(h *hash.Linear, p int) []bitvec.BitVec {
		return FindMinDNF(d, h, p)
	}, opts)
}

// ApproxModelCountMinOracle runs Algorithm 6 against an NP-oracle backend
// (Theorem 3's CNF case: O(p·n·log(1/δ)/ε²) oracle calls), metering
// queries. Trials fork the source when running in parallel.
func ApproxModelCountMinOracle(src oracle.Source, opts Options) Result {
	t := opts.iterations()
	ts, workers := newTrialSources(src, t, opts.parallelism())
	before := src.Queries()
	res := approxMinTrials(src.NVars(), func(i int) FindMinFunc {
		s := ts.at(i)
		return func(h *hash.Linear, p int) []bitvec.BitVec {
			return FindMinOracle(s, h, p)
		}
	}, opts, workers)
	res.OracleQueries = ts.queriesSince(before)
	return res
}
