package counting

import (
	"math"

	"mcf0/internal/bitvec"
	"mcf0/internal/hash"
	"mcf0/internal/oracle"
	"mcf0/internal/stats"
)

// BoundedSAT implements Proposition 1: it returns
// min(thresh, |Sol(φ ∧ h_m(x) = 0^m)|) together with the enumerated
// solutions. For the CNF oracle backend this costs O(thresh) NP calls; for
// the DNF backend it is polynomial time.
func BoundedSAT(src oracle.Source, h *hash.Linear, m, thresh int) (int, []bitvec.BitVec) {
	cons := h.ZeroPrefixSystem(m)
	var sols []bitvec.BitVec
	n := src.Enumerate(cons, thresh, func(x bitvec.BitVec) bool {
		sols = append(sols, x)
		return true
	})
	return n, sols
}

// ApproxMC implements Algorithm 5, the Bucketing-based model counter of
// Chakraborty–Meel–Vardi obtained by transforming the Gibbons–Tirthapura
// streaming algorithm. Each trial draws h from H_Toeplitz(n, n) and grows
// the prefix length m until the cell h_m⁻¹(0^m) ∩ Sol(φ) is small
// (< Thresh); the trial's estimate is |cell| · 2^m, and the final answer is
// the median across trials.
//
// With Options.BinarySearch, the prefix length is located by the galloping
// binary search of ApproxMC2, reducing oracle calls from O(n) to O(log n)
// per trial (ablation A2).
//
// The t trials are independent and run across Options.Parallelism workers:
// all hash functions are drawn serially up front (the only randomness in a
// trial), and stateful oracle backends are forked per trial, so results
// are identical to a serial run for a fixed seed.
func ApproxMC(src oracle.Source, opts Options) Result {
	n := src.NVars()
	thresh := opts.thresh()
	t := opts.iterations()
	rng := opts.rng()
	var fam hash.Family = hash.NewToeplitz(n, n)
	if opts.Family != nil {
		if opts.Family.InBits() != n || opts.Family.OutBits() != n {
			panic("counting: ApproxMC hash family must map n → n bits")
		}
		fam = opts.Family
	}
	res := Result{Iterations: t, PerIteration: make([]float64, t)}
	hs := make([]*hash.Linear, t)
	for i := range hs {
		hs[i] = fam.Draw(rng.Uint64).(*hash.Linear)
	}
	ts, workers := newTrialSources(src, t, opts.parallelism())
	before := src.Queries()
	runTrials(t, workers, func(i int) {
		var m, c int
		if opts.BinarySearch {
			m, c = searchPrefixBinary(ts.at(i), hs[i], thresh)
		} else {
			m, c = searchPrefixLinear(ts.at(i), hs[i], thresh)
		}
		res.PerIteration[i] = float64(c) * math.Pow(2, float64(m))
	})
	res.OracleQueries = ts.queriesSince(before)
	res.Estimate = stats.Median(res.PerIteration)
	return res
}

// searchPrefixLinear scans m = 0, 1, 2, … until the cell is small,
// mirroring lines 6–10 of Algorithm 5. It returns the final prefix length
// and cell size.
func searchPrefixLinear(src oracle.Source, h *hash.Linear, thresh int) (int, int) {
	n := h.InBits()
	m := 0
	c, _ := BoundedSAT(src, h, m, thresh)
	for c >= thresh && m < n {
		m++
		c, _ = BoundedSAT(src, h, m, thresh)
	}
	return m, c
}

// searchPrefixBinary finds the smallest m with |cell_m| < thresh by binary
// search, exploiting Sol(φ ∧ h_{m}=0) ⊇ Sol(φ ∧ h_{m+1}=0) — the
// monotonicity observed in "Further Optimizations" of Section 3.2.
func searchPrefixBinary(src oracle.Source, h *hash.Linear, thresh int) (int, int) {
	n := h.InBits()
	c0, _ := BoundedSAT(src, h, 0, thresh)
	if c0 < thresh {
		return 0, c0
	}
	// Invariant: count(lo) >= thresh, count(hi) < thresh (or hi = n).
	lo, hi := 0, n
	cHi, _ := BoundedSAT(src, h, n, thresh)
	if cHi >= thresh {
		return n, cHi
	}
	cAt := map[int]int{0: c0, n: cHi}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		c, _ := BoundedSAT(src, h, mid, thresh)
		cAt[mid] = c
		if c >= thresh {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, cAt[hi]
}
