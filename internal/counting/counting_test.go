package counting

import (
	"math"
	"sort"
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/exact"
	"mcf0/internal/formula"
	"mcf0/internal/hash"
	"mcf0/internal/oracle"
	"mcf0/internal/stats"
)

// testOpts keeps trials fast while retaining statistical meaning.
func testOpts(seed uint64) Options {
	return Options{Epsilon: 0.8, Delta: 0.2, Thresh: 24, Iterations: 9, RNG: stats.NewRNG(seed)}
}

func TestBoundedSATMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(71)
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(5)
		cnf := formula.RandomKCNF(n, rng.Intn(2*n), 2, rng)
		h := hash.NewToeplitz(n, n).Draw(rng.Uint64).(*hash.Linear)
		m := rng.Intn(n + 1)
		thresh := 1 + rng.Intn(20)
		want := 0
		for v := uint64(0); v < 1<<uint(n); v++ {
			x := bitvec.FromUint64(v, n)
			if cnf.Eval(x) && h.PrefixIsZero(x, m) {
				want++
			}
		}
		if want > thresh {
			want = thresh
		}
		for _, src := range []oracle.Source{
			oracle.NewCNFSource(cnf),
			oracle.NewExhaustive(n, cnf.Eval),
		} {
			got, sols := BoundedSAT(src, h, m, thresh)
			if got != want {
				t.Fatalf("trial %d: BoundedSAT=%d want=%d (%T)", trial, got, want, src)
			}
			for _, x := range sols {
				if !cnf.Eval(x) || !h.PrefixIsZero(x, m) {
					t.Fatal("BoundedSAT returned non-solution")
				}
			}
		}
	}
}

// accuracyTrials runs an estimator repeatedly over random seeds and checks
// the success rate of landing inside the (1+ε) band.
func accuracyTrials(t *testing.T, name string, truth float64, eps float64, trials int, run func(seed uint64) float64) {
	t.Helper()
	ok := 0
	for s := 0; s < trials; s++ {
		est := run(uint64(1000 + s))
		if stats.WithinFactor(est, truth, eps) {
			ok++
		}
	}
	rate := float64(ok) / float64(trials)
	// δ = 0.2 in testOpts; demand an empirical rate comfortably above 1−δ
	// minus sampling noise.
	if rate < 0.7 {
		t.Errorf("%s: success rate %.2f (truth %g)", name, rate, truth)
	}
}

func TestApproxMCAccuracyDNF(t *testing.T) {
	rng := stats.NewRNG(73)
	d := formula.RandomDNF(14, 6, 4, rng)
	truth := float64(exact.CountDNF(d))
	src := oracle.NewDNFSource(d)
	accuracyTrials(t, "ApproxMC/DNF", truth, 0.8, 20, func(seed uint64) float64 {
		return ApproxMC(src, testOpts(seed)).Estimate
	})
}

func TestApproxMCAccuracyCNF(t *testing.T) {
	rng := stats.NewRNG(79)
	cnf, _ := formula.PlantedKCNF(12, 18, 3, rng)
	truth := float64(exact.CountCNF(cnf))
	src := oracle.NewCNFSource(cnf)
	accuracyTrials(t, "ApproxMC/CNF", truth, 0.8, 15, func(seed uint64) float64 {
		return ApproxMC(src, testOpts(seed)).Estimate
	})
}

func TestApproxMCBinarySearchAgreesWithLinear(t *testing.T) {
	// Same hash draws (same seed) must give identical estimates: binary
	// search changes only the number of queries, not the located prefix.
	rng := stats.NewRNG(83)
	d := formula.RandomDNF(12, 5, 3, rng)
	src := oracle.NewDNFSource(d)
	for seed := uint64(0); seed < 10; seed++ {
		optsLin := testOpts(seed)
		optsBin := testOpts(seed)
		optsBin.BinarySearch = true
		lin := ApproxMC(src, optsLin)
		bin := ApproxMC(src, optsBin)
		if lin.Estimate != bin.Estimate {
			t.Fatalf("seed %d: linear=%g binary=%g", seed, lin.Estimate, bin.Estimate)
		}
	}
}

func TestApproxMCBinarySearchFewerQueries(t *testing.T) {
	// On a CNF with a large solution count the linear scan walks m up one
	// step at a time; binary search must use fewer oracle calls.
	rng := stats.NewRNG(89)
	cnf := formula.RandomKCNF(16, 8, 3, rng) // loose formula, many solutions
	linSrc := oracle.NewCNFSource(cnf)
	binSrc := oracle.NewCNFSource(cnf)
	optsLin := testOpts(1)
	optsBin := testOpts(1)
	optsBin.BinarySearch = true
	lin := ApproxMC(linSrc, optsLin)
	bin := ApproxMC(binSrc, optsBin)
	if bin.OracleQueries >= lin.OracleQueries {
		t.Errorf("binary search used %d queries, linear %d", bin.OracleQueries, lin.OracleQueries)
	}
}

func TestFindMinDNFMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(97)
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(4)
		d := formula.RandomDNF(n, 1+rng.Intn(4), 1+rng.Intn(3), rng)
		h := hash.NewToeplitz(n, 2*n).Draw(rng.Uint64).(*hash.Linear)
		p := 1 + rng.Intn(12)
		want := bruteHashMins(n, d.Eval, h, p)
		got := FindMinDNF(d, h, p)
		compareMins(t, trial, got, want)
	}
}

func TestFindMinOracleMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(101)
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(4)
		cnf := formula.RandomKCNF(n, rng.Intn(2*n), 2, rng)
		h := hash.NewToeplitz(n, 2*n).Draw(rng.Uint64).(*hash.Linear)
		p := 1 + rng.Intn(8)
		want := bruteHashMins(n, cnf.Eval, h, p)
		got := FindMinOracle(oracle.NewCNFSource(cnf), h, p)
		compareMins(t, trial, got, want)
	}
}

func bruteHashMins(n int, eval func(bitvec.BitVec) bool, h *hash.Linear, p int) []bitvec.BitVec {
	seen := map[string]bitvec.BitVec{}
	for v := uint64(0); v < 1<<uint(n); v++ {
		x := bitvec.FromUint64(v, n)
		if eval(x) {
			y := h.Eval(x)
			seen[y.Key()] = y
		}
	}
	var ys []bitvec.BitVec
	for _, y := range seen {
		ys = append(ys, y)
	}
	sort.Slice(ys, func(i, j int) bool { return ys[i].Less(ys[j]) })
	if len(ys) > p {
		ys = ys[:p]
	}
	return ys
}

func compareMins(t *testing.T, trial int, got, want []bitvec.BitVec) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trial %d: got %d mins, want %d", trial, len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("trial %d: min[%d] = %v, want %v", trial, i, got[i], want[i])
		}
	}
}

func TestApproxModelCountMinAccuracyDNF(t *testing.T) {
	rng := stats.NewRNG(103)
	d := formula.RandomDNF(16, 8, 5, rng)
	truth := float64(exact.CountDNF(d))
	accuracyTrials(t, "Min/DNF", truth, 0.8, 20, func(seed uint64) float64 {
		return ApproxModelCountMinDNF(d, testOpts(seed)).Estimate
	})
}

func TestApproxModelCountMinAccuracyCNF(t *testing.T) {
	rng := stats.NewRNG(107)
	cnf, _ := formula.PlantedKCNF(10, 14, 3, rng)
	truth := float64(exact.CountCNF(cnf))
	src := oracle.NewCNFSource(cnf)
	accuracyTrials(t, "Min/CNF", truth, 0.8, 10, func(seed uint64) float64 {
		return ApproxModelCountMinOracle(src, testOpts(seed)).Estimate
	})
}

func TestApproxModelCountMinSmallExact(t *testing.T) {
	// When |Sol| < Thresh the image is exhausted and the count is exact.
	d := formula.NewDNF(12)
	d.AddTerm(formula.Term{formula.Pos(0), formula.Pos(1), formula.Pos(2),
		formula.Pos(3), formula.Pos(4), formula.Pos(5), formula.Pos(6),
		formula.Pos(7), formula.Pos(8)}) // 2^3 = 8 solutions < Thresh 24
	res := ApproxModelCountMinDNF(d, testOpts(5))
	if res.Estimate != 8 {
		t.Errorf("small-count estimate %g, want exactly 8", res.Estimate)
	}
}

func TestFindMaxRangeBinarySearch(t *testing.T) {
	rng := stats.NewRNG(109)
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(5)
		d := formula.RandomDNF(n, 2, 2, rng)
		ex := oracle.NewExhaustive(n, d.Eval)
		h := hash.NewPoly(n, 3).Draw(rng.Uint64)
		want := -1
		for v := uint64(0); v < 1<<uint(n); v++ {
			x := bitvec.FromUint64(v, n)
			if d.Eval(x) {
				if tz := h.Eval(x).TrailingZeros(); tz > want {
					want = tz
				}
			}
		}
		if got := FindMaxRange(ex, h, n); got != want {
			t.Fatalf("trial %d: FindMaxRange=%d want=%d", trial, got, want)
		}
	}
}

func TestFindMaxRangeLinearMatchesExhaustive(t *testing.T) {
	rng := stats.NewRNG(113)
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(4)
		cnf := formula.RandomKCNF(n, rng.Intn(2*n), 2, rng)
		h := hash.NewXor(n, n).Draw(rng.Uint64).(*hash.Linear)
		want := -1
		for v := uint64(0); v < 1<<uint(n); v++ {
			x := bitvec.FromUint64(v, n)
			if cnf.Eval(x) {
				if tz := h.Eval(x).TrailingZeros(); tz > want {
					want = tz
				}
			}
		}
		got := FindMaxRangeLinear(oracle.NewCNFSource(cnf), h)
		if got != want {
			t.Fatalf("trial %d: FindMaxRangeLinear=%d want=%d", trial, got, want)
		}
	}
}

func TestApproxModelCountEstAccuracy(t *testing.T) {
	rng := stats.NewRNG(127)
	d := formula.RandomDNF(12, 5, 3, rng)
	truth := float64(exact.CountDNF(d))
	ex := oracle.NewExhaustive(12, d.Eval)
	// Pick r from ground truth inside the Lemma 3 window [2F0, 50F0].
	r := int(math.Ceil(math.Log2(2 * truth)))
	opts := testOpts(1)
	opts.Thresh = 48 // estimator benefits from more per-trial hashes
	accuracyTrials(t, "Est", truth, 0.8, 10, func(seed uint64) float64 {
		o := opts
		o.RNG = stats.NewRNG(seed)
		return ApproxModelCountEst(ex, 12, r, o).Estimate
	})
}

func TestRoughCountWithinFactorFive(t *testing.T) {
	rng := stats.NewRNG(131)
	d := formula.RandomDNF(14, 6, 4, rng)
	truth := float64(exact.CountDNF(d))
	src := oracle.NewDNFSource(d)
	okCount := 0
	const trials = 10
	for s := 0; s < trials; s++ {
		_, est := RoughCount(src, 9, stats.NewRNG(uint64(s)))
		if est >= truth/8 && est <= 8*truth {
			okCount++
		}
	}
	if okCount < trials*6/10 {
		t.Errorf("RoughCount within factor 8 only %d/%d times (truth %g)", okCount, trials, truth)
	}
}

func TestRoughCountUnsat(t *testing.T) {
	cnf := formula.NewCNF(4)
	cnf.AddClause(formula.Clause{formula.Pos(0)})
	cnf.AddClause(formula.Clause{formula.Negl(0)})
	r, est := RoughCount(oracle.NewCNFSource(cnf), 3, stats.NewRNG(1))
	if r != -1 || est != 0 {
		t.Errorf("unsat RoughCount = (%d, %g)", r, est)
	}
}

func TestKarpLubyAccuracy(t *testing.T) {
	rng := stats.NewRNG(137)
	d := formula.RandomDNF(16, 8, 5, rng)
	truth := float64(exact.CountDNF(d))
	accuracyTrials(t, "KarpLuby", truth, 0.8, 15, func(seed uint64) float64 {
		o := testOpts(seed)
		o.Epsilon = 0.3 // tighter sampling, still fast
		return KarpLuby(d, o).Estimate
	})
}

func TestKarpLubyDegenerate(t *testing.T) {
	if got := KarpLuby(formula.NewDNF(4), testOpts(1)).Estimate; got != 0 {
		t.Errorf("empty DNF estimate %g", got)
	}
	contra := formula.NewDNF(4)
	contra.AddTerm(formula.Term{formula.Pos(0), formula.Negl(0)})
	if got := KarpLuby(contra, testOpts(1)).Estimate; got != 0 {
		t.Errorf("contradictory DNF estimate %g", got)
	}
	taut := formula.NewDNF(4)
	taut.AddTerm(formula.Term{})
	if got := KarpLuby(taut, testOpts(1)).Estimate; got != 16 {
		t.Errorf("tautology estimate %g, want 16", got)
	}
}

func TestPaperConstants(t *testing.T) {
	var o Options
	if got := o.thresh(); got != 150 { // 96/0.64 = 150
		t.Errorf("default thresh = %d, want 150", got)
	}
	o2 := Options{Epsilon: 1}
	if got := o2.thresh(); got != 96 {
		t.Errorf("ε=1 thresh = %d, want 96", got)
	}
	o3 := Options{Delta: 0.5}
	if got := o3.iterations(); got != 35 {
		t.Errorf("δ=0.5 iterations = %d, want 35", got)
	}
}

// TestPaperConstantsIntegration runs one full ApproxMC with the verbatim
// paper constants (Thresh=150, t=35·log₂(1/δ)) on a small DNF to make sure
// the defaults hold together end to end.
func TestPaperConstantsIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("paper constants are slow; skipping in -short mode")
	}
	rng := stats.NewRNG(139)
	d := formula.RandomDNF(12, 5, 3, rng)
	truth := float64(exact.CountDNF(d))
	src := oracle.NewDNFSource(d)
	res := ApproxMC(src, Options{Epsilon: 0.8, Delta: 0.2, RNG: stats.NewRNG(7)})
	if !stats.WithinFactor(res.Estimate, truth, 0.8) {
		t.Errorf("paper-constant ApproxMC estimate %g vs truth %g", res.Estimate, truth)
	}
}
