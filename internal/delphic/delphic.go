// Package delphic implements the sampling-based union-size estimator that
// Remark 2 of the paper describes (the APS-Estimator of Meel r⃝
// Vinodchandran r⃝ Chakraborty, also PODS 2021), as a baseline against the
// hashing-based structured-stream estimators of Section 5.
//
// A set S ⊆ {0,1}^n is Delphic when three queries run in O(n) time:
// its size, a uniform random sample, and membership of a given x. Term
// cubes, multidimensional ranges, and affine spaces are all Delphic (their
// elements are in bijection with free coordinates), which is what lets the
// APS-Estimator achieve per-item time poly(n, d, 1/ε) on d-dimensional
// ranges where the Lemma 4 DNF route pays (2n)^d.
//
// The estimator maintains a uniform p-sample X of the union: on arrival of
// S, elements of S are first evicted from X (they will be re-sampled),
// then each element of S enters X independently with probability p — done
// in O(p·|S|) expected time by geometric skipping, never enumerating S.
// When X overflows its capacity, p halves and X is subsampled. The final
// estimate is |X| / p.
package delphic

import (
	"math"

	"mcf0/internal/bitvec"
	"mcf0/internal/formula"
	"mcf0/internal/gf2"
	"mcf0/internal/stats"
)

// Set is a Delphic set: size, uniform sampling, and membership in O(n).
type Set interface {
	// Size returns |S| as a float64 (sets can exceed 2^63).
	Size() float64
	// Element returns the i-th element under the set's internal bijection
	// from [0, Size) to elements. i is passed as a uint64; Size must fit.
	Element(i uint64) bitvec.BitVec
	// Contains reports membership.
	Contains(x bitvec.BitVec) bool
}

// Cube is the Delphic set of assignments satisfying a term.
type Cube struct {
	n     int
	fixed []bool
	val   bitvec.BitVec
	free  []int // indices of free variables, ascending
}

// NewCube builds a Delphic cube from a consistent term; ok is false for
// contradictory terms.
func NewCube(n int, t formula.Term) (*Cube, bool) {
	norm, ok := t.Normalize()
	if !ok {
		return nil, false
	}
	fixed, val := formula.TermFixed(n, norm)
	c := &Cube{n: n, fixed: fixed, val: val}
	for i := 0; i < n; i++ {
		if !fixed[i] {
			c.free = append(c.free, i)
		}
	}
	return c, true
}

// Size returns 2^{#free}.
func (c *Cube) Size() float64 { return math.Pow(2, float64(len(c.free))) }

// Element maps index bits onto the free variables.
func (c *Cube) Element(i uint64) bitvec.BitVec {
	x := c.val.Clone()
	for bit, v := range c.free {
		if i&(1<<uint(bit)) != 0 {
			x.Set(v, true)
		}
	}
	return x
}

// Contains checks the fixed positions.
func (c *Cube) Contains(x bitvec.BitVec) bool {
	for i := 0; i < c.n; i++ {
		if c.fixed[i] && x.Get(i) != c.val.Get(i) {
			return false
		}
	}
	return true
}

// Affine is the Delphic set {x : Ax = b}.
type Affine struct {
	a     *gf2.Matrix
	b     bitvec.BitVec
	x0    bitvec.BitVec
	basis []bitvec.BitVec
	ok    bool
}

// NewAffine builds a Delphic affine set; ok is false when inconsistent.
func NewAffine(a *gf2.Matrix, b bitvec.BitVec) (*Affine, bool) {
	sys := gf2.NewSystem(a.Cols())
	for i := 0; i < a.Rows(); i++ {
		sys.Add(a.Row(i), b.Get(i))
	}
	x0, ok := sys.Solve()
	if !ok {
		return nil, false
	}
	return &Affine{a: a, b: b, x0: x0, basis: sys.NullBasis(), ok: true}, true
}

// Size returns 2^{null dimension}.
func (s *Affine) Size() float64 { return math.Pow(2, float64(len(s.basis))) }

// Element maps index bits onto null-space coordinates.
func (s *Affine) Element(i uint64) bitvec.BitVec {
	x := s.x0.Clone()
	for bit, nb := range s.basis {
		if i&(1<<uint(bit)) != 0 {
			x.XorInPlace(nb)
		}
	}
	return x
}

// Contains verifies Ax = b.
func (s *Affine) Contains(x bitvec.BitVec) bool { return s.a.MulVec(x).Equal(s.b) }

// MultiRangeSet is the Delphic set of tuples in a d-dimensional range, laid
// out over the formula.MultiRange variable blocks.
type MultiRangeSet struct {
	mr formula.MultiRange
}

// NewMultiRangeSet wraps a validated multirange; ok is false when any
// dimension is empty or malformed.
func NewMultiRangeSet(mr formula.MultiRange) (*MultiRangeSet, bool) {
	for _, r := range mr.Dims {
		if r.Validate() != nil || r.Empty() {
			return nil, false
		}
	}
	return &MultiRangeSet{mr: mr}, true
}

// Size returns ∏ dimension counts.
func (s *MultiRangeSet) Size() float64 {
	size := 1.0
	for _, r := range s.mr.Dims {
		size *= float64(r.Count())
	}
	return size
}

// Element decodes a mixed-radix index into per-dimension offsets.
func (s *MultiRangeSet) Element(i uint64) bitvec.BitVec {
	vals := make([]uint64, len(s.mr.Dims))
	bits := make([]int, len(s.mr.Dims))
	for d, r := range s.mr.Dims {
		count := r.Count()
		vals[d] = r.Lo + i%count
		i /= count
		bits[d] = r.Bits
	}
	return formula.TupleToAssignment(vals, bits)
}

// Contains checks every dimension's interval.
func (s *MultiRangeSet) Contains(x bitvec.BitVec) bool {
	offset := 0
	for _, r := range s.mr.Dims {
		var v uint64
		for i := 0; i < r.Bits; i++ {
			v <<= 1
			if x.Get(offset + i) {
				v |= 1
			}
		}
		if v < r.Lo || v > r.Hi {
			return false
		}
		offset += r.Bits
	}
	return true
}

// Estimator is the APS union-size estimator over Delphic items.
type Estimator struct {
	n      int
	cap    int
	p      float64
	sample map[bitvec.Fingerprint]bitvec.BitVec
	rng    *stats.RNG
	failed bool
}

// NewEstimator builds an estimator over n-bit universes. epsilon and delta
// give the accuracy target; streamLen is (an upper bound on) the number of
// items M, which the algorithm — unlike the hashing route, as Remark 2
// notes — must know in advance.
func NewEstimator(n int, epsilon, delta float64, streamLen int, rng *stats.RNG) *Estimator {
	if epsilon <= 0 {
		epsilon = 0.8
	}
	if delta <= 0 || delta >= 1 {
		delta = 0.2
	}
	if streamLen < 1 {
		streamLen = 1
	}
	capacity := int(math.Ceil(32 * math.Log(6*float64(streamLen)/delta) / (epsilon * epsilon)))
	return &Estimator{
		n:      n,
		cap:    capacity,
		p:      1,
		sample: map[bitvec.Fingerprint]bitvec.BitVec{},
		rng:    rng,
	}
}

// Capacity returns the sample-buffer bound (the space knob).
func (e *Estimator) Capacity() int { return e.cap }

// Process absorbs one Delphic item.
func (e *Estimator) Process(s Set) {
	if e.failed {
		return
	}
	// Evict current samples covered by S: they are re-sampled below, which
	// is what keeps X a uniform p-sample of the union.
	for k, x := range e.sample {
		if s.Contains(x) {
			delete(e.sample, k)
		}
	}
	for {
		if e.addPSample(s) {
			return
		}
		// Overflow: halve p and subsample the buffer.
		e.p /= 2
		if e.p < 1e-18 {
			e.failed = true // pathological; avoid infinite loops
			return
		}
		for k := range e.sample {
			if e.rng.Bool() {
				delete(e.sample, k)
			}
		}
	}
}

// addPSample inserts each element of s independently with probability p via
// geometric skipping, returning false when the buffer overflows (caller
// halves p and retries the whole item, which re-draws the Binomial — the
// distribution is identical because the previous attempt's insertions for
// this item were discarded by the eviction/overflow handling).
func (e *Estimator) addPSample(s Set) bool {
	size := s.Size()
	if size <= 0 {
		return true
	}
	// Walk success positions: gaps between retained elements are
	// geometric. Positions index the set's internal bijection; collisions
	// (same index drawn twice) cannot occur because the walk is strictly
	// increasing.
	inserted := []bitvec.Fingerprint{}
	pos := -1.0
	for {
		pos += 1 + e.geometricSkip()
		if pos >= size {
			return true
		}
		x := s.Element(uint64(pos))
		key := x.Fingerprint()
		if _, dup := e.sample[key]; !dup {
			e.sample[key] = x
			inserted = append(inserted, key)
			if len(e.sample) > e.cap {
				// Undo this item's insertions; caller will retry at p/2.
				for _, k := range inserted {
					delete(e.sample, k)
				}
				return false
			}
		}
	}
}

// geometricSkip samples the number of failures before the next success in
// Bernoulli(p) trials.
func (e *Estimator) geometricSkip() float64 {
	if e.p >= 1 {
		return 0
	}
	u := e.rng.Float64()
	for u == 0 {
		u = e.rng.Float64()
	}
	return math.Floor(math.Log(u) / math.Log(1-e.p))
}

// Estimate returns |X|/p.
func (e *Estimator) Estimate() float64 {
	if e.failed {
		return math.NaN()
	}
	return float64(len(e.sample)) / e.p
}

// SampleSize returns the current buffer occupancy (for space accounting).
func (e *Estimator) SampleSize() int { return len(e.sample) }
