package delphic

import (
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/formula"
	"mcf0/internal/gf2"
	"mcf0/internal/stats"
)

func TestCubeDelphicQueries(t *testing.T) {
	rng := stats.NewRNG(601)
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(6)
		w := rng.Intn(n + 1)
		var tm formula.Term
		seen := map[int]bool{}
		for len(tm) < w {
			v := rng.Intn(n)
			if seen[v] {
				continue
			}
			seen[v] = true
			tm = append(tm, formula.Lit{Var: v, Neg: rng.Bool()})
		}
		c, ok := NewCube(n, tm)
		if !ok {
			t.Fatal("consistent term rejected")
		}
		want := 0
		for v := uint64(0); v < 1<<uint(n); v++ {
			x := bitvec.FromUint64(v, n)
			if tm.Eval(x) != c.Contains(x) {
				t.Fatal("Contains disagrees with Eval")
			}
			if tm.Eval(x) {
				want++
			}
		}
		if int(c.Size()) != want {
			t.Fatalf("Size = %g, want %d", c.Size(), want)
		}
		// The element bijection must cover the set without repeats.
		elems := map[string]bool{}
		for i := uint64(0); i < uint64(c.Size()); i++ {
			x := c.Element(i)
			if !c.Contains(x) {
				t.Fatal("Element produced non-member")
			}
			if elems[x.Key()] {
				t.Fatal("Element bijection repeated a member")
			}
			elems[x.Key()] = true
		}
	}
}

func TestCubeContradiction(t *testing.T) {
	if _, ok := NewCube(4, formula.Term{formula.Pos(0), formula.Negl(0)}); ok {
		t.Fatal("contradictory term accepted")
	}
}

func TestAffineDelphicQueries(t *testing.T) {
	rng := stats.NewRNG(603)
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(5)
		rows := rng.Intn(n + 1)
		a := gf2.RandomMatrix(rows, n, rng.Uint64)
		b := bitvec.Random(rows, rng.Uint64)
		s, ok := NewAffine(a, b)
		want := 0
		for v := uint64(0); v < 1<<uint(n); v++ {
			if a.MulVec(bitvec.FromUint64(v, n)).Equal(b) {
				want++
			}
		}
		if ok != (want > 0) {
			t.Fatalf("consistency mismatch: ok=%v want=%d", ok, want)
		}
		if !ok {
			continue
		}
		if int(s.Size()) != want {
			t.Fatalf("Size = %g, want %d", s.Size(), want)
		}
		elems := map[string]bool{}
		for i := uint64(0); i < uint64(s.Size()); i++ {
			x := s.Element(i)
			if !s.Contains(x) {
				t.Fatal("Element produced non-member")
			}
			if elems[x.Key()] {
				t.Fatal("bijection repeated")
			}
			elems[x.Key()] = true
		}
	}
}

func TestMultiRangeDelphicQueries(t *testing.T) {
	mr := formula.MultiRange{Dims: []formula.Range{
		{Lo: 2, Hi: 5, Bits: 4},
		{Lo: 1, Hi: 3, Bits: 3},
	}}
	s, ok := NewMultiRangeSet(mr)
	if !ok {
		t.Fatal("valid multirange rejected")
	}
	if s.Size() != 12 {
		t.Fatalf("Size = %g, want 12", s.Size())
	}
	elems := map[string]bool{}
	for i := uint64(0); i < 12; i++ {
		x := s.Element(i)
		if !s.Contains(x) {
			t.Fatal("Element produced non-member")
		}
		elems[x.Key()] = true
	}
	if len(elems) != 12 {
		t.Fatalf("bijection hit %d of 12", len(elems))
	}
	// Membership cross-check against the DNF of the same range.
	d, err := formula.MultiRangeDNF(mr)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 1<<7; v++ {
		x := bitvec.FromUint64(v, 7)
		if s.Contains(x) != d.Eval(x) {
			t.Fatalf("Contains disagrees with DNF at %v", x)
		}
	}
	if _, ok := NewMultiRangeSet(formula.MultiRange{Dims: []formula.Range{{Lo: 5, Hi: 2, Bits: 4}}}); ok {
		t.Fatal("empty range accepted")
	}
}

func TestEstimatorAccuracy(t *testing.T) {
	rng := stats.NewRNG(605)
	n := 14
	var items []Set
	var evals []func(bitvec.BitVec) bool
	for i := 0; i < 12; i++ {
		w := 3 + rng.Intn(4)
		var tm formula.Term
		seen := map[int]bool{}
		for len(tm) < w {
			v := rng.Intn(n)
			if seen[v] {
				continue
			}
			seen[v] = true
			tm = append(tm, formula.Lit{Var: v, Neg: rng.Bool()})
		}
		c, _ := NewCube(n, tm)
		items = append(items, c)
		tmc := tm
		evals = append(evals, func(x bitvec.BitVec) bool { return tmc.Eval(x) })
	}
	truth := 0.0
	for v := uint64(0); v < 1<<uint(n); v++ {
		x := bitvec.FromUint64(v, n)
		for _, e := range evals {
			if e(x) {
				truth++
				break
			}
		}
	}
	ok := 0
	const trials = 10
	for s := 0; s < trials; s++ {
		est := NewEstimator(n, 0.5, 0.2, len(items), stats.NewRNG(uint64(700+s)))
		for _, it := range items {
			est.Process(it)
		}
		if est.SampleSize() > est.Capacity() {
			t.Fatal("buffer exceeded capacity")
		}
		if stats.WithinFactor(est.Estimate(), truth, 0.5) {
			ok++
		}
	}
	if ok < trials*7/10 {
		t.Errorf("APS estimator in-band only %d/%d (truth %g)", ok, trials, truth)
	}
}

func TestEstimatorSmallUnionNearExact(t *testing.T) {
	// A union smaller than the capacity keeps p = 1, so the count is exact.
	n := 10
	est := NewEstimator(n, 0.5, 0.2, 3, stats.NewRNG(1))
	var terms []formula.Term
	var tm1 formula.Term
	for v := 0; v < 7; v++ {
		tm1 = append(tm1, formula.Pos(v))
	}
	terms = append(terms, tm1) // 8 elements
	var tm2 formula.Term
	for v := 0; v < 7; v++ {
		tm2 = append(tm2, formula.Negl(v))
	}
	terms = append(terms, tm2) // 8 elements, disjoint
	for _, tm := range terms {
		c, _ := NewCube(n, tm)
		est.Process(c)
	}
	if est.Estimate() != 16 {
		t.Fatalf("estimate %g, want exactly 16", est.Estimate())
	}
}

func TestEstimatorDeduplicatesAcrossItems(t *testing.T) {
	// Processing the same set many times must not inflate the estimate.
	n := 10
	est := NewEstimator(n, 0.5, 0.2, 20, stats.NewRNG(2))
	var tm formula.Term
	for v := 0; v < 6; v++ {
		tm = append(tm, formula.Pos(v))
	}
	c, _ := NewCube(n, tm) // 16 elements
	for i := 0; i < 20; i++ {
		est.Process(c)
	}
	if est.Estimate() != 16 {
		t.Fatalf("repeated-set estimate %g, want exactly 16", est.Estimate())
	}
}
