// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver with native XOR-constraint support. It is the NP-oracle substrate
// for the hashing-based model counters: queries of the form
// φ ∧ (h_m(x) = 0^m) conjoin a CNF with XOR (GF(2)) constraints, exactly
// the CNF-XOR instances that motivated solvers like CryptoMiniSat. Here the
// XOR rows are propagated natively with a two-watch scheme, so hash
// constraints never have to be expanded into exponentially many clauses.
//
// The solver uses two-watched-literal propagation, VSIDS-style variable
// activities, first-UIP conflict analysis, and Luby restarts. It is not
// safe for concurrent use.
package sat

import (
	"mcf0/internal/bitvec"
	"mcf0/internal/formula"
	"mcf0/internal/gf2"
)

// lbool is a three-valued boolean.
type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

// Literal encoding: positive literal of variable v is 2v, negative 2v+1.
func mkLit(v int, neg bool) int {
	l := v << 1
	if neg {
		l |= 1
	}
	return l
}

func litVar(l int) int   { return l >> 1 }
func litNeg(l int) int   { return l ^ 1 }
func litSign(l int) bool { return l&1 == 1 }

// Reason markers: reasonNone for decisions/unassigned; otherwise a clause
// index, or xorReasonBase+idx for XOR-implied assignments.
const reasonNone = -1

type clause struct {
	lits    []int
	learned bool
}

type xorRow struct {
	vars []int // sorted, distinct
	rhs  bool
	// w1, w2 are indices into vars of the two watched positions.
	w1, w2 int
}

// Stats counts solver work, used by the experiment harness.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Learned      int64
	Restarts     int64
}

// Solver is a CDCL SAT solver over a fixed set of variables.
type Solver struct {
	nVars   int
	clauses []*clause
	xors    []*xorRow

	watches    [][]int // literal → clause indices watching it
	xorWatches [][]int // variable → xor indices watching it
	// xorSys keeps every added XOR row in reduced echelon form. Reducing
	// new rows against it detects XOR-level unsatisfiability immediately
	// (plain clause learning needs exponential resolution proofs on dense
	// XOR systems — the very observation behind Gaussian-elimination
	// solvers like CryptoMiniSat/BIRD) and gives each watched row a unique
	// pivot variable, which keeps propagation chains short.
	xorSys *gf2.System

	assign   []lbool
	level    []int
	reason   []int
	phase    []bool // saved phase for decision polarity
	activity []float64
	varInc   float64

	trail    []int
	trailLim []int
	qhead    int

	unsat bool // established at level 0

	seen  []bool // scratch for conflict analysis
	stats Stats
}

// New returns a solver over nVars variables, all unassigned.
func New(nVars int) *Solver {
	s := &Solver{
		nVars:      nVars,
		watches:    make([][]int, 2*nVars),
		xorWatches: make([][]int, nVars),
		xorSys:     gf2.NewSystem(nVars),
		assign:     make([]lbool, nVars),
		level:      make([]int, nVars),
		reason:     make([]int, nVars),
		phase:      make([]bool, nVars),
		activity:   make([]float64, nVars),
		varInc:     1,
		seen:       make([]bool, nVars),
	}
	for i := range s.reason {
		s.reason[i] = reasonNone
	}
	return s
}

// NVars returns the variable count.
func (s *Solver) NVars() int { return s.nVars }

// Stats returns a copy of the work counters.
func (s *Solver) Stats() Stats { return s.stats }

func (s *Solver) value(l int) lbool {
	v := s.assign[litVar(l)]
	if v == lUndef {
		return lUndef
	}
	if litSign(l) {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

// AddClause adds a disjunction of literals. Returns false if the formula is
// already unsatisfiable at level 0. Must be called at decision level 0
// (true initially and after Solve returns).
func (s *Solver) AddClause(lits []formula.Lit) bool {
	enc := make([]int, len(lits))
	for i, l := range lits {
		if l.Var < 0 || l.Var >= s.nVars {
			panic("sat: literal variable out of range")
		}
		enc[i] = mkLit(l.Var, l.Neg)
	}
	return s.addClauseEnc(enc, false)
}

func (s *Solver) addClauseEnc(lits []int, learned bool) bool {
	if s.unsat {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause above decision level 0")
	}
	// Simplify: drop false literals, detect satisfied/tautological clauses,
	// dedupe.
	out := lits[:0:0]
	seen := map[int]bool{}
	for _, l := range lits {
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue
		}
		if seen[l] {
			continue
		}
		if seen[litNeg(l)] {
			return true // tautology
		}
		seen[l] = true
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		s.enqueue(out[0], reasonNone)
		if s.propagate() != confNone {
			s.unsat = true
			return false
		}
		return true
	}
	idx := len(s.clauses)
	s.clauses = append(s.clauses, &clause{lits: out, learned: learned})
	s.watches[out[0]] = append(s.watches[out[0]], idx)
	s.watches[out[1]] = append(s.watches[out[1]], idx)
	return true
}

// AddXOR adds the GF(2) constraint vars[0] ⊕ vars[1] ⊕ … = rhs. Duplicate
// variables cancel. Returns false if the formula becomes unsatisfiable.
func (s *Solver) AddXOR(vars []int, rhs bool) bool {
	if s.unsat {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddXOR above decision level 0")
	}
	// Fold duplicate variables, then reduce against the echelon basis of
	// all previously added rows: a linearly dependent row is either
	// redundant or an immediate contradiction.
	count := map[int]int{}
	for _, v := range vars {
		if v < 0 || v >= s.nVars {
			panic("sat: XOR variable out of range")
		}
		count[v]++
	}
	vec := bitvec.New(s.nVars)
	for v, c := range count {
		if c%2 == 1 {
			vec.Set(v, true)
		}
	}
	red, rrhs := s.xorSys.Residual(vec, rhs)
	if red.IsZero() {
		if rrhs {
			s.unsat = true
			return false
		}
		return true // implied by earlier rows
	}
	s.xorSys.Add(vec, rhs)
	// Fold level-0 assignments into the reduced row before watching it.
	var vs []int
	for v := 0; v < s.nVars; v++ {
		if !red.Get(v) {
			continue
		}
		switch s.assign[v] {
		case lTrue:
			rrhs = !rrhs
		case lFalse:
		default:
			vs = append(vs, v)
		}
	}
	rhs = rrhs
	switch len(vs) {
	case 0:
		if rhs {
			s.unsat = true
			return false
		}
		return true
	case 1:
		s.enqueue(mkLit(vs[0], !rhs), reasonNone)
		if s.propagate() != confNone {
			s.unsat = true
			return false
		}
		return true
	}
	idx := len(s.xors)
	row := &xorRow{vars: vs, rhs: rhs, w1: 0, w2: 1}
	s.xors = append(s.xors, row)
	s.xorWatches[vs[0]] = append(s.xorWatches[vs[0]], idx)
	s.xorWatches[vs[1]] = append(s.xorWatches[vs[1]], idx)
	return true
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// enqueue records the assignment implied by literal l with the given
// reason. The caller must ensure l is currently unassigned.
func (s *Solver) enqueue(l int, reason int) {
	v := litVar(l)
	if litSign(l) {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = reason
	s.trail = append(s.trail, l)
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := litVar(s.trail[i])
		s.phase[v] = s.assign[v] == lTrue
		s.assign[v] = lUndef
		s.reason[v] = reasonNone
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// conflict descriptor: confNone, a clause index, or an encoded XOR index.
const (
	confNone    = -1
	xorConfBase = 1 << 30
)

// propagate performs unit propagation over clauses and XOR rows until
// fixpoint or conflict. Returns a conflict descriptor.
func (s *Solver) propagate() int {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		if conf := s.propagateClauses(litNeg(l)); conf != confNone {
			return conf
		}
		if conf := s.propagateXORs(litVar(l)); conf != confNone {
			return conf
		}
	}
	return confNone
}

// propagateClauses visits clauses watching the now-false literal fl.
func (s *Solver) propagateClauses(fl int) int {
	ws := s.watches[fl]
	kept := ws[:0]
	for wi := 0; wi < len(ws); wi++ {
		ci := ws[wi]
		c := s.clauses[ci]
		// Ensure c.lits[1] is the false watch.
		if c.lits[0] == fl {
			c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
		}
		if s.value(c.lits[0]) == lTrue {
			kept = append(kept, ci)
			continue
		}
		// Search a replacement watch.
		found := false
		for k := 2; k < len(c.lits); k++ {
			if s.value(c.lits[k]) != lFalse {
				c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
				s.watches[c.lits[1]] = append(s.watches[c.lits[1]], ci)
				found = true
				break
			}
		}
		if found {
			continue // moved to another watch list
		}
		// Clause is unit or conflicting.
		kept = append(kept, ci)
		if s.value(c.lits[0]) == lFalse {
			// Conflict: keep remaining watches, restore list, report.
			kept = append(kept, ws[wi+1:]...)
			s.watches[fl] = kept
			return ci
		}
		s.enqueue(c.lits[0], ci)
	}
	s.watches[fl] = kept
	return confNone
}

// propagateXORs visits XOR rows watching variable v, which just became
// assigned.
func (s *Solver) propagateXORs(v int) int {
	ws := s.xorWatches[v]
	kept := ws[:0]
	for wi := 0; wi < len(ws); wi++ {
		xi := ws[wi]
		x := s.xors[xi]
		// Normalise: w2 is the watch on v.
		if x.vars[x.w1] == v {
			x.w1, x.w2 = x.w2, x.w1
		}
		// Find a replacement unassigned variable (≠ w1 position).
		found := false
		for k := range x.vars {
			if k == x.w1 || k == x.w2 {
				continue
			}
			if s.assign[x.vars[k]] == lUndef {
				x.w2 = k
				s.xorWatches[x.vars[k]] = append(s.xorWatches[x.vars[k]], xi)
				found = true
				break
			}
		}
		if found {
			continue
		}
		kept = append(kept, xi)
		// All variables other than possibly vars[w1] are assigned.
		other := x.vars[x.w1]
		parity := x.rhs
		unassignedOther := s.assign[other] == lUndef
		for _, u := range x.vars {
			if u == other && unassignedOther {
				continue
			}
			if s.assign[u] == lTrue {
				parity = !parity
			}
		}
		if unassignedOther {
			// parity is the required value of `other`.
			s.enqueue(mkLit(other, !parity), xorReasonBase+xi)
		} else if parity {
			// Parity violated: conflict.
			kept = append(kept, ws[wi+1:]...)
			s.xorWatches[v] = kept
			return xorConfBase + xi
		}
	}
	s.xorWatches[v] = kept
	return confNone
}

const xorReasonBase = 1 << 29

// reasonLits returns the clause form of the reason for variable v's
// assignment: a clause in which every literal except the one asserting v is
// false under the current assignment.
func (s *Solver) reasonLits(v int) []int {
	r := s.reason[v]
	if r == reasonNone {
		return nil
	}
	if r < xorReasonBase {
		return s.clauses[r].lits
	}
	x := s.xors[r-xorReasonBase]
	return s.xorClause(x, v)
}

// xorClause renders XOR row x as the clause that is unit on variable
// asserted (or fully false if asserted < 0, for conflicts): the asserted
// variable's satisfied literal plus the falsified literals of all others.
func (s *Solver) xorClause(x *xorRow, asserted int) []int {
	lits := make([]int, 0, len(x.vars))
	for _, u := range x.vars {
		if u == asserted {
			lits = append(lits, mkLit(u, s.assign[u] == lFalse))
		} else {
			// Literal currently false.
			lits = append(lits, mkLit(u, s.assign[u] == lTrue))
		}
	}
	// Place asserted literal first, as conflict analysis expects for
	// reasons.
	if asserted >= 0 {
		for i, l := range lits {
			if litVar(l) == asserted {
				lits[0], lits[i] = lits[i], lits[0]
				break
			}
		}
	}
	return lits
}

func (s *Solver) conflictLits(conf int) []int {
	if conf < xorConfBase {
		return s.clauses[conf].lits
	}
	return s.xorClause(s.xors[conf-xorConfBase], -1)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// analyze performs first-UIP conflict analysis. It returns the learned
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(conf int) ([]int, int) {
	learned := []int{0} // placeholder for the asserting literal
	counter := 0
	idx := len(s.trail) - 1
	var p int = -1
	lits := s.conflictLits(conf)
	for {
		start := 0
		if p >= 0 {
			start = 1 // skip asserting literal of the reason
		}
		for _, q := range lits[start:] {
			v := litVar(q)
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] >= s.decisionLevel() {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Find next marked literal on the trail.
		for !s.seen[litVar(s.trail[idx])] {
			idx--
		}
		p = s.trail[idx]
		v := litVar(p)
		s.seen[v] = false
		counter--
		idx--
		if counter == 0 {
			learned[0] = litNeg(p)
			break
		}
		lits = s.reasonLits(v)
	}
	// Compute backtrack level and clear marks.
	back := 0
	for i := 1; i < len(learned); i++ {
		if lvl := s.level[litVar(learned[i])]; lvl > back {
			back = lvl
			// Move the max-level literal to position 1 (second watch).
			learned[1], learned[i] = learned[i], learned[1]
		}
	}
	for _, q := range learned[1:] {
		s.seen[litVar(q)] = false
	}
	return learned, back
}

// record installs a learned clause and asserts its first literal.
func (s *Solver) record(learned []int) {
	if len(learned) == 1 {
		s.enqueue(learned[0], reasonNone)
		return
	}
	idx := len(s.clauses)
	s.clauses = append(s.clauses, &clause{lits: learned, learned: true})
	s.watches[learned[0]] = append(s.watches[learned[0]], idx)
	s.watches[learned[1]] = append(s.watches[learned[1]], idx)
	s.stats.Learned++
	s.enqueue(learned[0], idx)
}

func (s *Solver) pickBranchVar() int {
	best, bestAct := -1, -1.0
	for v := 0; v < s.nVars; v++ {
		if s.assign[v] == lUndef && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

// luby returns the i-th element (1-based) of the Luby restart sequence.
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<uint(k))-1 {
			return 1 << uint(k-1)
		}
		if i < (1<<uint(k))-1 {
			return luby(i - (1 << uint(k-1)) + 1)
		}
	}
}

// Solve searches for a satisfying assignment, returning (model, true) on
// SAT and (zero, false) on UNSAT. The solver backtracks to level 0 before
// returning, so further clauses may be added afterwards (e.g. blocking
// clauses for enumeration).
func (s *Solver) Solve() (bitvec.BitVec, bool) {
	if s.unsat {
		return bitvec.BitVec{}, false
	}
	defer s.cancelUntil(0)
	if conf := s.propagate(); conf != confNone {
		s.unsat = true
		return bitvec.BitVec{}, false
	}
	const restartBase = 100
	restartNum := int64(1)
	budget := restartBase * luby(restartNum)
	var conflicts int64
	for {
		conf := s.propagate()
		if conf != confNone {
			s.stats.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.unsat = true
				return bitvec.BitVec{}, false
			}
			learned, back := s.analyze(conf)
			s.cancelUntil(back)
			s.record(learned)
			s.varInc /= 0.95
			continue
		}
		if conflicts >= budget {
			// Restart.
			s.stats.Restarts++
			restartNum++
			conflicts = 0
			budget = restartBase * luby(restartNum)
			s.cancelUntil(0)
			continue
		}
		v := s.pickBranchVar()
		if v < 0 {
			// All variables assigned: SAT.
			model := bitvec.New(s.nVars)
			for i := 0; i < s.nVars; i++ {
				if s.assign[i] == lTrue {
					model.Set(i, true)
				}
			}
			return model, true
		}
		s.stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(mkLit(v, !s.phase[v]), reasonNone)
	}
}

// BlockModel adds the clause forbidding the given full assignment, enabling
// AllSAT-style enumeration. Returns false if the formula becomes
// unsatisfiable.
func (s *Solver) BlockModel(model bitvec.BitVec) bool {
	lits := make([]formula.Lit, s.nVars)
	for v := 0; v < s.nVars; v++ {
		lits[v] = formula.Lit{Var: v, Neg: model.Get(v)}
	}
	return s.AddClause(lits)
}

// EnumerateModels visits up to limit models (limit < 0 for all), blocking
// each before searching for the next. visit returning false stops early.
// It returns the number of models visited.
func (s *Solver) EnumerateModels(limit int, visit func(bitvec.BitVec) bool) int {
	count := 0
	for limit < 0 || count < limit {
		model, ok := s.Solve()
		if !ok {
			break
		}
		count++
		if !visit(model) {
			break
		}
		if !s.BlockModel(model) {
			break
		}
	}
	return count
}
