// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver with native XOR-constraint support. It is the NP-oracle substrate
// for the hashing-based model counters: queries of the form
// φ ∧ (h_m(x) = 0^m) conjoin a CNF with XOR (GF(2)) constraints, exactly
// the CNF-XOR instances that motivated solvers like CryptoMiniSat.
//
// Design:
//
//   - Clauses live in a flat arena (one []uint32 of headers + literals, see
//     arena.go) referenced by offset, so the clause database is a single
//     allocation, propagation walks contiguous memory, and learned-clause
//     deletion compacts in one pass.
//   - Unit propagation uses two watched literals per clause with blocking
//     literals in the watch lists: a satisfied blocker skips the clause
//     without touching the arena.
//   - XOR rows are propagated natively with a two-watch scheme over their
//     variables (xor.go), after reduction against an online echelon basis
//     that catches linearly dependent or contradictory rows at add time.
//   - Decisions use VSIDS activities via an indexed binary max-heap
//     (heap.go) with multiplicative decay, and phase saving for polarity.
//   - Conflicts are analysed to the first unique implication point; each
//     learned clause is scored with its LBD (literal block distance, the
//     number of distinct decision levels it spans). When the learned
//     database outgrows its budget the solver restarts and deletes the
//     worst half by (LBD, size), keeping "glue" clauses (LBD ≤ 2) and
//     compacting the arena (reduce at level 0 means no learned clause is
//     locked as a reason).
//   - Restarts follow the Luby sequence (base 100 conflicts).
//   - Solving is incremental: clauses, XOR rows, and fresh variables
//     (AddVar) may be added between Solve calls, and Solve takes assumption
//     literals that are fixed for that call only and fully undone before it
//     returns — the substrate for reusing one solver across the model
//     counters' hash-cell queries via activation selectors.
//
// # Concurrency contract
//
// A Solver is strictly single-goroutine: every entry point (AddClause,
// AddXOR, Solve, EnumerateBlocking, Simplify) mutates the arena, the
// trail, and the heap, and nothing is locked. There is no Fork either —
// isolation lives one layer up, where oracle.CNFSource forks per trial by
// rebuilding a solver from the immutable formula. Model callbacks run on
// the calling goroutine and receive a scratch assignment vector owned by
// the solver, valid only for the duration of the callback (clone to keep).
// Given the same sequence of calls, the solver is fully deterministic:
// decisions, restarts, and learned-clause deletion depend only on the
// input sequence, never on time or scheduling — the property the
// fixed-seed regression suites and the differential harness
// (diff_test.go) lean on.
package sat

import (
	"sort"

	"mcf0/internal/bitvec"
	"mcf0/internal/formula"
	"mcf0/internal/gf2"
)

// lbool is a three-valued boolean.
type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

// Literal encoding: positive literal of variable v is 2v, negative 2v+1.
func mkLit(v int, neg bool) uint32 {
	l := uint32(v) << 1
	if neg {
		l |= 1
	}
	return l
}

func litVar(l uint32) uint32 { return l >> 1 }

// Reason and conflict descriptors: a cref, or xorFlag|xorIndex, or the
// sentinels below. Arena offsets stay under xorFlag.
const (
	reasonNone uint32 = ^uint32(0)
	confNone   uint32 = ^uint32(0)
	xorFlag    uint32 = 1 << 31
)

// Stats counts solver work, used by the experiment harness and surfaced by
// cmd/approxmc -v.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Learned      int64
	// Deleted counts learned clauses removed by database reduction.
	Deleted  int64
	Restarts int64
	// LearnedLits counts literals in first-UIP clauses before minimization;
	// MinimizedLits counts how many of them recursive self-subsumption
	// pruned. MinimizedLits/LearnedLits is the shrink rate.
	LearnedLits   int64
	MinimizedLits int64
}

// Add accumulates o into s, for aggregating per-fork solver meters.
func (s *Stats) Add(o Stats) {
	s.Decisions += o.Decisions
	s.Propagations += o.Propagations
	s.Conflicts += o.Conflicts
	s.Learned += o.Learned
	s.Deleted += o.Deleted
	s.Restarts += o.Restarts
	s.LearnedLits += o.LearnedLits
	s.MinimizedLits += o.MinimizedLits
}

// Solver is an incremental CDCL SAT solver.
type Solver struct {
	nVars    int
	baseVars int // variables present at New; the XOR basis covers these

	ca      clauseArena
	clauses []cref // problem clauses
	learnts []cref

	watches    [][]watcher // literal → watch list
	xors       []xorRow
	xorWatches [][]uint32 // variable → xor indices watching it
	xorSys     *gf2.System

	assign   []lbool
	level    []int32
	reason   []uint32
	phase    []bool // saved phase for decision polarity
	activity []float64
	varInc   float64

	heap      []uint32
	heapIndex []int32

	trail    []uint32
	trailLim []int32
	qhead    int

	maxLearnts int

	unsat bool // established at level 0

	// Scratch buffers (zero steady-state allocation on the hot paths).
	seen         []bool
	levelStamp   []uint64
	lbdStamp     uint64
	learnedBuf   []uint32
	encBuf       []uint32
	litSeen      []uint8
	xorVarBuf    []uint32
	xorClauseBuf []uint32
	xorVecBuf    bitvec.BitVec
	xorResBuf    bitvec.BitVec
	assumpBuf    []uint32
	blockBuf     []uint32
	reduceBuf    []cref
	minStack     []uint32
	minClear     []uint32

	stats Stats
}

// New returns a solver over nVars variables, all unassigned.
func New(nVars int) *Solver {
	s := &Solver{
		nVars:      nVars,
		baseVars:   nVars,
		watches:    make([][]watcher, 2*nVars),
		xorWatches: make([][]uint32, nVars),
		xorSys:     gf2.NewSystem(nVars),
		assign:     make([]lbool, 2*nVars),
		level:      make([]int32, nVars),
		reason:     make([]uint32, nVars),
		phase:      make([]bool, nVars),
		activity:   make([]float64, nVars),
		varInc:     1,
		heap:       make([]uint32, nVars),
		heapIndex:  make([]int32, nVars),
		maxLearnts: 1000,
		seen:       make([]bool, nVars),
		levelStamp: make([]uint64, nVars+1),
		litSeen:    make([]uint8, 2*nVars),
		xorVecBuf:  bitvec.New(nVars),
		xorResBuf:  bitvec.New(nVars),
	}
	for i := range s.reason {
		s.reason[i] = reasonNone
	}
	for v := 0; v < nVars; v++ {
		s.heap[v] = uint32(v)
		s.heapIndex[v] = int32(v)
	}
	return s
}

// NVars returns the current variable count, including variables added with
// AddVar.
func (s *Solver) NVars() int { return s.nVars }

// Stats returns a copy of the work counters.
func (s *Solver) Stats() Stats { return s.stats }

// AddVar introduces a fresh unassigned variable and returns its index.
// Fresh variables serve as activation selectors in the incremental
// protocol: a constraint extended with a fresh variable is enabled by
// assuming the selector false and retired by pinning it true.
func (s *Solver) AddVar() int {
	v := s.nVars
	s.nVars++
	s.watches = append(s.watches, nil, nil)
	s.xorWatches = append(s.xorWatches, nil)
	s.assign = append(s.assign, lUndef, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, reasonNone)
	s.phase = append(s.phase, false)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.litSeen = append(s.litSeen, 0, 0)
	s.levelStamp = append(s.levelStamp, 0)
	s.heapIndex = append(s.heapIndex, -1)
	s.heapInsert(uint32(v))
	return v
}

// value returns literal l's truth value; assignments are stored per
// literal (both polarities written on enqueue) so this is a single load on
// the propagation hot path.
func (s *Solver) value(l uint32) lbool { return s.assign[l] }

// varValue returns variable v's truth value.
func (s *Solver) varValue(v uint32) lbool { return s.assign[v<<1] }

// AddClause adds a disjunction of literals. Returns false if the formula is
// already unsatisfiable at level 0. Must be called at decision level 0
// (true initially and after Solve returns).
func (s *Solver) AddClause(lits []formula.Lit) bool {
	if s.unsat {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause above decision level 0")
	}
	enc := s.encBuf[:0]
	for _, l := range lits {
		if l.Var < 0 || l.Var >= s.nVars {
			panic("sat: literal variable out of range")
		}
		enc = append(enc, mkLit(l.Var, l.Neg))
	}
	s.encBuf = enc[:0]
	// Simplify: drop false literals, detect satisfied/tautological clauses,
	// dedupe via the per-literal scratch marks.
	out := enc[:0]
	result := int8(-1) // -1: keep going, 0: satisfied/tautology, 1: install
	for _, l := range enc {
		switch s.value(l) {
		case lTrue:
			result = 0
		case lFalse:
			continue
		default:
			if s.litSeen[l] != 0 {
				continue
			}
			if s.litSeen[l^1] != 0 {
				result = 0 // tautology
			}
			s.litSeen[l] = 1
			out = append(out, l)
		}
		if result == 0 {
			break
		}
	}
	for _, l := range out {
		s.litSeen[l] = 0
	}
	if result == 0 {
		return true
	}
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		s.enqueue(out[0], reasonNone)
		if s.propagate() != confNone {
			s.unsat = true
			return false
		}
		return true
	}
	c := s.ca.alloc(out, false, 0)
	s.clauses = append(s.clauses, c)
	s.attach(c, out[0], out[1])
	return true
}

func (s *Solver) attach(c cref, l0, l1 uint32) {
	s.watches[l0] = append(s.watches[l0], watcher{c: c, blocker: l1})
	s.watches[l1] = append(s.watches[l1], watcher{c: c, blocker: l0})
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, int32(len(s.trail)))
	if len(s.levelStamp) <= len(s.trailLim) {
		s.levelStamp = append(s.levelStamp, 0)
	}
}

// enqueue records the assignment implied by literal l with the given
// reason. The caller must ensure l is currently unassigned.
func (s *Solver) enqueue(l uint32, reason uint32) {
	s.assign[l] = lTrue
	s.assign[l^1] = lFalse
	v := l >> 1
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = reason
	s.trail = append(s.trail, l)
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= int(bound); i-- {
		l := s.trail[i]
		v := l >> 1
		s.phase[v] = l&1 == 0
		s.assign[l] = lUndef
		s.assign[l^1] = lUndef
		s.reason[v] = reasonNone
		s.heapInsert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// propagate performs unit propagation over clauses and XOR rows until
// fixpoint or conflict. Returns a conflict descriptor.
func (s *Solver) propagate() uint32 {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		if conf := s.propagateClauses(l ^ 1); conf != confNone {
			return conf
		}
		if len(s.xors) != 0 {
			if conf := s.propagateXORs(l >> 1); conf != confNone {
				return conf
			}
		}
	}
	return confNone
}

// propagateClauses visits clauses watching the now-false literal fl.
func (s *Solver) propagateClauses(fl uint32) uint32 {
	ws := s.watches[fl]
	kept := ws[:0]
	for wi := 0; wi < len(ws); wi++ {
		w := ws[wi]
		// Blocking literal: a known-true blocker satisfies the clause
		// without touching the arena.
		if s.value(w.blocker) == lTrue {
			kept = append(kept, w)
			continue
		}
		lits := s.ca.lits(w.c)
		// Ensure lits[1] is the false watch.
		if lits[0] == fl {
			lits[0], lits[1] = lits[1], lits[0]
		}
		first := lits[0]
		if first != w.blocker && s.value(first) == lTrue {
			kept = append(kept, watcher{c: w.c, blocker: first})
			continue
		}
		// Search a replacement watch.
		found := false
		for k := 2; k < len(lits); k++ {
			if s.value(lits[k]) != lFalse {
				lits[1], lits[k] = lits[k], lits[1]
				s.watches[lits[1]] = append(s.watches[lits[1]], watcher{c: w.c, blocker: first})
				found = true
				break
			}
		}
		if found {
			continue // moved to another watch list
		}
		// Clause is unit or conflicting.
		kept = append(kept, watcher{c: w.c, blocker: first})
		if s.value(first) == lFalse {
			// Conflict: keep remaining watches, restore list, report.
			kept = append(kept, ws[wi+1:]...)
			s.watches[fl] = kept
			return w.c
		}
		s.enqueue(first, w.c)
	}
	s.watches[fl] = kept
	return confNone
}

// reasonLits returns the clause form of the reason for variable v's
// assignment: a clause whose first literal asserts v and whose others are
// false under the current assignment.
func (s *Solver) reasonLits(v uint32) []uint32 {
	r := s.reason[v]
	if r&xorFlag != 0 && r != reasonNone {
		return s.xorClause(&s.xors[r&^xorFlag], int64(v))
	}
	return s.ca.lits(r)
}

func (s *Solver) conflictLits(conf uint32) []uint32 {
	if conf&xorFlag != 0 {
		return s.xorClause(&s.xors[conf&^xorFlag], -1)
	}
	return s.ca.lits(conf)
}

func (s *Solver) bumpVar(v uint32) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heapFix(v)
}

// analyze performs first-UIP conflict analysis. It returns the learned
// clause (asserting literal first, highest-level other literal second), the
// backtrack level, and the clause's LBD.
func (s *Solver) analyze(conf uint32) ([]uint32, int, uint32) {
	learned := append(s.learnedBuf[:0], 0) // placeholder for asserting literal
	counter := 0
	idx := len(s.trail) - 1
	lits := s.conflictLits(conf)
	skipFirst := false
	for {
		start := 0
		if skipFirst {
			start = 1 // skip the asserting literal of the reason
		}
		for _, q := range lits[start:] {
			v := litVar(q)
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) >= s.decisionLevel() {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Find the next marked literal on the trail.
		for !s.seen[s.trail[idx]>>1] {
			idx--
		}
		p := s.trail[idx]
		v := p >> 1
		s.seen[v] = false
		counter--
		idx--
		skipFirst = true
		if counter == 0 {
			learned[0] = p ^ 1
			break
		}
		lits = s.reasonLits(v)
	}
	// Recursive self-subsumption (MiniSat-style minimization): drop every
	// literal whose reason set is dominated by the rest of the clause. The
	// seen marks double as the "in clause or proven removable" set; all
	// marks made here and above are cleared together via minClear.
	marks := s.minClear[:0]
	for _, q := range learned[1:] {
		marks = append(marks, q>>1)
	}
	s.minClear = marks
	orig := len(learned)
	s.stats.LearnedLits += int64(orig)
	learned = s.minimizeLearned(learned)
	s.stats.MinimizedLits += int64(orig - len(learned))
	// Compute backtrack level, moving the max-level literal to position 1
	// (the second watch), and clear marks.
	back := 0
	for i := 1; i < len(learned); i++ {
		if lvl := int(s.level[learned[i]>>1]); lvl > back {
			back = lvl
			learned[1], learned[i] = learned[i], learned[1]
		}
	}
	for _, v := range s.minClear {
		s.seen[v] = false
	}
	// LBD: distinct decision levels spanned by the clause.
	s.lbdStamp++
	lbd := uint32(0)
	for _, q := range learned {
		lvl := s.level[q>>1]
		if s.levelStamp[lvl] != s.lbdStamp {
			s.levelStamp[lvl] = s.lbdStamp
			lbd++
		}
	}
	s.learnedBuf = learned
	return learned, back, lbd
}

// minimizeLearned compacts the first-UIP clause in place, dropping every
// non-asserting literal proven redundant by litRedundant. On entry the seen
// marks are set exactly for the vars of learned[1:] (the analyze loop's
// invariant) and minClear lists them; litRedundant extends both with the
// vars it proves removable, and analyze clears everything via minClear.
func (s *Solver) minimizeLearned(learned []uint32) []uint32 {
	if len(learned) <= 1 {
		return learned
	}
	// Bloom filter of the decision levels present in the clause: a literal
	// is only removable if its whole reason cone stays on these levels, so
	// probes into foreign levels fail without walking the cone.
	var levels uint32
	for _, q := range learned[1:] {
		levels |= 1 << (uint(s.level[q>>1]) & 31)
	}
	out := learned[:1]
	for _, q := range learned[1:] {
		if s.reason[q>>1] == reasonNone || !s.litRedundant(q, levels) {
			out = append(out, q)
		}
	}
	return out
}

// litRedundant reports whether literal p of the learned clause is implied
// by the remaining literals: every literal reachable through reason clauses
// from p must itself be in the clause (seen), at level 0, or recursively
// redundant. Marks proven during the walk persist in seen/minClear — shared
// reason cones are explored once per conflict — and marks from a failed
// probe are rolled back so they cannot masquerade as clause membership.
func (s *Solver) litRedundant(p uint32, levels uint32) bool {
	stack := append(s.minStack[:0], p)
	top := len(s.minClear)
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		lits := s.reasonLits(litVar(q))
		for _, l := range lits[1:] {
			v := litVar(l)
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			if s.reason[v] == reasonNone || levels&(1<<(uint(s.level[v])&31)) == 0 {
				for _, w := range s.minClear[top:] {
					s.seen[w] = false
				}
				s.minClear = s.minClear[:top]
				s.minStack = stack[:0]
				return false
			}
			s.seen[v] = true
			s.minClear = append(s.minClear, v)
			stack = append(stack, l)
		}
	}
	s.minStack = stack[:0]
	return true
}

// record installs a learned clause and asserts its first literal.
func (s *Solver) record(learned []uint32, lbd uint32) {
	s.stats.Learned++
	if len(learned) == 1 {
		s.enqueue(learned[0], reasonNone)
		return
	}
	c := s.ca.alloc(learned, true, lbd)
	s.learnts = append(s.learnts, c)
	s.attach(c, learned[0], learned[1])
	s.enqueue(learned[0], c)
}

// reduceDB deletes the worst half of the learned clauses by (LBD, size),
// keeping glue clauses (LBD ≤ 2), then compacts the arena. Must be called
// at decision level 0, where no learned clause is locked as a reason.
func (s *Solver) reduceDB() {
	cand := s.reduceBuf[:0]
	for _, c := range s.learnts {
		if s.ca.lbd(c) > 2 {
			cand = append(cand, c)
		}
	}
	s.reduceBuf = cand[:0]
	// Worst first: highest LBD, then longest.
	sort.Slice(cand, func(i, j int) bool {
		li, lj := s.ca.lbd(cand[i]), s.ca.lbd(cand[j])
		if li != lj {
			return li > lj
		}
		return s.ca.size(cand[i]) > s.ca.size(cand[j])
	})
	for _, c := range cand[:len(cand)/2] {
		s.ca.markDeleted(c)
		s.stats.Deleted++
	}
	s.compact()
	s.maxLearnts += s.maxLearnts / 10
}

// Simplify removes clauses satisfied at level 0 (notably retired blocking
// clauses whose activation selector has been pinned) and compacts the
// arena. Must be called at decision level 0; returns false if level-0
// propagation derives unsatisfiability.
func (s *Solver) Simplify() bool {
	if s.unsat {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: Simplify above decision level 0")
	}
	if s.propagate() != confNone {
		s.unsat = true
		return false
	}
	s.compact()
	return true
}

// compact rewrites the arena with only live clauses, dropping deleted
// clauses and clauses satisfied at level 0, stripping level-0-false
// literals, and rebuilding every watch list. Level-0 reasons are cleared
// (conflict analysis never dereferences them).
func (s *Solver) compact() {
	old := s.ca.data
	s.ca.data = make([]uint32, 0, len(old))
	clauses, learnts := s.clauses[:0], s.learnts[:0]
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	oldArena := clauseArena{data: old}
	copyList := func(list []cref, learned bool) {
		for _, c := range list {
			if oldArena.deleted(c) {
				continue
			}
			lits := oldArena.lits(c)
			keep := lits[:0]
			satisfied := false
			for _, l := range lits {
				switch s.value(l) {
				case lTrue:
					satisfied = true
				case lFalse:
					continue
				default:
					keep = append(keep, l)
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			// Unsatisfied clauses retain ≥ 2 unassigned literals at level
			// 0 (units were propagated, empty clauses flagged unsat).
			nc := s.ca.alloc(keep, learned, oldArena.lbd(c))
			s.attach(nc, keep[0], keep[1])
			if learned {
				learnts = append(learnts, nc)
			} else {
				clauses = append(clauses, nc)
			}
		}
	}
	copyList(s.clauses, false)
	copyList(s.learnts, true)
	s.clauses, s.learnts = clauses, learnts
	for _, l := range s.trail {
		s.reason[l>>1] = reasonNone
	}
}

// luby returns the i-th element (1-based) of the Luby restart sequence.
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<uint(k))-1 {
			return 1 << uint(k-1)
		}
		if i < (1<<uint(k))-1 {
			return luby(i - (1 << uint(k-1)) + 1)
		}
	}
}

// prologue runs level-0 propagation and encodes assumption literals,
// returning false when the formula is unsatisfiable outright.
func (s *Solver) prologue(assumps []formula.Lit) ([]uint32, bool) {
	if conf := s.propagate(); conf != confNone {
		s.unsat = true
		return nil, false
	}
	as := s.assumpBuf[:0]
	for _, l := range assumps {
		if l.Var < 0 || l.Var >= s.nVars {
			panic("sat: assumption variable out of range")
		}
		as = append(as, mkLit(l.Var, l.Neg))
	}
	s.assumpBuf = as[:0]
	return as, true
}

// restartSched carries the Luby restart schedule across a solve session,
// including continuation searches during enumeration.
type restartSched struct {
	num       int64
	budget    int64
	conflicts int64
}

const restartBase = 100

func newRestartSched() restartSched {
	return restartSched{num: 1, budget: restartBase * luby(1)}
}

// search runs the CDCL loop until a satisfying assignment is reached (true;
// the trail is left intact so the caller can read the model or continue
// enumerating) or the formula is unsatisfiable under the assumptions
// (false; s.unsat is additionally set when unsatisfiability is established
// at level 0, independent of the assumptions).
func (s *Solver) search(as []uint32, rs *restartSched) bool {
	for {
		conf := s.propagate()
		if conf != confNone {
			s.stats.Conflicts++
			rs.conflicts++
			if s.decisionLevel() == 0 {
				s.unsat = true
				return false
			}
			learned, back, lbd := s.analyze(conf)
			s.cancelUntil(back)
			s.record(learned, lbd)
			s.varInc /= 0.95
			continue
		}
		if rs.conflicts >= rs.budget {
			// Restart; reduce the learned database when over budget
			// (level 0 is the safe point: no locked reasons).
			s.stats.Restarts++
			rs.num++
			rs.conflicts = 0
			rs.budget = restartBase * luby(rs.num)
			s.cancelUntil(0)
			if len(s.learnts) >= s.maxLearnts {
				s.reduceDB()
			}
			continue
		}
		// Establish pending assumptions as decisions.
		decision := reasonNone
		for decision == reasonNone && s.decisionLevel() < len(as) {
			p := as[s.decisionLevel()]
			switch s.value(p) {
			case lTrue:
				s.newDecisionLevel() // dummy level keeps indices aligned
			case lFalse:
				// Conflicting assumptions: UNSAT under assumptions, but
				// the formula itself is untouched.
				return false
			default:
				decision = p
			}
		}
		if decision == reasonNone {
			v := -1
			for {
				v = s.heapPop()
				if v < 0 || s.varValue(uint32(v)) == lUndef {
					break
				}
			}
			if v < 0 {
				return true // all variables assigned: SAT
			}
			s.stats.Decisions++
			decision = mkLit(v, !s.phase[v])
		}
		s.newDecisionLevel()
		s.enqueue(decision, reasonNone)
	}
}

// model snapshots the current assignment of variables [0, n).
func (s *Solver) model(n int) bitvec.BitVec {
	m := bitvec.New(n)
	for i := 0; i < n; i++ {
		if s.assign[i<<1] == lTrue {
			m.Set(i, true)
		}
	}
	return m
}

// Solve searches for a satisfying assignment under the given assumption
// literals, returning (model, true) on SAT and (zero, false) when the
// formula is unsatisfiable under the assumptions. The model covers all
// NVars() variables. The solver backtracks to level 0 before returning —
// assumptions are fully undone — so clauses, XOR rows, and variables may be
// added between calls (e.g. blocking clauses for enumeration).
func (s *Solver) Solve(assumps ...formula.Lit) (bitvec.BitVec, bool) {
	if s.unsat {
		return bitvec.BitVec{}, false
	}
	defer s.cancelUntil(0)
	as, ok := s.prologue(assumps)
	if !ok {
		return bitvec.BitVec{}, false
	}
	rs := newRestartSched()
	if !s.search(as, &rs) {
		return bitvec.BitVec{}, false
	}
	return s.model(s.nVars), true
}

// blockCurrent installs a clause forbidding the current assignment of
// variables [0, nBlock), with the extra literals appended, and backjumps
// just far enough to unassign the clause — the continuation step of
// AllSAT-style enumeration, avoiding a full re-descent per model. All
// clause literals must be false under the current assignment (extra
// literals are typically assumed-false selectors). Returns false when the
// blocked assignment was forced at level 0, i.e. it was the last model.
func (s *Solver) blockCurrent(nBlock int, extra []uint32) bool {
	lits := append(s.blockBuf[:0], extra...)
	for v := 0; v < nBlock; v++ {
		lits = append(lits, mkLit(v, s.varValue(uint32(v)) == lTrue))
	}
	s.blockBuf = lits[:0]
	if len(lits) == 0 {
		s.unsat = true // blocking the empty assignment: no models remain
		return false
	}
	maxLvl := 0
	for _, l := range lits {
		if lv := int(s.level[l>>1]); lv > maxLvl {
			maxLvl = lv
		}
	}
	if maxLvl == 0 {
		s.unsat = true
		return false
	}
	if len(lits) == 1 {
		// Unit block: the single variable must flip, permanently.
		s.cancelUntil(0)
		s.enqueue(lits[0], reasonNone)
		return true
	}
	// Watch selection. With an extra selector literal, watch it first: its
	// entry is dormant while the selector is assumed false, and once the
	// query retires the selector (pinned true) every visit through the
	// other watch short-circuits on the now-true blocker. The second watch
	// is the deepest blocked literal, freed by the backjump, so the clause
	// re-triggers correctly on re-descent. Without extras, watch the two
	// deepest literals.
	if ne := len(extra); ne > 0 && ne < len(lits) {
		deep := ne
		for i := ne + 1; i < len(lits); i++ {
			if s.level[lits[i]>>1] > s.level[lits[deep]>>1] {
				deep = i
			}
		}
		lits[1], lits[deep] = lits[deep], lits[1]
	} else {
		for i := 1; i < len(lits); i++ {
			if s.level[lits[i]>>1] > s.level[lits[0]>>1] {
				lits[0], lits[i] = lits[i], lits[0]
			}
		}
		for i := 2; i < len(lits); i++ {
			if s.level[lits[i]>>1] > s.level[lits[1]>>1] {
				lits[1], lits[i] = lits[i], lits[1]
			}
		}
	}
	c := s.ca.alloc(lits, false, 0)
	s.clauses = append(s.clauses, c)
	s.attach(c, lits[0], lits[1])
	s.cancelUntil(maxLvl - 1)
	return true
}

// BlockModel adds the clause forbidding the given assignment (over the
// model's variables), enabling AllSAT-style enumeration. Returns false if
// the formula becomes unsatisfiable.
func (s *Solver) BlockModel(model bitvec.BitVec) bool {
	n := model.Len()
	if n > s.nVars {
		n = s.nVars
	}
	lits := make([]formula.Lit, n)
	for v := 0; v < n; v++ {
		lits[v] = formula.Lit{Var: v, Neg: model.Get(v)}
	}
	return s.AddClause(lits)
}

// EnumerateBlocking visits up to limit models (limit < 0 for all)
// consistent with the assumptions. Each visited model is blocked over
// variables [0, nBlock) by a clause that additionally contains the extra
// literals, which must be false under the assumptions (activation
// selectors): assuming them false in a later call re-engages the blocks,
// pinning them true retires the blocks. Enumeration proceeds by
// continuation — after each model the solver backjumps only far enough to
// unassign the blocking clause instead of restarting the search — so the
// per-model cost is local. visit returning false stops early.
//
// It returns the number of models visited and whether the search space was
// exhausted (as opposed to stopping at limit or at visit's request): an
// exhausted enumeration is the analogue of the final UNSAT answer of a
// solve-block-resolve loop, which oracle metering counts as one more query.
func (s *Solver) EnumerateBlocking(limit, nBlock int, extra []formula.Lit, visit func(bitvec.BitVec) bool, assumps ...formula.Lit) (int, bool) {
	if s.unsat {
		return 0, true
	}
	if limit == 0 {
		return 0, false
	}
	if nBlock < 0 || nBlock > s.nVars {
		panic("sat: blocking variable range out of bounds")
	}
	defer s.cancelUntil(0)
	as, ok := s.prologue(assumps)
	if !ok {
		return 0, true
	}
	ex := make([]uint32, len(extra))
	for i, l := range extra {
		if l.Var < 0 || l.Var >= s.nVars {
			panic("sat: extra literal variable out of range")
		}
		ex[i] = mkLit(l.Var, l.Neg)
	}
	rs := newRestartSched()
	count := 0
	for limit < 0 || count < limit {
		if !s.search(as, &rs) {
			return count, true
		}
		count++
		if !visit(s.model(nBlock)) {
			return count, false
		}
		if limit >= 0 && count >= limit {
			return count, false
		}
		if !s.blockCurrent(nBlock, ex) {
			return count, true
		}
	}
	return count, false
}

// EnumerateModels visits up to limit models (limit < 0 for all) consistent
// with the assumptions, blocking each before searching for the next. visit
// returning false stops early. It returns the number of models visited.
// Blocking clauses are permanent: they also exclude the visited models from
// later Solve calls.
func (s *Solver) EnumerateModels(limit int, visit func(bitvec.BitVec) bool, assumps ...formula.Lit) int {
	count, _ := s.EnumerateBlocking(limit, s.nVars, nil, visit, assumps...)
	return count
}
