package sat

import (
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/formula"
	"mcf0/internal/stats"
)

// The three microbenchmarks cover the solver's distinct cost regimes —
// propagation-dominated search, XOR(GF(2))-dominated propagation, and
// blocking-clause enumeration — so scripts/bench.sh can attribute E1
// regressions to the right subsystem.

// benchPlanted returns a satisfiable planted 3-CNF at clause ratio 4.
func benchPlanted(n int, rng *stats.RNG) *formula.CNF {
	cnf, _ := formula.PlantedKCNF(n, 4*n, 3, rng)
	return cnf
}

func loadCNF(s *Solver, cnf *formula.CNF) bool {
	for _, cl := range cnf.Clauses {
		if !s.AddClause([]formula.Lit(cl)) {
			return false
		}
	}
	return true
}

// BenchmarkSolvePropagateHeavy builds and solves a planted 3-SAT instance:
// unit propagation over the clause watch lists is the dominant cost.
func BenchmarkSolvePropagateHeavy(b *testing.B) {
	rng := stats.NewRNG(71)
	cnf := benchPlanted(150, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(cnf.N)
		if !loadCNF(s, cnf) {
			b.Fatal("planted instance unsat at load")
		}
		if _, ok := s.Solve(); !ok {
			b.Fatal("planted instance unsat")
		}
	}
}

// BenchmarkSolveXORHeavy solves a consistent dense random XOR system plus a
// thin planted CNF layer: XOR watch propagation and conflict analysis over
// parity reasons dominate.
func BenchmarkSolveXORHeavy(b *testing.B) {
	rng := stats.NewRNG(73)
	n := 96
	xstar := bitvec.Random(n, rng.Uint64)
	rows := make([]bitvec.BitVec, 64)
	rhs := make([]bool, len(rows))
	for i := range rows {
		rows[i] = bitvec.Random(n, rng.Uint64)
		rhs[i] = rows[i].Dot(xstar)
	}
	var vars [][]int
	for _, r := range rows {
		var vs []int
		for v := 0; v < n; v++ {
			if r.Get(v) {
				vs = append(vs, v)
			}
		}
		vars = append(vars, vs)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(n)
		for j := range vars {
			if !s.AddXOR(vars[j], rhs[j]) {
				b.Fatal("consistent XOR system rejected")
			}
		}
		if _, ok := s.Solve(); !ok {
			b.Fatal("consistent XOR system unsat")
		}
	}
}

// BenchmarkEnumerationHeavy enumerates every model of a loose CNF cell cut
// down by XOR constraints — the BoundedSAT shape: repeated Solve calls with
// accumulating blocking clauses.
func BenchmarkEnumerationHeavy(b *testing.B) {
	rng := stats.NewRNG(79)
	n := 18
	cnf, _ := formula.PlantedKCNF(n, n, 3, rng)
	xstar := bitvec.Random(n, rng.Uint64)
	rows := make([]bitvec.BitVec, 6)
	rhs := make([]bool, len(rows))
	for i := range rows {
		rows[i] = bitvec.Random(n, rng.Uint64)
		rhs[i] = rows[i].Dot(xstar)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(n)
		if !loadCNF(s, cnf) {
			b.Fatal("planted instance unsat at load")
		}
		for j := range rows {
			var vs []int
			for v := 0; v < n; v++ {
				if rows[j].Get(v) {
					vs = append(vs, v)
				}
			}
			if !s.AddXOR(vs, rhs[j]) {
				b.Fatal("planted XOR rejected")
			}
		}
		if got := s.EnumerateModels(-1, func(bitvec.BitVec) bool { return true }); got == 0 {
			b.Fatal("planted cell empty")
		}
	}
}

// BenchmarkIncrementalAssumptions measures the oracle usage pattern one
// solver instance now serves: XOR rows installed once behind activation
// selectors, then many Solve calls under growing selector-assumption
// prefixes (the hash-count search shape), with no per-query rebuild.
func BenchmarkIncrementalAssumptions(b *testing.B) {
	rng := stats.NewRNG(83)
	n := 64
	cnf, xstar := formula.PlantedKCNF(n, 4*n, 3, rng)
	s := New(cnf.N)
	if !loadCNF(s, cnf) {
		b.Fatal("planted instance unsat at load")
	}
	sels := make([]formula.Lit, 24)
	for i := range sels {
		row := bitvec.Random(n, rng.Uint64)
		sel := s.AddVar()
		vs := []int{sel}
		for v := 0; v < n; v++ {
			if row.Get(v) {
				vs = append(vs, v)
			}
		}
		if !s.AddXOR(vs, row.Dot(xstar)) {
			b.Fatal("selector row rejected")
		}
		sels[i] = formula.Lit{Var: sel, Neg: true}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := 1 + i%len(sels)
		if _, ok := s.Solve(sels[:m]...); !ok {
			b.Fatal("planted cell empty")
		}
	}
}
