package sat

import (
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/formula"
	"mcf0/internal/gf2"
	"mcf0/internal/stats"
)

// TestPureXORAgainstGaussianElimination: satisfiability of a pure XOR
// system must match gf2's Gaussian elimination, including at sizes far
// beyond brute force.
func TestPureXORAgainstGaussianElimination(t *testing.T) {
	rng := stats.NewRNG(501)
	for trial := 0; trial < 60; trial++ {
		// Overdetermined rows are caught instantly by the echelon basis;
		// consistent dense systems still exercise CDCL search, so sizes
		// are kept moderate (decision order on pivot variables is the
		// known hard case for clause learning).
		n := 16 + rng.Intn(24)
		rows := rng.Intn(n + 20)
		sys := gf2.NewSystem(n)
		s := New(n)
		ok := true
		for r := 0; r < rows; r++ {
			vec := bitvec.Random(n, rng.Uint64)
			rhs := rng.Bool()
			sys.Add(vec, rhs)
			var vars []int
			for i := 0; i < n; i++ {
				if vec.Get(i) {
					vars = append(vars, i)
				}
			}
			if !s.AddXOR(vars, rhs) {
				ok = false
				break
			}
		}
		var sat bool
		if ok {
			_, sat = s.Solve()
		}
		if sat != sys.Consistent() {
			t.Fatalf("trial %d (n=%d rows=%d): solver=%v gauss=%v", trial, n, rows, sat, sys.Consistent())
		}
		if sat {
			// Model must satisfy the system (checked via gf2 equations).
			model, _ := New(n), false
			_ = model
			s2 := New(n)
			for _, eq := range sys.Equations() {
				var vars []int
				for i := 0; i < n; i++ {
					if eq.A.Get(i) {
						vars = append(vars, i)
					}
				}
				s2.AddXOR(vars, eq.RHS)
			}
			m2, ok2 := s2.Solve()
			if !ok2 {
				t.Fatal("reduced system unsat but original sat")
			}
			for _, eq := range sys.Equations() {
				if eq.A.Dot(m2) != eq.RHS {
					t.Fatal("model violates reduced equation")
				}
			}
		}
	}
}

// TestXORCountMatchesRank: enumerating a pure XOR system's models must
// yield exactly 2^(n−rank).
func TestXORCountMatchesRank(t *testing.T) {
	rng := stats.NewRNG(503)
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(8)
		rows := rng.Intn(n + 2)
		sys := gf2.NewSystem(n)
		s := New(n)
		feasible := true
		for r := 0; r < rows; r++ {
			vec := bitvec.Random(n, rng.Uint64)
			rhs := rng.Bool()
			sys.Add(vec, rhs)
			var vars []int
			for i := 0; i < n; i++ {
				if vec.Get(i) {
					vars = append(vars, i)
				}
			}
			if !s.AddXOR(vars, rhs) {
				feasible = false
				break
			}
		}
		want := 0
		if feasible && sys.Consistent() {
			want = 1 << uint(n-sys.Rank())
		}
		got := 0
		if feasible {
			got = s.EnumerateModels(-1, func(bitvec.BitVec) bool { return true })
		}
		if got != want {
			t.Fatalf("trial %d: %d models, want %d", trial, got, want)
		}
	}
}

// TestDeepBacktracking exercises long implication chains: a chain of
// binary clauses forcing all variables from one decision.
func TestDeepBacktracking(t *testing.T) {
	n := 200
	s := New(n)
	for i := 0; i+1 < n; i++ {
		// xi → xi+1
		s.AddClause([]formula.Lit{formula.Negl(i), formula.Pos(i + 1)})
	}
	s.AddClause([]formula.Lit{formula.Pos(0)})
	m, ok := s.Solve()
	if !ok {
		t.Fatal("chain UNSAT")
	}
	for i := 0; i < n; i++ {
		if !m.Get(i) {
			t.Fatalf("chain did not propagate to x%d", i)
		}
	}
	// Now force a contradiction at the end of the chain.
	s2 := New(n)
	for i := 0; i+1 < n; i++ {
		s2.AddClause([]formula.Lit{formula.Negl(i), formula.Pos(i + 1)})
	}
	s2.AddClause([]formula.Lit{formula.Pos(0)})
	if s2.AddClause([]formula.Lit{formula.Negl(n - 1)}) {
		if _, ok := s2.Solve(); ok {
			t.Fatal("contradictory chain SAT")
		}
	}
}

// TestSolveAfterUnsatStable: once UNSAT, the solver stays UNSAT and
// further API calls are safe.
func TestSolveAfterUnsatStable(t *testing.T) {
	s := New(2)
	s.AddClause([]formula.Lit{formula.Pos(0)})
	s.AddClause([]formula.Lit{formula.Negl(0)})
	for i := 0; i < 3; i++ {
		if _, ok := s.Solve(); ok {
			t.Fatal("UNSAT solver turned SAT")
		}
	}
	if s.AddClause([]formula.Lit{formula.Pos(1)}) {
		t.Fatal("AddClause succeeded on UNSAT solver")
	}
	if s.AddXOR([]int{1}, true) {
		t.Fatal("AddXOR succeeded on UNSAT solver")
	}
}

// TestWideXORRows stresses the XOR watch machinery with rows spanning all
// variables, cross-validated against brute force.
func TestWideXORRows(t *testing.T) {
	rng := stats.NewRNG(509)
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(6)
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		cnf := formula.RandomKCNF(n, rng.Intn(2*n), 2, rng)
		rhs1, rhs2 := rng.Bool(), rng.Bool()
		want, _ := bruteCount(n, cnf, [][]int{all, all[:n-1]}, []bool{rhs1, rhs2})
		s := buildSolver(n, cnf, nil, nil)
		s.AddXOR(all, rhs1)
		s.AddXOR(all[:n-1], rhs2)
		got := s.EnumerateModels(-1, func(bitvec.BitVec) bool { return true })
		if got != want {
			t.Fatalf("trial %d: %d models, want %d", trial, got, want)
		}
	}
}
