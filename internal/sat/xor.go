package sat

import (
	"math/bits"
)

// Native XOR (GF(2)) constraint support. Hash-cell queries of the model
// counters conjoin φ with rows of a linear system h_m(x) = 0^m; expanding a
// width-w row into CNF costs 2^(w−1) clauses, so rows are instead
// propagated directly with a two-watch scheme over their variables, and
// conflict analysis renders a row as its implied clause on demand.

// xorRow is one parity constraint vars[0] ⊕ … ⊕ vars[len−1] = rhs, with
// vars[w1], vars[w2] the two watched positions.
type xorRow struct {
	vars []uint32
	rhs  bool
	w1   int32
	w2   int32
}

// AddXOR adds the GF(2) constraint vars[0] ⊕ vars[1] ⊕ … = rhs. Duplicate
// variables cancel. Returns false if the formula becomes unsatisfiable.
// Must be called at decision level 0.
//
// Rows whose support lies entirely within the variables present at New are
// reduced against an echelon basis of all such rows first: a linearly
// dependent row is either redundant or an immediate contradiction (plain
// clause learning needs exponential resolution proofs on dense XOR systems
// — the observation behind Gaussian-elimination solvers like
// CryptoMiniSat/BIRD), and reduction gives each watched row a unique pivot,
// keeping propagation chains short. Rows touching variables added later by
// AddVar (activation selectors in the incremental protocol) are always
// linearly independent by construction and skip the basis.
func (s *Solver) AddXOR(vars []int, rhs bool) bool {
	if s.unsat {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddXOR above decision level 0")
	}
	// Fold duplicate variables: parity-toggle a per-variable mark.
	touched := s.xorVarBuf[:0]
	inBase := true
	for _, v := range vars {
		if v < 0 || v >= s.nVars {
			panic("sat: XOR variable out of range")
		}
		if v >= s.baseVars {
			inBase = false
		}
		s.seen[v] = !s.seen[v]
		touched = append(touched, uint32(v))
	}
	odd := touched[:0]
	for _, v := range touched {
		if s.seen[v] {
			s.seen[v] = false
			odd = append(odd, v)
		}
	}
	s.xorVarBuf = touched[:0]

	if inBase {
		return s.addXORReduced(odd, rhs)
	}
	return s.installXOR(odd, rhs)
}

// addXORReduced reduces a base-variable row against the echelon basis and
// installs the residual.
func (s *Solver) addXORReduced(odd []uint32, rhs bool) bool {
	vec := s.xorVecBuf
	vw := vec.Words()
	for i := range vw {
		vw[i] = 0
	}
	for _, v := range odd {
		vec.Set(int(v), true)
	}
	rrhs := s.xorSys.ResidualInto(vec, rhs, s.xorResBuf)
	if s.xorResBuf.IsZero() {
		if rrhs {
			s.unsat = true
			return false
		}
		return true // implied by earlier rows
	}
	s.xorSys.AddPrereduced(s.xorResBuf, rrhs)
	support := s.xorVarBuf[:0]
	for wi, w := range s.xorResBuf.Words() {
		for w != 0 {
			support = append(support, uint32(wi*64+bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	ok := s.installXOR(support, rrhs)
	s.xorVarBuf = support[:0]
	return ok
}

// installXOR folds level-0 assignments into the row, then enqueues a unit
// or installs a two-watched row.
func (s *Solver) installXOR(support []uint32, rhs bool) bool {
	vs := make([]uint32, 0, len(support))
	for _, v := range support {
		switch s.varValue(v) {
		case lTrue:
			rhs = !rhs
		case lFalse:
		default:
			vs = append(vs, v)
		}
	}
	switch len(vs) {
	case 0:
		if rhs {
			s.unsat = true
			return false
		}
		return true
	case 1:
		s.enqueue(mkLit(int(vs[0]), !rhs), reasonNone)
		if s.propagate() != confNone {
			s.unsat = true
			return false
		}
		return true
	}
	xi := uint32(len(s.xors))
	s.xors = append(s.xors, xorRow{vars: vs, rhs: rhs, w1: 0, w2: 1})
	s.xorWatches[vs[0]] = append(s.xorWatches[vs[0]], xi)
	s.xorWatches[vs[1]] = append(s.xorWatches[vs[1]], xi)
	return true
}

// propagateXORs visits XOR rows watching variable v, which just became
// assigned. Returns a conflict descriptor or confNone.
func (s *Solver) propagateXORs(v uint32) uint32 {
	ws := s.xorWatches[v]
	kept := ws[:0]
	for wi := 0; wi < len(ws); wi++ {
		xi := ws[wi]
		x := &s.xors[xi]
		// Normalise: w2 is the watch on v.
		if x.vars[x.w1] == v {
			x.w1, x.w2 = x.w2, x.w1
		}
		// Find a replacement unassigned variable (≠ w1 position).
		found := false
		for k := range x.vars {
			if int32(k) == x.w1 || int32(k) == x.w2 {
				continue
			}
			if s.varValue(x.vars[k]) == lUndef {
				x.w2 = int32(k)
				s.xorWatches[x.vars[k]] = append(s.xorWatches[x.vars[k]], xi)
				found = true
				break
			}
		}
		if found {
			continue
		}
		kept = append(kept, xi)
		// All variables other than possibly vars[w1] are assigned.
		other := x.vars[x.w1]
		parity := x.rhs
		unassignedOther := s.varValue(other) == lUndef
		for _, u := range x.vars {
			if u == other && unassignedOther {
				continue
			}
			if s.varValue(u) == lTrue {
				parity = !parity
			}
		}
		if unassignedOther {
			// parity is the required value of `other`.
			s.enqueue(mkLit(int(other), !parity), xorFlag|xi)
		} else if parity {
			// Parity violated: conflict.
			kept = append(kept, ws[wi+1:]...)
			s.xorWatches[v] = kept
			return xorFlag | xi
		}
	}
	s.xorWatches[v] = kept
	return confNone
}

// xorClause renders XOR row x as the clause implied under the current
// assignment: the asserted variable's satisfied literal (when asserted ≥ 0)
// plus the falsified literals of all other variables; a fully false clause
// when asserted < 0 (conflicts). The returned slice is the solver's shared
// scratch buffer, valid until the next call.
func (s *Solver) xorClause(x *xorRow, asserted int64) []uint32 {
	lits := s.xorClauseBuf[:0]
	for _, u := range x.vars {
		if int64(u) == asserted {
			lits = append(lits, mkLit(int(u), s.varValue(u) == lFalse))
		} else {
			// Literal currently false.
			lits = append(lits, mkLit(int(u), s.varValue(u) == lTrue))
		}
	}
	// Place the asserted literal first, as conflict analysis expects for
	// reasons.
	if asserted >= 0 {
		for i, l := range lits {
			if int64(litVar(l)) == asserted {
				lits[0], lits[i] = lits[i], lits[0]
				break
			}
		}
	}
	s.xorClauseBuf = lits
	return lits
}
