package sat

import (
	"fmt"
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/exact"
	"mcf0/internal/formula"
	"mcf0/internal/stats"
)

// Differential harness: random small CNF-XOR instances are cross-checked
// against internal/exact's brute-force enumeration. SAT/UNSAT verdicts,
// model validity, and EnumerateModels counts must match exactly. The same
// checker backs both the seeded table test (10k instances, sharded across
// CPUs) and the fuzz target below.

// instance is a CNF-XOR problem in a solver-independent form.
type instance struct {
	n       int
	cnf     *formula.CNF
	xorVars [][]int
	xorRHS  []bool
}

// eval reports whether x satisfies every clause and XOR row.
func (in *instance) eval(x bitvec.BitVec) bool {
	if in.cnf != nil && !in.cnf.Eval(x) {
		return false
	}
	for i, vars := range in.xorVars {
		parity := false
		for _, v := range vars {
			if x.Get(v) {
				parity = !parity
			}
		}
		if parity != in.xorRHS[i] {
			return false
		}
	}
	return true
}

// build loads the instance into a fresh solver, returning nil when an add
// already established unsatisfiability.
func (in *instance) build() (*Solver, bool) {
	s := New(in.n)
	if in.cnf != nil {
		for _, cl := range in.cnf.Clauses {
			if !s.AddClause([]formula.Lit(cl)) {
				return s, false
			}
		}
	}
	for i, vars := range in.xorVars {
		if !s.AddXOR(vars, in.xorRHS[i]) {
			return s, false
		}
	}
	return s, true
}

// checkInstance is the differential core: exact.Exhaustive is ground truth
// for the verdict and the model count; returned models must evaluate true.
func checkInstance(t testing.TB, in *instance) {
	t.Helper()
	want := int(exact.Exhaustive(in.n, in.eval))
	s, ok := in.build()
	if !ok {
		if want != 0 {
			t.Fatalf("add-time UNSAT but %d models exist (n=%d)", want, in.n)
		}
		return
	}
	model, sat := s.Solve()
	if sat != (want > 0) {
		t.Fatalf("verdict SAT=%v, exact count=%d (n=%d)", sat, want, in.n)
	}
	if sat && !in.eval(model) {
		t.Fatalf("returned non-model %v (n=%d)", model, in.n)
	}
	// Count via enumeration on a fresh solver (the first one now carries
	// learned state; using a fresh one also cross-checks reproducibility).
	s2, ok := in.build()
	got := 0
	if ok {
		seen := map[string]bool{}
		got = s2.EnumerateModels(-1, func(m bitvec.BitVec) bool {
			if !in.eval(m) {
				t.Fatalf("enumerated non-model %v (n=%d)", m, in.n)
			}
			if seen[m.Key()] {
				t.Fatalf("duplicate model %v (n=%d)", m, in.n)
			}
			seen[m.Key()] = true
			return true
		})
	}
	if got != want {
		t.Fatalf("enumerated %d models, exact %d (n=%d)", got, want, in.n)
	}
	// CNF-only instances additionally cross-check the counting DPLL.
	if len(in.xorVars) == 0 && in.cnf != nil {
		if dp := int(exact.CountCNF(in.cnf)); dp != want {
			t.Fatalf("exact.CountCNF=%d, exact.Exhaustive=%d", dp, want)
		}
	}
}

// randomInstance draws a small CNF-XOR instance.
func randomInstance(rng *stats.RNG) *instance {
	n := 3 + rng.Intn(7) // 3..9
	in := &instance{n: n}
	if rng.Intn(8) != 0 { // occasionally pure-XOR
		in.cnf = formula.RandomKCNF(n, rng.Intn(3*n), 1+rng.Intn(3), rng)
	}
	for i, nx := 0, rng.Intn(4); i < nx; i++ {
		w := 1 + rng.Intn(n)
		vars := make([]int, w)
		for j := range vars {
			vars[j] = rng.Intn(n)
		}
		in.xorVars = append(in.xorVars, vars)
		in.xorRHS = append(in.xorRHS, rng.Bool())
	}
	return in
}

// TestDifferentialSolverVsExact runs 10 000 seeded random instances,
// sharded across CPUs.
func TestDifferentialSolverVsExact(t *testing.T) {
	const shards, perShard = 8, 1250
	for shard := 0; shard < shards; shard++ {
		t.Run(fmt.Sprintf("shard%d", shard), func(t *testing.T) {
			t.Parallel()
			rng := stats.NewRNG(0xd1ff + uint64(shard))
			for i := 0; i < perShard; i++ {
				checkInstance(t, randomInstance(rng))
			}
		})
	}
}

// decodeInstance derives a bounded CNF-XOR instance from fuzz bytes:
// byte 0 fixes n; each following control byte opens a clause (high bit 0)
// or an XOR row (high bit 1) whose literals are drawn from the next bytes.
func decodeInstance(data []byte) (*instance, bool) {
	if len(data) < 2 {
		return nil, false
	}
	n := 3 + int(data[0]%6) // 3..8
	in := &instance{n: n, cnf: formula.NewCNF(n)}
	i := 1
	for i < len(data) {
		c := data[i]
		i++
		w := 1 + int((c>>4)&3) // 1..4 literals
		if i+w > len(data) {
			break
		}
		if c&0x80 == 0 {
			if in.cnf.Size() >= 40 {
				break
			}
			lits := make([]formula.Lit, w)
			for j := 0; j < w; j++ {
				b := data[i+j]
				lits[j] = formula.Lit{Var: int(b) % n, Neg: b&0x80 != 0}
			}
			in.cnf.AddClause(formula.Clause(lits))
		} else {
			if len(in.xorVars) >= 6 {
				break
			}
			vars := make([]int, w)
			for j := 0; j < w; j++ {
				vars[j] = int(data[i+j]) % n
			}
			in.xorVars = append(in.xorVars, vars)
			in.xorRHS = append(in.xorRHS, c&1 == 1)
		}
		i += w
	}
	return in, true
}

// FuzzSolverVsExact fuzzes the solver against brute force over the decoded
// instance space. Seed corpus lives in testdata/fuzz/FuzzSolverVsExact.
func FuzzSolverVsExact(f *testing.F) {
	f.Add([]byte{0x01, 0x12, 0x03, 0x84, 0x91, 0x02, 0x01})
	f.Add([]byte{0x04, 0xb3, 0x00, 0x01, 0x02, 0x22, 0x85, 0x03})
	rng := stats.NewRNG(0xfa22)
	for i := 0; i < 4; i++ {
		buf := make([]byte, 8+rng.Intn(24))
		for j := range buf {
			buf[j] = byte(rng.Uint64())
		}
		f.Add(buf)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		in, ok := decodeInstance(data)
		if !ok {
			return
		}
		checkInstance(t, in)
	})
}
