package sat

import (
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/formula"
	"mcf0/internal/stats"
)

// bruteCount counts assignments satisfying the CNF plus XOR rows.
func bruteCount(n int, cnf *formula.CNF, xorVars [][]int, xorRHS []bool) (int, bitvec.BitVec) {
	count := 0
	var witness bitvec.BitVec
	for v := uint64(0); v < 1<<uint(n); v++ {
		x := bitvec.FromUint64(v, n)
		if cnf != nil && !cnf.Eval(x) {
			continue
		}
		ok := true
		for i, vars := range xorVars {
			parity := false
			for _, u := range vars {
				if x.Get(u) {
					parity = !parity
				}
			}
			if parity != xorRHS[i] {
				ok = false
				break
			}
		}
		if ok {
			if count == 0 {
				witness = x
			}
			count++
		}
	}
	return count, witness
}

func buildSolver(n int, cnf *formula.CNF, xorVars [][]int, xorRHS []bool) *Solver {
	s := New(n)
	if cnf != nil {
		for _, cl := range cnf.Clauses {
			if !s.AddClause([]formula.Lit(cl)) {
				return s
			}
		}
	}
	for i, vars := range xorVars {
		if !s.AddXOR(vars, xorRHS[i]) {
			return s
		}
	}
	return s
}

func TestSolveHandcrafted(t *testing.T) {
	// (x0 ∨ x1) ∧ (¬x0 ∨ x1) ∧ (¬x1 ∨ x2): implies x1, x2.
	s := New(3)
	s.AddClause([]formula.Lit{formula.Pos(0), formula.Pos(1)})
	s.AddClause([]formula.Lit{formula.Negl(0), formula.Pos(1)})
	s.AddClause([]formula.Lit{formula.Negl(1), formula.Pos(2)})
	m, ok := s.Solve()
	if !ok {
		t.Fatal("satisfiable formula reported UNSAT")
	}
	if !m.Get(1) || !m.Get(2) {
		t.Fatalf("model %v violates implications", m)
	}

	// x0 ∧ ¬x0 is UNSAT.
	u := New(1)
	u.AddClause([]formula.Lit{formula.Pos(0)})
	u.AddClause([]formula.Lit{formula.Negl(0)})
	if _, ok := u.Solve(); ok {
		t.Fatal("UNSAT formula reported SAT")
	}
}

func TestXORHandcrafted(t *testing.T) {
	// x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, x0 ⊕ x2 = 1 is UNSAT (sum = 0 ≠ 1).
	s := New(3)
	s.AddXOR([]int{0, 1}, true)
	s.AddXOR([]int{1, 2}, true)
	if !s.AddXOR([]int{0, 2}, true) {
		// may already detect unsat at add time via propagation
		return
	}
	if _, ok := s.Solve(); ok {
		t.Fatal("inconsistent XOR system reported SAT")
	}

	// x0 ⊕ x1 ⊕ x2 = 0 with x0 = 1 forces x1 ⊕ x2 = 1.
	s2 := New(3)
	s2.AddXOR([]int{0, 1, 2}, false)
	s2.AddClause([]formula.Lit{formula.Pos(0)})
	m, ok := s2.Solve()
	if !ok {
		t.Fatal("UNSAT on satisfiable XOR system")
	}
	if m.Get(1) == m.Get(2) {
		t.Fatalf("model %v violates parity", m)
	}

	// Duplicate variables cancel: x0 ⊕ x0 ⊕ x1 = 1 means x1 = 1.
	s3 := New(2)
	s3.AddXOR([]int{0, 0, 1}, true)
	m, ok = s3.Solve()
	if !ok || !m.Get(1) {
		t.Fatal("duplicate folding broken")
	}

	// Empty XOR with rhs=1 is UNSAT.
	s4 := New(1)
	if s4.AddXOR(nil, true) {
		t.Fatal("empty XOR=1 accepted")
	}
}

func TestRandomCNFAgainstBruteForce(t *testing.T) {
	rng := stats.NewRNG(11)
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(8)
		m := rng.Intn(5 * n)
		k := 2 + rng.Intn(2)
		cnf := formula.RandomKCNF(n, m, k, rng)
		want, _ := bruteCount(n, cnf, nil, nil)
		s := buildSolver(n, cnf, nil, nil)
		model, ok := s.Solve()
		if ok != (want > 0) {
			t.Fatalf("trial %d: SAT=%v, brute count=%d", trial, ok, want)
		}
		if ok && !cnf.Eval(model) {
			t.Fatalf("trial %d: returned non-model", trial)
		}
	}
}

func TestRandomCNFXORAgainstBruteForce(t *testing.T) {
	rng := stats.NewRNG(13)
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(8)
		m := rng.Intn(3 * n)
		cnf := formula.RandomKCNF(n, m, 2+rng.Intn(2), rng)
		nx := rng.Intn(n)
		var xorVars [][]int
		var xorRHS []bool
		for i := 0; i < nx; i++ {
			w := 1 + rng.Intn(n)
			vars := make([]int, w)
			for j := range vars {
				vars[j] = rng.Intn(n)
			}
			xorVars = append(xorVars, vars)
			xorRHS = append(xorRHS, rng.Bool())
		}
		want, _ := bruteCount(n, cnf, xorVars, xorRHS)
		s := buildSolver(n, cnf, xorVars, xorRHS)
		model, ok := s.Solve()
		if ok != (want > 0) {
			t.Fatalf("trial %d (n=%d): SAT=%v, brute=%d", trial, n, ok, want)
		}
		if ok {
			if !cnf.Eval(model) {
				t.Fatalf("trial %d: model violates CNF", trial)
			}
			for i, vars := range xorVars {
				parity := false
				for _, u := range vars {
					if model.Get(u) {
						parity = !parity
					}
				}
				if parity != xorRHS[i] {
					t.Fatalf("trial %d: model violates XOR %d", trial, i)
				}
			}
		}
	}
}

func TestEnumerateModelsExact(t *testing.T) {
	rng := stats.NewRNG(17)
	for trial := 0; trial < 150; trial++ {
		n := 3 + rng.Intn(6)
		m := rng.Intn(2 * n)
		cnf := formula.RandomKCNF(n, m, 2, rng)
		var xorVars [][]int
		var xorRHS []bool
		if rng.Bool() {
			xorVars = append(xorVars, []int{rng.Intn(n), rng.Intn(n), rng.Intn(n)})
			xorRHS = append(xorRHS, rng.Bool())
		}
		want, _ := bruteCount(n, cnf, xorVars, xorRHS)
		s := buildSolver(n, cnf, xorVars, xorRHS)
		seen := map[string]bool{}
		got := s.EnumerateModels(-1, func(model bitvec.BitVec) bool {
			if seen[model.Key()] {
				t.Fatal("duplicate model enumerated")
			}
			seen[model.Key()] = true
			return true
		})
		if got != want {
			t.Fatalf("trial %d (n=%d m=%d): enumerated %d, brute %d", trial, n, m, got, want)
		}
	}
}

func TestEnumerateLimitAndEarlyStop(t *testing.T) {
	s := New(6) // free formula: 64 models
	if got := s.EnumerateModels(10, func(bitvec.BitVec) bool { return true }); got != 10 {
		t.Fatalf("limit: got %d", got)
	}
	s2 := New(6)
	calls := 0
	s2.EnumerateModels(-1, func(bitvec.BitVec) bool { calls++; return calls < 3 })
	if calls != 3 {
		t.Fatalf("early stop: %d calls", calls)
	}
}

func TestPlantedLargerInstances(t *testing.T) {
	// Larger-than-brute-force satisfiable instances; checks the model, not
	// the count.
	rng := stats.NewRNG(19)
	for trial := 0; trial < 10; trial++ {
		n := 60
		cnf, _ := formula.PlantedKCNF(n, 250, 3, rng)
		s := buildSolver(n, cnf, nil, nil)
		model, ok := s.Solve()
		if !ok {
			t.Fatal("planted instance reported UNSAT")
		}
		if !cnf.Eval(model) {
			t.Fatal("returned non-model on planted instance")
		}
	}
}

func TestHashConstraintScenario(t *testing.T) {
	// The model counter's actual query shape: planted CNF conjoined with
	// random XOR constraints from a hash function; verify against brute
	// force.
	rng := stats.NewRNG(23)
	for trial := 0; trial < 50; trial++ {
		n := 10
		cnf, _ := formula.PlantedKCNF(n, 20, 3, rng)
		var xorVars [][]int
		var xorRHS []bool
		for i := 0; i < 4; i++ {
			var vars []int
			for v := 0; v < n; v++ {
				if rng.Bool() {
					vars = append(vars, v)
				}
			}
			xorVars = append(xorVars, vars)
			xorRHS = append(xorRHS, rng.Bool())
		}
		want, _ := bruteCount(n, cnf, xorVars, xorRHS)
		s := buildSolver(n, cnf, xorVars, xorRHS)
		got := s.EnumerateModels(-1, func(bitvec.BitVec) bool { return true })
		if got != want {
			t.Fatalf("trial %d: enumerated %d, brute %d", trial, got, want)
		}
	}
}

func TestStatsProgress(t *testing.T) {
	rng := stats.NewRNG(29)
	cnf := formula.RandomKCNF(30, 120, 3, rng)
	s := buildSolver(30, cnf, nil, nil)
	s.Solve()
	st := s.Stats()
	if st.Decisions == 0 && st.Propagations == 0 {
		t.Error("solver claims to have done no work")
	}
}

func TestAddClauseValidation(t *testing.T) {
	s := New(2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range literal accepted")
		}
	}()
	s.AddClause([]formula.Lit{formula.Pos(5)})
}
