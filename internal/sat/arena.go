package sat

// cref is a clause reference: the word offset of a clause header inside the
// arena. References stay below 1<<31 so the top bit of reason/conflict
// descriptors can mark XOR rows.
type cref = uint32

const crefUndef cref = ^cref(0)

// clauseArena stores every clause in one flat []uint32: a two-word header
// followed by the literals. Clauses are allocated by appending, freed by
// marking, and reclaimed wholesale by compact() during learned-database
// reduction, so the solver performs no per-clause heap allocation and
// propagation walks contiguous memory.
//
// Layout per clause:
//
//	word 0: size<<2 | learnedBit | deletedBit
//	word 1: LBD (literal block distance) for learned clauses, 0 otherwise
//	words 2..2+size: literals (variable<<1 | sign)
type clauseArena struct {
	data []uint32
}

const (
	hdrLearned uint32 = 1
	hdrDeleted uint32 = 2
	hdrWords          = 2
)

func (a *clauseArena) alloc(lits []uint32, learned bool, lbd uint32) cref {
	c := cref(len(a.data))
	hdr := uint32(len(lits)) << 2
	if learned {
		hdr |= hdrLearned
	}
	a.data = append(a.data, hdr, lbd)
	a.data = append(a.data, lits...)
	return c
}

func (a *clauseArena) size(c cref) int     { return int(a.data[c] >> 2) }
func (a *clauseArena) learned(c cref) bool { return a.data[c]&hdrLearned != 0 }
func (a *clauseArena) deleted(c cref) bool { return a.data[c]&hdrDeleted != 0 }
func (a *clauseArena) markDeleted(c cref)  { a.data[c] |= hdrDeleted }
func (a *clauseArena) lbd(c cref) uint32   { return a.data[c+1] }

// lits returns the clause body as a slice view into the arena. The view is
// invalidated by any alloc (append may relocate) or compact, so callers
// must not hold it across either.
func (a *clauseArena) lits(c cref) []uint32 {
	return a.data[c+hdrWords : c+hdrWords+cref(a.size(c))]
}

// watcher is one entry of a literal's watch list. blocker is some other
// literal of the clause; when it is already true the clause is satisfied
// and propagation skips it without touching the arena (the "blocking
// literal" optimisation).
type watcher struct {
	c       cref
	blocker uint32
}
