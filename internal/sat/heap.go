package sat

// VSIDS decision heap: a binary max-heap over variable activities with an
// index array for O(log n) activity bumps, replacing the former O(n) linear
// scan per decision. Assigned variables are removed lazily (popped and
// discarded); cancelUntil re-inserts variables as they are unassigned.

// heapLess orders the heap: higher activity first, variable index as a
// deterministic tie-break.
func (s *Solver) heapLess(a, b uint32) bool {
	if s.activity[a] != s.activity[b] {
		return s.activity[a] > s.activity[b]
	}
	return a < b
}

func (s *Solver) heapSwap(i, j int) {
	h := s.heap
	h[i], h[j] = h[j], h[i]
	s.heapIndex[h[i]] = int32(i)
	s.heapIndex[h[j]] = int32(j)
}

func (s *Solver) heapUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !s.heapLess(s.heap[i], s.heap[p]) {
			break
		}
		s.heapSwap(i, p)
		i = p
	}
}

func (s *Solver) heapDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && s.heapLess(s.heap[l], s.heap[best]) {
			best = l
		}
		if r < n && s.heapLess(s.heap[r], s.heap[best]) {
			best = r
		}
		if best == i {
			return
		}
		s.heapSwap(i, best)
		i = best
	}
}

// heapInsert adds v unless it is already queued.
func (s *Solver) heapInsert(v uint32) {
	if s.heapIndex[v] >= 0 {
		return
	}
	s.heap = append(s.heap, v)
	s.heapIndex[v] = int32(len(s.heap) - 1)
	s.heapUp(len(s.heap) - 1)
}

// heapPop removes and returns the maximum-activity variable, or -1 when
// empty.
func (s *Solver) heapPop() int {
	if len(s.heap) == 0 {
		return -1
	}
	v := s.heap[0]
	last := len(s.heap) - 1
	s.heapSwap(0, last)
	s.heap = s.heap[:last]
	s.heapIndex[v] = -1
	if last > 0 {
		s.heapDown(0)
	}
	return int(v)
}

// heapFix restores heap order after v's activity increased.
func (s *Solver) heapFix(v uint32) {
	if i := s.heapIndex[v]; i >= 0 {
		s.heapUp(int(i))
	}
}
