package sat

import (
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/exact"
	"mcf0/internal/formula"
	"mcf0/internal/stats"
)

// TestMinimizationShrinksAndStaysCorrect drives the solver through
// conflict-heavy unsatisfiable and enumeration workloads and checks that
// (a) recursive self-subsumption actually fires (the shrink counters move),
// and (b) model counts still match the exact DPLL — minimized clauses must
// remain implied.
func TestMinimizationShrinksAndStaysCorrect(t *testing.T) {
	rng := stats.NewRNG(0x315)
	var agg Stats
	for trial := 0; trial < 30; trial++ {
		n := 8 + rng.Intn(6)
		cnf := formula.RandomKCNF(n, 3*n+rng.Intn(2*n), 3, rng)
		s := New(cnf.N)
		ok := true
		for _, cl := range cnf.Clauses {
			if !s.AddClause([]formula.Lit(cl)) {
				ok = false
				break
			}
		}
		want := exact.CountCNF(cnf)
		if !ok {
			if want != 0 {
				t.Fatalf("trial %d: level-0 conflict but %d models", trial, want)
			}
			continue
		}
		got := uint64(0)
		s.EnumerateModels(-1, func(m bitvec.BitVec) bool {
			got++
			return true
		})
		if got != want {
			t.Fatalf("trial %d: enumerated %d models, exact %d", trial, got, want)
		}
		st := s.Stats()
		if st.MinimizedLits > st.LearnedLits {
			t.Fatalf("trial %d: minimized %d > learned %d literals", trial, st.MinimizedLits, st.LearnedLits)
		}
		agg.Add(st)
	}
	if agg.LearnedLits == 0 {
		t.Fatal("workload produced no learned literals; shrink rate unobservable")
	}
	if agg.MinimizedLits == 0 {
		t.Fatalf("recursive self-subsumption never pruned a literal across %d learned literals", agg.LearnedLits)
	}
	t.Logf("shrink rate: %d/%d literals (%.1f%%)", agg.MinimizedLits, agg.LearnedLits,
		100*float64(agg.MinimizedLits)/float64(agg.LearnedLits))
}

// TestMinimizationXORReasons exercises minimization through XOR-propagated
// reasons: CNF-XOR instances where conflict cones cross xorClause reasons.
func TestMinimizationXORReasons(t *testing.T) {
	rng := stats.NewRNG(0x316)
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(5)
		cnf := formula.RandomKCNF(n, 2*n, 3, rng)
		s := New(cnf.N)
		ok := true
		for _, cl := range cnf.Clauses {
			if !s.AddClause([]formula.Lit(cl)) {
				ok = false
				break
			}
		}
		rows := 1 + rng.Intn(n/2)
		eval := func(x bitvec.BitVec) bool {
			for _, cl := range cnf.Clauses {
				sat := false
				for _, l := range cl {
					if x.Get(l.Var) != l.Neg {
						sat = true
						break
					}
				}
				if !sat {
					return false
				}
			}
			return true
		}
		var xors [][]int
		var rhss []bool
		for r := 0; r < rows; r++ {
			var vars []int
			for v := 0; v < n; v++ {
				if rng.Bool() {
					vars = append(vars, v)
				}
			}
			if len(vars) == 0 {
				continue
			}
			rhs := rng.Bool()
			xors, rhss = append(xors, vars), append(rhss, rhs)
			if ok && !s.AddXOR(vars, rhs) {
				ok = false
			}
		}
		want := uint64(0)
		for v := uint64(0); v < 1<<uint(n); v++ {
			x := bitvec.FromUint64(v, n)
			good := eval(x)
			for i := 0; good && i < len(xors); i++ {
				par := false
				for _, vv := range xors[i] {
					par = par != x.Get(vv)
				}
				good = par == rhss[i]
			}
			if good {
				want++
			}
		}
		if !ok {
			if want != 0 {
				t.Fatalf("trial %d: add-time conflict but %d models", trial, want)
			}
			continue
		}
		got := uint64(0)
		s.EnumerateModels(-1, func(bitvec.BitVec) bool { got++; return true })
		if got != want {
			t.Fatalf("trial %d: enumerated %d models, exact %d", trial, got, want)
		}
	}
}
