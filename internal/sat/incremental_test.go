package sat

import (
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/exact"
	"mcf0/internal/formula"
	"mcf0/internal/stats"
)

// Regression tests for the incremental API: Solve under assumptions,
// AddVar-based activation selectors, and the interaction of blocking with
// assumptions.

// TestSolveAssumptionsVsBruteForce: Solve(assumps...) must agree with brute
// force over the formula with the assumed variables fixed, and the model
// must honour the assumptions.
func TestSolveAssumptionsVsBruteForce(t *testing.T) {
	rng := stats.NewRNG(601)
	for trial := 0; trial < 400; trial++ {
		in := randomInstance(rng)
		na := rng.Intn(in.n + 1)
		assumps := make([]formula.Lit, 0, na)
		used := map[int]bool{}
		for len(assumps) < na {
			v := rng.Intn(in.n)
			if used[v] {
				continue
			}
			used[v] = true
			assumps = append(assumps, formula.Lit{Var: v, Neg: rng.Bool()})
		}
		want := int(exact.Exhaustive(in.n, func(x bitvec.BitVec) bool {
			for _, a := range assumps {
				if x.Get(a.Var) == a.Neg {
					return false
				}
			}
			return in.eval(x)
		}))
		s, ok := in.build()
		if !ok {
			if want != 0 {
				t.Fatalf("trial %d: add-time UNSAT with %d assumed models", trial, want)
			}
			continue
		}
		model, sat := s.Solve(assumps...)
		if sat != (want > 0) {
			t.Fatalf("trial %d: SAT=%v under assumptions, brute=%d", trial, sat, want)
		}
		if sat {
			for _, a := range assumps {
				if model.Get(a.Var) == a.Neg {
					t.Fatalf("trial %d: model violates assumption %v", trial, a)
				}
			}
			if !in.eval(model) {
				t.Fatalf("trial %d: model violates formula", trial)
			}
		}
	}
}

// TestAssumptionsFullyUndone: a Solve under assumptions must leave no trace
// — subsequent unassumed Solve calls and enumerations see the full model
// set, and repeating the sequence is deterministic.
func TestAssumptionsFullyUndone(t *testing.T) {
	rng := stats.NewRNG(607)
	for trial := 0; trial < 200; trial++ {
		in := randomInstance(rng)
		free := int(exact.Exhaustive(in.n, in.eval))
		s, ok := in.build()
		if !ok {
			continue
		}
		v := rng.Intn(in.n)
		for round := 0; round < 3; round++ {
			s.Solve(formula.Lit{Var: v, Neg: round%2 == 0})
		}
		s2, _ := in.build()
		count := s2.EnumerateModels(-1, func(bitvec.BitVec) bool { return true })
		if count != free {
			t.Fatalf("trial %d: fresh enumeration %d != brute %d", trial, count, free)
		}
		// The solver that ran assumed Solves must agree once enumerated.
		got := s.EnumerateModels(-1, func(bitvec.BitVec) bool { return true })
		if got != free {
			t.Fatalf("trial %d: post-assumption enumeration %d != brute %d", trial, got, free)
		}
	}
}

// TestActivationSelectors exercises the oracle's incremental protocol at
// the solver level: an XOR row extended with a fresh AddVar selector
// constrains the formula only while ¬sel is assumed.
func TestActivationSelectors(t *testing.T) {
	rng := stats.NewRNG(613)
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(6)
		cnf := formula.RandomKCNF(n, rng.Intn(2*n), 2, rng)
		s := New(n)
		okAdd := true
		for _, cl := range cnf.Clauses {
			if !s.AddClause([]formula.Lit(cl)) {
				okAdd = false
				break
			}
		}
		if !okAdd {
			continue
		}
		var vars []int
		for v := 0; v < n; v++ {
			if rng.Bool() {
				vars = append(vars, v)
			}
		}
		rhs := rng.Bool()
		sel := s.AddVar()
		if !s.AddXOR(append(append([]int(nil), vars...), sel), rhs) {
			t.Fatalf("trial %d: selector row rejected", trial)
		}
		parityOK := func(x bitvec.BitVec) bool {
			p := false
			for _, v := range vars {
				if x.Get(v) {
					p = !p
				}
			}
			return p == rhs
		}
		wantOn := int(exact.Exhaustive(n, func(x bitvec.BitVec) bool { return cnf.Eval(x) && parityOK(x) }))
		wantOff := int(exact.Exhaustive(n, cnf.Eval))
		_, satOn := s.Solve(formula.Lit{Var: sel, Neg: true})
		if satOn != (wantOn > 0) {
			t.Fatalf("trial %d: activated row SAT=%v want %v", trial, satOn, wantOn > 0)
		}
		// Without the assumption the row is inert: every model of φ
		// extends (the selector absorbs the parity).
		seen := map[string]bool{}
		got := s.EnumerateModels(-1, func(m bitvec.BitVec) bool {
			seen[m.Prefix(n).Key()] = true
			return true
		})
		if got != wantOff || len(seen) != wantOff {
			t.Fatalf("trial %d: inert-row enumeration %d (distinct x %d), want %d",
				trial, got, len(seen), wantOff)
		}
	}
}

// TestBlockingWithAssumptions: EnumerateBlocking with an extra selector
// literal scopes the blocks to queries that assume it; pinning the selector
// retires them.
func TestBlockingWithAssumptions(t *testing.T) {
	rng := stats.NewRNG(617)
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(6)
		cnf := formula.RandomKCNF(n, rng.Intn(2*n), 2, rng)
		want := int(exact.Exhaustive(n, cnf.Eval))
		s := New(n)
		okAdd := true
		for _, cl := range cnf.Clauses {
			if !s.AddClause([]formula.Lit(cl)) {
				okAdd = false
				break
			}
		}
		if !okAdd {
			continue
		}
		// First query: enumerate everything under a blocking selector.
		q1 := s.AddVar()
		got1, exhausted := s.EnumerateBlocking(-1, n, []formula.Lit{{Var: q1}},
			func(bitvec.BitVec) bool { return true }, formula.Lit{Var: q1, Neg: true})
		if got1 != want || !exhausted {
			t.Fatalf("trial %d: first query %d (exhausted=%v), want %d", trial, got1, exhausted, want)
		}
		// Retire and re-count with a second selector: blocks must not leak.
		if want > 0 && !s.AddClause([]formula.Lit{{Var: q1}}) {
			t.Fatalf("trial %d: retiring selector failed", trial)
		}
		q2 := s.AddVar()
		got2, _ := s.EnumerateBlocking(-1, n, []formula.Lit{{Var: q2}},
			func(bitvec.BitVec) bool { return true }, formula.Lit{Var: q2, Neg: true})
		if got2 != want {
			t.Fatalf("trial %d: second query %d, want %d", trial, got2, want)
		}
	}
}

// TestAddClauseBetweenSolves: clauses added after a Solve constrain later
// calls, matching brute force.
func TestAddClauseBetweenSolves(t *testing.T) {
	rng := stats.NewRNG(619)
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(6)
		cnf := formula.RandomKCNF(n, rng.Intn(2*n), 2, rng)
		extra := formula.RandomKCNF(n, 1+rng.Intn(n), 2, rng)
		s := New(n)
		okAdd := true
		for _, cl := range cnf.Clauses {
			if !s.AddClause([]formula.Lit(cl)) {
				okAdd = false
				break
			}
		}
		if !okAdd {
			continue
		}
		s.Solve()
		for _, cl := range extra.Clauses {
			if !s.AddClause([]formula.Lit(cl)) {
				break
			}
		}
		want := exact.Exhaustive(n, func(x bitvec.BitVec) bool { return cnf.Eval(x) && extra.Eval(x) }) > 0
		_, sat := s.Solve()
		if sat != want {
			t.Fatalf("trial %d: incremental SAT=%v, brute=%v", trial, sat, want)
		}
	}
}

// TestReduceDBDifferential forces learned-database reduction on every
// restart (maxLearnts dialled to near zero) and checks that verdicts and
// enumeration counts still match brute force — deletion and arena
// compaction must never lose problem clauses or soundness.
func TestReduceDBDifferential(t *testing.T) {
	rng := stats.NewRNG(641)
	deleted := int64(0)
	for trial := 0; trial < 150; trial++ {
		in := randomInstance(rng)
		want := int(exact.Exhaustive(in.n, in.eval))
		s, ok := in.build()
		if !ok {
			continue
		}
		s.maxLearnts = 1
		got := s.EnumerateModels(-1, func(m bitvec.BitVec) bool {
			if !in.eval(m) {
				t.Fatalf("trial %d: non-model under reduction", trial)
			}
			return true
		})
		if got != want {
			t.Fatalf("trial %d: enumerated %d, brute %d", trial, got, want)
		}
		deleted += s.Stats().Deleted
	}
	// Larger conflict-heavy instances must actually exercise deletion.
	for trial := 0; trial < 5; trial++ {
		cnf := formula.RandomKCNF(60, 255, 3, rng)
		s := New(60)
		okAdd := true
		for _, cl := range cnf.Clauses {
			if !s.AddClause([]formula.Lit(cl)) {
				okAdd = false
				break
			}
		}
		if !okAdd {
			continue
		}
		s.maxLearnts = 8
		s.Solve()
		deleted += s.Stats().Deleted
	}
	if deleted == 0 {
		t.Fatal("reduceDB never deleted a clause under maxLearnts pressure")
	}
}

// TestStatsCounters: the new counters move and aggregate.
func TestStatsCounters(t *testing.T) {
	rng := stats.NewRNG(631)
	cnf := formula.RandomKCNF(40, 170, 3, rng)
	s := New(40)
	for _, cl := range cnf.Clauses {
		if !s.AddClause([]formula.Lit(cl)) {
			break
		}
	}
	s.Solve()
	st := s.Stats()
	if st.Decisions == 0 || st.Propagations == 0 {
		t.Errorf("no work recorded: %+v", st)
	}
	var sum Stats
	sum.Add(st)
	sum.Add(st)
	if sum.Propagations != 2*st.Propagations || sum.Deleted != 2*st.Deleted {
		t.Errorf("Stats.Add arithmetic wrong: %+v vs %+v", sum, st)
	}
}
