package gf2poly

import (
	"testing"

	"mcf0/internal/stats"
)

// TestBarrettReduceVsShiftXor cross-checks the two-CLMUL Barrett fold in
// Field.Mul against the shift-XOR reference reduction (mulMod, still used
// during field construction) at every degree, with random and adversarial
// operands.
func TestBarrettReduceVsShiftXor(t *testing.T) {
	rng := stats.NewRNG(0xba77e77)
	for m := 1; m <= 64; m++ {
		fd := NewField(m)
		mask := fd.mask()
		check := func(a, b uint64) {
			t.Helper()
			a &= mask
			b &= mask
			got := fd.Mul(a, b)
			want := mulMod(a, b, fd.f, fd.m)
			if got != want {
				t.Fatalf("m=%d: Mul(%#x, %#x) = %#x, reference %#x", m, a, b, got, want)
			}
		}
		// Adversarial shapes: zero, one, all-ones, top/bottom single bits,
		// the modulus' low part itself.
		edges := []uint64{0, 1, mask, 1 << uint(m-1), fd.fLow & mask, fd.muLow & mask}
		for _, a := range edges {
			for _, b := range edges {
				check(a, b)
			}
		}
		for i := 0; i < 200; i++ {
			check(rng.Uint64(), rng.Uint64())
		}
	}
}

// TestBarrettConstant pins the Barrett precomputation: µ must be the true
// polynomial quotient ⌊x^(2m)/f⌋, i.e. x^(2m) ⊕ µ·f has degree < m.
func TestBarrettConstant(t *testing.T) {
	for m := 1; m <= 64; m++ {
		fd := NewField(m)
		// rem = x^(2m) ⊕ µ·f with µ = x^m ⊕ µLow. Using the identity
		// x^(2m) ⊕ x^m·f = fLow·x^m keeps everything inside 128 bits:
		// rem = fLow·x^m ⊕ µLow·f.
		rem := poly128{lo: fd.fLow}.shl(m)
		mh, ml := Clmul64(fd.muLow, fd.f.lo)
		rem = rem.xor(poly128{hi: mh, lo: ml})
		if m == 64 {
			// f's implicit x^64 term: µLow·x^64.
			rem = rem.xor(poly128{hi: fd.muLow})
		}
		if rem.degree() >= m {
			t.Fatalf("m=%d: Barrett remainder degree %d ≥ m", m, rem.degree())
		}
	}
}
