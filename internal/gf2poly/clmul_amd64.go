//go:build amd64

package gf2poly

// clmulAsm computes the 128-bit carry-less product of a and b with one
// PCLMULQDQ instruction (clmul_amd64.s). Callable only when hasCLMUL.
func clmulAsm(a, b uint64) (hi, lo uint64)

// cpuidECX1 returns ECX of CPUID leaf 1 (clmul_amd64.s). Leaf 1 is defined
// on every x86-64 CPU, so no max-leaf probe is needed.
func cpuidECX1() uint32

// hasCLMUL gates the assembly backend on the PCLMULQDQ feature flag
// (CPUID.01H:ECX bit 1). The pure-Go kernel remains the fallback on CPUs
// predating Westmere (2010) and under emulators that mask the flag.
var hasCLMUL = cpuidECX1()&(1<<1) != 0
