package gf2poly

import "testing"

// refClmul64 is the obviously-correct shift-and-xor reference.
func refClmul64(a, b uint64) (hi, lo uint64) {
	for i := 0; i < 64; i++ {
		if a&(1<<uint(i)) == 0 {
			continue
		}
		lo ^= b << uint(i)
		if i > 0 {
			hi ^= b >> uint(64-i)
		}
	}
	return
}

// xorshift is a tiny deterministic generator for test inputs.
type xorshift uint64

func (s *xorshift) next() uint64 {
	x := uint64(*s)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = xorshift(x)
	return x
}

func TestClmul64MatchesReference(t *testing.T) {
	check := func(a, b uint64) {
		t.Helper()
		wantHi, wantLo := refClmul64(a, b)
		gotHi, gotLo := Clmul64(a, b)
		if gotHi != wantHi || gotLo != wantLo {
			t.Fatalf("Clmul64(%#x, %#x) = (%#x, %#x), want (%#x, %#x)",
				a, b, gotHi, gotLo, wantHi, wantLo)
		}
	}
	// Adversarial shapes: the full-residue-class operands that force the
	// split fallback (all-ones, single full hole classes, combinations),
	// and near-misses that must stay on the fast path.
	specials := []uint64{
		0, 1, 2, 3, ^uint64(0),
		hole0, hole1, hole2, hole3,
		hole0 | hole1, hole0 | hole3, hole1 | hole2, ^hole0, ^hole3,
		hole0 &^ 1, hole3 &^ (1 << 63), // one bit shy of a full class
		1 << 63, 1<<63 | 1, 0x8000000000000001,
		0xFFFFFFFF, 0xFFFFFFFF00000000, 0xAAAAAAAAAAAAAAAA, 0x5555555555555555,
	}
	for _, a := range specials {
		for _, b := range specials {
			check(a, b)
		}
	}
	// Single-bit products hit every output position, including the
	// degree-126 corner (both top bits set).
	for i := 0; i < 64; i += 7 {
		for j := 0; j < 64; j += 5 {
			check(1<<uint(i), 1<<uint(j))
		}
	}
	check(1<<63, 1<<63)
	// Random sweep.
	rng := xorshift(0x9e3779b97f4a7c15)
	for k := 0; k < 20000; k++ {
		check(rng.next(), rng.next())
	}
	// Random values with full classes planted, to exercise the guard from
	// both sides.
	for k := 0; k < 2000; k++ {
		check(rng.next()|hole1, rng.next()|hole2)
		check(rng.next()|hole0, rng.next())
	}
}

// refMulSlices is the word-slice reference product built on refClmul64.
func refMulSlices(a, b []uint64) []uint64 {
	out := make([]uint64, len(a)+len(b))
	for i, aw := range a {
		for j, bw := range b {
			hi, lo := refClmul64(aw, bw)
			out[i+j] ^= lo
			out[i+j+1] ^= hi
		}
	}
	return out
}

func TestClmulAccIntoMatchesReference(t *testing.T) {
	rng := xorshift(42)
	for la := 1; la <= 5; la++ {
		for lb := 1; lb <= 5; lb++ {
			for rep := 0; rep < 50; rep++ {
				a := make([]uint64, la)
				b := make([]uint64, lb)
				for i := range a {
					a[i] = rng.next()
				}
				for i := range b {
					b[i] = rng.next()
				}
				if rep%7 == 0 {
					a[rng.next()%uint64(la)] = ^uint64(0) // force split path
					b[rng.next()%uint64(lb)] = ^uint64(0)
				}
				if rep%11 == 0 {
					a[rng.next()%uint64(la)] = 0 // exercise the zero-word skip
				}
				want := refMulSlices(a, b)
				got := make([]uint64, la+lb+1) // one spare word: must stay 0
				ClmulAccInto(got, a, b)
				for i, w := range want {
					if got[i] != w {
						t.Fatalf("la=%d lb=%d word %d: got %#x want %#x", la, lb, i, got[i], w)
					}
				}
				if got[la+lb] != 0 {
					t.Fatalf("la=%d lb=%d: wrote past len(a)+len(b)", la, lb)
				}
				// Accumulation: a second call must XOR to zero.
				ClmulAccInto(got, a, b)
				for i, w := range got[:la+lb] {
					if w != 0 {
						t.Fatalf("la=%d lb=%d: accumulate word %d = %#x, want 0", la, lb, i, w)
					}
				}
			}
		}
	}
}

func TestClmulAccIntoShortDstPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short destination")
		}
	}()
	ClmulAccInto(make([]uint64, 2), make([]uint64, 2), make([]uint64, 1))
}

// TestClmulCommutesAndDistributes cross-checks algebraic identities the
// kernel must satisfy regardless of internal path taken.
func TestClmulCommutesAndDistributes(t *testing.T) {
	rng := xorshift(7)
	for k := 0; k < 5000; k++ {
		a, b, c := rng.next(), rng.next(), rng.next()
		abHi, abLo := Clmul64(a, b)
		baHi, baLo := Clmul64(b, a)
		if abHi != baHi || abLo != baLo {
			t.Fatalf("commutativity failed for %#x, %#x", a, b)
		}
		// a·(b⊕c) = a·b ⊕ a·c
		sHi, sLo := Clmul64(a, b^c)
		acHi, acLo := Clmul64(a, c)
		if sHi != abHi^acHi || sLo != abLo^acLo {
			t.Fatalf("distributivity failed for %#x, %#x, %#x", a, b, c)
		}
	}
}

var sinkU64 uint64

func BenchmarkClmul64(b *testing.B) {
	rng := xorshift(1)
	x, y := rng.next(), rng.next()
	for i := 0; i < b.N; i++ {
		hi, lo := Clmul64(x, y)
		sinkU64 += hi ^ lo
		x++
	}
}

func BenchmarkClmulAccInto(b *testing.B) {
	rng := xorshift(2)
	a := make([]uint64, 4)
	c := make([]uint64, 4)
	dst := make([]uint64, 8)
	for i := range a {
		a[i] = rng.next()
		c[i] = rng.next()
	}
	b.Run("4x4words", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ClmulAccInto(dst, a, c)
		}
	})
}
