//go:build arm64

#include "textflag.h"

// func clmulAsm(a, b uint64) (hi, lo uint64)
//
// One PMULL (polynomial multiply long) over the low 64-bit lanes of V0 and
// V1: V2 holds the 127-bit carry-less product, moved back out lane by lane.
TEXT ·clmulAsm(SB), NOSPLIT, $0-32
	MOVD a+0(FP), R0
	MOVD b+8(FP), R1
	VMOV R0, V0.D[0]
	VMOV R1, V1.D[0]
	VPMULL V0.D1, V1.D1, V2.Q1
	VMOV V2.D[0], R2
	VMOV V2.D[1], R3
	MOVD R3, hi+16(FP)
	MOVD R2, lo+24(FP)
	RET
