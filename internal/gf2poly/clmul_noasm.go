//go:build !amd64 && !arm64

package gf2poly

// Architectures without an assembly backend always take the pure-Go kernel.
const hasCLMUL = false

// clmulAsm is never reached with hasCLMUL false; the definition only keeps
// the dispatch sites compiling on every architecture.
func clmulAsm(a, b uint64) (hi, lo uint64) { return clmul64Generic(a, b) }
