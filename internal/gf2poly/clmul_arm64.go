//go:build arm64

package gf2poly

import (
	"encoding/binary"
	"os"
	"runtime"
)

// clmulAsm computes the 128-bit carry-less product of a and b with one
// PMULL instruction (clmul_arm64.s). Callable only when hasCLMUL.
func clmulAsm(a, b uint64) (hi, lo uint64)

// hasCLMUL gates the assembly backend on the PMULL (polynomial multiply
// long) crypto extension, which is optional in ARMv8-A. The pure-Go kernel
// remains the fallback where the extension is absent or undetectable.
var hasCLMUL = detectPMULL()

func detectPMULL() bool {
	switch runtime.GOOS {
	case "darwin", "ios":
		// Every Apple Silicon core ships the crypto extensions.
		return true
	case "linux", "android":
		return linuxHWCAPHasPMULL()
	}
	return false
}

// linuxHWCAPHasPMULL reads the PMULL bit of AT_HWCAP from the process
// auxiliary vector. The repository carries no external dependencies
// (golang.org/x/sys/cpu would do this for us), so the auxv — pairs of
// little-endian (tag, value) uint64s — is parsed directly; any read or
// parse failure conservatively disables the backend.
func linuxHWCAPHasPMULL() bool {
	const (
		atHWCAP    = 16     // AT_HWCAP auxv tag
		hwcapPMULL = 1 << 4 // HWCAP_PMULL
	)
	buf, err := os.ReadFile("/proc/self/auxv")
	if err != nil {
		return false
	}
	for i := 0; i+16 <= len(buf); i += 16 {
		if binary.LittleEndian.Uint64(buf[i:]) == atHWCAP {
			return binary.LittleEndian.Uint64(buf[i+8:])&hwcapPMULL != 0
		}
	}
	return false
}
