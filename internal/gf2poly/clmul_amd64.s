//go:build amd64

#include "textflag.h"

// func clmulAsm(a, b uint64) (hi, lo uint64)
//
// One PCLMULQDQ over the low quadwords of X0 and X1: X0 = clmul(a, b),
// 127 bits. The low half is stored directly; PSRLDQ shifts the high half
// down for the second store.
TEXT ·clmulAsm(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), X0
	MOVQ b+8(FP), X1
	PCLMULQDQ $0x00, X1, X0
	MOVQ X0, lo+24(FP)
	PSRLDQ $8, X0
	MOVQ X0, hi+16(FP)
	RET

// func cpuidECX1() uint32
TEXT ·cpuidECX1(SB), NOSPLIT, $0-4
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, ret+0(FP)
	RET
