// Carry-less multiplication kernel: the public primitive behind both the
// field arithmetic in this package and the word-parallel Toeplitz hash
// evaluation in package hash (h(x) = Ax+b for Toeplitz A is a GF(2)[x]
// polynomial multiply; see hash.Toeplitz).
//
// Clmul64 is the dispatch point. On amd64 with PCLMULQDQ and on arm64 with
// the PMULL crypto extension it routes to a one-instruction assembly
// backend (clmul_amd64.s / clmul_arm64.s, gated by run-time CPU-feature
// detection in the clmul_*.go siblings); everywhere else — and as the
// differential anchor the assembly is tested against — it runs the pure-Go
// kernel below, built on bits.Mul64 "holes" multiplies (integer products of
// operands whose set bits are spaced four apart, so column sums fit in the
// zero gaps and never carry into a kept position). The generic path
// deliberately avoids the classic bit-reversal trick for the high half —
// the whole 128-bit product comes out of one pass.
package gf2poly

import "math/bits"

// HasAsm reports whether Clmul64 is dispatching to the hardware carry-less
// multiply backend (PCLMULQDQ on amd64, PMULL on arm64) rather than the
// pure-Go kernel. Exposed so benchmarks and logs can label which backend
// produced their numbers.
func HasAsm() bool { return hasCLMUL }

// hole masks select every fourth bit. An operand masked by hole r has its
// set bits ≥ 4 positions apart, which is what makes the integer-multiply
// trick below exact: see clmulHoles.
const (
	hole0 uint64 = 0x1111111111111111
	hole1 uint64 = hole0 << 1
	hole2 uint64 = hole0 << 2
	hole3 uint64 = hole0 << 3
)

// Clmul64 returns the carry-less product of the polynomials a and b over
// GF(2): bit i of an operand is the coefficient of x^i, and the 127-bit
// product is returned as hi<<64 | lo. With hardware support detected (see
// HasAsm) the product is a single PCLMULQDQ/PMULL instruction; the generic
// path costs 16 integer multiplies (see clmulHoles), independent of
// operand values.
func Clmul64(a, b uint64) (hi, lo uint64) {
	if hasCLMUL {
		return clmulAsm(a, b)
	}
	return clmul64Generic(a, b)
}

// clmul64Generic is the pure-Go kernel behind Clmul64 — always available,
// and kept as the differential anchor the assembly backends are verified
// against.
func clmul64Generic(a, b uint64) (hi, lo uint64) {
	a0, a1, a2, a3 := a&hole0, a&hole1, a&hole2, a&hole3
	if (a0 == hole0 || a1 == hole1 || a2 == hole2 || a3 == hole3) &&
		(b&hole0 == hole0 || b&hole1 == hole1 || b&hole2 == hole2 || b&hole3 == hole3) {
		return clmulSplit(a0, a1, a2, a3, b)
	}
	return clmulHoles(a0, a1, a2, a3, b)
}

// clmulSplit is the always-exact slow path for the one operand shape the
// holes multiply cannot handle: both operands with a completely full
// residue class, where a column sum can reach 16 and overflow its hole
// (~2^-14 of operand pairs, e.g. a = b = all-ones). Splitting b into
// 32-bit halves caps column sums at 8, making the holes multiply exact
// unconditionally.
func clmulSplit(a0, a1, a2, a3, b uint64) (hi, lo uint64) {
	hl, ll := clmulHoles(a0, a1, a2, a3, b&0xFFFFFFFF)
	hh, lh := clmulHoles(a0, a1, a2, a3, b>>32)
	return hl ^ lh>>32 ^ hh<<32, ll ^ lh<<32
}

// clmulHoles computes the 128-bit carry-less product of a (pre-split into
// its four hole classes) and b via sixteen bits.Mul64 calls.
//
// Writing A_r = {i : bit i of a set, i ≡ r (mod 4)} and B_s likewise, the
// integer product a_r·b_s = Σ_k c_k·2^k has its direct contributions
// c_k = |{(i,j) ∈ A_r×B_s : i+j = k}| only at columns k ≡ r+s (mod 4).
// While every c_k ≤ 15, no column overflows its 4-bit hole, no carry ever
// reaches the next direct column, and bit k of the integer product is
// exactly c_k mod 2 — the GF(2) convolution coefficient. XORing the four
// class products that land on the same residue and masking to that residue
// assembles the exact carry-less product. A column sum of 16 needs both a
// full 16-bit class in a and a full class in b; Clmul64 routes that case
// to the always-exact 32-bit-halved form.
func clmulHoles(a0, a1, a2, a3, b uint64) (hi, lo uint64) {
	b0, b1, b2, b3 := b&hole0, b&hole1, b&hole2, b&hole3
	h0, l0 := xorMul4(a0, b0, a1, b3, a2, b2, a3, b1)
	h1, l1 := xorMul4(a0, b1, a1, b0, a2, b3, a3, b2)
	h2, l2 := xorMul4(a0, b2, a1, b1, a2, b0, a3, b3)
	h3, l3 := xorMul4(a0, b3, a1, b2, a2, b1, a3, b0)
	hi = h0&hole0 | h1&hole1 | h2&hole2 | h3&hole3
	lo = l0&hole0 | l1&hole1 | l2&hole2 | l3&hole3
	return
}

// xorMul4 XORs four full-width integer products (one residue class of the
// holes multiply).
func xorMul4(x0, y0, x1, y1, x2, y2, x3, y3 uint64) (hi, lo uint64) {
	h0, l0 := bits.Mul64(x0, y0)
	h1, l1 := bits.Mul64(x1, y1)
	h2, l2 := bits.Mul64(x2, y2)
	h3, l3 := bits.Mul64(x3, y3)
	return h0 ^ h1 ^ h2 ^ h3, l0 ^ l1 ^ l2 ^ l3
}

// ClmulAccInto accumulates the carry-less product of two packed GF(2)
// polynomials into dst: dst ^= a·b. Words are little-endian in the bit
// order of package bitvec: coefficient of x^(64i+j) is bit j of word i, so
// bitvec.BitVec.Words slices can be passed directly. dst must have at
// least len(a)+len(b) words and must not alias a or b; it is accumulated
// into, not overwritten, so callers start from a zeroed buffer for a plain
// product. The kernel never allocates.
func ClmulAccInto(dst, a, b []uint64) {
	if len(dst) < len(a)+len(b) {
		panic("gf2poly: clmul destination shorter than len(a)+len(b) words")
	}
	if hasCLMUL {
		for i, aw := range a {
			if aw == 0 {
				continue
			}
			row := dst[i : i+len(b)+1]
			for j, bw := range b {
				if bw == 0 {
					continue
				}
				hi, lo := clmulAsm(aw, bw)
				row[j] ^= lo
				row[j+1] ^= hi
			}
		}
		return
	}
	for i, aw := range a {
		if aw == 0 {
			continue
		}
		a0, a1, a2, a3 := aw&hole0, aw&hole1, aw&hole2, aw&hole3
		aFull := a0 == hole0 || a1 == hole1 || a2 == hole2 || a3 == hole3
		row := dst[i : i+len(b)+1]
		for j, bw := range b {
			if bw == 0 {
				continue
			}
			var hi, lo uint64
			if aFull && (bw&hole0 == hole0 || bw&hole1 == hole1 ||
				bw&hole2 == hole2 || bw&hole3 == hole3) {
				hi, lo = clmulSplit(a0, a1, a2, a3, bw)
			} else {
				hi, lo = clmulHoles(a0, a1, a2, a3, bw)
			}
			row[j] ^= lo
			row[j+1] ^= hi
		}
	}
}
