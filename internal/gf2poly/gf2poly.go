// Package gf2poly implements arithmetic in the finite fields GF(2^m) for
// 1 ≤ m ≤ 64. Field elements are uint64 values whose bit i is the
// coefficient of x^i. The package finds its own irreducible modulus per
// degree via Rabin's irreducibility test, so correctness does not depend on
// a hard-coded polynomial table.
//
// The s-wise independent hash family of the paper (H_{s-wise}(n, n)) is a
// random degree-(s-1) polynomial over GF(2^n); package hash builds it on
// top of this package.
package gf2poly

import (
	"math/bits"
	"sync"
)

// poly128 is a polynomial over GF(2) of degree at most 127; bit i of the
// 128-bit value (lo = bits 0..63) is the coefficient of x^i.
type poly128 struct{ hi, lo uint64 }

func (p poly128) isZero() bool { return p.hi == 0 && p.lo == 0 }

func (p poly128) degree() int {
	if p.hi != 0 {
		return 127 - bits.LeadingZeros64(p.hi)
	}
	if p.lo != 0 {
		return 63 - bits.LeadingZeros64(p.lo)
	}
	return -1 // zero polynomial
}

func (p poly128) xor(q poly128) poly128 { return poly128{p.hi ^ q.hi, p.lo ^ q.lo} }

func (p poly128) shl(k int) poly128 {
	switch {
	case k == 0:
		return p
	case k < 64:
		return poly128{p.hi<<uint(k) | p.lo>>uint(64-k), p.lo << uint(k)}
	case k < 128:
		return poly128{p.lo << uint(k-64), 0}
	default:
		return poly128{}
	}
}

// clmul returns the carry-less (GF(2)) product of two 64-bit polynomials,
// via the public word kernel (see clmul.go).
func clmul(a, b uint64) poly128 {
	hi, lo := Clmul64(a, b)
	return poly128{hi: hi, lo: lo}
}

// mod reduces p modulo f (degree df ≥ 1), returning a polynomial of degree
// < df. f must have its degree-df bit set.
func mod(p, f poly128, df int) poly128 {
	for {
		d := p.degree()
		if d < df {
			return p
		}
		p = p.xor(f.shl(d - df))
	}
}

// gcd returns the polynomial GCD of a and b.
func gcd(a, b poly128) poly128 {
	for !b.isZero() {
		a, b = b, mod(a, b, b.degree())
	}
	return a
}

// mulMod returns a·b mod f where deg a, deg b < df ≤ 64.
func mulMod(a, b uint64, f poly128, df int) uint64 {
	return mod(clmul(a, b), f, df).lo
}

// frobenius returns x^(2^k) mod f starting from element e = x, by repeated
// squaring k times.
func frobenius(e uint64, k int, f poly128, df int) uint64 {
	for i := 0; i < k; i++ {
		e = mulMod(e, e, f, df)
	}
	return e
}

// isIrreducible implements Rabin's test for a degree-m polynomial f over
// GF(2): f is irreducible iff x^(2^m) ≡ x (mod f) and for every prime p
// dividing m, gcd(x^(2^(m/p)) − x mod f, f) = 1.
func isIrreducible(f poly128, m int) bool {
	const x = 2 // the polynomial "x"
	if m == 1 {
		return true // x+1 and x are the only candidates; we only pass x+1
	}
	if f.lo&1 == 0 {
		return false // divisible by x
	}
	e := frobenius(x, m, f, m)
	if e != x {
		return false
	}
	for _, p := range primeFactors(m) {
		g := frobenius(x, m/p, f, m) ^ x
		// Coprime iff the gcd is the constant 1 (degree 0). A zero g means
		// f divides x^(2^(m/p))−x, so gcd = f (degree m) and f is reducible.
		if gcd(poly128{lo: g}, f).degree() != 0 {
			return false
		}
	}
	return true
}

func primeFactors(n int) []int {
	var ps []int
	for p := 2; p*p <= n; p++ {
		if n%p == 0 {
			ps = append(ps, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		ps = append(ps, n)
	}
	return ps
}

// findIrreducible returns the lexicographically smallest irreducible
// polynomial of degree m over GF(2) (as x^m + low bits).
func findIrreducible(m int) poly128 {
	xm := poly128{lo: 1}.shl(m) // x^m
	// The constant term must be 1 for any irreducible polynomial of
	// degree ≥ 1 other than x itself. Irreducible polynomials are dense
	// (about 1/m of all degree-m polynomials), so this loop is short.
	for low := uint64(1); ; low += 2 {
		f := xm.xor(poly128{lo: low})
		if isIrreducible(f, m) {
			return f
		}
	}
}

// polyDivQuot returns the quotient of p / f over GF(2), where f has degree
// df ≥ 1 and the quotient degree is at most 63 (all uses here divide by the
// field modulus, whose quotients fit a word).
func polyDivQuot(p, f poly128, df int) uint64 {
	var q uint64
	for {
		d := p.degree()
		if d < df {
			return q
		}
		q |= 1 << uint(d-df)
		p = p.xor(f.shl(d - df))
	}
}

// Field is the finite field GF(2^m), 1 ≤ m ≤ 64.
//
// Multiplication reduces with a precomputed Barrett constant: two carry-less
// multiplies replace the bit-at-a-time modulus subtraction loop (see
// Field.reduce).
type Field struct {
	m int
	f poly128
	// fLow is f with its leading x^m term stripped (the low coefficients);
	// muLow is µ = ⌊x^(2m)/f⌋ with its leading x^m term stripped. Both fit
	// a word for every m ≤ 64 and are what the Barrett fold consumes.
	fLow  uint64
	muLow uint64
}

var (
	fieldMu    sync.Mutex
	fieldCache = map[int]*Field{}
)

// NewField returns the field GF(2^m). Fields are cached; the returned value
// is shared and safe for concurrent use.
func NewField(m int) *Field {
	if m < 1 || m > 64 {
		panic("gf2poly: field degree must be in [1, 64]")
	}
	fieldMu.Lock()
	defer fieldMu.Unlock()
	if f, ok := fieldCache[m]; ok {
		return f
	}
	f := &Field{m: m, f: findIrreducible(m)}
	// Strip the leading term: for m < 64 it lives in f.lo, for m = 64 in
	// f.hi (bit 0), so f.lo is already the low part.
	f.fLow = f.f.lo
	if m < 64 {
		f.fLow &^= 1 << uint(m)
	}
	// Barrett constant: µ = ⌊x^(2m)/f⌋ = x^m ⊕ ⌊fLow·x^m / f⌋, because
	// x^(2m) = f·x^m ⊕ fLow·x^m. The second form keeps the dividend inside
	// 128 bits even at m = 64.
	f.muLow = polyDivQuot(poly128{lo: f.fLow}.shl(m), f.f, m)
	fieldCache[m] = f
	return f
}

// Degree returns m.
func (fd *Field) Degree() int { return fd.m }

// Modulus returns the low 64 bits of the irreducible modulus polynomial.
// For m < 64 this includes the x^m term; for m = 64 the x^64 term is
// implicit. Exposed for tests and documentation.
func (fd *Field) Modulus() uint64 { return fd.f.lo }

// mask returns the valid-bits mask for field elements.
func (fd *Field) mask() uint64 {
	if fd.m == 64 {
		return ^uint64(0)
	}
	return (1 << uint(fd.m)) - 1
}

// Add returns a+b (XOR).
func (fd *Field) Add(a, b uint64) uint64 { return (a ^ b) & fd.mask() }

// Mul returns the field product a·b.
func (fd *Field) Mul(a, b uint64) uint64 {
	hi, lo := Clmul64(a&fd.mask(), b&fd.mask())
	return fd.reduce(hi, lo)
}

// reduce maps the 127-bit carry-less product hi·x^64 ⊕ lo (degree ≤ 2m−2)
// into the field by a Barrett fold against the cached µ = ⌊x^(2m)/f⌋:
//
//	H := ⌊P/x^m⌋                       (the high part of the product)
//	q := H ⊕ ⌊H·µLow / x^m⌋            (= ⌊H·µ/x^m⌋ = ⌊P/f⌋, exactly —
//	                                    over GF(2) the Barrett quotient
//	                                    has no error term for deg P < 2m)
//	r := P ⊕ q·f  =  low_m(P) ⊕ low_m(q·fLow)
//
// Two Clmul64 calls replace the former bit-at-a-time modulus subtraction
// (up to ~63 iterations); the exact-quotient identity is differential-
// tested against the shift-XOR reference at every degree.
func (fd *Field) reduce(hi, lo uint64) uint64 {
	m := uint(fd.m)
	var h uint64
	if m == 64 {
		h = hi
	} else {
		h = lo>>m | hi<<(64-m)
	}
	th, tl := Clmul64(h, fd.muLow)
	q := h
	if m == 64 {
		q ^= th
	} else {
		q ^= tl>>m | th<<(64-m)
	}
	_, ql := Clmul64(q, fd.fLow)
	return (lo ^ ql) & fd.mask()
}

// Pow returns a^e.
func (fd *Field) Pow(a uint64, e uint64) uint64 {
	r := uint64(1)
	a &= fd.mask()
	for e > 0 {
		if e&1 == 1 {
			r = fd.Mul(r, a)
		}
		a = fd.Mul(a, a)
		e >>= 1
	}
	return r
}

// EvalPoly evaluates the polynomial with the given coefficients
// (coeffs[i] multiplies x^i) at the point x, using Horner's rule.
func (fd *Field) EvalPoly(coeffs []uint64, x uint64) uint64 {
	var r uint64
	for i := len(coeffs) - 1; i >= 0; i-- {
		r = fd.Add(fd.Mul(r, x), coeffs[i])
	}
	return r
}
