package gf2poly

import (
	"math/rand/v2"
	"testing"
)

// adversarialOperands are the shapes that stress the generic kernel's
// overflow routing (full hole classes), the carry boundaries (single bits
// at the word edges), and the zero fast paths — reused here to pin the
// assembly backend against the generic anchor on exactly those inputs.
var adversarialOperands = []uint64{
	0, 1, 1 << 63, 0xFFFFFFFFFFFFFFFF,
	hole0, hole1, hole2, hole3,
	hole0 | hole1, hole2 | hole3, hole0 | hole3,
	0x8000000000000001, 0x5555555555555555, 0xAAAAAAAAAAAAAAAA,
	0x0123456789ABCDEF, 0xFEDCBA9876543210,
}

// TestClmulAsmVsGeneric is the differential anchor for the hardware
// backend: every product the assembly produces must match the pure-Go
// kernel bit for bit, over the adversarial shapes and a random sweep.
func TestClmulAsmVsGeneric(t *testing.T) {
	if !HasAsm() {
		t.Skip("no hardware carry-less multiply on this CPU")
	}
	check := func(a, b uint64) {
		t.Helper()
		wantHi, wantLo := clmul64Generic(a, b)
		gotHi, gotLo := clmulAsm(a, b)
		if gotHi != wantHi || gotLo != wantLo {
			t.Fatalf("clmul(%#x, %#x): asm (%#x, %#x) != generic (%#x, %#x)",
				a, b, gotHi, gotLo, wantHi, wantLo)
		}
	}
	for _, a := range adversarialOperands {
		for _, b := range adversarialOperands {
			check(a, b)
		}
	}
	rng := rand.New(rand.NewPCG(0xc1_14, 0x5e_ed))
	for i := 0; i < 200000; i++ {
		check(rng.Uint64(), rng.Uint64())
	}
	// Single-bit exhaustive: product must be exactly one bit at i+j.
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			hi, lo := clmulAsm(1<<uint(i), 1<<uint(j))
			var wantHi, wantLo uint64
			if k := i + j; k < 64 {
				wantLo = 1 << uint(k)
			} else {
				wantHi = 1 << uint(k-64)
			}
			if hi != wantHi || lo != wantLo {
				t.Fatalf("clmul(1<<%d, 1<<%d) = (%#x, %#x), want (%#x, %#x)",
					i, j, hi, lo, wantHi, wantLo)
			}
		}
	}
}

// TestClmulAccIntoAsmVsGeneric pins the slice kernel's assembly path
// against the generic path on random packed polynomials.
func TestClmulAccIntoAsmVsGeneric(t *testing.T) {
	if !HasAsm() {
		t.Skip("no hardware carry-less multiply on this CPU")
	}
	rng := rand.New(rand.NewPCG(0xacc, 0x5e_ed))
	for trial := 0; trial < 500; trial++ {
		la, lb := 1+rng.IntN(5), 1+rng.IntN(5)
		a := make([]uint64, la)
		b := make([]uint64, lb)
		for i := range a {
			a[i] = rng.Uint64()
		}
		for i := range b {
			b[i] = rng.Uint64()
		}
		asm := make([]uint64, la+lb)
		gen := make([]uint64, la+lb)
		ClmulAccInto(asm, a, b) // dispatches to asm (HasAsm checked above)
		genericAccInto(gen, a, b)
		for i := range asm {
			if asm[i] != gen[i] {
				t.Fatalf("trial %d: word %d: asm %#x != generic %#x", trial, i, asm[i], gen[i])
			}
		}
	}
}

// genericAccInto is ClmulAccInto's fallback loop, reproduced via the
// generic scalar kernel for the differential above.
func genericAccInto(dst, a, b []uint64) {
	for i, aw := range a {
		for j, bw := range b {
			hi, lo := clmul64Generic(aw, bw)
			dst[i+j] ^= lo
			dst[i+j+1] ^= hi
		}
	}
}

var sinkClmul uint64

// BenchmarkClmulKernel carries its own in-run baseline: the asm dispatch
// (what Clmul64 callers get) against the pure-Go kernel on the same
// operand stream.
func BenchmarkClmulKernel(b *testing.B) {
	b.Run("dispatch", func(b *testing.B) {
		var acc uint64
		for i := 0; i < b.N; i++ {
			hi, lo := Clmul64(0x9e3779b97f4a7c15^uint64(i), 0xd1342543de82ef95+uint64(i))
			acc ^= hi ^ lo
		}
		sinkClmul = acc
	})
	b.Run("generic", func(b *testing.B) {
		var acc uint64
		for i := 0; i < b.N; i++ {
			hi, lo := clmul64Generic(0x9e3779b97f4a7c15^uint64(i), 0xd1342543de82ef95+uint64(i))
			acc ^= hi ^ lo
		}
		sinkClmul = acc
	})
}
