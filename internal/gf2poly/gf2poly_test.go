package gf2poly

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKnownIrreducibles(t *testing.T) {
	// Spot checks against textbook polynomials.
	known := []struct {
		m   int
		f   uint64 // low bits of a known irreducible x^m + ...
		irr bool
	}{
		{8, 0x1B, true},  // AES: x^8+x^4+x^3+x+1
		{8, 0x01, false}, // x^8+1 = (x+1)^8
		{4, 0x03, true},  // x^4+x+1
		{4, 0x05, false}, // x^4+x^2+1 = (x^2+x+1)^2
		{2, 0x03, true},  // x^2+x+1
		{3, 0x03, true},  // x^3+x+1
		{3, 0x07, false}, // x^3+x^2+x+1 divisible by x+1
	}
	for _, k := range known {
		f := poly128{lo: k.f}.xor(poly128{lo: 1}.shl(k.m))
		if got := isIrreducible(f, k.m); got != k.irr {
			t.Errorf("isIrreducible(x^%d + %#x) = %v, want %v", k.m, k.f, got, k.irr)
		}
	}
}

func TestIsIrreducibleMatchesBruteForce(t *testing.T) {
	// For small degrees, check every monic polynomial against trial
	// division by all lower-degree polynomials.
	for m := 2; m <= 10; m++ {
		for low := uint64(0); low < 1<<uint(m); low++ {
			f := poly128{lo: low}.xor(poly128{lo: 1}.shl(m))
			want := bruteIrreducible(f, m)
			if got := isIrreducible(f, m); got != want {
				t.Fatalf("m=%d low=%#x: rabin=%v brute=%v", m, low, got, want)
			}
		}
	}
}

func bruteIrreducible(f poly128, m int) bool {
	for d := 1; d <= m/2; d++ {
		for low := uint64(0); low < 1<<uint(d); low++ {
			g := poly128{lo: low}.xor(poly128{lo: 1}.shl(d))
			if mod(f, g, d).isZero() {
				return false
			}
		}
	}
	return true
}

func TestClmulCommutativeDistributive(t *testing.T) {
	f := func(a, b, c uint64) bool {
		ab := clmul(a, b)
		ba := clmul(b, a)
		if ab != ba {
			return false
		}
		// a(b+c) = ab + ac
		l := clmul(a, b^c)
		r := clmul(a, b).xor(clmul(a, c))
		return l == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFieldAxioms(t *testing.T) {
	for _, m := range []int{1, 2, 3, 5, 8, 13, 16, 24, 32, 47, 63, 64} {
		fd := NewField(m)
		rng := rand.New(rand.NewSource(int64(m)))
		mask := fd.mask()
		for trial := 0; trial < 200; trial++ {
			a := rng.Uint64() & mask
			b := rng.Uint64() & mask
			c := rng.Uint64() & mask
			if fd.Mul(a, b) != fd.Mul(b, a) {
				t.Fatalf("m=%d: multiplication not commutative", m)
			}
			if fd.Mul(a, fd.Mul(b, c)) != fd.Mul(fd.Mul(a, b), c) {
				t.Fatalf("m=%d: multiplication not associative", m)
			}
			if fd.Mul(a, fd.Add(b, c)) != fd.Add(fd.Mul(a, b), fd.Mul(a, c)) {
				t.Fatalf("m=%d: distributivity fails", m)
			}
			if fd.Mul(a, 1) != a {
				t.Fatalf("m=%d: 1 is not multiplicative identity", m)
			}
			if fd.Mul(a, 0) != 0 {
				t.Fatalf("m=%d: 0 not absorbing", m)
			}
		}
	}
}

func TestFieldInverseViaFermat(t *testing.T) {
	// In GF(2^m), a^(2^m - 1) = 1 for a != 0, so a^(2^m - 2) is a's inverse.
	for _, m := range []int{2, 3, 8, 16, 32} {
		fd := NewField(m)
		rng := rand.New(rand.NewSource(int64(100 + m)))
		order := uint64(1)<<uint(m) - 1
		for trial := 0; trial < 50; trial++ {
			a := rng.Uint64() & fd.mask()
			if a == 0 {
				continue
			}
			inv := fd.Pow(a, order-1)
			if fd.Mul(a, inv) != 1 {
				t.Fatalf("m=%d: a*a^{-1} != 1 for a=%#x", m, a)
			}
		}
	}
}

func TestFieldMulMatchesTableGF16(t *testing.T) {
	// Exhaustive multiplication check in GF(2^4) with modulus x^4+x+1
	// (lexicographically smallest irreducible of degree 4, so NewField(4)
	// must select exactly it).
	fd := NewField(4)
	if fd.Modulus() != 0x13 {
		t.Fatalf("GF(16) modulus = %#x, want x^4+x+1 (0x13)", fd.Modulus())
	}
	// Reference: schoolbook multiply then reduce by 0b10011.
	ref := func(a, b uint64) uint64 {
		var p uint64
		for i := uint(0); i < 4; i++ {
			if b&(1<<i) != 0 {
				p ^= a << i
			}
		}
		for d := 7; d >= 4; d-- {
			if p&(1<<uint(d)) != 0 {
				p ^= 0b10011 << uint(d-4)
			}
		}
		return p
	}
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			if fd.Mul(a, b) != ref(a, b) {
				t.Fatalf("GF(16): %d*%d = %d, want %d", a, b, fd.Mul(a, b), ref(a, b))
			}
		}
	}
}

func TestEvalPolyHorner(t *testing.T) {
	fd := NewField(16)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		deg := rng.Intn(6)
		coeffs := make([]uint64, deg+1)
		for i := range coeffs {
			coeffs[i] = rng.Uint64() & fd.mask()
		}
		x := rng.Uint64() & fd.mask()
		// Direct evaluation with Pow.
		var want uint64
		for i, c := range coeffs {
			want = fd.Add(want, fd.Mul(c, fd.Pow(x, uint64(i))))
		}
		if got := fd.EvalPoly(coeffs, x); got != want {
			t.Fatalf("EvalPoly mismatch: got %#x want %#x", got, want)
		}
	}
}

func TestNewFieldCachesAndPanics(t *testing.T) {
	if NewField(8) != NewField(8) {
		t.Error("NewField not cached")
	}
	for _, m := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewField(%d) did not panic", m)
				}
			}()
			NewField(m)
		}()
	}
}

func TestAllDegreesConstructible(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping exhaustive degree sweep in -short mode")
	}
	for m := 1; m <= 64; m++ {
		fd := NewField(m)
		// Sanity: x * x = x^2 for m > 2 (no reduction can trigger).
		if m > 2 {
			if fd.Mul(2, 2) != 4 {
				t.Fatalf("m=%d: x*x != x^2", m)
			}
		}
	}
}
