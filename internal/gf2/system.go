package gf2

import (
	"math/bits"

	"mcf0/internal/bitvec"
)

// System is an online Gaussian-elimination solver for linear systems over
// GF(2). Rows (a, rhs) meaning a·x = rhs are added one at a time; the system
// maintains a row-echelon basis (each pivot row zero before its pivot
// column) and a consistency flag. Adding rows is O(rank · n/64); the
// elimination inner loop runs directly on the 64-bit word representation,
// and back-substitution is deferred to Solve/NullBasis instead of being
// maintained per Add, which halves the elimination work. The zero value is
// not usable; call NewSystem.
type System struct {
	cols         int
	pivots       []pivotRow // sorted by ascending pivot column
	inconsistent bool
}

type pivotRow struct {
	a   bitvec.BitVec
	rhs bool
	col int
}

// NewSystem returns an empty (trivially consistent) system over cols
// variables.
func NewSystem(cols int) *System {
	return &System{cols: cols}
}

// Clone returns an independent copy; subsequent Adds to either do not
// affect the other.
func (s *System) Clone() *System {
	c := &System{cols: s.cols, inconsistent: s.inconsistent}
	c.pivots = make([]pivotRow, len(s.pivots))
	rows := bitvec.NewSlab(s.cols, len(s.pivots))
	for i, p := range s.pivots {
		rows[i].CopyFrom(p.a)
		c.pivots[i] = pivotRow{a: rows[i], rhs: p.rhs, col: p.col}
	}
	return c
}

// Cols returns the number of variables.
func (s *System) Cols() int { return s.cols }

// Rank returns the rank of the rows added so far.
func (s *System) Rank() int { return len(s.pivots) }

// Consistent reports whether the system still has at least one solution.
func (s *System) Consistent() bool { return !s.inconsistent }

// reduceWords eliminates the row held in rw (word form) against the current
// basis in place, returning the reduced rhs.
func (s *System) reduceWords(rw []uint64, rhs bool) bool {
	for i := range s.pivots {
		p := &s.pivots[i]
		c0 := p.col / 64
		if rw[c0]&(1<<(uint(p.col)%64)) != 0 {
			// RREF invariant: a pivot row is zero before its pivot column,
			// so the XOR can start at the pivot word.
			pw := p.a.Words()[:len(rw)]
			for k := c0; k < len(rw); k++ {
				rw[k] ^= pw[k]
			}
			rhs = rhs != p.rhs
		}
	}
	return rhs
}

// Residual returns the reduced form of (a, rhs) against the current basis
// without mutating the system. If the reduced row is zero, the equation is
// implied (rhs false) or contradicted (rhs true).
func (s *System) Residual(a bitvec.BitVec, rhs bool) (bitvec.BitVec, bool) {
	if a.Len() != s.cols {
		panic("gf2: row width mismatch")
	}
	r := a.Clone()
	rr := s.reduceWords(r.Words(), rhs)
	return r, rr
}

// ResidualInto reduces (a, rhs) against the basis into dst (caller-owned,
// width cols, fully overwritten) and returns the reduced rhs — the
// allocation-free form of Residual. dst must not alias a basis row.
func (s *System) ResidualInto(a bitvec.BitVec, rhs bool, dst bitvec.BitVec) bool {
	if a.Len() != s.cols {
		panic("gf2: row width mismatch")
	}
	dst.CopyFrom(a)
	return s.reduceWords(dst.Words(), rhs)
}

// Add inserts the equation a·x = rhs, updating the basis. If the equation
// contradicts the existing rows the system becomes permanently inconsistent.
func (s *System) Add(a bitvec.BitVec, rhs bool) {
	if a.Len() != s.cols {
		panic("gf2: row width mismatch")
	}
	if s.inconsistent {
		return
	}
	r := a.Clone()
	rr := s.reduceWords(r.Words(), rhs)
	s.insertReduced(r, rr)
}

// AddPrereduced inserts an equation already reduced against the current
// basis — typically the output of ResidualInto, saving the second
// elimination pass Add would perform. The row is copied; the caller keeps
// ownership of r and may reuse it.
func (s *System) AddPrereduced(r bitvec.BitVec, rhs bool) {
	if r.Len() != s.cols {
		panic("gf2: row width mismatch")
	}
	if s.inconsistent {
		return
	}
	s.insertReduced(r.Clone(), rhs)
}

// insertReduced installs a row that is already reduced against the basis,
// taking ownership of r. The basis stays in echelon (not fully reduced)
// form; Solve and NullBasis back-substitute on demand.
func (s *System) insertReduced(r bitvec.BitVec, rr bool) {
	col := r.FirstSet()
	if col < 0 {
		if rr {
			s.inconsistent = true
		}
		return
	}
	// Insert keeping pivots sorted by column.
	idx := len(s.pivots)
	for i, p := range s.pivots {
		if p.col > col {
			idx = i
			break
		}
	}
	s.pivots = append(s.pivots, pivotRow{})
	copy(s.pivots[idx+1:], s.pivots[idx:])
	s.pivots[idx] = pivotRow{a: r, rhs: rr, col: col}
}

// Solve returns a particular solution with all free variables set to zero.
// The second result is false if the system is inconsistent.
func (s *System) Solve() (bitvec.BitVec, bool) {
	if s.inconsistent {
		return bitvec.BitVec{}, false
	}
	x := bitvec.New(s.cols)
	// Back-substitute from the last pivot upward: pivot rows are zero
	// before their pivot column, and x's bit at p.col is still clear when
	// row p is processed, so a·x sums exactly the later pivots'
	// contributions.
	for i := len(s.pivots) - 1; i >= 0; i-- {
		p := &s.pivots[i]
		if p.a.Dot(x) != p.rhs {
			x.Set(p.col, true)
		}
	}
	return x, true
}

// Equation is one row of a linear system: A·x = RHS.
type Equation struct {
	A   bitvec.BitVec
	RHS bool
}

// Equations returns the echelon basis rows. Their solution set equals that
// of all rows ever added (when consistent); used to translate a system into
// XOR constraints for a SAT solver. Callers must not mutate the vectors.
func (s *System) Equations() []Equation {
	eqs := make([]Equation, len(s.pivots))
	for i, p := range s.pivots {
		eqs[i] = Equation{A: p.a, RHS: p.rhs}
	}
	return eqs
}

// FreeDim returns the dimension of the solution space (number of free
// variables); meaningful only when consistent.
func (s *System) FreeDim() int { return s.cols - len(s.pivots) }

// NullBasis returns a basis of the homogeneous solution space {x : Ax = 0}.
func (s *System) NullBasis() []bitvec.BitVec {
	isPivot := make([]bool, s.cols)
	for _, p := range s.pivots {
		isPivot[p.col] = true
	}
	var basis []bitvec.BitVec
	for f := 0; f < s.cols; f++ {
		if isPivot[f] {
			continue
		}
		// Free variable f set to one, all other free variables zero;
		// back-substitute the pivot variables from the last row upward.
		v := bitvec.New(s.cols)
		v.Set(f, true)
		for i := len(s.pivots) - 1; i >= 0; i-- {
			p := &s.pivots[i]
			if p.a.Dot(v) {
				v.Set(p.col, true)
			}
		}
		basis = append(basis, v)
	}
	return basis
}

// EnumerateSolutions visits solutions of the system, up to limit of them
// (limit < 0 means all; beware exponential counts). visit returning false
// stops the walk early. The walk uses a Gray-code order over the null-space
// coordinates so each successive solution differs by one basis vector XOR.
func (s *System) EnumerateSolutions(limit int, visit func(bitvec.BitVec) bool) {
	x0, ok := s.Solve()
	if !ok {
		return
	}
	basis := s.NullBasis()
	d := len(basis)
	if limit == 0 {
		return
	}
	cur := x0.Clone()
	if !visit(cur.Clone()) {
		return
	}
	count := 1
	if d >= 63 {
		d = 62 // enumeration beyond 2^62 is never requested with finite limit
	}
	var total uint64 = 1 << uint(d)
	for i := uint64(1); i < total; i++ {
		if limit >= 0 && count >= limit {
			return
		}
		// Gray code: flip the basis vector at the index of the lowest set
		// bit of i.
		j := bits.TrailingZeros64(i)
		cur.XorInPlace(basis[j])
		if !visit(cur.Clone()) {
			return
		}
		count++
	}
}

// SolutionCountCapped returns min(cap, number of solutions). cap must be
// non-negative.
func (s *System) SolutionCountCapped(cap int) int {
	if s.inconsistent {
		return 0
	}
	d := s.FreeDim()
	if d >= 63 {
		return cap
	}
	n := uint64(1) << uint(d)
	if uint64(cap) < n {
		return cap
	}
	return int(n)
}
