package gf2

import (
	"math/bits"

	"mcf0/internal/bitvec"
)

// System is an online Gaussian-elimination solver for linear systems over
// GF(2). Rows (a, rhs) meaning a·x = rhs are added one at a time; the system
// maintains a row-echelon basis (each pivot row zero before its pivot
// column) and a consistency flag. Adding rows is O(rank · n/64); the
// elimination inner loop runs directly on the 64-bit word representation,
// and back-substitution is deferred to Solve/NullBasis instead of being
// maintained per Add, which halves the elimination work. The zero value is
// not usable; call NewSystem.
//
// # Checkpoint/rewind and row ownership
//
// Mark returns a Checkpoint and Rewind restores the exact state a Checkpoint
// was taken at, undoing every insertion in between. The machinery is an
// insertion journal (the position each pivot was spliced in at, plus the
// inconsistency flag captured per Checkpoint) and a slab-backed row pool:
// rows displaced by a Rewind are recycled into later Adds instead of
// becoming garbage, which is what makes repeated extend/rewind walks
// (ImageSearcher's prefix searches) allocation-free in steady state.
//
// The pool sharpens the aliasing contract of Equations: basis rows obtained
// from Equations (or Residual output) are owned by the system and are
// invalidated by the next Rewind — a recycled row's storage is overwritten
// by a later Add. Callers that hold rows across a Rewind must Clone them;
// callers that only read rows between a Mark and the matching Rewind (the
// oracle backends' per-query constraint reads) need not.
type System struct {
	cols         int
	pivots       []pivotRow // sorted by ascending pivot column
	inconsistent bool
	// journal records, per installed pivot in insertion order, the index it
	// was spliced in at — exactly what Rewind needs to splice it back out —
	// and its insertion serial, which is what lets Rewind detect stale
	// checkpoints. len(journal) == len(pivots) always.
	journal []journalEntry
	serial  uint64 // next insertion serial, monotone across Rewinds
	// free and slab implement the row pool: free holds rows recycled by
	// Rewind, slab the unused remainder of the last slab allocation.
	free []bitvec.BitVec
	slab []bitvec.BitVec
}

type journalEntry struct {
	idx    int32
	serial uint64
}

type pivotRow struct {
	a   bitvec.BitVec
	rhs bool
	col int
}

// NewSystem returns an empty (trivially consistent) system over cols
// variables.
func NewSystem(cols int) *System {
	return &System{cols: cols}
}

// Clone returns an independent copy; subsequent Adds to either do not
// affect the other. Checkpoints taken on the receiver are also valid on the
// clone (and vice versa): a Checkpoint captures only insertion depth, which
// Clone preserves. The clone starts with a fresh row pool.
func (s *System) Clone() *System {
	c := &System{cols: s.cols, inconsistent: s.inconsistent, serial: s.serial}
	c.pivots = make([]pivotRow, len(s.pivots))
	c.journal = append([]journalEntry(nil), s.journal...)
	rows := bitvec.NewSlab(s.cols, len(s.pivots))
	for i, p := range s.pivots {
		rows[i].CopyFrom(p.a)
		c.pivots[i] = pivotRow{a: rows[i], rhs: p.rhs, col: p.col}
	}
	return c
}

// Checkpoint is a point-in-time marker for Rewind; see Mark. The zero value
// marks the empty system. Checkpoints are plain values: taking one is a few
// loads, and it stays valid until a Rewind to an earlier Checkpoint
// (rewinding past it invalidates it — the insertions it counts are gone;
// Rewind detects such stale checkpoints by insertion serial and panics
// rather than silently splicing out the wrong rows).
type Checkpoint struct {
	pivots       int
	serial       uint64
	inconsistent bool
}

// Mark captures the current state for a later Rewind. O(1), no allocation.
func (s *System) Mark() Checkpoint {
	return Checkpoint{pivots: len(s.pivots), serial: s.serial, inconsistent: s.inconsistent}
}

// Rewind restores the state captured by cp, undoing every Add since the
// matching Mark in O(rows undone). The displaced rows are recycled into the
// internal pool, invalidating aliases obtained from Equations between the
// Mark and the Rewind (see the type comment's ownership contract). It
// panics on a stale checkpoint — one whose insertions were already undone
// by a deeper Rewind, even if the system has since re-grown past its depth
// (journal serials are monotone, so a re-grown prefix is detectable).
func (s *System) Rewind(cp Checkpoint) {
	if cp.pivots > len(s.pivots) ||
		(cp.pivots > 0 && s.journal[cp.pivots-1].serial >= cp.serial) {
		panic("gf2: rewind to a stale checkpoint (rewound past, then re-grown)")
	}
	for len(s.pivots) > cp.pivots {
		last := len(s.pivots) - 1
		idx := s.journal[last].idx
		row := s.pivots[idx].a
		copy(s.pivots[idx:], s.pivots[idx+1:])
		s.pivots = s.pivots[:last]
		s.journal = s.journal[:last]
		s.free = append(s.free, row)
	}
	s.inconsistent = cp.inconsistent
}

// newRow hands out a width-cols row from the pool, growing it by a slab
// when empty. The row contains stale bits; every user overwrites it fully
// (CopyFrom) before reading.
func (s *System) newRow() bitvec.BitVec {
	if n := len(s.free); n > 0 {
		r := s.free[n-1]
		s.free = s.free[:n-1]
		return r
	}
	if len(s.slab) == 0 {
		count := len(s.pivots) + 8
		if count > 256 {
			count = 256
		}
		s.slab = bitvec.NewSlab(s.cols, count)
	}
	r := s.slab[0]
	s.slab = s.slab[1:]
	return r
}

// Cols returns the number of variables.
func (s *System) Cols() int { return s.cols }

// Rank returns the rank of the rows added so far.
func (s *System) Rank() int { return len(s.pivots) }

// Consistent reports whether the system still has at least one solution.
func (s *System) Consistent() bool { return !s.inconsistent }

// reduceWords eliminates the row held in rw (word form) against the current
// basis in place, returning the reduced rhs.
func (s *System) reduceWords(rw []uint64, rhs bool) bool {
	for i := range s.pivots {
		p := &s.pivots[i]
		c0 := p.col / 64
		if rw[c0]&(1<<(uint(p.col)%64)) != 0 {
			// RREF invariant: a pivot row is zero before its pivot column,
			// so the XOR can start at the pivot word.
			pw := p.a.Words()[:len(rw)]
			for k := c0; k < len(rw); k++ {
				rw[k] ^= pw[k]
			}
			rhs = rhs != p.rhs
		}
	}
	return rhs
}

// Residual returns the reduced form of (a, rhs) against the current basis
// without mutating the system. If the reduced row is zero, the equation is
// implied (rhs false) or contradicted (rhs true).
func (s *System) Residual(a bitvec.BitVec, rhs bool) (bitvec.BitVec, bool) {
	if a.Len() != s.cols {
		panic("gf2: row width mismatch")
	}
	r := a.Clone()
	rr := s.reduceWords(r.Words(), rhs)
	return r, rr
}

// ResidualInto reduces (a, rhs) against the basis into dst (caller-owned,
// width cols, fully overwritten) and returns the reduced rhs — the
// allocation-free form of Residual. dst must not alias a basis row.
func (s *System) ResidualInto(a bitvec.BitVec, rhs bool, dst bitvec.BitVec) bool {
	if a.Len() != s.cols {
		panic("gf2: row width mismatch")
	}
	dst.CopyFrom(a)
	return s.reduceWords(dst.Words(), rhs)
}

// Add inserts the equation a·x = rhs, updating the basis. If the equation
// contradicts the existing rows the system becomes inconsistent until a
// Rewind to a consistent Checkpoint (or permanently, absent one). The row
// is copied into pooled storage; the caller keeps ownership of a.
func (s *System) Add(a bitvec.BitVec, rhs bool) {
	if a.Len() != s.cols {
		panic("gf2: row width mismatch")
	}
	if s.inconsistent {
		return
	}
	r := s.newRow()
	r.CopyFrom(a)
	rr := s.reduceWords(r.Words(), rhs)
	s.insertReduced(r, rr)
}

// AddPrereduced inserts an equation already reduced against the current
// basis — typically the output of ResidualInto, saving the second
// elimination pass Add would perform. The row is copied; the caller keeps
// ownership of r and may reuse it.
func (s *System) AddPrereduced(r bitvec.BitVec, rhs bool) {
	if r.Len() != s.cols {
		panic("gf2: row width mismatch")
	}
	if s.inconsistent {
		return
	}
	p := s.newRow()
	p.CopyFrom(r)
	s.insertReduced(p, rhs)
}

// insertReduced installs a row that is already reduced against the basis,
// taking ownership of r (pooled storage). The basis stays in echelon (not
// fully reduced) form; Solve and NullBasis back-substitute on demand. Every
// pivot installation is journaled for Rewind; a zero row installs nothing
// and returns its storage to the pool.
func (s *System) insertReduced(r bitvec.BitVec, rr bool) {
	col := r.FirstSet()
	if col < 0 {
		s.free = append(s.free, r)
		if rr {
			s.inconsistent = true
		}
		return
	}
	// Insert keeping pivots sorted by column.
	idx := len(s.pivots)
	for i, p := range s.pivots {
		if p.col > col {
			idx = i
			break
		}
	}
	s.pivots = append(s.pivots, pivotRow{})
	copy(s.pivots[idx+1:], s.pivots[idx:])
	s.pivots[idx] = pivotRow{a: r, rhs: rr, col: col}
	s.journal = append(s.journal, journalEntry{idx: int32(idx), serial: s.serial})
	s.serial++
}

// Solve returns a particular solution with all free variables set to zero.
// The second result is false if the system is inconsistent.
func (s *System) Solve() (bitvec.BitVec, bool) {
	if s.inconsistent {
		return bitvec.BitVec{}, false
	}
	x := bitvec.New(s.cols)
	// Back-substitute from the last pivot upward: pivot rows are zero
	// before their pivot column, and x's bit at p.col is still clear when
	// row p is processed, so a·x sums exactly the later pivots'
	// contributions.
	for i := len(s.pivots) - 1; i >= 0; i-- {
		p := &s.pivots[i]
		if p.a.Dot(x) != p.rhs {
			x.Set(p.col, true)
		}
	}
	return x, true
}

// Equation is one row of a linear system: A·x = RHS.
type Equation struct {
	A   bitvec.BitVec
	RHS bool
}

// Equations returns the echelon basis rows. Their solution set equals that
// of all rows ever added (when consistent); used to translate a system into
// XOR constraints for a SAT solver. Callers must not mutate the vectors.
func (s *System) Equations() []Equation {
	eqs := make([]Equation, len(s.pivots))
	for i, p := range s.pivots {
		eqs[i] = Equation{A: p.a, RHS: p.rhs}
	}
	return eqs
}

// FreeDim returns the dimension of the solution space (number of free
// variables); meaningful only when consistent.
func (s *System) FreeDim() int { return s.cols - len(s.pivots) }

// NullBasis returns a basis of the homogeneous solution space {x : Ax = 0}.
func (s *System) NullBasis() []bitvec.BitVec {
	isPivot := make([]bool, s.cols)
	for _, p := range s.pivots {
		isPivot[p.col] = true
	}
	var basis []bitvec.BitVec
	for f := 0; f < s.cols; f++ {
		if isPivot[f] {
			continue
		}
		// Free variable f set to one, all other free variables zero;
		// back-substitute the pivot variables from the last row upward.
		v := bitvec.New(s.cols)
		v.Set(f, true)
		for i := len(s.pivots) - 1; i >= 0; i-- {
			p := &s.pivots[i]
			if p.a.Dot(v) {
				v.Set(p.col, true)
			}
		}
		basis = append(basis, v)
	}
	return basis
}

// EnumerateSolutions visits solutions of the system, up to limit of them
// (limit < 0 means all; beware exponential counts). visit returning false
// stops the walk early. The walk uses a Gray-code order over the null-space
// coordinates so each successive solution differs by one basis vector XOR.
func (s *System) EnumerateSolutions(limit int, visit func(bitvec.BitVec) bool) {
	x0, ok := s.Solve()
	if !ok {
		return
	}
	basis := s.NullBasis()
	d := len(basis)
	if limit == 0 {
		return
	}
	cur := x0.Clone()
	if !visit(cur.Clone()) {
		return
	}
	count := 1
	if d >= 63 {
		d = 62 // enumeration beyond 2^62 is never requested with finite limit
	}
	var total uint64 = 1 << uint(d)
	for i := uint64(1); i < total; i++ {
		if limit >= 0 && count >= limit {
			return
		}
		// Gray code: flip the basis vector at the index of the lowest set
		// bit of i.
		j := bits.TrailingZeros64(i)
		cur.XorInPlace(basis[j])
		if !visit(cur.Clone()) {
			return
		}
		count++
	}
}

// SolutionCountCapped returns min(cap, number of solutions). cap must be
// non-negative.
func (s *System) SolutionCountCapped(cap int) int {
	if s.inconsistent {
		return 0
	}
	d := s.FreeDim()
	if d >= 63 {
		return cap
	}
	n := uint64(1) << uint(d)
	if uint64(cap) < n {
		return cap
	}
	return int(n)
}
