package gf2

import (
	"testing"
	"testing/quick"

	"mcf0/internal/bitvec"
	"mcf0/internal/stats"
)

// Property: adding the same equation twice never changes rank or
// consistency (idempotence of the echelon basis).
func TestQuickAddIdempotent(t *testing.T) {
	f := func(seed uint64, rowsRaw uint8) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(12)
		rows := int(rowsRaw % 8)
		sys := NewSystem(n)
		var saved []struct {
			a   bitvec.BitVec
			rhs bool
		}
		for i := 0; i < rows; i++ {
			a := bitvec.Random(n, rng.Uint64)
			rhs := rng.Bool()
			saved = append(saved, struct {
				a   bitvec.BitVec
				rhs bool
			}{a, rhs})
			sys.Add(a, rhs)
		}
		rank, cons := sys.Rank(), sys.Consistent()
		for _, s := range saved {
			sys.Add(s.a, s.rhs)
		}
		return sys.Rank() == rank && sys.Consistent() == cons
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Clone isolation — mutating a clone never affects the parent.
func TestQuickCloneIsolation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(10)
		sys := NewSystem(n)
		for i := 0; i < 3; i++ {
			sys.Add(bitvec.Random(n, rng.Uint64), rng.Bool())
		}
		rank, cons := sys.Rank(), sys.Consistent()
		clone := sys.Clone()
		for i := 0; i < 5; i++ {
			clone.Add(bitvec.Random(n, rng.Uint64), rng.Bool())
		}
		return sys.Rank() == rank && sys.Consistent() == cons
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every equation returned by Equations() is satisfied by every
// enumerated solution.
func TestQuickEquationsSound(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(8)
		sys := NewSystem(n)
		for i := 0; i < rng.Intn(6); i++ {
			sys.Add(bitvec.Random(n, rng.Uint64), rng.Bool())
		}
		okAll := true
		count := 0
		sys.EnumerateSolutions(16, func(x bitvec.BitVec) bool {
			count++
			for _, eq := range sys.Equations() {
				if eq.A.Dot(x) != eq.RHS {
					okAll = false
					return false
				}
			}
			return true
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the image searcher's Min is a true lower bound — Contains(y)
// implies Min() ≤ y.
func TestQuickImageMinIsLowerBound(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(8)
		a := RandomMatrix(m, n, rng.Uint64)
		b := bitvec.Random(m, rng.Uint64)
		s := NewImageSearcher(a, b, nil)
		min, ok := s.Min()
		if !ok {
			return false // unconstrained image is never empty
		}
		// Probe with images of random points; all must be ≥ min.
		for i := 0; i < 10; i++ {
			y := a.MulVec(bitvec.Random(n, rng.Uint64)).Xor(b)
			if y.Less(min) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Successor is strictly increasing and stays inside the image.
func TestQuickSuccessorMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(5)
		m := 2 + rng.Intn(6)
		a := RandomMatrix(m, n, rng.Uint64)
		b := bitvec.Random(m, rng.Uint64)
		s := NewImageSearcher(a, b, nil)
		cur, ok := s.Min()
		steps := 0
		for ok && steps < 10 {
			next, ok2 := s.Successor(cur)
			if ok2 {
				if !cur.Less(next) {
					return false
				}
				if !s.Contains(next) {
					return false
				}
			}
			cur, ok = next, ok2
			steps++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
