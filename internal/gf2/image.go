package gf2

import "mcf0/internal/bitvec"

// ImageSearcher answers lexicographic queries about the affine image
//
//	Y = { A·x + b : x ∈ {0,1}^n, x satisfies cons }
//
// where cons is an optional set of additional linear constraints on x (used
// by AffineFindMin, Proposition 4; nil means unconstrained). This is the
// prefix-searching primitive from the proof of Proposition 2: feasibility of
// a prefix y₁…yₗ reduces to consistency of the stacked linear system
// A[1..l]·x = y[1..l] ⊕ b[1..l] together with cons.
//
// The searcher keeps one persistent System for its whole lifetime, managed
// through a PrefixStack: prefix rows are committed with per-position
// checkpoints and a query rewinds only to the first position where its
// prefix diverges from the previously committed one, instead of cloning
// the base system and replaying the prefix from scratch. Successive
// Successor steps share all but one prefix row, so a KMin walk costs O(1)
// row operations per prefix position probed and allocates nothing in
// steady state (the *Into variants also reuse the caller's result vector).
// A searcher is single-goroutine, like the System underneath.
type ImageSearcher struct {
	a  *Matrix
	b  bitvec.BitVec
	ps *PrefixStack
	// scratch holds one reduced row during prefix extension so the greedy
	// walk performs no per-row allocation; prefixBuf and cur back the
	// Successor/enumeration walks.
	scratch   bitvec.BitVec
	prefixBuf []bool
	cur       bitvec.BitVec
}

// NewImageSearcher builds a searcher for the image of h(x) = Ax + b over
// solutions of cons (may be nil). The searcher takes ownership of cons: it
// extends and rewinds the system across queries (never below the state
// passed in), so the caller must not touch cons afterwards.
func NewImageSearcher(a *Matrix, b bitvec.BitVec, cons *System) *ImageSearcher {
	return &ImageSearcher{
		a:       a,
		b:       b,
		ps:      NewPrefixStack(a, b, cons),
		scratch: bitvec.New(a.Cols()),
		cur:     bitvec.New(a.Rows()),
	}
}

// OutBits returns the width of image elements.
func (s *ImageSearcher) OutBits() int { return s.a.Rows() }

// Empty reports whether the image is empty (constraints unsatisfiable).
func (s *ImageSearcher) Empty() bool { return !s.ps.BaseConsistent() }

// LexMinWithPrefixInto writes the lexicographically smallest image element
// whose first len(prefix) bits equal prefix into dst (caller-owned, width
// OutBits, fully overwritten) and reports whether one exists — the
// allocation-free form of LexMinWithPrefix. On false, dst's contents are
// unspecified.
func (s *ImageSearcher) LexMinWithPrefixInto(prefix []bool, dst bitvec.BitVec) bool {
	m := s.a.Rows()
	if len(prefix) > m {
		panic("gf2: prefix longer than image width")
	}
	if dst.Len() != m {
		panic("gf2: destination width mismatch")
	}
	if !s.ps.ExtendTo(prefix) {
		return false
	}
	dw := dst.Words()
	for i := range dw {
		dw[i] = 0
	}
	for i, bit := range prefix {
		if bit {
			dst.Set(i, true)
		}
	}
	// Greedily extend: prefer yᵢ = 0; the residual tells us when the value
	// is forced. Reducing (Aᵢ, bᵢ) gives the rhs that corresponds to yᵢ=0;
	// if the reduced row is zero the only consistent choice is yᵢ = t ⊕ bᵢ
	// where t is the reduced rhs of the homogeneous attempt. Every chosen
	// bit is committed with its own checkpoint, so a following Successor
	// query rewinds straight to its flip position.
	sys := s.ps.System()
	for i := len(prefix); i < m; i++ {
		row := s.a.Row(i)
		rr := sys.ResidualInto(row, s.b.Get(i), s.scratch) // rhs for yᵢ = 0
		if s.scratch.IsZero() {
			// yᵢ forced: consistent value flips rr to false.
			if rr {
				dst.Set(i, true)
			}
			s.ps.CommitForced(rr)
			continue
		}
		// Row independent: both values feasible, take 0 and commit the
		// already-reduced residual (CommitResidual copies it, so the
		// scratch stays reusable).
		s.ps.CommitResidual(false, s.scratch, rr)
	}
	return true
}

// LexMinWithPrefix returns the lexicographically smallest element of the
// image whose first len(prefix) bits equal prefix, and whether one exists.
func (s *ImageSearcher) LexMinWithPrefix(prefix []bool) (bitvec.BitVec, bool) {
	y := bitvec.New(s.a.Rows())
	if !s.LexMinWithPrefixInto(prefix, y) {
		return bitvec.BitVec{}, false
	}
	return y, true
}

// Min returns the lexicographically smallest image element.
func (s *ImageSearcher) Min() (bitvec.BitVec, bool) {
	return s.LexMinWithPrefix(nil)
}

// MinInto writes the lexicographically smallest image element into dst and
// reports whether the image is nonempty.
func (s *ImageSearcher) MinInto(dst bitvec.BitVec) bool {
	return s.LexMinWithPrefixInto(nil, dst)
}

// SuccessorInto writes the smallest image element strictly greater than y
// into dst (caller-owned, width OutBits) and reports whether one exists.
// dst may alias y: y's bits are copied out before dst is written. It
// follows the paper's strategy — walk the rightmost zeros of y, trying to
// extend prefix y₁…y_{r-1}·1 for each zero position r from right to left.
// When y is the element a preceding LexMin/Successor call produced, each
// probe costs one row operation: the walk's bits are committed with
// per-position checkpoints, so the searcher rewinds exactly to the flip
// position.
func (s *ImageSearcher) SuccessorInto(y, dst bitvec.BitVec) bool {
	m := s.a.Rows()
	if y.Len() != m {
		panic("gf2: successor width mismatch")
	}
	if dst.Len() != m {
		panic("gf2: destination width mismatch")
	}
	if cap(s.prefixBuf) < m {
		s.prefixBuf = make([]bool, m)
	}
	return SuccessorPrefixes(y, s.prefixBuf[:m], func(prefix []bool) bool {
		return s.LexMinWithPrefixInto(prefix, dst)
	})
}

// Successor returns the smallest image element strictly greater than y, and
// whether one exists.
func (s *ImageSearcher) Successor(y bitvec.BitVec) (bitvec.BitVec, bool) {
	next := bitvec.New(s.a.Rows())
	if !s.SuccessorInto(y, next) {
		return bitvec.BitVec{}, false
	}
	return next, true
}

// EnumerateImage visits image elements in increasing lexicographic order,
// up to limit of them (limit < 0 means all; beware 2^rank image sizes).
// visit returning false stops the walk early; the walk's count is returned.
// The vector passed to visit is scratch owned by the searcher, valid only
// for the duration of the callback — Clone it to retain.
func (s *ImageSearcher) EnumerateImage(limit int, visit func(bitvec.BitVec) bool) int {
	if limit == 0 {
		return 0
	}
	count := 0
	ok := s.MinInto(s.cur)
	for ok {
		count++
		if !visit(s.cur) {
			break
		}
		if limit >= 0 && count >= limit {
			break
		}
		ok = s.SuccessorInto(s.cur, s.cur)
	}
	return count
}

// KMin returns the k lexicographically smallest elements of the image in
// increasing order (fewer if the image is smaller); k ≤ 0 yields none. The
// returned vectors are freshly allocated and independent of the searcher.
func (s *ImageSearcher) KMin(k int) []bitvec.BitVec {
	if k <= 0 {
		return nil
	}
	var out []bitvec.BitVec
	s.EnumerateImage(k, func(y bitvec.BitVec) bool {
		out = append(out, y.Clone())
		return true
	})
	return out
}

// Contains reports whether y is in the image. Membership is feasibility of
// the full-length prefix y, so the check shares the rewind machinery (and
// its cost profile) with LexMinWithPrefix.
func (s *ImageSearcher) Contains(y bitvec.BitVec) bool {
	m := s.a.Rows()
	if y.Len() != m {
		panic("gf2: width mismatch")
	}
	if cap(s.prefixBuf) < m {
		s.prefixBuf = make([]bool, m)
	}
	buf := s.prefixBuf[:m]
	for i := 0; i < m; i++ {
		buf[i] = y.Get(i)
	}
	return s.ps.ExtendTo(buf)
}
