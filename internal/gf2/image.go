package gf2

import "mcf0/internal/bitvec"

// ImageSearcher answers lexicographic queries about the affine image
//
//	Y = { A·x + b : x ∈ {0,1}^n, x satisfies cons }
//
// where cons is an optional set of additional linear constraints on x (used
// by AffineFindMin, Proposition 4; nil means unconstrained). This is the
// prefix-searching primitive from the proof of Proposition 2: feasibility of
// a prefix y₁…yₗ reduces to consistency of the stacked linear system
// A[1..l]·x = y[1..l] ⊕ b[1..l] together with cons.
type ImageSearcher struct {
	a    *Matrix
	b    bitvec.BitVec
	base *System
	// scratch holds one reduced row during prefix extension so the greedy
	// walk performs no per-row allocation.
	scratch bitvec.BitVec
}

// NewImageSearcher builds a searcher for the image of h(x) = Ax + b over
// solutions of cons (may be nil).
func NewImageSearcher(a *Matrix, b bitvec.BitVec, cons *System) *ImageSearcher {
	if b.Len() != a.Rows() {
		panic("gf2: offset width must equal row count")
	}
	base := cons
	if base == nil {
		base = NewSystem(a.Cols())
	} else if base.Cols() != a.Cols() {
		panic("gf2: constraint system width mismatch")
	}
	return &ImageSearcher{a: a, b: b, base: base, scratch: bitvec.New(a.Cols())}
}

// OutBits returns the width of image elements.
func (s *ImageSearcher) OutBits() int { return s.a.Rows() }

// Empty reports whether the image is empty (constraints unsatisfiable).
func (s *ImageSearcher) Empty() bool { return !s.base.Consistent() }

// LexMinWithPrefix returns the lexicographically smallest element of the
// image whose first len(prefix) bits equal prefix, and whether one exists.
func (s *ImageSearcher) LexMinWithPrefix(prefix []bool) (bitvec.BitVec, bool) {
	m := s.a.Rows()
	if len(prefix) > m {
		panic("gf2: prefix longer than image width")
	}
	sys := s.base.Clone()
	if !sys.Consistent() {
		return bitvec.BitVec{}, false
	}
	y := bitvec.New(m)
	for i, bit := range prefix {
		sys.Add(s.a.Row(i), bit != s.b.Get(i))
		if !sys.Consistent() {
			return bitvec.BitVec{}, false
		}
		if bit {
			y.Set(i, true)
		}
	}
	// Greedily extend: prefer yᵢ = 0; the residual tells us when the value
	// is forced. Reducing (Aᵢ, bᵢ) gives the rhs that corresponds to yᵢ=0;
	// if the reduced row is zero the only consistent choice is yᵢ = t ⊕ bᵢ
	// where t is the reduced rhs of the homogeneous attempt.
	for i := len(prefix); i < m; i++ {
		row := s.a.Row(i)
		rr := sys.ResidualInto(row, s.b.Get(i), s.scratch) // rhs for yᵢ = 0
		if s.scratch.IsZero() {
			// yᵢ forced: consistent value flips rr to false.
			if rr {
				y.Set(i, true)
			}
			continue
		}
		// Row independent: both values feasible, take 0 and commit the
		// already-reduced residual (AddPrereduced copies it, so the scratch
		// stays reusable).
		sys.AddPrereduced(s.scratch, rr)
	}
	return y, true
}

// Min returns the lexicographically smallest image element.
func (s *ImageSearcher) Min() (bitvec.BitVec, bool) {
	return s.LexMinWithPrefix(nil)
}

// Successor returns the smallest image element strictly greater than y, and
// whether one exists. It follows the paper's strategy: walk the rightmost
// zeros of y, trying to extend prefix y₁…y_{r-1}·1 for each zero position r
// from right to left.
func (s *ImageSearcher) Successor(y bitvec.BitVec) (bitvec.BitVec, bool) {
	m := s.a.Rows()
	if y.Len() != m {
		panic("gf2: successor width mismatch")
	}
	for r := m - 1; r >= 0; r-- {
		if y.Get(r) {
			continue
		}
		prefix := make([]bool, r+1)
		for i := 0; i < r; i++ {
			prefix[i] = y.Get(i)
		}
		prefix[r] = true
		if next, ok := s.LexMinWithPrefix(prefix); ok {
			return next, true
		}
	}
	return bitvec.BitVec{}, false
}

// KMin returns the k lexicographically smallest elements of the image in
// increasing order (fewer if the image is smaller).
func (s *ImageSearcher) KMin(k int) []bitvec.BitVec {
	var out []bitvec.BitVec
	cur, ok := s.Min()
	for ok && len(out) < k {
		out = append(out, cur)
		cur, ok = s.Successor(cur)
	}
	return out
}

// Contains reports whether y is in the image.
func (s *ImageSearcher) Contains(y bitvec.BitVec) bool {
	m := s.a.Rows()
	if y.Len() != m {
		panic("gf2: width mismatch")
	}
	sys := s.base.Clone()
	for i := 0; i < m; i++ {
		sys.Add(s.a.Row(i), y.Get(i) != s.b.Get(i))
		if !sys.Consistent() {
			return false
		}
	}
	return true
}
