package gf2

import "mcf0/internal/bitvec"

// PrefixStack maintains the committed-prefix discipline shared by the
// affine ImageSearcher and the oracle-backed mirror in package counting: a
// persistent System plus, for every committed prefix bit, the Checkpoint
// that undoes its row. Committing bit yᵢ stacks the equation
// Aᵢ·x = yᵢ ⊕ bᵢ; ExtendTo rewinds to the first position where a new
// prefix diverges from the committed one and commits the remainder, so
// consecutive nested or sibling prefixes cost O(rows changed) instead of a
// clone-and-replay. Single-goroutine, like the System underneath.
type PrefixStack struct {
	sys       *System
	a         *Matrix
	b         bitvec.BitVec
	committed []bool
	marks     []Checkpoint
}

// NewPrefixStack builds the stack for prefix systems of A·x = y ⊕ b on top
// of sys (nil means unconstrained). It takes ownership of sys: the stack
// extends and rewinds it across queries (never below the state passed in),
// so the caller must not touch sys afterwards except through the stack.
func NewPrefixStack(a *Matrix, b bitvec.BitVec, sys *System) *PrefixStack {
	if b.Len() != a.Rows() {
		panic("gf2: offset width must equal row count")
	}
	if sys == nil {
		sys = NewSystem(a.Cols())
	} else if sys.Cols() != a.Cols() {
		panic("gf2: constraint system width mismatch")
	}
	return &PrefixStack{sys: sys, a: a, b: b}
}

// System returns the underlying system, positioned at the committed
// prefix — what a feasibility oracle reads its constraint rows from. The
// gf2.System ownership contract applies: rows read from it are invalidated
// by the stack's next rewind.
func (p *PrefixStack) System() *System { return p.sys }

// BaseConsistent reports whether the base constraints (zero committed
// rows) are consistent, regardless of the committed depth.
func (p *PrefixStack) BaseConsistent() bool {
	if len(p.committed) > 0 {
		return !p.marks[0].inconsistent
	}
	return p.sys.Consistent()
}

// Depth returns the number of committed prefix bits.
func (p *PrefixStack) Depth() int { return len(p.committed) }

// ExtendTo rewinds to the longest common prefix of the committed bits and
// prefix, then commits the remaining bits of prefix one row at a time. It
// returns false as soon as the system goes inconsistent (the offending row
// stays committed so the next query rewinds past it in O(1)).
func (p *PrefixStack) ExtendTo(prefix []bool) bool {
	c := 0
	for c < len(prefix) && c < len(p.committed) && prefix[c] == p.committed[c] {
		c++
	}
	if len(p.committed) > c {
		p.sys.Rewind(p.marks[c])
		p.committed = p.committed[:c]
		p.marks = p.marks[:c]
	}
	if !p.sys.Consistent() {
		return false
	}
	for i := c; i < len(prefix); i++ {
		p.marks = append(p.marks, p.sys.Mark())
		p.committed = append(p.committed, prefix[i])
		p.sys.Add(p.a.Row(i), prefix[i] != p.b.Get(i))
		if !p.sys.Consistent() {
			return false
		}
	}
	return true
}

// CommitForced records bit for the next prefix position whose row reduced
// to zero (the bit is forced): the system state is unchanged, only the
// checkpoint is recorded so a later ExtendTo can rewind through it.
func (p *PrefixStack) CommitForced(bit bool) {
	p.marks = append(p.marks, p.sys.Mark())
	p.committed = append(p.committed, bit)
}

// CommitResidual records bit for the next prefix position and installs its
// already-reduced row r with right-hand side rhs (AddPrereduced copies r,
// so the caller's scratch stays reusable).
func (p *PrefixStack) CommitResidual(bit bool, r bitvec.BitVec, rhs bool) {
	p.marks = append(p.marks, p.sys.Mark())
	p.committed = append(p.committed, bit)
	p.sys.AddPrereduced(r, rhs)
}

// SuccessorPrefixes drives the paper's successor strategy, shared by the
// affine ImageSearcher and the oracle-backed mirror in package counting so
// the two walks cannot diverge: it fills buf (caller scratch, length
// y.Len()) with y's bits and, for each zero position r from right to left,
// probes the candidate prefix y₁…y_{r-1}·1 as buf[:r+1], restoring buf[r]
// when the probe fails. It returns true as soon as a probe succeeds,
// leaving buf at the successful prefix; probe must not retain its
// argument. The probe closure is only ever called, never stored, so
// callers' closures stay stack-allocated.
func SuccessorPrefixes(y bitvec.BitVec, buf []bool, probe func(prefix []bool) bool) bool {
	m := y.Len()
	if len(buf) != m {
		panic("gf2: successor buffer width mismatch")
	}
	for i := 0; i < m; i++ {
		buf[i] = y.Get(i)
	}
	for r := m - 1; r >= 0; r-- {
		if buf[r] {
			continue
		}
		buf[r] = true
		if probe(buf[:r+1]) {
			return true
		}
		buf[r] = false
	}
	return false
}
